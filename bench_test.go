// Per-figure benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation (Section 6), in the same workloads as the
// wcqbench sweep harness. Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks are keyed by the queue names of the paper's legends.
// Shapes to expect (paper vs. this reproduction is recorded in
// EXPERIMENTS.md): FAA fastest, LCRQ/wCQ/SCQ close behind, then YMC,
// then CCQueue/MSQueue/CRTurn.
package wcqueue

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"wcqueue/internal/core"
	"wcqueue/internal/queues/queueiface"
	"wcqueue/internal/queues/registry"
	"wcqueue/internal/unbounded"
	"wcqueue/wcq"
)

// benchThreads is sized so RunParallel can register every goroutine.
func benchThreads() int { return 4*runtime.GOMAXPROCS(0) + 4 }

func buildQueue(b *testing.B, name string, llsc bool) queueiface.Queue {
	b.Helper()
	q, err := registry.New(name, registry.Config{
		Threads:     benchThreads(),
		RingOrder:   16, // the paper's ring size (2^16)
		EmulatedFAA: llsc,
	})
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// benchParallel drives fn under RunParallel with a per-goroutine
// handle.
func benchParallel(b *testing.B, q queueiface.Queue, fn func(h queueiface.Handle, i uint64)) {
	b.Helper()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h, err := q.Register()
		if err != nil {
			b.Error(err)
			return
		}
		defer q.Unregister(h)
		var i uint64
		for pb.Next() {
			fn(h, i)
			i++
		}
	})
}

// BenchmarkFig11bPairwise: enqueue immediately followed by dequeue, the
// paper's pairwise test (also Fig. 12b in the LLSC variants).
func BenchmarkFig11bPairwise(b *testing.B) {
	for _, name := range registry.PaperOrder {
		b.Run(name, func(b *testing.B) {
			q := buildQueue(b, name, false)
			benchParallel(b, q, func(h queueiface.Handle, i uint64) {
				q.Enqueue(h, i)
				q.Dequeue(h)
			})
		})
	}
}

// BenchmarkFig11cRandom5050: 50% enqueue / 50% dequeue chosen by a
// thread-local xorshift, the paper's random test.
func BenchmarkFig11cRandom5050(b *testing.B) {
	for _, name := range registry.PaperOrder {
		b.Run(name, func(b *testing.B) {
			q := buildQueue(b, name, false)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				s := uint64(0x9E3779B97F4A7C15)
				var i uint64
				for pb.Next() {
					s ^= s >> 12
					s ^= s << 25
					s ^= s >> 27
					if s&1 == 0 {
						q.Enqueue(h, i)
						i++
					} else {
						q.Dequeue(h)
					}
				}
			})
		})
	}
}

// BenchmarkFig11aEmptyDequeue: dequeue in a tight loop on an empty
// queue. wCQ and SCQ shine here via the Threshold fast-exit.
func BenchmarkFig11aEmptyDequeue(b *testing.B) {
	for _, name := range registry.PaperOrder {
		b.Run(name, func(b *testing.B) {
			q := buildQueue(b, name, false)
			benchParallel(b, q, func(h queueiface.Handle, _ uint64) {
				q.Dequeue(h)
			})
		})
	}
}

// BenchmarkFig10Memory: the memory test — 50/50 random ops with tiny
// random delays; the queue footprint is reported as a custom metric
// (bytes), the signal of Fig. 10a.
func BenchmarkFig10Memory(b *testing.B) {
	for _, name := range registry.PaperOrder {
		b.Run(name, func(b *testing.B) {
			q := buildQueue(b, name, false)
			var peak atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				s := uint64(0x2545F4914F6CDD1D)
				var i uint64
				for pb.Next() {
					s ^= s >> 12
					s ^= s << 25
					s ^= s >> 27
					if s&1 == 0 {
						q.Enqueue(h, i)
						i++
					} else {
						q.Dequeue(h)
					}
					for spin := s & 0x1F; spin > 0; spin-- {
						runtime.Gosched()
					}
				}
				if f := q.Footprint(); f > peak.Load() {
					peak.Store(f)
				}
			})
			b.ReportMetric(float64(peak.Load()), "footprint-bytes")
		})
	}
}

// BenchmarkFig12bPairwiseLLSC / Fig12cRandomLLSC / Fig12aEmptyLLSC:
// the PowerPC-analog builds (F&A and OR emulated via CAS loops) for
// the queues Fig. 12 presents (no LCRQ: it needs true CAS2).
func BenchmarkFig12aEmptyDequeueLLSC(b *testing.B) {
	for _, name := range []string{"wCQ", "SCQ"} {
		b.Run(name+"-LLSC", func(b *testing.B) {
			q := buildQueue(b, name, true)
			benchParallel(b, q, func(h queueiface.Handle, _ uint64) {
				q.Dequeue(h)
			})
		})
	}
}

// BenchmarkFig12bPairwiseLLSC is the LL/SC pairwise series.
func BenchmarkFig12bPairwiseLLSC(b *testing.B) {
	for _, name := range []string{"wCQ", "SCQ"} {
		b.Run(name+"-LLSC", func(b *testing.B) {
			q := buildQueue(b, name, true)
			benchParallel(b, q, func(h queueiface.Handle, i uint64) {
				q.Enqueue(h, i)
				q.Dequeue(h)
			})
		})
	}
}

// BenchmarkFig12cRandom5050LLSC is the LL/SC random series.
func BenchmarkFig12cRandom5050LLSC(b *testing.B) {
	for _, name := range []string{"wCQ", "SCQ"} {
		b.Run(name+"-LLSC", func(b *testing.B) {
			q := buildQueue(b, name, true)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				h, _ := q.Register()
				defer q.Unregister(h)
				s := uint64(0x9E3779B97F4A7C15)
				var i uint64
				for pb.Next() {
					s ^= s >> 12
					s ^= s << 25
					s ^= s >> 27
					if s&1 == 0 {
						q.Enqueue(h, i)
						i++
					} else {
						q.Dequeue(h)
					}
				}
			})
		})
	}
}

// BenchmarkAblationPatience: wCQ pairwise across MAX_PATIENCE values
// (A1), exposing the fast/slow path trade-off; slow-path entries per
// million ops are reported as a custom metric (A3).
func BenchmarkAblationPatience(b *testing.B) {
	for _, patience := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("patience=%d", patience), func(b *testing.B) {
			q, err := core.NewQueue[uint64](14, core.Options{
				EnqPatience: patience, DeqPatience: patience,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				var i uint64
				for pb.Next() {
					q.Enqueue(h, i)
					q.Dequeue(h)
					i++
				}
			})
			s := q.Stats()
			b.ReportMetric(float64(s.SlowEnqueues+s.SlowDequeues)/float64(b.N)*1e6, "slow-per-Mop")
		})
	}
}

// BenchmarkAblationHelpDelay: wCQ pairwise across HELP_DELAY values
// (A2).
func BenchmarkAblationHelpDelay(b *testing.B) {
	for _, delay := range []int{1, 16, 64, 1024} {
		b.Run(fmt.Sprintf("delay=%d", delay), func(b *testing.B) {
			q, err := core.NewQueue[uint64](14, core.Options{HelpDelay: delay})
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				var i uint64
				for pb.Next() {
					q.Enqueue(h, i)
					q.Dequeue(h)
					i++
				}
			})
		})
	}
}

// BenchmarkAblationRemap: wCQ pairwise with and without the
// Cache_Remap permutation (A4).
func BenchmarkAblationRemap(b *testing.B) {
	for _, noRemap := range []bool{false, true} {
		name := "remap=on"
		if noRemap {
			name = "remap=off"
		}
		b.Run(name, func(b *testing.B) {
			q, err := core.NewQueue[uint64](14, core.Options{NoRemap: noRemap})
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				var i uint64
				for pb.Next() {
					q.Enqueue(h, i)
					q.Dequeue(h)
					i++
				}
			})
		})
	}
}

// BenchmarkPairwiseBatchVsScalar compares the scalar pairwise hot path
// with the batched fast paths (one ring reservation per k operations)
// at exactly 8 worker goroutines — RunParallel can't pin a worker
// count below GOMAXPROCS, so the split is explicit. Each iteration is
// one enqueue+dequeue pair, so sub-benchmark ns/op are directly
// comparable; the PR-1 acceptance bar is batch ≥ 1.5× scalar
// throughput.
func BenchmarkPairwiseBatchVsScalar(b *testing.B) {
	const workers = 8
	run := func(b *testing.B, q queueiface.Queue, batch int) {
		b.Helper()
		b.ReportAllocs()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			iters := b.N / workers
			if w == 0 {
				iters += b.N % workers
			}
			wg.Add(1)
			go func(w, iters int) {
				defer wg.Done()
				h, err := q.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer q.Unregister(h)
				i := uint64(w) << 32
				if batch <= 1 {
					for ; iters > 0; iters-- {
						q.Enqueue(h, i)
						q.Dequeue(h)
						i++
					}
					return
				}
				bq := q.(queueiface.BatchQueue)
				buf := make([]uint64, batch)
				for iters > 0 {
					n := min(batch, iters)
					for j := 0; j < n; j++ {
						buf[j] = i
						i++
					}
					bq.EnqueueBatch(h, buf[:n])
					bq.DequeueBatch(h, buf[:n])
					iters -= n
				}
			}(w, iters)
		}
		wg.Wait()
	}
	for _, name := range []string{"wCQ", "SCQ", "wCQ-Striped"} {
		for _, batch := range []int{1, 16, 64} {
			label := fmt.Sprintf("%s/scalar", name)
			if batch > 1 {
				label = fmt.Sprintf("%s/batch%d", name, batch)
			}
			b.Run(label, func(b *testing.B) {
				run(b, buildQueue(b, name, false), batch)
			})
		}
	}
}

// BenchmarkStripedPairwise sweeps the stripe count at fixed load,
// exposing how far the sharded front-end lifts the single-ring FAA
// ceiling (1 stripe ≈ plain wCQ plus the scan overhead).
func BenchmarkStripedPairwise(b *testing.B) {
	for _, stripes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			q, err := registry.New("wCQ-Striped", registry.Config{
				Threads: benchThreads(), RingOrder: 14, Stripes: stripes,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchParallel(b, q, func(h queueiface.Handle, i uint64) {
				q.Enqueue(h, i)
				q.Dequeue(h)
			})
		})
	}
}

// BenchmarkUnboundedBatchPairwise drives the Appendix A construction
// through the batched paths.
func BenchmarkUnboundedBatchPairwise(b *testing.B) {
	q, err := unbounded.New[uint64](14, 0, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 16
	b.RunParallel(func(pb *testing.PB) {
		h, err := q.Register()
		if err != nil {
			b.Error(err)
			return
		}
		defer q.Unregister(h)
		buf := make([]uint64, batch)
		var i uint64
		for {
			n := 0
			for n < batch && pb.Next() {
				buf[n] = i
				i++
				n++
			}
			if n == 0 {
				return
			}
			q.EnqueueBatch(h, buf[:n])
			q.DequeueBatch(h, buf[:n])
		}
	})
}

// BenchmarkHandleLifecycle isolates the costs the dynamic-registration
// redesign introduces (D-series companion): an explicit Register/
// Unregister pair (mutex + slot recycling; the arena is warm after the
// first iteration), a pairwise op through an explicit handle (the
// zero-overhead baseline), and the same op through the handle-free
// API (pooled implicit acquire per call).
func BenchmarkHandleLifecycle(b *testing.B) {
	b.Run("register-unregister", func(b *testing.B) {
		q := wcq.Must[uint64](10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h, err := q.Register()
			if err != nil {
				b.Fatal(err)
			}
			h.Unregister()
		}
	})
	b.Run("explicit-pairwise", func(b *testing.B) {
		q := wcq.Must[uint64](10)
		h, err := q.Register()
		if err != nil {
			b.Fatal(err)
		}
		defer h.Unregister()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i))
			h.Dequeue()
		}
	})
	b.Run("implicit-pairwise", func(b *testing.B) {
		q := wcq.Must[uint64](10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	b.Run("register-op-unregister", func(b *testing.B) {
		q := wcq.Must[uint64](10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h, err := q.Register()
			if err != nil {
				b.Fatal(err)
			}
			h.Enqueue(uint64(i))
			h.Dequeue()
			h.Unregister()
		}
	})
}

// BenchmarkUnboundedPairwise exercises the Appendix A construction.
func BenchmarkUnboundedPairwise(b *testing.B) {
	q, err := unbounded.New[uint64](14, 0, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		h, err := q.Register()
		if err != nil {
			b.Error(err)
			return
		}
		defer q.Unregister(h)
		var i uint64
		for pb.Next() {
			q.Enqueue(h, i)
			q.Dequeue(h)
			i++
		}
	})
}
