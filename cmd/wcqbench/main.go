// Command wcqbench regenerates the paper's evaluation (Figures 10-12)
// and the design ablations listed in DESIGN.md.
//
// Usage:
//
//	wcqbench -experiment list
//	wcqbench -experiment pairwise -ops 10000000 -repeats 10
//	wcqbench -experiment memory -threads 1,2,4,8
//	wcqbench -experiment all -ops 1000000          # every figure
//	wcqbench -experiment patience                  # ablation A1/A3
//
// Output is one table per experiment in the row format of the paper's
// figures (queue, thread count, Mops/s, CV, and footprint for the
// memory test).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"wcqueue/internal/bench"
)

func main() {
	var (
		expID   = flag.String("experiment", "list", "experiment id, 'all', or 'list'")
		ops     = flag.Int("ops", 1_000_000, "operations per measured point (paper: 10000000)")
		repeats = flag.Int("repeats", 3, "repetitions per point (paper: 10)")
		threads = flag.String("threads", "", "comma-separated thread counts (default: 1,2,4..2×GOMAXPROCS)")
		order   = flag.Uint("ring-order", 16, "wCQ/SCQ ring order (capacity 2^order, paper: 16)")
	)
	flag.Parse()

	tlist, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	opts := bench.RunOptions{Ops: *ops, Repeats: *repeats, Threads: tlist, RingOrder: *order}

	switch *expID {
	case "list":
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %-14s %s\n", e.ID, e.Figure)
		}
		fmt.Printf("  %-14s %s\n", "patience", "A1/A3: MAX_PATIENCE ablation + slow-path frequency")
		fmt.Printf("  %-14s %s\n", "helpdelay", "A2: HELP_DELAY ablation")
		fmt.Printf("  %-14s %s\n", "remap", "A4: Cache_Remap ablation")
		fmt.Printf("  %-14s %s\n", "all", "every figure experiment")
		return
	case "all":
		for _, e := range bench.Experiments {
			if err := bench.RunExperiment(os.Stdout, e, opts); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	case "patience":
		if err := bench.RunPatienceAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "helpdelay":
		if err := bench.RunHelpDelayAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "remap":
		if err := bench.RunRemapAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	}

	e, ok := bench.FindExperiment(*expID)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q; try -experiment list", *expID))
	}
	if err := bench.RunExperiment(os.Stdout, e, opts); err != nil {
		fatal(err)
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func ablationThreads(tlist []int) int {
	if len(tlist) > 0 {
		return tlist[len(tlist)-1]
	}
	return runtime.GOMAXPROCS(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wcqbench:", err)
	os.Exit(1)
}
