// Command wcqbench regenerates the paper's evaluation (Figures 10-12)
// and the design ablations listed in DESIGN.md.
//
// Usage:
//
//	wcqbench -experiment list
//	wcqbench -experiment pairwise -ops 10000000 -repeats 10
//	wcqbench -experiment memory -threads 1,2,4,8
//	wcqbench -experiment all -ops 1000000          # every figure
//	wcqbench -experiment patience                  # ablation A1/A3
//	wcqbench -experiment diet                      # ablation E5 (atomic diet A/B)
//	wcqbench -experiment pairwise,pairwise-batch,striped -json BENCH_pr1.json
//	wcqbench -experiment direct-pairwise -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Output is one table per experiment in the row format of the paper's
// figures (queue, thread count, Mops/s, CV, and footprint for the
// memory test). With -json, every measured point of the invocation is
// additionally written to the given file as machine-readable JSON —
// the BENCH_*.json trajectory artifacts committed per PR; meta records
// the source commit and the host vCPU count so trajectory comparisons
// can tell runs (and noisy hosts) apart. With -cpuprofile/-memprofile,
// pprof profiles of the whole sweep are written at exit, so hot-path
// regressions can be diagnosed without editing the harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"wcqueue/internal/bench"
)

func main() {
	var (
		expID    = flag.String("experiment", "list", "experiment id, 'all', or 'list'")
		ops      = flag.Int("ops", 1_000_000, "operations per measured point (paper: 10000000)")
		repeats  = flag.Int("repeats", 3, "repetitions per point (paper: 10)")
		threads  = flag.String("threads", "", "comma-separated thread counts (default: 1,2,4..2×GOMAXPROCS)")
		order    = flag.Uint("ring-order", 16, "wCQ/SCQ ring order (capacity 2^order, paper: 16)")
		jsonPath = flag.String("json", "", "write measured points as JSON to this file (BENCH_*.json)")
		duration = flag.Duration("duration", 2*time.Second, "measurement window per overload point (H-series only)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile at sweep end to this file")
	)
	flag.Parse()

	tlist, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	opts := bench.RunOptions{Ops: *ops, Repeats: *repeats, Threads: tlist, RingOrder: *order}

	// Profiles open (and fail) before any measurement runs, like the
	// JSON sink below: a mistyped path must not cost a finished sweep.
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	// Open the JSON sink up front so a bad path fails before the
	// sweep burns minutes of measurement. The ablations and the list
	// command produce no Result points, so -json would silently write
	// an empty artifact there — reject the combination instead.
	var jsonFile *os.File
	if *jsonPath != "" {
		switch *expID {
		case "list", "patience", "helpdelay", "remap", "diet":
			fatal(fmt.Errorf("-json is not supported with -experiment %s (no sweep points)", *expID))
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		jsonFile = f
	}

	var collected []bench.Result
	emit := func() {
		if jsonFile == nil {
			return
		}
		defer jsonFile.Close()
		if err := bench.WriteJSON(jsonFile, bench.NewReport(opts, collected)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wcqbench: wrote %d points to %s\n", len(collected), *jsonPath)
	}

	switch *expID {
	case "list":
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %-14s %s\n", e.ID, e.Figure)
		}
		fmt.Printf("  %-14s %s\n", "patience", "A1/A3: MAX_PATIENCE ablation + slow-path frequency")
		fmt.Printf("  %-14s %s\n", "helpdelay", "A2: HELP_DELAY ablation")
		fmt.Printf("  %-14s %s\n", "remap", "A4: Cache_Remap ablation")
		fmt.Printf("  %-14s %s\n", "diet", "E5: hot-path atomic-diet A/B ablation")
		fmt.Printf("  %-14s %s\n", "overload", "H: goodput/shed/admission-latency vs offered load (0.5x/1x/2x capacity)")
		fmt.Printf("  %-14s %s\n", "all", "every figure experiment")
		return
	case "all":
		for _, e := range bench.Experiments {
			results, err := bench.RunExperiment(os.Stdout, e, opts)
			if err != nil {
				fatal(err)
			}
			collected = append(collected, results...)
			fmt.Println()
		}
		emit()
		return
	case "patience":
		if err := bench.RunPatienceAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "helpdelay":
		if err := bench.RunHelpDelayAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "remap":
		if err := bench.RunRemapAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "diet":
		if err := bench.RunDietAblation(os.Stdout, ablationThreads(tlist), *ops); err != nil {
			fatal(err)
		}
		return
	case "overload":
		results, err := bench.RunOverloadSeries(os.Stdout, bench.OverloadOptions{Duration: *duration})
		if err != nil {
			fatal(err)
		}
		collected = append(collected, results...)
		emit()
		return
	}

	// Comma-separated experiment ids run in sequence into one report.
	for _, id := range strings.Split(*expID, ",") {
		id = strings.TrimSpace(id)
		switch id {
		case "patience", "helpdelay", "remap", "diet", "overload":
			fatal(fmt.Errorf("%q cannot be combined in a comma list; run -experiment %s alone", id, id))
		}
		e, ok := bench.FindExperiment(id)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -experiment list", id))
		}
		results, err := bench.RunExperiment(os.Stdout, e, opts)
		if err != nil {
			fatal(err)
		}
		collected = append(collected, results...)
	}
	emit()
}

// maxThreadCount rejects sweep points no machine this harness targets
// can run: a mistyped "800" for "8,0,0" would otherwise launch
// hundreds of goroutines per point and produce a plausible-looking but
// degenerate table.
const maxThreadCount = 4096

// parseThreads parses the -threads flag: a comma-separated list of
// positive thread counts ("" selects the default sweep). Malformed
// entries — empty fields, junk, zero/negative or absurd counts — are
// rejected with an error naming the offending entry, rather than
// silently producing degenerate measurement points.
func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		p := strings.TrimSpace(part)
		if p == "" {
			return nil, fmt.Errorf("-threads %q: empty entry (want comma-separated positive integers, e.g. 1,2,4,8)", s)
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-threads %q: bad thread count %q (want comma-separated positive integers, e.g. 1,2,4,8)", s, p)
		}
		if n < 1 || n > maxThreadCount {
			return nil, fmt.Errorf("-threads %q: thread count %d out of range [1, %d]", s, n, maxThreadCount)
		}
		out = append(out, n)
	}
	return out, nil
}

// startProfiles validates and opens the -cpuprofile/-memprofile sinks
// and starts CPU profiling, returning the stop/flush function. Both
// paths are validated up front — a sweep can run for minutes, and a
// profile that fails to open at the END would discard it all. The
// profiles cover the whole invocation (every experiment in the comma
// list), which is what hot-path regression hunts want: the dominant
// samples land in the queue operations themselves.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if memPath != "" {
		memFile, err = os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "wcqbench: wrote CPU profile to %s\n", cpuPath)
		}
		if memFile != nil {
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(memFile, 0); err != nil {
				fmt.Fprintln(os.Stderr, "wcqbench: -memprofile:", err)
			}
			memFile.Close()
			fmt.Fprintf(os.Stderr, "wcqbench: wrote allocation profile to %s\n", memPath)
		}
	}, nil
}

func ablationThreads(tlist []int) int {
	if len(tlist) > 0 {
		return tlist[len(tlist)-1]
	}
	return runtime.GOMAXPROCS(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wcqbench:", err)
	os.Exit(1)
}
