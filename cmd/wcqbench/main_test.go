package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		errPart string // substring the error must carry; "" = no error
	}{
		{in: "", want: nil},
		{in: "1", want: []int{1}},
		{in: "1,2,4,8", want: []int{1, 2, 4, 8}},
		{in: " 1 , 2 ", want: []int{1, 2}},
		{in: "1,,2", errPart: "empty entry"},
		{in: ",", errPart: "empty entry"},
		{in: "1,2,", errPart: "empty entry"},
		{in: " ", errPart: "empty entry"},
		{in: "abc", errPart: `bad thread count "abc"`},
		{in: "1,x,2", errPart: `bad thread count "x"`},
		{in: "1.5", errPart: "bad thread count"},
		{in: "0", errPart: "out of range"},
		{in: "-4", errPart: "out of range"},
		{in: "1,0,2", errPart: "out of range"},
		{in: "99999999", errPart: "out of range"},
		{in: "999999999999999999999999", errPart: "bad thread count"},
	}
	for _, c := range cases {
		got, err := parseThreads(c.in)
		if c.errPart != "" {
			if err == nil {
				t.Errorf("parseThreads(%q) = %v, want error containing %q", c.in, got, c.errPart)
			} else if !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("parseThreads(%q) error %q does not contain %q", c.in, err, c.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseThreads(%q): unexpected error %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestStartProfilesValidation(t *testing.T) {
	dir := t.TempDir()

	t.Run("no-profiles", func(t *testing.T) {
		stop, err := startProfiles("", "")
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		stop() // must be a safe no-op
	})

	t.Run("bad-cpu-path", func(t *testing.T) {
		_, err := startProfiles(dir+"/no/such/dir/cpu.pprof", "")
		if err == nil || !strings.Contains(err.Error(), "-cpuprofile") {
			t.Fatalf("unwritable cpu path accepted (err=%v)", err)
		}
	})

	t.Run("bad-mem-path-stops-cpu", func(t *testing.T) {
		// The CPU profile must be cleanly stopped when the mem path
		// fails, or the next StartCPUProfile in this process errors.
		_, err := startProfiles(dir+"/cpu1.pprof", dir+"/no/such/dir/mem.pprof")
		if err == nil || !strings.Contains(err.Error(), "-memprofile") {
			t.Fatalf("unwritable mem path accepted (err=%v)", err)
		}
		stop, err := startProfiles(dir+"/cpu2.pprof", "")
		if err != nil {
			t.Fatalf("CPU profiling left running after failed start: %v", err)
		}
		stop()
	})

	t.Run("writes-both", func(t *testing.T) {
		cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
		stop, err := startProfiles(cpu, mem)
		if err != nil {
			t.Fatal(err)
		}
		stop()
		for _, p := range []string{cpu, mem} {
			st, err := os.Stat(p)
			if err != nil {
				t.Fatalf("profile %s not written: %v", p, err)
			}
			if st.Size() == 0 {
				t.Fatalf("profile %s is empty", p)
			}
		}
	})
}
