package main

import (
	"strings"
	"testing"
)

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		errPart string // substring the error must carry; "" = no error
	}{
		{in: "", want: nil},
		{in: "1", want: []int{1}},
		{in: "1,2,4,8", want: []int{1, 2, 4, 8}},
		{in: " 1 , 2 ", want: []int{1, 2}},
		{in: "1,,2", errPart: "empty entry"},
		{in: ",", errPart: "empty entry"},
		{in: "1,2,", errPart: "empty entry"},
		{in: " ", errPart: "empty entry"},
		{in: "abc", errPart: `bad thread count "abc"`},
		{in: "1,x,2", errPart: `bad thread count "x"`},
		{in: "1.5", errPart: "bad thread count"},
		{in: "0", errPart: "out of range"},
		{in: "-4", errPart: "out of range"},
		{in: "1,0,2", errPart: "out of range"},
		{in: "99999999", errPart: "out of range"},
		{in: "999999999999999999999999", errPart: "bad thread count"},
	}
	for _, c := range cases {
		got, err := parseThreads(c.in)
		if c.errPart != "" {
			if err == nil {
				t.Errorf("parseThreads(%q) = %v, want error containing %q", c.in, got, c.errPart)
			} else if !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("parseThreads(%q) error %q does not contain %q", c.in, err, c.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseThreads(%q): unexpected error %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
