// Command wcqlint is the repository's concurrency-invariant linter
// (DESIGN.md §15): a multichecker for the custom analyzers in
// internal/analysis that turns the prose invariants of DESIGN.md
// §11/§12/§13/§14 into compile-time checks.
//
// Standalone (the CI mode — loads, builds, and checks packages):
//
//	go run ./cmd/wcqlint ./...
//	go run ./cmd/wcqlint -tags wcq_failpoints ./...
//
// As a go vet tool (the per-package unitchecker protocol):
//
//	go build -o /tmp/wcqlint ./cmd/wcqlint
//	go vet -vettool=/tmp/wcqlint ./...
//
// Exit status: 0 clean, 1 usage/load error, 2 findings — matching go
// vet's convention so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wcqueue/internal/analysis"
	"wcqueue/internal/analysis/atomicmix"
	"wcqueue/internal/analysis/failpointweave"
	"wcqueue/internal/analysis/noallocdecl"
	"wcqueue/internal/analysis/pinnedsection"
	"wcqueue/internal/analysis/relaxedguard"
)

// analyzers is the suite; order fixes the report order for same-pos
// findings.
var analyzers = []*analysis.Analyzer{
	relaxedguard.Analyzer,
	atomicmix.Analyzer,
	failpointweave.Analyzer,
	noallocdecl.Analyzer,
	pinnedsection.Analyzer,
}

func main() {
	// go vet probes the tool's identity with -V=full and its flag set
	// with -flags, then invokes it once per package with a *.cfg file
	// as the sole argument.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// No per-analyzer flags to expose to the driver.
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		vetMain(os.Args[1], analyzers)
		return
	}

	tags := flag.String("tags", "", "comma-separated build tags forwarded to the loader")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wcqlint [-tags taglist] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := analysis.LoadConfig{}
	if *tags != "" {
		cfg.Tags = strings.Split(*tags, ",")
	}
	pkgs, err := analysis.Load(cfg, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wcqlint: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wcqlint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fset := pkgs[0].Fset
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wcqlint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}
