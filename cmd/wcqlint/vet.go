package main

// The go vet driver protocol ("unitchecker" mode): `go vet
// -vettool=wcqlint` first runs `wcqlint -V=full` to fingerprint the
// tool for build caching, then invokes it once per package with the
// path of a JSON config file describing the unit of work — source
// files, the import map, and the export-data file for every
// dependency (the go command has already built those). The tool
// type-checks the unit, runs the analyzers, writes the (empty — these
// analyzers exchange no facts) .vetx facts file the driver expects,
// and exits 2 if it found anything.
//
// This is a stdlib-only reimplementation of the subset of
// golang.org/x/tools/go/analysis/unitchecker the suite needs; facts,
// JSON diagnostics with suggested fixes, and flag forwarding are out
// of scope.

import (
	"crypto/md5"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"wcqueue/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `wcqlint -V=full`. The go command requires a
// single line of the form "name version fingerprint..." and uses it as
// the tool's cache key, so the fingerprint hashes the executable: a
// rebuilt linter invalidates cached vet results.
func printVersion() {
	h := md5.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("wcqlint version devel buildID=%x\n", h.Sum(nil))
}

// vetMain runs one unit of vet work described by cfgFile.
func vetMain(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}

	// The driver expects the facts file regardless of findings; these
	// analyzers produce none, so write it first and unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wcqlint: "+format+"\n", args...)
	os.Exit(1)
}
