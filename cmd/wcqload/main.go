// Command wcqload is a traffic-simulator service over the wCQ stack
// (DESIGN.md §16): ingest generators fan into an elastic wcq.Striped
// through the admission controller, a worker pool drains it with a
// simulated service time, and the process exports its ledger, the
// blocking-layer gauges, lane telemetry, and admission latency
// percentiles on /metrics in Prometheus text format.
//
// Usage:
//
//	wcqload -addr :9120 -workers 4 -service 200us -load 2 -policy reject
//	wcqload -load 1.5 -policy deadline -timeout 2ms -calibrate 500ms
//	wcqload -burst 64 -zipf 1.2          # clumpier arrivals
//
// The offered load is -load × capacity. With -calibrate the pool's
// real drain rate is measured at boot (sleep granularity makes the
// nominal Workers/Service figure optimistic on most hosts); without
// it the nominal figure is used.
//
// On SIGTERM/SIGINT the server stops the generators, seals the queue,
// drains every accepted item, verifies the exactly-once ledger, and
// exits 0 — a ledger violation exits 1. This is the graceful-
// degradation contract the overload harness pins, run as a service.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/internal/bench"
)

func main() {
	var (
		addr      = flag.String("addr", ":9120", "metrics listen address")
		workers   = flag.Int("workers", 4, "consumer pool size")
		producers = flag.Int("producers", 4, "ingest generator goroutines")
		service   = flag.Duration("service", 200*time.Microsecond, "simulated per-item service time")
		load      = flag.Float64("load", 0.8, "offered load as a multiple of capacity")
		policy    = flag.String("policy", "reject", "admission policy: reject or deadline")
		timeout   = flag.Duration("timeout", 0, "deadline-policy submit park bound (default 4x service)")
		ttl       = flag.Duration("ttl", 0, "entry freshness bound; stale entries drop at dequeue (0 = none)")
		order     = flag.Uint("ring-order", 10, "per-lane ring order")
		lanes     = flag.Int("lanes", 2, "initial striped lane count (elastic above this)")
		burst     = flag.Int("burst", 16, "max burst size, Zipf-distributed (1 = smooth arrivals)")
		zipfS     = flag.Float64("zipf", 1.3, "burst-size Zipf skew (>1; larger = smoother)")
		calibrate = flag.Duration("calibrate", 0, "measure pool capacity at boot over this window (0 = use nominal)")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var pol admission.Policy
	switch *policy {
	case "reject":
		pol = admission.Reject
	case "deadline":
		pol = admission.Deadline
	default:
		fatal(fmt.Errorf("unknown -policy %q (want reject or deadline)", *policy))
	}

	capacity := 0.0
	if *calibrate > 0 {
		c, err := bench.MeasureCapacity(bench.OverloadOptions{
			Workers: *workers, Producers: *producers, Service: *service,
			Order: *order, Duration: 2 * *calibrate,
		})
		if err != nil {
			fatal(err)
		}
		capacity = c
		fmt.Fprintf(os.Stderr, "wcqload: measured capacity %.0f items/s\n", capacity)
	}

	srv, err := NewServer(Config{
		Workers: *workers, Producers: *producers, Service: *service,
		Load: *load, Capacity: capacity, Order: *order, Lanes: *lanes,
		Policy: pol, SubmitTimeout: *timeout, TTL: *ttl,
		Burst: *burst, ZipfS: *zipfS, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	// Listen before starting traffic so a bad -addr fails fast and a
	// supervisor's first scrape never races the socket.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	srv.Start()
	fmt.Fprintf(os.Stderr, "wcqload: serving on %s (workers %d, load %.2fx, policy %s)\n",
		ln.Addr(), *workers, *load, *policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "wcqload: draining")

	drainErr := srv.Drain()
	st := srv.ctrl.Stats()
	fmt.Fprintf(os.Stderr, "wcqload: drained: accepted %d, delivered %d, expired %d, shed %d (full %d, deadline %d)\n",
		st.Accepted, st.Delivered, st.Expired, st.Shed(), st.ShedFull, st.ShedDeadline)

	// The last scrape after drain still answers (final counter values);
	// shut the listener down bounded.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)

	if drainErr != nil {
		fatal(drainErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wcqload:", err)
	os.Exit(1)
}
