package main

import (
	"fmt"
	"io"
	"net/http"
)

// metric is one exported series: Prometheus text exposition format,
// hand-rolled — the exporter is a dozen fixed series, and the repo
// takes no dependencies beyond the standard library.
type metric struct {
	name string
	kind string // "counter" or "gauge"
	help string
	val  float64
}

// snapshot collects every exported series from the snapshot APIs.
// Counters are cumulative since boot; gauges are instantaneous.
func (s *Server) snapshot() []metric {
	a := s.ctrl.Stats()
	q := s.q.Stats()
	return []metric{
		// Admission ledger (DESIGN.md §16): accepted = delivered +
		// expired + in_flight; submits = accepted + shed.
		{"wcqload_accepted_total", "counter", "submits admitted into the queue", float64(a.Accepted)},
		{"wcqload_shed_full_total", "counter", "submits shed because the queue was full (Reject policy)", float64(a.ShedFull)},
		{"wcqload_shed_deadline_total", "counter", "submits shed because the admission deadline expired", float64(a.ShedDeadline)},
		{"wcqload_expired_total", "counter", "accepted items dropped at dequeue past their TTL", float64(a.Expired)},
		{"wcqload_delivered_total", "counter", "accepted items handed to a worker", float64(a.Delivered)},
		{"wcqload_in_flight", "gauge", "accepted items not yet delivered or expired (queue depth)", float64(a.InFlight())},
		// Blocking-layer gauges and counters the watchdog samples.
		{"wcqload_enq_waiters", "gauge", "producers currently parked (queue full)", float64(q.EnqWaiters)},
		{"wcqload_deq_waiters", "gauge", "workers currently parked (queue empty)", float64(q.DeqWaiters)},
		{"wcqload_waits_total", "counter", "cumulative parks, both sides", float64(q.Waits)},
		{"wcqload_wakes_total", "counter", "cumulative wakeups delivered, both sides", float64(q.Wakes)},
		// Elastic lane directory.
		{"wcqload_lanes", "gauge", "active striped lanes", float64(q.Lanes)},
		{"wcqload_lane_grows_total", "counter", "lane-count increases applied", float64(q.LaneGrows)},
		{"wcqload_lane_shrinks_total", "counter", "lane-count decreases applied", float64(q.LaneShrinks)},
		{"wcqload_steals_total", "counter", "dequeues served by a foreign lane", float64(q.Steals)},
		// Ring pool and slow-path health.
		{"wcqload_pool_hits_total", "counter", "ring hops served from the recycled pool", float64(q.PoolHits)},
		{"wcqload_pool_misses_total", "counter", "ring hops that allocated a fresh ring", float64(q.PoolMisses)},
		{"wcqload_slow_enqueues_total", "counter", "enqueues that left the fast path", float64(q.SlowEnqueues)},
		{"wcqload_slow_dequeues_total", "counter", "dequeues that left the fast path", float64(q.SlowDequeues)},
		{"wcqload_helps_total", "counter", "helping-protocol completions", float64(q.Helps)},
		// Watchdog and admission latency.
		{"wcqload_watchdog_stalls_total", "counter", "stall reports emitted by the progress watchdog", float64(s.stalls.Load())},
		{"wcqload_admit_latency_p50_seconds", "gauge", "median Submit latency since boot", s.hist.Quantile(0.50).Seconds()},
		{"wcqload_admit_latency_p99_seconds", "gauge", "p99 Submit latency since boot", s.hist.Quantile(0.99).Seconds()},
		{"wcqload_admit_latency_p999_seconds", "gauge", "p999 Submit latency since boot", s.hist.Quantile(0.999).Seconds()},
		{"wcqload_uptime_seconds", "gauge", "time since the server started", s.Uptime().Seconds()},
	}
}

// writeMetrics renders the snapshot in Prometheus text exposition
// format (text/plain; version=0.0.4).
func (s *Server) writeMetrics(w io.Writer) {
	for _, m := range s.snapshot() {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.kind, m.name, m.val)
	}
}

// handler serves /metrics and /healthz. Health flips to 503 once the
// drain has begun so load balancers stop routing during shutdown.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.drained.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
