package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/internal/bench"
	"wcqueue/wcq"
)

// Config parameterizes the simulated service. The load generators
// offer Load× the pool's capacity (calibrated or nominal), with
// Zipf-distributed burst sizes so arrivals are clumped the way real
// ingest traffic is — smooth Poisson-ish arrival is the easy case for
// a queue, and not the one admission control exists for.
type Config struct {
	Workers       int           // consumer pool size
	Producers     int           // ingest generator goroutines
	Service       time.Duration // simulated per-item service time
	Load          float64       // offered load as a multiple of capacity
	Capacity      float64       // items/sec; 0 = nominal Workers/Service
	Order         uint          // per-lane ring order
	Lanes         int           // initial lane count (elastic above this)
	Policy        admission.Policy
	SubmitTimeout time.Duration // Deadline-policy park bound
	TTL           time.Duration // entry freshness bound (0 = none)
	Burst         int           // max burst size, Zipf-distributed (1 = smooth)
	ZipfS         float64       // burst-size skew (>1; larger = smoother)
	Seed          int64
	Grace         int           // watchdog still-polls before a stall report
	Interval      time.Duration // watchdog poll interval
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Producers <= 0 {
		c.Producers = 4
	}
	if c.Service <= 0 {
		c.Service = 200 * time.Microsecond
	}
	if c.Load <= 0 {
		c.Load = 0.8
	}
	if c.Capacity <= 0 {
		c.Capacity = float64(c.Workers) / c.Service.Seconds()
	}
	if c.Order == 0 {
		c.Order = 10
	}
	if c.Lanes <= 0 {
		c.Lanes = 2
	}
	if c.SubmitTimeout <= 0 {
		c.SubmitTimeout = 4 * c.Service
	}
	if c.Burst <= 0 {
		c.Burst = 16
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Grace < 2 {
		c.Grace = 3
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// Server is the traffic simulator: ingest generators fan into an
// elastic wcq.Striped through the admission controller, a worker pool
// drains it, and a progress watchdog reports workers whose counters
// stop moving while work is pending. Everything it exports on
// /metrics comes from the snapshot APIs (admission.Stats, wcq.Stats,
// bench.Histogram) — the serving path itself keeps no extra state.
type Server struct {
	cfg    Config
	q      *wcq.Striped[admission.Item[uint64]]
	ctrl   *admission.Controller[uint64]
	dog    *admission.Watchdog
	hist   bench.Histogram
	stalls atomic.Uint64

	stop    chan struct{}
	pwg     sync.WaitGroup
	wwg     sync.WaitGroup
	started time.Time
	drained atomic.Bool
}

func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.defaults()
	q, err := wcq.NewStriped[admission.Item[uint64]](cfg.Order, cfg.Lanes)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, q: q, stop: make(chan struct{})}
	s.ctrl = admission.NewController[uint64](q, admission.Config{
		Policy:        cfg.Policy,
		SubmitTimeout: cfg.SubmitTimeout,
		TTL:           cfg.TTL,
	})
	s.dog = admission.NewWatchdog(admission.WatchdogConfig{
		Grace:    cfg.Grace,
		Interval: cfg.Interval,
		Pending:  s.ctrl.InFlight,
		Waiters: func() (int, int) {
			st := q.Stats()
			return st.EnqWaiters, st.DeqWaiters
		},
		OnStall: func(reports []admission.StallReport) {
			s.stalls.Add(uint64(len(reports)))
			for _, r := range reports {
				fmt.Fprintf(os.Stderr, "wcqload: watchdog: %s stalled for %d polls (pending %d, enq-waiters %d, deq-waiters %d)\n",
					r.Worker, r.Polls, r.Pending, r.EnqWaiters, r.DeqWaiters)
			}
		},
	})
	return s, nil
}

// Start launches the worker pool, the ingest generators, and the
// watchdog. It returns immediately; Drain stops everything.
func (s *Server) Start() {
	s.started = time.Now()
	for w := 0; w < s.cfg.Workers; w++ {
		prog := s.dog.Register(fmt.Sprintf("worker-%d", w))
		s.wwg.Add(1)
		go s.worker(prog)
	}
	offered := s.cfg.Load * s.cfg.Capacity
	// Each producer owns 1/Producers of the offered rate; burst sizes
	// are Zipf-distributed, so the mean burst scales the interarrival
	// gap to keep the offered rate honest.
	for p := 0; p < s.cfg.Producers; p++ {
		s.pwg.Add(1)
		go s.producer(p, offered/float64(s.cfg.Producers))
	}
	s.dog.Start()
}

func (s *Server) worker(prog *admission.Progress) {
	defer s.wwg.Done()
	for {
		if _, err := s.ctrl.Take(context.Background()); err != nil {
			return // closed and drained
		}
		time.Sleep(s.cfg.Service) // simulated service
		prog.Bump()
	}
}

func (s *Server) producer(id int, rate float64) {
	defer s.pwg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(id)))
	var zipf *rand.Zipf
	if s.cfg.Burst > 1 {
		zipf = rand.NewZipf(rng, s.cfg.ZipfS, 1, uint64(s.cfg.Burst-1))
	}
	perItem := time.Duration(float64(time.Second) / rate)
	next := time.Now()
	var n uint64
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		burst := 1
		if zipf != nil {
			burst = int(zipf.Uint64()) + 1
		}
		// The whole burst arrives at once; the pacer then sits out
		// burst×perItem so the mean offered rate stays at the target.
		next = next.Add(time.Duration(burst) * perItem)
		for i := 0; i < burst; i++ {
			t0 := time.Now()
			err := s.ctrl.Submit(context.Background(), uint64(id)<<32|n)
			s.hist.Record(time.Since(t0))
			n++
			if err != nil && !errors.Is(err, admission.ErrShed) {
				return // closed
			}
		}
	}
}

// Drain is the SIGTERM path: stop the generators, close the
// controller (sealing the queue), wait for the workers to take every
// accepted item, stop the watchdog, and verify the exactly-once
// ledger. A ledger violation is a bug, not a shutdown condition — it
// returns as an error so main can exit nonzero.
func (s *Server) Drain() error {
	if !s.drained.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.pwg.Wait()
	s.ctrl.Close()
	s.wwg.Wait()
	s.dog.Stop()
	st := s.ctrl.Stats()
	if st.Delivered+st.Expired != st.Accepted {
		return fmt.Errorf("drain ledger: accepted %d != delivered %d + expired %d",
			st.Accepted, st.Delivered, st.Expired)
	}
	if got := st.InFlight(); got != 0 {
		return fmt.Errorf("drain ledger: %d items still in flight after drain", got)
	}
	return nil
}

// Uptime reports how long the server has been serving.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }
