package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wcqueue/internal/admission"
)

// short boots a fast server config: small ring, modest capacity so
// the test finishes in tens of milliseconds.
func short(policy admission.Policy, load float64) Config {
	return Config{
		Workers: 2, Producers: 2,
		Service:  50 * time.Microsecond,
		Load:     load,
		Capacity: 2000, // fixed: tests must not depend on host calibration
		Order:    6, Lanes: 2,
		Policy: policy,
		Burst:  4,
	}
}

// TestServerDrainLedger boots the simulator, lets it serve a burst of
// traffic, drains, and requires the exactly-once ledger to balance —
// the SIGTERM contract without the signal plumbing.
func TestServerDrainLedger(t *testing.T) {
	for _, pol := range []admission.Policy{admission.Reject, admission.Deadline} {
		s, err := NewServer(short(pol, 2)) // overload: shedding must not corrupt the ledger
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		time.Sleep(100 * time.Millisecond)
		if err := s.Drain(); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		st := s.ctrl.Stats()
		if st.Accepted == 0 {
			t.Fatalf("policy %v: no traffic accepted", pol)
		}
		if st.Delivered+st.Expired != st.Accepted {
			t.Fatalf("policy %v: ledger %+v", pol, st)
		}
		// Drain is idempotent (SIGTERM then SIGINT must not double-close).
		if err := s.Drain(); err != nil {
			t.Fatalf("second drain: %v", err)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics and /healthz and pins the
// exposition format and the series set the ISSUE requires: ledger
// counters, shed counters, waiter gauges, lane telemetry, and
// admission latency quantiles.
func TestMetricsEndpoint(t *testing.T) {
	s, err := NewServer(short(admission.Reject, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(50 * time.Millisecond)

	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d before drain", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"wcqload_accepted_total",
		"wcqload_shed_full_total",
		"wcqload_shed_deadline_total",
		"wcqload_delivered_total",
		"wcqload_in_flight",
		"wcqload_enq_waiters",
		"wcqload_deq_waiters",
		"wcqload_waits_total",
		"wcqload_wakes_total",
		"wcqload_lanes",
		"wcqload_steals_total",
		"wcqload_pool_hits_total",
		"wcqload_watchdog_stalls_total",
		"wcqload_admit_latency_p99_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+series+" ") {
			t.Fatalf("/metrics missing series %s", series)
		}
		if !strings.Contains(body, "\n"+series+" ") && !strings.HasPrefix(body, series+" ") {
			t.Fatalf("/metrics has TYPE but no sample for %s", series)
		}
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Health flips to draining; metrics still answer with finals.
	rec = httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz = %d after drain, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d after drain", rec.Code)
	}
}

// TestOverloadSheds pins the degradation behavior end to end: at 3×
// capacity under the Reject policy a meaningful fraction of submits
// must shed, and goodput must not collapse (delivered keeps growing).
func TestOverloadSheds(t *testing.T) {
	s, err := NewServer(short(admission.Reject, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(150 * time.Millisecond)
	mid := s.ctrl.Stats().Delivered
	time.Sleep(150 * time.Millisecond)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st := s.ctrl.Stats()
	if st.ShedFull == 0 {
		t.Fatalf("3x overload shed nothing: %+v", st)
	}
	if st.Delivered <= mid {
		t.Fatalf("delivery stalled under overload: %d then %d", mid, st.Delivered)
	}
}
