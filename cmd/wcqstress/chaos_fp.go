//go:build wcq_failpoints

package main

import "wcqueue/internal/failpoint"

// chaosAvailable reports whether this binary carries the failpoint
// layer; -chaos refuses to run without it rather than silently doing
// nothing.
const chaosAvailable = true

// chaosEnable turns on seeded schedule perturbation at every woven
// failpoint site.
func chaosEnable(seed uint64) { failpoint.EnableChaos(seed) }

// chaosTrace returns the recent perturbation trace, printed on
// failure so a run shrinks to "seed + site trace".
func chaosTrace() string { return failpoint.Trace() }
