//go:build !wcq_failpoints

package main

// Without the wcq_failpoints build tag the failpoint sites compile to
// nothing, so chaos mode has nothing to drive: -chaos errors out and
// tells the user to rebuild with the tag.
const chaosAvailable = false

func chaosEnable(uint64) {}

func chaosTrace() string { return "" }
