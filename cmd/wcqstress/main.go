// Command wcqstress runs long-form correctness stress on any queue in
// the registry: multi-producer multi-consumer runs with full
// accounting (no loss, no duplication, per-producer FIFO order), the
// necessary conditions for linearizable FIFO behaviour.
//
// Usage:
//
//	wcqstress -queue wCQ -producers 8 -consumers 8 -per 1000000
//	wcqstress -queue all -seconds 10
//	wcqstress -queue all -storm -per 2000     # registration-storm mode
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/queues/queueiface"
	"wcqueue/internal/queues/registry"
)

func main() {
	var (
		name      = flag.String("queue", "wCQ", "queue name or 'all'")
		producers = flag.Int("producers", runtime.GOMAXPROCS(0)/2+1, "producer goroutines")
		consumers = flag.Int("consumers", runtime.GOMAXPROCS(0)/2+1, "consumer goroutines")
		per       = flag.Uint64("per", 200_000, "values per producer")
		order     = flag.Uint("ring-order", 14, "wCQ/SCQ ring order")
		llsc      = flag.Bool("llsc", false, "use emulated-F&A builds of wCQ/SCQ")
		storm     = flag.Bool("storm", false,
			"registration-storm mode: every worker registers, moves one value and unregisters per cycle (-per cycles each); asserts the handle high-water mark stays at peak concurrency")
	)
	flag.Parse()

	names := []string{*name}
	if *name == "all" {
		// Every FIFO-conforming queue in the registry: a queue
		// registered later is stressed automatically, rather than
		// silently skipped by a stale hardcoded list.
		names = registry.ConformingNames()
	}
	exit := 0
	for _, n := range names {
		q, err := registry.New(n, registry.Config{
			Threads:     *producers + *consumers,
			RingOrder:   *order,
			EmulatedFAA: *llsc,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcqstress:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		if *storm {
			workers := *producers + *consumers
			if err := registrationStorm(q, workers, *per); err != nil {
				fmt.Printf("%-12s storm: %v\n", q.Name(), err)
				exit = 1
				continue
			}
			hw := "n/a"
			if ha, ok := q.(interface{ HandleHighWater() int }); ok {
				w := ha.HandleHighWater()
				hw = fmt.Sprint(w)
				if w > workers {
					fmt.Printf("%-12s storm: high-water %d exceeds %d concurrent workers\n", q.Name(), w, workers)
					exit = 1
					continue
				}
			}
			fmt.Printf("%-12s %d workers × %d register→op→unregister cycles: OK (%.2fs, high-water %s)\n",
				q.Name(), workers, *per, time.Since(t0).Seconds(), hw)
			continue
		}
		rep := stress(q, *producers, *consumers, *per)
		status := "OK"
		if rep.Err() != nil {
			status = rep.Err().Error()
			exit = 1
		}
		fmt.Printf("%-10s %d producers × %d values, %d consumers: %s (%.2fs, %d dequeued)\n",
			q.Name(), *producers, *per, *consumers, status, time.Since(t0).Seconds(), rep.Total)
	}
	os.Exit(exit)
}

// registrationStorm churns handle registrations from `workers`
// goroutines: each cycle registers, round-trips one value and
// unregisters. Dynamic registration must never fail, and the value
// must come back (single-handle FIFO per cycle).
func registrationStorm(q queueiface.Queue, workers int, cycles uint64) error {
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < cycles; i++ {
				h, err := q.Register()
				if err != nil {
					errs <- fmt.Errorf("cycle %d: %w", i, err)
					return
				}
				v := check.Encode(w, i)
				for !q.Enqueue(h, v) {
					runtime.Gosched()
				}
				for {
					if _, ok := q.Dequeue(h); ok {
						break
					}
					runtime.Gosched()
				}
				q.Unregister(h)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func stress(q queueiface.Queue, producers, consumers int, per uint64) check.Report {
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * per
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer wg.Done()
			for s := uint64(0); s < per; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	return check.Verify(streams, producers, per)
}
