// Command wcqstress runs long-form correctness stress on any queue in
// the registry: multi-producer multi-consumer runs with full
// accounting (no loss, no duplication, per-producer FIFO order), the
// necessary conditions for linearizable FIFO behaviour.
//
// Usage:
//
//	wcqstress -queue wCQ -producers 8 -consumers 8 -per 1000000
//	wcqstress -queue all -seconds 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/queues/queueiface"
	"wcqueue/internal/queues/registry"
)

func main() {
	var (
		name      = flag.String("queue", "wCQ", "queue name or 'all'")
		producers = flag.Int("producers", runtime.GOMAXPROCS(0)/2+1, "producer goroutines")
		consumers = flag.Int("consumers", runtime.GOMAXPROCS(0)/2+1, "consumer goroutines")
		per       = flag.Uint64("per", 200_000, "values per producer")
		order     = flag.Uint("ring-order", 14, "wCQ/SCQ ring order")
		llsc      = flag.Bool("llsc", false, "use emulated-F&A builds of wCQ/SCQ")
	)
	flag.Parse()

	names := []string{*name}
	if *name == "all" {
		// Every FIFO-conforming queue in the registry: a queue
		// registered later is stressed automatically, rather than
		// silently skipped by a stale hardcoded list.
		names = registry.ConformingNames()
	}
	exit := 0
	for _, n := range names {
		q, err := registry.New(n, registry.Config{
			Threads:     *producers + *consumers,
			RingOrder:   *order,
			EmulatedFAA: *llsc,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcqstress:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		rep := stress(q, *producers, *consumers, *per)
		status := "OK"
		if rep.Err() != nil {
			status = rep.Err().Error()
			exit = 1
		}
		fmt.Printf("%-10s %d producers × %d values, %d consumers: %s (%.2fs, %d dequeued)\n",
			q.Name(), *producers, *per, *consumers, status, time.Since(t0).Seconds(), rep.Total)
	}
	os.Exit(exit)
}

func stress(q queueiface.Queue, producers, consumers int, per uint64) check.Report {
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * per
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer wg.Done()
			for s := uint64(0); s < per; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	return check.Verify(streams, producers, per)
}
