// Command wcqstress runs long-form correctness stress on any queue in
// the registry: multi-producer multi-consumer runs with full
// accounting (no loss, no duplication, per-producer FIFO order), the
// necessary conditions for linearizable FIFO behaviour.
//
// Usage:
//
//	wcqstress -queue wCQ -producers 8 -consumers 8 -per 1000000
//	wcqstress -queue all -seconds 10
//	wcqstress -queue all -storm -per 2000     # registration-storm mode
//	wcqstress -queue all -block -per 50000    # blocking mode: parked
//	                                          # consumers, bursty
//	                                          # producers, Close mid-run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/core"
	"wcqueue/internal/queues/queueiface"
	"wcqueue/internal/queues/registry"
)

// defaultWorkers picks the per-side (producer and consumer) default so
// the run saturates the machine without oversubscribing it: half of
// GOMAXPROCS each, floored at 1 so single-proc environments
// (GOMAXPROCS=1 containers, CI smoke at -cpu 1) still get one producer
// and one consumer — every loop in this command yields, so the two
// make progress cooperatively on one P.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	if n > check.MaxProducers {
		n = check.MaxProducers // the value encoding's producer-id budget
	}
	return n
}

func main() {
	var (
		name      = flag.String("queue", "wCQ", "queue name or 'all'")
		producers = flag.Int("producers", defaultWorkers(), "producer goroutines")
		consumers = flag.Int("consumers", defaultWorkers(), "consumer goroutines")
		per       = flag.Uint64("per", 200_000, "values per producer")
		order     = flag.Uint("ring-order", 14, "wCQ/SCQ ring order")
		llsc      = flag.Bool("llsc", false, "use emulated-F&A builds of wCQ/SCQ")
		storm     = flag.Bool("storm", false,
			"registration-storm mode: every worker registers, moves one value and unregisters per cycle (-per cycles each), with concurrent lane resizes on elastic queues; asserts the handle high-water mark stays at peak concurrency")
		block = flag.Bool("block", false,
			"blocking mode: consumers park in DequeueWait, producers send bursts through EnqueueWait, and the queue is closed mid-run; asserts every accepted value is delivered exactly once before ErrClosed")
		overload = flag.Bool("overload", false,
			"oversubscription + overload mode: -oversub submitter goroutines (tens of thousands over few Ps) push through the admission controller over an elastic striped queue; the controller closes at half traffic; asserts the exactly-once accepted/shed/closed ledger value by value")
		oversub = flag.Int("oversub", 50_000,
			"submitter goroutine count for -overload mode")
		deadlinePol = flag.Bool("deadline", true,
			"-overload mode: use the Deadline admission policy (submitters park, bounded) instead of Reject")
		chaos = flag.Bool("chaos", false,
			"perturb the schedule at every failpoint site with a seeded pseudo-random pattern (requires a -tags wcq_failpoints build); composes with any mode")
		seedFlag = flag.Int64("seed", 0,
			"seed for every randomized decision in the run (producer burst timing, -chaos perturbation); 0 derives one from the clock. The seed is printed at startup so any run can be replayed")
	)
	flag.Parse()

	seed := *seedFlag
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	fmt.Printf("wcqstress: seed %d (replay with -seed %d)\n", seed, seed)
	if *chaos {
		if !chaosAvailable {
			fmt.Fprintln(os.Stderr, "wcqstress: -chaos needs the failpoint layer; rebuild with -tags wcq_failpoints")
			os.Exit(1)
		}
		chaosEnable(uint64(seed))
	}

	if *producers < 1 || *consumers < 1 {
		fmt.Fprintf(os.Stderr, "wcqstress: -producers %d / -consumers %d out of range (want >= 1 each)\n", *producers, *consumers)
		os.Exit(1)
	}
	if *producers > check.MaxProducers {
		fmt.Fprintf(os.Stderr, "wcqstress: -producers %d exceeds the value encoding's producer budget (max %d: ids must fit the 52-bit direct-queue payload; see check.Encode)\n", *producers, check.MaxProducers)
		os.Exit(1)
	}
	if *per < 1 {
		fmt.Fprintf(os.Stderr, "wcqstress: -per %d out of range (want >= 1)\n", *per)
		os.Exit(1)
	}
	modes := 0
	for _, m := range []bool{*storm, *block, *overload} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "wcqstress: -storm, -block and -overload are mutually exclusive")
		os.Exit(1)
	}

	// Overload mode runs over the admission layer, not a registry
	// queue: it is the service-stack stress, and -queue does not apply.
	if *overload {
		if *oversub < 1 {
			fmt.Fprintf(os.Stderr, "wcqstress: -oversub %d out of range (want >= 1)\n", *oversub)
			os.Exit(1)
		}
		t0 := time.Now()
		if err := overloadStress(*oversub, *consumers, *per, *order, *deadlinePol); err != nil {
			fmt.Printf("overload: %v\n", err)
			failTraceErr := *chaos
			if failTraceErr {
				if tr := chaosTrace(); tr != "" {
					fmt.Printf("  chaos trace: %s\n", tr)
				}
			}
			os.Exit(1)
		}
		fmt.Printf("overload: %d submitters, %d consumers, Close at half traffic: OK (%.2fs)\n",
			*oversub, *consumers, time.Since(t0).Seconds())
		return
	}

	names := []string{*name}
	if *name == "all" {
		// Every FIFO-conforming queue in the registry: a queue
		// registered later is stressed automatically, rather than
		// silently skipped by a stale hardcoded list. Blocking mode
		// restricts to the queues that implement the blocking API.
		if *block {
			names = registry.BlockingNames()
		} else {
			names = registry.ConformingNames()
		}
	}
	exit := 0
	// A failing chaos run is reproduced from the printed seed; the
	// trace of acting perturbations narrows down where the schedule
	// was bent when the accounting broke.
	failTrace := func() {
		if *chaos {
			if tr := chaosTrace(); tr != "" {
				fmt.Printf("  chaos trace: %s\n", tr)
			}
		}
	}
	for _, n := range names {
		q, err := registry.New(n, registry.Config{
			Threads:     *producers + *consumers,
			RingOrder:   *order,
			EmulatedFAA: *llsc,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcqstress:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		if *storm {
			workers := *producers + *consumers
			if err := registrationStorm(q, workers, *per); err != nil {
				fmt.Printf("%-12s storm: %v\n", q.Name(), err)
				failTrace()
				exit = 1
				continue
			}
			hw := "n/a"
			if ha, ok := q.(interface{ HandleHighWater() int }); ok {
				w := ha.HandleHighWater()
				hw = fmt.Sprint(w)
				if w > workers {
					fmt.Printf("%-12s storm: high-water %d exceeds %d concurrent workers\n", q.Name(), w, workers)
					failTrace()
					exit = 1
					continue
				}
			}
			fmt.Printf("%-12s %d workers × %d register→op→unregister cycles: OK (%.2fs, high-water %s)\n",
				q.Name(), workers, *per, time.Since(t0).Seconds(), hw)
			continue
		}
		if *block {
			bq, ok := q.(queueiface.BlockingQueue)
			if !ok {
				fmt.Printf("%-12s block: skipped (no blocking API)\n", q.Name())
				continue
			}
			delivered, err := blockingStress(bq, *producers, *consumers, *per, seed)
			if err != nil {
				fmt.Printf("%-12s block: %v\n", q.Name(), err)
				failTrace()
				exit = 1
				continue
			}
			fmt.Printf("%-12s block: %d producers (bursty), %d consumers (parked), Close mid-run: OK (%.2fs, %d accepted+delivered)\n",
				q.Name(), *producers, *consumers, time.Since(t0).Seconds(), delivered)
			continue
		}
		rep := stress(q, *producers, *consumers, *per)
		status := "OK"
		if rep.Err() != nil {
			status = rep.Err().Error()
			exit = 1
		}
		if rep.Err() != nil {
			failTrace()
		}
		fmt.Printf("%-10s %d producers × %d values, %d consumers: %s (%.2fs, %d dequeued)\n",
			q.Name(), *producers, *per, *consumers, status, time.Since(t0).Seconds(), rep.Total)
	}
	os.Exit(exit)
}

// registrationStorm churns handle registrations from `workers`
// goroutines: each cycle registers, round-trips one value and
// unregisters. Dynamic registration must never fail, and the value
// must come back (single-handle FIFO per cycle). When the queue is
// elastic (queueiface.Resizable) a resizer goroutine oscillates the
// lane count for the whole storm, so registration churn runs
// concurrently with directory publishes, lane drains and retirements —
// the adversarial overlap of the two rebinding protocols.
func registrationStorm(q queueiface.Queue, workers int, cycles uint64) error {
	stopResize := make(chan struct{})
	var resizer sync.WaitGroup
	if rq, ok := q.(queueiface.Resizable); ok {
		resizer.Add(1)
		go func() {
			defer resizer.Done()
			n := 1
			for {
				select {
				case <-stopResize:
					return
				default:
				}
				n = n%8 + 1
				if err := rq.Resize(n); err != nil {
					return
				}
				runtime.Gosched()
			}
		}()
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < cycles; i++ {
				h, err := q.Register()
				if err != nil {
					errs <- fmt.Errorf("cycle %d: %w", i, err)
					return
				}
				v := check.Encode(w, i)
				for !q.Enqueue(h, v) {
					runtime.Gosched()
				}
				for {
					if _, ok := q.Dequeue(h); ok {
						break
					}
					runtime.Gosched()
				}
				q.Unregister(h)
			}
		}(w)
	}
	wg.Wait()
	close(stopResize)
	resizer.Wait()
	close(errs)
	return <-errs
}

// blockingStress drives the blocking API under the adversarial shape
// the eventcount protocol must survive: consumers that park between
// bursts, producers that sleep between bursts (so consumers really do
// park, not just spin), and a Close that lands mid-traffic. It then
// verifies the close/drain contract: every value whose EnqueueWait
// returned nil is delivered exactly once, per-producer FIFO order
// holds within each consumer stream, every delivered set is the exact
// accepted prefix, and every worker observes ErrClosed and exits. A
// lost wakeup shows up as a hung run (the CI step's timeout).
func blockingStress(q queueiface.BlockingQueue, producers, consumers int, per uint64, seed int64) (uint64, error) {
	accepted := make([]uint64, producers)
	streams := make([][]uint64, consumers)
	errs := make(chan error, producers+consumers)
	var wg, pwg sync.WaitGroup

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			var local []uint64
			for {
				v, err := q.DequeueWait(context.Background(), h)
				if err != nil {
					if !errors.Is(err, core.ErrClosed) {
						errs <- fmt.Errorf("consumer %d: %w", c, err)
					}
					streams[c] = local
					return
				}
				local = append(local, v)
			}
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			return 0, err
		}
		pwg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer pwg.Done()
			defer q.Unregister(h)
			rng := rand.New(rand.NewSource(seed + int64(p) + 1))
			for s := uint64(0); s < per; s++ {
				err := q.EnqueueWait(context.Background(), h, check.Encode(p, s))
				if err != nil {
					if !errors.Is(err, core.ErrClosed) {
						errs <- fmt.Errorf("producer %d: %w", p, err)
					}
					return
				}
				atomic.AddUint64(&accepted[p], 1)
				if s%97 == 0 {
					// Burst boundary: stall long enough for consumers
					// to drain and park.
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				}
			}
		}(p, h)
	}

	// Close mid-run: once roughly half the traffic is through (or the
	// producers finish early on tiny -per values).
	half := uint64(producers) * per / 2
	for {
		var total uint64
		for p := range accepted {
			total += atomic.LoadUint64(&accepted[p])
		}
		if total >= half {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	q.Close()
	pwg.Wait()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}

	seen := make([]map[uint64]bool, producers)
	for p := range seen {
		seen[p] = make(map[uint64]bool)
	}
	var delivered uint64
	for _, s := range streams {
		last := make([]int64, producers)
		for p := range last {
			last[p] = -1
		}
		for _, v := range s {
			p, seq := check.Decode(v)
			if p < 0 || p >= producers || seq >= per {
				return 0, fmt.Errorf("corrupt value %#x", v)
			}
			if seen[p][seq] {
				return 0, fmt.Errorf("value p%d/%d delivered twice", p, seq)
			}
			seen[p][seq] = true
			if int64(seq) <= last[p] {
				return 0, fmt.Errorf("producer %d order violation: %d after %d", p, seq, last[p])
			}
			last[p] = int64(seq)
			delivered++
		}
	}
	for p := 0; p < producers; p++ {
		acc := atomic.LoadUint64(&accepted[p])
		if uint64(len(seen[p])) != acc {
			return 0, fmt.Errorf("producer %d: accepted %d, delivered %d", p, acc, len(seen[p]))
		}
		for s := uint64(0); s < acc; s++ {
			if !seen[p][s] {
				return 0, fmt.Errorf("producer %d: accepted value %d never delivered", p, s)
			}
		}
	}
	return delivered, nil
}

func stress(q queueiface.Queue, producers, consumers int, per uint64) check.Report {
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * per
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer wg.Done()
			for s := uint64(0); s < per; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	return check.Verify(streams, producers, per)
}
