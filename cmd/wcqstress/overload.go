package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/wcq"
)

// Outcome codes for the overload ledger: every submitted value ends
// in exactly one state on the submit side, and the delivery side must
// agree — accepted values arrive exactly once, shed and closed-out
// values never arrive. This is the oversubscription analogue of
// check.Report: the queues' exactly-once contract extended across the
// admission layer.
const (
	outUnknown uint32 = iota
	outAccepted
	outShed
	outClosed
)

// overloadStress is the oversubscription + overload harness (DESIGN.md
// §16): `submitters` goroutines — tens of thousands, far beyond
// GOMAXPROCS — each push `per` values through the admission
// controller over an elastic striped queue, while a small consumer
// pool drains. The controller closes at half traffic, so the run
// exercises all three exits (accepted, shed, closed) concurrently
// with the drain protocol, and a progress watchdog samples the run
// throughout. Under the Deadline policy the submitters park in
// EnqueueWait by the tens of thousands — the waiter-list regime the
// eventcounts were built for.
func overloadStress(submitters, consumers int, per uint64, order uint, deadline bool) error {
	q, err := wcq.NewStriped[admission.Item[uint64]](order, 2)
	if err != nil {
		return err
	}
	pol, timeout := admission.Reject, time.Duration(0)
	if deadline {
		pol, timeout = admission.Deadline, 2*time.Millisecond
	}
	ctrl := admission.NewController[uint64](q, admission.Config{Policy: pol, SubmitTimeout: timeout})

	total := uint64(submitters) * per
	outcome := make([]atomic.Uint32, total)
	delivered := make([]atomic.Uint32, total)

	var stalls atomic.Uint64
	dog := admission.NewWatchdog(admission.WatchdogConfig{
		Grace:    3,
		Interval: 50 * time.Millisecond,
		Pending:  ctrl.InFlight,
		Waiters: func() (int, int) {
			st := q.Stats()
			return st.EnqWaiters, st.DeqWaiters
		},
		// Stall reports under oversubscription are informational —
		// 25× more runnable goroutines than Ps genuinely starves
		// consumers for whole grace windows sometimes, and that is
		// exactly what the watchdog is for.
		OnStall: func(reports []admission.StallReport) { stalls.Add(uint64(len(reports))) },
	})

	var cwg sync.WaitGroup
	var taken atomic.Uint64
	for c := 0; c < consumers; c++ {
		prog := dog.Register(fmt.Sprintf("consumer-%d", c))
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := ctrl.Take(context.Background())
				if err != nil {
					return
				}
				if v >= total {
					panic(fmt.Sprintf("delivered out-of-range value %d", v))
				}
				if delivered[v].Add(1) != 1 {
					panic(fmt.Sprintf("value %d delivered twice", v))
				}
				taken.Add(1)
				prog.Bump()
			}
		}()
	}
	dog.Start()

	// The closer seals the queue once half the traffic has been
	// attempted: the remaining submitters race Close from every state
	// (pre-submit, parked in EnqueueWait, mid fast path).
	var attempts atomic.Uint64
	closeAt := total / 2
	go func() {
		for attempts.Load() < closeAt {
			time.Sleep(200 * time.Microsecond)
		}
		ctrl.Close()
	}()

	var swg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		swg.Add(1)
		go func(g uint64) {
			defer swg.Done()
			for i := uint64(0); i < per; i++ {
				v := g*per + i
				attempts.Add(1)
				err := ctrl.Submit(context.Background(), v)
				switch {
				case err == nil:
					outcome[v].Store(outAccepted)
				case errors.Is(err, admission.ErrShed):
					outcome[v].Store(outShed)
				default:
					outcome[v].Store(outClosed)
				}
			}
		}(uint64(g))
	}
	swg.Wait()
	// Every submitter has resolved; if the closer never fired (all
	// traffic shed before closeAt — impossible since attempts counts
	// attempts, but belt and braces) close now so consumers exit.
	ctrl.Close()
	cwg.Wait()
	dog.Stop()

	// The ledger, value by value.
	var acc, shed, closed uint64
	for v := uint64(0); v < total; v++ {
		o, d := outcome[v].Load(), delivered[v].Load()
		switch o {
		case outAccepted:
			acc++
			if d != 1 {
				return fmt.Errorf("value %d accepted but delivered %d times", v, d)
			}
		case outShed:
			shed++
			if d != 0 {
				return fmt.Errorf("value %d shed but delivered (phantom publish)", v)
			}
		case outClosed:
			closed++
			if d != 0 {
				return fmt.Errorf("value %d rejected at close but delivered", v)
			}
		default:
			return fmt.Errorf("value %d never resolved", v)
		}
	}
	// And the controller's counters must tell the same story.
	st := ctrl.Stats()
	if st.Accepted != acc || st.Shed() != shed {
		return fmt.Errorf("controller counters (accepted %d, shed %d) disagree with the per-value ledger (%d, %d)",
			st.Accepted, st.Shed(), acc, shed)
	}
	if st.Delivered != acc || taken.Load() != acc {
		return fmt.Errorf("delivered %d (consumers saw %d) != accepted %d", st.Delivered, taken.Load(), acc)
	}
	fmt.Printf("  overload: %d submitters × %d: %d accepted+delivered, %d shed, %d closed out, %d watchdog stalls\n",
		submitters, per, acc, shed, closed, stalls.Load())
	return nil
}
