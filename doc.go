// Package wcqueue is a from-scratch Go reproduction of "wCQ: A Fast
// Wait-Free Queue with Bounded Memory Usage" (Nikolaev & Ravindran,
// SPAA '22), grown toward a production-scale queueing substrate.
//
// The public API lives in the wcq and scq subpackages. Four queue
// shapes are exported: the paper's bounded wait-free wcq.Queue, the
// unbounded wcq.Unbounded (Appendix A) — which recycles drained rings
// through a bounded hazard-pointer-protected pool, so steady-state
// ring hops allocate nothing and its footprint stays flat — the
// lock-free scq.Queue baseline, and wcq.Striped — a sharded front-end
// striping W independent rings with per-handle lane affinity and
// work-stealing dequeues, for workloads that out-scale a single
// ring's fetch-and-add. All four support batched operations
// (EnqueueBatch/DequeueBatch) that reserve ring positions for k
// operations with a single fetch-and-add.
//
// The benchmark and correctness tools are cmd/wcqbench (with a -json
// emitter for machine-readable trajectory points, committed as
// BENCH_*.json) and cmd/wcqstress (whose -queue all iterates every
// FIFO-conforming queue in the registry). See DESIGN.md for the
// system inventory, the platform substitutions (§2), the batch/stripe
// design (§6-§7), and the ring-recycling reset/reuse safety argument
// (§8). The root package exists to host the per-figure benchmarks in
// bench_test.go.
package wcqueue
