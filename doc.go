// Package wcqueue is a from-scratch Go reproduction of "wCQ: A Fast
// Wait-Free Queue with Bounded Memory Usage" (Nikolaev & Ravindran,
// SPAA '22), grown toward a production-scale queueing substrate.
//
// The public API lives in the wcq and scq subpackages. The indirect
// (two-ring) shapes are: the paper's bounded wait-free wcq.Queue, the
// unbounded wcq.Unbounded (Appendix A) — which recycles drained rings
// through a bounded hazard-pointer-protected pool, so steady-state
// ring hops allocate nothing and its footprint stays flat — the
// lock-free scq.Queue baseline, and wcq.Striped — the recommended
// default front-end: a sharded queue over an elastic directory of
// independent lanes with per-handle lane affinity and work-stealing
// dequeues, whose contention-feedback governor resizes the lane count
// online within WithLaneBounds (DESIGN.md §13), so it tracks the
// machine and the load without tuning. Use wcq.Queue directly when a
// single total order is required. All support batched operations
// (EnqueueBatch/DequeueBatch) that reserve ring positions for k
// operations with a single fetch-and-add.
//
// For payloads that fit in 52 bits — pointers, small integers,
// anything mapped through a wcq.Codec — the direct-value shapes
// (wcq.Direct, wcq.DirectStriped, wcq.DirectUnbounded; DESIGN.md §11)
// store the value in the ring entry itself, halving the atomic-RMW
// count per transfer (~2× pairwise throughput single-threaded).
// Choosing between them: take Direct when the payload fits and raw
// throughput matters; take the indirect shapes when values are wider
// than 52 bits, when wait-freedom (rather than lock-freedom) is
// required, when you need the blocking/Close layer, or when lifetime
// operation counts can exceed the direct layout's tighter MaxOps
// budget (enforced: a bounded direct ring past its budget permanently
// reports full rather than risking cycle wrap; the unbounded direct
// shape renews the budget by hopping rings and has no such limit).
//
// Registration is dynamic: constructors take no thread count.
// Per-participant records live in chunked grow-only arenas published
// lock-free and bounded only by the 16-bit owner-id space (65535
// concurrent handles), with released slots recycled so goroutine
// churn keeps memory flat. Callers either hold an explicit Handle
// (zero-overhead) or use the handle-free methods, which take a
// per-P cached implicit handle per call — resident and used in place
// under a processor pin on wcq.Queue, within a few percent of the
// explicit path (DESIGN.md §9, §13).
//
// Alongside the non-blocking operations, every shape offers blocking
// waits and close/drain semantics (DESIGN.md §10): DequeueWait(ctx) /
// EnqueueWait(ctx, v) / DequeueBlock() park idle callers on an
// eventcount (internal/waitq) at zero CPU instead of spin-polling,
// and Close() fails subsequent enqueues while guaranteeing that every
// accepted value is drained — delivered exactly once — before blocked
// dequeuers observe wcq.ErrClosed, making the queues drop-in channel
// replacements for worker pools and pipelines (examples/workerpool).
// The non-blocking fast paths are unaffected while no waiter is
// parked.
//
// The benchmark and correctness tools are cmd/wcqbench (with a -json
// emitter for machine-readable trajectory points, committed as
// BENCH_*.json) and cmd/wcqstress (whose -queue all iterates every
// FIFO-conforming queue in the registry). See DESIGN.md for the
// system inventory, the platform substitutions (§2), the batch/stripe
// design (§6-§7), and the ring-recycling reset/reuse safety argument
// (§8). The root package exists to host the per-figure benchmarks in
// bench_test.go.
//
// Contributors: the repository's concurrency invariants are
// machine-checked by cmd/wcqlint (DESIGN.md §15). Run it before
// sending changes, either standalone as
//
//	go run ./cmd/wcqlint ./...
//
// or through the vet driver after installing the binary:
//
//	go vet -vettool=$(which wcqlint) ./...
//
// Findings are suppressed line-by-line with wcq:*-ok annotations, and
// every suppression must state the reason the exception is safe; a
// bare annotation is itself a finding.
package wcqueue
