// Package wcqueue is a from-scratch Go reproduction of "wCQ: A Fast
// Wait-Free Queue with Bounded Memory Usage" (Nikolaev & Ravindran,
// SPAA '22).
//
// The public API lives in the wcq and scq subpackages; the benchmark
// and correctness tools are cmd/wcqbench and cmd/wcqstress. See
// README.md for the map, DESIGN.md for the system inventory and
// platform substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The root package exists to host the per-figure benchmarks
// in bench_test.go.
package wcqueue
