// Bufchan: a buffered-channel-like construct built on wCQ. The paper's
// introduction singles this use out: "a number of languages, e.g.,
// Vlang, Go, can benefit from having a fast queue for their
// concurrency constructs — Go needs a queue for its buffered channel
// implementation."
//
// Chan[T] below provides Send/Recv/Close with buffered-channel
// semantics, but the buffer is a wait-free wCQ instead of a
// mutex-protected ring (which is what Go's runtime channel uses). The
// demo moves a workload through both and prints the throughputs; the
// point is feasibility and progress properties, not beating the
// runtime's tightly integrated scheduler wakeups.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wcqueue/wcq"
)

// Chan is a buffered channel whose buffer is a wait-free queue.
// Send and Recv spin-then-yield instead of parking on the scheduler.
// Like Go's chan, nothing is registered per goroutine: the handle-free
// wCQ methods borrow pooled handles inside the library, so Chan's API
// is exactly Send(v)/Recv() — the dynamic-registration redesign is
// what makes a chan-shaped wrapper this small.
type Chan[T any] struct {
	q      *wcq.Queue[T]
	closed sync.Once
	done   chan struct{}
}

// NewChan creates a channel with 2^order buffer slots.
func NewChan[T any](order uint) *Chan[T] {
	return &Chan[T]{
		q:    wcq.Must[T](order),
		done: make(chan struct{}),
	}
}

// Send delivers v, blocking (yield-spinning) while the buffer is full.
// Send on a closed channel returns false.
func (c *Chan[T]) Send(v T) bool {
	for spins := 0; ; spins++ {
		select {
		case <-c.done:
			return false
		default:
		}
		if c.q.Enqueue(v) {
			return true
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// Recv takes the next value; ok=false once the channel is closed and
// drained.
func (c *Chan[T]) Recv() (v T, ok bool) {
	for spins := 0; ; spins++ {
		if v, ok := c.q.Dequeue(); ok {
			return v, true
		}
		select {
		case <-c.done:
			// Closed: one final drain for stragglers.
			return c.q.Dequeue()
		default:
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// Close marks the channel closed.
func (c *Chan[T]) Close() { c.closed.Do(func() { close(c.done) }) }

const (
	messages = 300_000
	senders  = 4
	readers  = 4
)

func main() {
	// wCQ-backed channel.
	wcqElapsed := runWCQChan()
	// Native buffered channel, same topology.
	nativeElapsed := runNative()

	fmt.Printf("wcq-chan:   %d msgs in %v (%.2f Mmsg/s)\n",
		messages, wcqElapsed.Round(time.Millisecond), float64(messages)/wcqElapsed.Seconds()/1e6)
	fmt.Printf("native chan: %d msgs in %v (%.2f Mmsg/s)\n",
		messages, nativeElapsed.Round(time.Millisecond), float64(messages)/nativeElapsed.Seconds()/1e6)
	fmt.Println("wcq-chan additionally guarantees per-operation wait-freedom on the buffer.")
}

func runWCQChan() time.Duration {
	c := NewChan[int](12)
	var wg, rg sync.WaitGroup
	t0 := time.Now()
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < messages/senders; i++ {
				c.Send(s*messages + i)
			}
		}(s)
	}
	var got sync.WaitGroup
	got.Add(messages)
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				if _, ok := c.Recv(); !ok {
					return
				}
				got.Done()
			}
		}()
	}
	wg.Wait()
	got.Wait()
	c.Close()
	rg.Wait()
	return time.Since(t0)
}

func runNative() time.Duration {
	ch := make(chan int, 1<<12)
	var wg, rg sync.WaitGroup
	t0 := time.Now()
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < messages/senders; i++ {
				ch <- s*messages + i
			}
		}(s)
	}
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for range ch {
			}
		}()
	}
	wg.Wait()
	close(ch)
	rg.Wait()
	return time.Since(t0)
}
