// Framepool: a DPDK-style network frame pool. The paper's introduction
// motivates SCQ/wCQ with exactly this workload — "high-speed
// networking and storage libraries such as DPDK and SPDK use ring
// buffers for various purposes when allocating and transferring
// network frames" — and notes that DPDK's own ring is only
// pseudo-nonblocking: a preempted thread stalls every other thread.
//
// Here a fixed arena of frame buffers cycles through a wait-free free
// ring: RX goroutines allocate frames, fill them, and hand them to TX
// goroutines over a second ring; TX returns frames to the pool. No
// frame is ever allocated after startup, and a preempted RX or TX
// thread cannot stall the others.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wcqueue/wcq"
)

const (
	frameSize  = 2048 // bytes per frame, MTU-ish
	poolOrder  = 10   // 1024 frames in the arena
	rxThreads  = 3
	txThreads  = 3
	framesToTx = 200_000
)

// frameRef is an index into the arena (frames never move or copy).
type frameRef uint32

func main() {
	arena := make([]byte, frameSize<<poolOrder)

	// freeQ holds unused frame refs; txQ carries filled frames to TX.
	// No thread census: RX/TX goroutines register explicit handles on
	// their own schedule (and could spawn per connection burst).
	freeQ := wcq.Must[frameRef](poolOrder)
	txQ := wcq.Must[frameRef](poolOrder)

	// Seed the pool with every frame (handle-free: one-off traffic).
	for i := 0; i < 1<<poolOrder; i++ {
		if !freeQ.Enqueue(frameRef(i)) {
			panic("pool seeding overflow")
		}
	}

	var (
		wg       sync.WaitGroup
		sent     atomic.Int64
		rxDrops  atomic.Int64 // pool empty: receiver would drop the packet
		txSum    atomic.Uint64
		rxActive atomic.Int32
	)
	rxActive.Store(rxThreads)

	for r := 0; r < rxThreads; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer rxActive.Add(-1)
			// Explicit handles: the zero-overhead path for hot loops.
			hFree, _ := freeQ.Register()
			defer hFree.Unregister()
			hTx, _ := txQ.Register()
			defer hTx.Unregister()
			for sent.Load() < framesToTx {
				ref, ok := hFree.Dequeue()
				if !ok {
					rxDrops.Add(1) // out of frames: drop, as a NIC would
					runtime.Gosched()
					continue
				}
				// "Receive" a packet into the frame.
				frame := arena[int(ref)*frameSize : (int(ref)+1)*frameSize]
				frame[0] = byte(r)
				frame[1] = byte(ref)
				for !hTx.Enqueue(ref) {
					runtime.Gosched()
				}
				sent.Add(1)
			}
		}(r)
	}

	for t := 0; t < txThreads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hFree, _ := freeQ.Register()
			defer hFree.Unregister()
			hTx, _ := txQ.Register()
			defer hTx.Unregister()
			for {
				ref, ok := hTx.Dequeue()
				if !ok {
					if rxActive.Load() == 0 {
						if ref, ok = hTx.Dequeue(); !ok {
							return
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				// "Transmit": checksum the header, then recycle.
				frame := arena[int(ref)*frameSize : (int(ref)+1)*frameSize]
				txSum.Add(uint64(frame[0]) + uint64(frame[1]))
				for !hFree.Enqueue(ref) {
					runtime.Gosched()
				}
			}
		}()
	}

	wg.Wait()
	fmt.Printf("transmitted %d frames through a %d-frame arena (%d KiB, fixed)\n",
		sent.Load(), 1<<poolOrder, len(arena)/1024)
	fmt.Printf("rx drops under pool pressure: %d\n", rxDrops.Load())
	fmt.Printf("tx checksum: %d\n", txSum.Load())
	fmt.Printf("queue footprints: free=%dKiB tx=%dKiB (no allocation after startup)\n",
		freeQ.Footprint()/1024, txQ.Footprint()/1024)
}
