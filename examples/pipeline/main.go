// Pipeline: a three-stage parallel processing pipeline — parse,
// transform, aggregate — where every stage boundary is a bounded
// wait-free wCQ. This is the "user-space message passing and
// scheduling" use case from the paper's introduction: no stage can be
// blocked by a preempted peer, and total queue memory is fixed no
// matter how the stages are scheduled.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wcqueue/wcq"
)

type record struct {
	id    int
	value float64
}

const (
	totalRecords = 100_000
	stageWorkers = 4
	queueOrder   = 12 // 4096-element stage buffers
)

func main() {
	// Stage buffers need no thread census: workers register explicit
	// handles as they spawn (a production pipeline can scale stages up
	// and down; handle slots recycle).
	parsed := wcq.Must[record](queueOrder)
	transformed := wcq.Must[record](queueOrder)

	var (
		wg          sync.WaitGroup
		parseDone   atomic.Bool
		xformDone   atomic.Int32
		sum         atomic.Uint64 // transformed values, scaled to integers
		transferred atomic.Int64
	)

	// Stage 1: a single source parses records into `parsed`.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := mustRegister(parsed)
		defer h.Unregister()
		for i := 0; i < totalRecords; i++ {
			r := record{id: i, value: float64(i % 1000)}
			for !h.Enqueue(r) {
				runtime.Gosched() // stage buffer full: apply backpressure
			}
		}
		parseDone.Store(true)
	}()

	// Stage 2: workers transform `parsed` into `transformed`.
	for w := 0; w < stageWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := mustRegister(parsed)
			defer in.Unregister()
			out := mustRegister(transformed)
			defer out.Unregister()
			for {
				r, ok := in.Dequeue()
				if !ok {
					if parseDone.Load() {
						// Re-check after the done flag: a straggler
						// may have published between our dequeue and
						// the flag read.
						if r, ok = in.Dequeue(); !ok {
							break
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				r.value = r.value*1.5 + 1
				for !out.Enqueue(r) {
					runtime.Gosched()
				}
				transferred.Add(1)
			}
			xformDone.Add(1)
		}()
	}

	// Stage 3: workers aggregate `transformed`.
	for w := 0; w < stageWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := mustRegister(transformed)
			defer h.Unregister()
			for {
				r, ok := h.Dequeue()
				if !ok {
					if xformDone.Load() == stageWorkers {
						if r, ok = h.Dequeue(); !ok {
							break
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				sum.Add(uint64(r.value * 100))
			}
		}()
	}

	wg.Wait()

	fmt.Printf("pipeline processed %d records through 2 wait-free stage buffers\n", transferred.Load())
	fmt.Printf("aggregate: %.2f\n", float64(sum.Load())/100)
	fmt.Printf("stage buffers: %d KiB fixed footprint each\n", parsed.Footprint()/1024)
	s1, s2 := parsed.Stats(), transformed.Stats()
	fmt.Printf("wait-free slow paths taken: stage1=%d stage2=%d\n",
		s1.SlowEnqueues+s1.SlowDequeues, s2.SlowEnqueues+s2.SlowDequeues)
}

func mustRegister(q *wcq.Queue[record]) *wcq.Handle[record] {
	h, err := q.Register()
	if err != nil {
		panic(err)
	}
	return h
}
