// Pipeline: a three-stage parallel processing pipeline — parse,
// transform, aggregate — where every stage boundary is a bounded
// wait-free wCQ. This is the "user-space message passing and
// scheduling" use case from the paper's introduction: no stage can be
// blocked by a preempted peer, and total queue memory is fixed no
// matter how the stages are scheduled.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wcqueue/wcq"
)

type record struct {
	id    int
	value float64
}

const (
	totalRecords = 100_000
	stageWorkers = 4
	queueOrder   = 12 // 4096-element stage buffers
)

func main() {
	threads := 2*stageWorkers + 2
	parsed := wcq.Must[record](queueOrder, threads)
	transformed := wcq.Must[record](queueOrder, threads)

	var (
		wg          sync.WaitGroup
		parseDone   atomic.Bool
		xformDone   atomic.Int32
		sum         atomic.Uint64 // transformed values, scaled to integers
		transferred atomic.Int64
	)

	// Stage 1: a single source parses records into `parsed`.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := mustRegister(parsed)
		defer parsed.Unregister(h)
		for i := 0; i < totalRecords; i++ {
			r := record{id: i, value: float64(i % 1000)}
			for !parsed.Enqueue(h, r) {
				runtime.Gosched() // stage buffer full: apply backpressure
			}
		}
		parseDone.Store(true)
	}()

	// Stage 2: workers transform `parsed` into `transformed`.
	for w := 0; w < stageWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := mustRegister(parsed)
			defer parsed.Unregister(in)
			out := mustRegister(transformed)
			defer transformed.Unregister(out)
			for {
				r, ok := parsed.Dequeue(in)
				if !ok {
					if parseDone.Load() {
						// Re-check after the done flag: a straggler
						// may have published between our dequeue and
						// the flag read.
						if r, ok = parsed.Dequeue(in); !ok {
							break
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				r.value = r.value*1.5 + 1
				for !transformed.Enqueue(out, r) {
					runtime.Gosched()
				}
				transferred.Add(1)
			}
			xformDone.Add(1)
		}()
	}

	// Stage 3: workers aggregate `transformed`.
	for w := 0; w < stageWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := mustRegister(transformed)
			defer transformed.Unregister(h)
			for {
				r, ok := transformed.Dequeue(h)
				if !ok {
					if xformDone.Load() == stageWorkers {
						if r, ok = transformed.Dequeue(h); !ok {
							break
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				sum.Add(uint64(r.value * 100))
			}
		}()
	}

	wg.Wait()

	fmt.Printf("pipeline processed %d records through 2 wait-free stage buffers\n", transferred.Load())
	fmt.Printf("aggregate: %.2f\n", float64(sum.Load())/100)
	fmt.Printf("stage buffers: %d KiB fixed footprint each\n", parsed.Footprint()/1024)
	s1, s2 := parsed.Stats(), transformed.Stats()
	fmt.Printf("wait-free slow paths taken: stage1=%d stage2=%d\n",
		s1.SlowEnqueues+s1.SlowDequeues, s2.SlowEnqueues+s2.SlowDequeues)
}

func mustRegister(q *wcq.Queue[record]) *wcq.Handle {
	h, err := q.Register()
	if err != nil {
		panic(err)
	}
	return h
}
