// Quickstart: the smallest complete wCQ program — create a bounded
// wait-free queue, register handles, move values through it from
// multiple goroutines, and inspect the wait-free machinery's stats.
// The second half shows the batched fast paths (one ring reservation
// per k operations) and the striped front-end (W independent lanes
// with work-stealing dequeues).
package main

import (
	"fmt"
	"sync"

	"wcqueue/wcq"
)

func main() {
	// A queue of 2^10 = 1024 strings, used by up to 8 goroutines.
	q := wcq.Must[string](10, 8)

	fmt.Printf("capacity=%d footprint=%dKiB maxOps=%.1e\n",
		q.Cap(), q.Footprint()/1024, float64(q.MaxOps()))

	var wg sync.WaitGroup
	const producers, perProducer = 3, 5

	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h *wcq.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			for i := 0; i < perProducer; i++ {
				msg := fmt.Sprintf("producer-%d message-%d", p, i)
				for !q.Enqueue(h, msg) {
					// Full queues reject enqueues rather than block.
				}
			}
		}(p, h)
	}
	wg.Wait()

	// Drain from the main goroutine with its own handle.
	h, err := q.Register()
	if err != nil {
		panic(err)
	}
	defer q.Unregister(h)
	n := 0
	for {
		msg, ok := q.Dequeue(h)
		if !ok {
			break
		}
		n++
		fmt.Println("got:", msg)
	}
	fmt.Printf("drained %d messages\n", n)

	s := q.Stats()
	fmt.Printf("slow-path enqueues=%d dequeues=%d helps=%d (0 under no contention)\n",
		s.SlowEnqueues, s.SlowDequeues, s.Helps)

	// Batched operations: one ring reservation (fetch-and-add) covers
	// the whole slice instead of one per element — the hot-path cost
	// at high core counts.
	batch := []string{"b-0", "b-1", "b-2", "b-3"}
	if got := q.EnqueueBatch(h, batch); got != len(batch) {
		panic("queue unexpectedly full")
	}
	out := make([]string, 8)
	got := q.DequeueBatch(h, out) // up to 8, returns 4 here, in FIFO order
	fmt.Printf("batch: enqueued %d, dequeued %v\n", len(batch), out[:got])

	// Striped: 4 independent lanes, FIFO per handle. Each handle's
	// enqueues go to its own lane; dequeues steal across lanes.
	sq := wcq.MustStriped[string](10, 8, 4)
	sh, err := sq.Register()
	if err != nil {
		panic(err)
	}
	defer sq.Unregister(sh)
	sq.Enqueue(sh, "striped-hello")
	if v, ok := sq.Dequeue(sh); ok {
		fmt.Printf("striped (%d lanes, cap %d): got %q\n", sq.Stripes(), sq.Cap(), v)
	}
}
