// Quickstart: the smallest complete wCQ program — create a bounded
// wait-free queue and move values through it from multiple
// goroutines. Since the dynamic-registration redesign no thread count
// is declared up front: goroutines either call the handle-free
// methods directly (the library borrows a pooled handle per call) or
// register an explicit Handle for the zero-overhead fast path. The
// second half shows the batched fast paths (one ring reservation per
// k operations) and the striped front-end (W independent lanes with
// work-stealing dequeues).
package main

import (
	"fmt"
	"sync"

	"wcqueue/wcq"
)

func main() {
	// A queue of 2^10 = 1024 strings. Any number of goroutines (up to
	// 65535 concurrently) may use it; nothing is declared up front.
	q := wcq.Must[string](10)

	fmt.Printf("capacity=%d footprint=%dKiB maxOps=%.1e\n",
		q.Cap(), q.Footprint()/1024, float64(q.MaxOps()))

	var wg sync.WaitGroup
	const producers, perProducer = 3, 5

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				msg := fmt.Sprintf("producer-%d message-%d", p, i)
				// Handle-free: the library borrows a pooled handle.
				for !q.Enqueue(msg) {
					// Full queues reject enqueues rather than block.
				}
			}
		}(p)
	}
	wg.Wait()

	// Drain from the main goroutine through an explicit handle — the
	// zero-overhead path for goroutines with many operations.
	h, err := q.Register()
	if err != nil {
		panic(err)
	}
	defer h.Unregister()
	n := 0
	for {
		msg, ok := h.Dequeue()
		if !ok {
			break
		}
		n++
		fmt.Println("got:", msg)
	}
	fmt.Printf("drained %d messages\n", n)

	s := q.Stats()
	fmt.Printf("slow-path enqueues=%d dequeues=%d helps=%d (0 under no contention)\n",
		s.SlowEnqueues, s.SlowDequeues, s.Helps)
	fmt.Printf("handles: live=%d high-water=%d (slots recycle; memory tracks the peak)\n",
		q.LiveHandles(), q.HandleHighWater())

	// Batched operations: one ring reservation (fetch-and-add) covers
	// the whole slice instead of one per element — the hot-path cost
	// at high core counts.
	batch := []string{"b-0", "b-1", "b-2", "b-3"}
	if got := h.EnqueueBatch(batch); got != len(batch) {
		panic("queue unexpectedly full")
	}
	out := make([]string, 8)
	got := h.DequeueBatch(out) // up to 8, returns 4 here, in FIFO order
	fmt.Printf("batch: enqueued %d, dequeued %v\n", len(batch), out[:got])

	// Striped: 4 independent lanes, FIFO per handle. Each handle's
	// enqueues go to its own lane; dequeues steal across lanes.
	sq := wcq.MustStriped[string](10, 4)
	sh, err := sq.Register()
	if err != nil {
		panic(err)
	}
	defer sh.Unregister()
	sh.Enqueue("striped-hello")
	if v, ok := sh.Dequeue(); ok {
		fmt.Printf("striped (%d lanes, cap %d): got %q\n", sq.Stripes(), sq.Cap(), v)
	}

	// Direct: when the payload fits in 52 bits (small integers,
	// pointers via wcq.PointerCodec, or a custom wcq.Codec), the value
	// lives in the ring entry itself — half the atomics per transfer,
	// roughly 2x pairwise throughput. The trade: lock-free instead of
	// wait-free, no blocking/Close layer, and a tighter per-ring
	// operation budget (MaxOps). Prefer Direct on hot paths moving ids
	// or pointers; keep Queue for wide values, wait-freedom, or
	// blocking consumers.
	dq := wcq.MustDirect[uint32](10)
	dq.Enqueue(42) // handle-free by construction: no registration at all
	if v, ok := dq.Dequeue(); ok {
		fmt.Printf("direct (cap %d, %d value bits, maxOps %.1e): got %d\n",
			dq.Cap(), dq.ValueBits(), float64(dq.MaxOps()), v)
	}
}
