// Quickstart: the smallest complete wCQ program — create a bounded
// wait-free queue, register handles, move values through it from
// multiple goroutines, and inspect the wait-free machinery's stats.
package main

import (
	"fmt"
	"sync"

	"wcqueue/wcq"
)

func main() {
	// A queue of 2^10 = 1024 strings, used by up to 8 goroutines.
	q := wcq.Must[string](10, 8)

	fmt.Printf("capacity=%d footprint=%dKiB maxOps=%.1e\n",
		q.Cap(), q.Footprint()/1024, float64(q.MaxOps()))

	var wg sync.WaitGroup
	const producers, perProducer = 3, 5

	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h *wcq.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			for i := 0; i < perProducer; i++ {
				msg := fmt.Sprintf("producer-%d message-%d", p, i)
				for !q.Enqueue(h, msg) {
					// Full queues reject enqueues rather than block.
				}
			}
		}(p, h)
	}
	wg.Wait()

	// Drain from the main goroutine with its own handle.
	h, err := q.Register()
	if err != nil {
		panic(err)
	}
	defer q.Unregister(h)
	n := 0
	for {
		msg, ok := q.Dequeue(h)
		if !ok {
			break
		}
		n++
		fmt.Println("got:", msg)
	}
	fmt.Printf("drained %d messages\n", n)

	s := q.Stats()
	fmt.Printf("slow-path enqueues=%d dequeues=%d helps=%d (0 under no contention)\n",
		s.SlowEnqueues, s.SlowDequeues, s.Helps)
}
