// Workerpool: the wCQ queue as a drop-in channel replacement. Before
// the blocking layer (DESIGN.md §10), consumers of a quiet queue had
// to spin-poll Dequeue; here the workers park in DequeueWait — zero
// CPU while idle — and are woken by enqueues, released by Close with
// full drain semantics (every accepted job is processed, then every
// worker sees wcq.ErrClosed), or cut loose early through context
// cancellation.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wcqueue/wcq"
)

type job struct {
	id int
}

func main() {
	// Part 1: run to completion. Close() guarantees the backlog drains
	// before the workers are told the queue is done.
	q := wcq.Must[job](10)
	var processed atomic.Int64
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := q.Register() // explicit handle: the fast path
			if err != nil {
				panic(err)
			}
			defer h.Unregister()
			for {
				j, err := h.DequeueWait(context.Background())
				if errors.Is(err, wcq.ErrClosed) {
					return // queue closed and fully drained
				}
				if err != nil {
					panic(err)
				}
				processed.Add(1) // "handle" the job
				_ = j
			}
		}(w)
	}

	const jobs = 1000
	for i := 0; i < jobs; i++ {
		// EnqueueWait blocks while the pool is saturated (queue full)
		// instead of dropping or spinning.
		if err := q.EnqueueWait(context.Background(), job{id: i}); err != nil {
			panic(err)
		}
	}
	q.Close() // no more jobs: fail new enqueues, drain, release workers
	wg.Wait()
	fmt.Printf("drained pool: %d/%d jobs processed, queue closed=%v\n",
		processed.Load(), jobs, q.Closed())

	// Part 2: cancellation. Workers waiting on an idle queue unpark
	// with ctx.Err() when their context is canceled — the shutdown
	// path for "stop now, abandon the backlog" semantics.
	q2 := wcq.Must[job](4)
	ctx, cancel := context.WithCancel(context.Background())
	var canceled atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Handle-free blocking calls work too; they borrow a
				// pooled handle for the duration of the wait.
				_, err := q2.DequeueWait(ctx)
				if errors.Is(err, context.Canceled) {
					canceled.Add(1)
					return
				}
				if errors.Is(err, wcq.ErrClosed) {
					return
				}
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // all four workers are parked, 0% CPU
	cancel()
	wg.Wait()
	fmt.Printf("canceled pool: %d/%d idle workers unparked by ctx\n",
		canceled.Load(), workers)
}
