module wcqueue

go 1.24
