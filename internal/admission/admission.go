// Package admission implements the overload-robustness layer over the
// repository's blocking queues (DESIGN.md §16): deadline-aware
// admission control with load shedding on the enqueue side,
// expired-entry dropping on the dequeue side, and a progress watchdog
// (watchdog.go) that notices consumers that have stopped taking steps.
//
// The controller's contract is the exactly-once ledger the overload
// harnesses account on: every Submit resolves to exactly one of
// accepted or shed, every accepted entry resolves to exactly one of
// delivered or expired, and a shed entry is never observable
// downstream. The no-phantom-delivery guarantee rests on the queues'
// blocking conformance: EnqueueWait with an expired context does not
// publish (see the expired-context conformance suite in
// internal/queues/registry).
//
// Shedding is what buys graceful degradation: past saturation a
// system without admission control converts overload into unbounded
// queueing delay for everyone; with it, the controller bounds how
// long any producer blocks (Deadline policy) or refuses instantly
// (Reject policy), so goodput stays near capacity while the excess is
// refused cheaply at the front door.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"wcqueue/internal/core"
)

// errClosed is the closed-queue sentinel every wcq shape returns
// (exported publicly as wcq.ErrClosed — the same value).
var errClosed = core.ErrClosed

// BlockingQueue is the handle-free blocking surface every wcq shape
// exposes (wcq.Queue, wcq.Unbounded, wcq.Striped — the controller is
// generic over all of them).
type BlockingQueue[T any] interface {
	Enqueue(v T) bool
	Dequeue() (v T, ok bool)
	EnqueueWait(ctx context.Context, v T) error
	DequeueWait(ctx context.Context) (T, error)
	Close()
	Closed() bool
}

// ErrShed is the sentinel wrapped by every shed outcome, so callers
// can match "refused by admission control" without caring which
// policy refused: errors.Is(err, admission.ErrShed).
var ErrShed = errors.New("admission: shed")

// ErrShedFull reports a Reject-policy refusal: the queue was full at
// submit time and the policy does not wait.
var ErrShedFull = fmt.Errorf("%w: queue full", ErrShed)

// ErrShedDeadline reports a Deadline-policy refusal: the submit
// deadline (or the caller's context) expired before a slot freed.
var ErrShedDeadline = fmt.Errorf("%w: deadline expired before admission", ErrShed)

// Policy selects what Submit does when the queue is full.
type Policy int

const (
	// Reject sheds immediately on a full queue: Submit is the
	// non-blocking Enqueue and never parks. The cheapest refusal —
	// overload costs the refused producer two shared loads.
	Reject Policy = iota
	// Deadline blocks in EnqueueWait up to the submit deadline and
	// sheds on expiry: overload costs the refused producer a bounded
	// park, and short bursts above capacity are absorbed rather than
	// refused.
	Deadline
)

// Item is the envelope the controller enqueues: the caller's value
// plus the entry's expiry on the controller clock (0 = never
// expires). Callers instantiate their queue as
// BlockingQueue[admission.Item[T]].
type Item[T any] struct {
	V      T
	Expiry int64 // controller-clock nanoseconds; 0 = no TTL
}

// Config parameterizes a Controller.
type Config struct {
	// Policy selects the full-queue behavior (default Reject).
	Policy Policy
	// SubmitTimeout bounds how long a Deadline-policy Submit may park
	// waiting for a slot. <= 0 with the Deadline policy means Submit
	// is bounded only by the caller's context.
	SubmitTimeout time.Duration
	// TTL is the per-entry time-to-live: entries older than TTL at
	// dequeue time are dropped by Take (counted Expired, never
	// delivered). <= 0 disables expiry — every accepted entry is
	// delivered.
	TTL time.Duration
	// Now is the controller clock in nanoseconds, injectable so tests
	// drive expiry deterministically. Nil uses the wall clock.
	Now func() int64
}

// Controller is the admission layer over one queue. All methods are
// safe for concurrent use.
type Controller[T any] struct {
	q   BlockingQueue[Item[T]]
	cfg Config
	now func() int64

	accepted     atomic.Uint64
	shedFull     atomic.Uint64
	shedDeadline atomic.Uint64
	expired      atomic.Uint64
	delivered    atomic.Uint64
}

// NewController wraps q in an admission controller. The queue must be
// used exclusively through the controller for the ledger to balance
// (a bare Enqueue bypasses the accepted count).
func NewController[T any](q BlockingQueue[Item[T]], cfg Config) *Controller[T] {
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Controller[T]{q: q, cfg: cfg, now: now}
}

// Submit offers v for admission. It returns nil when the value is
// accepted (it will be delivered by exactly one Take, or counted
// Expired if its TTL lapses first), an ErrShed-wrapped error when
// refused, wcq's ErrClosed once the queue is closed, or ctx.Err()
// when the caller's context expires first (counted shed: the value
// was not published).
func (c *Controller[T]) Submit(ctx context.Context, v T) error {
	it := Item[T]{V: v}
	if c.cfg.TTL > 0 {
		it.Expiry = c.now() + c.cfg.TTL.Nanoseconds()
	}
	if c.cfg.Policy == Reject {
		if c.q.Enqueue(it) {
			c.accepted.Add(1)
			return nil
		}
		if c.q.Closed() {
			return errClosed
		}
		c.shedFull.Add(1)
		return ErrShedFull
	}
	sctx := ctx
	if c.cfg.SubmitTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, c.cfg.SubmitTimeout)
		defer cancel()
	}
	err := c.q.EnqueueWait(sctx, it)
	switch {
	case err == nil:
		c.accepted.Add(1)
		return nil
	case errors.Is(err, errClosed):
		return err
	case ctx.Err() != nil:
		// The caller's own context expired (not just the submit
		// timeout): surface their error, still counted as shed — the
		// conformance contract guarantees nothing was published.
		c.shedDeadline.Add(1)
		return ctx.Err()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		c.shedDeadline.Add(1)
		return ErrShedDeadline
	default:
		return err
	}
}

// Take removes the next live entry, blocking while the queue is
// empty. Entries whose TTL lapsed while queued are dropped (counted
// Expired) and never returned — the dequeue-side half of shedding,
// which keeps a stalled consumer pool from serving requests whose
// callers have long given up. Returns wcq's ErrClosed once the queue
// is closed and drained (any still-queued expired entries are dropped
// and counted on the way), or ctx.Err().
func (c *Controller[T]) Take(ctx context.Context) (T, error) {
	for {
		it, err := c.q.DequeueWait(ctx)
		if err != nil {
			var zero T
			return zero, err
		}
		if it.Expiry != 0 && c.now() > it.Expiry {
			c.expired.Add(1)
			continue
		}
		c.delivered.Add(1)
		return it.V, nil
	}
}

// Close closes the underlying queue: subsequent Submits fail with
// ErrClosed and Takes drain the remaining entries before observing
// it. Idempotent.
func (c *Controller[T]) Close() { c.q.Close() }

// Closed reports whether Close has been called.
func (c *Controller[T]) Closed() bool { return c.q.Closed() }

// Stats is the controller's ledger snapshot. The invariants the
// overload harnesses assert: every Submit is exactly one of Accepted,
// ShedFull, or ShedDeadline; every Accepted entry ends as exactly one
// of Delivered or Expired; Delivered+Expired never exceeds Accepted.
type Stats struct {
	Accepted     uint64 // Submits that published
	ShedFull     uint64 // Reject-policy refusals (queue full)
	ShedDeadline uint64 // Deadline-policy refusals (timer or ctx expiry)
	Expired      uint64 // accepted entries dropped at Take (TTL lapsed)
	Delivered    uint64 // accepted entries returned by Take
}

// Shed returns the total refusals across both causes.
func (s Stats) Shed() uint64 { return s.ShedFull + s.ShedDeadline }

// InFlight returns accepted entries not yet delivered or expired —
// the watchdog's work-pending probe. Counter loads are not mutually
// atomic, so transient small negatives are clamped to zero.
func (s Stats) InFlight() int64 {
	n := int64(s.Accepted) - int64(s.Delivered) - int64(s.Expired)
	if n < 0 {
		n = 0
	}
	return n
}

// Stats returns the current ledger snapshot.
func (c *Controller[T]) Stats() Stats {
	return Stats{
		Accepted:     c.accepted.Load(),
		ShedFull:     c.shedFull.Load(),
		ShedDeadline: c.shedDeadline.Load(),
		Expired:      c.expired.Load(),
		Delivered:    c.delivered.Load(),
	}
}

// InFlight returns the current ledger's InFlight.
func (c *Controller[T]) InFlight() int64 { return c.Stats().InFlight() }
