package admission_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/wcq"
)

// ledger asserts the controller's counter invariants: every Submit
// resolved exactly once, every accepted entry at most once.
func ledger(t *testing.T, s admission.Stats, submits uint64) {
	t.Helper()
	if s.Accepted+s.Shed() != submits {
		t.Fatalf("ledger: accepted %d + shed %d != submits %d", s.Accepted, s.Shed(), submits)
	}
	if s.Delivered+s.Expired > s.Accepted {
		t.Fatalf("ledger: delivered %d + expired %d > accepted %d", s.Delivered, s.Expired, s.Accepted)
	}
}

// TestRejectPolicySheds pins the Reject policy: a full queue refuses
// instantly with ErrShedFull (matching the ErrShed sentinel), nothing
// shed is ever delivered, and the ledger balances.
func TestRejectPolicySheds(t *testing.T) {
	q := wcq.Must[admission.Item[int]](2) // capacity 4
	c := admission.NewController(q, admission.Config{Policy: admission.Reject})
	var submits uint64
	accepted := 0
	for i := 0; i < 10; i++ {
		submits++
		err := c.Submit(context.Background(), i)
		if err == nil {
			accepted++
			continue
		}
		if !errors.Is(err, admission.ErrShed) || !errors.Is(err, admission.ErrShedFull) {
			t.Fatalf("submit %d: %v, want ErrShedFull", i, err)
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want the queue capacity 4", accepted)
	}
	for i := 0; i < accepted; i++ {
		v, err := c.Take(context.Background())
		if err != nil {
			t.Fatalf("take %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("take %d: got %d — FIFO violated or shed value delivered", i, v)
		}
	}
	s := c.Stats()
	ledger(t, s, submits)
	if s.Accepted != 4 || s.ShedFull != 6 || s.Delivered != 4 || s.ShedDeadline != 0 || s.Expired != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestDeadlinePolicyBoundedBlocking pins the Deadline policy's two
// halves: a Submit against a full queue with no consumer sheds after
// the submit timeout (bounded blocking — it does not park forever),
// and a Submit racing a live consumer is absorbed instead of shed.
func TestDeadlinePolicyBoundedBlocking(t *testing.T) {
	q := wcq.Must[admission.Item[int]](1) // capacity 2
	c := admission.NewController(q, admission.Config{
		Policy:        admission.Deadline,
		SubmitTimeout: 25 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		if err := c.Submit(context.Background(), i); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	start := time.Now()
	err := c.Submit(context.Background(), 99)
	if !errors.Is(err, admission.ErrShed) || !errors.Is(err, admission.ErrShedDeadline) {
		t.Fatalf("overload submit = %v, want ErrShedDeadline", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("submit blocked %v — not bounded by the submit timeout", waited)
	}
	// With a consumer draining, the same overload submit is absorbed.
	done := make(chan error, 1)
	go func() {
		e := c.Submit(context.Background(), 3)
		done <- e
	}()
	if _, err := c.Take(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("submit with live consumer = %v, want absorbed", err)
	}
	s := c.Stats()
	ledger(t, s, 4)
	if s.ShedDeadline != 1 || s.Accepted != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCallerContextShedsWithoutPublishing: a Submit whose own context
// is already done is counted shed and must not publish (the queue
// conformance contract surfaced through the controller).
func TestCallerContextShedsWithoutPublishing(t *testing.T) {
	q := wcq.Must[admission.Item[int]](4)
	c := admission.NewController(q, admission.Config{Policy: admission.Deadline})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Submit(cancelled, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit(cancelled) = %v", err)
	}
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("phantom delivery: shed submit published %+v", v)
	}
	s := c.Stats()
	if s.ShedDeadline != 1 || s.Accepted != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestTTLExpiredEntriesDropped pins the dequeue-side shedding: entries
// whose TTL lapsed while queued are dropped by Take — counted Expired,
// never returned — while fresh entries behind them are delivered. The
// clock is injected, so expiry is deterministic.
func TestTTLExpiredEntriesDropped(t *testing.T) {
	var clk atomic.Int64
	q := wcq.Must[admission.Item[int]](4)
	c := admission.NewController(q, admission.Config{
		Policy: admission.Reject,
		TTL:    100 * time.Nanosecond,
		Now:    clk.Load,
	})
	for i := 0; i < 3; i++ {
		if err := c.Submit(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	clk.Store(1000) // all three now expired
	if err := c.Submit(context.Background(), 42); err != nil {
		t.Fatal(err)
	}
	v, err := c.Take(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("Take returned %d — an expired entry leaked through", v)
	}
	s := c.Stats()
	ledger(t, s, 4)
	if s.Expired != 3 || s.Delivered != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestSubmitTakeAfterClose: Close fails Submits with the wcq closed
// error under both policies, and Take drains the backlog (dropping
// expired entries on the way) before reporting it.
func TestSubmitTakeAfterClose(t *testing.T) {
	for _, policy := range []admission.Policy{admission.Reject, admission.Deadline} {
		q := wcq.Must[admission.Item[int]](4)
		c := admission.NewController(q, admission.Config{Policy: policy, SubmitTimeout: time.Second})
		if err := c.Submit(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		c.Close()
		if !c.Closed() {
			t.Fatal("Closed() false after Close")
		}
		if err := c.Submit(context.Background(), 2); !errors.Is(err, wcq.ErrClosed) {
			t.Fatalf("policy %d: Submit after Close = %v, want ErrClosed", policy, err)
		}
		if v, err := c.Take(context.Background()); err != nil || v != 1 {
			t.Fatalf("drain: %d, %v", v, err)
		}
		if _, err := c.Take(context.Background()); !errors.Is(err, wcq.ErrClosed) {
			t.Fatalf("Take on drained closed queue = %v, want ErrClosed", err)
		}
	}
}

// TestControllerOverStriped is the exactly-once accounting harness in
// miniature, over the striped front-end the service layer actually
// uses: producers Submit under the Deadline policy with a short
// timeout (so overload sheds), consumers Take until close, and the
// delivered multiset must equal exactly the accepted set — shed values
// never appear, accepted values appear once each. Runs under -race in
// CI.
func TestControllerOverStriped(t *testing.T) {
	const producers, consumers, perProducer = 4, 2, 500
	q := wcq.MustStriped[admission.Item[uint64]](4, 2, wcq.WithFixedLanes())
	c := admission.NewController[uint64](q, admission.Config{
		Policy:        admission.Deadline,
		SubmitTimeout: 2 * time.Millisecond,
	})

	acceptedSets := make([]map[uint64]bool, producers)
	var wg, pwg sync.WaitGroup
	streams := make([][]uint64, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var local []uint64
			for {
				v, err := c.Take(context.Background())
				if err != nil {
					streams[i] = local
					return
				}
				local = append(local, v)
			}
		}(i)
	}
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			acc := make(map[uint64]bool)
			for s := uint64(0); s < perProducer; s++ {
				v := uint64(p)<<32 | s
				if err := c.Submit(context.Background(), v); err == nil {
					acc[v] = true
				} else if !errors.Is(err, admission.ErrShed) {
					t.Errorf("producer %d: %v", p, err)
				}
			}
			acceptedSets[p] = acc
		}(p)
	}
	pwg.Wait()
	c.Close()
	wg.Wait()

	accepted := make(map[uint64]bool)
	for _, s := range acceptedSets {
		for v := range s {
			accepted[v] = true
		}
	}
	delivered := make(map[uint64]bool)
	for _, s := range streams {
		for _, v := range s {
			if delivered[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			delivered[v] = true
			if !accepted[v] {
				t.Fatalf("shed value %#x was delivered", v)
			}
		}
	}
	for v := range accepted {
		if !delivered[v] {
			t.Fatalf("accepted value %#x never delivered", v)
		}
	}
	s := c.Stats()
	ledger(t, s, producers*perProducer)
	if s.Accepted != uint64(len(accepted)) || s.Delivered != uint64(len(delivered)) {
		t.Fatalf("counter/set mismatch: %+v vs %d accepted, %d delivered", s, len(accepted), len(delivered))
	}
}
