// The progress watchdog: a sampler that notices consumers that have
// stopped taking steps while work is pending (DESIGN.md §16).
//
// The detector deliberately samples cheap monotone counters instead
// of instrumenting the hot path: each worker owns a Progress counter
// it bumps once per completed item (one uncontended atomic add), and
// the watchdog polls them. The stall rule is:
//
//	work is pending (Pending() > 0)
//	AND a worker's counter has not moved for Grace consecutive polls
//
// Both conjuncts matter. Without the pending probe an idle pool looks
// stalled (nothing to do is not a stall); without the grace window a
// worker mid-item at sample time gets flagged by the race between its
// bump and the poll. The waiter gauges (wcq.Stats EnqWaiters /
// DeqWaiters) ride along in each report so the operator can tell "one
// consumer is wedged while peers drain" (pending > 0, some counters
// moving) from "the whole pool is parked on an empty queue that
// producers stopped feeding" — the failpoint suite drives a real
// frozen consumer through exactly this detector.
package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress is one worker's op counter. The worker bumps it after each
// completed item; the watchdog only reads it. The zero value is ready
// to use.
type Progress struct {
	ops atomic.Uint64

	// sampled state, owned by the watchdog's poll loop (guarded by
	// the Watchdog mutex).
	last    uint64
	stalled int
}

// Bump records one completed item.
// wcq:noalloc
func (p *Progress) Bump() { p.ops.Add(1) }

// Ops returns the counter's current value.
func (p *Progress) Ops() uint64 { return p.ops.Load() }

// StallReport describes one worker the detector currently considers
// stalled.
type StallReport struct {
	Worker     string // the name given at Register
	Ops        uint64 // the counter value it has been frozen at
	Polls      int    // consecutive no-progress polls (>= Grace)
	Pending    int64  // work pending at detection time
	EnqWaiters int    // parked producers at detection time (if sampled)
	DeqWaiters int    // parked consumers at detection time (if sampled)
}

// WatchdogConfig parameterizes a Watchdog.
type WatchdogConfig struct {
	// Grace is how many consecutive polls a worker's counter must
	// stand still (with work pending) before it is reported. Minimum
	// (and default) 2: one still sample is indistinguishable from an
	// unlucky race with the worker's bump.
	Grace int
	// Interval is the Start loop's poll period (default 100ms).
	// Deterministic tests skip Start and drive Poll directly.
	Interval time.Duration
	// Pending reports outstanding work — typically
	// Controller.InFlight. Required: the detector never reports while
	// Pending() <= 0.
	Pending func() int64
	// Waiters optionally samples the parked-caller gauges (from
	// wcq.Stats) into each report. Nil leaves them zero.
	Waiters func() (enq, deq int)
	// OnStall, if set, is invoked from the poll loop once per poll
	// with the full report set whenever at least one worker is
	// stalled.
	OnStall func([]StallReport)
}

// Watchdog samples registered workers' Progress counters and reports
// the ones that stopped while work was pending. Register before the
// first Poll/Start; Poll and Start/Stop are safe for concurrent use.
type Watchdog struct {
	cfg WatchdogConfig

	mu      sync.Mutex
	names   []string
	workers []*Progress

	stop chan struct{}
	done chan struct{}
}

// NewWatchdog creates a watchdog. cfg.Pending must be non-nil.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Pending == nil {
		panic("admission: WatchdogConfig.Pending is required")
	}
	if cfg.Grace < 2 {
		cfg.Grace = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &Watchdog{cfg: cfg}
}

// Register adds a named worker and returns its Progress counter.
func (d *Watchdog) Register(name string) *Progress {
	p := &Progress{}
	d.mu.Lock()
	d.names = append(d.names, name)
	d.workers = append(d.workers, p)
	d.mu.Unlock()
	return p
}

// Poll runs one sampling pass and returns the workers currently
// considered stalled (nil when none). Exported so tests and embedders
// can drive the detector deterministically; Start calls it on a
// ticker.
func (d *Watchdog) Poll() []StallReport {
	pending := d.cfg.Pending()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []StallReport
	for i, p := range d.workers {
		ops := p.Ops()
		if ops != p.last || pending <= 0 {
			// Progress, or nothing to do: either way, not a stall —
			// and the streak restarts, so a worker must stand still
			// through Grace *pending* polls to be reported.
			p.last = ops
			p.stalled = 0
			continue
		}
		p.stalled++
		if p.stalled >= d.cfg.Grace {
			r := StallReport{
				Worker:  d.names[i],
				Ops:     ops,
				Polls:   p.stalled,
				Pending: pending,
			}
			if d.cfg.Waiters != nil {
				r.EnqWaiters, r.DeqWaiters = d.cfg.Waiters()
			}
			out = append(out, r)
		}
	}
	return out
}

// Start launches the background poll loop. Stop terminates it; Start
// after Stop restarts it. A second Start without Stop is a no-op.
func (d *Watchdog) Start() {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.stop, d.done = stop, done
	d.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if rs := d.Poll(); len(rs) > 0 && d.cfg.OnStall != nil {
					d.cfg.OnStall(rs)
				}
			}
		}
	}()
}

// Stop terminates the background poll loop and waits for it to exit.
// Safe to call without Start.
func (d *Watchdog) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
