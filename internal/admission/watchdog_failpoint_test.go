//go:build wcq_failpoints

package admission_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/internal/failpoint"
	"wcqueue/wcq"
)

// TestWatchdogDetectsFrozenConsumer wires the detector to a real
// stall, not a simulated counter: consumer A is frozen mid-DequeueWait
// by the BlockingDeqPrepared failpoint (parked at the injection site
// with its waiter armed — exactly the shape of a wedged consumer
// holding a pool slot), consumer B keeps draining a deliberately slow
// backlog, and the watchdog must flag A and only A. Release un-freezes
// A, the report clears, and the exactly-once ledger balances over the
// full drain.
func TestWatchdogDetectsFrozenConsumer(t *testing.T) {
	defer failpoint.Reset()

	q := wcq.Must[admission.Item[uint64]](10) // capacity 1024: backlog outlives the test
	c := admission.NewController[uint64](q, admission.Config{Policy: admission.Reject})
	d := admission.NewWatchdog(admission.WatchdogConfig{
		Grace:   2,
		Pending: c.InFlight,
		Waiters: func() (int, int) {
			s := q.Stats()
			return s.EnqWaiters, s.DeqWaiters
		},
	})
	progA := d.Register("consumer-A")
	progB := d.Register("consumer-B")

	// Freeze exactly one consumer: arm the park before any consumer
	// runs, start A alone on the empty queue, and wait until it is
	// parked at the injection site (armed, frozen, no steps).
	failpoint.Arm(failpoint.BlockingDeqPrepared, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})
	var wg sync.WaitGroup
	consume := func(p *admission.Progress, slow bool) {
		defer wg.Done()
		for {
			_, err := c.Take(context.Background())
			if err != nil {
				if !errors.Is(err, wcq.ErrClosed) {
					t.Errorf("Take: %v", err)
				}
				return
			}
			p.Bump()
			if slow {
				time.Sleep(time.Millisecond)
			}
		}
	}
	wg.Add(1)
	go consume(progA, false)
	for failpoint.Parked(failpoint.BlockingDeqPrepared) == 0 {
		time.Sleep(time.Millisecond)
	}
	// A froze right after arming its waiter, so the new waiter gauge
	// must see it parked on the dequeue side. (The first submit below
	// will pop it — the gauge is a live count, not a stall latch; the
	// watchdog's counter sampling is what persists across that.)
	if s := q.Stats(); s.DeqWaiters != 1 {
		t.Fatalf("frozen armed consumer not visible in DeqWaiters: %+v", s)
	}
	wg.Add(1)
	go consume(progB, true)

	// Feed a backlog big enough that B cannot drain it during the
	// detection window, so work stays pending at every poll.
	const items = 600
	accepted := 0
	for i := uint64(0); i < items; i++ {
		if err := c.Submit(context.Background(), i); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no item accepted")
	}

	// Poll only after observing B make progress since the previous
	// poll: B's streak is then provably zero at each sample, so the
	// only worker that can reach Grace is the frozen A — the test is
	// deterministic, not a timing bet.
	waitProgress := func(last uint64) uint64 {
		deadline := time.Now().Add(10 * time.Second)
		for progB.Ops() == last {
			if time.Now().After(deadline) {
				t.Fatal("healthy consumer stopped making progress")
			}
			time.Sleep(time.Millisecond)
		}
		return progB.Ops()
	}
	var reports []admission.StallReport
	lastB := waitProgress(0)
	for i := 0; i < 10 && len(reports) == 0; i++ {
		reports = d.Poll()
		lastB = waitProgress(lastB)
	}
	if len(reports) != 1 || reports[0].Worker != "consumer-A" {
		t.Fatalf("watchdog reports = %+v, want exactly consumer-A", reports)
	}
	if reports[0].Pending <= 0 {
		t.Fatalf("stall report with no pending work: %+v", reports[0])
	}

	// Release the freeze: A resumes, and once it takes a step the
	// report must clear.
	failpoint.Release(failpoint.BlockingDeqPrepared)
	deadline := time.Now().Add(10 * time.Second)
	for progA.Ops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frozen consumer never resumed after Release")
		}
		time.Sleep(time.Millisecond)
	}
	if rs := d.Poll(); len(rs) != 0 {
		t.Fatalf("report did not clear after the consumer resumed: %+v", rs)
	}

	// Drain to empty, close, and balance the ledger: every accepted
	// item delivered exactly once, none lost to the freeze.
	drainDeadline := time.Now().Add(30 * time.Second)
	for c.InFlight() > 0 {
		if time.Now().After(drainDeadline) {
			t.Fatalf("backlog stuck at %d", c.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	wg.Wait()
	s := c.Stats()
	if s.Delivered != uint64(accepted) || s.Accepted != uint64(accepted) {
		t.Fatalf("ledger: accepted %d, stats %+v", accepted, s)
	}
}
