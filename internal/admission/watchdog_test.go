package admission_test

import (
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/internal/admission"
)

// TestWatchdogStallRule drives Poll deterministically through the
// detector's truth table: a worker is reported iff work is pending AND
// its counter stood still for Grace consecutive polls; progress or an
// empty backlog clears the streak.
func TestWatchdogStallRule(t *testing.T) {
	var pending atomic.Int64
	var enq, deq atomic.Int64
	d := admission.NewWatchdog(admission.WatchdogConfig{
		Grace:   3,
		Pending: pending.Load,
		Waiters: func() (int, int) { return int(enq.Load()), int(deq.Load()) },
	})
	healthy := d.Register("worker-0")
	frozen := d.Register("worker-1")

	// No pending work: nobody is stalled no matter how still the
	// counters stand.
	for i := 0; i < 5; i++ {
		if rs := d.Poll(); rs != nil {
			t.Fatalf("poll %d with empty backlog reported %+v", i, rs)
		}
	}

	// Pending work, one worker bumping, one frozen: only the frozen
	// one is reported, and only once its streak reaches Grace.
	pending.Store(10)
	deq.Store(1)
	for i := 1; i <= 2; i++ {
		healthy.Bump()
		if rs := d.Poll(); rs != nil {
			t.Fatalf("reported before Grace (poll %d): %+v", i, rs)
		}
	}
	healthy.Bump()
	rs := d.Poll()
	if len(rs) != 1 {
		t.Fatalf("want exactly the frozen worker, got %+v", rs)
	}
	r := rs[0]
	if r.Worker != "worker-1" || r.Polls != 3 || r.Pending != 10 || r.DeqWaiters != 1 || r.EnqWaiters != 0 {
		t.Fatalf("report %+v", r)
	}
	if r.Ops != frozen.Ops() {
		t.Fatalf("report ops %d, counter %d", r.Ops, frozen.Ops())
	}

	// The frozen worker resumes: the report clears on the next poll and
	// the streak restarts from zero.
	frozen.Bump()
	healthy.Bump()
	if rs := d.Poll(); rs != nil {
		t.Fatalf("reported after progress: %+v", rs)
	}

	// An empty backlog mid-streak also restarts it: two still polls,
	// one idle poll, two more still polls — never reaches Grace.
	for i := 0; i < 2; i++ {
		healthy.Bump()
		if rs := d.Poll(); rs != nil {
			t.Fatalf("pre-idle poll %d reported %+v", i, rs)
		}
	}
	pending.Store(0)
	d.Poll()
	pending.Store(10)
	for i := 0; i < 2; i++ {
		healthy.Bump()
		if rs := d.Poll(); rs != nil {
			t.Fatalf("post-idle poll %d reported %+v — idle did not clear the streak", i, rs)
		}
	}
}

// TestWatchdogStartStop exercises the background loop: a frozen
// worker with pending work must be reported through OnStall, and Stop
// must quiesce the loop.
func TestWatchdogStartStop(t *testing.T) {
	var pending atomic.Int64
	pending.Store(1)
	fired := make(chan []admission.StallReport, 16)
	d := admission.NewWatchdog(admission.WatchdogConfig{
		Grace:    2,
		Interval: time.Millisecond,
		Pending:  pending.Load,
		OnStall: func(rs []admission.StallReport) {
			select {
			case fired <- rs:
			default:
			}
		},
	})
	d.Register("w")
	d.Start()
	defer d.Stop()
	select {
	case rs := <-fired:
		if len(rs) != 1 || rs[0].Worker != "w" {
			t.Fatalf("report %+v", rs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("background loop never reported the frozen worker")
	}
	d.Stop()
	// Stop is idempotent and Start restarts cleanly.
	d.Stop()
	d.Start()
	d.Stop()
}
