// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the wcqlint analyzers need
// (DESIGN.md §15). The real go/analysis module is not vendored — the
// build environment is offline and the repo's policy is stdlib-only —
// so this package mirrors its Analyzer/Pass/Diagnostic shape on top of
// go/ast + go/types, close enough that the analyzers would port to the
// upstream API mechanically if the dependency ever lands.
//
// Beyond the go/analysis core, this package owns the one piece of
// machinery every wcqlint analyzer shares: the `wcq:` annotation
// grammar. Invariant suppressions are written
//
//	// wcq:relaxed-ok <reason>   (same line, or alone on the line above)
//	// wcq:plain-ok <reason>
//	// wcq:pinned-ok <reason>
//	// wcq:alloc-ok <reason>
//
// and hot-path declarations are tagged in their doc comment
//
//	// wcq:noalloc
//
// A suppression without a reason is itself a finding: the whole point
// of machine-checking DESIGN.md §11/§12/§14 is that every exception
// carries its safety argument next to the code it excuses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "relaxedguard".
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Analyzers usually call Reportf.
	Report func(Diagnostic)

	// annots maps filename -> line -> annotations on that line, built
	// lazily from the files' comment lists.
	annots map[string]map[int][]Annotation
}

// An Annotation is one parsed `wcq:<name> <reason>` comment.
type Annotation struct {
	Name   string // e.g. "relaxed-ok" (the "wcq:" prefix is stripped)
	Reason string // text after the name; may be empty (a finding)
	Pos    token.Pos
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// AnnotationPrefix is the comment marker shared by every wcqlint
// annotation and suppression.
const AnnotationPrefix = "wcq:"

// parseAnnotations scans every comment in the pass's files once.
func (p *Pass) parseAnnotations() {
	p.annots = make(map[string]map[int][]Annotation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					// Block form, for lines that also carry another
					// comment (fixtures pairing a suppression with a
					// want marker).
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AnnotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, AnnotationPrefix)
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if p.annots[pos.Filename] == nil {
					p.annots[pos.Filename] = make(map[int][]Annotation)
				}
				p.annots[pos.Filename][pos.Line] = append(p.annots[pos.Filename][pos.Line],
					Annotation{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()})
			}
		}
	}
}

// Suppression looks for a `wcq:<name>` annotation covering pos: on the
// same source line, or alone on the line immediately above (the
// standalone form used when the flagged line has no room).
func (p *Pass) Suppression(pos token.Pos, name string) (Annotation, bool) {
	if p.annots == nil {
		p.parseAnnotations()
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, a := range p.annots[position.Filename][line] {
			if a.Name == name {
				return a, true
			}
		}
	}
	return Annotation{}, false
}

// SuppressedOrReport is the shared suppression protocol: if pos carries
// a `wcq:<name>` annotation with a non-empty reason the finding is
// suppressed; an annotation without a reason is converted into its own
// finding; otherwise msg is reported as-is.
func (p *Pass) SuppressedOrReport(pos token.Pos, name, msg string) {
	if a, ok := p.Suppression(pos, name); ok {
		if a.Reason == "" {
			p.Reportf(a.Pos, "wcq:%s annotation is missing its reason: every suppression must carry the safety argument that licenses it", name)
		}
		return
	}
	p.Reportf(pos, "%s", msg)
}

// HasDeclAnnotation reports whether a declaration's doc comment carries
// `wcq:<name>` (e.g. wcq:noalloc on a hot-path function).
func HasDeclAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, AnnotationPrefix+name) {
			rest := strings.TrimPrefix(text, AnnotationPrefix+name)
			if rest == "" || strings.HasPrefix(rest, " ") {
				return true
			}
		}
	}
	return false
}

// PkgPathHasSuffix reports whether path is pkg or ends in "/pkg" — the
// matching rule the analyzers use to recognize the repo's helper
// packages (wcqueue/internal/atomicx, .../failpoint) while staying
// testable against same-named stub packages in testdata.
func PkgPathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The analyzers skip test files: the invariants they enforce are
// hot-path production contracts, and tests legitimately do quiescent
// plain access (Reset harnesses, white-box probes) everywhere.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the object a call expression invokes (function,
// method, or builtin), or nil when the callee is dynamic (a function
// value or an interface method through a non-selector expression).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}
