// Package atomicmix enforces the repository's single-discipline rule
// for shared words (DESIGN.md §8/§10/§11): a field that is accessed
// atomically anywhere must be accessed atomically everywhere. Mixing
// disciplines is how quiescent-path shortcuts rot into data races —
// the legal exceptions (Reset/Finalize/teardown paths that run inside
// a documented quiescence window, and the TSO plain-store fast paths
// whose ordering is carried by a neighboring RMW) must each carry a
// `// wcq:plain-ok <reason>` annotation citing the quiescence or
// ordering argument that makes the plain access safe.
//
// Two directions are checked, per package:
//
//  1. A plain-typed struct field whose address is passed to a
//     sync/atomic function anywhere in the package must not also be
//     read or written plainly.
//  2. A field (or element) of an atomic wrapper type — sync/atomic's
//     types, or the pad package's padded wrappers — must only be used
//     through its methods or by taking its address; copying or
//     overwriting the wrapper as a value bypasses the atomic API.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"wcqueue/internal/analysis"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "check that a field touched by sync/atomic anywhere is accessed atomically " +
		"everywhere, with wcq:plain-ok escape hatches for quiescent paths",
	Run: run,
}

// use classifies one appearance of a tracked field.
type use struct {
	pos    token.Pos
	atomic bool
}

func run(pass *analysis.Pass) error {
	// Pass 1: classify every selector access of a plain-typed struct
	// field as atomic (&f passed to a sync/atomic function) or plain.
	uses := make(map[*types.Var][]use)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldVar(pass, sel)
			if field == nil || isAtomicType(field.Type()) {
				return true
			}
			switch {
			case isAtomicFuncArg(pass, sel, stack):
				uses[field] = append(uses[field], use{sel.Pos(), true})
			case isValueAccess(stack, sel):
				uses[field] = append(uses[field], use{sel.Pos(), false})
			}
			return true
		})
	}
	for field, us := range uses {
		hasAtomic := false
		for _, u := range us {
			if u.atomic {
				hasAtomic = true
				break
			}
		}
		if !hasAtomic {
			continue
		}
		for _, u := range us {
			if u.atomic {
				continue
			}
			pass.SuppressedOrReport(u.pos, "plain-ok", fmt.Sprintf(
				"field %s is accessed with sync/atomic elsewhere in this package but "+
					"plainly here; use the atomic API, or annotate a quiescent path with "+
					"// wcq:plain-ok <reason>", field.Name()))
		}
	}

	// Pass 2: atomic wrapper values must never be copied or assigned
	// wholesale — only method calls and address-taking are legal.
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch expr.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
			default:
				return true
			}
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || !tv.IsValue() || !isAtomicType(tv.Type) {
				return true
			}
			if id, ok := expr.(*ast.Ident); ok {
				// Only flag identifiers naming variables (not types,
				// package names, or field names inside selectors —
				// those are reached through their parent selector).
				if _, isVar := pass.TypesInfo.Uses[id].(*types.Var); !isVar {
					return true
				}
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == id {
						return true
					}
				}
			}
			if legalWrapperUse(pass, stack, expr) {
				return true
			}
			pass.SuppressedOrReport(expr.Pos(), "plain-ok", fmt.Sprintf(
				"%s value used plainly (copied, overwritten, or compared); atomic "+
					"wrapper types must be used only through their methods or by address, "+
					"or the quiescent path annotated with // wcq:plain-ok <reason>",
				tv.Type.String()))
			return true
		})
	}
	return nil
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj().(*types.Var)
	}
	// Qualified package-level vars (pkg.V) resolve through Uses; only
	// struct fields are tracked, so ignore them.
	return nil
}

// isAtomicType reports whether t is (a named instance of) an atomic
// wrapper: any named type of package sync/atomic, or a struct-backed
// named type of a pad package (the padded wrappers; the pure padding
// arrays are not wrappers).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "sync/atomic" {
		return true
	}
	if analysis.PkgPathHasSuffix(path, "pad") {
		_, isStruct := named.Underlying().(*types.Struct)
		return isStruct
	}
	return false
}

// isAtomicFuncArg reports whether sel appears as &sel in an argument of
// a sync/atomic function call (atomic.LoadUint32(&f.v), ...).
func isAtomicFuncArg(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	unary, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			obj := analysis.Callee(pass.TypesInfo, parent)
			return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
		default:
			return false
		}
	}
	return false
}

// isValueAccess reports whether sel is a plain read or write of the
// field's value: anything except taking its address or selecting
// further through it.
func isValueAccess(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.UnaryExpr:
		return parent.Op != token.AND
	case *ast.SelectorExpr:
		// x.f.g — the access is classified at the outer selector.
		return false
	}
	return true
}

// legalWrapperUse reports whether an atomic-wrapper-typed expression is
// used in one of the legal shapes: method-call receiver, operand of &,
// or base of an index/selector that is itself used legally.
func legalWrapperUse(pass *analysis.Pass, stack []ast.Node, expr ast.Expr) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	case *ast.SelectorExpr:
		// Receiver of a method call (w.Load()), or intermediate
		// selection; method selections are always legal, field
		// selections into the wrapper's internals don't typecheck
		// outside its package anyway.
		return parent.X == expr
	case *ast.ParenExpr, *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		// entries[j] as a base: legality is decided at the IndexExpr,
		// which is itself visited as an expression.
		return parent.X == expr
	case *ast.CompositeLit, *ast.KeyValueExpr:
		// Zero-value initialization inside a literal.
		return true
	}
	return false
}
