package atomicmix_test

import (
	"testing"

	"wcqueue/internal/analysis/atomicmix"
	"wcqueue/internal/analysis/checktest"
)

func TestAtomicMix(t *testing.T) {
	checktest.Run(t, atomicmix.Analyzer, "a")
}
