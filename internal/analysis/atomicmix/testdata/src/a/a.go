// Package a exercises atomicmix: a field touched by sync/atomic
// anywhere must be accessed atomically everywhere, and atomic wrapper
// values must not be copied or overwritten wholesale.
package a

import "sync/atomic"

// S mixes disciplines on n; m is plain-only and never flagged.
type S struct {
	n uint64
	m uint64
}

func atomicUse(s *S) { atomic.AddUint64(&s.n, 1) }

func plainRead(s *S) uint64 {
	return s.n // want `field n is accessed with sync/atomic elsewhere`
}

func plainWrite(s *S) {
	s.n = 0 // want `field n is accessed with sync/atomic elsewhere`
}

func plainOnly(s *S) uint64 { return s.m }

// quiescent is the legal escape hatch: the plain access carries its
// quiescence argument.
func quiescent(s *S) {
	// wcq:plain-ok Reset runs after Close drains every handle; no concurrent access remains
	s.n = 0
}

// missingReason converts an unreasoned suppression into a finding.
func missingReason(s *S) uint64 {
	return s.n /* wcq:plain-ok */ // want `missing its reason`
}

// W holds an atomic wrapper value.
type W struct {
	v atomic.Uint64
}

func copyWrapper(w *W) atomic.Uint64 {
	return w.v // want `value used plainly`
}

func overwriteWrapper(w *W, o atomic.Uint64) {
	w.v = o // want `value used plainly` `value used plainly`
}

func methodUse(w *W) uint64 { return w.v.Load() }

func addrUse(w *W) *atomic.Uint64 { return &w.v }

// sliceElem indexes into a wrapper slice and uses methods: legal.
func sliceElem(es []atomic.Uint64, j int) uint64 {
	return es[j].Load()
}

// wrapperQuiescent uses the same escape hatch for a wrapper copy.
func wrapperQuiescent(w *W) atomic.Uint64 {
	// wcq:plain-ok snapshot taken inside the recycle quiescence window
	return w.v
}
