// Package checktest is the analysistest-style harness for the wcqlint
// analyzers: it loads fixture packages from the calling analyzer's
// testdata/src tree, runs one analyzer over them, and compares the
// findings against `// want "regexp"` comments in the fixture source.
// A diagnostic with no matching want, or a want with no matching
// diagnostic, fails the test — the fixtures pin both directions, so an
// analyzer can neither regress into silence nor grow false positives
// unnoticed.
//
// Fixture packages are ordinary module packages that happen to live
// under testdata/ (the go tool ignores them in ./... expansion but
// loads them fine when named explicitly), so stubs resolve by import
// path suffix: a fixture's atomicx stub at
// .../testdata/src/atomicx satisfies the analyzers'
// PkgPathHasSuffix matching exactly like the real
// wcqueue/internal/atomicx does.
package checktest

import (
	"fmt"
	"go/token"
	"os"
	"path"
	"regexp"
	"strings"
	"testing"

	"wcqueue/internal/analysis"
)

// wantRE extracts the quoted patterns of one `// want "rx" "rx2"`
// comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one unconsumed want pattern at a file:line.
type expectation struct {
	rx   *regexp.Regexp
	text string
}

// Run loads testdata/src/<pkg> for each named fixture package
// (relative to the test's working directory, which `go test` sets to
// the analyzer's source directory), applies the analyzer, and checks
// its findings against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("checktest: getwd: %v", err)
	}
	patterns := make([]string, len(fixtures))
	for i, p := range fixtures {
		patterns[i] = "./" + path.Join("testdata", "src", p)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: wd}, patterns...)
	if err != nil {
		t.Fatalf("checktest: loading fixtures: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("checktest: loaded %d packages for %d fixtures", len(pkgs), len(fixtures))
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("checktest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.rx.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s: unexpected finding: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s: no finding matched want %q", key, w.text)
		}
	}
}

// collectWants scans every fixture file's comments for want patterns.
func collectWants(t *testing.T, pkgs []*analysis.Package) map[string][]expectation {
	t.Helper()
	wants := make(map[string][]expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					addWants(t, wants, pkg.Fset, c.Pos(), strings.TrimPrefix(text, "want "))
				}
			}
		}
	}
	return wants
}

func addWants(t *testing.T, wants map[string][]expectation, fset *token.FileSet, pos token.Pos, spec string) {
	t.Helper()
	position := fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	ms := wantRE.FindAllStringSubmatch(spec, -1)
	if len(ms) == 0 {
		t.Fatalf("%s: malformed want comment %q: no quoted pattern", key, spec)
	}
	for _, m := range ms {
		pat := m[1]
		if m[2] != "" {
			pat = m[2]
		} else {
			pat = strings.ReplaceAll(pat, `\"`, `"`)
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
		}
		wants[key] = append(wants[key], expectation{rx: rx, text: pat})
	}
}
