// Package failpointweave enforces the failpoint weave pattern
// (DESIGN.md §12): the injection layer must dead-code to nothing in
// untagged builds, which is only true when every failpoint.Inject call
// is guarded by `if failpoint.Enabled` (the untyped-constant-false
// branch the compiler deletes), its site argument is one of the named
// Site constants, and sites are declared in exactly one place —
// internal/failpoint/sites.go — so site names stay unique and
// harnesses can iterate the full matrix.
package failpointweave

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"wcqueue/internal/analysis"
)

// Analyzer is the failpointweave analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "failpointweave",
	Doc: "check that every failpoint.Inject is guarded by if failpoint.Enabled, takes " +
		"a named Site constant, and that Site constants are declared only in sites.go",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inFailpointPkg := analysis.PkgPathHasSuffix(pass.Pkg.Path(), "failpoint")
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkSiteDecls(pass, file, inFailpointPkg)
		analysis.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isInjectCall(pass, call) {
				return true
			}
			if !guardedByEnabled(pass, stack) {
				pass.Reportf(call.Pos(),
					"failpoint.Inject outside an `if failpoint.Enabled` guard: the weave "+
						"must dead-code to nothing in untagged builds (DESIGN.md §12)")
			}
			if len(call.Args) != 1 || !isSiteConst(pass, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"failpoint.Inject argument must be a named Site constant declared in "+
						"internal/failpoint/sites.go, not a computed value")
			}
			return true
		})
	}
	return nil
}

// checkSiteDecls reports Site-typed constant or variable declarations
// outside their single legal home. Inside the failpoint package that
// home is sites.go; other packages may not declare sites at all.
func checkSiteDecls(pass *analysis.Pass, file *ast.File, inFailpointPkg bool) {
	base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
	if inFailpointPkg && base == "sites.go" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, name := range spec.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || !isSiteType(obj.Type()) {
				continue
			}
			if _, isConst := obj.(*types.Const); !isConst {
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
			}
			if inFailpointPkg {
				pass.Reportf(name.Pos(),
					"failpoint Site %s declared outside sites.go: sites.go is the single "+
						"declaration point, so site constants stay unique and enumerable", name.Name)
			} else {
				pass.Reportf(name.Pos(),
					"failpoint Site %s declared outside the failpoint package: add new "+
						"sites to internal/failpoint/sites.go", name.Name)
			}
		}
		return true
	})
}

// isInjectCall reports whether call invokes failpoint.Inject.
func isInjectCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := analysis.Callee(pass.TypesInfo, call)
	return obj != nil && obj.Name() == "Inject" && obj.Pkg() != nil &&
		analysis.PkgPathHasSuffix(obj.Pkg().Path(), "failpoint")
}

// guardedByEnabled reports whether some enclosing if statement's
// condition is (or conjoins) the failpoint.Enabled constant.
func guardedByEnabled(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// The Inject call must be in the body (not the condition or
		// the else branch) for the guard to dead-code it.
		if i+1 < len(stack) && stack[i+1] != ast.Node(ifStmt.Body) {
			continue
		}
		if condHasEnabled(pass, ifStmt.Cond) {
			return true
		}
	}
	return false
}

// condHasEnabled reports whether cond is failpoint.Enabled or a &&
// conjunction containing it (x && Enabled dead-codes just the same).
func condHasEnabled(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return condHasEnabled(pass, e.X) || condHasEnabled(pass, e.Y)
		}
		return false
	default:
		obj := usedObj(pass, cond)
		return obj != nil && obj.Name() == "Enabled" && obj.Pkg() != nil &&
			analysis.PkgPathHasSuffix(obj.Pkg().Path(), "failpoint")
	}
}

// isSiteConst reports whether arg names a constant of the failpoint
// Site type.
func isSiteConst(pass *analysis.Pass, arg ast.Expr) bool {
	obj := usedObj(pass, arg)
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Const); !ok {
		return false
	}
	return isSiteType(obj.Type())
}

// isSiteType reports whether t is the failpoint package's Site type.
func isSiteType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Site" && obj.Pkg() != nil &&
		analysis.PkgPathHasSuffix(obj.Pkg().Path(), "failpoint")
}

// usedObj resolves an identifier or selector expression to its object.
func usedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
