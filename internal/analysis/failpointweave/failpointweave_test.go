package failpointweave_test

import (
	"testing"

	"wcqueue/internal/analysis/checktest"
	"wcqueue/internal/analysis/failpointweave"
)

func TestFailpointWeave(t *testing.T) {
	checktest.Run(t, failpointweave.Analyzer, "a", "failpoint")
}
