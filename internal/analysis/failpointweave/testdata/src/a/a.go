// Package a exercises failpointweave: every Inject guarded by
// failpoint.Enabled, site arguments named constants, sites declared
// only in the failpoint package's sites.go.
package a

import (
	"wcqueue/internal/analysis/failpointweave/testdata/src/failpoint"
)

var debug bool

// guarded is the weave pattern: dead-codes to nothing when Enabled is
// the constant false.
func guarded() {
	if failpoint.Enabled {
		failpoint.Inject(failpoint.SiteA)
	}
}

// conjunction keeps the dead-coding property: the && with Enabled
// still deletes the branch.
func conjunction() {
	if debug && failpoint.Enabled {
		failpoint.Inject(failpoint.SiteB)
	}
}

// unguarded leaves the Inject call live in untagged builds.
func unguarded() {
	failpoint.Inject(failpoint.SiteA) // want `outside an .if failpoint.Enabled. guard`
}

// wrongGuard tests that an unrelated condition does not count.
func wrongGuard() {
	if debug {
		failpoint.Inject(failpoint.SiteA) // want `outside an .if failpoint.Enabled. guard`
	}
}

// elseBranch puts the Inject where the guard cannot dead-code it.
func elseBranch() {
	if failpoint.Enabled {
		_ = debug
	} else {
		failpoint.Inject(failpoint.SiteA) // want `outside an .if failpoint.Enabled. guard`
	}
}

// computed passes a non-constant site.
func computed(s failpoint.Site) {
	if failpoint.Enabled {
		failpoint.Inject(s) // want `must be a named Site constant`
	}
}

// outsideDecl declares a site outside the failpoint package.
const outsideDecl failpoint.Site = 7 // want `Site outsideDecl declared outside the failpoint package`
