package failpoint

// A site declared outside sites.go breaks the single-declaration-point
// rule even inside the failpoint package itself.
const Rogue Site = 99 // want `Site Rogue declared outside sites.go`
