// Package failpoint is a fixture stub mirroring the shape of
// wcqueue/internal/failpoint: a Site enum declared in sites.go, a
// compile-time Enabled constant, and an Inject entry point.
package failpoint

const Enabled = false

func Inject(s Site) {}
