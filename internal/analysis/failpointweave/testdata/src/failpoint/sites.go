package failpoint

// Site names one failpoint injection site.
type Site uint32

const (
	SiteA Site = iota
	SiteB
)
