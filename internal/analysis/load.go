package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the directory go list runs in (the module root, or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Tags are extra build tags (e.g. wcq_failpoints) forwarded to go
	// list, so tagged weaves can be linted too.
	Tags []string
	// Env entries are appended to the go list environment (e.g.
	// GOARCH=arm64 to lint another build-tag split).
	Env []string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// Load loads and type-checks the packages matched by patterns, plus
// export data for their whole dependency closure, using only the go
// command and the standard library. It is the offline stand-in for
// golang.org/x/tools/go/packages.Load: `go list -export -deps` builds
// and exposes gc export data for every dependency (stdlib included),
// the matched packages themselves are parsed from source with comments
// (the analyzers need the wcq: annotations), and imports resolve
// through importer.ForCompiler's export-data reader.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(cfg, false, patterns)
	if err != nil {
		return nil, err
	}
	deps, err := goList(cfg, true, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	sizes := types.SizesFor("gc", goEnvArch(cfg))
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}

	var pkgs []*Package
	for _, lp := range roots {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// goEnvArch returns the GOARCH the load is configured for (an explicit
// GOARCH in cfg.Env, else the process's).
func goEnvArch(cfg LoadConfig) string {
	for _, e := range cfg.Env {
		if v, ok := strings.CutPrefix(e, "GOARCH="); ok && v != "" {
			return v
		}
	}
	return runtime.GOARCH
}

func goList(cfg LoadConfig, deps bool, patterns []string) ([]listedPkg, error) {
	args := []string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	if len(cfg.Tags) > 0 {
		args = append(args, "-tags", strings.Join(cfg.Tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
