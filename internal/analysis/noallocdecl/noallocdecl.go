// Package noallocdecl enforces the hot-path allocation contract: a
// function whose doc comment carries `// wcq:noalloc` — the paths
// pinned to zero by the AllocsPerRun regression tests — must contain
// no allocating construct. The dynamic tests catch a regression only
// on the inputs they run; this analyzer catches it at vet time on
// every path.
//
// Flagged constructs: make/new/append, composite literals, closures
// (func literals), go statements, interface boxing (explicit
// conversions and concrete arguments to interface parameters,
// including panic's operand), and string<->[]byte conversions. Calls
// into the same package must target functions that are themselves
// annotated wcq:noalloc, so the guarantee composes down the local call
// graph; cross-package and interface calls are out of scope (the
// AllocsPerRun tests remain the dynamic backstop there). A cold path
// inside a hot function (a panic formatting its message, a fallback
// that registers a new handle) is suppressed with
// `// wcq:alloc-ok <reason>`.
package noallocdecl

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"wcqueue/internal/analysis"
)

// Analyzer is the noallocdecl analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noallocdecl",
	Doc: "check that functions annotated wcq:noalloc contain no allocating " +
		"constructs and call only wcq:noalloc functions within their package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Map every package-level function/method declaration to whether it
	// carries the annotation, for the same-package composition rule.
	noalloc := make(map[types.Object]bool)
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			noalloc[obj] = analysis.HasDeclAnnotation(fd.Doc, "noalloc")
		}
	}
	for obj, fd := range decls {
		if noalloc[obj] && fd.Body != nil {
			checkBody(pass, fd, noalloc, decls)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, noalloc map[types.Object]bool, decls map[types.Object]*ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, n.Pos(), "func literal allocates a closure")
			return false // the literal's own body runs un-annotated
		case *ast.GoStmt:
			report(pass, n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			report(pass, n.Pos(), "composite literal may allocate")
			return false
		case *ast.CallExpr:
			checkCall(pass, n, noalloc, decls)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, noalloc map[types.Object]bool, decls map[types.Object]*ast.FuncDecl) {
	// Type conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type)
		return
	}
	obj := analysis.Callee(pass.TypesInfo, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new", "append":
			report(pass, call.Pos(), fmt.Sprintf("%s allocates", b.Name()))
		case "panic":
			if len(call.Args) == 1 && boxes(pass, call.Args[0], types.NewInterfaceType(nil, nil)) {
				report(pass, call.Pos(), "panic boxes its operand into an interface")
			}
		}
		return
	}
	// Interface boxing at ordinary call arguments.
	if sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature); ok && call.Ellipsis == 0 {
		checkArgs(pass, call, sig)
	}
	// Same-package composition: a noalloc function may only call
	// same-package functions that are themselves noalloc.
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // dynamic dispatch: out of static scope
		}
	}
	if _, declared := decls[fn]; declared && !noalloc[fn] {
		report(pass, call.Pos(), fmt.Sprintf(
			"call to %s, which is not annotated wcq:noalloc; annotate it (the "+
				"guarantee must compose) or suppress a cold path with wcq:alloc-ok", fn.Name()))
	}
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target) && boxes(pass, arg, target) {
		report(pass, call.Pos(), "conversion to interface type allocates")
		return
	}
	at, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return
	}
	tu, au := target.Underlying(), at.Type.Underlying()
	_, targetSlice := tu.(*types.Slice)
	_, argSlice := au.(*types.Slice)
	targetStr := isString(tu)
	argStr := isString(au)
	if (targetStr && argSlice) || (targetSlice && argStr) {
		report(pass, call.Pos(), "string/slice conversion copies and allocates")
	}
}

func checkArgs(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic():
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil && types.IsInterface(pt) && boxes(pass, arg, pt) {
			report(pass, arg.Pos(), "concrete value boxed into interface parameter allocates")
		}
	}
}

// boxes reports whether passing arg to an interface-typed slot
// requires a representation change that can allocate: the argument is
// a concrete (non-interface) value that is not pointer-shaped.
// Pointer-shaped values — pointers, channels, maps, funcs,
// unsafe.Pointer — are stored directly in the interface data word, so
// boxing them never allocates.
func boxes(pass *analysis.Pass, arg ast.Expr, _ types.Type) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return false
	}
	if tv.IsNil() || tv.Type == types.Typ[types.UntypedNil] {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	if tv.Value != nil {
		// Constant operand: the compiler materializes it in static
		// data, so the interface conversion is allocation-free
		// (panic("message") being the common case).
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// report applies the shared suppression protocol: a finding inside a
// wcq:noalloc function is silenced only by a reasoned wcq:alloc-ok on
// its line (or the line above).
func report(pass *analysis.Pass, pos token.Pos, msg string) {
	pass.SuppressedOrReport(pos, "alloc-ok", msg+" in a wcq:noalloc function")
}
