package noallocdecl_test

import (
	"testing"

	"wcqueue/internal/analysis/checktest"
	"wcqueue/internal/analysis/noallocdecl"
)

func TestNoAllocDecl(t *testing.T) {
	checktest.Run(t, noallocdecl.Analyzer, "a")
}
