// Package a exercises noallocdecl: functions annotated wcq:noalloc
// must contain no allocating construct, and the guarantee must compose
// through same-package calls.
package a

var sinkVal int

// wcq:noalloc
func badMake() []int {
	return make([]int, 4) // want `make allocates`
}

// wcq:noalloc
func badNew() *int {
	return new(int) // want `new allocates`
}

// wcq:noalloc
func badAppend(s []int) []int {
	return append(s, 1) // want `append allocates`
}

// wcq:noalloc
func badClosure() func() {
	return func() {} // want `func literal allocates a closure`
}

// wcq:noalloc
func badGo() {
	go leaf() // want `go statement allocates a goroutine`
}

type pair struct{ a, b int }

// wcq:noalloc
func badComposite() pair {
	return pair{1, 2} // want `composite literal may allocate`
}

// wcq:noalloc
func sink(v interface{}) {}

// wcq:noalloc
func badBox(x int) {
	sink(x) // want `concrete value boxed into interface parameter allocates`
}

// wcq:noalloc
func badPanicBox() {
	panic(sinkVal) // want `panic boxes its operand into an interface`
}

// wcq:noalloc
func badConvert(x int) interface{} {
	return interface{}(x) // want `conversion to interface type allocates`
}

// wcq:noalloc
func badString(b []byte) string {
	return string(b) // want `string/slice conversion copies and allocates`
}

// wcq:noalloc
func badCompose() {
	unannotated() // want `call to unannotated, which is not annotated`
}

func unannotated() {}

// wcq:noalloc
func leaf() {}

// okPointer passes a pointer-shaped value: stored directly in the
// interface word, no allocation.
// wcq:noalloc
func okPointer(p *int) {
	sink(p)
}

// okConst boxes a constant: materialized in static data.
// wcq:noalloc
func okConst() {
	panic("fixture: invariant broken")
}

// okSuppressed carries the cold-path escape hatch.
// wcq:noalloc
func okSuppressed() []int {
	// wcq:alloc-ok cold fallback behind a once guard; the steady state returns the cached slice
	return make([]int, 4)
}

// missingReason turns an unreasoned suppression into a finding.
// wcq:noalloc
func missingReason() []int {
	return make([]int, 4) /* wcq:alloc-ok */ // want `missing its reason`
}

// unpinned is not annotated: allocations are fine here.
func unpinned() []int {
	return make([]int, 8)
}
