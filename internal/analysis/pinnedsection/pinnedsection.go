// Package pinnedsection enforces the resident fast path's pin contract
// (DESIGN.md §13): between procPin and procUnpin the goroutine holds
// its P exclusively, so the pinned section must be bounded, non-
// yielding, non-blocking, and panic-free — a channel operation, lock,
// Gosched, sleep, or panic while pinned can deadlock the scheduler or
// strand the pin. The analyzer recognizes the repo's pin brackets
// (pinProc/unpinProc, runtimeProcPin/runtimeProcUnpin, and the
// pinnedGet/pinnedRelease pool helpers) and flags yielding constructs
// that appear, in source order, inside an open bracket.
//
// The scan is linear over each function body rather than a full CFG:
// a construct after an early unpin on one path but before the final
// unpin on another is conservatively treated as pinned. A site the
// analyzer cannot see is safe (e.g. provably after every unpin) is
// annotated `// wcq:pinned-ok <reason>`.
package pinnedsection

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"wcqueue/internal/analysis"
)

// Analyzer is the pinnedsection analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pinnedsection",
	Doc: "check that no yielding or blocking construct (channel ops, locks, Gosched, " +
		"Sleep, panic, go) appears between procPin and procUnpin",
	Run: run,
}

var pinNames = map[string]bool{
	"pinProc":        true,
	"runtimeProcPin": true,
	"pinnedGet":      true,
}

var unpinNames = map[string]bool{
	"unpinProc":        true,
	"runtimeProcUnpin": true,
	"pinnedRelease":    true,
}

// blockingCalls maps callee names to why they are illegal while
// pinned. Matching is by name plus, for the stdlib entries, package
// or receiver origin checked in yieldReason.
var blockingCalls = map[string]string{
	"Gosched": "reenters the scheduler",
	"Sleep":   "blocks the P",
	"Lock":    "may block on a contended lock",
	"RLock":   "may block on a contended lock",
	"Wait":    "parks the goroutine",
}

type event struct {
	pos  token.Pos
	kind int // 0 pin, 1 unpin, 2 yield
	msg  string
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(pass, n); ok {
				switch {
				case pinNames[name]:
					events = append(events, event{n.Pos(), 0, ""})
				case unpinNames[name]:
					events = append(events, event{n.Pos(), 1, ""})
				default:
					if why, bad := blockingCalls[name]; bad && stdlibOrSyncCallee(pass, n) {
						events = append(events, event{n.Pos(), 2, "call to " + name + " " + why})
					}
				}
			}
			if b, ok := analysis.Callee(pass.TypesInfo, n).(*types.Builtin); ok && b.Name() == "panic" {
				events = append(events, event{n.Pos(), 2, "panic unwinds with the pin held"})
			}
		case *ast.SendStmt:
			events = append(events, event{n.Pos(), 2, "channel send may block"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{n.Pos(), 2, "channel receive may block"})
			}
		case *ast.SelectStmt:
			events = append(events, event{n.Pos(), 2, "select may block"})
			// Still descend: nested sections inside cases are scanned.
		case *ast.GoStmt:
			events = append(events, event{n.Pos(), 2, "go statement hands work to the scheduler"})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := 0
	for _, e := range events {
		switch e.kind {
		case 0:
			depth++
		case 1:
			if depth > 0 {
				depth--
			}
		case 2:
			if depth > 0 {
				pass.SuppressedOrReport(e.pos, "pinned-ok",
					e.msg+" inside a procPin/procUnpin section; the resident fast path "+
						"must stay bounded and non-yielding (DESIGN.md §13)")
			}
		}
	}
}

// calleeName extracts the bare name of a call's callee (function or
// method), for matching against the pin/unpin/blocking tables.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}

// stdlibOrSyncCallee limits the blockingCalls matches to callees that
// plausibly block: functions from runtime/time, methods on sync types,
// or any callee the type checker cannot attribute (conservative).
func stdlibOrSyncCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := analysis.Callee(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return true
	}
	switch obj.Pkg().Path() {
	case "runtime", "time", "sync":
		return true
	}
	return false
}

