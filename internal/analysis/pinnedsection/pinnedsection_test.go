package pinnedsection_test

import (
	"testing"

	"wcqueue/internal/analysis/checktest"
	"wcqueue/internal/analysis/pinnedsection"
)

func TestPinnedSection(t *testing.T) {
	checktest.Run(t, pinnedsection.Analyzer, "a")
}
