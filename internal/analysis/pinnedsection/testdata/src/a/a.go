// Package a exercises pinnedsection: no yielding or blocking construct
// between procPin and procUnpin.
package a

import (
	"runtime"
	"sync"
	"time"
)

// pinProc and unpinProc mirror the repo's pin bracket; the analyzer
// matches them by name.
func pinProc() int { return 0 }

func unpinProc() {}

func badSend(ch chan int) {
	pinProc()
	ch <- 1 // want `channel send may block`
	unpinProc()
}

func badRecv(ch chan int) int {
	pinProc()
	v := <-ch // want `channel receive may block`
	unpinProc()
	return v
}

func badGosched() {
	pinProc()
	runtime.Gosched() // want `call to Gosched reenters the scheduler`
	unpinProc()
}

func badSleep() {
	pinProc()
	time.Sleep(time.Millisecond) // want `call to Sleep blocks the P`
	unpinProc()
}

func badLock(mu *sync.Mutex) {
	pinProc()
	mu.Lock() // want `call to Lock may block on a contended lock`
	unpinProc()
}

func badPanic(broken bool) {
	pinProc()
	if broken {
		panic("fixture: invariant broken") // want `panic unwinds with the pin held`
	}
	unpinProc()
}

func badGo() {
	pinProc()
	go unpinProc() // want `go statement hands work to the scheduler`
	unpinProc()
}

func badSelect(ch chan int) {
	pinProc()
	select { // want `select may block`
	case v := <-ch: // want `channel receive may block`
		_ = v
	default:
	}
	unpinProc()
}

// okAfterUnpin yields only once the pin is released.
func okAfterUnpin(ch chan int) {
	pinProc()
	unpinProc()
	ch <- 1
}

// okUnpinned never pins at all.
func okUnpinned(ch chan int) {
	go badGo()
	ch <- 1
	runtime.Gosched()
}

// okSuppressed carries the pinned-ok escape hatch with its reason.
func okSuppressed(ch chan int) {
	pinProc()
	// wcq:pinned-ok buffered channel sized by the caller, the send cannot block
	ch <- 1
	unpinProc()
}

// okLocalLock is a Lock on a non-stdlib receiver: not flagged.
type spin struct{}

func (spin) Lock() {}

func okLocalLock(s spin) {
	pinProc()
	s.Lock()
	unpinProc()
}
