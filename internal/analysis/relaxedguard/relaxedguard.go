// Package relaxedguard enforces the hot-path atomic diet's consumption
// contract (DESIGN.md §11): the value returned by an
// atomicx.RelaxedLoad* call is a formal data race with no ordering
// guarantees, so it is only legal to use where staleness is harmless —
// it must flow into an authoritative atomic re-check (a CompareAndSwap
// that re-validates it, or a guarded early-exit whose false negative
// merely costs more work) before anything irreversible depends on it.
// A use the analyzer cannot prove safe must carry a
// `// wcq:relaxed-ok <reason>` annotation stating the site's safety
// argument — the PR 5 review bug class (a hoisted threshold load) is
// exactly what an unguarded escape looks like.
package relaxedguard

import (
	"go/ast"
	"go/token"

	"wcqueue/internal/analysis"
)

// Analyzer is the relaxedguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "relaxedguard",
	Doc: "check that every atomicx.RelaxedLoad* result is re-validated by a CAS, " +
		"consumed by a conservative early-exit guard, or annotated wcq:relaxed-ok",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRelaxedLoad(pass, call) {
				return true
			}
			if safeUse(pass, call, stack) {
				return true
			}
			pass.SuppressedOrReport(call.Pos(), "relaxed-ok",
				"relaxed load result is not re-validated by an authoritative atomic "+
					"re-check (CAS or seq-cst reload) in this function; re-check it or "+
					"annotate the site with // wcq:relaxed-ok <reason> (DESIGN.md §11)")
			return true
		})
	}
	return nil
}

// isRelaxedLoad reports whether call invokes a RelaxedLoad* function of
// an atomicx package.
func isRelaxedLoad(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := analysis.Callee(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if !analysis.PkgPathHasSuffix(obj.Pkg().Path(), "atomicx") {
		return false
	}
	name := obj.Name()
	return len(name) >= len("RelaxedLoad") && name[:len("RelaxedLoad")] == "RelaxedLoad"
}

// safeUse reports whether the relaxed load's result provably flows into
// an authoritative re-check within the enclosing function. Three local
// patterns qualify:
//
//  1. The result is an argument of a CompareAndSwap call — the CAS
//     re-validates the value (a stale read costs one retry).
//  2. The result feeds a comparison that is the condition of an if
//     whose body only returns — the conservative early-exit (a stale
//     read makes the caller do strictly more work, never less).
//  3. The result is bound to a local that is later passed to a
//     CompareAndSwap in the same function — the spelled-out form of 1.
func safeUse(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// Walk outward, skipping parenthesization and the comparison /
	// boolean structure of a guard condition.
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.BinaryExpr:
			child = parent
			continue
		case *ast.CallExpr:
			// Pattern 1: argument of CompareAndSwap.
			if isCASCall(pass, parent) && child != ast.Node(parent.Fun) {
				return true
			}
			return false
		case *ast.IfStmt:
			// Pattern 2: (part of) the condition of an early-exit guard.
			if containsNode(parent.Cond, child) && bodyOnlyReturns(parent.Body) {
				return true
			}
			return false
		case *ast.AssignStmt:
			// Pattern 3: v := RelaxedLoad(p); ... p.CompareAndSwap(v, ...).
			if len(parent.Lhs) == 1 && len(parent.Rhs) == 1 && parent.Rhs[0] == child {
				if id, ok := parent.Lhs[0].(*ast.Ident); ok {
					if fn := analysis.EnclosingFunc(stack); fn != nil {
						return casConsumes(pass, fn, id, parent.End())
					}
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// isCASCall reports whether call invokes a method or function named
// CompareAndSwap*.
func isCASCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := analysis.Callee(pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	return len(name) >= len("CompareAndSwap") && name[:len("CompareAndSwap")] == "CompareAndSwap"
}

// containsNode reports whether needle appears within root.
func containsNode(root ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// bodyOnlyReturns reports whether a block consists solely of return
// statements (the early-exit shape).
func bodyOnlyReturns(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		if _, ok := stmt.(*ast.ReturnStmt); !ok {
			return false
		}
	}
	return true
}

// casConsumes reports whether the variable defined by id is used as an
// argument of a CompareAndSwap call after pos within fn.
func casConsumes(pass *analysis.Pass, fn ast.Node, id *ast.Ident, pos token.Pos) bool {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !isCASCall(pass, call) {
			return !found
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if use, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[use] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
