package relaxedguard_test

import (
	"testing"

	"wcqueue/internal/analysis/checktest"
	"wcqueue/internal/analysis/relaxedguard"
)

func TestRelaxedGuard(t *testing.T) {
	checktest.Run(t, relaxedguard.Analyzer, "a")
}
