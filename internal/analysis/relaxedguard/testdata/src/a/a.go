// Package a exercises relaxedguard: every RelaxedLoad* result must
// flow into an authoritative re-check or carry wcq:relaxed-ok.
package a

import (
	"sync/atomic"

	"wcqueue/internal/analysis/relaxedguard/testdata/src/atomicx"
)

// escape returns the raw relaxed value: the unguarded use the analyzer
// exists to catch.
func escape(p *atomic.Uint64) uint64 {
	return atomicx.RelaxedLoad(p) // want `relaxed load result is not re-validated`
}

// casArg feeds the relaxed value straight into a CAS: pattern 1.
func casArg(p *atomic.Uint64) {
	p.CompareAndSwap(atomicx.RelaxedLoad(p), 1)
}

// guardExit consumes the relaxed value in an early-exit comparison
// whose body only returns: pattern 2 (the rearmThreshold shape).
func guardExit(p *atomic.Int64, thresh int64) {
	if atomicx.RelaxedLoadInt64(p) == thresh {
		return
	}
	p.Store(thresh)
}

// guardConjunction still qualifies with the comparison buried in a
// boolean conjunction.
func guardConjunction(p *atomic.Uint64, ready bool) {
	if ready && atomicx.RelaxedLoad(p) > 4 {
		return
	}
	p.Store(0)
}

// localCAS binds the value to a local later re-validated by a CAS in
// the same function: pattern 3.
func localCAS(p *atomic.Uint64) {
	v := atomicx.RelaxedLoad(p)
	for !p.CompareAndSwap(v, v+1) {
		v = p.Load()
	}
}

// localEscape binds the value to a local that never reaches a CAS.
func localEscape(p *atomic.Uint64) uint64 {
	v := atomicx.RelaxedLoad(p) // want `relaxed load result is not re-validated`
	return v + 1
}

// guardWithWork does more than return inside the guard body, so the
// stale read could gate real effects: not an early exit.
func guardWithWork(p *atomic.Uint64) {
	if atomicx.RelaxedLoad(p) == 0 { // want `relaxed load result is not re-validated`
		p.Store(1)
	}
}

// suppressed carries the annotation and its reason.
func suppressed(p *atomic.Uint64) uint64 {
	return atomicx.RelaxedLoad(p) // wcq:relaxed-ok telemetry counter, staleness only skews a report
}

// suppressedAbove uses the standalone-line form.
func suppressedAbove(p *atomic.Uint64) uint64 {
	// wcq:relaxed-ok telemetry counter, staleness only skews a report
	return atomicx.RelaxedLoad(p)
}

// missingReason has the annotation but no safety argument, which is
// itself a finding.
func missingReason(p *atomic.Uint64) uint64 {
	return atomicx.RelaxedLoad(p) /* wcq:relaxed-ok */ // want `missing its reason`
}

// seqCst is not a relaxed load; never flagged.
func seqCst(p *atomic.Uint64) uint64 {
	return p.Load()
}
