// Package atomicx is a fixture stub standing in for the repository's
// wcqueue/internal/atomicx: the analyzers match helper packages by
// import-path suffix, so this stub exercises them without importing
// production code into the fixtures.
package atomicx

import "sync/atomic"

func RelaxedLoad(p *atomic.Uint64) uint64 { return p.Load() }

func RelaxedLoadInt64(p *atomic.Int64) int64 { return p.Load() }
