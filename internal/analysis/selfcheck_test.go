package analysis_test

// The selfcheck pins the ISSUE's acceptance criterion inside the
// ordinary test suite: the whole repository lints clean under every
// wcqlint analyzer, in the default build and under the failpoint
// weave tag. A finding here means either a real invariant violation
// slipped in or a suppression lost its reason — both block the build
// the same way the CI wcqlint job does.

import (
	"os"
	"path/filepath"
	"testing"

	"wcqueue/internal/analysis"
	"wcqueue/internal/analysis/atomicmix"
	"wcqueue/internal/analysis/failpointweave"
	"wcqueue/internal/analysis/noallocdecl"
	"wcqueue/internal/analysis/pinnedsection"
	"wcqueue/internal/analysis/relaxedguard"
)

var all = []*analysis.Analyzer{
	relaxedguard.Analyzer,
	atomicmix.Analyzer,
	failpointweave.Analyzer,
	noallocdecl.Analyzer,
	pinnedsection.Analyzer,
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func selfcheck(t *testing.T, tags []string) {
	t.Helper()
	if testing.Short() {
		t.Skip("repo-wide lint load in -short mode")
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: moduleRoot(t), Tags: tags}, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, all)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
}

// TestRepositoryLintsClean is the zero-findings gate for the default
// build.
func TestRepositoryLintsClean(t *testing.T) {
	selfcheck(t, nil)
}

// TestRepositoryLintsCleanFailpoints re-lints with the failpoint weave
// compiled in, covering the injection sites the default build
// dead-codes away.
func TestRepositoryLintsCleanFailpoints(t *testing.T) {
	selfcheck(t, []string{"wcq_failpoints"})
}
