package analysis

import "go/ast"

// InspectStack walks the tree rooted at root in depth-first order,
// calling fn for every node with the stack of its ancestors (outermost
// first, not including n itself). If fn returns false the node's
// children are skipped. It is the offline stand-in for the x/tools
// inspector's WithStack traversal.
func InspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
