// Package atomicx provides the packed-word atomic encodings used to
// express the paper's double-width (CAS2) operations with Go's
// single-word atomics.
//
// Two encodings are defined here:
//
//   - FlaggedCounter: a 62-bit monotonic counter with the wCQ slow
//     path's FIN and INC flag bits (per-thread localTail/localHead).
//   - PairWord: the global Head/Tail word holding a 48-bit counter and
//     a 16-bit phase2 owner id, the §4 replacement for the paper's
//     {cnt, ptr} CAS2 pair. The fast path's F&A adds CntUnit and never
//     disturbs the id bits.
package atomicx

// Flag bits of a FlaggedCounter. The paper steals two bits from the
// per-thread local tail/head: FIN terminates future slow_F&A
// increments for a finished help request, INC marks a phase-1
// tentative increment awaiting phase 2.
const (
	FIN uint64 = 1 << 63
	INC uint64 = 1 << 62

	// CounterMask extracts the counter from a flagged word.
	CounterMask uint64 = INC - 1
)

// Counter strips the FIN and INC flags from a flagged word.
// wcq:noalloc
func Counter(v uint64) uint64 { return v & CounterMask }

// HasFIN reports whether the FIN flag is set.
// wcq:noalloc
func HasFIN(v uint64) bool { return v&FIN != 0 }

// HasINC reports whether the INC flag is set.
// wcq:noalloc
func HasINC(v uint64) bool { return v&INC != 0 }

// PairWord layout: [ finalize : 1 ][ counter : 47 bits ][ owner id : 16 bits ].
//
// The counter occupies high bits so the fast path can execute a true
// hardware fetch-and-add of CntUnit on the whole word: the add carries
// only within the counter field (the id bits sit below it, and an
// overflow into the finalize bit would take 2^47 operations — beyond
// the queue's documented MaxOps).
//
// The finalize bit supports the unbounded construction (Appendix A):
// finalize_wCQ ORs it into the Tail pair, after which enqueues fail.
const (
	pairIDBits  = 16
	pairIDMask  = 1<<pairIDBits - 1
	pairCntBits = 63 - pairIDBits
	pairCntMask = 1<<pairCntBits - 1

	// CntUnit is the value a hardware F&A adds to a PairWord to
	// increment the counter component by one.
	CntUnit uint64 = 1 << pairIDBits

	// FinalizeBit marks a finalized Tail (Appendix A, finalize_wCQ).
	FinalizeBit uint64 = 1 << 63

	// MaxPairCnt is the largest counter a PairWord can hold.
	MaxPairCnt uint64 = pairCntMask

	// NoOwner is the id encoding of the paper's null phase2 pointer.
	NoOwner uint64 = 0

	// MaxOwners bounds the number of registerable threads: ids are
	// stored biased by one, so 0 stays "null" and the 65535 usable ids
	// cover tids 0..65534.
	MaxOwners = pairIDMask
)

// PackPair builds a PairWord from a counter and an owner id
// (NoOwner for null). The finalize bit is clear.
// wcq:noalloc
func PackPair(cnt, id uint64) uint64 {
	return (cnt&pairCntMask)<<pairIDBits | id&pairIDMask
}

// PairCnt extracts the counter component of a PairWord.
// wcq:noalloc
func PairCnt(w uint64) uint64 { return w >> pairIDBits & pairCntMask }

// PairFinalized reports whether the finalize bit is set.
// wcq:noalloc
func PairFinalized(w uint64) bool { return w&FinalizeBit != 0 }

// PairSetCnt returns w with the counter replaced, preserving the owner
// id and finalize bits.
// wcq:noalloc
func PairSetCnt(w, cnt uint64) uint64 {
	return w&^(pairCntMask<<pairIDBits) | (cnt&pairCntMask)<<pairIDBits
}

// PairClearID returns w with the owner id cleared, preserving the
// counter and finalize bits.
// wcq:noalloc
func PairClearID(w uint64) uint64 { return w &^ pairIDMask }

// PairID extracts the owner id component of a PairWord.
// wcq:noalloc
func PairID(w uint64) uint64 { return w & pairIDMask }

// OwnerID converts a zero-based thread index into a non-null owner id.
// wcq:noalloc
func OwnerID(tid int) uint64 { return uint64(tid) + 1 }

// OwnerTID converts a non-null owner id back to a zero-based index.
// wcq:noalloc
func OwnerTID(id uint64) int { return int(id) - 1 }
