package atomicx

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestFlaggedCounter(t *testing.T) {
	v := uint64(12345)
	if Counter(v|FIN) != v || Counter(v|INC) != v || Counter(v|FIN|INC) != v {
		t.Fatal("Counter does not strip flags")
	}
	if !HasFIN(v|FIN) || HasFIN(v) || !HasINC(v|INC) || HasINC(v) {
		t.Fatal("flag predicates wrong")
	}
}

func TestPairPackRoundTrip(t *testing.T) {
	f := func(cnt uint64, id uint16) bool {
		cnt &= MaxPairCnt
		w := PackPair(cnt, uint64(id))
		return PairCnt(w) == cnt && PairID(w) == uint64(id) && !PairFinalized(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairFAAPreservesIDAndFinalize(t *testing.T) {
	f := func(cnt uint64, id uint16, finalized bool) bool {
		cnt &= MaxPairCnt - 1 // room for one increment
		w := PackPair(cnt, uint64(id))
		if finalized {
			w |= FinalizeBit
		}
		w2 := w + CntUnit // what a hardware F&A does
		return PairCnt(w2) == cnt+1 &&
			PairID(w2) == uint64(id) &&
			PairFinalized(w2) == finalized
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairSetCnt(t *testing.T) {
	f := func(cnt, newCnt uint64, id uint16, finalized bool) bool {
		cnt &= MaxPairCnt
		newCnt &= MaxPairCnt
		w := PackPair(cnt, uint64(id))
		if finalized {
			w |= FinalizeBit
		}
		w2 := PairSetCnt(w, newCnt)
		return PairCnt(w2) == newCnt &&
			PairID(w2) == uint64(id) &&
			PairFinalized(w2) == finalized
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairClearID(t *testing.T) {
	w := PackPair(42, OwnerID(7)) | FinalizeBit
	c := PairClearID(w)
	if PairID(c) != NoOwner || PairCnt(c) != 42 || !PairFinalized(c) {
		t.Fatalf("PairClearID mangled word: id=%d cnt=%d fin=%v", PairID(c), PairCnt(c), PairFinalized(c))
	}
}

func TestOwnerIDRoundTrip(t *testing.T) {
	for tid := 0; tid < 100; tid++ {
		id := OwnerID(tid)
		if id == NoOwner {
			t.Fatalf("OwnerID(%d) collides with NoOwner", tid)
		}
		if OwnerTID(id) != tid {
			t.Fatalf("OwnerTID(OwnerID(%d)) = %d", tid, OwnerTID(id))
		}
	}
}

// TestOwnerIDSpaceFullyUsable pins the registration capacity: the
// 16-bit id field minus the null encoding gives exactly 65535 usable
// ids, and the highest tid round-trips through a pair word intact.
func TestOwnerIDSpaceFullyUsable(t *testing.T) {
	if MaxOwners != 65535 {
		t.Fatalf("MaxOwners = %d, want 65535", MaxOwners)
	}
	top := int(MaxOwners) - 1 // highest tid
	id := OwnerID(top)
	if id == NoOwner {
		t.Fatal("top owner id collides with NoOwner")
	}
	w := PackPair(123, id)
	if PairID(w) != id || OwnerTID(PairID(w)) != top || PairCnt(w) != 123 {
		t.Fatalf("top id mangled through a pair word: id=%d cnt=%d", PairID(w), PairCnt(w))
	}
	if PairFinalized(w) {
		t.Fatal("top id set the finalize bit")
	}
}

func TestFlagBitsDisjointFromPairBits(t *testing.T) {
	// FIN/INC (per-thread local words) and FinalizeBit (global pair
	// word) are different encodings; this documents that FIN and
	// FinalizeBit share bit 63 by design but are never applied to the
	// same word class.
	if FIN != FinalizeBit {
		t.Log("FIN and FinalizeBit differ; fine")
	}
	if FIN&CounterMask != 0 || INC&CounterMask != 0 {
		t.Fatal("flags overlap the counter mask")
	}
}

func TestRelaxedAccessorsRoundTrip(t *testing.T) {
	// The relaxed accessors must agree with the seq-cst view on both
	// build variants (plain on TSO non-race builds, atomic elsewhere):
	// whatever was last stored through either path is what both paths
	// read back.
	var u atomic.Uint64
	u.Store(0xDEADBEEFCAFE)
	if got := RelaxedLoad(&u); got != 0xDEADBEEFCAFE {
		t.Fatalf("RelaxedLoad = %#x, want %#x", got, uint64(0xDEADBEEFCAFE))
	}
	var i atomic.Int64
	i.Store(-7)
	if got := RelaxedLoadInt64(&i); got != -7 {
		t.Fatalf("RelaxedLoadInt64 = %d, want -7", got)
	}
	i.Store(41)
	if got := RelaxedLoadInt64(&i); got != 41 {
		t.Fatalf("RelaxedLoadInt64 = %d, want 41", got)
	}
}

func TestRelaxedLoadSeesCrossGoroutineStores(t *testing.T) {
	// A seq-cst store on one goroutine is observed by a relaxed load on
	// another once a happens-before edge exists (the channel handoff,
	// which also keeps the race detector happy).
	var v atomic.Int64
	done := make(chan struct{})
	go func() {
		v.Store(99)
		close(done)
	}()
	<-done
	if got := RelaxedLoadInt64(&v); got != 99 {
		t.Fatalf("RelaxedLoadInt64 after handoff = %d, want 99", got)
	}
}
