//go:build !amd64 || race

package atomicx

import "sync/atomic"

// Portable/race-detector fallbacks for the relaxed accessors: the same
// call sites run with full seq-cst operations, so weakly ordered
// machines keep their fences and the race detector sees synchronized
// accesses. See relaxed_fast.go for the TSO variants and the safety
// contract.

// RelaxedLoad loads p. On this build it is a seq-cst load.
// wcq:noalloc
func RelaxedLoad(p *atomic.Uint64) uint64 { return p.Load() }

// RelaxedLoadInt64 loads p. On this build it is a seq-cst load.
// wcq:noalloc
func RelaxedLoadInt64(p *atomic.Int64) int64 { return p.Load() }
