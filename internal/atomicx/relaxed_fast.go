//go:build amd64 && !race

package atomicx

import (
	"sync/atomic"
	"unsafe"
)

// This file provides the relaxed ("atomic diet") variants of the hot
// loads and stores for TSO hardware. On x86-64 every aligned 64-bit
// plain access is single-copy atomic, loads carry acquire semantics
// and stores release semantics for free; the only thing Go's seq-cst
// atomics add is the trailing store fence (atomic.Store compiles to
// XCHG) and a compiler reordering barrier. The callers below are
// exactly the sites where neither is needed:
//
//   - RelaxedLoad feeds a CAS loop (the CAS re-validates the value, so
//     a stale read costs one retry) or a conservative early-exit (a
//     stale read makes the caller do strictly more work, never less).
//
// Stores are deliberately NOT offered: a store relaxed to a plain MOV
// can sit in the writer's store buffer past its operation's return,
// letting a reader that starts strictly later observe the old value —
// a real-time linearizability hole for state like the threshold (the
// re-arm store therefore stays seq-cst; see core.WCQ.rearmThreshold).
//
// Race builds and non-TSO architectures use relaxed_atomic.go:
// identical semantics through seq-cst operations, so the race
// detector observes properly synchronized accesses and weakly ordered
// machines keep the fences. DESIGN.md §11 carries the full argument
// per call site.
//
// CAVEAT — this is a formal data race. The Go memory model gives a
// plain load of a concurrently-written word no defined semantics at
// all; "it's x86" is a hardware argument, not a language one, and the
// !race build tag deliberately hides these accesses from the race
// detector. What makes the callers correct in practice is pinned to
// the gc compiler on amd64: aligned 64-bit plain loads compile to a
// single MOV (single-copy atomic), and the compiler does not reorder
// or fold a plain load across the atomic RMW (CAS/F&A) that every
// consuming loop's back-edge executes — observed gc behavior, not a
// documented guarantee. A future gc release or an alternative
// compiler (gccgo, tinygo) could break that assumption; the escape
// hatches are Options.ConservativeAtomics / scq.WithConservativeAtomics
// (per-queue, seq-cst throughout) and deleting the amd64 build tag
// line above (process-wide, falls back to relaxed_atomic.go). A
// future runtime/internal relaxed-atomic intrinsic (or go:linkname to
// one) would make this well-defined; none is exported today.

// RelaxedLoad loads p without ordering guarantees beyond same-location
// coherence. Use only where the value is re-validated (CAS) or where
// staleness is conservative.
// wcq:noalloc
func RelaxedLoad(p *atomic.Uint64) uint64 {
	return *(*uint64)(unsafe.Pointer(p))
}

// RelaxedLoadInt64 is RelaxedLoad for int64 words.
// wcq:noalloc
func RelaxedLoadInt64(p *atomic.Int64) int64 {
	return *(*int64)(unsafe.Pointer(p))
}
