//go:build amd64 && !race

package atomicx

import (
	"sync/atomic"
	"unsafe"
)

// This file provides the relaxed ("atomic diet") variants of the hot
// loads and stores for TSO hardware. On x86-64 every aligned 64-bit
// plain access is single-copy atomic, loads carry acquire semantics
// and stores release semantics for free; the only thing Go's seq-cst
// atomics add is the trailing store fence (atomic.Store compiles to
// XCHG) and a compiler reordering barrier. The callers below are
// exactly the sites where neither is needed:
//
//   - RelaxedLoad feeds a CAS loop (the CAS re-validates the value, so
//     a stale read costs one retry) or a conservative early-exit (a
//     stale read makes the caller do strictly more work, never less).
//
// Stores are deliberately NOT offered: a store relaxed to a plain MOV
// can sit in the writer's store buffer past its operation's return,
// letting a reader that starts strictly later observe the old value —
// a real-time linearizability hole for state like the threshold (the
// re-arm store therefore stays seq-cst; see core.WCQ.rearmThreshold).
//
// Race builds and non-TSO architectures use relaxed_atomic.go:
// identical semantics through seq-cst operations, so the race
// detector observes properly synchronized accesses and weakly ordered
// machines keep the fences. DESIGN.md §11 carries the full argument
// per call site.

// RelaxedLoad loads p without ordering guarantees beyond same-location
// coherence. Use only where the value is re-validated (CAS) or where
// staleness is conservative.
func RelaxedLoad(p *atomic.Uint64) uint64 {
	return *(*uint64)(unsafe.Pointer(p))
}

// RelaxedLoadInt64 is RelaxedLoad for int64 words.
func RelaxedLoadInt64(p *atomic.Int64) int64 {
	return *(*int64)(unsafe.Pointer(p))
}
