// Package bench is the benchmark harness that regenerates the paper's
// evaluation (Section 6, Figures 10-12): workload generators, thread
// orchestration, repeated timed runs with outlier protection, and the
// memory-usage experiment.
//
// The harness follows the paper's methodology: each point is measured
// Repeats times over Ops total operations spread across the worker
// goroutines; the mean and the coefficient of variation are reported.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"wcqueue/internal/queues/queueiface"
)

// Workload selects the per-iteration operation mix.
type Workload int

// Workloads of the paper's figures.
const (
	// Pairwise: each iteration enqueues then dequeues (Fig. 11b/12b).
	Pairwise Workload = iota
	// Random5050: each iteration is an enqueue or a dequeue with equal
	// probability (Fig. 11c/12c).
	Random5050
	// EmptyDequeue: dequeue on an always-empty queue (Fig. 11a/12a).
	EmptyDequeue
	// MemoryTest: Random5050 with small random delays between
	// operations (Fig. 10), amplifying memory artifacts.
	MemoryTest
	// RingChurn: alternating bursts of churnBurst enqueues then
	// churnBurst dequeues per thread. On an unbounded queue with small
	// rings every burst finalizes, appends and drains several rings —
	// the workload that measures ring-recycling (experiment C1:
	// allocations per hop and peak footprint).
	RingChurn
	// RegisterChurn: every iteration registers a fresh handle, moves
	// one value through it, and unregisters — goroutine-churn traffic
	// (experiment D0). Measures dynamic registration: slot recycling,
	// record-arena materialization and, for the unbounded queue,
	// hazard-slot setup per handle lifetime.
	RegisterChurn
)

// churnBurst is the per-thread burst length of the RingChurn workload.
// With order-3 rings (8 slots) one burst spans ~8 ring hops.
const churnBurst = 64

// String names the workload as in the paper.
func (w Workload) String() string {
	switch w {
	case Pairwise:
		return "pairwise"
	case Random5050:
		return "50-50"
	case EmptyDequeue:
		return "empty-deq"
	case MemoryTest:
		return "memory"
	case RingChurn:
		return "ring-churn"
	case RegisterChurn:
		return "register-churn"
	default:
		return fmt.Sprintf("workload(%d)", int(w))
	}
}

// Config parameterizes one measurement.
type Config struct {
	Threads  int // worker goroutines
	Ops      int // total operations per run (split across threads)
	Repeats  int // timed repetitions (paper: 10)
	Workload Workload
	Prefill  int // elements enqueued before timing starts
	// Batch > 1 drives the workload through the queue's batched fast
	// paths (queueiface.BatchQueue) in chunks of Batch operations.
	// 0 or 1 selects the scalar paths.
	Batch int
}

// Result is one measured point.
type Result struct {
	QueueName      string  `json:"queue"`
	Workload       string  `json:"workload"`
	Threads        int     `json:"threads"`
	Batch          int     `json:"batch"` // 1 = scalar paths
	Mops           float64 `json:"mops"`  // mean throughput, million ops/second
	CV             float64 `json:"cv"`    // coefficient of variation across repeats
	FootprintBytes int64   `json:"footprint_bytes"`
	SlowFraction   float64 `json:"slow_fraction,omitempty"` // wCQ only: slow-path entries / ops (A3)
	// Ring-recycling metrics, present for queues exposing RingStats
	// (wCQ-Unbounded): ring allocations after the warm-up repeat — the
	// steady-state allocation-free claim is RingAllocs == 0 — and the
	// footprint high-water mark over the whole run.
	RingAllocs         uint64 `json:"ring_allocs,omitempty"`
	RingRecycles       uint64 `json:"ring_recycles,omitempty"`
	PeakFootprintBytes int64  `json:"peak_footprint_bytes,omitempty"`
	// RatioToFAA is the contract-free FAA baseline's throughput divided
	// by this point's, at the same thread count — the "gap to FAA" the
	// G-series tracks (1.0 for FAA itself, annotated only on sweeps that
	// include FAA).
	RatioToFAA float64 `json:"ratio_to_faa,omitempty"`
	// Overload (H-series) metrics, present only for Workload
	// "Overload" (overload.go): offered load as a multiple of pool
	// capacity, delivered items per second, the shed fraction of all
	// submits, and admission (Submit) latency percentiles from the
	// alloc-free histogram.
	OfferedLoad     float64 `json:"offered_load,omitempty"`
	Goodput         float64 `json:"goodput_per_sec,omitempty"`
	ShedRate        float64 `json:"shed_rate,omitempty"`
	AdmitP50Micros  float64 `json:"admit_p50_us,omitempty"`
	AdmitP99Micros  float64 `json:"admit_p99_us,omitempty"`
	AdmitP999Micros float64 `json:"admit_p999_us,omitempty"`
}

// ringStatser is implemented by queues that recycle rings through a
// pool (the wCQ-Unbounded adapter).
type ringStatser interface {
	RingStats() (hits, misses, drops uint64)
}

// peakFootprinter is implemented by queues tracking their footprint
// high-water mark.
type peakFootprinter interface {
	PeakFootprint() int64
}

// QueueStats is implemented by queues exposing slow-path counters.
type QueueStats interface {
	Stats() (slowOps uint64)
}

// Run measures one queue under one configuration.
func Run(q queueiface.Queue, cfg Config) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1_000_000
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Batch > 1 {
		if _, ok := q.(queueiface.BatchQueue); !ok {
			return Result{}, fmt.Errorf("bench: %s does not implement batched operations", q.Name())
		}
	}

	// Prefill outside the timed region.
	if cfg.Prefill > 0 {
		h, err := q.Register()
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < cfg.Prefill; i++ {
			q.Enqueue(h, uint64(i))
		}
		q.Unregister(h)
	}

	// The first repeat doubles as the recycling warm-up: pool fills,
	// steady state begins. Ring allocations are counted from there —
	// unless there is only one repeat, in which case the whole run is
	// counted (never report a steady-state 0 that was not measured).
	rs, hasRingStats := q.(ringStatser)
	var warmHits, warmMisses uint64
	if hasRingStats {
		warmHits, warmMisses, _ = rs.RingStats()
	}

	throughputs := make([]float64, 0, cfg.Repeats)
	for rep := 0; rep < cfg.Repeats; rep++ {
		elapsed, err := timedRun(q, cfg)
		if err != nil {
			return Result{}, err
		}
		throughputs = append(throughputs, float64(cfg.Ops)/elapsed.Seconds()/1e6)
		if rep == 0 && hasRingStats && cfg.Repeats > 1 {
			warmHits, warmMisses, _ = rs.RingStats()
		}
	}

	mean, cv := meanCV(throughputs)
	workload := cfg.Workload.String()
	if cfg.Batch > 1 {
		workload = fmt.Sprintf("%s+batch%d", workload, cfg.Batch)
	}
	res := Result{
		QueueName:      q.Name(),
		Workload:       workload,
		Threads:        cfg.Threads,
		Batch:          cfg.Batch,
		Mops:           mean,
		CV:             cv,
		FootprintBytes: q.Footprint(),
	}
	if hasRingStats {
		hits, misses, _ := rs.RingStats()
		res.RingAllocs = misses - warmMisses
		res.RingRecycles = hits - warmHits
	}
	if pf, ok := q.(peakFootprinter); ok {
		res.PeakFootprintBytes = pf.PeakFootprint()
	}
	return res, nil
}

// timedRun executes one timed repetition.
func timedRun(q queueiface.Queue, cfg Config) (time.Duration, error) {
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		readyWg sync.WaitGroup
	)
	perThread := cfg.Ops / cfg.Threads

	handles := make([]queueiface.Handle, cfg.Threads)
	for i := range handles {
		h, err := q.Register()
		if err != nil {
			return 0, fmt.Errorf("bench: registering worker %d: %w", i, err)
		}
		handles[i] = h
	}
	defer func() {
		for _, h := range handles {
			q.Unregister(h)
		}
	}()

	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		readyWg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := handles[w]
			rng := newXorshift(uint64(w)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
			readyWg.Done()
			<-start
			if cfg.Batch > 1 {
				batchWorker(q.(queueiface.BatchQueue), h, cfg.Workload, perThread, cfg.Batch, w, rng)
			} else {
				worker(q, h, cfg.Workload, perThread, w, rng)
			}
		}(w)
	}

	readyWg.Wait()
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0), nil
}

// worker executes one thread's share of the workload.
func worker(q queueiface.Queue, h queueiface.Handle, wl Workload, ops, tid int, rng *xorshift) {
	val := uint64(tid)<<32 + 1
	switch wl {
	case Pairwise:
		for i := 0; i < ops/2; i++ {
			q.Enqueue(h, val)
			q.Dequeue(h)
			val++
		}
	case Random5050:
		for i := 0; i < ops; i++ {
			if rng.next()&1 == 0 {
				q.Enqueue(h, val)
				val++
			} else {
				q.Dequeue(h)
			}
		}
	case EmptyDequeue:
		for i := 0; i < ops; i++ {
			q.Dequeue(h)
		}
	case RingChurn:
		for done := 0; done < ops; {
			for b := 0; b < churnBurst; b++ {
				q.Enqueue(h, val)
				val++
			}
			for b := 0; b < churnBurst; b++ {
				q.Dequeue(h)
			}
			done += 2 * churnBurst
		}
	case MemoryTest:
		for i := 0; i < ops; i++ {
			if rng.next()&1 == 0 {
				q.Enqueue(h, val)
				val++
			} else {
				q.Dequeue(h)
			}
			// Tiny random delay (paper §6: amplifies memory artifacts).
			spin := rng.next() & 0x3F
			for s := uint64(0); s < spin; s++ {
				cpuRelax()
			}
		}
	case RegisterChurn:
		// The pre-registered handle h is ignored: the cycle cost under
		// measurement is register → enqueue → dequeue → unregister.
		// Each cycle counts as 4 operations, so throughput is directly
		// comparable to one pairwise iteration plus handle churn.
		for done := 0; done < ops; done += 4 {
			hh, err := q.Register()
			if err != nil {
				panic(fmt.Sprintf("bench: register-churn registration failed: %v", err))
			}
			q.Enqueue(hh, val)
			val++
			q.Dequeue(hh)
			q.Unregister(hh)
		}
	}
}

// batchWorker executes one thread's share of the workload through the
// batched fast paths, up to Batch operations per reservation. The
// operation accounting matches worker's: one enqueued or dequeued
// value is one operation, and a call that moves nothing counts as one
// operation (a failed scalar Enqueue/Dequeue also counts as one), so
// scalar and batched runs of equal Ops are comparable — a short or
// empty batch is never credited with work it did not do.
func batchWorker(q queueiface.BatchQueue, h queueiface.Handle, wl Workload, ops, batch, tid int, rng *xorshift) {
	vals := make([]uint64, batch)
	val := uint64(tid)<<32 + 1
	fill := func() {
		for i := range vals {
			vals[i] = val
			val++
		}
	}
	credit := func(n int) int { // ops performed by one batch call
		if n < 1 {
			return 1
		}
		return n
	}
	switch wl {
	case Pairwise:
		for done := 0; done < ops/2; {
			fill()
			n := q.EnqueueBatch(h, vals)
			m := q.DequeueBatch(h, vals)
			done += credit((n + m) / 2)
		}
	case Random5050, MemoryTest:
		for done := 0; done < ops; {
			if rng.next()&1 == 0 {
				fill()
				done += credit(q.EnqueueBatch(h, vals))
			} else {
				done += credit(q.DequeueBatch(h, vals))
			}
			if wl == MemoryTest {
				spin := rng.next() & 0x3F
				for s := uint64(0); s < spin; s++ {
					cpuRelax()
				}
			}
		}
	case EmptyDequeue:
		for done := 0; done < ops; done++ {
			q.DequeueBatch(h, vals) // one empty-exit check per call, as in scalar
		}
	case RingChurn:
		for done := 0; done < ops; {
			enq := 0
			for b := 0; b < churnBurst; b += batch {
				fill()
				enq += q.EnqueueBatch(h, vals)
			}
			// Drain what was enqueued. Per-call counts matter: on small
			// rings a batched dequeue returns at most one ring's worth,
			// so a fixed iteration count would leak depth every burst.
			drained := 0
			for drained < enq {
				k := enq - drained
				if k > batch {
					k = batch
				}
				m := q.DequeueBatch(h, vals[:k])
				if m == 0 {
					break // drained by a concurrent thread
				}
				drained += m
			}
			done += credit(enq + drained)
		}
	case RegisterChurn:
		for done := 0; done < ops; {
			hh, err := q.Register()
			if err != nil {
				panic(fmt.Sprintf("bench: register-churn registration failed: %v", err))
			}
			fill()
			n := q.EnqueueBatch(hh, vals)
			m := q.DequeueBatch(hh, vals)
			q.Unregister(hh)
			done += credit(n+m) + 2
		}
	}
}

// cpuRelax is a compiler-opaque no-op used for calibrated spinning.
//
//go:noinline
func cpuRelax() {}

// meanCV returns the mean and coefficient of variation, after dropping
// the single worst outlier when there are enough samples (the paper's
// benchmark "protects against outliers").
func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) >= 4 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		xs = sorted[1:] // drop the slowest run (lowest throughput)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, (ss / float64(len(xs)-1)) / mean // variance/mean ≈ CV for tight data
}

// ThreadSweep returns the thread counts for a sweep, doubling from 1
// to 2×GOMAXPROCS (the paper sweeps 1..144 on a 72-core machine to
// show oversubscription).
func ThreadSweep() []int {
	maxT := 2 * runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t <= maxT; t *= 2 {
		out = append(out, t)
	}
	return out
}

// xorshift is a tiny thread-local PRNG (xorshift64*).
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s >> 12
	x.s ^= x.s << 25
	x.s ^= x.s >> 27
	return x.s * 0x2545F4914F6CDD1D
}
