package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wcqueue/internal/queues/registry"
)

func TestMeanCV(t *testing.T) {
	mean, cv := meanCV([]float64{10, 10, 10})
	if mean != 10 || cv != 0 {
		t.Fatalf("constant series: mean=%f cv=%f", mean, cv)
	}
	if m, _ := meanCV(nil); m != 0 {
		t.Fatal("empty series")
	}
	// With ≥4 samples the slowest is dropped.
	mean, _ = meanCV([]float64{1, 10, 10, 10})
	if mean != 10 {
		t.Fatalf("outlier not dropped: mean=%f", mean)
	}
}

func TestXorshiftNonzeroAndVaried(t *testing.T) {
	x := newXorshift(0) // zero seed must be remapped
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := x.next()
		if v == 0 {
			t.Fatal("xorshift emitted zero")
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Fatalf("xorshift poor variety: %d distinct of 1000", len(seen))
	}
}

func TestWorkloadStrings(t *testing.T) {
	for wl, want := range map[Workload]string{
		Pairwise: "pairwise", Random5050: "50-50",
		EmptyDequeue: "empty-deq", MemoryTest: "memory",
	} {
		if wl.String() != want {
			t.Fatalf("%v.String() = %q", int(wl), wl.String())
		}
	}
	if !strings.Contains(Workload(99).String(), "99") {
		t.Fatal("unknown workload string")
	}
}

func TestThreadSweepShape(t *testing.T) {
	sweep := ThreadSweep()
	if len(sweep) == 0 || sweep[0] != 1 {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] != 2*sweep[i-1] {
			t.Fatalf("sweep not doubling: %v", sweep)
		}
	}
}

func TestRunMeasuresEveryWorkload(t *testing.T) {
	for _, wl := range []Workload{Pairwise, Random5050, EmptyDequeue, MemoryTest} {
		q, err := registry.New("SCQ", registry.Config{Threads: 3, RingOrder: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, Config{Threads: 2, Ops: 20_000, Repeats: 2, Workload: wl})
		if err != nil {
			t.Fatalf("%v: %v", wl, err)
		}
		if res.Mops <= 0 {
			t.Fatalf("%v: nonpositive throughput %f", wl, res.Mops)
		}
		if res.QueueName != "SCQ" || res.Threads != 2 {
			t.Fatalf("%v: bad result metadata %+v", wl, res)
		}
	}
}

func TestRunWithPrefill(t *testing.T) {
	q, err := registry.New("wCQ", registry.Config{Threads: 3, RingOrder: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(q, Config{Threads: 1, Ops: 5_000, Repeats: 1, Workload: Random5050, Prefill: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mops <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFindExperiment(t *testing.T) {
	for _, e := range Experiments {
		got, ok := FindExperiment(e.ID)
		if !ok || got.Figure != e.Figure {
			t.Fatalf("FindExperiment(%q) failed", e.ID)
		}
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Fatal("unknown experiment found")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, _ := FindExperiment("pairwise")
	e.Queues = []string{"SCQ", "wCQ"} // narrow for speed
	var buf bytes.Buffer
	results, err := RunExperiment(&buf, e, RunOptions{Ops: 20_000, Repeats: 1, Threads: []int{1, 2}, RingOrder: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("expected 4 measured points, got %d", len(results))
	}
	out := buf.String()
	for _, want := range []string{"SCQ", "wCQ", "Mops/s", "Fig. 11b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunPatienceAblation(&buf, 2, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := RunHelpDelayAblation(&buf, 2, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := RunRemapAblation(&buf, 2, 10_000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MAX_PATIENCE", "HELP_DELAY", "Cache_Remap", "slow-fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestRunBatchedWorkloads(t *testing.T) {
	for _, name := range []string{"wCQ", "SCQ", "wCQ-Striped"} {
		for _, wl := range []Workload{Pairwise, Random5050, EmptyDequeue} {
			q, err := registry.New(name, registry.Config{Threads: 3, RingOrder: 10})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(q, Config{Threads: 2, Ops: 20_000, Repeats: 1, Workload: wl, Batch: 8})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, wl, err)
			}
			if res.Mops <= 0 {
				t.Fatalf("%s/%v: nonpositive throughput", name, wl)
			}
			if res.Batch != 8 || !strings.Contains(res.Workload, "+batch8") {
				t.Fatalf("%s/%v: batch metadata missing: %+v", name, wl, res)
			}
		}
	}
}

func TestRunBatchRejectsNonBatchQueue(t *testing.T) {
	q, err := registry.New("MSQueue", registry.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(q, Config{Threads: 1, Ops: 1000, Workload: Pairwise, Batch: 8}); err == nil {
		t.Fatal("batched run accepted a queue without batch support")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	opts := RunOptions{Ops: 1000, Repeats: 2, RingOrder: 10}
	results := []Result{
		{QueueName: "wCQ", Workload: "pairwise", Threads: 2, Batch: 1, Mops: 12.5},
		{QueueName: "wCQ", Workload: "pairwise+batch16", Threads: 2, Batch: 16, Mops: 31.0},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewReport(opts, results)); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Meta.Ops != 1000 || back.Meta.RingOrder != 10 || back.Meta.GOMAXPROCS == 0 {
		t.Fatalf("meta mangled: %+v", back.Meta)
	}
	if len(back.Results) != 2 || back.Results[1].Batch != 16 || back.Results[1].Mops != 31.0 {
		t.Fatalf("results mangled: %+v", back.Results)
	}
}

func TestBatchedExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"pairwise-batch", "random-batch", "striped"} {
		e, ok := FindExperiment(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		if id != "striped" && e.Batch <= 1 {
			t.Fatalf("experiment %q has no batch size", id)
		}
	}
}

// TestDSeriesExperimentsRegistered pins the dynamic-registration bench
// series: D0 drives the register-churn workload, D1/D2 compare the
// pooled implicit handles against explicit ones.
func TestDSeriesExperimentsRegistered(t *testing.T) {
	e, ok := FindExperiment("registration-churn")
	if !ok {
		t.Fatal("experiment registration-churn missing")
	}
	if e.Workload != RegisterChurn {
		t.Fatalf("registration-churn runs workload %v", e.Workload)
	}
	for _, id := range []string{"implicit-overhead", "implicit-batch"} {
		e, ok := FindExperiment(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		found := false
		for _, q := range e.Queues {
			found = found || q == "wCQ-Implicit"
		}
		if !found {
			t.Fatalf("experiment %q does not sweep wCQ-Implicit (queues %v)", id, e.Queues)
		}
	}
}

// TestRunRegisterChurn exercises the register-churn workload end to
// end, scalar and batched, on the shapes D0 sweeps.
func TestRunRegisterChurn(t *testing.T) {
	for _, name := range []string{"wCQ", "wCQ-Striped", "wCQ-Unbounded"} {
		for _, batch := range []int{1, 8} {
			q, err := registry.New(name, registry.Config{Threads: 3, RingOrder: 8})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(q, Config{Threads: 2, Ops: 8_000, Repeats: 1, Workload: RegisterChurn, Batch: batch})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", name, batch, err)
			}
			if res.Mops <= 0 {
				t.Fatalf("%s/batch%d: nonpositive throughput", name, batch)
			}
		}
	}
}
