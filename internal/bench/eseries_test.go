package bench

import (
	"io"
	"os"
	"testing"

	"wcqueue/internal/queues/registry"
)

// TestESeriesExperimentsRegistered pins the E-series experiment table
// (DESIGN.md §11): the direct-vs-indirect sweeps exist and compare the
// right queues.
func TestESeriesExperimentsRegistered(t *testing.T) {
	wantQueues := map[string]string{
		"direct-pairwise":  "wCQ-Direct",
		"direct-random":    "wCQ-Direct",
		"direct-batch":     "wCQ-Direct",
		"direct-unbounded": "wCQ-Direct-Unbounded",
		"direct-churn":     "wCQ-Direct-Unbounded",
	}
	for id, want := range wantQueues {
		e, ok := FindExperiment(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		found := false
		for _, q := range e.Queues {
			if q == want {
				found = true
			}
			if _, err := registry.New(q, registry.Config{Threads: 1, RingOrder: 4}); err != nil {
				t.Fatalf("experiment %q references unbuildable queue %q: %v", id, q, err)
			}
		}
		if !found {
			t.Fatalf("experiment %q does not compare %q (has %v)", id, want, e.Queues)
		}
	}
}

// TestDietAblationSmoke exercises the E5 A/B harness end to end with
// tiny op counts.
func TestDietAblationSmoke(t *testing.T) {
	if err := RunDietAblation(io.Discard, 2, 20000); err != nil {
		t.Fatal(err)
	}
}

// TestESeriesSmokeDirectBeatsIndirect is the CI performance gate: the
// direct-value queue must beat the indirect wCQ on single-threaded
// pairwise — it executes half the atomic RMWs per transfer, so losing
// means a hot-path regression, not noise. Guarded by WCQ_E_SMOKE so
// ordinary `go test ./...` (and -race runs, whose instrumented
// timings mean nothing) stay fast and deterministic; the CI bench
// smoke step sets the variable.
func TestESeriesSmokeDirectBeatsIndirect(t *testing.T) {
	if os.Getenv("WCQ_E_SMOKE") == "" {
		t.Skip("set WCQ_E_SMOKE=1 to run the E-series performance gate")
	}
	const ops = 400_000
	mops := func(name string) float64 {
		q, err := registry.New(name, registry.Config{Threads: 2, RingOrder: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, Config{Threads: 1, Ops: ops, Repeats: 5, Workload: Pairwise})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mops
	}
	// The measured margin is ~2.3x, so losing a comparison means a real
	// regression — except on a noisy shared runner, where one steal
	// burst inside the direct measurement can flip a single sample.
	// One retry absorbs that without weakening the gate.
	for attempt := 1; ; attempt++ {
		indirect := mops("wCQ")
		direct := mops("wCQ-Direct")
		t.Logf("attempt %d: pairwise 1-thread: wCQ %.2f Mops/s, wCQ-Direct %.2f Mops/s (%.2fx)",
			attempt, indirect, direct, direct/indirect)
		if direct > indirect {
			return
		}
		if attempt == 2 {
			t.Fatalf("wCQ-Direct (%.2f Mops/s) does not beat indirect wCQ (%.2f Mops/s) single-threaded",
				direct, indirect)
		}
	}
}
