package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wcqueue/internal/core"
	"wcqueue/internal/queues/registry"
	"wcqueue/internal/scq"
)

// Experiment regenerates one of the paper's figures or one of the
// ablations listed in DESIGN.md §3.
type Experiment struct {
	// ID is the experiment key used by cmd/wcqbench (-experiment).
	ID string
	// Figure names the paper artifact this regenerates.
	Figure string
	// Workload drives the run.
	Workload Workload
	// Queues are the registry names to compare, in legend order.
	Queues []string
	// LLSC selects the emulated-F&A builds (Fig. 12).
	LLSC bool
	// MeasureMemory reports footprints instead of only throughput.
	MeasureMemory bool
	// Batch > 1 drives the batched fast paths in chunks of Batch.
	Batch int
	// RingOrder, when nonzero, overrides the sweep's ring order (the
	// ring-churn experiment needs tiny rings to force hops).
	RingOrder uint
	// PoolSize, when nonzero, sets the wCQ-Unbounded ring-pool
	// capacity PER WORKER THREAD: rings in flight scale with the
	// number of concurrent burst cycles, so a fixed pool would starve
	// at high thread counts.
	PoolSize int
}

// Experiments is the full per-figure index (DESIGN.md §3).
var Experiments = []Experiment{
	{ID: "memory", Figure: "Fig. 10a/10b (memory usage + throughput)", Workload: MemoryTest,
		Queues: registry.PaperOrder, MeasureMemory: true},
	{ID: "empty", Figure: "Fig. 11a (empty dequeue throughput)", Workload: EmptyDequeue,
		Queues: registry.PaperOrder},
	{ID: "pairwise", Figure: "Fig. 11b (pairwise enqueue-dequeue)", Workload: Pairwise,
		Queues: registry.PaperOrder},
	{ID: "random", Figure: "Fig. 11c (50%/50% enqueue-dequeue)", Workload: Random5050,
		Queues: registry.PaperOrder},
	{ID: "empty-llsc", Figure: "Fig. 12a (PowerPC analog: empty dequeue)", Workload: EmptyDequeue,
		Queues: ppcQueues, LLSC: true},
	{ID: "pairwise-llsc", Figure: "Fig. 12b (PowerPC analog: pairwise)", Workload: Pairwise,
		Queues: ppcQueues, LLSC: true},
	{ID: "random-llsc", Figure: "Fig. 12c (PowerPC analog: 50%/50%)", Workload: Random5050,
		Queues: ppcQueues, LLSC: true},
	// Beyond-paper series (DESIGN.md §6-§7): batched fast paths and the
	// striped front-end.
	{ID: "pairwise-batch", Figure: "B1 (batched pairwise, k=16 per reservation)", Workload: Pairwise,
		Queues: batchQueues, Batch: 16},
	{ID: "random-batch", Figure: "B2 (batched 50%/50%, k=16 per reservation)", Workload: Random5050,
		Queues: batchQueues, Batch: 16},
	{ID: "striped", Figure: "B3 (striped front-end vs single ring, pairwise)", Workload: Pairwise,
		Queues: []string{"wCQ", "wCQ-Striped"}},
	// PR 2 series (DESIGN.md §8): the unbounded queue with ring
	// recycling.
	{ID: "unbounded", Figure: "C0 (unbounded vs bounded wCQ, pairwise)", Workload: Pairwise,
		Queues: []string{"wCQ", "wCQ-Unbounded"}},
	{ID: "ring-churn", Figure: "C1 (ring churn: order-3 rings, 64-op bursts; allocs after warm-up + peak footprint)",
		Workload: RingChurn, Queues: []string{"wCQ-Unbounded"}, MeasureMemory: true,
		RingOrder: 3, PoolSize: 16},
	{ID: "ring-churn-batch", Figure: "C2 (ring churn through the batched paths, k=16)",
		Workload: RingChurn, Queues: []string{"wCQ-Unbounded"}, MeasureMemory: true,
		RingOrder: 3, PoolSize: 16, Batch: 16},
	// PR 3 series (DESIGN.md §9): dynamic registration and pooled
	// implicit handles.
	{ID: "registration-churn", Figure: "D0 (register→op→unregister per cycle: dynamic-arena registration cost)",
		Workload: RegisterChurn, Queues: []string{"wCQ", "wCQ-Striped", "wCQ-Unbounded"}},
	{ID: "implicit-overhead", Figure: "D1 (pooled implicit handles vs explicit, pairwise: per-op handle-acquire cost)",
		Workload: Pairwise, Queues: []string{"wCQ", "wCQ-Implicit"}},
	{ID: "implicit-batch", Figure: "D2 (implicit vs explicit through the batched paths, k=16: acquire cost amortized)",
		Workload: Pairwise, Queues: []string{"wCQ", "wCQ-Implicit"}, Batch: 16},
	// PR 5 series (DESIGN.md §11): the direct-value single ring versus
	// the two-ring indirection, and the unbounded composition of both.
	{ID: "direct-pairwise", Figure: "E0 (direct vs indirect wCQ, pairwise: 2 ring ops per transfer vs 4)",
		Workload: Pairwise, Queues: []string{"wCQ", "SCQ", "wCQ-Direct"}},
	{ID: "direct-random", Figure: "E1 (direct vs indirect wCQ, 50%/50%)",
		Workload: Random5050, Queues: []string{"wCQ", "SCQ", "wCQ-Direct"}},
	{ID: "direct-batch", Figure: "E2 (direct vs indirect through the batched paths, k=16)",
		Workload: Pairwise, Queues: []string{"wCQ", "wCQ-Direct"}, Batch: 16},
	{ID: "direct-unbounded", Figure: "E3 (unbounded composition: direct rings vs indirect rings, pairwise)",
		Workload: Pairwise, Queues: []string{"wCQ-Unbounded", "wCQ-Direct-Unbounded"}},
	{ID: "direct-churn", Figure: "E4 (ring churn on direct rings: order-3, 64-op bursts; allocs after warm-up + peak footprint)",
		Workload: RingChurn, Queues: []string{"wCQ-Unbounded", "wCQ-Direct-Unbounded"}, MeasureMemory: true,
		RingOrder: 3, PoolSize: 16},
	// PR 7 series (DESIGN.md §13): the elastic lane directory and the
	// per-P implicit-handle cache. F0 is the elasticity ablation the CI
	// gate samples: the same striped queue with the resize governor on
	// (lanes float within the directory bounds) and off (pinned at the
	// configured stripe count) under register→op→unregister churn —
	// elasticity must be free on the registration path. F1 sweeps the
	// lane-scaling behavior of both striped front-ends against the
	// pinned build under pairwise traffic. The per-P implicit-vs-
	// explicit comparison reuses D1/D2 (implicit-overhead,
	// implicit-batch): same IDs, remeasured, so the trajectory against
	// BENCH_pr3's sync.Pool numbers reads directly.
	{ID: "elastic-churn", Figure: "F0 (elastic vs pinned lane directory, register→op→unregister churn)",
		Workload: RegisterChurn, Queues: []string{"wCQ-Striped", "wCQ-Striped-Fixed"}},
	{ID: "elastic-pairwise", Figure: "F1 (lane scaling: elastic governor vs pinned stripes, pairwise)",
		Workload: Pairwise, Queues: []string{"wCQ-Striped", "wCQ-Striped-Fixed", "wCQ-Direct-Striped"}},
	// PR 8 series (DESIGN.md §14): the handle-local diet — cached
	// head/tail windows plus amortized threshold maintenance — measured
	// as the remaining gap to the contract-free FAA baseline. The Eager
	// shape is the ablation arm: the same direct ring driven through the
	// handle-free eager entry points, so the wCQ-Direct delta over it is
	// exactly the diet's contribution — and wCQ-Direct-Coalesce adds the
	// coalescing window closing the remaining gap on same-handle
	// produce-consume traffic.
	{ID: "faa-gap", Figure: "G0 (gap to the FAA baseline: handle windows + amortized threshold vs eager, pairwise)",
		Workload: Pairwise, Queues: []string{"FAA", "wCQ-Direct", "wCQ-Direct-Eager", "wCQ-Direct-Coalesce"}},
}

// batchQueues are the queues implementing queueiface.BatchQueue,
// probed from the registry so a new batched queue joins the B-series
// sweeps automatically.
var batchQueues = registry.BatchNames()

// ppcQueues mirrors Fig. 12's legend: LCRQ is absent (it requires true
// CAS2 and "its results are only presented for x86_64").
var ppcQueues = []string{"FAA", "wCQ", "YMC", "CCQueue", "SCQ", "CRTurn", "MSQueue"}

// FindExperiment looks up an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunOptions tunes a sweep.
type RunOptions struct {
	Ops       int   // operations per point (paper: 10,000,000)
	Repeats   int   // repetitions per point (paper: 10)
	Threads   []int // thread counts; nil → ThreadSweep()
	RingOrder uint  // wCQ/SCQ ring order (paper: 16)
}

func (o RunOptions) defaults() RunOptions {
	if o.Ops == 0 {
		o.Ops = 1_000_000
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if len(o.Threads) == 0 {
		o.Threads = ThreadSweep()
	}
	if o.RingOrder == 0 {
		o.RingOrder = 16
	}
	return o
}

// RunExperiment sweeps every queue of the experiment over the thread
// counts, writes one table in the paper's row format, and returns the
// measured points (the -json trajectory data).
func RunExperiment(w io.Writer, e Experiment, opts RunOptions) ([]Result, error) {
	opts = opts.defaults()
	fmt.Fprintf(w, "# %s — workload %s, %d ops/point, %d repeats\n",
		e.Figure, e.Workload, opts.Ops, opts.Repeats)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	hasFAA := false
	for _, name := range e.Queues {
		if name == "FAA" {
			hasFAA = true
		}
	}

	fmt.Fprintf(tw, "queue\tthreads\tMops/s\tCV\t")
	if e.MeasureMemory {
		fmt.Fprintf(tw, "footprint-MB\t")
	}
	if e.Workload == RingChurn {
		fmt.Fprintf(tw, "ring-allocs\tring-recycles\tpeak-MB\t")
	}
	if hasFAA {
		fmt.Fprintf(tw, "ratio-to-FAA\t")
	}
	fmt.Fprintln(tw)

	ringOrder := opts.RingOrder
	if e.RingOrder != 0 {
		ringOrder = e.RingOrder
	}
	var results []Result
	faaMops := map[int]float64{} // per-thread-count baseline; FAA leads the legend
	for _, name := range e.Queues {
		for _, threads := range opts.Threads {
			q, err := registry.New(name, registry.Config{
				Threads:     threads + 1, // +1 for the prefill handle
				RingOrder:   ringOrder,
				EmulatedFAA: e.LLSC,
				PoolSize:    e.PoolSize * threads,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: building %s: %w", name, err)
			}
			cfg := Config{
				Threads:  threads,
				Ops:      opts.Ops,
				Repeats:  opts.Repeats,
				Workload: e.Workload,
				Batch:    e.Batch,
			}
			res, err := Run(q, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: running %s: %w", name, err)
			}
			if hasFAA {
				if name == "FAA" {
					faaMops[threads] = res.Mops
				}
				if base := faaMops[threads]; base > 0 && res.Mops > 0 {
					res.RatioToFAA = base / res.Mops
				}
			}
			results = append(results, res)
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.4f\t", res.QueueName, res.Threads, res.Mops, res.CV)
			if e.MeasureMemory {
				fmt.Fprintf(tw, "%.2f\t", float64(res.FootprintBytes)/(1<<20))
			}
			if e.Workload == RingChurn {
				fmt.Fprintf(tw, "%d\t%d\t%.2f\t",
					res.RingAllocs, res.RingRecycles, float64(res.PeakFootprintBytes)/(1<<20))
			}
			if hasFAA {
				fmt.Fprintf(tw, "%.2f\t", res.RatioToFAA)
			}
			fmt.Fprintln(tw)
		}
	}
	return results, nil
}

// AblationRow is one point of a parameter ablation.
type AblationRow struct {
	Param   string
	Value   int
	Mops    float64
	SlowEnq uint64
	SlowDeq uint64
	Helps   uint64
}

// RunPatienceAblation measures wCQ pairwise throughput and slow-path
// frequency across MAX_PATIENCE values (experiment A1/A3).
func RunPatienceAblation(w io.Writer, threads, ops int) error {
	fmt.Fprintf(w, "# A1/A3: MAX_PATIENCE ablation — pairwise, %d threads, %d ops\n", threads, ops)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "patience\tMops/s\tslow-enq\tslow-deq\thelps\tslow-fraction")
	for _, patience := range []int{1, 2, 4, 16, 64, 256} {
		q, err := core.NewQueue[uint64](12, core.Options{
			EnqPatience: patience, DeqPatience: patience,
		})
		if err != nil {
			return err
		}
		mops, err := runWCQPairwise(q, threads, ops)
		if err != nil {
			return err
		}
		s := q.Stats()
		slowFrac := float64(s.SlowEnqueues+s.SlowDequeues) / float64(ops)
		fmt.Fprintf(tw, "%d\t%.2f\t%d\t%d\t%d\t%.6f\n",
			patience, mops, s.SlowEnqueues, s.SlowDequeues, s.Helps, slowFrac)
	}
	return nil
}

// RunHelpDelayAblation measures wCQ pairwise throughput across
// HELP_DELAY values (experiment A2).
func RunHelpDelayAblation(w io.Writer, threads, ops int) error {
	fmt.Fprintf(w, "# A2: HELP_DELAY ablation — pairwise, %d threads, %d ops\n", threads, ops)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "help-delay\tMops/s\thelps")
	for _, delay := range []int{1, 4, 16, 64, 256, 1024} {
		q, err := core.NewQueue[uint64](12, core.Options{HelpDelay: delay})
		if err != nil {
			return err
		}
		mops, err := runWCQPairwise(q, threads, ops)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%d\n", delay, mops, q.Stats().Helps)
	}
	return nil
}

// RunRemapAblation compares wCQ pairwise throughput with and without
// Cache_Remap (experiment A4).
func RunRemapAblation(w io.Writer, threads, ops int) error {
	fmt.Fprintf(w, "# A4: Cache_Remap ablation — pairwise, %d threads, %d ops\n", threads, ops)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "remap\tMops/s")
	for _, noRemap := range []bool{false, true} {
		q, err := core.NewQueue[uint64](12, core.Options{NoRemap: noRemap})
		if err != nil {
			return err
		}
		mops, err := runWCQPairwise(q, threads, ops)
		if err != nil {
			return err
		}
		label := "on"
		if noRemap {
			label = "off"
		}
		fmt.Fprintf(tw, "%s\t%.2f\n", label, mops)
	}
	return nil
}

// RunDietAblation measures the hot-path atomic diet A/B (experiment
// E5, DESIGN.md §11): wCQ and the SCQ baseline, pairwise, each built
// with the diet on (default) and off (Options.ConservativeAtomics on
// wCQ, scq.WithConservativeAtomics on SCQ — seq-cst entry loads and
// threshold accesses, per-position batch bookkeeping). The delta is
// the diet's whole contribution; correctness is covered by the
// conformance suites running the diet build under -race (which
// compiles the relaxed accessors down to seq-cst ones) AND the
// conservative build in TestDirectRingMPMC.
func RunDietAblation(w io.Writer, threads, ops int) error {
	fmt.Fprintf(w, "# E5: atomic-diet ablation — pairwise, %d threads, %d ops\n", threads, ops)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "queue\tatomics\tscalar-Mops/s\tbatch16-Mops/s")
	for _, conservative := range []bool{false, true} {
		label := "relaxed (diet)"
		if conservative {
			label = "seq-cst"
		}
		q, err := core.NewQueue[uint64](12, core.Options{ConservativeAtomics: conservative})
		if err != nil {
			return err
		}
		scalar, err := runWCQPairwise(q, threads, ops)
		if err != nil {
			return err
		}
		qb, err := core.NewQueue[uint64](12, core.Options{ConservativeAtomics: conservative})
		if err != nil {
			return err
		}
		res, err := Run(&wcqDirect{q: qb}, Config{Threads: threads, Ops: ops, Repeats: 3, Workload: Pairwise, Batch: 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "wCQ\t%s\t%.2f\t%.2f\n", label, scalar, res.Mops)

		var sopts []scq.Option
		if conservative {
			sopts = append(sopts, scq.WithConservativeAtomics())
		}
		sq, err := scq.New[uint64](12, sopts...)
		if err != nil {
			return err
		}
		sres, err := Run(&scqAblation{q: sq}, Config{Threads: threads, Ops: ops, Repeats: 3, Workload: Pairwise})
		if err != nil {
			return err
		}
		sqb, err := scq.New[uint64](12, sopts...)
		if err != nil {
			return err
		}
		sresb, err := Run(&scqAblation{q: sqb}, Config{Threads: threads, Ops: ops, Repeats: 3, Workload: Pairwise, Batch: 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "SCQ\t%s\t%.2f\t%.2f\n", label, sres.Mops, sresb.Mops)
	}
	return nil
}

// runWCQPairwise drives a typed wCQ queue directly (the ablations need
// access to core.Options and Stats).
func runWCQPairwise(q *core.Queue[uint64], threads, ops int) (float64, error) {
	a := &wcqDirect{q: q}
	res, err := Run(a, Config{Threads: threads, Ops: ops, Repeats: 3, Workload: Pairwise})
	if err != nil {
		return 0, err
	}
	return res.Mops, nil
}

// wcqDirect adapts core.Queue for the ablation runs.
type wcqDirect struct{ q *core.Queue[uint64] }

func (a *wcqDirect) Register() (any, error)       { return a.q.Register() }
func (a *wcqDirect) Unregister(h any)             { a.q.Unregister(h.(*core.Handle)) }
func (a *wcqDirect) Enqueue(h any, v uint64) bool { return a.q.Enqueue(h.(*core.Handle), v) }
func (a *wcqDirect) Dequeue(h any) (uint64, bool) { return a.q.Dequeue(h.(*core.Handle)) }
func (a *wcqDirect) EnqueueBatch(h any, vs []uint64) int {
	return a.q.EnqueueBatch(h.(*core.Handle), vs)
}
func (a *wcqDirect) DequeueBatch(h any, out []uint64) int {
	return a.q.DequeueBatch(h.(*core.Handle), out)
}
func (a *wcqDirect) Footprint() int64 { return a.q.Footprint() }
func (a *wcqDirect) Name() string     { return "wCQ" }

// scqAblation adapts scq.Queue for the diet ablation runs (SCQ is
// handle-free).
type scqAblation struct{ q *scq.Queue[uint64] }

func (a *scqAblation) Register() (any, error)       { return 0, nil }
func (a *scqAblation) Unregister(any)               {}
func (a *scqAblation) Enqueue(_ any, v uint64) bool { return a.q.Enqueue(v) }
func (a *scqAblation) Dequeue(any) (uint64, bool)   { return a.q.Dequeue() }
func (a *scqAblation) EnqueueBatch(_ any, vs []uint64) int {
	return a.q.EnqueueBatch(vs)
}
func (a *scqAblation) DequeueBatch(_ any, out []uint64) int {
	return a.q.DequeueBatch(out)
}
func (a *scqAblation) Footprint() int64 { return a.q.Footprint() }
func (a *scqAblation) Name() string     { return "SCQ" }
