package bench

import (
	"os"
	"testing"

	"wcqueue/internal/queues/registry"
)

// TestFSeriesExperimentsRegistered pins the F-series experiment table
// (DESIGN.md §13): the elastic-vs-pinned ablations exist and compare
// the right builds.
func TestFSeriesExperimentsRegistered(t *testing.T) {
	wantQueues := map[string]string{
		"elastic-churn":    "wCQ-Striped-Fixed",
		"elastic-pairwise": "wCQ-Direct-Striped",
	}
	for id, want := range wantQueues {
		e, ok := FindExperiment(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		found := false
		for _, q := range e.Queues {
			if q == want {
				found = true
			}
			if _, err := registry.New(q, registry.Config{Threads: 1, RingOrder: 4}); err != nil {
				t.Fatalf("experiment %q references unbuildable queue %q: %v", id, q, err)
			}
		}
		if !found {
			t.Fatalf("experiment %q does not compare %q (has %v)", id, want, e.Queues)
		}
	}
}

// elasticGateSlack is the noise allowance of the F-series gate: the
// elastic and pinned builds run the same registration path (the
// governor only adds a per-handle op counter flushed every 256 ops),
// so the honest expectation is parity, not a win. The gate exists to
// catch elasticity becoming EXPENSIVE on the churn path — a directory
// rebuild per registration, a Bind scan gone quadratic — which shows
// up as a multiple, not a few percent.
const elasticGateSlack = 0.85

// TestFSeriesSmokeElasticChurn is the elastic CI gate (DESIGN.md §13):
// under register→op→unregister churn the elastic striped queue must
// keep pace with the same queue pinned at its initial lane count.
// Guarded by WCQ_E_SMOKE like the E-series gate so ordinary `go test
// ./...` and -race runs stay fast and deterministic.
func TestFSeriesSmokeElasticChurn(t *testing.T) {
	if os.Getenv("WCQ_E_SMOKE") == "" {
		t.Skip("set WCQ_E_SMOKE=1 to run the F-series performance gate")
	}
	const ops = 200_000
	mops := func(name string) float64 {
		q, err := registry.New(name, registry.Config{Threads: 3, RingOrder: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, Config{Threads: 2, Ops: ops, Repeats: 5, Workload: RegisterChurn})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mops
	}
	// Steal time on a shared runner only ever SLOWS a sample, so the
	// max over a few alternating samples estimates each build's real
	// capability; the mean would gate on scheduler luck. The first
	// sample of a fresh process additionally runs cold, which the max
	// absorbs too.
	best := func(name string) float64 {
		var m float64
		for i := 0; i < 3; i++ {
			if v := mops(name); v > m {
				m = v
			}
		}
		return m
	}
	// One retry absorbs a scheduler burst on a noisy shared runner, as
	// in the E-series gate.
	for attempt := 1; ; attempt++ {
		elastic := best("wCQ-Striped")
		fixed := best("wCQ-Striped-Fixed")
		t.Logf("attempt %d: register-churn 2-thread: elastic %.2f Mops/s, pinned %.2f Mops/s (%.2fx)",
			attempt, elastic, fixed, elastic/fixed)
		if elastic >= fixed*elasticGateSlack {
			return
		}
		if attempt == 2 {
			t.Fatalf("elastic wCQ-Striped (%.2f Mops/s) fell behind the pinned build (%.2f Mops/s) under registration churn",
				elastic, fixed)
		}
	}
}
