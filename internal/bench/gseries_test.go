package bench

import (
	"os"
	"testing"

	"wcqueue/internal/queues/registry"
)

// TestGSeriesExperimentRegistered pins the G-series experiment table
// (DESIGN.md §14): the FAA-gap sweep exists, leads with the FAA
// baseline (the ratio annotation keys off it), and carries both the
// Eager ablation arm (isolating the handle-window diet) and the
// Coalesce arm (the window that closes the gap).
func TestGSeriesExperimentRegistered(t *testing.T) {
	e, ok := FindExperiment("faa-gap")
	if !ok {
		t.Fatal("experiment faa-gap not registered")
	}
	if len(e.Queues) == 0 || e.Queues[0] != "FAA" {
		t.Fatalf("faa-gap must lead with the FAA baseline, has %v", e.Queues)
	}
	for _, want := range []string{"wCQ-Direct", "wCQ-Direct-Eager", "wCQ-Direct-Coalesce"} {
		found := false
		for _, q := range e.Queues {
			if q == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("faa-gap does not compare %q (has %v)", want, e.Queues)
		}
	}
	for _, q := range e.Queues {
		if _, err := registry.New(q, registry.Config{Threads: 1, RingOrder: 4}); err != nil {
			t.Fatalf("faa-gap references unbuildable queue %q: %v", q, err)
		}
	}
}

// faaGapBound is the G-series gate's ceiling on the pairwise gap to
// the contract-free FAA baseline for the coalescing build, in
// multiples of FAA's time per op. The baseline does two uncontended
// F&As per transfer and answers nothing — no full/empty, no values —
// while a ring transfer fundamentally costs those two F&As PLUS two
// entry RMWs (publish and consume), so the eager protocol's scalar
// floor sits near 2×. The coalescing window is what buys the headline
// back: same-handle produce-consume pairs eliminate against the
// pending window on an observed-empty ring (two shared loads, zero
// RMWs), and bursts publish through one reservation per window.
const faaGapBound = 1.5

// directGapBound is the regression backstop on the plain handle-diet
// build: BENCH_pr5 measured the pre-diet ring at 1.88× FAA on this
// class of host, and the windows must never make it WORSE. On a
// multi-core host the skipped shared-cacheline loads pull this ratio
// down under contention; the single-core CI host can only observe the
// protocol's 4-RMW scalar floor, hence a bound near it rather than
// faaGapBound.
const directGapBound = 2.0

// gGateSlack mirrors elasticGateSlack: the gate exists to catch a
// structural regression (a multiple), not to adjudicate a few percent
// of scheduler noise on a shared runner.
const gGateSlack = 0.85

// TestGSeriesSmokeFAAGap is the PR 8 CI gate (DESIGN.md §14): the
// coalescing direct build must land within faaGapBound of the FAA
// baseline on single-thread pairwise, and the plain handle-diet build
// must stay within directGapBound. Guarded by WCQ_E_SMOKE like the E-
// and F-series gates.
func TestGSeriesSmokeFAAGap(t *testing.T) {
	if os.Getenv("WCQ_E_SMOKE") == "" {
		t.Skip("set WCQ_E_SMOKE=1 to run the G-series performance gate")
	}
	const ops = 400_000
	mops := func(name string) float64 {
		q, err := registry.New(name, registry.Config{Threads: 2, RingOrder: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, Config{Threads: 1, Ops: ops, Repeats: 5, Workload: Pairwise})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mops
	}
	// Max over alternating samples, as in the E/F gates: steal time on a
	// shared runner only ever slows a sample, so the max estimates each
	// build's real capability and absorbs the cold first sample.
	best := func(name string) float64 {
		var m float64
		for i := 0; i < 3; i++ {
			if v := mops(name); v > m {
				m = v
			}
		}
		return m
	}
	for attempt := 1; ; attempt++ {
		faa := best("FAA")
		coalesce := best("wCQ-Direct-Coalesce")
		direct := best("wCQ-Direct")
		cGap := faa / coalesce
		dGap := faa / direct
		t.Logf("attempt %d: pairwise 1-thread: FAA %.2f, coalesce %.2f (gap %.2fx, bound %.2fx), direct %.2f (gap %.2fx, bound %.2fx)",
			attempt, faa, coalesce, cGap, faaGapBound/gGateSlack, direct, dGap, directGapBound/gGateSlack)
		if cGap <= faaGapBound/gGateSlack && dGap <= directGapBound/gGateSlack {
			return
		}
		if attempt == 2 {
			t.Fatalf("G-gate failed: coalesce gap %.2fx (bound %.2fx), direct gap %.2fx (bound %.2fx)",
				cGap, faaGapBound/gGateSlack, dGap, directGapBound/gGateSlack)
		}
	}
}
