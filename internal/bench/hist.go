// Alloc-free fixed-bucket latency histogram (ROADMAP item 4): the
// recorder the overload experiments and cmd/wcqload use for admission
// latency percentiles. Mean throughput is blind to exactly the thing
// the overload regime is about — a stalled tail — so the H-series
// reports p50/p99/p999 admission latency alongside goodput.
package bench

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histSubBits sets the per-octave resolution: 2^histSubBits
// sub-buckets per power of two, i.e. relative error bounded by
// 1/2^histSubBits (~6% at 4). The bucket array is fixed at
// construction — Record never allocates, so it is safe on latency-
// sensitive paths and inside AllocsPerRun-pinned tests.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	// 64-bit values span 64 octaves; values below histSub are indexed
	// linearly into group 0.
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Histogram is a fixed-bucket log-linear histogram of nanosecond
// durations. All methods are safe for concurrent use; Record is
// wait-free (one atomic add per counter) and allocation-free. The
// zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// histIndex maps a nanosecond count to its bucket: values < histSub
// land in a linear prefix (exact), larger values keep their top
// histSubBits+1 significant bits (log-linear).
// wcq:noalloc
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	l := bits.Len64(v) // >= histSubBits+1
	g := l - histSubBits
	m := int(v>>(uint(g)-1)) - histSub // top bits minus the implicit leading 1
	return g<<histSubBits + m
}

// histUpper returns the largest value mapping to bucket idx — the
// conservative (upper-bound) value quantiles report.
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	g := uint(idx >> histSubBits)
	m := uint64(idx&(histSub-1)) + histSub
	return m<<(g-1) + 1<<(g-1) - 1
}

// Record adds one duration. Negative durations clamp to zero.
// wcq:noalloc
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded durations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean recorded duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper bound on the p-quantile (p in [0,1]) of
// the recorded durations, with relative error bounded by the bucket
// width (~1/2^histSubBits). Returns 0 when empty. The walk reads each
// bucket once; concurrent Records may or may not be included.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			return time.Duration(histUpper(i))
		}
	}
	// Concurrent recording moved count past the buckets' sum: report
	// the largest non-empty bucket.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return time.Duration(histUpper(i))
		}
	}
	return 0
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Records; callers quiesce recorders first.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
