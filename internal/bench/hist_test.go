package bench

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketRoundTrip pins the bucket math: every index in
// range maps back to a value inside its own bucket, buckets are
// ordered, and the relative error bound holds.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		up := histUpper(idx)
		if got := histIndex(up); got != idx {
			t.Fatalf("histIndex(histUpper(%d)=%d) = %d", idx, up, got)
		}
	}
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 33, 1000, 1 << 20, 1<<40 + 12345} {
		idx := histIndex(v)
		up := histUpper(idx)
		if up < v {
			t.Fatalf("value %d above its bucket upper bound %d", v, up)
		}
		// Log-linear error bound: the bucket upper bound overstates the
		// value by at most one sub-bucket width (~1/16 relative).
		if v >= histSub && float64(up-v) > float64(v)/histSub+1 {
			t.Fatalf("value %d: upper bound %d exceeds the error bound", v, up)
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// quantiles against the exact order statistics within the bucket
// error bound.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	vals := make([]uint64, n)
	for i := range vals {
		// Log-uniform-ish spread: the regime quantile sketches get wrong
		// when bucket math is off by an octave.
		vals[i] = uint64(rng.Int63n(1 << uint(10+rng.Intn(20))))
		h.Record(time.Duration(vals[i]))
	}
	if h.Count() != n {
		t.Fatalf("count %d", h.Count())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.5, 0.99, 0.999} {
		exact := vals[int(p*float64(n))]
		got := uint64(h.Quantile(p))
		if got < exact {
			t.Fatalf("p%v: %d below the exact order statistic %d (quantiles must be upper bounds)", p, got, exact)
		}
		if exact >= histSub && float64(got) > float64(exact)*(1+2.0/histSub)+2 {
			t.Fatalf("p%v: %d overstates exact %d past the error bound", p, got, exact)
		}
	}
}

// TestHistogramConcurrentRecord hammers Record from several goroutines
// (the histogram is shared by every producer in the overload harness)
// and checks totals; runs under -race in CI.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if q := h.Quantile(1); q < time.Duration(7*1000+per-1) {
		t.Fatalf("max quantile %d below the recorded max", q)
	}
}

// TestHistogramRecordAllocFree pins the alloc-free contract Record's
// annotation claims.
func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %v per call", n)
	}
}
