package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"wcqueue/internal/admission"
)

// TestOverloadLedgerAndShape runs one short overload point per policy
// and pins the structural contract, not the numbers: the exactly-once
// ledger checks inside RunOverload must pass (they return errors, so
// a violation fails here), the admission latency histogram must have
// recorded every submit, and the Result must carry the H-series
// fields the JSON artifact schema promises.
func TestOverloadLedgerAndShape(t *testing.T) {
	for _, pol := range []struct {
		name   string
		policy admission.Policy
	}{{"reject", admission.Reject}, {"deadline", admission.Deadline}} {
		t.Run(pol.name, func(t *testing.T) {
			r, err := RunOverload(OverloadOptions{
				Duration: 150 * time.Millisecond,
				Load:     2, // force the shedding regime so the ledger is exercised
				Order:    6,
				Policy:   pol.policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Workload != "Overload" || r.QueueName != "wCQ-Striped" {
				t.Fatalf("result labels %q/%q", r.QueueName, r.Workload)
			}
			if r.OfferedLoad != 2 {
				t.Fatalf("offered load %v", r.OfferedLoad)
			}
			if r.Goodput <= 0 {
				t.Fatalf("goodput %v: nothing delivered", r.Goodput)
			}
			if r.ShedRate < 0 || r.ShedRate > 1 {
				t.Fatalf("shed rate %v out of [0,1]", r.ShedRate)
			}
			if r.AdmitP99Micros < r.AdmitP50Micros {
				t.Fatalf("p99 %v below p50 %v", r.AdmitP99Micros, r.AdmitP50Micros)
			}
		})
	}
}

// TestMeasureCapacityPlausible pins the calibration against the
// starvation failure mode it is designed around: saturating producers
// that hot-spin on shed can steal the CPU from the sleeping workers
// and collapse the measured drain rate ~50× below reality. The back-
// off in MeasureCapacity keeps the measurement within an order of
// magnitude of the nominal Workers/Service figure — nominal is an
// upper bound (sleep granularity only inflates service time), and a
// measurement below 2% of nominal means the producers starved the
// pool again.
func TestMeasureCapacityPlausible(t *testing.T) {
	o := OverloadOptions{Duration: 400 * time.Millisecond, Order: 6}
	c, err := MeasureCapacity(o)
	if err != nil {
		t.Fatal(err)
	}
	o = o.defaults()
	nominal := float64(o.Workers) / o.Service.Seconds()
	if c > nominal*1.5 {
		t.Fatalf("measured capacity %.0f/s above nominal %.0f/s: calibration is not measuring the drain", c, nominal)
	}
	if c < nominal*0.02 {
		t.Fatalf("measured capacity %.0f/s under 2%% of nominal %.0f/s: calibration producers starved the workers", c, nominal)
	}
}

// hGateShedBound is the H-gate's floor on the shed rate at 2×
// measured capacity under the Reject policy: a service layer that
// accepts everything at twice capacity is not doing admission
// control. Half the excess should shed in steady state (~50%); the
// bound is loose because the short CI window includes ramp-up where
// the ring absorbs the surplus.
const hGateShedBound = 0.10

// TestHSeriesSmokeOverload is the PR 10 CI gate (DESIGN.md §16): at
// 2× measured capacity the Reject-policy controller must shed a
// nontrivial fraction, and at 0.5× it must shed almost nothing —
// the two ends of the graceful-degradation contract. Guarded by
// WCQ_E_SMOKE like the E/F/G gates; retried once since load shapes
// on a shared runner are noisy.
func TestHSeriesSmokeOverload(t *testing.T) {
	if os.Getenv("WCQ_E_SMOKE") == "" {
		t.Skip("set WCQ_E_SMOKE=1 to run the H-series overload gate")
	}
	o := OverloadOptions{Duration: 500 * time.Millisecond}
	c, err := MeasureCapacity(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Capacity = c
	const attempts = 2
	var lastErr string
	for a := 0; a < attempts; a++ {
		lastErr = ""
		o.Load = 0.5
		low, err := RunOverload(o)
		if err != nil {
			t.Fatal(err)
		}
		o.Load = 2
		high, err := RunOverload(o)
		if err != nil {
			t.Fatal(err)
		}
		if low.ShedRate > 0.10 {
			lastErr = fmt.Sprintf("0.5x load shed %.1f%% (want ~0%%)", low.ShedRate*100)
			continue
		}
		if high.ShedRate < hGateShedBound {
			lastErr = fmt.Sprintf("2x load shed only %.1f%% (admission control not engaging)", high.ShedRate*100)
			continue
		}
		return
	}
	t.Fatalf("H gate failed %d attempts: %s", attempts, lastErr)
}
