package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// ReportMeta describes the machine and sweep parameters a JSON report
// was measured under, so trajectory points from different PRs remain
// comparable.
type ReportMeta struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Ops        int    `json:"ops"`
	Repeats    int    `json:"repeats"`
	RingOrder  uint   `json:"ring_order"`
}

// Report is the machine-readable benchmark artifact (BENCH_*.json).
type Report struct {
	Meta    ReportMeta `json:"meta"`
	Results []Result   `json:"results"`
}

// NewReport assembles a Report for the given sweep options.
func NewReport(opts RunOptions, results []Result) Report {
	opts = opts.defaults()
	return Report{
		Meta: ReportMeta{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Ops:        opts.Ops,
			Repeats:    opts.Repeats,
			RingOrder:  opts.RingOrder,
		},
		Results: results,
	}
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
