package bench

import (
	"encoding/json"
	"io"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// ReportMeta describes the machine and sweep parameters a JSON report
// was measured under, so trajectory points from different PRs remain
// comparable. Commit and VCPUs exist because trajectory comparisons
// across PRs need to tell runs apart: PR 4's numbers carried visible
// steal-time noise from a single-vCPU host, and without the host
// shape and source revision in the artifact that is invisible later.
type ReportMeta struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// VCPUs is the host's logical CPU count (runtime.NumCPU), which
	// GOMAXPROCS may understate when capped.
	VCPUs int `json:"vcpus"`
	// Commit is the source revision the binary was built from:
	// the module build info's vcs.revision when stamped, else the
	// working tree's HEAD via git, else "unknown". A "-dirty" suffix
	// marks uncommitted changes when that is known.
	Commit    string `json:"commit"`
	Ops       int    `json:"ops"`
	Repeats   int    `json:"repeats"`
	RingOrder uint   `json:"ring_order"`
}

// Report is the machine-readable benchmark artifact (BENCH_*.json).
type Report struct {
	Meta    ReportMeta `json:"meta"`
	Results []Result   `json:"results"`
}

// DetectCommit resolves the source commit for ReportMeta.Commit: the
// binary's stamped VCS revision when present (go build), else git on
// the PROCESS WORKING DIRECTORY (go run never stamps), else
// "unknown". The fallback is right for the intended use — `go run
// ./cmd/wcqbench` from this repository — but a stamp-less binary
// invoked from inside some other checkout records that repo's HEAD;
// prefer a VCS-stamped build when running from elsewhere.
func DetectCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	// Untracked files are excluded: the sweep itself creates artifacts
	// (the -json report, profiles) that must not mark a clean source
	// tree dirty.
	if st, err := exec.Command("git", "status", "--porcelain", "--untracked-files=no").Output(); err == nil && len(st) > 0 {
		rev += "-dirty"
	}
	return rev
}

// NewReport assembles a Report for the given sweep options.
func NewReport(opts RunOptions, results []Result) Report {
	opts = opts.defaults()
	return Report{
		Meta: ReportMeta{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			VCPUs:      runtime.NumCPU(),
			Commit:     DetectCommit(),
			Ops:        opts.Ops,
			Repeats:    opts.Repeats,
			RingOrder:  opts.RingOrder,
		},
		Results: results,
	}
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
