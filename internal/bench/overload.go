// The H-series overload experiment (DESIGN.md §16): goodput, shed
// rate, and admission latency percentiles versus offered load, driven
// through the admission controller over the striped front-end — the
// first latency numbers in the trajectory (ROADMAP item 4
// down-payment). Unlike the A–G series, which measure the queues'
// throughput ceiling, the H-series measures what the service layer
// does PAST the ceiling: a robust stack sheds the excess cheaply and
// keeps goodput near capacity; a fragile one converts overload into
// queueing delay for every request.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"wcqueue/internal/admission"
	"wcqueue/wcq"
)

// OverloadOptions parameterizes one overload point.
type OverloadOptions struct {
	Workers       int           // consumer pool size (default 4)
	Producers     int           // offered-load generator goroutines (default 8)
	Service       time.Duration // simulated per-item service time (default 200µs)
	Load          float64       // offered load as a multiple of pool capacity (default 1)
	Duration      time.Duration // measurement window (default 2s)
	Order         uint          // per-lane ring order (default 8)
	Lanes         int           // fixed lane count (default 2)
	Policy        admission.Policy
	SubmitTimeout time.Duration // Deadline policy park bound (default Service×4)
	// Capacity overrides the nominal Workers/Service capacity with a
	// measured one, in items/sec. The nominal figure assumes the
	// sleep-based service simulation is exact; real sleep granularity
	// inflates short service times severalfold, which would turn "0.5×
	// capacity" into deep overload. RunOverloadSeries calibrates this
	// once (MeasureCapacity) and reuses it for every point, so the
	// load multiples are honest. 0 = use the nominal figure.
	Capacity float64
}

func (o OverloadOptions) defaults() OverloadOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Producers <= 0 {
		o.Producers = 8
	}
	if o.Service <= 0 {
		o.Service = 200 * time.Microsecond
	}
	if o.Load <= 0 {
		o.Load = 1
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Order == 0 {
		o.Order = 8
	}
	if o.Lanes <= 0 {
		o.Lanes = 2
	}
	if o.SubmitTimeout <= 0 {
		o.SubmitTimeout = 4 * o.Service
	}
	return o
}

// RunOverload measures one offered-load point and verifies the
// exactly-once ledger on the way out (an accounting violation is an
// error, not a number). The pool's nominal capacity is
// Workers/Service items per second; producers offer Load× that,
// paced, through the admission controller; workers Take and simulate
// Service per item. After the window the generators stop, the
// controller closes, and the drain must deliver every accepted item.
func RunOverload(o OverloadOptions) (Result, error) {
	o = o.defaults()
	q, err := wcq.NewStriped[admission.Item[uint64]](o.Order, o.Lanes, wcq.WithFixedLanes())
	if err != nil {
		return Result{}, err
	}
	ctrl := admission.NewController[uint64](q, admission.Config{
		Policy:        o.Policy,
		SubmitTimeout: o.SubmitTimeout,
	})
	var hist Histogram

	capacity := o.Capacity
	if capacity <= 0 {
		capacity = float64(o.Workers) / o.Service.Seconds() // nominal items/sec
	}
	offered := o.Load * capacity
	interarrival := time.Duration(float64(o.Producers) / offered * float64(time.Second))

	var wg, pwg sync.WaitGroup
	var delivered, submitted uint64
	var mu sync.Mutex // folds per-goroutine tallies at exit
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n uint64
			for {
				if _, err := ctrl.Take(context.Background()); err != nil {
					mu.Lock()
					delivered += n
					mu.Unlock()
					return
				}
				spinFor(o.Service)
				n++
			}
		}()
	}
	stop := make(chan struct{})
	for p := 0; p < o.Producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			var n uint64
			next := time.Now()
			for {
				select {
				case <-stop:
					mu.Lock()
					submitted += n
					mu.Unlock()
					return
				default:
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interarrival)
				t0 := time.Now()
				err := ctrl.Submit(context.Background(), uint64(p)<<32|n)
				hist.Record(time.Since(t0))
				n++
				if err != nil && !errors.Is(err, admission.ErrShed) {
					// Closed or unexpected: the window is over.
					mu.Lock()
					submitted += n
					mu.Unlock()
					return
				}
			}
		}(p)
	}

	start := time.Now()
	time.Sleep(o.Duration)
	close(stop)
	pwg.Wait()
	ctrl.Close()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	s := ctrl.Stats()
	if s.Delivered+s.Expired != s.Accepted {
		return Result{}, fmt.Errorf("overload ledger: accepted %d != delivered %d + expired %d", s.Accepted, s.Delivered, s.Expired)
	}
	if s.Accepted+s.Shed() != submitted {
		return Result{}, fmt.Errorf("overload ledger: submits %d != accepted %d + shed %d", submitted, s.Accepted, s.Shed())
	}
	if delivered != s.Delivered {
		return Result{}, fmt.Errorf("overload ledger: workers took %d, controller says %d", delivered, s.Delivered)
	}

	shedRate := 0.0
	if submitted > 0 {
		shedRate = float64(s.Shed()) / float64(submitted)
	}
	goodput := float64(s.Delivered) / elapsed
	return Result{
		QueueName:       "wCQ-Striped",
		Workload:        "Overload",
		Threads:         o.Workers + o.Producers,
		Batch:           1,
		Mops:            goodput / 1e6,
		OfferedLoad:     o.Load,
		Goodput:         goodput,
		ShedRate:        shedRate,
		AdmitP50Micros:  float64(hist.Quantile(0.50)) / 1e3,
		AdmitP99Micros:  float64(hist.Quantile(0.99)) / 1e3,
		AdmitP999Micros: float64(hist.Quantile(0.999)) / 1e3,
	}, nil
}

// spinFor simulates service time. Sleep-based: the point of the
// harness is queueing behavior at a known capacity, not burning CPU,
// and oversubscribed CI hosts cannot spare Workers cores anyway.
func spinFor(d time.Duration) { time.Sleep(d) }

// MeasureCapacity measures the worker pool's effective drain rate in
// items/sec: producers submit unpaced (saturating) for the window and
// the delivered rate IS the capacity, sleep granularity and scheduler
// behavior included.
func MeasureCapacity(o OverloadOptions) (float64, error) {
	o = o.defaults()
	q, err := wcq.NewStriped[admission.Item[uint64]](o.Order, o.Lanes, wcq.WithFixedLanes())
	if err != nil {
		return 0, err
	}
	ctrl := admission.NewController[uint64](q, admission.Config{Policy: admission.Reject})
	var wg, pwg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := ctrl.Take(context.Background()); err != nil {
					return
				}
				spinFor(o.Service)
			}
		}()
	}
	stop := make(chan struct{})
	for p := 0; p < o.Producers; p++ {
		pwg.Add(1)
		go func(p uint64) {
			defer pwg.Done()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				err := ctrl.Submit(context.Background(), p<<32|n)
				switch {
				case err == nil:
				case errors.Is(err, admission.ErrShed):
					// Queue full: the backlog is hundreds deep, so the
					// workers are saturated. Back off instead of spinning —
					// a hot shed loop would starve the very workers being
					// measured of CPU.
					time.Sleep(o.Service)
				default:
					return
				}
			}
		}(uint64(p))
	}
	window := o.Duration / 2
	if window > time.Second {
		window = time.Second
	}
	start := time.Now()
	time.Sleep(window)
	before := ctrl.Stats().Delivered
	time.Sleep(window)
	elapsed := time.Since(start).Seconds() / 2
	after := ctrl.Stats().Delivered
	close(stop)
	pwg.Wait()
	ctrl.Close()
	wg.Wait()
	capacity := float64(after-before) / elapsed
	if capacity <= 0 {
		return 0, fmt.Errorf("capacity calibration delivered nothing")
	}
	return capacity, nil
}

// OverloadLoads is the H-series offered-load sweep: half capacity
// (shedding should be negligible), saturation, and twice capacity
// (the regime admission control exists for).
var OverloadLoads = []float64{0.5, 1, 2}

// RunOverloadSeries measures the H-series sweep and prints the
// figure-style table: one row per offered load with goodput, shed
// rate, and admission latency percentiles. Capacity is calibrated
// once (MeasureCapacity) unless o.Capacity is preset.
func RunOverloadSeries(w io.Writer, o OverloadOptions) ([]Result, error) {
	o = o.defaults()
	if o.Capacity <= 0 {
		c, err := MeasureCapacity(o)
		if err != nil {
			return nil, err
		}
		o.Capacity = c
	}
	fmt.Fprintf(w, "# H-series: overload (workers %d, service %v, measured capacity %.0f items/s, policy %v)\n",
		o.Workers, o.Service, o.Capacity, o.Policy)
	fmt.Fprintf(w, "%-8s %12s %10s %12s %12s %12s\n", "load", "goodput/s", "shed", "p50(µs)", "p99(µs)", "p999(µs)")
	var out []Result
	for _, load := range OverloadLoads {
		o.Load = load
		r, err := RunOverload(o)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-8.2f %12.0f %9.1f%% %12.1f %12.1f %12.1f\n",
			r.OfferedLoad, r.Goodput, r.ShedRate*100, r.AdmitP50Micros, r.AdmitP99Micros, r.AdmitP999Micros)
		out = append(out, r)
	}
	return out, nil
}
