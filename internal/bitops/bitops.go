// Package bitops provides the small bit-manipulation helpers shared by
// the ring-buffer queues: power-of-two sizing and the Cache_Remap
// position permutation from the SCQ/wCQ papers.
package bitops

import "math/bits"

// CeilLog2 returns the smallest k such that 1<<k >= v. CeilLog2(0) and
// CeilLog2(1) are both 0.
func CeilLog2(v uint64) uint {
	if v <= 1 {
		return 0
	}
	return uint(bits.Len64(v - 1))
}

// FloorLog2 returns the largest k such that 1<<k <= v. v must be > 0.
func FloorLog2(v uint64) uint {
	if v == 0 {
		panic("bitops: FloorLog2 of zero")
	}
	return uint(bits.Len64(v)) - 1
}

// RoundPow2 rounds v up to the next power of two. RoundPow2(0) == 1.
func RoundPow2(v uint64) uint64 {
	return 1 << CeilLog2(v)
}

// IsPow2 reports whether v is a power of two. Zero is not.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// slotShift is log2 of the number of 8-byte ring entries per 64-byte
// cache line. Consecutive logical positions are mapped 8 entries
// apart so that they land on distinct lines.
const slotShift = 3

// Remap implements Cache_Remap from the SCQ paper: a bijective
// permutation of [0, 2^ringOrder) that places adjacent logical
// positions on different cache lines and reuses a line as late as
// possible. It is a bit-rotation of the ringOrder-bit position left by
// slotShift: position bit 0 becomes bit 3, so positions i and i+1 are
// 8 entries (one cache line) apart, and a given line is revisited only
// every 2^(ringOrder-3) positions.
//
// Rings with 8 or fewer entries fit one line; the identity map is used.
func Remap(pos uint64, ringOrder uint) uint64 {
	if ringOrder <= slotShift {
		return pos & ((1 << ringOrder) - 1)
	}
	mask := uint64(1)<<ringOrder - 1
	pos &= mask
	return (pos<<slotShift | pos>>(ringOrder-slotShift)) & mask
}

// RemapIdentity is a Remap-compatible identity permutation, used by
// the remap ablation experiment (A4 in DESIGN.md).
func RemapIdentity(pos uint64, ringOrder uint) uint64 {
	return pos & ((1 << ringOrder) - 1)
}
