package bitops

import (
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := CeilLog2(c.in); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := FloorLog2(c.in); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloorLog2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FloorLog2(0) did not panic")
		}
	}()
	FloorLog2(0)
}

func TestRoundPow2(t *testing.T) {
	f := func(v uint32) bool {
		r := RoundPow2(uint64(v))
		return IsPow2(r) && r >= uint64(v) && (r == 1 || r/2 < uint64(v) || uint64(v) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPow2(t *testing.T) {
	for k := uint(0); k < 63; k++ {
		if !IsPow2(1 << k) {
			t.Errorf("IsPow2(1<<%d) = false", k)
		}
	}
	for _, v := range []uint64{0, 3, 5, 6, 7, 9, 100, 1<<40 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestRemapSpreadsAdjacentPositions(t *testing.T) {
	// Consecutive positions must land ≥ 8 entries (one 64-byte line of
	// 8-byte entries) apart for rings larger than one line.
	const order = 10
	for i := uint64(0); i+1 < 1<<order; i++ {
		a, b := Remap(i, order), Remap(i+1, order)
		d := a/8 == b/8
		if d {
			t.Fatalf("positions %d,%d map to the same cache line (%d,%d)", i, i+1, a, b)
		}
	}
}

func TestRemapQuickBijective(t *testing.T) {
	f := func(x uint16, orderSeed uint8) bool {
		order := uint(orderSeed)%12 + 1
		mask := uint64(1)<<order - 1
		a := uint64(x) & mask
		b := (uint64(x) + 1) & mask
		if a == b {
			return true
		}
		return Remap(a, order) != Remap(b, order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemapIdentity(t *testing.T) {
	for i := uint64(0); i < 64; i++ {
		if RemapIdentity(i, 6) != i {
			t.Fatalf("RemapIdentity(%d) != %d", i, i)
		}
	}
	if RemapIdentity(100, 6) != 100&63 {
		t.Fatal("RemapIdentity does not mask")
	}
}

func TestRemapTinyRingIdentity(t *testing.T) {
	// Rings of ≤ 8 entries fit one cache line; Remap degenerates to
	// the identity (masked).
	for order := uint(1); order <= 3; order++ {
		for i := uint64(0); i < 1<<order; i++ {
			if Remap(i, order) != i {
				t.Fatalf("order %d: Remap(%d) = %d, want identity", order, i, Remap(i, order))
			}
		}
	}
}
