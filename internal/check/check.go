// Package check provides correctness verification for concurrent FIFO
// queues: value encoding for multi-producer runs and the standard
// MPMC queue checks (no loss, no duplication, per-producer FIFO
// order), which together are the necessary-and-sufficient conditions
// for linearizable FIFO behaviour observable from dequeue streams.
package check

import (
	"fmt"
	"sort"
)

// MaxProducers is the largest producer count Encode can represent:
// the 8-bit producer field sits above bit 44, keeping every value
// within the 52-bit payload the direct-value queues carry (DESIGN.md
// §11) — the tightest in the repository (indirect queues carry 63).
// Drivers that accept a producer-count flag must validate against this
// up front (wcqstress does) so an oversized run fails with a clear
// error instead of a panic mid-stress.
const MaxProducers = 256

// Encode packs a (producer, sequence) pair into a queue value:
// 8 producer bits above bit 44, 44 sequence bits below. Inputs beyond
// either field panic with the cause named, rather than silently
// corrupting a direct ring's entry encoding downstream.
func Encode(producer int, seq uint64) uint64 {
	if producer < 0 || producer >= MaxProducers {
		panic(fmt.Sprintf("check: producer id %d exceeds the 52-bit direct-payload budget (max %d producers)", producer, MaxProducers))
	}
	if seq >= 1<<44 {
		panic(fmt.Sprintf("check: sequence %d exceeds the 44-bit field", seq))
	}
	return uint64(producer)<<44 | seq
}

// Decode splits a value produced by Encode.
func Decode(v uint64) (producer int, seq uint64) {
	return int(v >> 44), v & (1<<44 - 1)
}

// Report is the outcome of Verify.
type Report struct {
	Total           int // values dequeued across all consumers
	Duplicates      int
	Missing         int
	OrderViolations int
}

func (r Report) Err() error {
	if r.Duplicates == 0 && r.Missing == 0 && r.OrderViolations == 0 {
		return nil
	}
	return fmt.Errorf("check: %d duplicates, %d missing, %d per-producer order violations (of %d dequeued)",
		r.Duplicates, r.Missing, r.OrderViolations, r.Total)
}

// Verify checks the dequeue streams of an MPMC run in which
// `producers` producers each enqueued sequences 0..perProducer-1
// (Encode'd), and every enqueued value was eventually dequeued.
// streams[i] is consumer i's dequeued values in its local order.
//
// Checks performed:
//  1. every (producer, seq) pair appears exactly once across streams;
//  2. within each consumer stream, the seqs of any single producer
//     appear in increasing order (FIFO necessary condition: a single
//     consumer can never observe producer-local reordering).
func Verify(streams [][]uint64, producers int, perProducer uint64) Report {
	var rep Report
	seen := make([]map[uint64]bool, producers)
	for p := range seen {
		seen[p] = make(map[uint64]bool, perProducer)
	}
	for _, s := range streams {
		last := make([]int64, producers)
		for p := range last {
			last[p] = -1
		}
		for _, v := range s {
			rep.Total++
			p, seq := Decode(v)
			if p < 0 || p >= producers || seq >= perProducer {
				rep.Duplicates++ // corrupted value counts as duplicate-class failure
				continue
			}
			if seen[p][seq] {
				rep.Duplicates++
			}
			seen[p][seq] = true
			if int64(seq) <= last[p] {
				rep.OrderViolations++
			}
			last[p] = int64(seq)
		}
	}
	for p := 0; p < producers; p++ {
		rep.Missing += int(perProducer) - len(seen[p])
	}
	return rep
}

// VerifySequential checks that a single consumer stream from a single
// producer is exactly 0..n-1 in order — the strict FIFO check for the
// SPSC case.
func VerifySequential(stream []uint64) error {
	for i, v := range stream {
		if v != uint64(i) {
			return fmt.Errorf("check: position %d holds %d, want %d", i, v, i)
		}
	}
	return nil
}

// MergeSorted flattens streams and sorts, for tests that only assert
// the multiset of dequeued values.
func MergeSorted(streams [][]uint64) []uint64 {
	var all []uint64
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}
