// Package check provides correctness verification for concurrent FIFO
// queues: value encoding for multi-producer runs and the standard
// MPMC queue checks (no loss, no duplication, per-producer FIFO
// order), which together are the necessary-and-sufficient conditions
// for linearizable FIFO behaviour observable from dequeue streams.
package check

import (
	"fmt"
	"sort"
)

// Encode packs a (producer, sequence) pair into a queue value.
// Producers get 16 bits, sequences 47 — within the 63-bit payload
// every queue in this repository carries.
func Encode(producer int, seq uint64) uint64 {
	return uint64(producer)<<47 | seq
}

// Decode splits a value produced by Encode.
func Decode(v uint64) (producer int, seq uint64) {
	return int(v >> 47), v & (1<<47 - 1)
}

// Report is the outcome of Verify.
type Report struct {
	Total           int // values dequeued across all consumers
	Duplicates      int
	Missing         int
	OrderViolations int
}

func (r Report) Err() error {
	if r.Duplicates == 0 && r.Missing == 0 && r.OrderViolations == 0 {
		return nil
	}
	return fmt.Errorf("check: %d duplicates, %d missing, %d per-producer order violations (of %d dequeued)",
		r.Duplicates, r.Missing, r.OrderViolations, r.Total)
}

// Verify checks the dequeue streams of an MPMC run in which
// `producers` producers each enqueued sequences 0..perProducer-1
// (Encode'd), and every enqueued value was eventually dequeued.
// streams[i] is consumer i's dequeued values in its local order.
//
// Checks performed:
//  1. every (producer, seq) pair appears exactly once across streams;
//  2. within each consumer stream, the seqs of any single producer
//     appear in increasing order (FIFO necessary condition: a single
//     consumer can never observe producer-local reordering).
func Verify(streams [][]uint64, producers int, perProducer uint64) Report {
	var rep Report
	seen := make([]map[uint64]bool, producers)
	for p := range seen {
		seen[p] = make(map[uint64]bool, perProducer)
	}
	for _, s := range streams {
		last := make([]int64, producers)
		for p := range last {
			last[p] = -1
		}
		for _, v := range s {
			rep.Total++
			p, seq := Decode(v)
			if p < 0 || p >= producers || seq >= perProducer {
				rep.Duplicates++ // corrupted value counts as duplicate-class failure
				continue
			}
			if seen[p][seq] {
				rep.Duplicates++
			}
			seen[p][seq] = true
			if int64(seq) <= last[p] {
				rep.OrderViolations++
			}
			last[p] = int64(seq)
		}
	}
	for p := 0; p < producers; p++ {
		rep.Missing += int(perProducer) - len(seen[p])
	}
	return rep
}

// VerifySequential checks that a single consumer stream from a single
// producer is exactly 0..n-1 in order — the strict FIFO check for the
// SPSC case.
func VerifySequential(stream []uint64) error {
	for i, v := range stream {
		if v != uint64(i) {
			return fmt.Errorf("check: position %d holds %d, want %d", i, v, i)
		}
	}
	return nil
}

// MergeSorted flattens streams and sorts, for tests that only assert
// the multiset of dequeued values.
func MergeSorted(streams [][]uint64) []uint64 {
	var all []uint64
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}
