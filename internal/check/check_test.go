package check

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(p uint8, seq uint64) bool {
		seq &= 1<<44 - 1
		gp, gs := Decode(Encode(int(p), seq))
		return gp == int(p) && gs == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOutOfBudgetInputs(t *testing.T) {
	// The 52-bit direct-payload budget admits 256 producers and 44-bit
	// sequences; inputs beyond either must fail with a message naming
	// the cause rather than crash deep inside a direct ring.
	for _, tc := range []struct {
		p   int
		seq uint64
	}{{256, 0}, {-1, 0}, {0, 1 << 44}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%d, %d) did not panic", tc.p, tc.seq)
				}
			}()
			Encode(tc.p, tc.seq)
		}()
	}
}

func TestVerifyCleanRun(t *testing.T) {
	streams := [][]uint64{
		{Encode(0, 0), Encode(1, 0), Encode(0, 1)},
		{Encode(1, 1), Encode(0, 2), Encode(1, 2)},
	}
	rep := Verify(streams, 2, 3)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Total != 6 {
		t.Fatalf("Total = %d, want 6", rep.Total)
	}
}

func TestVerifyDetectsDuplicate(t *testing.T) {
	streams := [][]uint64{{Encode(0, 0), Encode(0, 0), Encode(0, 1)}}
	rep := Verify(streams, 1, 2)
	if rep.Duplicates == 0 {
		t.Fatal("duplicate not detected")
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite duplicate")
	}
}

func TestVerifyDetectsMissing(t *testing.T) {
	streams := [][]uint64{{Encode(0, 0)}}
	rep := Verify(streams, 1, 3)
	if rep.Missing != 2 {
		t.Fatalf("Missing = %d, want 2", rep.Missing)
	}
}

func TestVerifyDetectsOrderViolation(t *testing.T) {
	// Same consumer sees producer 0's seq 1 before seq 0: a genuine
	// FIFO violation.
	streams := [][]uint64{{Encode(0, 1), Encode(0, 0)}}
	rep := Verify(streams, 1, 2)
	if rep.OrderViolations == 0 {
		t.Fatal("order violation not detected")
	}
}

func TestVerifyAllowsCrossConsumerInterleaving(t *testing.T) {
	// Different consumers may see a producer's values "out of order"
	// relative to each other — that is not a FIFO violation.
	streams := [][]uint64{
		{Encode(0, 1)},
		{Encode(0, 0)},
	}
	if err := Verify(streams, 1, 2).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFlagsCorruptValues(t *testing.T) {
	streams := [][]uint64{{Encode(5, 0)}} // producer 5 of 1
	rep := Verify(streams, 1, 1)
	if rep.Err() == nil {
		t.Fatal("out-of-range producer accepted")
	}
}

func TestVerifySequential(t *testing.T) {
	if err := VerifySequential([]uint64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := VerifySequential([]uint64{0, 2, 1}); err == nil {
		t.Fatal("reorder not detected")
	}
}

func TestMergeSorted(t *testing.T) {
	got := MergeSorted([][]uint64{{3, 1}, {2}})
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeSorted = %v", got)
		}
	}
}
