//go:build !((amd64 || 386) && !race)

package core

import "sync/atomic"

// ActiveFlag marks a handle as being inside an enqueue so Close can
// wait out in-flight operations before sealing (DESIGN.md §10). This
// is the portable variant: seq-cst stores give the Dekker handshake
// against Close directly (and keep the race detector's memory model
// exact). TSO architectures use the fence-free variant in
// activeflag_fast.go.
type ActiveFlag struct{ v atomic.Uint32 }

// Enter marks the owner as inside an operation.
// wcq:noalloc
func (f *ActiveFlag) Enter() { f.v.Store(1) }

// Exit clears the flag after the operation's effects are published.
// wcq:noalloc
func (f *ActiveFlag) Exit() { f.v.Store(0) }

// Active reports whether the owner is inside an operation.
func (f *ActiveFlag) Active() bool { return f.v.Load() != 0 }
