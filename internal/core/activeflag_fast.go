//go:build (amd64 || 386) && !race

package core

import "sync/atomic"

// ActiveFlag marks a handle as being inside an enqueue so Close can
// wait out in-flight operations before sealing (DESIGN.md §10).
//
// On TSO architectures (x86) the non-race build uses plain stores,
// making the bracket free on the fast path:
//
//   - Enter must be globally visible before the caller acts on a
//     subsequent load of the queue's close state (the Dekker
//     handshake against Close's state-store/Active-load). The caller
//     guarantees a seq-cst atomic RMW between Enter and that load —
//     every ring reservation (fetch-and-add, or its CAS emulation)
//     qualifies — and on x86 a locked RMW drains the store buffer, so
//     the plain store is visible before the load executes.
//   - Exit must not become visible before the operation's preceding
//     ring stores; TSO preserves store order, and the Go compiler
//     never reorders stores across the atomic operations between
//     them.
//
// The closer's Active load stays atomic. Race builds and non-TSO
// architectures use the seq-cst variant in activeflag_atomic.go —
// identical protocol, paid-for fences.
type ActiveFlag struct{ v uint32 }

// Enter marks the owner as inside an operation. The caller must
// execute at least one seq-cst atomic RMW before acting on a
// subsequent close-state load.
//
// wcq:noalloc
// wcq:plain-ok TSO plain store per the Dekker piggyback above: the caller's ring-reservation RMW drains the store buffer before its close-state load, and this file is gated to amd64/386 !race
func (f *ActiveFlag) Enter() { f.v = 1 }

// Exit clears the flag after the operation's effects are published.
//
// wcq:noalloc
// wcq:plain-ok TSO preserves store order, so the clear cannot pass the operation's ring stores; the closer's Active load stays atomic (amd64/386 !race build only)
func (f *ActiveFlag) Exit() { f.v = 0 }

// Active reports whether the owner is inside an operation.
func (f *ActiveFlag) Active() bool { return atomic.LoadUint32(&f.v) != 0 }
