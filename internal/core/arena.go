package core

// This file implements the chunked, grow-only record arena that
// replaced the fixed per-thread record slab. Registration no longer
// needs a thread census at construction: the arena starts empty and
// grows one fixed-size chunk at a time, up to the 16-bit owner-id
// space of the pair-word encoding (atomicx.MaxOwners), and a free-list
// recycles released slots so register/unregister churn keeps the
// high-water mark flat.
//
// Publish protocol (DESIGN.md §9): chunks hang off a fixed directory
// of atomic pointers sized for maxHandles at construction. A grower
// fully initializes a fresh chunk (tids, help cursors, seqlock seeds)
// and then publishes it with a single CompareAndSwap on its directory
// slot; losers adopt the winner's chunk and drop their own. Readers —
// helpers scanning for pending requests, finalize_request, Stats,
// Reset — only ever dereference chunks through the directory's atomic
// loads, so a published record is always fully initialized, and the
// published-length bound nrec only advances after the chunk it covers
// is visible. Chunks are never unpublished or moved, which is what
// keeps the hot paths pointer-stable: a *record handed out once stays
// valid for the ring's lifetime.

import (
	"fmt"
	"sync"
	"unsafe"
)

// SlotAlloc is the handle-slot allocator every queue shape shares: a
// LIFO free list recycled ahead of a bounded fresh-slot cursor, under
// a mutex — registration is not a hot path; the operations stay
// lock-free. Because the free list is consulted first, the cursor
// doubles as the high-water mark: it tracks peak concurrency, never
// cumulative registrations.
type SlotAlloc struct {
	mu   sync.Mutex
	max  int
	free []int
	next int
	live int
}

// NewSlotAlloc returns an allocator handing out slots [0, max).
func NewSlotAlloc(max int) SlotAlloc { return SlotAlloc{max: max} }

// Acquire returns a recycled slot when available, else the next fresh
// one; it fails only when max slots are live.
func (a *SlotAlloc) Acquire() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var slot int
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if a.next >= a.max {
			return 0, fmt.Errorf("all %d handle slots live", a.max)
		}
		slot = a.next
		a.next++
	}
	a.live++
	return slot, nil
}

// Release returns a slot for reuse. The mutex makes the release
// happen-before any re-acquisition of the same slot, so per-slot state
// written by the old owner before Release is visible to the new owner
// after Acquire.
func (a *SlotAlloc) Release(slot int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, slot)
	a.live--
}

// Live returns the number of slots currently acquired.
func (a *SlotAlloc) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// HighWater returns the largest number of slots ever live at once.
func (a *SlotAlloc) HighWater() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

const (
	chunkShift = 6
	chunkSize  = 1 << chunkShift // records per arena chunk
)

// recordChunk is one fixed-size block of per-thread records.
type recordChunk struct {
	recs [chunkSize]record
}

// chunkBytes is the exact allocation charged per published chunk.
var chunkBytes = int64(unsafe.Sizeof(recordChunk{}))

// recAt returns tid's record if its chunk is published, else nil.
// Readers iterating the arena use it so unpublished (sparse) chunks
// are skipped instead of materialized.
// wcq:noalloc
func (q *WCQ) recAt(tid int) *record {
	c := q.chunks[tid>>chunkShift].Load()
	if c == nil {
		return nil
	}
	return &c.recs[tid&(chunkSize-1)]
}

// rec returns tid's record, publishing its chunk first if needed. The
// grow path runs at most once per chunk per ring; afterwards the cost
// is one atomic load and an index.
// wcq:noalloc
func (q *WCQ) rec(tid int) *record {
	ci := tid >> chunkShift
	c := q.chunks[ci].Load()
	if c == nil {
		// wcq:alloc-ok one-time chunk publish, at most once per chunk per ring life; the steady state above it is an atomic load plus an index
		c = q.growChunk(ci)
	}
	return &c.recs[tid&(chunkSize-1)]
}

// growChunk allocates, initializes and publishes chunk ci, returning
// whichever chunk won the publish race. Initialization happens-before
// the CompareAndSwap publish, so readers never observe a half-built
// record.
//
// The published-length bound nrec is advanced by the winner AND by
// every loser (a loser adopted a chunk whose winner may still be
// preempted between its CAS and its nrec update), so any thread that
// obtained a record through growChunk has nrec covering it before it
// can act on the record. One window remains: rec()'s fast path can
// hand out a record from a chunk some other thread published whose
// nrec advance is still pending. nrec-bounded scans are therefore
// used only where a transient miss is benign — help rotation
// (delayed help; the requester self-executes its slow path) and
// Stats (documented lower bound). finalizeRequest, the one
// correctness-bearing scan, iterates the whole directory instead.
func (q *WCQ) growChunk(ci int) *recordChunk {
	c := new(recordChunk)
	base := ci << chunkShift
	for i := range c.recs {
		r := &c.recs[i]
		r.tid = base + i
		r.nextCheck = q.helpDelay
		r.nextTid = base + i + 1 // wraps at scan time, where the live bound is known
		r.seq1.Store(1)
	}
	if q.chunks[ci].CompareAndSwap(nil, c) {
		q.arenaBytes.Add(chunkBytes)
		if q.onGrow != nil {
			q.onGrow(chunkBytes)
		}
	} else {
		c = q.chunks[ci].Load()
	}
	for {
		n := q.nrec.Load()
		want := int64(base + chunkSize)
		if n >= want || q.nrec.CompareAndSwap(n, want) {
			break
		}
	}
	return c
}

// forEachRecord calls f on every published record in tid order while f
// returns true. Unpublished chunks are skipped: their records cannot
// carry pending requests or statistics.
func (q *WCQ) forEachRecord(f func(*record) bool) {
	n := int(q.nrec.Load())
	for base := 0; base < n; base += chunkSize {
		c := q.chunks[base>>chunkShift].Load()
		if c == nil {
			continue
		}
		for i := range c.recs {
			if !f(&c.recs[i]) {
				return
			}
		}
	}
}

// Register claims a handle slot through the allocator, publishing its
// chunk. It fails only when maxHandles slots are live — 65535 by
// default, the full owner-id space of the pair-word encoding. The
// registered-flag write is ordered against any future owner of the
// slot by the allocator's mutex (see SlotAlloc.Release).
func (q *WCQ) Register() (int, error) {
	tid, err := q.alloc.Acquire()
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	q.rec(tid).registered = true
	return tid, nil
}

// Unregister returns a thread slot for reuse. The caller must have no
// operation in flight. Released slots are recycled LIFO, which is what
// keeps the arena high-water mark flat under register/unregister
// storms.
func (q *WCQ) Unregister(tid int) {
	r := q.recAt(tid)
	if r == nil || !r.registered {
		panic("core: Unregister of unregistered tid")
	}
	r.registered = false
	q.alloc.Release(tid)
}

// MaxHandles returns the registration capacity.
func (q *WCQ) MaxHandles() int { return q.maxHandles }

// LiveHandles returns the number of currently registered handles.
func (q *WCQ) LiveHandles() int { return q.alloc.Live() }

// HandleHighWater returns the highest slot count the arena has ever
// had to cover — the register/unregister-storm flatness metric: with
// slot recycling it tracks peak concurrency, not cumulative
// registrations.
func (q *WCQ) HandleHighWater() int { return q.alloc.HighWater() }

// ArenaBytes returns the bytes of published record chunks.
func (q *WCQ) ArenaBytes() int64 { return q.arenaBytes.Load() }
