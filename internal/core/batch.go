package core

import "wcqueue/internal/atomicx"

// This file implements the batched fast paths (DESIGN.md §6). A batch
// of k operations reserves k consecutive Head/Tail counters with ONE
// fetch-and-add and then runs the unchanged per-slot protocol at each
// reserved counter. Since a k-unit F&A is linearizable as k
// back-to-back single-unit F&As, every safety argument of the scalar
// paths carries over verbatim; only the straggler handling is new, and
// it falls back to the scalar wait-free operations, so the paper's
// progress bounds are preserved.

// EnqueueBatch inserts all indices in order. A batch of k costs one
// Tail F&A instead of k on the contended-free fast path. Reserved
// positions lost to concurrent dequeuers are not retried out of order:
// the first straggler abandons the remainder of the reservation
// (untouched reserved tail positions are indistinguishable from failed
// scalar attempts) and enqueues the rest through the scalar wait-free
// path, preserving intra-batch FIFO order. Like Enqueue, this must
// only be used on rings that are never finalized.
// wcq:noalloc
func (q *WCQ) EnqueueBatch(tid int, indices []uint64) {
	q.enqueueBatchRec(q.rec(tid), indices)
}

// enqueueBatchRec is EnqueueBatch for callers that cache the record.
// wcq:noalloc
func (q *WCQ) enqueueBatchRec(rec *record, indices []uint64) {
	k := uint64(len(indices))
	if k == 0 {
		return
	}
	if k == 1 {
		q.enqueueRec(rec, indices[0])
		return
	}
	q.helpTick(rec, len(indices))

	t0 := atomicx.PairCnt(q.faaAddRaw(&q.tail, k))
	for i, index := range indices {
		if !q.enqAtFast(t0+uint64(i), index) {
			// Straggler: scalar re-enqueue reserves fresh, later
			// positions, so everything still pending must follow it.
			for _, rest := range indices[i:] {
				q.enqueueRec(rec, rest)
			}
			return
		}
	}
}

// DequeueBatch removes up to len(out) indices in FIFO order, reserving
// the head counters with a single F&A, and returns how many were
// dequeued. Every reserved position is processed (deqAtFast stamps the
// slot); positions lost to races are recovered with scalar wait-free
// dequeues after the reservation, which keeps out[] ordered — the
// recovered values come from head positions past the whole reservation.
// wcq:noalloc
func (q *WCQ) DequeueBatch(tid int, out []uint64) int {
	if len(out) == 0 {
		return 0
	}
	if !q.thresholdNonNegative() {
		return 0 // empty fast-exit
	}
	return q.dequeueBatchAny(q.rec(tid), out)
}

// dequeueBatchAny dispatches a cached-record batched dequeue of any
// size >= 1 (size 1 falls back to the scalar path, as DequeueBatch
// does). The caller must have checked thresholdNonNegative.
// wcq:noalloc
func (q *WCQ) dequeueBatchAny(rec *record, out []uint64) int {
	if len(out) == 1 {
		index, ok := q.dequeueRec(rec)
		if !ok {
			return 0
		}
		out[0] = index
		return 1
	}
	return q.dequeueBatchRec(rec, out)
}

// dequeueBatchRec is the batched dequeue body for callers that cache
// the record. The caller must have checked thresholdNonNegative and
// len(out) >= 2.
//
// Diet (DESIGN.md §11): reserved positions lost to races run in
// deferred-threshold mode — no per-position threshold fetch-and-add.
// The skip is strictly conservative (the budget stays higher than the
// per-operation protocol's, so no premature empty conclusion), the
// precise tail-caught-head detection still fires on a genuinely empty
// queue, and the batch's own length bounds the extra work a too-high
// budget can admit.
// wcq:noalloc
func (q *WCQ) dequeueBatchRec(rec *record, out []uint64) int {
	k := uint64(len(out))
	q.helpTick(rec, len(out))

	h0 := atomicx.PairCnt(q.faaAddRaw(&q.head, k))
	n, retries := 0, 0
	for i := uint64(0); i < k; i++ {
		index, st := q.deqAtFast(h0+i, q.relaxed)
		switch st {
		case DeqOK:
			out[n] = index
			n++
		case DeqRetry:
			retries++
		}
	}
	for ; retries > 0 && n < len(out); retries-- {
		if !q.thresholdNonNegative() {
			break
		}
		index, ok := q.dequeueRec(rec)
		if !ok {
			break
		}
		out[n] = index
		n++
	}
	return n
}
