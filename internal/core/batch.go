package core

import "wcqueue/internal/atomicx"

// This file implements the batched fast paths (DESIGN.md §6). A batch
// of k operations reserves k consecutive Head/Tail counters with ONE
// fetch-and-add and then runs the unchanged per-slot protocol at each
// reserved counter. Since a k-unit F&A is linearizable as k
// back-to-back single-unit F&As, every safety argument of the scalar
// paths carries over verbatim; only the straggler handling is new, and
// it falls back to the scalar wait-free operations, so the paper's
// progress bounds are preserved.

// EnqueueBatch inserts all indices in order. A batch of k costs one
// Tail F&A instead of k on the contended-free fast path. Reserved
// positions lost to concurrent dequeuers are not retried out of order:
// the first straggler abandons the remainder of the reservation
// (untouched reserved tail positions are indistinguishable from failed
// scalar attempts) and enqueues the rest through the scalar wait-free
// path, preserving intra-batch FIFO order. Like Enqueue, this must
// only be used on rings that are never finalized.
func (q *WCQ) EnqueueBatch(tid int, indices []uint64) {
	k := uint64(len(indices))
	if k == 0 {
		return
	}
	if k == 1 {
		q.Enqueue(tid, indices[0])
		return
	}
	rec := q.rec(tid)
	q.helpThreads(rec)

	t0 := atomicx.PairCnt(q.faaAddRaw(&q.tail, k))
	for i, index := range indices {
		if !q.enqAtFast(t0+uint64(i), index) {
			// Straggler: scalar re-enqueue reserves fresh, later
			// positions, so everything still pending must follow it.
			for _, rest := range indices[i:] {
				q.Enqueue(tid, rest)
			}
			return
		}
	}
}

// DequeueBatch removes up to len(out) indices in FIFO order, reserving
// the head counters with a single F&A, and returns how many were
// dequeued. Every reserved position is processed (deqAtFast stamps the
// slot); positions lost to races are recovered with scalar wait-free
// dequeues after the reservation, which keeps out[] ordered — the
// recovered values come from head positions past the whole reservation.
func (q *WCQ) DequeueBatch(tid int, out []uint64) int {
	k := uint64(len(out))
	if k == 0 {
		return 0
	}
	if q.threshold.Load() < 0 {
		return 0 // empty fast-exit
	}
	if k == 1 {
		index, ok := q.Dequeue(tid)
		if !ok {
			return 0
		}
		out[0] = index
		return 1
	}
	rec := q.rec(tid)
	q.helpThreads(rec)

	h0 := atomicx.PairCnt(q.faaAddRaw(&q.head, k))
	n, retries := 0, 0
	for i := uint64(0); i < k; i++ {
		index, st := q.deqAtFast(h0 + i)
		switch st {
		case DeqOK:
			out[n] = index
			n++
		case DeqRetry:
			retries++
		}
	}
	for ; retries > 0 && n < len(out); retries-- {
		index, ok := q.Dequeue(tid)
		if !ok {
			break
		}
		out[n] = index
		n++
	}
	return n
}
