package core

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
)

func TestWCQBatchSequentialFIFO(t *testing.T) {
	q := Must(6, Options{})
	tid, _ := q.Register()
	in := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	q.EnqueueBatch(tid, in[:5])
	q.EnqueueBatch(tid, in[5:])
	out := make([]uint64, 8)
	if n := q.DequeueBatch(tid, out); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i, v := range out {
		if v != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, v, in[i])
		}
	}
	if n := q.DequeueBatch(tid, out); n != 0 {
		t.Fatalf("empty ring batch-dequeued %d", n)
	}
}

func TestWCQBatchAcrossCycles(t *testing.T) {
	q := Must(3, Options{})
	tid, _ := q.Register()
	buf := make([]uint64, 6)
	next := uint64(0)
	for iter := 0; iter < 800; iter++ {
		k := iter%6 + 1
		in := make([]uint64, k)
		for i := range in {
			in[i] = (next + uint64(i)) % 8
		}
		q.EnqueueBatch(tid, in)
		if got := q.DequeueBatch(tid, buf[:k]); got != k {
			t.Fatalf("iter %d: dequeued %d of %d", iter, got, k)
		}
		for i := 0; i < k; i++ {
			if buf[i] != (next+uint64(i))%8 {
				t.Fatalf("iter %d: buf[%d] = %d", iter, i, buf[i])
			}
		}
		next += uint64(k)
	}
}

// TestWCQBatchMixedWithScalar interleaves scalar and batched calls on
// the same ring; order must be the program order of the operations.
func TestWCQBatchMixedWithScalar(t *testing.T) {
	q := Must(5, Options{})
	tid, _ := q.Register()
	q.Enqueue(tid, 1)
	q.EnqueueBatch(tid, []uint64{2, 3, 4})
	q.Enqueue(tid, 5)
	out := make([]uint64, 2)
	if v, ok := q.Dequeue(tid); !ok || v != 1 {
		t.Fatalf("scalar dequeue: (%d,%v)", v, ok)
	}
	if n := q.DequeueBatch(tid, out); n != 2 || out[0] != 2 || out[1] != 3 {
		t.Fatalf("batch dequeue: n=%d out=%v", n, out)
	}
	if n := q.DequeueBatch(tid, out); n != 2 || out[0] != 4 || out[1] != 5 {
		t.Fatalf("batch dequeue tail: n=%d out=%v", n, out)
	}
}

// TestWCQBatchEmulatedFAA exercises the CAS-loop reservation path.
func TestWCQBatchEmulatedFAA(t *testing.T) {
	q := Must(4, Options{EmulatedFAA: true})
	tid, _ := q.Register()
	in := []uint64{7, 6, 5}
	q.EnqueueBatch(tid, in)
	out := make([]uint64, 3)
	if n := q.DequeueBatch(tid, out); n != 3 || out[0] != 7 || out[2] != 5 {
		t.Fatalf("LLSC batch: n=%d out=%v", n, out)
	}
}

// TestWCQQueueBatchConcurrent runs the value-level batched paths from
// many goroutines with the standard MPMC checks.
func TestWCQQueueBatchConcurrent(t *testing.T) {
	const producers, consumers, batch = 3, 3, 8
	per := uint64(6000)
	if testing.Short() {
		per = 600
	}
	q := MustQueue[uint64](9, Options{})
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / consumers
			if c == 0 {
				budget += total % consumers
			}
			local := make([]uint64, 0, budget)
			buf := make([]uint64, batch)
			for uint64(len(local)) < budget {
				k := budget - uint64(len(local)) // never overfetch past the budget
				if k > batch {
					k = batch
				}
				n := q.DequeueBatch(h, buf[:k])
				if n == 0 {
					runtime.Gosched()
					continue
				}
				local = append(local, buf[:n]...)
				for i := 0; i < n; i++ {
					consumed.Done()
				}
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			buf := make([]uint64, batch)
			for s := uint64(0); s < per; {
				k := min(uint64(batch), per-s)
				for i := uint64(0); i < k; i++ {
					buf[i] = check.Encode(p, s+i)
				}
				sent := uint64(0)
				for sent < k {
					n := q.EnqueueBatch(h, buf[sent:k])
					sent += uint64(n)
					if n == 0 {
						runtime.Gosched()
					}
				}
				s += k
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestWCQBatchTinyRingContended drives batches larger than the ring
// through heavy contention so straggler fallbacks (including slow-path
// entries) actually fire, then verifies nothing was lost or reordered.
func TestWCQBatchTinyRingContended(t *testing.T) {
	const producers, consumers, batch = 2, 2, 8
	per := uint64(3000)
	if testing.Short() {
		per = 300
	}
	// Order 3 ring (8 slots) with batch 8 forces constant full/empty
	// boundaries; patience 1 forces the wait-free slow path on scalar
	// fallbacks.
	q := MustQueue[uint64](3, Options{EnqPatience: 1, DeqPatience: 1})
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, _ := q.Register()
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / consumers
			local := make([]uint64, 0, budget)
			buf := make([]uint64, batch)
			for uint64(len(local)) < budget {
				k := budget - uint64(len(local)) // never overfetch past the budget
				if k > batch {
					k = batch
				}
				n := q.DequeueBatch(h, buf[:k])
				if n == 0 {
					runtime.Gosched()
					continue
				}
				local = append(local, buf[:n]...)
				for i := 0; i < n; i++ {
					consumed.Done()
				}
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, _ := q.Register()
		wg.Add(1)
		go func(p int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			buf := make([]uint64, batch)
			for s := uint64(0); s < per; {
				k := min(uint64(batch), per-s)
				for i := uint64(0); i < k; i++ {
					buf[i] = check.Encode(p, s+i)
				}
				sent := uint64(0)
				for sent < k {
					n := q.EnqueueBatch(h, buf[sent:k])
					sent += uint64(n)
					if n == 0 {
						runtime.Gosched()
					}
				}
				s += k
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}
