// Blocking operations and close/drain semantics for the bounded queue
// (DESIGN.md §10).
//
// The non-blocking operations stay the fast path: the blocking
// variants call them in a prepare/re-check/park loop on the queue's
// two eventcounts (notEmpty for dequeuers, notFull for enqueuers).
// The eventcount's arm-before-recheck protocol (internal/waitq) is
// what makes the combination correct: a value that lands after the
// re-check finds the armed waiter and wakes it; a value that lands
// before is found by the re-check.
//
// Close follows Go channel semantics, adapted to a lock-free queue:
//
//  1. state moves open → closing: every subsequent enqueue fails its
//     close re-check (which sits right after the index reservation,
//     whose fetch-and-add doubles as the fence that publishes the
//     handle's ActiveFlag — the Dekker handshake; see ActiveFlag).
//  2. the closer waits for in-flight enqueues to retire, via the
//     per-handle ActiveFlag brackets — a bounded wait, because each
//     enqueue is itself wait-free. After this point the queue's
//     content can only shrink.
//  3. state moves closing → sealed and both eventcounts broadcast.
//     A dequeuer that observes sealed and then finds the queue empty
//     may conclusively report ErrClosed: no value can land after the
//     seal, so "empty after sealed" is a stable property.
//
// The two-step close is what delivers exactly-once drain: values from
// enqueues that returned true are all present before sealed is
// published, so blocked dequeuers drain them before any ErrClosed.
package core

import (
	"context"
	"errors"
	"runtime"

	"wcqueue/internal/failpoint"
	"wcqueue/internal/waitq"
)

// ErrClosed is returned by blocking operations on a closed queue: by
// EnqueueWait as soon as Close is called, and by DequeueWait once the
// queue is closed and fully drained.
var ErrClosed = errors.New("wcq: queue closed")

// Queue close states. Enqueues fail from closing on; dequeuers treat
// only sealed as conclusive (between closing and sealed an in-flight
// enqueue may still land its value).
const (
	stateOpen uint32 = iota
	stateClosing
	stateSealed
)

// Close closes the queue: subsequent enqueues fail, and dequeuers
// drain the remaining values before observing ErrClosed. Close blocks
// until in-flight enqueues retire (a bounded wait — each is
// wait-free), so every value whose enqueue reported success is
// present, and will be delivered, before any dequeuer is told the
// queue is done. Safe to call multiple times and from any goroutine;
// later calls wait for the first to finish sealing.
func (q *Queue[T]) Close() {
	if !q.state.CompareAndSwap(stateOpen, stateClosing) {
		for q.state.Load() != stateSealed {
			runtime.Gosched()
		}
		return
	}
	if failpoint.Enabled {
		// Closing published, quiescence not yet run: enqueues must
		// already fail, dequeuers must not yet conclude ErrClosed.
		failpoint.Inject(failpoint.CoreCloseClosing)
	}
	// Quiesce: wait out every enqueue that won the race against the
	// state flip, by scanning the tid-indexed flag arena (handles that
	// register after the flip observe closing before touching the
	// ring, so the scan is complete).
	q.flags.Quiesce()
	if failpoint.Enabled {
		// Quiesced but unsealed: the queue's content is final, yet no
		// dequeuer may report ErrClosed until the seal lands.
		failpoint.Inject(failpoint.CoreClosePreSeal)
	}
	q.state.Store(stateSealed)
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.state.Load() != stateOpen }

// WaitStats reports the blocking layer's telemetry (DESIGN.md §16):
// instantaneous parked-caller gauges per side plus cumulative
// park/wake counters summed over both eventcounts. Four to eight
// atomic loads; safe to poll at watchdog frequency.
func (q *Queue[T]) WaitStats() WaitStats {
	return WaitStats{
		EnqWaiters: q.notFull.Waiters(),
		DeqWaiters: q.notEmpty.Waiters(),
		Waits:      q.notFull.Waits() + q.notEmpty.Waits(),
		Wakes:      q.notFull.Wakes() + q.notEmpty.Wakes(),
	}
}

// WaitStats is the blocking layer's telemetry snapshot: how many
// callers are parked right now (per side) and how many parks and
// wakeups have happened over the queue's lifetime. The gauges are the
// watchdog's stall signal; the counters make deltas between snapshots
// meaningful.
type WaitStats struct {
	EnqWaiters int    // enqueuers currently parked (queue full)
	DeqWaiters int    // dequeuers currently parked (queue empty)
	Waits      uint64 // cumulative parks, both sides
	Wakes      uint64 // cumulative wakeups delivered, both sides
}

// EnqueueWait inserts v, blocking while the queue is full. It returns
// nil on success, ErrClosed if the queue is (or becomes) closed before
// the value is inserted, or ctx.Err() if the context is done first.
func (q *Queue[T]) EnqueueWait(ctx context.Context, h *Handle, v T) error {
	// An already-expired context must not publish the value: callers
	// key exactly-once accepted/shed accounting off the error result
	// (internal/admission), so a phantom delivery after ctx.Err() would
	// be counted on both sides. Checked before the first insertion
	// attempt; once Enqueue succeeds the value is in and nil is
	// returned regardless of any concurrent cancellation.
	if err := ctx.Err(); err != nil {
		return err
	}
	if q.Enqueue(h, v) {
		return nil
	}
	if q.state.Load() != stateOpen {
		return ErrClosed
	}
	for i := 0; waitq.Spin(i); i++ {
		if q.Enqueue(h, v) {
			return nil
		}
		if q.state.Load() != stateOpen {
			return ErrClosed
		}
	}
	w := h.waiter()
	for {
		q.notFull.Prepare(w)
		if failpoint.Enabled {
			// Armed but not yet re-checked: the lost-wakeup window the
			// eventcount protocol must close.
			failpoint.Inject(failpoint.BlockingEnqPrepared)
		}
		if q.Enqueue(h, v) {
			q.notFull.Cancel(w)
			return nil
		}
		if q.state.Load() != stateOpen {
			q.notFull.Cancel(w)
			return ErrClosed
		}
		if err := q.notFull.Wait(ctx, w); err != nil {
			return err
		}
	}
}

// DequeueWait removes the oldest value, blocking while the queue is
// empty. It returns the value, ErrClosed once the queue is closed and
// drained, or ctx.Err() if the context is done first. Values already
// in the queue are always delivered before ErrClosed.
func (q *Queue[T]) DequeueWait(ctx context.Context, h *Handle) (T, error) {
	// Mirror of the EnqueueWait pre-check: an already-expired context
	// returns ctx.Err() before consuming anything, so no value is ever
	// dequeued into an error return (which would lose it). Once a
	// Dequeue succeeds the value travels with a nil error regardless of
	// a concurrent cancellation.
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}
	if v, ok := q.Dequeue(h); ok {
		return v, nil
	}
	for i := 0; waitq.Spin(i); i++ {
		if v, ok := q.Dequeue(h); ok {
			return v, nil
		}
		if q.state.Load() == stateSealed {
			break
		}
	}
	w := h.waiter()
	for {
		q.notEmpty.Prepare(w)
		if failpoint.Enabled {
			failpoint.Inject(failpoint.BlockingDeqPrepared)
		}
		if v, ok := q.Dequeue(h); ok {
			q.notEmpty.Cancel(w)
			return v, nil
		}
		if q.state.Load() == stateSealed {
			q.notEmpty.Cancel(w)
			// The empty observation above may predate the seal; one
			// attempt after observing sealed is conclusive (nothing
			// can land past the seal).
			if v, ok := q.Dequeue(h); ok {
				return v, nil
			}
			var zero T
			return zero, ErrClosed
		}
		if err := q.notEmpty.Wait(ctx, w); err != nil {
			var zero T
			return zero, err
		}
	}
}
