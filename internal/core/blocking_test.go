package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newBlockingQueue(t *testing.T, order uint) *Queue[uint64] {
	t.Helper()
	q, err := NewQueue[uint64](order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func register(t *testing.T, q *Queue[uint64]) *Handle {
	t.Helper()
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCloseFailsEnqueues: after Close, every enqueue path reports
// failure and EnqueueWait returns ErrClosed without blocking.
func TestCloseFailsEnqueues(t *testing.T) {
	q := newBlockingQueue(t, 4)
	h := register(t, q)
	defer q.Unregister(h)
	if !q.Enqueue(h, 1) {
		t.Fatal("enqueue on open queue failed")
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.Enqueue(h, 2) {
		t.Fatal("enqueue succeeded after Close")
	}
	if n := q.EnqueueBatch(h, []uint64{3, 4}); n != 0 {
		t.Fatalf("EnqueueBatch after Close inserted %d", n)
	}
	if err := q.EnqueueWait(context.Background(), h, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("EnqueueWait after Close = %v, want ErrClosed", err)
	}
	// The pre-close value still drains.
	if v, err := q.DequeueWait(context.Background(), h); err != nil || v != 1 {
		t.Fatalf("drain = (%d, %v), want (1, nil)", v, err)
	}
	if _, err := q.DequeueWait(context.Background(), h); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained dequeue = %v, want ErrClosed", err)
	}
}

// TestCloseIdempotent: double Close and concurrent Close are safe.
func TestCloseIdempotent(t *testing.T) {
	q := newBlockingQueue(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); q.Close() }()
	}
	wg.Wait()
	q.Close()
	if !q.Closed() {
		t.Fatal("not closed")
	}
}

// TestDequeueWaitWakesOnEnqueue parks a consumer on an empty queue and
// wakes it with a plain non-blocking Enqueue — the API-mixing case: a
// producer that never uses the blocking API must still wake parked
// consumers.
func TestDequeueWaitWakesOnEnqueue(t *testing.T) {
	q := newBlockingQueue(t, 4)
	hc := register(t, q)
	hp := register(t, q)
	got := make(chan uint64, 1)
	go func() {
		v, err := q.DequeueWait(context.Background(), hc)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	if !q.Enqueue(hp, 42) {
		t.Fatal("enqueue failed")
	}
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked consumer missed the enqueue")
	}
}

// TestEnqueueWaitWakesOnDequeue parks a producer on a full queue and
// frees a slot with a plain Dequeue.
func TestEnqueueWaitWakesOnDequeue(t *testing.T) {
	q := newBlockingQueue(t, 2)
	hp := register(t, q)
	hc := register(t, q)
	for i := uint64(0); i < uint64(q.Cap()); i++ {
		if !q.Enqueue(hp, i) {
			t.Fatalf("fill enqueue %d failed", i)
		}
	}
	done := make(chan error, 1)
	go func() { done <- q.EnqueueWait(context.Background(), hp, 99) }()
	time.Sleep(10 * time.Millisecond)
	if _, ok := q.Dequeue(hc); !ok {
		t.Fatal("dequeue from full queue failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked producer missed the freed slot")
	}
}

// TestCloseWakesParkedWaiters parks a consumer (empty queue) and a
// producer (full queue is not needed — use a second full queue) and
// closes; both must return ErrClosed.
func TestCloseWakesParkedWaiters(t *testing.T) {
	empty := newBlockingQueue(t, 4)
	he := register(t, empty)
	full := newBlockingQueue(t, 2)
	hf := register(t, full)
	for i := uint64(0); i < uint64(full.Cap()); i++ {
		full.Enqueue(hf, i)
	}
	cerr := make(chan error, 1)
	perr := make(chan error, 1)
	go func() {
		_, err := empty.DequeueWait(context.Background(), he)
		cerr <- err
	}()
	go func() { perr <- full.EnqueueWait(context.Background(), hf, 99) }()
	time.Sleep(10 * time.Millisecond)
	empty.Close()
	full.Close()
	for name, ch := range map[string]chan error{"dequeuer": cerr, "enqueuer": perr} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("%s woke with %v, want ErrClosed", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("Close stranded the parked %s", name)
		}
	}
}

// TestDequeueWaitContextCancel unblocks a parked consumer via context.
func TestDequeueWaitContextCancel(t *testing.T) {
	q := newBlockingQueue(t, 4)
	h := register(t, q)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.DequeueWait(ctx, h)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock DequeueWait")
	}
	// The queue still works afterwards.
	if !q.Enqueue(h, 7) {
		t.Fatal("enqueue after canceled wait failed")
	}
	if v, err := q.DequeueWait(context.Background(), h); err != nil || v != 7 {
		t.Fatalf("got (%d, %v), want (7, nil)", v, err)
	}
}

// TestCloseDrainExactlyOnce is the close/drain ordering contract under
// concurrency: producers enqueue until Close cuts them off; every
// value whose enqueue reported success is delivered exactly once, and
// every consumer ends with ErrClosed. Runs under -race in CI.
func TestCloseDrainExactlyOnce(t *testing.T) {
	const producers, consumers = 3, 3
	q := newBlockingQueue(t, 10)
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)

	for c := 0; c < consumers; c++ {
		h := register(t, q)
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			var local []uint64
			for {
				v, err := q.DequeueWait(context.Background(), h)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("consumer %d: %v", c, err)
					}
					streams[c] = local
					return
				}
				local = append(local, v)
			}
		}(c, h)
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h := register(t, q)
		pwg.Add(1)
		go func(p int, h *Handle) {
			defer pwg.Done()
			defer q.Unregister(h)
			for s := uint64(0); ; s++ {
				err := q.EnqueueWait(context.Background(), h, uint64(p)<<32|s)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				accepted.Add(1)
			}
		}(p, h)
	}

	time.Sleep(20 * time.Millisecond) // let traffic flow
	q.Close()
	pwg.Wait()
	wg.Wait()

	seen := make(map[uint64]bool)
	for _, s := range streams {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			seen[v] = true
		}
	}
	if uint64(len(seen)) != accepted.Load() {
		t.Fatalf("accepted %d values, delivered %d", accepted.Load(), len(seen))
	}
}

// TestDequeueWaitDeliversBacklogBeforeErrClosed: a closed queue with
// content must hand out every value, in FIFO order for a single
// consumer, before reporting ErrClosed.
func TestDequeueWaitDeliversBacklogBeforeErrClosed(t *testing.T) {
	q := newBlockingQueue(t, 6)
	h := register(t, q)
	defer q.Unregister(h)
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := q.EnqueueWait(context.Background(), h, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	for i := uint64(0); i < n; i++ {
		v, err := q.DequeueWait(context.Background(), h)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("got %d, want %d", v, i)
		}
	}
	if _, err := q.DequeueWait(context.Background(), h); !errors.Is(err, ErrClosed) {
		t.Fatalf("after backlog: %v, want ErrClosed", err)
	}
}

// TestEnqueueWaitFullThenClose: producers blocked on a full queue get
// ErrClosed (not a hang, not a spurious success) when Close arrives
// while consumers never drain.
func TestEnqueueWaitFullThenClose(t *testing.T) {
	q := newBlockingQueue(t, 1)
	h := register(t, q)
	defer q.Unregister(h)
	for i := uint64(0); i < uint64(q.Cap()); i++ {
		q.Enqueue(h, i)
	}
	const blocked = 3
	errc := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		hp := register(t, q)
		go func(hp *Handle) {
			defer q.Unregister(hp)
			errc <- q.EnqueueWait(context.Background(), hp, 100)
		}(hp)
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("blocked producer: %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close stranded a blocked producer")
		}
	}
}
