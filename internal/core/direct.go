package core

// This file implements the direct-value ring (DESIGN.md §11): one SCQ
// ring whose entries carry the payload itself instead of an index into
// a data array. The indirect construction (Figure 2) moves one value
// with FOUR ring operations — fq dequeue + aq enqueue to insert, aq
// dequeue + fq enqueue to remove — because index slots must be rented
// and returned. Storing the value in the entry word eliminates the fq
// ring entirely: one ring operation per insert, one per remove, which
// halves the atomic-RMW count per transfer. This is the SCQP/SCQD
// design of the SCQ lineage the paper builds on; where the original
// uses double-width entries (CAS2: cycle word + data word), we apply
// the repository's standing substitution (DESIGN.md §2) and pack both
// into one 64-bit word:
//
//	[ cycle : 62-valueBits ][ IsSafe : 1 ][ value : valueBits+1 ]
//
// The value field is one bit wider than the declared payload width so
// the two reserved encodings — ⊥ (empty, 2^f−2) and ⊥c (consumed,
// 2^f−1, all field bits set so consume stays a single atomic OR) —
// never collide with a payload. The price of packing is a narrower
// cycle field and hence a tighter MaxOps wrap bound (see
// NewDirectRing); the price of dropping the fq ring is that fullness
// is no longer structural (the indirection construction could never
// observe a full ring) and must be detected, which Enqueue does from
// the Tail/Head distance.
//
// Progress: lock-free, not wait-free. The wCQ slow path needs a Note
// field beside the cycle, and at useful payload widths (48-bit
// pointers, 52-bit integers) the leftover bits cannot hold two cycle
// fields wide enough to matter. The precedent is EnqueueClosable:
// the unbounded construction already trades ring-local wait-freedom
// for a simpler finalization protocol. Callers who need wait-freedom
// keep the indirect Queue; callers who need throughput take this.

import (
	"fmt"
	"sync/atomic"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/bitops"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/pad"
)

// MaxDirectValueBits is the widest payload a direct ring accepts. The
// cap keeps at least 9 cycle bits, bounding MaxOps away from
// toy-small; 52 bits covers x86-64/AArch64 user pointers (48-bit
// virtual addresses) with room to spare.
const MaxDirectValueBits = 52

// DirectRing is a lock-free bounded MPMC ring of direct values in
// [0, 2^valueBits). Capacity n = 2^order; 2n physical entries (the
// half-empty headroom that keeps SCQ livelock-free). Handle-free: no
// per-thread records, so any goroutine may call any method directly.
type DirectRing struct {
	order     uint   // k: n = 1<<k usable entries
	ringOrder uint   // k+1: 2n physical entries
	n         uint64 // capacity
	posMask   uint64 // 2n-1
	valBits   uint   // payload width (field is valBits+1 wide)
	fieldMask uint64 // (1<<(valBits+1))-1
	safeBit   uint64 // IsSafe, bit valBits+1
	cycShift  uint   // valBits+2
	cycMask   uint64
	bottom    uint64 // ⊥  = all field bits but the lowest
	bottomC   uint64 // ⊥c = all field bits set
	thresh3n  int64
	noRemap   bool
	emulFAA   bool
	relaxed   bool
	maxOps    uint64 // enqueue-admission budget; Enqueue fail-stops past it
	hardCap   uint64 // no entry is ever written at a counter >= hardCap

	// gen is the ring's recycle generation, bumped by Reset and
	// ResetThreshold so DirectHandle caches (tail/head windows, deferred
	// threshold decrements) from a previous ring life are dropped rather
	// than leaked into the recycled ring (the lanedir standby pool and
	// the unbounded hop both recycle rings under handles that survive
	// the recycling). It lives on the read-mostly header line with the
	// immutable geometry fields: every handle op loads it, but it is
	// written only inside the recycle quiescence window, so the line
	// stays in shared state and the load is a cache hit, not coherence
	// traffic.
	gen atomic.Uint64

	threshold pad.Int64
	tail      pad.Uint64 // counter; bit 63 is the finalize flag
	head      pad.Uint64 // counter

	// contended counts entry-CAS failures, the per-lane contention
	// signal for the elastic striped governor; see WCQ.contended.
	contended pad.Uint64

	entries []atomic.Uint64
}

// NewDirectRing creates a direct ring of order k (capacity n = 2^k)
// carrying payloads of valueBits bits. Honors opts.NoRemap,
// opts.EmulatedFAA and opts.ConservativeAtomics; the patience and
// handle options do not apply (there is no slow path and there are no
// handles).
//
// Packing the payload beside the cycle narrows the cycle field, so
// wide payloads trade operation budget for directness. Unlike the
// indirect rings — whose 40+-bit cycle fields make wrap a documented
// caller obligation — the direct ring ENFORCES its budget: once the
// tail counter reaches MaxOps() = (2^(61−valueBits)−1)·2^(k+1)
// (capped at 2^61 for narrow payloads, where the 63-bit counter, not
// the cycle field, is the binding constraint), Enqueue permanently
// returns false (as if full), and Reset renews the budget. 52-bit
// payloads at order 16 still clear 6×10^7 operations per ring, and
// the unbounded composition hops to a fresh ring when a ring's budget
// runs out, so its budget is effectively unlimited.
//
// The enforced bound sits at half the cycle space; the other half is a
// guard band between MaxOps and the hard cap (one cycle short of the
// wrap point, where the entCycle comparisons would go ABA). The
// admission check is a load-then-F&A race, so concurrently in-flight
// operations can push the tail counter past MaxOps — by at most one
// ring (≤ n positions) per in-flight call. The guard band therefore
// absorbs 2^(62−valueBits) rings of drift (1024 max-size batches, or
// ~6.7×10^7 scalar enqueues in flight at once, at the widest payload)
// before reaching the hard cap — and the hard cap itself is checked
// AFTER every position reservation, so even past it, positions are
// abandoned rather than written and entry cycles can never wrap.
func NewDirectRing(order, valueBits uint, opts Options) (*DirectRing, error) {
	if order < 1 || order > 24 {
		return nil, fmt.Errorf("core: direct ring order %d out of range [1, 24]", order)
	}
	if valueBits < 1 || valueBits > MaxDirectValueBits {
		return nil, fmt.Errorf("core: direct value width %d out of range [1, %d]", valueBits, MaxDirectValueBits)
	}
	field := valueBits + 1
	r := &DirectRing{
		order:     order,
		ringOrder: order + 1,
		n:         1 << order,
		posMask:   1<<(order+1) - 1,
		valBits:   valueBits,
		fieldMask: 1<<field - 1,
		safeBit:   1 << field,
		cycShift:  field + 1,
		cycMask:   1<<(63-field) - 1,
		bottom:    1<<field - 2,
		bottomC:   1<<field - 1,
		thresh3n:  3*int64(1)<<order - 1,
		noRemap:   opts.NoRemap,
		emulFAA:   opts.EmulatedFAA,
		relaxed:   !opts.ConservativeAtomics,
	}
	if r.cycMask >= uint64(1)<<(62-r.ringOrder) {
		// Narrow payload: the cycle field is so wide that the 63-bit
		// counter (bit 63 is the finalize flag), not the cycle, is the
		// binding constraint — cycMask<<ringOrder would overflow. Cap
		// well below the finalize bit; unreachable in any real run.
		r.hardCap = uint64(1) << 62
		r.maxOps = uint64(1) << 61
	} else {
		r.hardCap = r.cycMask << r.ringOrder
		r.maxOps = (r.cycMask >> 1) << r.ringOrder
	}
	r.entries = make([]atomic.Uint64, 1<<r.ringOrder)
	r.initEmpty()
	return r, nil
}

// MustDirectRing is NewDirectRing that panics on error.
func MustDirectRing(order, valueBits uint, opts Options) *DirectRing {
	r, err := NewDirectRing(order, valueBits, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the usable capacity n.
func (r *DirectRing) N() uint64 { return r.n }

// Order returns the ring order k.
func (r *DirectRing) Order() uint { return r.order }

// ValueBits returns the payload width.
func (r *DirectRing) ValueBits() uint { return r.valBits }

// MaxValue returns the largest storable payload, 2^valueBits − 1.
func (r *DirectRing) MaxValue() uint64 { return 1<<r.valBits - 1 }

// MaxOps returns the enforced cycle-wrap operation budget (DESIGN.md
// §11): once the tail counter reaches it, Enqueue permanently returns
// false instead of risking an ABA on the narrow cycle field. Reset
// renews the budget; the unbounded composition hops instead.
func (r *DirectRing) MaxOps() uint64 { return r.maxOps }

// Footprint returns the live bytes of ring-owned memory; constant.
func (r *DirectRing) Footprint() int64 { return int64(len(r.entries)) * 8 }

// Threshold returns the current dequeue budget (tests; unbounded hop).
func (r *DirectRing) Threshold() int64 { return r.threshold.Load() }

// ResetThreshold restores the budget to 3n−1 (the unbounded layer's
// pre-unlink re-arm, Appendix A line 59). Like Reset it bumps the
// recycle generation: a handle that owes deferred threshold decrements
// from before the re-arm must not flush that stale debt into the
// renewed budget (DESIGN.md §14).
func (r *DirectRing) ResetThreshold() {
	r.gen.Add(1)
	r.threshold.Store(r.thresh3n)
}

// Gen returns the recycle generation (see DirectHandle).
func (r *DirectRing) Gen() uint64 { return r.gen.Load() }

// Head and Tail expose the raw counters for tests and invariants.
func (r *DirectRing) Head() uint64 { return r.head.Load() }

// Tail returns the tail counter (finalize bit stripped).
func (r *DirectRing) Tail() uint64 { return r.tail.Load() &^ atomicx.FinalizeBit }

// ObservedEmpty reports whether the ring was provably empty at some
// instant during the call — the license the wcq coalescing handles
// need to eliminate an enqueue/dequeue pair without touching the ring.
// The load order carries the proof: Head is read first, so at the
// instant of the Tail load the head counter is at least the value
// returned earlier (both counters are monotone), and tail <= head at
// one instant means no value was logically inside the ring then. A
// false negative (racing traffic) is always safe — callers fall back
// to the ring path.
func (r *DirectRing) ObservedEmpty() bool {
	h := r.head.Load()
	return r.tail.Load()&^atomicx.FinalizeBit <= h
}

// Finalize permanently closes the ring for enqueues; dequeues drain
// what remains. An enqueue whose F&A precedes the OR may still land.
func (r *DirectRing) Finalize() { r.tail.Or(atomicx.FinalizeBit) }

// Finalized reports whether the ring is closed for enqueues.
func (r *DirectRing) Finalized() bool { return r.tail.Load()&atomicx.FinalizeBit != 0 }

// ContentionEvents returns the cumulative entry-CAS failure count; see
// WCQ.ContentionEvents.
func (r *DirectRing) ContentionEvents() uint64 { return r.contended.Load() }

// Drained is the Tail ≤ Head witness; see WCQ.Drained for the read
// ordering and the conservativeness argument, which carry over (the
// finalize bit is stripped from the tail read).
func (r *DirectRing) Drained() bool {
	h := r.head.Load()
	return r.tail.Load()&^atomicx.FinalizeBit <= h
}

// pack builds an entry word.
// wcq:noalloc
func (r *DirectRing) pack(cycle uint64, safe bool, field uint64) uint64 {
	w := (cycle&r.cycMask)<<r.cycShift | field
	if safe {
		w |= r.safeBit
	}
	return w
}

// wcq:noalloc
func (r *DirectRing) entCycle(e uint64) uint64 { return e >> r.cycShift }
// wcq:noalloc
func (r *DirectRing) entField(e uint64) uint64 { return e & r.fieldMask }
// wcq:noalloc
func (r *DirectRing) entSafe(e uint64) bool    { return e&r.safeBit != 0 }

// cycleOf maps a Head/Tail counter to its cycle number.
// wcq:noalloc
func (r *DirectRing) cycleOf(counter uint64) uint64 { return (counter >> r.ringOrder) & r.cycMask }

// wcq:noalloc
func (r *DirectRing) remapPos(counter uint64) uint64 {
	if r.noRemap {
		return counter & r.posMask
	}
	return bitops.Remap(counter&r.posMask, r.ringOrder)
}

// initEmpty sets the canonical empty state: Tail = Head = 2n (cycle 1),
// every entry {Cycle: 0, IsSafe: 1, ⊥}, Threshold = −1.
func (r *DirectRing) initEmpty() {
	for i := range r.entries {
		r.entries[i].Store(r.pack(0, true, r.bottom))
	}
	twoN := uint64(1) << r.ringOrder
	r.head.Store(twoN)
	r.tail.Store(twoN)
	r.threshold.Store(-1)
}

// Reset returns the ring to its post-New empty state (finalize bit
// cleared) without reallocating, for pool recycling. Same quiescence
// contract as WCQ.Reset: no operation in flight, none until return —
// the unbounded layer's hazard reclamation provides the window. The
// generation bump invalidates every DirectHandle cache built against
// the previous life: a stale-high tailSeen would otherwise make the
// recycled ring look budget-exhausted or full, and stale deferred
// decrements would leak budget debt into the fresh threshold.
func (r *DirectRing) Reset() {
	r.gen.Add(1)
	r.initEmpty()
}

// loadEntry is the diet-gated entry load; see WCQ.loadEntry for the
// per-branch safety argument, which carries over unchanged (the direct
// entry automaton is the SCQ automaton with a wider "index" field).
// wcq:noalloc
func (r *DirectRing) loadEntry(j uint64) uint64 {
	if r.relaxed {
		// wcq:relaxed-ok every caller is a CAS loop on this entry word (enqAt/deqAt re-validate the value before acting; a stale read costs one retry), per the §11 diet argument
		return atomicx.RelaxedLoad(&r.entries[j])
	}
	return r.entries[j].Load()
}

// thresholdNonNegative stays a real atomic load even under the diet:
// the empty exit has no RMW on its path, so a relaxed load could be
// hoisted out of a caller's poll loop (see WCQ.thresholdNonNegative).
// wcq:noalloc
func (r *DirectRing) thresholdNonNegative() bool {
	return r.threshold.Load() >= 0
}

// rearmThreshold is the enqueue-side budget re-arm: relaxed guard
// load, seq-cst store when the budget actually decayed. See
// WCQ.rearmThreshold for why the store must stay seq-cst (a buffered
// plain store could let a later-starting Dequeue miss a completed
// enqueue — a real-time linearizability violation).
// wcq:noalloc
func (r *DirectRing) rearmThreshold() {
	if r.relaxed {
		if atomicx.RelaxedLoadInt64(r.threshold.Raw()) == r.thresh3n {
			return
		}
	} else if r.threshold.Load() == r.thresh3n {
		return
	}
	if failpoint.Enabled {
		failpoint.Inject(failpoint.DirectThresholdRearm)
	}
	r.threshold.Store(r.thresh3n)
}

// faaTail reserves one tail position, returning the raw word (counter
// plus finalize bit). CAS loop under EmulatedFAA.
// wcq:noalloc
func (r *DirectRing) faaTail(k uint64) uint64 {
	if r.emulFAA {
		for {
			w := r.tail.Load()
			if r.tail.CompareAndSwap(w, w+k) {
				return w
			}
		}
	}
	return r.tail.Add(k) - k
}

// wcq:noalloc
func (r *DirectRing) faaHead(k uint64) uint64 {
	if r.emulFAA {
		for {
			w := r.head.Load()
			if r.head.CompareAndSwap(w, w+k) {
				return w
			}
		}
	}
	return r.head.Add(k) - k
}

// orEntry atomically ORs mask into entry j.
// wcq:noalloc
func (r *DirectRing) orEntry(j uint64, mask uint64) {
	if r.emulFAA {
		for {
			e := r.entries[j].Load()
			if e&mask == mask || r.entries[j].CompareAndSwap(e, e|mask) {
				return
			}
		}
	}
	r.entries[j].Or(mask)
}

// full reports whether the ring held >= n values at a single instant.
// Tail is read FIRST: Head only grows, so by the time Head is read the
// distance can only have shrunk — a >= n verdict therefore certifies a
// moment (the Head read) at which occupancy was genuinely >= n, making
// the full return linearizable. The converse direction is approximate:
// concurrent enqueuers that all pass the check may collectively
// overshoot n by the sum of their in-flight counts (1 per scalar call,
// up to n per batch), which can exceed the 2n physical headroom.
// Safety does not depend on the headroom: positions whose slot is
// still occupied fail enqAt conservatively and the caller retries or
// reports full (the same slack scqd's F&A-based admission has).
// wcq:noalloc
func (r *DirectRing) full(tailCnt uint64) bool {
	h := r.head.Load()
	return tailCnt >= h && tailCnt-h >= r.n
}

// CheckValue panics if v exceeds the ring's payload width — the same
// validation every enqueue entry point performs, exported so deferred-
// publish callers (the wcq coalescing handles) can raise the failure at
// the call that supplied the value instead of at the later flush.
// wcq:noalloc
func (r *DirectRing) CheckValue(v uint64) {
	if v>>r.valBits != 0 {
		// wcq:alloc-ok cold failure path: a caller bug terminates the process here, so the Sprintf boxing never runs on the AllocsPerRun-pinned path
		panic(fmt.Sprintf("core: direct value %#x exceeds %d-bit payload", v, r.valBits))
	}
}

// Enqueue inserts v, returning false when the ring is full, finalized,
// or out of operation budget (tail counter past MaxOps — the op-count
// tantrum; the unbounded layer turns this into a ring hop). Lock-free.
// v must be <= MaxValue (the codec contract); out-of-range values
// panic rather than corrupt the entry encoding.
// wcq:noalloc
func (r *DirectRing) Enqueue(v uint64) bool {
	r.CheckValue(v)
	for {
		w := r.tail.Load()
		if w&atomicx.FinalizeBit != 0 {
			return false
		}
		if w >= r.maxOps {
			return false // budget exhausted: fail-stop before the cycle wraps
		}
		if r.full(w) {
			return false
		}
		if failpoint.Enabled {
			// Admission check passed, tail F&A pending: the racy
			// load-then-F&A window behind the cycle-wrap budget's
			// drift bound.
			failpoint.Inject(failpoint.DirectEnqAdmitted)
		}
		w = r.faaTail(1)
		if w&atomicx.FinalizeBit != 0 {
			return false
		}
		if failpoint.Enabled {
			// Position reserved, entry CAS pending: the
			// abandoned-position window (PR 5 review bug class).
			failpoint.Inject(failpoint.DirectEnqReserved)
		}
		if r.enqAt(w, v) {
			return true
		}
		// Lost the slot to a dequeuer's cycle stamp; re-check
		// fullness/finalization and retry with a fresh position.
	}
}

// enqAt is the try_enq body at reserved tail counter t. Failure leaves
// the entry untouched (abandoned reservations look like failed scalar
// attempts — the batched path's safety hook). The hardCap check is the
// authoritative wrap guard: whatever admission drift pushed the
// counter there, a position at or past the cap is abandoned, never
// written, so entry cycles cannot wrap.
// wcq:noalloc
func (r *DirectRing) enqAt(t, v uint64) bool {
	if t >= r.hardCap {
		return false
	}
	j := r.remapPos(t)
	tcyc := r.cycleOf(t)
	for {
		e := r.loadEntry(j)
		f := r.entField(e)
		if r.entCycle(e) < tcyc &&
			(r.entSafe(e) || r.head.Load() <= t) &&
			(f == r.bottom || f == r.bottomC) {
			if !r.entries[j].CompareAndSwap(e, r.pack(tcyc, true, v)) {
				r.contended.Add(1)
				continue // entry changed; re-evaluate
			}
			r.rearmThreshold()
			return true
		}
		return false
	}
}

// Dequeue removes the oldest value, or returns ok=false when empty.
// Lock-free.
// wcq:noalloc
func (r *DirectRing) Dequeue() (v uint64, ok bool) {
	if !r.thresholdNonNegative() {
		return 0, false // empty fast-exit
	}
	for {
		h := r.faaHead(1)
		if failpoint.Enabled {
			failpoint.Inject(failpoint.DirectDeqReserved)
		}
		v, st := r.deqAt(h, false)
		switch st {
		case DeqOK:
			return v, true
		case DeqEmpty:
			return 0, false
		}
	}
}

// deqAt is the try_deq body at reserved head counter h. A reserved
// position must always be processed (the slot is stamped with our
// cycle so an older producer cannot strand a value there) — except at
// or past hardCap, where no producer can ever have written (enqAt's
// authoritative guard), so skipping the stamp strands nothing and
// keeps wrapped cycles out of the entries. deferThreshold is the
// batched diet mode; see WCQ.deqAtFast.
// wcq:noalloc
func (r *DirectRing) deqAt(h uint64, deferThreshold bool) (v uint64, st DeqStatus) {
	if h >= r.hardCap {
		return 0, DeqEmpty
	}
	j := r.remapPos(h)
	hcyc := r.cycleOf(h)
	for {
		e := r.loadEntry(j)
		f := r.entField(e)
		if r.entCycle(e) == hcyc {
			// Producer arrived first: consume by setting every field
			// bit (⊥c) with one atomic OR.
			r.orEntry(j, r.bottomC)
			return f, DeqOK
		}
		var n uint64
		if f == r.bottom || f == r.bottomC {
			n = r.pack(hcyc, r.entSafe(e), r.bottom)
		} else {
			// Old-cycle value: clear IsSafe so the producer's late
			// competitor cannot reuse the slot.
			n = r.pack(r.entCycle(e), false, f)
		}
		if r.entCycle(e) < hcyc {
			if !r.entries[j].CompareAndSwap(e, n) {
				r.contended.Add(1)
				continue
			}
		}
		// Empty detection.
		t := r.tail.Load() &^ atomicx.FinalizeBit
		if t <= h+1 {
			r.catchup(t, h+1)
			r.threshold.Add(-1)
			return 0, DeqEmpty
		}
		if deferThreshold {
			return 0, DeqRetry
		}
		if r.threshold.Add(-1) <= -1 {
			// The 3n−1 budget licenses an empty conclusion only in the
			// SCQ setting, where reserved tail positions are never
			// abandoned AHEAD of Head (indirect-ring enqueuers fail a
			// position only after Head has passed it). The direct
			// ring's racy full() admission breaks that premise: an
			// enqueuer can reserve past n occupancy, find the slot
			// still holding an old-cycle value, and abandon a position
			// Head has yet to visit. A run of ≥ 3n such positions would
			// decay the budget and strand (or, through the unbounded
			// layer's unlink, drop) a value sitting above the run — so
			// a decayed budget is re-verified against the precise
			// Tail/Head distance: positions still ahead mean the decay
			// came from an abandoned run, not emptiness; re-arm and
			// keep walking. Bounded: Head is monotonic and every retry
			// advances it toward the Tail observed here, so the walk
			// terminates (lock-free, which is all the direct ring
			// claims).
			if failpoint.Enabled {
				// Budget hit the floor, re-verify pending: the decayed-
				// budget window the PR 5 fix closes.
				failpoint.Inject(failpoint.DirectBudgetDecay)
			}
			t := r.tail.Load() &^ atomicx.FinalizeBit
			if t > h+1 {
				r.threshold.Store(r.thresh3n)
				return 0, DeqRetry
			}
			return 0, DeqEmpty
		}
		return 0, DeqRetry
	}
}

// catchup advances Tail's counter to head when dequeuers have overrun
// it, preserving the finalize bit. Bounded (lock-freedom only needs
// someone to succeed).
// wcq:noalloc
func (r *DirectRing) catchup(tail, head uint64) {
	for i := 0; i < maxCatchup; i++ {
		w := r.tail.Load()
		cnt := w &^ atomicx.FinalizeBit
		if cnt != tail {
			tail = cnt
			head = r.head.Load()
			if tail >= head {
				return
			}
			continue
		}
		if r.tail.CompareAndSwap(w, w&atomicx.FinalizeBit|head) {
			return
		}
	}
}

// EnqueueBatch inserts up to len(vs) values in order, reserving the
// tail positions with one F&A, and returns how many landed (fewer only
// when the ring fills, is finalized, or runs out of operation budget
// mid-batch). The reservation is clamped to free space computed from a
// tail/head snapshot; the clamp bounds a SINGLE batch, but N
// concurrent batches can each observe the same free space and
// collectively reserve up to the sum of their clamps (≤ N·n) past it —
// the overshoot is bounded by the concurrent batch totals, not by n.
// Safety never depends on that bound: overshot positions fail enqAt
// conservatively and stragglers fall back to scalar enqueues, which
// reserve later positions and so preserve intra-batch FIFO order.
// wcq:noalloc
func (r *DirectRing) EnqueueBatch(vs []uint64) int {
	if len(vs) == 0 {
		return 0
	}
	if len(vs) == 1 {
		if r.Enqueue(vs[0]) {
			return 1
		}
		return 0
	}
	for _, v := range vs {
		r.CheckValue(v)
	}
	w := r.tail.Load()
	if w&atomicx.FinalizeBit != 0 {
		return 0
	}
	if w >= r.maxOps {
		return 0 // budget exhausted: fail-stop before the cycle wraps
	}
	h := r.head.Load()
	free := r.n
	if w >= h {
		used := w - h
		if used >= r.n {
			return 0 // full
		}
		free = r.n - used
	}
	k := uint64(len(vs))
	if k > free {
		k = free
	}
	w = r.faaTail(k)
	if w&atomicx.FinalizeBit != 0 {
		return 0
	}
	t0 := w
	for i := uint64(0); i < k; i++ {
		if !r.enqAt(t0+i, vs[i]) {
			// Straggler: the scalar path reserves fresh, later
			// positions, so the rest must follow it to keep order.
			n := int(i)
			for _, rest := range vs[i:k] {
				if !r.Enqueue(rest) {
					return n
				}
				n++
			}
			return n
		}
	}
	return int(k)
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, reserving the head positions with one F&A, and returns how
// many were dequeued. Reserved positions lost to races run in
// deferred-threshold mode (DESIGN.md §11) and are recovered through
// scalar dequeues past the reservation, keeping out[] ordered.
// wcq:noalloc
func (r *DirectRing) DequeueBatch(out []uint64) int {
	if len(out) == 0 {
		return 0
	}
	if !r.thresholdNonNegative() {
		return 0
	}
	if len(out) == 1 {
		v, ok := r.Dequeue()
		if !ok {
			return 0
		}
		out[0] = v
		return 1
	}
	k := uint64(len(out))
	h0 := r.faaHead(k)
	n, retries := 0, 0
	for i := uint64(0); i < k; i++ {
		v, st := r.deqAt(h0+i, r.relaxed)
		switch st {
		case DeqOK:
			out[n] = v
			n++
		case DeqRetry:
			retries++
		}
	}
	for ; retries > 0 && n < len(out); retries-- {
		v, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = v
		n++
	}
	return n
}
