package core

// This file puts the direct ring's hot path on a handle-local diet
// (DESIGN.md §14). The handle-free Enqueue/Dequeue pay three shared
// loads per pair that the contract-free FAA baseline does not: the
// enqueuer's Tail pre-read and full()'s Head read, and the dequeuer's
// threshold fast-exit read. All three answer questions a handle can
// usually answer from values it has already seen:
//
//   - tailSeen is a monotone under-estimate of Tail — only values the
//     tail counter actually held (the handle's own F&A results plus
//     one, or fresh Tail loads). Because Tail is monotone,
//     tailSeen >= maxOps is a CONCLUSIVE budget verdict with no load,
//     and an occupancy bound computed from tailSeen can only
//     over-state the distance Tail-Head, never under-state it.
//   - headSeen is the same under-estimate of Head (own dequeue F&A
//     results plus one, or fresh Head loads on a full-suspect).
//
// The full pre-check becomes: suspect full only when
// tailSeen-headSeen >= n; since headSeen <= Head, the cached distance
// over-estimates occupancy, so the suspect fires at or before real
// occupancy n — the handle never admits past n without a fresh Head
// read confirming occupancy < n, and a confirmed verdict
// (tailSeen-Head >= n with Tail >= tailSeen) certifies a real instant
// of >= n occupancy, so the full return stays linearizable. The empty
// fast-exit becomes: skip the shared threshold read entirely while
// headSeen < tailSeen (an insertion the handle itself witnessed has
// not provably been consumed); the skip is sound because the fast-exit
// is a pure optimization — deqAt's post-F&A checks stay authoritative.
// After any DeqEmpty the window closes by construction (the empty
// detection observed Tail <= h+1 = headSeen), restoring the cheap
// threshold poll for empty-spinning consumers.
//
// Threshold decrements are amortized: a walk miss with values still
// ahead owes one decrement, but instead of an immediate Add(-1) the
// handle banks it and flushes the batch as one Add(-d) when the batch
// reaches deferCap or when an eager implementation would have reached
// the floor now (threshold - deferred <= -1). Deferral only leaves the
// shared threshold HIGHER than the eager protocol would — it can delay
// the empty fast-exit (costing bounded extra F&A walks, repaired by
// catchup), never hasten it — so it cannot introduce a false empty.
// Every flush that does reach the floor runs the same precise
// Tail/Head re-verify as the PR 5 decayed-budget fix before concluding
// anything, and every DeqEmpty this file returns rests on a precise
// Tail <= h+1 observation. See DESIGN.md §14 for the staleness-bound
// argument.

import (
	"wcqueue/internal/atomicx"
	"wcqueue/internal/failpoint"
)

// maxDeferCap bounds a handle's banked threshold decrements. 64 keeps
// the per-handle staleness far below the 3n-1 budget at useful orders
// while amortizing the Add to under 2% of walk misses.
const maxDeferCap = 64

// DirectHandle caches a single caller's view of one DirectRing: the
// head/tail windows and the deferred threshold decrements above. It is
// NOT safe for concurrent use; each goroutine takes its own (the wcq
// layer's Register does). A handle never makes the ring less safe —
// every cached conclusion is either conservative or re-verified against
// the shared counters — so handle-full and handle-free calls mix
// freely on one ring.
type DirectHandle struct {
	r *DirectRing
	// gen mirrors the ring's recycle generation; on mismatch (Reset or
	// ResetThreshold happened) every cached field below is dropped.
	gen      uint64
	tailSeen uint64 // monotone under-estimate of the tail counter
	headSeen uint64 // monotone under-estimate of the head counter
	deferred int64  // threshold decrements owed but not yet flushed
	deferCap int64
}

// NewHandle returns a fresh handle on r. The deferral cap is
// min(64, max(1, n/4)): at tiny orders deferral degenerates to the
// eager protocol rather than letting one handle bank a meaningful
// fraction of the 3n-1 budget.
func (r *DirectRing) NewHandle() *DirectHandle {
	dc := int64(r.n / 4)
	if dc < 1 {
		dc = 1
	}
	if dc > maxDeferCap {
		dc = maxDeferCap
	}
	return &DirectHandle{r: r, gen: r.gen.Load(), deferCap: dc}
}

// Ring returns the ring this handle operates on.
func (h *DirectHandle) Ring() *DirectRing { return h.r }

// Rebind points the handle at a different ring (lane migration, ring
// hop), dropping every cached field. Pending deferred decrements are
// abandoned, which is sound: dropping debt leaves the old ring's
// threshold higher than eager, never lower.
func (h *DirectHandle) Rebind(r *DirectRing) {
	h.r = r
	h.gen = r.gen.Load()
	h.tailSeen, h.headSeen, h.deferred = 0, 0, 0
}

// sync drops the caches when the ring was recycled since the last op.
// wcq:noalloc
func (h *DirectHandle) sync() {
	if g := h.r.gen.Load(); g != h.gen {
		h.gen = g
		h.tailSeen, h.headSeen, h.deferred = 0, 0, 0
	}
}

// Deferred returns the banked threshold decrements (tests).
func (h *DirectHandle) Deferred() int64 { return h.deferred }

// DeferCap returns the flush boundary k (tests).
func (h *DirectHandle) DeferCap() int64 { return h.deferCap }

// Enqueue inserts v through the cached-window fast path: no Tail
// pre-read, no Head read unless the cached window suspects the ring is
// full. Same contract as DirectRing.Enqueue, with one refinement: past
// the MaxOps budget the reserved position is abandoned (enqAt's
// hardCap discipline) rather than written, and the cached tailSeen
// then short-circuits every later call with zero shared loads — a
// handle burns at most one guard-band position, ever.
// wcq:noalloc
func (h *DirectHandle) Enqueue(v uint64) bool {
	r := h.r
	r.CheckValue(v)
	h.sync()
	if h.tailSeen == 0 {
		// Never-observed window (the counters start at 2n and only
		// grow, so 0 is unreachable as a real observation). Seed it
		// with one authoritative Tail read: without it the first op
		// could pass the full-suspect check blind and admit into a
		// full ring without ever loading Head — the handle-free path
		// always pre-reads, and a fresh handle must not be laxer.
		h.tailSeen = r.tail.Load() &^ atomicx.FinalizeBit
	}
	for {
		if ts := h.tailSeen; ts >= h.headSeen && ts-h.headSeen >= r.n {
			// Full-suspect. headSeen <= Head means the cached distance
			// over-estimates occupancy, so refresh before concluding.
			he := r.head.Load()
			h.headSeen = he
			if ts >= he && ts-he >= r.n {
				// Tail >= tailSeen >= Head+n at the instant of the Head
				// read: genuinely full, linearized there.
				return false
			}
		}
		if h.tailSeen >= r.maxOps {
			return false // conclusive: Tail once held tailSeen and is monotone
		}
		if failpoint.Enabled {
			failpoint.Inject(failpoint.DirectEnqAdmitted)
		}
		w := r.faaTail(1)
		cnt := w &^ atomicx.FinalizeBit
		h.tailSeen = cnt + 1
		if w&atomicx.FinalizeBit != 0 {
			return false
		}
		if cnt >= r.maxOps {
			return false // budget exhausted: abandon the position, never write
		}
		if failpoint.Enabled {
			failpoint.Inject(failpoint.DirectEnqReserved)
		}
		if r.enqAt(cnt, v) {
			return true
		}
		// Lost the slot to a dequeuer's cycle stamp; the grown tailSeen
		// re-runs the full-suspect check and we retry with a fresh
		// position, exactly like the handle-free loop.
	}
}

// Dequeue removes the oldest value through the cached-window fast
// path: while headSeen < tailSeen the shared threshold fast-exit read
// is skipped outright. Same contract as DirectRing.Dequeue.
// wcq:noalloc
func (h *DirectHandle) Dequeue() (v uint64, ok bool) {
	r := h.r
	h.sync()
	if h.headSeen >= h.tailSeen {
		// Closed window: nothing provably inserted since our last
		// observation, so fall back on the shared empty fast-exit.
		// Flush banked decrements first so the budget read is precise
		// at the decision point.
		h.flushDeferred()
		if !r.thresholdNonNegative() {
			return 0, false
		}
		// Budget says non-empty: one Tail read re-opens the window so a
		// draining run (pure consumer) pays it once per window, not per
		// op.
		if t := r.tail.Load() &^ atomicx.FinalizeBit; t > h.tailSeen {
			h.tailSeen = t
		}
	}
	for {
		hd := r.faaHead(1)
		h.headSeen = hd + 1
		if failpoint.Enabled {
			failpoint.Inject(failpoint.DirectDeqReserved)
		}
		v, st := h.deqAt(hd)
		switch st {
		case DeqOK:
			return v, true
		case DeqEmpty:
			return 0, false
		}
	}
}

// flushDeferred settles the banked decrements in one Add. A flush that
// reaches the floor runs the decayed-budget re-verify (the PR 5 fix):
// values still ahead of Head mean the decay is stale debt, not
// emptiness, so the budget is re-armed rather than left negative — the
// threshold is never LEFT below zero while values are provably ahead,
// which is the invariant the thresholdNonNegative fast-exit rests on.
// wcq:noalloc
func (h *DirectHandle) flushDeferred() {
	d := h.deferred
	if d == 0 {
		return
	}
	h.deferred = 0
	r := h.r
	if r.threshold.Add(-d) <= -1 {
		t := r.tail.Load() &^ atomicx.FinalizeBit
		if t > r.head.Load() {
			r.threshold.Store(r.thresh3n)
		}
	}
}

// deqAt is deqAt with the handle's window refresh and amortized
// threshold maintenance folded in. Reserved-position discipline,
// entry automaton and empty detection are identical to the ring's.
// wcq:noalloc
func (h *DirectHandle) deqAt(hd uint64) (uint64, DeqStatus) {
	r := h.r
	if hd >= r.hardCap {
		return 0, DeqEmpty
	}
	j := r.remapPos(hd)
	hcyc := r.cycleOf(hd)
	for {
		e := r.loadEntry(j)
		f := r.entField(e)
		if r.entCycle(e) == hcyc {
			r.orEntry(j, r.bottomC)
			return f, DeqOK
		}
		var nw uint64
		if f == r.bottom || f == r.bottomC {
			nw = r.pack(hcyc, r.entSafe(e), r.bottom)
		} else {
			nw = r.pack(r.entCycle(e), false, f)
		}
		if r.entCycle(e) < hcyc {
			if !r.entries[j].CompareAndSwap(e, nw) {
				r.contended.Add(1)
				continue
			}
		}
		// Empty detection — the Tail read it needs doubles as a free
		// window refresh.
		t := r.tail.Load() &^ atomicx.FinalizeBit
		if t > h.tailSeen {
			h.tailSeen = t
		}
		if t <= hd+1 {
			r.catchup(t, hd+1)
			// Precise empty: settle this walk's decrement together with
			// the banked ones. No re-verify needed — Tail <= hd+1 was
			// observed just now, so the empty conclusion stands on the
			// counters, not on the budget.
			r.threshold.Add(-(h.deferred + 1))
			h.deferred = 0
			return 0, DeqEmpty
		}
		// Miss with values still ahead: owe one decrement. Bank it, and
		// flush when the batch reaches deferCap or when the eager
		// protocol would be at the floor now.
		h.deferred++
		if h.deferred >= h.deferCap || r.threshold.Load()-h.deferred <= -1 {
			d := h.deferred
			h.deferred = 0
			if r.threshold.Add(-d) <= -1 {
				if failpoint.Enabled {
					failpoint.Inject(failpoint.DirectBudgetDecay)
				}
				t := r.tail.Load() &^ atomicx.FinalizeBit
				if t > hd+1 {
					r.threshold.Store(r.thresh3n)
					return 0, DeqRetry
				}
				return 0, DeqEmpty
			}
		}
		return 0, DeqRetry
	}
}
