package core

import (
	"runtime"
	"sync"
	"testing"
)

func TestDirectHandleSequentialFIFO(t *testing.T) {
	r := newDirect(t, 6, 52)
	h := r.NewHandle()
	const n = 1000 // spans many cycles of the 64-capacity ring
	next, out := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		for j := 0; j < (i%5)+1; j++ {
			if h.Enqueue(next) {
				next++
			}
		}
		for j := 0; j < (i%3)+1 && out < next; j++ {
			v, ok := h.Dequeue()
			if !ok {
				t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
			}
			if v != out {
				t.Fatalf("iter %d: got %d want %d", i, v, out)
			}
			out++
		}
	}
	for out < next {
		v, ok := h.Dequeue()
		if !ok || v != out {
			t.Fatalf("drain: got (%d,%v) want %d", v, ok, out)
		}
		out++
	}
	if v, ok := h.Dequeue(); ok {
		t.Fatalf("drained ring yielded %d", v)
	}
}

func TestDirectHandleFullDetection(t *testing.T) {
	r := newDirect(t, 3, 16) // capacity 8
	h := r.NewHandle()
	for i := uint64(0); i < r.N(); i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d of %d rejected", i, r.N())
		}
	}
	if h.Enqueue(99) {
		t.Fatal("enqueue beyond capacity accepted")
	}
	// The cached window must not over-report full either: drain one,
	// and the next enqueue has to land after refreshing headSeen.
	if v, ok := h.Dequeue(); !ok || v != 0 {
		t.Fatalf("dequeue got (%d,%v)", v, ok)
	}
	if !h.Enqueue(8) {
		t.Fatal("enqueue after drain rejected")
	}
	if h.Enqueue(9) {
		t.Fatal("refill overshot capacity")
	}
	for i := uint64(1); i <= 8; i++ {
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("drain got (%d,%v) want %d", v, ok, i)
		}
	}
}

func TestDirectHandleMixesWithHandleFreeOps(t *testing.T) {
	// Handle-full and handle-free calls on one ring must interleave
	// freely: the handle's caches are under-estimates, never promises.
	r := newDirect(t, 4, 32)
	h := r.NewHandle()
	for i := uint64(0); i < 6; i++ {
		if i%2 == 0 {
			if !h.Enqueue(i) {
				t.Fatalf("handle enqueue %d rejected", i)
			}
		} else if !r.Enqueue(i) {
			t.Fatalf("ring enqueue %d rejected", i)
		}
	}
	for i := uint64(0); i < 6; i++ {
		var v uint64
		var ok bool
		if i%2 == 1 {
			v, ok = h.Dequeue()
		} else {
			v, ok = r.Dequeue()
		}
		if !ok || v != i {
			t.Fatalf("dequeue %d got (%d,%v)", i, v, ok)
		}
	}
}

func TestDirectHandleEmptyPollAfterDeqEmpty(t *testing.T) {
	// After a DeqEmpty the window must close (headSeen >= tailSeen) so
	// empty-spinning consumers fall back to the cheap threshold
	// fast-exit instead of burning head positions with F&As.
	r := newDirect(t, 4, 32)
	h := r.NewHandle()
	if !h.Enqueue(1) {
		t.Fatal("enqueue rejected")
	}
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("dequeue got (%d,%v)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty ring yielded a value")
	}
	if h.headSeen < h.tailSeen {
		t.Fatalf("window still open after DeqEmpty: headSeen=%d tailSeen=%d", h.headSeen, h.tailSeen)
	}
	head := r.Head()
	for i := 0; i < 100; i++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatal("empty ring yielded a value")
		}
	}
	// Threshold decays below zero after the first full walk; from there
	// every poll must exit on the threshold read without reserving.
	if got := r.Head(); got > head+uint64(3*r.N()) {
		t.Fatalf("empty polls burned %d head positions (threshold fast-exit not restored)", got-head)
	}
	// An enqueue re-arms the budget and the value is immediately
	// observable through the same handle.
	if !h.Enqueue(9) {
		t.Fatal("enqueue rejected")
	}
	if v, ok := h.Dequeue(); !ok || v != 9 {
		t.Fatalf("dequeue after decay got (%d,%v)", v, ok)
	}
}

// TestDirectHandleDeferredFlushNoFalseEmpty is the ISSUE 8 flush-
// boundary regression: a near-empty ring plus a handle holding
// deferCap-1 banked decrements — the worst staleness the protocol
// allows — must still deliver the remaining value, and the flush that
// reaches the floor must re-arm the budget (values are ahead, so the
// decay is stale debt, not emptiness).
func TestDirectHandleDeferredFlushNoFalseEmpty(t *testing.T) {
	r := newDirect(t, 8, 32) // n=256: deferCap = 64
	h := r.NewHandle()
	if h.DeferCap() != maxDeferCap {
		t.Fatalf("deferCap = %d, want %d", h.DeferCap(), maxDeferCap)
	}
	if !r.Enqueue(7) {
		t.Fatal("enqueue rejected")
	}
	// Decay the shared budget to the brink, as a storm of failed walks
	// would, then hand the handle the maximum banked debt.
	r.threshold.Store(1)
	h.deferred = h.deferCap - 1
	// The closed-window poll path flushes first: Add(-(k-1)) drives the
	// budget to the floor, and the re-verify must re-arm it because a
	// value is still ahead — then the dequeue must find that value.
	h.headSeen, h.tailSeen = 1, 1 // force the closed-window path
	if v, ok := h.Dequeue(); !ok || v != 7 {
		t.Fatalf("dequeue with banked debt got (%d,%v), want (7,true)", v, ok)
	}
	if h.Deferred() != 0 {
		t.Fatalf("deferred = %d after flush", h.Deferred())
	}
	if th := r.Threshold(); th < 0 {
		t.Fatalf("threshold left at %d with the flush re-verify owed", th)
	}
}

func TestDirectHandleDeferredFlushOnGenuinelyEmpty(t *testing.T) {
	// The dual case: banked debt flushed over an empty ring must leave
	// the fast-exit armed (threshold below zero) without wedging the
	// ring — the next enqueue re-arms and is observable.
	r := newDirect(t, 8, 32)
	h := r.NewHandle()
	r.threshold.Store(1)
	h.deferred = 5
	h.headSeen, h.tailSeen = 1, 1
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty ring yielded a value")
	}
	if h.Deferred() != 0 {
		t.Fatalf("deferred = %d after flush", h.Deferred())
	}
	if !r.Enqueue(3) {
		t.Fatal("enqueue rejected")
	}
	if v, ok := h.Dequeue(); !ok || v != 3 {
		t.Fatalf("dequeue got (%d,%v), want (3,true)", v, ok)
	}
}

// TestDirectHandleRecycleDropsDeferred is the ISSUE 8 satellite-6
// regression: Reset and ResetThreshold bump the ring generation, so a
// handle that owes decrements from the previous ring life must drop
// that debt instead of flushing it into the recycled ring's fresh
// budget (the lanedir standby pool recycles rings under live handles).
func TestDirectHandleRecycleDropsDeferred(t *testing.T) {
	r := newDirect(t, 8, 32)
	h := r.NewHandle()

	// ResetThreshold: stale debt must not dent the renewed 3n-1 budget.
	h.deferred = 40
	h.headSeen, h.tailSeen = 1, 1
	r.ResetThreshold()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty ring yielded a value")
	}
	// The poll's own walk costs exactly one decrement; the 40 banked
	// ones belonged to the previous generation and must be gone.
	if th, want := r.Threshold(), r.thresh3n-1; th != want {
		t.Fatalf("threshold = %d after recycled poll, want %d (stale debt leaked)", th, want)
	}

	// Reset: stale-high windows must not make the fresh ring look full
	// or budget-exhausted, and stale debt must not survive.
	for i := uint64(0); i < r.N(); i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	h.deferred = 40
	r.Reset()
	if h.Deferred() != 40 {
		t.Fatal("test setup: deferred cleared too early")
	}
	if !h.Enqueue(77) {
		t.Fatal("enqueue on recycled ring rejected (stale window leaked)")
	}
	if h.Deferred() != 0 {
		t.Fatalf("deferred = %d after recycle sync", h.Deferred())
	}
	if v, ok := h.Dequeue(); !ok || v != 77 {
		t.Fatalf("dequeue on recycled ring got (%d,%v), want (77,true)", v, ok)
	}
}

func TestDirectHandleOpBudgetFailStop(t *testing.T) {
	// order 1, 52-bit payload: 10 cycle bits, maxOps = 512*4 = 2048.
	r := newDirect(t, 1, 52)
	h := r.NewHandle()
	budget := r.MaxOps()
	if budget == 0 || budget > 1<<20 {
		t.Fatalf("test wants a small budget, got %d", budget)
	}
	moved := uint64(0)
	for {
		if !h.Enqueue(moved) {
			break
		}
		if v, ok := h.Dequeue(); !ok || v != moved {
			t.Fatalf("pairwise got (%d,%v) want %d", v, ok, moved)
		}
		moved++
	}
	if moved < budget/2-uint64(r.N()) {
		t.Fatalf("fail-stop fired early: %d pairs of ~%d budget", moved, budget)
	}
	// Exhausted: the cached tailSeen short-circuits every later call.
	if h.tailSeen < r.maxOps {
		t.Fatalf("tailSeen = %d below maxOps %d after fail-stop", h.tailSeen, r.maxOps)
	}
	for i := 0; i < 100; i++ {
		if h.Enqueue(1) {
			t.Fatal("enqueue accepted past the op budget")
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("drained ring yielded a value")
	}
	// Reset renews the budget; the generation bump must clear the
	// handle's conclusive fail-stop.
	r.Reset()
	if !h.Enqueue(5) {
		t.Fatal("enqueue after Reset rejected (stale budget verdict leaked)")
	}
	if v, ok := h.Dequeue(); !ok || v != 5 {
		t.Fatalf("dequeue after Reset got (%d,%v)", v, ok)
	}
}

func TestDirectHandleFinalize(t *testing.T) {
	r := newDirect(t, 4, 32)
	h := r.NewHandle()
	for i := uint64(0); i < 3; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	r.Finalize()
	if h.Enqueue(99) {
		t.Fatal("enqueue accepted on finalized ring")
	}
	for i := uint64(0); i < 3; i++ {
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("drain got (%d,%v) want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("finalized empty ring yielded a value")
	}
}

func TestDirectHandleRebind(t *testing.T) {
	a := newDirect(t, 3, 32)
	b := newDirect(t, 3, 32)
	h := a.NewHandle()
	for i := uint64(0); i < a.N(); i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	h.deferred = 2
	h.Rebind(b)
	if h.Ring() != b || h.Deferred() != 0 || h.tailSeen != 0 {
		t.Fatal("Rebind did not drop cached state")
	}
	if !h.Enqueue(42) {
		t.Fatal("enqueue on rebound ring rejected")
	}
	if v, ok := h.Dequeue(); !ok || v != 42 {
		t.Fatalf("dequeue on rebound ring got (%d,%v)", v, ok)
	}
}

// TestDirectHandleMPMC moves values through handle-owning producers and
// consumers concurrently and checks the exact multiset plus
// per-producer FIFO — the windows and the amortized threshold must not
// lose, duplicate, or reorder values under contention. Mirrors
// TestDirectRingMPMC's exact-count drain (every consumer retries until
// its share arrives, so transient empties cannot end the run early).
func TestDirectHandleMPMC(t *testing.T) {
	r := newDirect(t, 8, 52)
	const producers, consumers = 4, 4
	per := uint64(20000)
	if testing.Short() {
		per = 2000
	}
	total := producers * per
	var mu sync.Mutex
	seen := make(map[uint64]bool, total)
	lastSeq := make([][]int64, consumers)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		lastSeq[c] = make([]int64, producers)
		for p := range lastSeq[c] {
			lastSeq[c][p] = -1
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := r.NewHandle()
			count := total / consumers
			local := make([]uint64, 0, count)
			for uint64(len(local)) < count {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				p, seq := int(v>>32), int64(v&0xFFFFFFFF)
				if seen[v] {
					t.Errorf("duplicate value %#x", v)
				}
				seen[v] = true
				if seq <= lastSeq[c][p] {
					t.Errorf("consumer %d: producer %d went backwards (%d after %d)", c, p, seq, lastSeq[c][p])
				}
				lastSeq[c][p] = seq
			}
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := r.NewHandle()
			for s := uint64(0); s < per; s++ {
				for !h.Enqueue(uint64(p)<<32 | s) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	if uint64(len(seen)) != total {
		t.Fatalf("saw %d distinct values, want %d", len(seen), total)
	}
}
