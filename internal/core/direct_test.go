package core

import (
	"runtime"
	"sync"
	"testing"
)

func newDirect(t *testing.T, order, bits uint) *DirectRing {
	t.Helper()
	r, err := NewDirectRing(order, bits, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDirectRingParamValidation(t *testing.T) {
	if _, err := NewDirectRing(0, 32, Options{}); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := NewDirectRing(25, 32, Options{}); err == nil {
		t.Fatal("order 25 accepted")
	}
	if _, err := NewDirectRing(4, 0, Options{}); err == nil {
		t.Fatal("0-bit payload accepted")
	}
	if _, err := NewDirectRing(4, MaxDirectValueBits+1, Options{}); err == nil {
		t.Fatal("over-wide payload accepted")
	}
	r := newDirect(t, 4, MaxDirectValueBits)
	if r.MaxValue() != 1<<MaxDirectValueBits-1 {
		t.Fatalf("MaxValue = %#x", r.MaxValue())
	}
	if r.MaxOps() == 0 {
		t.Fatal("MaxOps = 0")
	}
}

func TestDirectRingSequentialFIFO(t *testing.T) {
	r := newDirect(t, 6, 52)
	const n = 1000 // spans many cycles of the 64-capacity ring
	next, out := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		for j := 0; j < (i%5)+1; j++ {
			if r.Enqueue(next) {
				next++
			}
		}
		for j := 0; j < (i%3)+1 && out < next; j++ {
			v, ok := r.Dequeue()
			if !ok {
				t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
			}
			if v != out {
				t.Fatalf("iter %d: got %d want %d", i, v, out)
			}
			out++
		}
	}
	for out < next {
		v, ok := r.Dequeue()
		if !ok || v != out {
			t.Fatalf("drain: got (%d,%v) want %d", v, ok, out)
		}
		out++
	}
	if v, ok := r.Dequeue(); ok {
		t.Fatalf("drained ring yielded %d", v)
	}
}

func TestDirectRingFullDetection(t *testing.T) {
	r := newDirect(t, 3, 16) // capacity 8
	for i := uint64(0); i < r.N(); i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d of %d rejected", i, r.N())
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue beyond capacity accepted")
	}
	// Drain one, enqueue one: capacity is reusable.
	if v, ok := r.Dequeue(); !ok || v != 0 {
		t.Fatalf("dequeue got (%d,%v)", v, ok)
	}
	if !r.Enqueue(8) {
		t.Fatal("enqueue after drain rejected")
	}
	if r.Enqueue(9) {
		t.Fatal("refill overshot capacity")
	}
	for i := uint64(1); i <= 8; i++ {
		if v, ok := r.Dequeue(); !ok || v != i {
			t.Fatalf("drain got (%d,%v) want %d", v, ok, i)
		}
	}
}

func TestDirectRingEmptyAfterThresholdDecay(t *testing.T) {
	// Regression guard for the re-arm contract: decay the threshold
	// with empty dequeues, then enqueue — the value must be observable
	// immediately (a skipped re-arm would strand it behind the
	// threshold<0 fast-exit).
	r := newDirect(t, 3, 16)
	for i := 0; i < 100; i++ {
		if _, ok := r.Dequeue(); ok {
			t.Fatal("fresh ring non-empty")
		}
	}
	if !r.Enqueue(7) {
		t.Fatal("enqueue rejected")
	}
	if v, ok := r.Dequeue(); !ok || v != 7 {
		t.Fatalf("dequeue after decay got (%d,%v), want (7,true)", v, ok)
	}
}

func TestDirectRingValueRangePanics(t *testing.T) {
	r := newDirect(t, 3, 8)
	if r.MaxValue() != 255 {
		t.Fatalf("MaxValue = %d", r.MaxValue())
	}
	if !r.Enqueue(255) {
		t.Fatal("max value rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range value did not panic")
		}
	}()
	r.Enqueue(256)
}

func TestDirectRingBatchScalarEquivalence(t *testing.T) {
	r := newDirect(t, 5, 52)
	sizes := []int{1, 7, 3, 16, 2}
	const total = 800
	vals := make([]uint64, 0, total)
	for i := uint64(0); i < total; i++ {
		vals = append(vals, i)
	}
	sent := 0
	out := make([]uint64, 32)
	next := uint64(0)
	for s := 0; sent < total; s++ {
		k := sizes[s%len(sizes)]
		if sent+k > total {
			k = total - sent
		}
		n := r.EnqueueBatch(vals[sent : sent+k])
		sent += n
		// Interleave batched dequeues to keep the ring from filling.
		m := r.DequeueBatch(out[:min(len(out), sent-int(next))])
		for _, v := range out[:m] {
			if v != next {
				t.Fatalf("batch dequeue got %d want %d", v, next)
			}
			next++
		}
	}
	for int(next) < total {
		v, ok := r.Dequeue()
		if !ok || v != next {
			t.Fatalf("drain got (%d,%v) want %d", v, ok, next)
		}
		next++
	}
	if m := r.DequeueBatch(out); m != 0 {
		t.Fatalf("drained ring yielded %d more", m)
	}
}

func TestDirectRingBatchRespectsCapacity(t *testing.T) {
	r := newDirect(t, 3, 16) // capacity 8
	vs := make([]uint64, 20)
	for i := range vs {
		vs[i] = uint64(i)
	}
	n := r.EnqueueBatch(vs)
	if n != 8 {
		t.Fatalf("EnqueueBatch inserted %d, want 8 (capacity)", n)
	}
	if r.EnqueueBatch(vs[n:]) != 0 {
		t.Fatal("full ring accepted a batch")
	}
	out := make([]uint64, 20)
	m := r.DequeueBatch(out)
	if m != 8 {
		t.Fatalf("DequeueBatch returned %d, want 8", m)
	}
	for i := 0; i < 8; i++ {
		if out[i] != uint64(i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestDirectRingFinalize(t *testing.T) {
	r := newDirect(t, 3, 16)
	for i := uint64(0); i < 5; i++ {
		r.Enqueue(i)
	}
	r.Finalize()
	if !r.Finalized() {
		t.Fatal("not finalized")
	}
	if r.Enqueue(99) {
		t.Fatal("finalized ring accepted an enqueue")
	}
	if r.EnqueueBatch([]uint64{1, 2}) != 0 {
		t.Fatal("finalized ring accepted a batch")
	}
	for i := uint64(0); i < 5; i++ {
		if v, ok := r.Dequeue(); !ok || v != i {
			t.Fatalf("drain after finalize got (%d,%v) want %d", v, ok, i)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("drained finalized ring non-empty")
	}
	// Reset clears the finalize bit and restores capacity.
	r.Reset()
	if r.Finalized() {
		t.Fatal("Reset left the ring finalized")
	}
	for i := uint64(0); i < r.N(); i++ {
		if !r.Enqueue(i + 100) {
			t.Fatalf("post-reset enqueue %d rejected", i)
		}
	}
	for i := uint64(0); i < r.N(); i++ {
		if v, ok := r.Dequeue(); !ok || v != i+100 {
			t.Fatalf("post-reset dequeue got (%d,%v)", v, ok)
		}
	}
}

func TestDirectRingMPMC(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		name := "diet"
		if conservative {
			name = "conservative"
		}
		t.Run(name, func(t *testing.T) {
			r := MustDirectRing(8, 52, Options{ConservativeAtomics: conservative})
			const producers, consumers = 4, 4
			per := uint64(20000)
			if testing.Short() {
				per = 2000
			}
			total := producers * per
			var mu sync.Mutex
			seen := make(map[uint64]bool, total)
			lastSeq := make([][]int64, consumers)
			var wg sync.WaitGroup
			var got sync.WaitGroup
			got.Add(int(total))
			for c := 0; c < consumers; c++ {
				lastSeq[c] = make([]int64, producers)
				for p := range lastSeq[c] {
					lastSeq[c][p] = -1
				}
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					count := total / consumers
					local := make([]uint64, 0, count)
					for uint64(len(local)) < count {
						v, ok := r.Dequeue()
						if !ok {
							runtime.Gosched()
							continue
						}
						local = append(local, v)
						got.Done()
					}
					mu.Lock()
					defer mu.Unlock()
					for _, v := range local {
						p, seq := int(v>>32), int64(v&0xFFFFFFFF)
						if seen[v] {
							t.Errorf("duplicate value %#x", v)
						}
						seen[v] = true
						if seq <= lastSeq[c][p] {
							t.Errorf("consumer %d: producer %d went backwards (%d after %d)", c, p, seq, lastSeq[c][p])
						}
						lastSeq[c][p] = seq
					}
				}(c)
			}
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for s := uint64(0); s < per; s++ {
						for !r.Enqueue(uint64(p)<<32 | s) {
							runtime.Gosched()
						}
					}
				}(p)
			}
			wg.Wait()
			got.Wait()
			if uint64(len(seen)) != total {
				t.Fatalf("saw %d distinct values, want %d", len(seen), total)
			}
		})
	}
}

func TestDirectRingEmulatedFAA(t *testing.T) {
	r := MustDirectRing(4, 32, Options{EmulatedFAA: true})
	for i := uint64(0); i < 200; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d rejected", i)
		}
		if v, ok := r.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue got (%d,%v) want %d", v, ok, i)
		}
	}
}

func TestDirectRingOpBudgetFailStop(t *testing.T) {
	// Order 1 with a 52-bit payload has the narrowest cycle field
	// (10 bits), so MaxOps = 511·4 = 2044 — reachable in a moment. A
	// balanced enqueue/dequeue workload never fills the 2-slot ring,
	// yet the ring must fail-stop at its budget instead of letting the
	// cycle field wrap and the entCycle comparisons go ABA.
	r := newDirect(t, 1, 52)
	budget := r.MaxOps()
	if budget == 0 || budget > 1<<20 {
		t.Fatalf("unexpected MaxOps %d for an order-1/52-bit ring", budget)
	}
	var i uint64
	for ; r.Enqueue(i); i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("iter %d: got (%d,%v)", i, v, ok)
		}
		if i > budget {
			t.Fatalf("ring accepted %d enqueues, budget %d", i, budget)
		}
	}
	if i < budget/2 {
		t.Fatalf("fail-stop after only %d enqueues (budget %d)", i, budget)
	}
	if r.Enqueue(99) {
		t.Fatal("exhausted ring accepted a scalar enqueue")
	}
	if n := r.EnqueueBatch([]uint64{1, 2}); n != 0 {
		t.Fatalf("exhausted ring accepted a batch of %d", n)
	}
	if v, ok := r.Dequeue(); ok {
		t.Fatalf("drained exhausted ring yielded %d", v)
	}
	// Reset renews the budget (the unbounded layer's pool reuse).
	r.Reset()
	if !r.Enqueue(7) {
		t.Fatal("reset ring rejected an enqueue")
	}
	if v, ok := r.Dequeue(); !ok || v != 7 {
		t.Fatalf("reset ring dequeue = (%d,%v)", v, ok)
	}
}

func TestDirectRingOpBudgetFailStopBatched(t *testing.T) {
	r := newDirect(t, 1, 52)
	budget := r.MaxOps()
	buf := []uint64{0, 1, 2}
	out := make([]uint64, 3)
	total := uint64(0)
	for {
		n := r.EnqueueBatch(buf)
		if n == 0 {
			break
		}
		if m := r.DequeueBatch(out[:n]); m != n {
			t.Fatalf("DequeueBatch = %d want %d", m, n)
		}
		total += uint64(n)
		if total > budget {
			t.Fatalf("batched ring accepted %d enqueues, budget %d", total, budget)
		}
	}
	if total < budget/2 {
		t.Fatalf("batched fail-stop after only %d enqueues (budget %d)", total, budget)
	}
}

func TestDirectRingAbandonedRunEmptinessDecay(t *testing.T) {
	// Reconstructs the admission-overshoot interleaving: >= 3n tail
	// positions reserved but abandoned AHEAD of Head (what concurrent
	// enqueuers that all passed the racy full() check and then lost
	// enqAt to occupied slots leave behind), with one landed value
	// above the run. Walking the run decays the 3n−1 threshold; the
	// precise Tail/Head re-verify in deqAt must keep Dequeue from
	// concluding empty — and the unbounded layer's unlink from
	// dropping the ring — while the value is still present.
	r := newDirect(t, 1, 52) // n=2, threshold 3n−1 = 5
	if !r.Enqueue(10) || !r.Enqueue(11) {
		t.Fatal("setup enqueues failed")
	}
	for _, want := range []uint64{10, 11} {
		if v, ok := r.Dequeue(); !ok || v != want {
			t.Fatalf("setup dequeue got (%d,%v) want %d", v, ok, want)
		}
	}
	// Six abandoned reservations (3n for n=2), then a landed value.
	r.faaTail(6)
	w := r.faaTail(1)
	if !r.enqAt(w, 12) {
		t.Fatal("setup enqAt failed")
	}
	r.rearmThreshold()
	if v, ok := r.Dequeue(); !ok || v != 12 {
		t.Fatalf("value above the abandoned run: got (%d,%v) want 12", v, ok)
	}
	if v, ok := r.Dequeue(); ok {
		t.Fatalf("drained ring yielded %d", v)
	}
	// After the genuine empty the fast-exit is armed again.
	if !r.Enqueue(13) {
		t.Fatal("post-drain enqueue failed")
	}
	if v, ok := r.Dequeue(); !ok || v != 13 {
		t.Fatalf("post-drain dequeue got (%d,%v)", v, ok)
	}
}
