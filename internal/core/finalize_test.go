package core

import (
	"testing"

	"wcqueue/internal/atomicx"
)

func TestFinalizeStopsEnqueues(t *testing.T) {
	q := Must(4, Options{})
	tid, _ := q.Register()
	if !q.EnqueueClosable(tid, 1) {
		t.Fatal("enqueue on open ring failed")
	}
	q.Finalize()
	if !q.Finalized() {
		t.Fatal("Finalized() false after Finalize")
	}
	if q.EnqueueClosable(tid, 2) {
		t.Fatal("enqueue succeeded on finalized ring")
	}
	// Dequeues continue to drain.
	v, ok := q.Dequeue(tid)
	if !ok || v != 1 {
		t.Fatalf("drain got (%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(tid); ok {
		t.Fatal("finalized ring not empty after drain")
	}
}

func TestFinalizeBitSurvivesFAAAndCatchup(t *testing.T) {
	q := Must(4, Options{})
	tid, _ := q.Register()
	q.Finalize()
	// Dequeues on an empty finalized ring run catchup (tail CAS) and
	// F&A on head; the finalize bit must survive both.
	for i := 0; i < 200; i++ {
		q.Dequeue(tid)
	}
	if !q.Finalized() {
		t.Fatal("finalize bit lost")
	}
	if q.EnqueueClosable(tid, 9) {
		t.Fatal("enqueue succeeded after counter churn")
	}
}

func TestEnqueueClosableSelfCloses(t *testing.T) {
	// Fill every physical slot (the ring allocates 2n entries and can
	// physically hold up to 2n values; the ≤ n bound is the
	// indirection construction's invariant, not a ring limit). The
	// next enqueue starves on occupied slots and must finalize rather
	// than spin forever.
	q := Must(3, Options{}) // n = 8, physical capacity 16
	tid, _ := q.Register()
	for i := uint64(0); i < 16; i++ {
		if !q.EnqueueClosable(tid, i%8) {
			t.Fatalf("fill enqueue %d failed", i)
		}
	}
	if q.EnqueueClosable(tid, 7) {
		t.Fatal("enqueue beyond physical capacity succeeded")
	}
	if !q.Finalized() {
		t.Fatal("starving enqueuer did not close the ring")
	}
	// The 16 original values drain intact and in order.
	for i := uint64(0); i < 16; i++ {
		v, ok := q.Dequeue(tid)
		if !ok || v != i%8 {
			t.Fatalf("drain %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestPairWordInvariants(t *testing.T) {
	q := Must(4, Options{})
	tid, _ := q.Register()
	// Tail id bits stay NoOwner through fast-path traffic.
	for i := uint64(0); i < 32; i++ {
		q.Enqueue(tid, i%16)
		q.Dequeue(tid)
	}
	if id := atomicx.PairID(q.tail.Load()); id != atomicx.NoOwner {
		t.Fatalf("tail owner id leaked: %d", id)
	}
	if id := atomicx.PairID(q.head.Load()); id != atomicx.NoOwner {
		t.Fatalf("head owner id leaked: %d", id)
	}
}

func TestThresholdNeverExceedsBound(t *testing.T) {
	q := Must(4, Options{})
	tid, _ := q.Register()
	bound := 3*int64(16) - 1
	for i := 0; i < 500; i++ {
		q.Enqueue(tid, uint64(i%16))
		if th := q.Threshold(); th > bound {
			t.Fatalf("threshold %d exceeds 3n-1=%d", th, bound)
		}
		q.Dequeue(tid)
		q.Dequeue(tid) // extra empty dequeue decrements
		if th := q.Threshold(); th > bound {
			t.Fatalf("threshold %d exceeds 3n-1=%d", th, bound)
		}
	}
}
