package core

import (
	"runtime"
	"sync/atomic"
)

// flagChunkSize is the number of ActiveFlags per arena chunk. With
// cacheline-padded flags a chunk is 4KiB, so the arena costs one page
// per 64 handles of peak concurrency.
const flagChunkSize = 64

// paddedActiveFlag keeps each handle's flag on its own cacheline: the
// flag is written on every enqueue by its owner, and unpadded
// neighbors would put independent handles' hot stores on one line.
type paddedActiveFlag struct {
	ActiveFlag
	_ [60]byte
}

type flagChunk struct {
	flags [flagChunkSize]paddedActiveFlag
}

// FlagArena is a tid-indexed, chunked, grow-only store of ActiveFlags
// — the close/drain protocol's registry of "who might be inside an
// enqueue" (DESIGN.md §10). It exists so registration costs nothing
// beyond one atomic chunk-directory load (no lock, no map, and —
// critically — no strong reference to the Handle, which would break
// the implicit-handle pool's finalizer-based slot reclamation by
// keeping GC-evicted handles reachable forever). Flag addresses are
// stable: chunks are published once and never unpublished, exactly
// like the record arena (DESIGN.md §9).
type FlagArena struct {
	chunks []atomic.Pointer[flagChunk]
}

// NewFlagArena sizes the chunk directory for maxHandles slots.
func NewFlagArena(maxHandles int) FlagArena {
	n := (maxHandles + flagChunkSize - 1) / flagChunkSize
	return FlagArena{chunks: make([]atomic.Pointer[flagChunk], n)}
}

// Get returns tid's flag, materializing its chunk on first use. The
// returned pointer is valid for the arena's lifetime; a recycled tid
// reuses the same flag (always clear between owners — Exit runs
// before any Unregister can).
func (a *FlagArena) Get(tid int) *ActiveFlag {
	ci := tid / flagChunkSize
	c := a.chunks[ci].Load()
	if c == nil {
		fresh := new(flagChunk)
		if a.chunks[ci].CompareAndSwap(nil, fresh) {
			c = fresh
		} else {
			c = a.chunks[ci].Load()
		}
	}
	return &c.flags[tid%flagChunkSize].ActiveFlag
}

// Quiesce blocks until every flag in the arena is clear — the
// closer's wait for in-flight enqueues. The wait is bounded: each
// flagged operation is itself wait-free. Visibility: an enqueue that
// will land a value saw state==open after setting its flag, which
// (seq-cst) orders the flag store — and the chunk publish before it —
// ahead of this scan, so the scan cannot miss it.
func (a *FlagArena) Quiesce() {
	for i := range a.chunks {
		c := a.chunks[i].Load()
		if c == nil {
			continue
		}
		for j := range c.flags {
			for c.flags[j].Active() {
				runtime.Gosched()
			}
		}
	}
}
