package core

// This file implements wCQ's helping procedures (Figure 6):
// help_threads, help_enqueue and help_dequeue.

import "wcqueue/internal/failpoint"

// helpTick charges k operations against the record's HELP_DELAY budget
// and runs a help scan when it expires. Scalar operations tick 1;
// batched operations tick the batch size, so a batch of k counts as k
// operations toward the helping cadence — without this, batch-heavy
// workloads would scan k× less often and stretch the slow path's
// helping-latency bound by the same factor (DESIGN.md §11). The
// fast path is this two-line check on record-private state; the Go
// compiler inlines it, so the common case costs no call.
// wcq:noalloc
func (q *WCQ) helpTick(rec *record, k int) {
	rec.nextCheck -= k
	if rec.nextCheck <= 0 {
		q.helpScan(rec)
	}
}

// helpThreads is one HELP_DELAY-gated helping tick (Figure 6,
// help_threads), kept for tests that drive the cadence directly.
// wcq:noalloc
func (q *WCQ) helpThreads(rec *record) { q.helpTick(rec, 1) }

// helpScan scans one peer for a pending help request and re-arms the
// HELP_DELAY budget. The scan cursor walks the published arena: the
// bound is re-read each time so records registered after this ring was
// built join the rotation, and unpublished chunks are skipped
// wholesale (their records cannot be pending).
// wcq:noalloc
func (q *WCQ) helpScan(rec *record) {
	n := int(q.nrec.Load())
	t := rec.nextTid
	if t >= n {
		t = 0
	}
	next := t + 1
	if thr := q.recAt(t); thr == nil {
		next = (t>>chunkShift + 1) << chunkShift // skip the unpublished chunk
	} else if thr != rec && thr.pending.Load() {
		if failpoint.Enabled {
			// Helper has found a pending request and is about to join
			// its slow path: a helper frozen here must not block the
			// requester or other helpers.
			failpoint.Inject(failpoint.CoreHelpPickup)
		}
		if thr.enqueue.Load() {
			q.helpEnqueue(rec, thr)
		} else {
			q.helpDequeue(rec, thr)
		}
		rec.statHelps.Add(1)
	}
	if next >= n {
		next = 0
	}
	rec.nextCheck = q.helpDelay
	rec.nextTid = next
}

// helpEnqueue snapshots thr's enqueue request and, if still valid,
// joins its slow path (Figure 6, help_enqueue). The read order —
// seq2 first, fields, then the seq1 check — guarantees the snapshot
// is internally consistent: a request can only pass the check if all
// fields belong to it.
// wcq:noalloc
func (q *WCQ) helpEnqueue(rec, thr *record) {
	seq := thr.seq2.Load()
	enqueue := thr.enqueue.Load()
	idx := thr.index.Load()
	tail := thr.initTail.Load()
	if enqueue && thr.seq1.Load() == seq {
		q.enqueueSlow(tail, idx, rec, thr, seq)
	}
}

// helpDequeue is the dequeue counterpart of helpEnqueue.
// wcq:noalloc
func (q *WCQ) helpDequeue(rec, thr *record) {
	seq := thr.seq2.Load()
	enqueue := thr.enqueue.Load()
	head := thr.initHead.Load()
	if !enqueue && thr.seq1.Load() == seq {
		q.dequeueSlow(head, rec, thr, seq)
	}
}

// HelpAll forces one helping pass over every registered record,
// regardless of HELP_DELAY. Tests use it to drive helping
// deterministically.
func (q *WCQ) HelpAll(tid int) {
	rec := q.rec(tid)
	q.forEachRecord(func(thr *record) bool {
		if thr == rec || !thr.pending.Load() {
			return true
		}
		if thr.enqueue.Load() {
			q.helpEnqueue(rec, thr)
		} else {
			q.helpDequeue(rec, thr)
		}
		return true
	})
}

// Stats aggregates operation counters across all records. Counters
// are read racily; they are monotone, so values are a consistent
// lower bound.
type Stats struct {
	SlowEnqueues uint64 // enqueues that took the slow path
	SlowDequeues uint64 // dequeues that took the slow path
	Helps        uint64 // help_threads invocations that found a request
}

// Stats returns the queue's accumulated slow-path statistics
// (experiment A3: slow-path frequency).
func (q *WCQ) Stats() Stats {
	var s Stats
	q.forEachRecord(func(r *record) bool {
		s.SlowEnqueues += r.statSlowEnq.Load()
		s.SlowDequeues += r.statSlowDeq.Load()
		s.Helps += r.statHelps.Load()
		return true
	})
	return s
}
