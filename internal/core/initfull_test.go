package core

import "testing"

// TestInitFullTailPosition guards the full-ring initial state: tail
// must start n ahead of head so the first n enqueues land on the
// second half of the physical ring via the fast path.
func TestInitFullTailPosition(t *testing.T) {
	q := Must(6, Options{}) // n = 64
	q.InitFull()
	if got, want := q.Tail()-q.Head(), uint64(64); got != want {
		t.Fatalf("InitFull tail-head gap = %d, want %d", got, want)
	}
	tid, _ := q.Register()
	// Drain one index and re-enqueue it: both must stay on the fast path.
	idx, ok := q.Dequeue(tid)
	if !ok {
		t.Fatal("full ring empty")
	}
	q.Enqueue(tid, idx)
	if s := q.Stats(); s.SlowEnqueues != 0 || s.SlowDequeues != 0 {
		t.Fatalf("full-ring ops took the slow path uncontended: %+v", s)
	}
	// Full drain still yields each index exactly once.
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			t.Fatalf("empty after %d of 64", i)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
}
