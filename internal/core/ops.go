package core

import (
	"wcqueue/internal/atomicx"
	"wcqueue/internal/failpoint"
)

// DeqStatus is the outcome of one fast-path dequeue attempt.
type DeqStatus int

// Fast-path dequeue outcomes.
const (
	DeqOK DeqStatus = iota
	DeqEmpty
	DeqRetry
)

// tryEnqFast is one SCQ fast-path enqueue attempt (Figure 3 try_enq on
// wCQ's entry layout: Enq is set and Note is preserved). On failure it
// returns the tail counter it tried, the slow path's starting point.
// finalized reports that the ring was closed before our F&A, in which
// case no attempt was made.
// wcq:noalloc
func (q *WCQ) tryEnqFast(index uint64) (tried uint64, ok, finalized bool) {
	w := q.faaRaw(&q.tail)
	if atomicx.PairFinalized(w) {
		return 0, false, true
	}
	t := atomicx.PairCnt(w)
	if failpoint.Enabled {
		// Reserved tail counter, entry not yet installed: the
		// stalled-enqueuer window.
		failpoint.Inject(failpoint.CoreEnqReserved)
	}
	if q.enqAtFast(t, index) {
		return 0, true, false
	}
	return t, false, false
}

// enqAtFast is the body of the fast-path enqueue at an already-reserved
// tail counter t. Failure leaves the entry untouched, so a reserved
// position that is abandoned afterwards is indistinguishable from a
// failed scalar attempt — the property the batched fast path relies on.
//
// Diet notes (DESIGN.md §11): the entry load is relaxed (the CAS
// re-validates; the failure branch is conservative), the head load in
// the IsSafe escape stays seq-cst (its value is consumed as a
// snapshot, not re-validated), and the threshold re-arm goes through
// rearmThreshold's relaxed-guard/seq-cst-store check.
// wcq:noalloc
func (q *WCQ) enqAtFast(t, index uint64) bool {
	j := q.remapPos(t)
	tcyc := q.cycleOf(t)
	for {
		e := q.loadEntry(j)
		idx := q.entIndex(e)
		if q.vcyc(e) < tcyc &&
			(q.entSafe(e) || q.headCnt() <= t) &&
			(idx == q.bottom || idx == q.bottomC) {
			n := q.noteBits(e) | q.packVal(tcyc, true, true, index)
			if !q.entries[j].CompareAndSwap(e, n) {
				q.contended.Add(1)
				continue // entry changed; re-evaluate
			}
			q.rearmThreshold()
			return true
		}
		return false
	}
}

// consume marks the entry at position j (head counter h) consumed:
// index bits all set (⊥c) and Enq forced to 1. If the producer's slow
// path has not finalized (Enq=0), the consumer finalizes the request
// first (Figure 5, consume).
// wcq:noalloc
func (q *WCQ) consume(h, j, e uint64) {
	if !q.entEnq(e) {
		q.finalizeRequest(h)
	}
	q.orEntry(j, q.enqBit|q.bottomC)
}

// finalizeRequest sets FIN on the localTail of whichever thread has a
// pending slow-path enqueue at head counter h (Figure 5,
// finalize_request). The scan covers every published record; a slot
// whose counter does not match h is skipped, and at most one record
// can match.
//
// Missing the matching record here would be a correctness bug (the
// requester would re-install its element at a later position), so the
// scan iterates the FULL chunk directory rather than the nrec bound:
// nrec can lag a chunk whose records are already carrying requests
// (rec()'s fast path does not wait for the publisher's nrec advance).
// The chunk pointer itself is always visible — its publish
// happens-before the localTail store that produced the Enq=0 entry
// this caller just read, and chunk loads are seq-cst.
// wcq:noalloc
func (q *WCQ) finalizeRequest(h uint64) {
	for ci := range q.chunks {
		c := q.chunks[ci].Load()
		if c == nil {
			continue
		}
		for i := range c.recs {
			tail := &c.recs[i].localTail
			v := tail.Load()
			if atomicx.Counter(v) == h {
				tail.CompareAndSwap(h, h|atomicx.FIN)
				return
			}
		}
	}
}

// tryDeqFast is one SCQ fast-path dequeue attempt on wCQ's layout
// (Note preserved, Enq honored). tried is meaningful only for DeqRetry.
// wcq:noalloc
func (q *WCQ) tryDeqFast() (index uint64, st DeqStatus, tried uint64) {
	h := q.faa(&q.head)
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreDeqReserved)
	}
	index, st = q.deqAtFast(h, false)
	if st == DeqRetry {
		tried = h
	}
	return index, st, tried
}

// deqAtFast is the body of the fast-path dequeue at an already-reserved
// head counter h. A reserved head position must always be processed so
// the slot gets stamped with our cycle (an abandoned one could let an
// older producer deposit a value no dequeuer will revisit).
//
// deferThreshold is the batched caller's diet mode (DESIGN.md §11): a
// lost race skips the threshold fetch-and-decrement and its ≤ −1 empty
// conclusion entirely. Skipping decrements only keeps the budget
// HIGHER than the per-operation protocol would — strictly conservative
// (no premature empty conclusion, so no value can be stranded); the
// precise tail-caught-head empty detection is kept, so a genuinely
// empty queue is still recognized. Deferring the decrements for a
// later combined Add(-k) would NOT be sound HERE: a re-arm
// interleaving between a failure and its deferred flush could leave
// the threshold negative with a freshly enqueued value in the ring,
// and the threshold<0 fast-exit would make that state sticky — this
// ring draws empty conclusions from the decayed budget alone. The
// direct ring is different: its PR 5 decayed-budget fix re-verifies
// every floor-reaching decrement against the precise Tail/Head
// distance and re-arms when values are ahead, which is exactly the
// repair that makes a combined deferred Add(-k) sound there — see
// DirectHandle.deqAt and DESIGN.md §14.
//
// Diet notes: the entry load is relaxed. Every branch re-validates it
// with a CAS on the same word except the cycle-match consume — and a
// stale cycle-match read is still conclusive, because the only writer
// past the (hcyc, value) state is this position's own consumer, which
// is us (each head counter is handed to exactly one dequeuer by the
// F&A), so the value bits cannot have changed; a stale Enq=0 reading
// at most repeats consume's idempotent finalizeRequest scan.
// wcq:noalloc
func (q *WCQ) deqAtFast(h uint64, deferThreshold bool) (index uint64, st DeqStatus) {
	j := q.remapPos(h)
	hcyc := q.cycleOf(h)
	for {
		e := q.loadEntry(j)
		idx := q.entIndex(e)
		if q.vcyc(e) == hcyc {
			q.consume(h, j, e)
			return idx, DeqOK
		}
		var n uint64
		if idx == q.bottom || idx == q.bottomC {
			// Mark the slot with our cycle so an older producer
			// cannot use it.
			n = q.noteBits(e) | q.packVal(hcyc, q.entSafe(e), true, q.bottom)
		} else {
			// Old-cycle value: clear IsSafe, keep everything else.
			n = q.noteBits(e) | q.packVal(q.vcyc(e), false, q.entEnq(e), idx)
		}
		if q.vcyc(e) < hcyc {
			if !q.entries[j].CompareAndSwap(e, n) {
				q.contended.Add(1)
				continue
			}
		}
		t := q.tailCnt()
		if t <= h+1 {
			q.catchup(t, h+1)
			q.threshold.Add(-1)
			return 0, DeqEmpty
		}
		if deferThreshold {
			return 0, DeqRetry
		}
		if q.threshold.Add(-1) <= -1 { // F&A(&Threshold,−1) ≤ 0 on old value
			return 0, DeqEmpty
		}
		return 0, DeqRetry
	}
}

// Enqueue inserts index (Figure 5, Enqueue_wCQ). The caller's tid must
// come from Register. Wait-free: bounded fast-path attempts followed
// by the helping slow path. Enqueue must only be used on rings that
// are never finalized (the bounded queue); the unbounded construction
// uses EnqueueClosable.
// wcq:noalloc
func (q *WCQ) Enqueue(tid int, index uint64) {
	q.enqueueRec(q.rec(tid), index)
}

// enqueueRec is Enqueue for callers that cache the record (the bounded
// queue's handles), saving the per-operation chunk-directory load.
// wcq:noalloc
func (q *WCQ) enqueueRec(rec *record, index uint64) {
	q.helpTick(rec, 1)

	var lastTail uint64
	for count := q.enqPatience; count > 0; count-- {
		tail, ok, _ := q.tryEnqFast(index)
		if ok {
			return
		}
		lastTail = tail
	}

	// Slow path: publish the help request and run it ourselves.
	rec.statSlowEnq.Add(1)
	seq := rec.seq1.Load()
	rec.localTail.Store(lastTail)
	rec.initTail.Store(lastTail)
	rec.index.Store(index)
	rec.enqueue.Store(true)
	rec.seq2.Store(seq)
	rec.pending.Store(true)
	if failpoint.Enabled {
		// Help request published, requester not yet running the slow
		// path: helpers must complete the enqueue exactly once.
		failpoint.Inject(failpoint.CoreEnqSlowPublished)
	}
	q.enqueueSlow(lastTail, index, rec, rec, seq)
	rec.pending.Store(false)
	rec.seq1.Store(seq + 1)
}

// EnqueueClosable inserts index into a finalizable ring, or returns
// false once the ring is finalized. A starving enqueuer finalizes the
// ring itself (LCRQ's "tantrum", which the unbounded layer adopts per
// Appendix A): the caller then moves to a fresh ring. Using only the
// fast path keeps finalization races trivial — an enqueue either
// linearizes before the finalize OR (its claiming CAS succeeded) or
// observably fails — at the cost of ring-local wait-freedom; the
// unbounded queue is lock-free overall (see DESIGN.md §5).
// wcq:noalloc
func (q *WCQ) EnqueueClosable(tid int, index uint64) bool {
	rec := q.rec(tid)
	q.helpTick(rec, 1)
	for attempts := 0; ; attempts++ {
		_, ok, finalized := q.tryEnqFast(index)
		if ok {
			return true
		}
		if finalized {
			return false
		}
		if attempts >= closePatience {
			q.Finalize()
			return false
		}
	}
}

// closePatience is the starvation limit before EnqueueClosable closes
// the ring. Generous: fast-path failures on an uncontended ring are
// rare, so closing fires only under real starvation or a full ring.
const closePatience = 256

// Dequeue removes the oldest index (Figure 5, Dequeue_wCQ), or returns
// ok=false when the queue is empty. Wait-free.
// wcq:noalloc
func (q *WCQ) Dequeue(tid int) (index uint64, ok bool) {
	if !q.thresholdNonNegative() {
		return 0, false // empty fast-exit
	}
	return q.dequeueRec(q.rec(tid))
}

// dequeueRec is Dequeue past the empty fast-exit, for callers that
// cache the record. The caller must have checked thresholdNonNegative.
// wcq:noalloc
func (q *WCQ) dequeueRec(rec *record) (index uint64, ok bool) {
	q.helpTick(rec, 1)

	var lastHead uint64
	for count := q.deqPatience; count > 0; count-- {
		idx, st, tried := q.tryDeqFast()
		switch st {
		case DeqOK:
			return idx, true
		case DeqEmpty:
			return 0, false
		}
		lastHead = tried
	}

	// Slow path.
	rec.statSlowDeq.Add(1)
	seq := rec.seq1.Load()
	rec.localHead.Store(lastHead)
	rec.initHead.Store(lastHead)
	rec.enqueue.Store(false)
	rec.seq2.Store(seq)
	rec.pending.Store(true)
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreDeqSlowPublished)
	}
	q.dequeueSlow(lastHead, rec, rec, seq)
	rec.pending.Store(false)
	rec.seq1.Store(seq + 1)

	// Gather the slow-path result (Figure 5, lines 48-54).
	h := atomicx.Counter(rec.localHead.Load())
	j := q.remapPos(h)
	e := q.entries[j].Load()
	if q.vcyc(e) == q.cycleOf(h) && q.entIndex(e) != q.bottom {
		q.consume(h, j, e)
		return q.entIndex(e), true
	}
	return 0, false
}
