package core

import "fmt"

// Queue is a bounded wait-free MPMC queue of values of type T, built
// from two WCQ rings by indirection (Figure 2): fq holds free indices,
// aq holds allocated ones, values live in a flat array. Capacity is
// n = 2^order values.
type Queue[T any] struct {
	aq   *WCQ
	fq   *WCQ
	data []T
}

// NewQueue creates a bounded wait-free queue with capacity 2^order
// values. Handles register dynamically up to opts.MaxHandles (default:
// the full 16-bit owner-id space).
func NewQueue[T any](order uint, opts Options) (*Queue[T], error) {
	aq, err := New(order, opts)
	if err != nil {
		return nil, fmt.Errorf("core: allocating aq: %w", err)
	}
	fq, err := New(order, opts)
	if err != nil {
		return nil, fmt.Errorf("core: allocating fq: %w", err)
	}
	fq.InitFull()
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, 1<<order)}, nil
}

// MustQueue is NewQueue that panics on error.
func MustQueue[T any](order uint, opts Options) *Queue[T] {
	q, err := NewQueue[T](order, opts)
	if err != nil {
		panic(err)
	}
	return q
}

// Handle is a registered thread slot of a Queue. Handles must not be
// shared between concurrently running goroutines.
type Handle struct {
	tid int
	// scratch carries batch index buffers between the two rings.
	// Owned by the handle's goroutine, so reuse is race-free and the
	// batched hot path stays allocation-free.
	scratch []uint64
}

// buf returns the handle's scratch buffer with capacity ≥ k.
func (h *Handle) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// Register claims a thread slot. The allocation lives on aq; fq only
// materializes the matching record (its own allocator is unused, so
// the tid cannot be handed out twice there).
func (q *Queue[T]) Register() (*Handle, error) {
	tid, err := q.aq.Register()
	if err != nil {
		return nil, err
	}
	q.fq.rec(tid)
	return &Handle{tid: tid}, nil
}

// Unregister releases the handle's slot.
func (q *Queue[T]) Unregister(h *Handle) {
	q.aq.Unregister(h.tid)
}

// LiveHandles returns the number of currently registered handles.
func (q *Queue[T]) LiveHandles() int { return q.aq.LiveHandles() }

// HandleHighWater returns the arena high-water mark: the largest
// number of handle slots ever live at once (slot recycling keeps it
// flat under register/unregister churn).
func (q *Queue[T]) HandleHighWater() int { return q.aq.HandleHighWater() }

// Cap returns the queue capacity n.
func (q *Queue[T]) Cap() int { return len(q.data) }

// Enqueue inserts v. It returns false if the queue is full. Wait-free.
func (q *Queue[T]) Enqueue(h *Handle, v T) bool {
	index, ok := q.fq.Dequeue(h.tid)
	if !ok {
		return false // no free index: full
	}
	q.data[index] = v
	q.aq.Enqueue(h.tid, index)
	return true
}

// Dequeue removes the oldest value, or returns ok=false when empty.
// Wait-free.
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) {
	index, ok := q.aq.Dequeue(h.tid)
	if !ok {
		return v, false
	}
	v = q.data[index]
	var zero T
	q.data[index] = zero
	q.fq.Enqueue(h.tid, index)
	return v, true
}

// EnqueueBatch inserts up to len(vs) values in order and returns how
// many were inserted (fewer only when the queue fills). A batch of k
// costs two ring F&As — one on fq.Head, one on aq.Tail — instead of
// the scalar path's 2k. Wait-free.
func (q *Queue[T]) EnqueueBatch(h *Handle, vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	idx := h.buf(len(vs))
	n := q.fq.DequeueBatch(h.tid, idx)
	if n == 0 {
		return 0 // no free indices: full
	}
	for i := 0; i < n; i++ {
		q.data[idx[i]] = vs[i]
	}
	q.aq.EnqueueBatch(h.tid, idx[:n])
	return n
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued. Wait-free.
func (q *Queue[T]) DequeueBatch(h *Handle, out []T) int {
	if len(out) == 0 {
		return 0
	}
	idx := h.buf(len(out))
	n := q.aq.DequeueBatch(h.tid, idx)
	if n == 0 {
		return 0
	}
	var zero T
	for i := 0; i < n; i++ {
		out[i] = q.data[idx[i]]
		q.data[idx[i]] = zero
	}
	q.fq.EnqueueBatch(h.tid, idx[:n])
	return n
}

// Stats returns combined slow-path statistics of both rings.
func (q *Queue[T]) Stats() Stats {
	a, f := q.aq.Stats(), q.fq.Stats()
	return Stats{
		SlowEnqueues: a.SlowEnqueues + f.SlowEnqueues,
		SlowDequeues: a.SlowDequeues + f.SlowDequeues,
		Helps:        a.Helps + f.Helps,
	}
}

// Footprint returns the live bytes owned by the queue; constant.
func (q *Queue[T]) Footprint() int64 {
	return q.aq.Footprint() + q.fq.Footprint() + int64(len(q.data))*8
}

// MaxOps returns the safe-operation bound of the underlying rings.
func (q *Queue[T]) MaxOps() uint64 { return min(q.aq.MaxOps(), q.fq.MaxOps()) }
