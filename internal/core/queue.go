package core

import (
	"fmt"
	"sync/atomic"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/waitq"
)

// Queue is a bounded wait-free MPMC queue of values of type T, built
// from two WCQ rings by indirection (Figure 2): fq holds free indices,
// aq holds allocated ones, values live in a flat array. Capacity is
// n = 2^order values.
type Queue[T any] struct {
	aq   *WCQ
	fq   *WCQ
	data []T

	// Blocking layer (blocking.go, DESIGN.md §10). The eventcounts add
	// one read-shared atomic load to each successful fast-path
	// operation while no waiter is parked; the close state adds one
	// load plus the handle-local enqActive bracket to enqueues.
	notEmpty waitq.EventCount // signaled after values land
	notFull  waitq.EventCount // signaled after slots free up
	state    atomic.Uint32    // stateOpen → stateClosing → stateSealed

	// flags is the tid-indexed ActiveFlag arena Close scans to wait
	// out in-flight enqueues. Deliberately not a handle registry: it
	// holds no reference to any Handle, so the implicit-handle pool's
	// finalizer-based slot reclamation keeps working, and registration
	// pays one atomic load, not a lock.
	flags FlagArena
}

// NewQueue creates a bounded wait-free queue with capacity 2^order
// values. Handles register dynamically up to opts.MaxHandles (default:
// the full 16-bit owner-id space).
func NewQueue[T any](order uint, opts Options) (*Queue[T], error) {
	aq, err := New(order, opts)
	if err != nil {
		return nil, fmt.Errorf("core: allocating aq: %w", err)
	}
	fq, err := New(order, opts)
	if err != nil {
		return nil, fmt.Errorf("core: allocating fq: %w", err)
	}
	fq.InitFull()
	maxHandles := opts.MaxHandles
	if maxHandles <= 0 {
		maxHandles = int(atomicx.MaxOwners)
	}
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, 1<<order), flags: NewFlagArena(maxHandles)}, nil
}

// MustQueue is NewQueue that panics on error.
func MustQueue[T any](order uint, opts Options) *Queue[T] {
	q, err := NewQueue[T](order, opts)
	if err != nil {
		panic(err)
	}
	return q
}

// Handle is a registered thread slot of a Queue. Handles must not be
// shared between concurrently running goroutines.
type Handle struct {
	tid int
	// aqRec/fqRec cache the handle's per-ring records (DESIGN.md §11):
	// the rings are fixed for the queue's lifetime and records are
	// pointer-stable once published, so resolving them at Register
	// saves two chunk-directory atomic loads per transfer on the hot
	// path. (The unbounded queue cannot cache these — its handles
	// follow ring hops — which is why it stays on the tid entry
	// points.)
	aqRec *record
	fqRec *record
	// scratch carries batch index buffers between the two rings.
	// Owned by the handle's goroutine, so reuse is race-free and the
	// batched hot path stays allocation-free.
	scratch []uint64
	// active points to the handle's slot in the queue's FlagArena; it
	// brackets in-flight enqueues so Close can linearize after them
	// (blocking.go). Written only by the owner; free on TSO fast paths
	// (see ActiveFlag).
	active *ActiveFlag
	// w is the handle's parking token for the blocking operations,
	// allocated on first blocking call. Handle-local.
	w *waitq.Waiter
	// aqDry/fqDry gate the shared threshold fast-exit loads (DESIGN.md
	// §14): the pre-check is a pure optimization — dequeueRec is
	// authoritative, with its own threshold decay and empty detection —
	// so a handle only pays the read-shared threshold load while its
	// last claim on that ring actually failed. Steady-state transfers
	// (both rings delivering) skip both loads; the first failed claim
	// flips the hint and restores the cheap fast-exit for the poll loop
	// that typically follows. Owner-written only, like scratch.
	aqDry bool // last aq claim failed: empty-suspect
	fqDry bool // last fq index rent failed: full-suspect
}

// waiter returns the handle's parking token, allocating it on first
// use so the non-blocking-only workloads never pay for it.
// wcq:noalloc
func (h *Handle) waiter() *waitq.Waiter {
	if h.w == nil {
		h.w = waitq.NewWaiter()
	}
	return h.w
}

// buf returns the handle's scratch buffer with capacity ≥ k.
// wcq:noalloc
func (h *Handle) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		// wcq:alloc-ok grow-once scratch: after the first batch at a given width the buffer is reused, so AllocsPerRun's warm-up iteration absorbs it
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// Register claims a thread slot. The allocation lives on aq; fq only
// materializes the matching record (its own allocator is unused, so
// the tid cannot be handed out twice there).
func (q *Queue[T]) Register() (*Handle, error) {
	tid, err := q.aq.Register()
	if err != nil {
		return nil, err
	}
	return &Handle{
		tid:    tid,
		aqRec:  q.aq.rec(tid),
		fqRec:  q.fq.rec(tid),
		active: q.flags.Get(tid),
	}, nil
}

// Unregister releases the handle's slot.
func (q *Queue[T]) Unregister(h *Handle) {
	q.aq.Unregister(h.tid)
}

// LiveHandles returns the number of currently registered handles.
func (q *Queue[T]) LiveHandles() int { return q.aq.LiveHandles() }

// HandleHighWater returns the arena high-water mark: the largest
// number of handle slots ever live at once (slot recycling keeps it
// flat under register/unregister churn).
func (q *Queue[T]) HandleHighWater() int { return q.aq.HandleHighWater() }

// Cap returns the queue capacity n.
func (q *Queue[T]) Cap() int { return len(q.data) }

// Enqueue inserts v. It returns false if the queue is full or closed.
// Wait-free. The active bracket (two uncontended handle-local stores,
// plain on TSO) is what lets Close linearize after in-flight
// enqueues; the state check and the waiter wakeup are one read-shared
// load each while the queue is open with nobody parked.
// wcq:noalloc
func (q *Queue[T]) Enqueue(h *Handle, v T) bool {
	h.active.Enter()
	ok := !h.fqDry || q.fq.thresholdNonNegative()
	var index uint64
	if ok {
		index, ok = q.fq.dequeueRec(h.fqRec)
	}
	if !ok {
		h.fqDry = true
		h.active.Exit()
		return false // no free index: full
	}
	h.fqDry = false
	if failpoint.Enabled {
		// Index reserved inside the active bracket, close re-check
		// pending: Close's quiescence must wait out a thread frozen
		// here, and the value must land or be cleanly refused.
		failpoint.Inject(failpoint.CoreEnqActiveWindow)
	}
	// Dekker re-check: the fetch-and-add that won the index is a
	// seq-cst RMW, so h.active is globally visible before this load —
	// Close cannot have missed this enqueue and sealed early.
	if q.state.Load() != stateOpen {
		q.fq.enqueueRec(h.fqRec, index) // closed: return the index, no value lands
		h.active.Exit()
		return false
	}
	q.data[index] = v
	q.aq.enqueueRec(h.aqRec, index)
	h.active.Exit()
	q.notEmpty.Signal()
	return true
}

// Dequeue removes the oldest value, or returns ok=false when empty.
// Dequeues keep working after Close until the queue drains. Wait-free.
// wcq:noalloc
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) {
	if h.aqDry && !q.aq.thresholdNonNegative() {
		return v, false // empty fast-exit
	}
	index, ok := q.aq.dequeueRec(h.aqRec)
	if !ok {
		h.aqDry = true
		return v, false
	}
	h.aqDry = false
	v = q.data[index]
	var zero T
	q.data[index] = zero
	q.fq.enqueueRec(h.fqRec, index)
	q.notFull.Signal()
	return v, true
}

// EnqueueBatch inserts up to len(vs) values in order and returns how
// many were inserted (fewer only when the queue fills). A batch of k
// costs two ring F&As — one on fq.Head, one on aq.Tail — instead of
// the scalar path's 2k. Wait-free.
// wcq:noalloc
func (q *Queue[T]) EnqueueBatch(h *Handle, vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	h.active.Enter()
	idx := h.buf(len(vs))
	n := 0
	if !h.fqDry || q.fq.thresholdNonNegative() {
		n = q.fq.dequeueBatchAny(h.fqRec, idx)
	}
	if n == 0 {
		h.fqDry = true
		h.active.Exit()
		return 0 // no free indices: full
	}
	h.fqDry = false
	// Dekker re-check after the batch reservation's fetch-and-add; see
	// Enqueue.
	if q.state.Load() != stateOpen {
		q.fq.enqueueBatchRec(h.fqRec, idx[:n]) // closed: return the indices
		h.active.Exit()
		return 0
	}
	for i := 0; i < n; i++ {
		q.data[idx[i]] = vs[i]
	}
	q.aq.enqueueBatchRec(h.aqRec, idx[:n])
	h.active.Exit()
	q.notEmpty.SignalN(n)
	return n
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued. Wait-free.
// wcq:noalloc
func (q *Queue[T]) DequeueBatch(h *Handle, out []T) int {
	if len(out) == 0 {
		return 0
	}
	if h.aqDry && !q.aq.thresholdNonNegative() {
		return 0 // empty fast-exit
	}
	idx := h.buf(len(out))
	n := q.aq.dequeueBatchAny(h.aqRec, idx)
	if n == 0 {
		h.aqDry = true
		return 0
	}
	h.aqDry = false
	var zero T
	for i := 0; i < n; i++ {
		out[i] = q.data[idx[i]]
		q.data[idx[i]] = zero
	}
	q.fq.enqueueBatchRec(h.fqRec, idx[:n])
	q.notFull.SignalN(n)
	return n
}

// Stats returns combined slow-path statistics of both rings.
func (q *Queue[T]) Stats() Stats {
	a, f := q.aq.Stats(), q.fq.Stats()
	return Stats{
		SlowEnqueues: a.SlowEnqueues + f.SlowEnqueues,
		SlowDequeues: a.SlowDequeues + f.SlowDequeues,
		Helps:        a.Helps + f.Helps,
	}
}

// Footprint returns the live bytes owned by the queue; constant.
func (q *Queue[T]) Footprint() int64 {
	return q.aq.Footprint() + q.fq.Footprint() + int64(len(q.data))*8
}

// MaxOps returns the safe-operation bound of the underlying rings.
func (q *Queue[T]) MaxOps() uint64 { return min(q.aq.MaxOps(), q.fq.MaxOps()) }

// ContentionEvents returns the cumulative fast-path entry-CAS failure
// count across both rings — the elastic striped governor's per-lane
// contention signal (DESIGN.md §13).
func (q *Queue[T]) ContentionEvents() uint64 {
	return q.aq.ContentionEvents() + q.fq.ContentionEvents()
}

// Drained reports that every completed enqueue's value has been
// claimed by a dequeuer, via the aq ring's Tail ≤ Head witness (a
// completed Enqueue has always advanced aq's tail — the fq side holds
// only free indices and does not participate). See WCQ.Drained.
func (q *Queue[T]) Drained() bool { return q.aq.Drained() }
