package core

import (
	"sync"
	"testing"
)

// TestResetRestoresEmptyState dirties a ring — traffic, slow paths,
// finalization — and checks Reset returns it to the canonical fresh
// state, including the finalize bit and the per-thread records.
func TestResetRestoresEmptyState(t *testing.T) {
	// Patience 1 + HelpDelay 1 forces slow-path traffic so the records
	// are genuinely dirty before the reset.
	q := Must(4, Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1})
	tid, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	n := q.N()
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < n; i++ {
			q.Enqueue(tid, i)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := q.Dequeue(tid); !ok || v != i {
				t.Fatalf("round %d: dequeue %d got (%d,%v)", round, i, v, ok)
			}
		}
	}
	q.Finalize()
	if !q.Finalized() {
		t.Fatal("Finalize did not close the ring")
	}

	q.Reset()

	if q.Finalized() {
		t.Fatal("Reset did not clear the finalize bit")
	}
	twoN := uint64(2) << q.Order()
	if q.Head() != twoN || q.Tail() != twoN {
		t.Fatalf("Reset Head/Tail = %d/%d, want %d", q.Head(), q.Tail(), twoN)
	}
	if q.Threshold() != -1 {
		t.Fatalf("Reset threshold = %d, want -1", q.Threshold())
	}
	if s := q.Stats(); s.SlowEnqueues != 0 || s.SlowDequeues != 0 || s.Helps != 0 {
		t.Fatalf("Reset did not zero stats: %+v", s)
	}
	// The recycled ring must behave exactly like a fresh one. (WCQ
	// carries ring indices, so values stay below the index-field bound.)
	if _, ok := q.Dequeue(tid); ok {
		t.Fatal("reset ring yielded a value")
	}
	for i := uint64(0); i < n; i++ {
		q.Enqueue(tid, n-1-i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := q.Dequeue(tid); !ok || v != n-1-i {
			t.Fatalf("post-reset dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

// TestResetFullRestoresFreeRing checks the free-ring reset path: after
// arbitrary traffic, ResetFull must hand back exactly indices 0..n-1.
func TestResetFullRestoresFreeRing(t *testing.T) {
	q := Must(3, Options{})
	q.InitFull()
	tid, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	n := q.N()
	// Dirty it: drain half, re-enqueue some out of order.
	for i := uint64(0); i < n/2; i++ {
		if _, ok := q.Dequeue(tid); !ok {
			t.Fatalf("drain %d failed", i)
		}
	}
	q.Enqueue(tid, 2)
	q.Enqueue(tid, 0)

	q.ResetFull()

	seen := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			t.Fatalf("free ring empty after %d of %d", i, n)
		}
		if v >= n || seen[v] {
			t.Fatalf("free ring yielded invalid/duplicate index %d", v)
		}
		seen[v] = true
	}
	if _, ok := q.Dequeue(tid); ok {
		t.Fatal("free ring over-full after ResetFull")
	}
}

// TestResetReuseUnderConcurrency runs MPMC rounds against one
// value-level queue, resetting its two rings between rounds exactly
// the way the unbounded queue's pool does (aq to empty, fq to full) —
// every round must behave like a fresh queue.
func TestResetReuseUnderConcurrency(t *testing.T) {
	const workers = 4
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	q := MustQueue[uint64](10, Options{EnqPatience: 2, DeqPatience: 2, HelpDelay: 2})
	for round := 0; round < 3; round++ {
		var produced, consumed sync.Map
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(w int, h *Handle) {
				defer wg.Done()
				defer q.Unregister(h)
				base := uint64(w) << 32
				for i := uint64(0); i < per; i++ {
					if !q.Enqueue(h, base|i) {
						t.Errorf("round %d: enqueue rejected below capacity", round)
						return
					}
					produced.Store(base|i, true)
					if v, ok := q.Dequeue(h); ok {
						if _, dup := consumed.LoadOrStore(v, true); dup {
							t.Errorf("round %d: duplicate %#x", round, v)
							return
						}
					}
				}
			}(w, h)
		}
		wg.Wait()
		// Drain the remainder and account for every produced value.
		h, _ := q.Register()
		for {
			v, ok := q.Dequeue(h)
			if !ok {
				break
			}
			if _, dup := consumed.LoadOrStore(v, true); dup {
				t.Fatalf("round %d: duplicate %#x in drain", round, v)
			}
		}
		q.Unregister(h)
		produced.Range(func(k, _ any) bool {
			if _, ok := consumed.Load(k); !ok {
				t.Fatalf("round %d: lost value %#x", round, k)
			}
			return true
		})
		// Quiescent (all workers joined): recycle the queue the way the
		// ring pool does.
		q.aq.Reset()
		q.fq.ResetFull()
		clear(q.data)
	}
}
