package core

import (
	"sync/atomic"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/pad"
)

// This file implements wCQ's slow path (Figure 7): slow_F&A, the
// phase-2 help protocol, and the slow enqueue/dequeue attempts.
//
// Parameters shared by the functions here:
//
//	rec — the record of the thread EXECUTING the code (owner of the
//	      phase2 block it publishes);
//	thr — the record of the request being worked on (helpee; equal to
//	      rec when a thread runs its own slow path);
//	seq — the helpee's seq1 snapshot validating the request. If
//	      thr.seq1 moves past seq the request completed and the helper
//	      must stop: the staleness guard below aborts helping whenever
//	      a value adopted from thr's local counter could belong to a
//	      newer request. Counters are monotonic per record, so stale
//	      CASes can never succeed; only adopted reads need the guard.

// enqueueSlow runs the slow-path enqueue loop (Figure 7, line 70).
// wcq:noalloc
func (q *WCQ) enqueueSlow(t, index uint64, rec, thr *record, seq uint64) {
	v := t
	for q.slowFAA(&q.tail, &thr.localTail, &v, nil, rec, thr, seq) {
		if q.tryEnqSlow(v, index, thr) {
			break
		}
	}
}

// dequeueSlow runs the slow-path dequeue loop (Figure 7, line 73).
// The threshold is decremented inside slow_F&A, once per global Head
// increment (Lemma 5.6).
// wcq:noalloc
func (q *WCQ) dequeueSlow(h uint64, rec, thr *record, seq uint64) {
	v := h
	for q.slowFAA(&q.head, &thr.localHead, &v, &q.threshold, rec, thr, seq) {
		if q.tryDeqSlow(v, thr) {
			break
		}
	}
}

// slowFAA is the synchronized replacement for the fast path's F&A
// (Figure 7, lines 21-37). All cooperative threads (helpee + helpers)
// serialize their view of the next counter through thr's local word
// so that the global counter advances exactly once per group
// iteration. On return true, *v holds the counter the caller should
// attempt; on return false the request is finished (FIN) or stale.
// wcq:noalloc
func (q *WCQ) slowFAA(global *pad.Uint64, local *atomic.Uint64, v *uint64, thld *pad.Int64, rec, thr *record, seq uint64) bool {
	ph := &rec.phase2
	for {
		cnt, ok := q.loadGlobalHelpPhase2(global, local, thr, seq)
		if !ok || !local.CompareAndSwap(*v, cnt|atomicx.INC) { // Phase 1
			*v = local.Load()
			if atomicx.HasFIN(*v) {
				return false // request finished
			}
			if thr != rec && thr.seq1.Load() != seq {
				return false // staleness guard: adopted value may be a newer request's
			}
			if !atomicx.HasINC(*v) {
				return true // group already advanced; use the adopted counter
			}
			cnt = atomicx.Counter(*v)
		} else {
			*v = cnt | atomicx.INC // Phase 1 complete
		}
		q.preparePhase2(ph, local, cnt)
		if global.CompareAndSwap(
			atomicx.PackPair(cnt, atomicx.NoOwner),
			atomicx.PackPair(cnt+1, atomicx.OwnerID(rec.tid)),
		) {
			if thld != nil {
				thld.Add(-1)
			}
			local.CompareAndSwap(cnt|atomicx.INC, cnt) // Phase 2
			global.CompareAndSwap(
				atomicx.PackPair(cnt+1, atomicx.OwnerID(rec.tid)),
				atomicx.PackPair(cnt+1, atomicx.NoOwner),
			)
			*v = cnt
			return true
		}
		// Global changed (fast-path F&A or another phase2); retry.
	}
}

// preparePhase2 publishes a phase-2 help request in the executing
// thread's phase2 block (Figure 7, line 38). Seqlock write protocol.
// wcq:noalloc
func (q *WCQ) preparePhase2(ph *phase2rec, local *atomic.Uint64, cnt uint64) {
	seq := ph.seq1.Add(1)
	ph.local.Store(local)
	ph.cnt.Store(cnt)
	ph.seq2.Store(seq)
}

// loadGlobalHelpPhase2 loads the global pair, completing any pending
// phase-2 request it finds so the pointer component returns to null
// (Figure 7, line 77). Returns ok=false when the caller's own request
// has finished (FIN) or gone stale.
// wcq:noalloc
func (q *WCQ) loadGlobalHelpPhase2(global *pad.Uint64, mylocal *atomic.Uint64, thr *record, seq uint64) (cnt uint64, ok bool) {
	for {
		lv := mylocal.Load()
		if atomicx.HasFIN(lv) {
			return 0, false // the outer loop exits
		}
		if thr.seq1.Load() != seq {
			return 0, false // staleness guard
		}
		gp := global.Load()
		id := atomicx.PairID(gp)
		if id == atomicx.NoOwner {
			return atomicx.PairCnt(gp), true // no help request
		}
		// The owner's record is necessarily published: it registered
		// (publishing its chunk) before it could install its id in the
		// global pair word.
		ph := &q.rec(atomicx.OwnerTID(id)).phase2
		pseq := ph.seq2.Load()
		loc := ph.local.Load()
		pcnt := ph.cnt.Load()
		// Help finish Phase 2; the CAS fails harmlessly if the local
		// was already advanced.
		if loc != nil && ph.seq1.Load() == pseq {
			loc.CompareAndSwap(pcnt|atomicx.INC, pcnt)
		}
		// Clear the pointer, preserving the counter and finalize bits.
		// No ABA on the id bits: the counter increments monotonically.
		if global.CompareAndSwap(gp, atomicx.PairClearID(gp)) {
			return atomicx.PairCnt(gp), true
		}
	}
}

// tryEnqSlow is one slow-path enqueue attempt at tail counter t
// (Figure 7, line 1). Returns true when the request's element is in
// the ring (inserted by us or a cooperative thread); false directs the
// group to the next counter.
// wcq:noalloc
func (q *WCQ) tryEnqSlow(t, index uint64, thr *record) bool {
	j := q.remapPos(t)
	tcyc := q.cycleOf(t)
	for {
		e := q.entries[j].Load()
		idx := q.entIndex(e)
		if q.vcyc(e) < tcyc && q.noteLess(e, tcyc) {
			if !(q.entSafe(e) || q.headCnt() <= t) || (idx != q.bottom && idx != q.bottomC) {
				// Advance Note so later helpers skip this slot too
				// (the disqualifying condition may later turn false).
				if !q.entries[j].CompareAndSwap(e, q.setNote(e, tcyc)) {
					continue
				}
				return false
			}
			// Produce the entry with Enq=0 (two-step insert).
			n := q.noteBits(e) | q.packVal(tcyc, true, false, index)
			if !q.entries[j].CompareAndSwap(e, n) {
				continue
			}
			// Finalize the help request, then flip Enq to 1.
			if thr.localTail.CompareAndSwap(t, t|atomicx.FIN) {
				q.entries[j].CompareAndSwap(n, n|q.enqBit)
			}
			// Slow-path re-arm; the store (when needed) is seq-cst, see
			// rearmThreshold.
			q.rearmThreshold()
			return true
		}
		if q.vcyc(e) != tcyc {
			return false // slot unusable for this cycle
		}
		return true // already inserted by a cooperative thread
	}
}

// tryDeqSlow is one slow-path dequeue attempt at head counter h
// (Figure 7, line 43). Returns true when the result is ready (or the
// queue is empty and FIN was set); false directs the group onward.
// wcq:noalloc
func (q *WCQ) tryDeqSlow(h uint64, thr *record) bool {
	j := q.remapPos(h)
	hcyc := q.cycleOf(h)
	for {
		e := q.entries[j].Load()
		idx := q.entIndex(e)
		// Ready, or consumed by the request owner (⊥c or a value).
		if q.vcyc(e) == hcyc && idx != q.bottom {
			thr.localHead.CompareAndSwap(h, h|atomicx.FIN) // terminate helpers
			return true
		}
		var n uint64
		if idx != q.bottom && idx != q.bottomC {
			if q.vcyc(e) < hcyc && q.noteLess(e, hcyc) {
				// Avert helper dequeuers from using this slot: mark
				// Note, then re-read (the subsequent value CAS against
				// the stale word would fail anyway).
				if q.entries[j].CompareAndSwap(e, q.setNote(e, hcyc)) {
					continue
				}
				continue
			}
			// Old-cycle value: clear IsSafe, keep cycle/Enq/index.
			n = q.noteBits(e) | q.packVal(q.vcyc(e), false, q.entEnq(e), idx)
		} else {
			// Empty slot: stamp our cycle with ⊥ so an older producer
			// cannot use it.
			n = q.noteBits(e) | q.packVal(hcyc, q.entSafe(e), true, q.bottom)
		}
		if q.vcyc(e) < hcyc {
			if !q.entries[j].CompareAndSwap(e, n) {
				continue
			}
		}
		// Empty detection: threshold is decremented by slow_F&A.
		t := q.tailCnt()
		if t <= h+1 {
			q.catchup(t, h+1)
			if q.threshold.Load() < 0 {
				thr.localHead.CompareAndSwap(h, h|atomicx.FIN)
				return true // empty result
			}
		}
		return false
	}
}
