package core

import (
	"sync/atomic"
	"testing"

	"wcqueue/internal/atomicx"
)

// These tests drive the Figure 7 protocol pieces directly.

func TestSlowFAAAdvancesGlobalOnce(t *testing.T) {
	q := Must(4, Options{})
	rec := q.rec(0)
	seq := rec.seq1.Load()

	start := q.tailCnt()
	v := start - 1 // pretend the fast path tried counter start-1
	rec.localTail.Store(v)

	if !q.slowFAA(&q.tail, &rec.localTail, &v, nil, rec, rec, seq) {
		t.Fatal("slowFAA returned false on a live request")
	}
	if v != start {
		t.Fatalf("slowFAA handed counter %d, want %d", v, start)
	}
	if got := q.tailCnt(); got != start+1 {
		t.Fatalf("global advanced to %d, want exactly %d", got, start+1)
	}
	if atomicx.PairID(q.tail.Load()) != atomicx.NoOwner {
		t.Fatal("phase2 pointer left set")
	}
	if lv := rec.localTail.Load(); atomicx.Counter(lv) != start || atomicx.HasINC(lv) {
		t.Fatalf("local not settled: %#x", lv)
	}
}

func TestSlowFAAStopsOnFIN(t *testing.T) {
	q := Must(4, Options{})
	rec := q.rec(0)
	seq := rec.seq1.Load()
	v := uint64(100)
	rec.localTail.Store(v | atomicx.FIN)

	before := q.tailCnt()
	if q.slowFAA(&q.tail, &rec.localTail, &v, nil, rec, rec, seq) {
		t.Fatal("slowFAA proceeded past FIN")
	}
	if q.tailCnt() != before {
		t.Fatal("slowFAA moved the global after FIN")
	}
}

func TestSlowFAAStaleHelperAborts(t *testing.T) {
	q := Must(4, Options{})
	helpee := q.rec(0)
	helper := q.rec(1)
	staleSeq := helpee.seq1.Load()
	helpee.seq1.Store(staleSeq + 1) // request completed; helper snapshot is stale

	v := q.tailCnt() - 1
	helpee.localTail.Store(v + 100) // a newer request's counter
	before := q.tailCnt()
	if q.slowFAA(&q.tail, &helpee.localTail, &v, nil, helper, helpee, staleSeq) {
		t.Fatal("stale helper proceeded")
	}
	if q.tailCnt() != before {
		t.Fatal("stale helper moved the global")
	}
}

func TestSlowFAADecrementsThresholdOncePerIncrement(t *testing.T) {
	q := Must(4, Options{})
	q.threshold.Store(100)
	rec := q.rec(0)
	seq := rec.seq1.Load()
	start := q.headCnt()
	v := start - 1
	rec.localHead.Store(v)

	if !q.slowFAA(&q.head, &rec.localHead, &v, &q.threshold, rec, rec, seq) {
		t.Fatal("slowFAA failed")
	}
	if got := q.threshold.Load(); got != 99 {
		t.Fatalf("threshold = %d, want 99 (exactly one decrement)", got)
	}
}

func TestLoadGlobalHelpsPhase2(t *testing.T) {
	q := Must(4, Options{})
	owner := q.rec(1)
	caller := q.rec(0)
	seq := caller.seq1.Load()
	caller.localTail.Store(5)

	// Simulate owner mid-phase-2: phase2 published, global pointer set,
	// owner's local still carrying INC.
	cnt := q.tailCnt()
	owner.localTail.Store(cnt | atomicx.INC)
	q.preparePhase2(&owner.phase2, &owner.localTail, cnt)
	w := q.tail.Load()
	q.tail.Store(atomicx.PackPair(atomicx.PairCnt(w)+1, atomicx.OwnerID(owner.tid)))

	got, ok := q.loadGlobalHelpPhase2(&q.tail, &caller.localTail, caller, seq)
	if !ok {
		t.Fatal("loadGlobal aborted")
	}
	if got != cnt+1 {
		t.Fatalf("counter = %d, want %d", got, cnt+1)
	}
	if atomicx.PairID(q.tail.Load()) != atomicx.NoOwner {
		t.Fatal("phase2 pointer not cleared")
	}
	if lv := owner.localTail.Load(); atomicx.HasINC(lv) || atomicx.Counter(lv) != cnt {
		t.Fatalf("owner's phase 2 not completed: %#x", lv)
	}
}

func TestFinalizeRequestSetsFIN(t *testing.T) {
	q := Must(4, Options{})
	target := q.rec(2)
	target.localTail.Store(777)
	q.finalizeRequest(777)
	if !atomicx.HasFIN(target.localTail.Load()) {
		t.Fatal("finalizeRequest did not set FIN on the matching record")
	}
	// Non-matching counters stay untouched.
	other := q.rec(1)
	other.localTail.Store(888)
	q.finalizeRequest(999)
	if atomicx.HasFIN(other.localTail.Load()) {
		t.Fatal("finalizeRequest hit a non-matching record")
	}
}

func TestConsumeFinalizesPendingEnqueuer(t *testing.T) {
	q := Must(4, Options{})
	enq := q.rec(1)
	h := uint64(4242)
	enq.localTail.Store(h)
	j := q.remapPos(h)
	// Entry produced with Enq=0 (two-step insert in flight).
	e := q.packVal(q.cycleOf(h), true, false, 3)
	q.entries[j].Store(e)

	q.consume(h, j, e)

	if !atomicx.HasFIN(enq.localTail.Load()) {
		t.Fatal("consume did not finalize the pending enqueue")
	}
	got := q.entries[j].Load()
	if !q.entEnq(got) || q.entIndex(got) != q.bottomC {
		t.Fatalf("consume left entry enq=%v idx=%d", q.entEnq(got), q.entIndex(got))
	}
}

func TestHelpThreadsAmortization(t *testing.T) {
	q := Must(4, Options{HelpDelay: 10})
	tid, _ := q.Register()
	rec := q.rec(tid)
	peer := q.rec(tid + 1)
	// A bogus pending flag alone must not trigger help before the
	// delay elapses (seq validation rejects it when it does).
	peer.pending.Store(true)
	peer.enqueue.Store(true)
	peer.seq2.Store(peer.seq1.Load() + 1) // invalid: seq1 != seq2
	var helps uint64
	for i := 0; i < 25; i++ {
		before := rec.statHelps.Load()
		q.helpThreads(rec)
		helps += rec.statHelps.Load() - before
	}
	// 25 calls with delay 10 → at most 3 scans; each scan's help
	// attempt is counted even though the stale seq bails immediately.
	if helps > 3 {
		t.Fatalf("help scans not amortized: %d in 25 ops", helps)
	}
	peer.pending.Store(false)
}

func TestStatsRace(t *testing.T) {
	// Stats is read concurrently with operations; exercised under the
	// race detector in CI runs.
	q := MustQueue[uint64](6, Options{EnqPatience: 1, DeqPatience: 1})
	done := make(chan struct{})
	var total atomic.Uint64
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s := q.Stats()
			total.Add(s.Helps)
		}
	}()
	h, _ := q.Register()
	for i := uint64(0); i < 5000; i++ {
		q.Enqueue(h, i)
		q.Dequeue(h)
	}
	<-done
}
