// Package core implements wCQ, the wait-free circular queue of
// Nikolaev & Ravindran (SPAA '22) — the paper's primary contribution.
//
// wCQ extends SCQ with a fast-path-slow-path scheme: every operation
// first runs the SCQ algorithm for a bounded number of attempts
// (MAX_PATIENCE) and then publishes a help request in its per-thread
// record. All threads periodically scan for pending requests and
// execute the slow path on the requester's behalf; the slow_F&A
// protocol (Figure 7) keeps the cooperating threads in lock step so
// the global Head/Tail advance exactly once per group iteration.
//
// Platform substitutions (see DESIGN.md §2): the paper's CAS2 on the
// 128-bit {Note, Value} entry pair becomes a single-word CAS on a
// packed 64-bit word, and the {cnt, phase2-ptr} Head/Tail pairs become
// a 48-bit counter plus 16-bit owner id, which is the paper's own §4
// porting suggestion.
package core

import (
	"fmt"
	"sync/atomic"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/bitops"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/pad"
)

// Default tuning constants, matching §6 of the paper.
const (
	DefaultEnqPatience = 16 // MAX_PATIENCE for Enqueue
	DefaultDeqPatience = 64 // MAX_PATIENCE for Dequeue
	DefaultHelpDelay   = 64 // HELP_DELAY between help_threads scans
)

// Options configures a WCQ ring.
type Options struct {
	// EnqPatience and DeqPatience are the fast-path attempt budgets
	// (MAX_PATIENCE). Zero selects the defaults.
	EnqPatience int
	DeqPatience int
	// HelpDelay is the number of operations between help_threads
	// scans. Zero selects the default.
	HelpDelay int
	// EmulatedFAA replaces hardware F&A and atomic OR with CAS loops,
	// modeling LL/SC architectures (PowerPC/MIPS, paper §4). Used by
	// the Fig. 12 experiments.
	EmulatedFAA bool
	// NoRemap disables the Cache_Remap permutation (ablation A4).
	NoRemap bool
	// MaxHandles caps concurrently registered handles. Zero selects
	// the owner-id space maximum (atomicx.MaxOwners, 65535). Smaller
	// caps shrink the chunk directory and bound arena growth.
	MaxHandles int
	// ConservativeAtomics disables the hot-path atomic diet
	// (DESIGN.md §11): entry loads and the threshold re-arm guard run
	// seq-cst, and batched dequeues keep the per-position threshold
	// bookkeeping. (The empty fast-exit load is always a real atomic
	// load, diet or not — it has no RMW on its path to anchor the
	// relaxed-load argument; see thresholdNonNegative.) The E-series
	// diet ablation is the only intended user; the default (diet on)
	// is safe on every supported platform — race builds and non-TSO
	// targets already compile the relaxed accessors down to seq-cst
	// ones.
	ConservativeAtomics bool
	// OnArenaGrow, when non-nil, is called with the byte size of every
	// record chunk the arena publishes. The unbounded queue uses it to
	// keep its footprint counter exact while rings grow their arenas
	// lazily across hops.
	OnArenaGrow func(bytes int64)
}

// WCQ is a wait-free bounded MPMC ring of indices in [0, n), n = 2^order.
//
// As with scq.Ring, the indirection construction guarantees at most n
// live indices, so Enqueue always finds a slot. Operations take the
// caller's thread id from Register.
type WCQ struct {
	order     uint   // k: n = 1<<k usable entries
	ringOrder uint   // k+1: 2n physical entries
	posMask   uint64 // 2n-1
	idxBits   uint   // k+1
	idxMask   uint64
	enqBit    uint64 // Enq flag, bit idxBits
	safeBit   uint64 // IsSafe flag, bit idxBits+1
	vShift    uint   // value-cycle field offset: idxBits+2
	vBits     uint
	vMask     uint64 // unshifted value-cycle mask
	noteShift uint   // note field offset: idxBits+2+vBits
	nMask     uint64 // unshifted note mask
	valMask   uint64 // mask of all non-note bits: (1<<noteShift)-1
	bottom    uint64 // ⊥  = 2n-2
	bottomC   uint64 // ⊥c = 2n-1
	thresh3n  int64
	noRemap   bool
	emulFAA   bool
	relaxed   bool // hot-path atomic diet enabled (DESIGN.md §11)

	enqPatience int
	deqPatience int
	helpDelay   int

	threshold pad.Int64
	tail      pad.Uint64 // PairWord {cnt:48, owner:16}
	head      pad.Uint64 // PairWord

	// contended counts fast-path entry-CAS failures — the moments two
	// threads actually collided on one slot. It is the per-lane
	// contention-feedback signal the elastic striped front-end's
	// resize governor samples (DESIGN.md §13). Only the failure branch
	// pays the Add, so the uncontended hot path is untouched.
	contended pad.Uint64

	entries []atomic.Uint64

	// Record arena (arena.go): a fixed directory of atomically
	// published chunks replaces the fixed per-thread slab. nrec is the
	// published arena length (a multiple of chunkSize) bounding every
	// reader-side iteration; arenaBytes feeds Footprint.
	chunks     []atomic.Pointer[recordChunk]
	nrec       atomic.Int64
	arenaBytes atomic.Int64
	maxHandles int
	onGrow     func(int64)

	alloc SlotAlloc

	maxOps   uint64
	footBase int64
}

// phase2rec is the second-phase help request (Figure 4). The seq1/seq2
// pair is a seqlock: the writer bumps seq1, fills the fields, then
// publishes seq2 = seq1; readers snapshot seq2 first and re-check seq1
// after reading the fields.
type phase2rec struct {
	seq1  atomic.Uint64
	local atomic.Pointer[atomic.Uint64]
	cnt   atomic.Uint64
	seq2  atomic.Uint64
}

// record is the per-thread state (thrdrec_t, Figure 4), padded to its
// own cache lines.
type record struct {
	_ pad.DoublePad

	// Private fields: touched only by the owning thread.
	nextCheck int
	nextTid   int
	tid       int

	// Owner-written statistics (read racily by Stats; monotone
	// counters, so staleness is benign).
	statSlowEnq atomic.Uint64
	statSlowDeq atomic.Uint64
	statHelps   atomic.Uint64

	// Shared fields: the help request.
	phase2    phase2rec
	seq1      atomic.Uint64 // starts at 1
	enqueue   atomic.Bool
	pending   atomic.Bool
	localTail atomic.Uint64 // FlaggedCounter (FIN/INC over 62-bit counter)
	initTail  atomic.Uint64
	localHead atomic.Uint64 // FlaggedCounter
	initHead  atomic.Uint64
	index     atomic.Uint64
	seq2      atomic.Uint64 // starts at 0

	registered bool

	_ pad.DoublePad
}

// New creates a WCQ ring of order k (n = 2^k usable slots). Handles
// register dynamically: the record arena starts empty and grows on
// demand up to opts.MaxHandles (default: the full owner-id space).
func New(order uint, opts Options) (*WCQ, error) {
	if order < 1 || order > 24 {
		return nil, fmt.Errorf("core: ring order %d out of range [1, 24]", order)
	}
	maxHandles := opts.MaxHandles
	if maxHandles == 0 {
		maxHandles = int(atomicx.MaxOwners)
	}
	if maxHandles < 1 || uint64(maxHandles) > atomicx.MaxOwners {
		return nil, fmt.Errorf("core: MaxHandles %d out of range [1, %d]", maxHandles, atomicx.MaxOwners)
	}
	q := &WCQ{
		maxHandles:  maxHandles,
		order:       order,
		ringOrder:   order + 1,
		posMask:     1<<(order+1) - 1,
		idxBits:     order + 1,
		idxMask:     1<<(order+1) - 1,
		enqBit:      1 << (order + 1),
		safeBit:     1 << (order + 2),
		vShift:      order + 3,
		bottom:      1<<(order+1) - 2,
		bottomC:     1<<(order+1) - 1,
		thresh3n:    3*int64(1<<order) - 1,
		noRemap:     opts.NoRemap,
		emulFAA:     opts.EmulatedFAA,
		relaxed:     !opts.ConservativeAtomics,
		enqPatience: opts.EnqPatience,
		deqPatience: opts.DeqPatience,
		helpDelay:   opts.HelpDelay,
	}
	rest := 64 - (q.idxBits + 2) // bits left for the two cycle fields
	nBits := rest / 2
	vBits := rest - nBits
	q.vBits = vBits
	q.vMask = 1<<vBits - 1
	q.noteShift = q.vShift + vBits
	q.nMask = 1<<nBits - 1
	q.valMask = 1<<q.noteShift - 1
	if q.enqPatience <= 0 {
		q.enqPatience = DefaultEnqPatience
	}
	if q.deqPatience <= 0 {
		q.deqPatience = DefaultDeqPatience
	}
	if q.helpDelay <= 0 {
		q.helpDelay = DefaultHelpDelay
	}
	// Cycle wrap bound: the smaller cycle field (note is biased by 1)
	// times the ring size, also capped by the 48-bit pair counter.
	maxCyc := min(q.vMask, q.nMask-1)
	q.maxOps = min(maxCyc<<q.ringOrder, atomicx.MaxPairCnt)

	q.entries = make([]atomic.Uint64, 1<<q.ringOrder)
	q.chunks = make([]atomic.Pointer[recordChunk], (maxHandles+chunkSize-1)/chunkSize)
	q.alloc = NewSlotAlloc(maxHandles)
	q.onGrow = opts.OnArenaGrow
	q.initEmpty()
	q.footBase = int64(len(q.entries))*8 + int64(len(q.chunks))*8
	return q, nil
}

// Must is New that panics on error.
func Must(order uint, opts Options) *WCQ {
	q, err := New(order, opts)
	if err != nil {
		panic(err)
	}
	return q
}

// N returns the usable capacity n.
func (q *WCQ) N() uint64 { return 1 << q.order }

// Order returns the ring order k.
func (q *WCQ) Order() uint { return q.order }

// MaxOps returns the number of operations the queue can safely execute
// before its packed cycle counters could wrap (DESIGN.md §2.1). For
// the default order 16 this is ≈5·10^11.
func (q *WCQ) MaxOps() uint64 { return q.maxOps }

// Footprint returns the live bytes of queue-owned memory: the fixed
// entry array and chunk directory plus the published record chunks.
// It grows only with the registration high-water mark (never per
// operation — Theorem 5.8's bound, now parameterized by peak handle
// concurrency instead of a declared thread census).
func (q *WCQ) Footprint() int64 { return q.footBase + q.arenaBytes.Load() }

// ---- Entry word encoding -------------------------------------------------
//
// [ note : nBits ][ vcycle : vBits ][ IsSafe : 1 ][ Enq : 1 ][ index : idxBits ]
//
// note stores the Note cycle biased by +1 so the zero value encodes
// the initial −1. A single-word CAS on this layout is exactly the
// paper's CAS2 on the {Note, Value} pair.

// packVal builds the non-note (Value) bits of an entry word.
// wcq:noalloc
func (q *WCQ) packVal(cycle uint64, safe, enq bool, index uint64) uint64 {
	w := (cycle&q.vMask)<<q.vShift | index
	if safe {
		w |= q.safeBit
	}
	if enq {
		w |= q.enqBit
	}
	return w
}

// wcq:noalloc
func (q *WCQ) vcyc(e uint64) uint64     { return (e >> q.vShift) & q.vMask }
// wcq:noalloc
func (q *WCQ) entIndex(e uint64) uint64 { return e & q.idxMask }
// wcq:noalloc
func (q *WCQ) entSafe(e uint64) bool    { return e&q.safeBit != 0 }
// wcq:noalloc
func (q *WCQ) entEnq(e uint64) bool     { return e&q.enqBit != 0 }

// noteBits returns just the note field bits of e (in place).
// wcq:noalloc
func (q *WCQ) noteBits(e uint64) uint64 { return e &^ q.valMask }

// noteLess reports Note < cycle (with the +1 bias: field ≤ cycle).
// wcq:noalloc
func (q *WCQ) noteLess(e, cycle uint64) bool {
	return e>>q.noteShift <= cycle&q.nMask
}

// setNote returns e with the Note field advanced to cycle.
// wcq:noalloc
func (q *WCQ) setNote(e, cycle uint64) uint64 {
	return e&q.valMask | ((cycle+1)&q.nMask)<<q.noteShift
}

// cycleOf maps a Head/Tail counter to its cycle number (field width).
// wcq:noalloc
func (q *WCQ) cycleOf(counter uint64) uint64 { return (counter >> q.ringOrder) & q.vMask }

// wcq:noalloc
func (q *WCQ) remapPos(counter uint64) uint64 {
	if q.noRemap {
		return counter & q.posMask
	}
	return bitops.Remap(counter&q.posMask, q.ringOrder)
}

// initEmpty sets the canonical empty state: Tail = Head = 2n (cycle 1),
// entries {Note: −1, Cycle: 0, IsSafe: 1, Enq: 1, Index: ⊥},
// Threshold = −1.
func (q *WCQ) initEmpty() {
	for i := range q.entries {
		q.entries[i].Store(q.packVal(0, true, true, q.bottom))
	}
	twoN := uint64(1) << q.ringOrder
	q.head.Store(atomicx.PackPair(twoN, atomicx.NoOwner))
	q.tail.Store(atomicx.PackPair(twoN, atomicx.NoOwner))
	q.threshold.Store(-1)
}

// Reset returns the ring to its post-New empty state — entries,
// Head/Tail, threshold and every per-thread record — without
// reallocating, so a drained ring can be recycled through a pool
// (DESIGN.md §8). The caller must guarantee quiescence: no operation
// may be in flight on the ring, and none may start until Reset
// returns. The unbounded queue's hazard-pointer protocol provides
// exactly that window (a ring is reset only after reclamation proves
// no thread can still dereference it). Registration state is
// preserved: thread ids stay valid across a reset.
func (q *WCQ) Reset() {
	q.resetRecords()
	q.initEmpty()
}

// ResetFull is Reset for free-index rings: it restores the InitFull
// state (indices 0..n-1 enqueued) instead of the empty state. Same
// quiescence contract as Reset.
func (q *WCQ) ResetFull() {
	q.resetRecords()
	q.InitFull()
}

// resetRecords restores every per-thread record to its post-New state.
// Counters (localHead/localTail, seq1/seq2, phase2) must be rewound
// together with the global Head/Tail: the slow path's staleness guards
// compare them, and a stale high counter from a previous life of the
// ring could otherwise alias a future request. pending is already
// false for every record (quiescence), so helpers cannot observe the
// intermediate states.
func (q *WCQ) resetRecords() {
	q.forEachRecord(func(r *record) bool {
		r.nextCheck = q.helpDelay
		r.nextTid = r.tid + 1
		r.statSlowEnq.Store(0)
		r.statSlowDeq.Store(0)
		r.statHelps.Store(0)
		r.phase2.seq1.Store(0)
		r.phase2.local.Store(nil)
		r.phase2.cnt.Store(0)
		r.phase2.seq2.Store(0)
		r.seq1.Store(1)
		r.enqueue.Store(false)
		r.pending.Store(false)
		r.localTail.Store(0)
		r.initTail.Store(0)
		r.localHead.Store(0)
		r.initHead.Store(0)
		r.index.Store(0)
		r.seq2.Store(0)
		return true
	})
}

// InitFull fills the ring with indices 0..n-1 (the free queue's start
// state). Must be called before concurrent use.
func (q *WCQ) InitFull() {
	n := uint64(1) << q.order
	twoN := n * 2
	for p := uint64(0); p < n; p++ {
		q.entries[q.remapPos(p)].Store(q.packVal(1, true, true, p))
	}
	for p := n; p < twoN; p++ {
		q.entries[q.remapPos(p)].Store(q.packVal(0, true, true, q.bottom))
	}
	q.head.Store(atomicx.PackPair(twoN, atomicx.NoOwner))
	q.tail.Store(atomicx.PackPair(twoN+n, atomicx.NoOwner))
	q.threshold.Store(q.thresh3n)
}

// ---- Global counter access ------------------------------------------------

// faaRaw fetches-and-increments the counter of a global pair word,
// returning the previous raw word (callers extract the counter and the
// finalize bit). With EmulatedFAA it runs the CAS loop an LL/SC
// machine would.
// wcq:noalloc
func (q *WCQ) faaRaw(global *pad.Uint64) uint64 {
	if q.emulFAA {
		for {
			w := global.Load()
			if global.CompareAndSwap(w, w+atomicx.CntUnit) {
				return w
			}
		}
	}
	return global.Add(atomicx.CntUnit) - atomicx.CntUnit
}

// faa is faaRaw returning just the previous counter.
// wcq:noalloc
func (q *WCQ) faa(global *pad.Uint64) uint64 {
	return atomicx.PairCnt(q.faaRaw(global))
}

// faaAddRaw reserves k consecutive counters of a global pair word with
// a single atomic add (k·CntUnit carries only within the counter
// field), returning the previous raw word. One F&A for k operations is
// the batched fast path's amortization point; it is linearizable as k
// back-to-back single F&As with nothing interleaved.
// wcq:noalloc
func (q *WCQ) faaAddRaw(global *pad.Uint64, k uint64) uint64 {
	delta := k * atomicx.CntUnit
	if q.emulFAA {
		for {
			w := global.Load()
			if global.CompareAndSwap(w, w+delta) {
				return w
			}
		}
	}
	return global.Add(delta) - delta
}

// orEntry atomically ORs mask into entry j (hardware OR, or a CAS loop
// under EmulatedFAA).
// wcq:noalloc
func (q *WCQ) orEntry(j uint64, mask uint64) {
	if q.emulFAA {
		for {
			e := q.entries[j].Load()
			if e&mask == mask || q.entries[j].CompareAndSwap(e, e|mask) {
				return
			}
		}
	}
	q.entries[j].Or(mask)
}

// wcq:noalloc
func (q *WCQ) headCnt() uint64 { return atomicx.PairCnt(q.head.Load()) }
// wcq:noalloc
func (q *WCQ) tailCnt() uint64 { return atomicx.PairCnt(q.tail.Load()) }

// ---- Hot-path atomic diet (DESIGN.md §11) --------------------------------

// loadEntry loads entry j for the fast-path CAS loops. Relaxed under
// the diet: every consumer of the value either re-validates it with a
// CAS on the same word (a stale read costs one extra iteration) or
// acts conservatively on it (a stale read makes the operation fail a
// position it could have used — indistinguishable from losing a race).
// The slow path keeps seq-cst entry loads; its proofs lean on
// unconditional Note monotonicity rather than CAS re-validation.
// wcq:noalloc
func (q *WCQ) loadEntry(j uint64) uint64 {
	if q.relaxed {
		// wcq:relaxed-ok fast-path consumers CAS the same entry word (re-validation) or fail the position conservatively; the slow path never takes this branch (seq-cst loads), DESIGN.md §11
		return atomicx.RelaxedLoad(&q.entries[j])
	}
	return q.entries[j].Load()
}

// thresholdNonNegative is the dequeue-side empty fast-exit check. It
// deliberately stays a real atomic load, diet or no diet: this is the
// one hot-path load with NO atomic RMW on its own path (the empty exit
// returns before any F&A), so the diet's "never folded across the
// consuming loop's back-edge RMW" argument does not cover it — a
// relaxed load here could legally be hoisted out of a caller's
// poll-until-nonempty loop by the compiler, turning a momentarily
// empty observation into a permanent one (the classic plain-bool spin
// hang). On amd64 the atomic load is the same MOV; what it buys is the
// compiler ordering barrier, which is exactly the needed property.
// wcq:noalloc
func (q *WCQ) thresholdNonNegative() bool {
	return q.threshold.Load() >= 0
}

// rearmThreshold restores the dequeue budget to 3n−1 after a
// successful fast-path enqueue. The re-arm itself is mandatory —
// skipping it can strand the value just enqueued (dequeuers exhaust
// the budget, conclude empty, and the threshold<0 fast-exit makes
// that conclusion sticky until the NEXT enqueue, which may never
// come). Under the diet only the GUARD LOAD is relaxed: a stale
// "armed" reading means the true value is even fresher (the armed
// state it saw was real; only a consumer decrement can have followed,
// and that consumer re-arms visibility through its own protocol), so
// the skip stays sound, and the common armed case costs exactly the
// seq-cst check's MOV+compare.
//
// The store, when needed, deliberately stays seq-cst (XCHG). A plain
// store would sit in the enqueuer's store buffer past Enqueue's
// return, and a Dequeue starting strictly AFTER that return could
// read the stale negative threshold and report empty — a real-time
// linearizability violation the indirect Dequeue must not have. The
// XCHG drains the buffer before Enqueue returns, exactly the property
// the original unconditional Store provided; it only runs when the
// budget actually decayed, so the armed steady state never pays it.
// wcq:noalloc
func (q *WCQ) rearmThreshold() {
	if q.relaxed {
		if atomicx.RelaxedLoadInt64(q.threshold.Raw()) == q.thresh3n {
			return
		}
	} else if q.threshold.Load() == q.thresh3n {
		return
	}
	if failpoint.Enabled {
		// Decay observed, 3n-1 store pending: a thread frozen here must
		// not leave dequeuers concluding empty on a non-empty ring.
		failpoint.Inject(failpoint.CoreThresholdRearm)
	}
	q.threshold.Store(q.thresh3n)
}

// Head and Tail expose raw counters for tests.
func (q *WCQ) Head() uint64 { return q.headCnt() }

// Tail returns the raw tail counter.
func (q *WCQ) Tail() uint64 { return q.tailCnt() }

// Threshold returns the current threshold value.
func (q *WCQ) Threshold() int64 { return q.threshold.Load() }

// ContentionEvents returns the cumulative count of fast-path entry-CAS
// failures — the resize governor's per-lane contention signal
// (DESIGN.md §13). Monotone; read racily, so callers must work with
// deltas.
func (q *WCQ) ContentionEvents() uint64 { return q.contended.Load() }

// Drained reports that every position a completed enqueue ever
// reserved has also been claimed by a dequeuer: Tail ≤ Head at one
// observed instant. Head is read FIRST — Tail only grows, so a Tail
// read at or below an earlier Head certifies that at the Tail read
// every reserved position (all of them < Tail) was already covered by
// a head reservation, i.e. its dequeue had linearized. The witness is
// conservative in exactly the direction the elastic striped layer
// needs (DESIGN.md §13): a handle that observes Drained() on its lane
// knows all its completed enqueues have been consumed in the queue's
// linearization order, so hopping to a fresh lane cannot reorder its
// stream. Catchup keeps Tail tracking Head on an empty ring, so the
// witness does fire in practice.
func (q *WCQ) Drained() bool {
	h := q.headCnt()
	return q.tailCnt() <= h
}

// ResetThreshold restores the threshold to 3n−1 (Appendix A, line 59).
func (q *WCQ) ResetThreshold() { q.threshold.Store(q.thresh3n) }

// maxCatchup bounds catchup iterations (required for wait-freedom,
// §3.2 "Bounding catchup").
const maxCatchup = 8

// catchup advances Tail's counter to head when dequeuers overran it,
// preserving the phase2 owner id and finalize bits.
// wcq:noalloc
func (q *WCQ) catchup(tail, head uint64) {
	for i := 0; i < maxCatchup; i++ {
		w := q.tail.Load()
		if atomicx.PairCnt(w) != tail {
			tail = atomicx.PairCnt(w)
			head = q.headCnt()
			if tail >= head {
				return
			}
			continue
		}
		if q.tail.CompareAndSwap(w, atomicx.PairSetCnt(w, head)) {
			return
		}
	}
}

// Finalize permanently closes the ring for enqueues (Appendix A,
// finalize_wCQ): an atomic OR of the finalize bit into the Tail pair.
// Dequeues continue to drain remaining elements. Enqueues whose F&A
// precedes the OR may still complete; enqueues after it fail, which is
// the linearization the unbounded construction relies on.
// wcq:noalloc
func (q *WCQ) Finalize() { q.tail.Or(atomicx.FinalizeBit) }

// Finalized reports whether the ring is closed for enqueues.
func (q *WCQ) Finalized() bool { return atomicx.PairFinalized(q.tail.Load()) }
