package core

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/check"
)

func newRing(t *testing.T, order uint, opts Options) *WCQ {
	t.Helper()
	q, err := New(order, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestWCQSequentialFIFO(t *testing.T) {
	q := newRing(t, 4, Options{})
	tid, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		q.Enqueue(tid, i)
	}
	for i := uint64(0); i < 16; i++ {
		got, ok := q.Dequeue(tid)
		if !ok || got != i {
			t.Fatalf("Dequeue %d: got (%d,%v)", i, got, ok)
		}
	}
	if _, ok := q.Dequeue(tid); ok {
		t.Fatal("Dequeue on empty ring returned a value")
	}
}

func TestWCQWrapAroundManyCycles(t *testing.T) {
	q := newRing(t, 2, Options{}) // n = 4
	tid, _ := q.Register()
	for round := uint64(0); round < 2000; round++ {
		for i := uint64(0); i < 4; i++ {
			q.Enqueue(tid, i)
		}
		for i := uint64(0); i < 4; i++ {
			got, ok := q.Dequeue(tid)
			if !ok || got != i {
				t.Fatalf("round %d pos %d: got (%d,%v)", round, i, got, ok)
			}
		}
		if _, ok := q.Dequeue(tid); ok {
			t.Fatalf("round %d: ring not empty after drain", round)
		}
	}
}

func TestWCQRegisterExhaustion(t *testing.T) {
	q := newRing(t, 4, Options{MaxHandles: 2})
	a, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err = q.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err = q.Register(); err == nil {
		t.Fatal("third Register on a MaxHandles=2 queue succeeded")
	}
	q.Unregister(a)
	if _, err = q.Register(); err != nil {
		t.Fatalf("Register after Unregister failed: %v", err)
	}
}

// TestWCQDynamicRegistrationGrowsArena registers past several chunk
// boundaries without any declared thread census: Register must never
// fail below the handle cap, the arena must grow chunk-wise, and slot
// recycling must keep the high-water mark flat afterwards.
func TestWCQDynamicRegistrationGrowsArena(t *testing.T) {
	q := newRing(t, 4, Options{})
	base := q.Footprint()
	const n = 3*chunkSize + 5
	tids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		tid, err := q.Register()
		if err != nil {
			t.Fatalf("Register %d failed: %v", i, err)
		}
		if tid != i {
			t.Fatalf("fresh registration %d got tid %d", i, tid)
		}
		tids = append(tids, tid)
	}
	wantChunks := int64((n + chunkSize - 1) / chunkSize)
	if got := q.ArenaBytes(); got != wantChunks*chunkBytes {
		t.Fatalf("arena = %d bytes, want %d chunks", got, wantChunks)
	}
	if q.Footprint() != base+wantChunks*chunkBytes {
		t.Fatalf("footprint does not account arena growth")
	}
	if hw := q.HandleHighWater(); hw != n {
		t.Fatalf("high-water = %d, want %d", hw, n)
	}
	// Churn: release everything and re-register; recycled slots must
	// keep both the high-water mark and the arena flat.
	for _, tid := range tids {
		q.Unregister(tid)
	}
	if live := q.LiveHandles(); live != 0 {
		t.Fatalf("live = %d after full unregister", live)
	}
	for i := 0; i < 5*n; i++ {
		tid, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(tid, uint64(i)&15)
		q.Dequeue(tid)
		q.Unregister(tid)
	}
	if hw := q.HandleHighWater(); hw != n {
		t.Fatalf("churn grew high-water to %d, want %d", hw, n)
	}
	if got := q.ArenaBytes(); got != wantChunks*chunkBytes {
		t.Fatalf("churn grew arena to %d bytes", got)
	}
}

func TestWCQEntryEncodingRoundTrip(t *testing.T) {
	q := Must(6, Options{})
	f := func(cycle, note, index uint64, safe, enq bool) bool {
		cycle &= q.vMask
		note &= q.nMask - 1 // leave room for the +1 bias
		index &= q.idxMask
		e := q.setNote(q.packVal(cycle, safe, enq, index), note)
		return q.vcyc(e) == cycle &&
			q.entSafe(e) == safe &&
			q.entEnq(e) == enq &&
			q.entIndex(e) == index &&
			!q.noteLess(e, note) && // Note == note, so not <
			q.noteLess(e, note+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWCQConsumePreservesCycleAndNote(t *testing.T) {
	q := Must(5, Options{})
	e := q.setNote(q.packVal(7, true, false, 3), 9)
	q.entries[0].Store(e)
	q.orEntry(0, q.enqBit|q.bottomC)
	got := q.entries[0].Load()
	if q.vcyc(got) != 7 || !q.entSafe(got) || !q.entEnq(got) || q.entIndex(got) != q.bottomC {
		t.Fatalf("consume mangled entry: cyc=%d safe=%v enq=%v idx=%d",
			q.vcyc(got), q.entSafe(got), q.entEnq(got), q.entIndex(got))
	}
	if q.noteLess(got, 8) || !q.noteLess(got, 10) {
		t.Fatal("consume disturbed the Note field")
	}
}

func TestWCQPairWordFAAPreservesOwner(t *testing.T) {
	q := Must(4, Options{})
	q.tail.Store(atomicx.PackPair(100, atomicx.OwnerID(3)))
	got := q.faa(&q.tail)
	if got != 100 {
		t.Fatalf("faa returned %d, want 100", got)
	}
	w := q.tail.Load()
	if atomicx.PairCnt(w) != 101 || atomicx.PairID(w) != atomicx.OwnerID(3) {
		t.Fatalf("faa mangled pair word: cnt=%d id=%d", atomicx.PairCnt(w), atomicx.PairID(w))
	}
	q.initEmpty()
}

// wcqAdapter drives a value Queue with per-goroutine handles.
type wcqAdapter struct {
	q *Queue[uint64]
}

func runWCQMPMC(t *testing.T, q *Queue[uint64], producers, consumers int, perProducer uint64) {
	t.Helper()
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * perProducer
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle) {
			defer wg.Done()
			for s := uint64(0); s < perProducer; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, perProducer).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWCQConcurrentMPMC(t *testing.T) {
	per := uint64(20000)
	if testing.Short() {
		per = 2000
	}
	q := MustQueue[uint64](12, Options{})
	runWCQMPMC(t, q, 4, 4, per)
}

func TestWCQConcurrentManyThreads(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skip("needs 2+ procs")
	}
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	q := MustQueue[uint64](10, Options{})
	runWCQMPMC(t, q, n, n, per)
}

// TestWCQForcedSlowPath sets patience to 1 and help delay to 1, so
// nearly every contended operation publishes a help request and the
// helping machinery carries the load. This is the key stress test of
// Figures 6-7.
func TestWCQForcedSlowPath(t *testing.T) {
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	opts := Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q := MustQueue[uint64](6, opts) // tiny ring amplifies contention
	runWCQMPMC(t, q, 4, 4, per)
	if s := q.Stats(); s.SlowEnqueues == 0 && s.SlowDequeues == 0 {
		t.Log("warning: no slow paths were taken despite patience=1")
	}
}

func TestWCQForcedSlowPathTinyRing(t *testing.T) {
	per := uint64(3000)
	if testing.Short() {
		per = 300
	}
	opts := Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q := MustQueue[uint64](2, opts) // n = 4: extreme wrap pressure
	runWCQMPMC(t, q, 4, 4, per)
}

func TestWCQEmulatedFAA(t *testing.T) {
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	q := MustQueue[uint64](8, Options{EmulatedFAA: true})
	runWCQMPMC(t, q, 4, 4, per)
}

func TestWCQNoRemap(t *testing.T) {
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	q := MustQueue[uint64](8, Options{NoRemap: true})
	runWCQMPMC(t, q, 4, 4, per)
}

func TestWCQSlowPathSingleThreadDirect(t *testing.T) {
	// With patience 1 even an uncontended thread exercises the slow
	// path machinery when its first F&A draws an unusable slot.
	q := newRing(t, 3, Options{EnqPatience: 1, DeqPatience: 1})
	tid, _ := q.Register()
	for round := 0; round < 500; round++ {
		for i := uint64(0); i < 8; i++ {
			q.Enqueue(tid, i)
		}
		for i := uint64(0); i < 8; i++ {
			got, ok := q.Dequeue(tid)
			if !ok || got != i {
				t.Fatalf("round %d: got (%d,%v) want (%d,true)", round, got, ok, i)
			}
		}
	}
}

func TestWCQHelpAllCompletesPendingRequest(t *testing.T) {
	// Construct a pending dequeue request by hand and verify HelpAll
	// from another thread completes it: the helpee's record must end
	// with FIN set and the element must be retrievable via the gather
	// sequence.
	q := newRing(t, 4, Options{})
	helpee, _ := q.Register()
	helper, _ := q.Register()

	// A failed fast-path dequeue always hands the slow path a counter
	// it has fully processed; the slow path starts from a fresh one.
	// Stage that state: counter 2n is consumed, the target element
	// sits at 2n+1 where the helper's slow_F&A will find it.
	q.Enqueue(helpee, 3)
	if v, ok := q.Dequeue(helpee); !ok || v != 3 {
		t.Fatalf("staging dequeue got (%d,%v)", v, ok)
	}
	q.Enqueue(helpee, 7)

	// Publish the help request exactly as Dequeue's slow path does.
	rec := q.rec(helpee)
	h := q.headCnt() - 1 // the already-processed counter
	seq := rec.seq1.Load()
	rec.localHead.Store(h)
	rec.initHead.Store(h)
	rec.enqueue.Store(false)
	rec.seq2.Store(seq)
	rec.pending.Store(true)

	q.HelpAll(helper)

	if !atomicx.HasFIN(rec.localHead.Load()) {
		t.Fatal("helper did not finalize the pending dequeue request")
	}
	rec.pending.Store(false)
	rec.seq1.Store(seq + 1)

	hc := atomicx.Counter(rec.localHead.Load())
	j := q.remapPos(hc)
	e := q.entries[j].Load()
	if q.vcyc(e) != q.cycleOf(hc) || q.entIndex(e) == q.bottom {
		t.Fatalf("gather: entry not ready (cyc=%d want %d idx=%d)", q.vcyc(e), q.cycleOf(hc), q.entIndex(e))
	}
	q.consume(hc, j, e)
	if got := q.entIndex(e); got != 7 {
		t.Fatalf("gathered %d, want 7", got)
	}
}

func TestWCQStatsAccumulate(t *testing.T) {
	opts := Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q := MustQueue[uint64](4, opts)
	runWCQMPMC(t, q, 2, 2, 2000)
	s := q.Stats()
	t.Logf("stats: %+v", s)
}

func TestWCQMaxOpsReported(t *testing.T) {
	q := Must(16, Options{})
	if q.MaxOps() < 1<<38 {
		t.Fatalf("MaxOps = %d, want >= 2^38 at order 16", q.MaxOps())
	}
	small := Must(2, Options{})
	if small.MaxOps() <= q.MaxOps()/2 {
		// smaller rings have more cycle headroom per slot but fewer
		// slots; just sanity-check it is nonzero and large.
		if small.MaxOps() < 1<<30 {
			t.Fatalf("MaxOps at order 2 = %d, suspiciously small", small.MaxOps())
		}
	}
}

func TestWCQQueueFullBehaviour(t *testing.T) {
	q := MustQueue[uint64](3, Options{})
	h, _ := q.Register()
	for i := uint64(0); i < 8; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if q.Enqueue(h, 99) {
		t.Fatal("enqueue accepted beyond capacity")
	}
	v, ok := q.Dequeue(h)
	if !ok || v != 0 {
		t.Fatalf("dequeue got (%d,%v), want (0,true)", v, ok)
	}
	if !q.Enqueue(h, 8) {
		t.Fatal("enqueue rejected after a slot freed")
	}
}

func TestWCQRejectsBadConfig(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := New(25, Options{}); err == nil {
		t.Fatal("order 25 accepted")
	}
	if _, err := New(4, Options{MaxHandles: -1}); err == nil {
		t.Fatal("negative MaxHandles accepted")
	}
	if _, err := New(4, Options{MaxHandles: int(atomicx.MaxOwners) + 1}); err == nil {
		t.Fatal("MaxHandles beyond the owner-id space accepted")
	}
}

// TestWCQFootprintConstantUnderLoad: after the first run published the
// worker records, further traffic (including register/unregister of
// the same concurrency) must not move the footprint — growth tracks
// the registration high-water mark, never the operation count.
func TestWCQFootprintConstantUnderLoad(t *testing.T) {
	q := MustQueue[uint64](8, Options{})
	runWCQMPMC(t, q, 2, 2, 1000) // publishes the worker records
	before := q.Footprint()
	runWCQMPMC(t, q, 2, 2, 3000)
	if q.Footprint() != before {
		t.Fatalf("footprint changed %d -> %d", before, q.Footprint())
	}
}
