//go:build !wcq_failpoints

package failpoint

// Enabled is false in ordinary builds. Call sites guard every Inject
// with `if failpoint.Enabled { ... }`; the constant makes the branch
// and its argument computation dead code, so the untagged hot path
// carries no trace of the injection layer — no load, no call, no
// branch. Verified by the AllocsPerRun regressions and the E-series
// gate in CI.
const Enabled = false

// Inject is a no-op without the wcq_failpoints build tag. It exists
// so call sites type-check; the guarding `if failpoint.Enabled`
// ensures it is never reached (and the empty body inlines to nothing
// even if it were).
func Inject(Site) {}
