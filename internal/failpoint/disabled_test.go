//go:build !wcq_failpoints

package failpoint

import "testing"

// The untagged build must expose Enabled == false as an untyped
// constant (so `if failpoint.Enabled` branches are deleted at compile
// time) and an Inject that is callable but inert.
func TestDisabledIsInert(t *testing.T) {
	const mustBeConst = !Enabled // compile error if Enabled is not a constant
	if !mustBeConst {
		t.Fatal("Enabled should be false without the wcq_failpoints tag")
	}
	for i := 0; i < NumSites(); i++ {
		Inject(Site(i)) // must be a no-op
	}
}
