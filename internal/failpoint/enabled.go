//go:build wcq_failpoints

package failpoint

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled is true under the wcq_failpoints build tag: every woven
// site consults its armed action (one atomic load when disarmed and
// chaos is off).
const Enabled = true

// Kind selects what a tripped site does to the calling thread.
type Kind int32

const (
	// KindPark blocks the caller until Release (or Reset) — the
	// simulated stall/crash: from the peers' point of view the thread
	// has stopped taking steps mid-window.
	KindPark Kind = iota + 1
	// KindDelay sleeps the caller for Action.Delay.
	KindDelay
	// KindYield reenters the scheduler Action.Yields times — a cheap
	// way to widen a window across many schedule shapes.
	KindYield
	// KindPanic panics with the site name and Action.Msg — the
	// user-triggered-panic probe for panic-safety tests.
	KindPanic
)

// Action is what an armed site does to threads that reach it.
type Action struct {
	Kind   Kind
	Delay  time.Duration // KindDelay: how long to sleep
	Yields int           // KindYield: how many Gosched calls
	Msg    string        // KindPanic: appended to the panic value
	// Trips bounds how many hits take the action; once exhausted the
	// site behaves as disarmed (chaos may still perturb it). <= 0
	// means unlimited. Trips: 1 with KindPark is the stall matrix's
	// "freeze exactly one thread here".
	Trips int64
}

// armed is one arming of a site. Parked threads hold a reference, so
// re-arming or releasing never strands them: Release closes the old
// channel.
type armed struct {
	act     Action
	trips   atomic.Int64
	release chan struct{}
}

type siteState struct {
	armed  atomic.Pointer[armed]
	hits   atomic.Uint64
	parked atomic.Int64
}

var sites [numSites]siteState

// Chaos state: when on, unarmed sites perturb the schedule with a
// deterministic function of (seed, site, per-site hit ordinal), so a
// run's perturbation decisions reproduce from the printed seed (the
// Go scheduler itself stays nondeterministic — the seed pins which
// hits perturb and how, which is what makes a failing seed worth
// replaying).
var (
	chaosOn   atomic.Bool
	chaosSeed atomic.Uint64
	chaosRate atomic.Uint64 // perturb ~1/rate hits per site
)

// Inject runs the armed action (or chaos perturbation) for site s.
// Disarmed + chaos-off cost: one counter add and one pointer load.
func Inject(s Site) {
	st := &sites[s]
	ord := st.hits.Add(1)
	if a := st.armed.Load(); a != nil {
		if a.act.Trips <= 0 || a.trips.Add(-1) >= 0 {
			trip(s, st, a)
			return
		}
	}
	if chaosOn.Load() {
		chaosPerturb(s, st, ord)
	}
}

func trip(s Site, st *siteState, a *armed) {
	switch a.act.Kind {
	case KindPark:
		record(s, "park")
		st.parked.Add(1)
		<-a.release
		st.parked.Add(-1)
	case KindDelay:
		record(s, "delay")
		time.Sleep(a.act.Delay)
	case KindYield:
		record(s, "yield")
		for i := 0; i < a.act.Yields; i++ {
			runtime.Gosched()
		}
	case KindPanic:
		record(s, "panic")
		panic(fmt.Sprintf("failpoint: %s: %s", s, a.act.Msg))
	}
}

// Arm installs act at site s, replacing (and releasing) any previous
// arming.
func Arm(s Site, act Action) {
	a := &armed{act: act, release: make(chan struct{})}
	a.trips.Store(act.Trips)
	if old := sites[s].armed.Swap(a); old != nil {
		close(old.release)
	}
}

// Release disarms site s and unparks every thread parked there.
// Safe to call on a site that was never armed.
func Release(s Site) {
	if old := sites[s].armed.Swap(nil); old != nil {
		close(old.release)
	}
}

// Parked returns how many threads are currently parked at s.
func Parked(s Site) int { return int(sites[s].parked.Load()) }

// Hits returns how many times s has been reached since the last
// Reset.
func Hits(s Site) uint64 { return sites[s].hits.Load() }

// Reset releases and disarms every site, turns chaos off, and clears
// the trace and hit counters. Harnesses call it between cells.
func Reset() {
	DisableChaos()
	for i := Site(0); i < numSites; i++ {
		Release(i)
		sites[i].hits.Store(0)
	}
	traceMu.Lock()
	traceBuf = traceBuf[:0]
	traceMu.Unlock()
}

// EnableChaos turns on seeded schedule perturbation at every unarmed
// site, perturbing roughly 1 in 64 hits.
func EnableChaos(seed uint64) { EnableChaosRate(seed, 64) }

// EnableChaosRate is EnableChaos with an explicit rate: roughly 1 in
// rate hits per site perturb (rate 1 perturbs every hit).
func EnableChaosRate(seed, rate uint64) {
	if rate == 0 {
		rate = 1
	}
	chaosSeed.Store(seed)
	chaosRate.Store(rate)
	chaosOn.Store(true)
}

// DisableChaos turns seeded perturbation off.
func DisableChaos() { chaosOn.Store(false) }

// mix is splitmix64's finalizer — a cheap, well-distributed hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func chaosPerturb(s Site, st *siteState, ord uint64) {
	h := mix(chaosSeed.Load() ^ uint64(s)*0x9e3779b97f4a7c15 ^ ord)
	rate := chaosRate.Load()
	if h%rate != 0 {
		return
	}
	switch (h >> 32) % 3 {
	case 0:
		record(s, "yield")
		runtime.Gosched()
	case 1:
		record(s, "storm")
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
	default:
		record(s, "sleep")
		time.Sleep(time.Duration(50+(h>>40)%450) * time.Microsecond)
	}
}

// Trace: a bounded ring of the most recent tripped/perturbed hits
// (not every Inject — only ones that acted), printable on failure so
// a chaos run shrinks to "seed + site trace".
const traceCap = 256

type traceEntry struct {
	site Site
	ord  uint64
	act  string
}

var (
	traceMu  sync.Mutex
	traceBuf []traceEntry
	traceSeq uint64
)

func record(s Site, act string) {
	traceMu.Lock()
	if len(traceBuf) < traceCap {
		traceBuf = append(traceBuf, traceEntry{s, sites[s].hits.Load(), act})
	} else {
		traceBuf[traceSeq%traceCap] = traceEntry{s, sites[s].hits.Load(), act}
	}
	traceSeq++
	traceMu.Unlock()
}

// Trace returns the recent action trace, oldest first, one
// "site#ordinal:action" token per hit that acted.
func Trace() string {
	traceMu.Lock()
	defer traceMu.Unlock()
	var b strings.Builder
	n := len(traceBuf)
	start := 0
	if n == traceCap {
		start = int(traceSeq % traceCap)
	}
	for i := 0; i < n; i++ {
		e := traceBuf[(start+i)%n]
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s#%d:%s", e.site, e.ord, e.act)
	}
	return b.String()
}
