//go:build wcq_failpoints

package failpoint

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestParkTripsOnceAndReleases(t *testing.T) {
	defer Reset()
	Reset()
	Arm(CoreEnqReserved, Action{Kind: KindPark, Trips: 1})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Inject(CoreEnqReserved)
		}()
	}
	// Exactly one of the four parks; the rest pass through.
	waitFor(t, "one parked thread", func() bool { return Parked(CoreEnqReserved) == 1 })
	waitFor(t, "three pass-throughs", func() bool { return Hits(CoreEnqReserved) == 4 })
	if got := Parked(CoreEnqReserved); got != 1 {
		t.Fatalf("Parked = %d, want 1", got)
	}
	Release(CoreEnqReserved)
	wg.Wait()
	if got := Parked(CoreEnqReserved); got != 0 {
		t.Fatalf("Parked after release = %d, want 0", got)
	}
	if !strings.Contains(Trace(), "core/enq-reserved") {
		t.Fatalf("trace %q missing parked site", Trace())
	}
}

func TestRearmReleasesPreviousParkers(t *testing.T) {
	defer Reset()
	Reset()
	Arm(SCQDeqReserved, Action{Kind: KindPark, Trips: 1})
	done := make(chan struct{})
	go func() { Inject(SCQDeqReserved); close(done) }()
	waitFor(t, "parked", func() bool { return Parked(SCQDeqReserved) == 1 })
	// Re-arming must not strand the thread parked under the old arming.
	Arm(SCQDeqReserved, Action{Kind: KindYield, Yields: 1})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parker stranded after re-arm")
	}
	Release(SCQDeqReserved)
}

func TestDelayAndYieldAndPanic(t *testing.T) {
	defer Reset()
	Reset()
	Arm(DirectEnqReserved, Action{Kind: KindDelay, Delay: time.Millisecond, Trips: 1})
	start := time.Now()
	Inject(DirectEnqReserved)
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay action returned too fast")
	}
	Inject(DirectEnqReserved) // trips exhausted: must be a no-op

	Arm(DirectDeqReserved, Action{Kind: KindYield, Yields: 3, Trips: 2})
	Inject(DirectDeqReserved)
	Inject(DirectDeqReserved)

	Arm(HazardRetire, Action{Kind: KindPanic, Msg: "boom", Trips: 1})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic action did not panic")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "hazard/retire") || !strings.Contains(s, "boom") {
				t.Fatalf("panic value %v missing site/msg", r)
			}
		}()
		Inject(HazardRetire)
	}()
	Inject(HazardRetire) // exhausted: no panic
}

func TestChaosIsSeedDeterministicAndTraced(t *testing.T) {
	defer Reset()
	run := func(seed uint64) string {
		Reset()
		EnableChaosRate(seed, 2)
		for i := 0; i < 64; i++ {
			Inject(UnboundedProtect)
		}
		DisableChaos()
		return Trace()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed produced different perturbation traces:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("chaos at rate 2 over 64 hits produced no perturbations")
	}
	if c := run(43); c == a {
		t.Fatalf("different seeds produced identical traces (suspicious): %s", c)
	}
}

func TestSiteNamesAreUniqueAndTotal(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumSites(); i++ {
		name := Site(i).String()
		if name == "" || name == "failpoint/invalid" {
			t.Fatalf("site %d has no name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate site name %q", name)
		}
		seen[name] = true
	}
}
