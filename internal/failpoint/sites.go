// Package failpoint is the repository's named-site fault-injection
// layer (DESIGN.md §12). Every linearization-critical window in the
// three ring families and the machinery around them carries an
// injection site: a named point where a test harness can park a
// thread mid-operation (simulating an adversarial descheduling or
// crash), insert a bounded delay, storm the scheduler with yields, or
// panic. The stall matrix and the chaos mode of cmd/wcqstress drive
// these sites to verify the wait-freedom contract adversarially —
// peers must complete a bounded number of operations no matter which
// single window a thread is frozen in.
//
// Without the wcq_failpoints build tag the package compiles to
// nothing: Enabled is the untyped constant false, every call site is
// written as
//
//	if failpoint.Enabled {
//		failpoint.Inject(failpoint.SomeSite)
//	}
//
// and the compiler deletes the whole branch. The untagged hot path is
// therefore bit-identical to a build without the package; the
// AllocsPerRun regressions and the E-series gate in CI pin that down.
package failpoint

// Site names one adversarial window. The constant order is stable
// within a build but not across versions; use String for durable
// names.
type Site int32

const (
	// CoreEnqReserved: a fast-path enqueuer has won its tail position
	// from the F&A but has not yet installed the entry. A thread
	// frozen here holds a reserved-but-empty slot; dequeuers must
	// skip past it via the cycle stamp and the threshold must keep
	// peers live (SCQ DISC '19 §4).
	CoreEnqReserved Site = iota
	// CoreDeqReserved: a fast-path dequeuer between its head F&A and
	// the entry transition.
	CoreDeqReserved
	// CoreEnqSlowPublished: a slow-path enqueuer has published its
	// help request (seq2 stored, pending set) but has not yet run
	// enqueueSlow itself. Frozen here, peers' help machinery must
	// complete the operation exactly once (wCQ SPAA '22 §4.2).
	CoreEnqSlowPublished
	// CoreDeqSlowPublished: the dequeue-side twin of
	// CoreEnqSlowPublished.
	CoreDeqSlowPublished
	// CoreHelpPickup: a helper has snapshotted a peer's request and is
	// about to run the slow path on its behalf. Frozen here, the
	// requester (or another helper) must still finish the operation.
	CoreHelpPickup
	// CoreThresholdRearm: the enqueue-side threshold re-arm observed a
	// decayed budget and is about to store 3n-1. Frozen between the
	// observation and the store, dequeuers must not sleep on a
	// non-empty ring forever (the PR 5 review bug class).
	CoreThresholdRearm
	// CoreEnqActiveWindow: an enqueuer is inside the ActiveFlag
	// bracket with a reserved free-list index, before the close-state
	// re-check. Close's quiescence must wait for a thread frozen
	// here, and the value must be delivered or cleanly refused —
	// never half-enqueued (DESIGN.md §10).
	CoreEnqActiveWindow
	// CoreCloseClosing: the closing thread between the open→closing
	// CAS and the ActiveFlag quiescence scan.
	CoreCloseClosing
	// CoreClosePreSeal: the closing thread between quiescence and the
	// sealed store. Dequeuers must keep draining; none may report
	// ErrClosed before the seal.
	CoreClosePreSeal
	// SCQEnqReserved / SCQDeqReserved / SCQThresholdRearm: the same
	// three windows in the standalone SCQ ring.
	SCQEnqReserved
	SCQDeqReserved
	SCQThresholdRearm
	// DirectEnqAdmitted: a direct-ring enqueuer has passed the
	// occupancy admission check but not yet done the tail F&A — the
	// admission/reservation race window behind the direct ring's
	// cycle-wrap budget (DESIGN.md §11).
	DirectEnqAdmitted
	// DirectEnqReserved: a direct-ring enqueuer after the tail F&A,
	// before the entry CAS — the abandoned-position window the PR 5
	// review fix re-verifies.
	DirectEnqReserved
	// DirectDeqReserved: a direct-ring dequeuer after the head F&A.
	DirectDeqReserved
	// DirectBudgetDecay: a direct-ring dequeuer whose threshold
	// decrement hit the floor and is about to re-verify emptiness
	// against a fresh tail read (the PR 5 decayed-budget fix itself).
	DirectBudgetDecay
	// DirectThresholdRearm: the direct ring's enqueue-side re-arm of a
	// decayed threshold.
	DirectThresholdRearm
	// HazardRetire: a thread has unlinked a ring and handed it to the
	// hazard domain's retire list, before any scan. Frozen here, the
	// ring must simply wait — no peer may reclaim it early and no
	// peer may block on the retirer.
	HazardRetire
	// UnboundedProtect: a traverser has published a hazard pointer
	// for a ring and is about to re-validate the source link. Frozen
	// here (hazard published, validation pending), the pointed-to
	// ring must never be recycled under it (DESIGN.md §8).
	UnboundedProtect
	// UnboundedHopPrepared: an enqueuer holds a fresh (possibly
	// pooled) ring and is about to CAS it into the tail's next link.
	// Frozen here, peers append their own rings; the loser's ring
	// returns to the pool after release.
	UnboundedHopPrepared
	// UnboundedUnlinked: a dequeuer won the head-advance CAS and is
	// about to retire the drained ring. Frozen here, the ring is
	// unreachable but unretired; reclamation stalls, correctness must
	// not.
	UnboundedUnlinked
	// UnboundedEnqActiveWindow: the unbounded enqueuer inside its
	// ActiveFlag bracket before the close-state re-check — the
	// unbounded twin of CoreEnqActiveWindow.
	UnboundedEnqActiveWindow
	// BlockingEnqPrepared / BlockingDeqPrepared: a blocking caller
	// between waitq.Prepare and the condition re-check. Frozen here,
	// the armed waiter must still be woken by the next signal — the
	// lost-wakeup window the eventcount protocol closes.
	BlockingEnqPrepared
	BlockingDeqPrepared
	// WaitqCancelForward: Cancel found its waiter already popped by a
	// signaler and is about to absorb and forward the in-flight
	// token.
	WaitqCancelForward
	// LanedirPublish: the resize governor has built the successor lane
	// directory and is about to CAS it into the published pointer.
	// Frozen here, handles keep operating on the old directory (their
	// cached view stays valid) and peers must not block — the governor
	// holds only the maintenance mutex, which no operation path takes.
	LanedirPublish
	// LanedirRetire: a drained lane has been unpublished from the
	// directory and is about to be handed to the hazard domain's
	// retire list. Frozen here, in-flight stealers that protected the
	// lane before the unpublish may still dequeue from it; nobody may
	// recycle it early (DESIGN.md §13).
	LanedirRetire

	numSites
)

var siteNames = [numSites]string{
	CoreEnqReserved:          "core/enq-reserved",
	CoreDeqReserved:          "core/deq-reserved",
	CoreEnqSlowPublished:     "core/enq-slow-published",
	CoreDeqSlowPublished:     "core/deq-slow-published",
	CoreHelpPickup:           "core/help-pickup",
	CoreThresholdRearm:       "core/threshold-rearm",
	CoreEnqActiveWindow:      "core/enq-active-window",
	CoreCloseClosing:         "core/close-closing",
	CoreClosePreSeal:         "core/close-preseal",
	SCQEnqReserved:           "scq/enq-reserved",
	SCQDeqReserved:           "scq/deq-reserved",
	SCQThresholdRearm:        "scq/threshold-rearm",
	DirectEnqAdmitted:        "direct/enq-admitted",
	DirectEnqReserved:        "direct/enq-reserved",
	DirectDeqReserved:        "direct/deq-reserved",
	DirectBudgetDecay:        "direct/deq-budget-decay",
	DirectThresholdRearm:     "direct/threshold-rearm",
	HazardRetire:             "hazard/retire",
	UnboundedProtect:         "unbounded/protect-published",
	UnboundedHopPrepared:     "unbounded/hop-prepared",
	UnboundedUnlinked:        "unbounded/unlinked",
	UnboundedEnqActiveWindow: "unbounded/enq-active-window",
	BlockingEnqPrepared:      "blocking/enq-prepared",
	BlockingDeqPrepared:      "blocking/deq-prepared",
	WaitqCancelForward:       "waitq/cancel-forward",
	LanedirPublish:           "lanedir/dir-publish",
	LanedirRetire:            "lanedir/lane-retire",
}

// String returns the site's durable name, e.g. "core/enq-reserved".
func (s Site) String() string {
	if s < 0 || s >= numSites {
		return "failpoint/invalid"
	}
	return siteNames[s]
}

// NumSites returns the number of defined sites, for harnesses that
// iterate the full matrix.
func NumSites() int { return int(numSites) }
