package failpoint

// These tests pin the two structural properties the failpointweave
// analyzer and the stall-matrix harnesses lean on: every site has a
// unique, non-empty durable name, and sites.go is the package's single
// Site declaration point (the analyzer enforces the same rule at lint
// time; this test keeps the invariant honest even when only `go test`
// runs).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestSiteNamesUniqueAndComplete asserts every declared site carries a
// distinct durable name of the family/window form.
func TestSiteNamesUniqueAndComplete(t *testing.T) {
	seen := make(map[string]Site, NumSites())
	for s := Site(0); s < numSites; s++ {
		name := s.String()
		if name == "" || name == "failpoint/invalid" {
			t.Errorf("site %d has no durable name", int(s))
			continue
		}
		if !strings.Contains(name, "/") {
			t.Errorf("site %q does not follow the family/window naming form", name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("site name %q is shared by sites %d and %d", name, int(prev), int(s))
		}
		seen[name] = s
	}
	if len(seen) != NumSites() {
		t.Errorf("got %d unique names for %d sites", len(seen), NumSites())
	}
	if Site(-1).String() != "failpoint/invalid" || numSites.String() != "failpoint/invalid" {
		t.Error("out-of-range sites must stringify to failpoint/invalid")
	}
}

// TestSitesDeclaredOnlyInSitesFile parses the package source and
// asserts no file other than sites.go declares a Site constant or
// variable — the single-declaration-point rule that keeps the harness
// matrix enumerable.
func TestSitesDeclaredOnlyInSitesFile(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing package: %v", err)
	}
	for _, pkg := range pkgs {
		for filename, file := range pkg.Files {
			base := filepath.Base(filename)
			if base == "sites.go" || strings.HasSuffix(base, "_test.go") {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				spec, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				// A syntactic check is enough here: within this
				// package a Site declaration must spell its type.
				if id, ok := spec.Type.(*ast.Ident); ok && id.Name == "Site" {
					for _, name := range spec.Names {
						t.Errorf("%s: Site %s declared outside sites.go", base, name.Name)
					}
				}
				return true
			})
		}
	}
}
