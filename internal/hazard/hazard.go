// Package hazard implements hazard pointers (Michael, 2004), the
// safe-memory-reclamation substrate the paper's harness uses for
// MSQueue, LCRQ and CRTurn.
//
// Go's garbage collector already guarantees referents stay alive, so
// hazard pointers are not needed for safety here. They are needed for
// *bounded memory*: a queue that recycles nodes through an explicit
// pool must not hand a node back to the pool while another thread may
// still dereference it. MSQueue in this repository uses a Domain to
// run its node pool, which keeps its footprint flat the same way the
// paper's C implementation does.
package hazard

import (
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/pad"
)

// SlotsPerThread is the number of hazard pointers each thread may hold
// simultaneously. Two suffices for Michael & Scott queues; CRTurn-style
// algorithms need three.
const SlotsPerThread = 3

// scanThresholdFactor: a thread scans its retire list when it grows
// beyond this multiple of the total hazard slots, bounding both scan
// frequency and retired-node inventory (the H·R bound of the HP paper).
const scanThresholdFactor = 2

// Domain manages hazard slots and retire lists for a fixed number of
// threads.
type Domain struct {
	slots    []slot      // numThreads × SlotsPerThread, padded
	retired  []retireSet // per thread
	nthreads int
}

type slot struct {
	_ pad.DoublePad
	p [SlotsPerThread]atomic.Pointer[byte]
	_ pad.DoublePad
}

type retireSet struct {
	_     pad.DoublePad
	nodes []retiree
	// scratch is the hazard snapshot reused across scans. Owned by the
	// retiring thread, so reuse is race-free; keeping it here makes the
	// reclamation path allocation-free in steady state, which matters
	// for retire-heavy users (ring recycling, node pools).
	scratch map[unsafe.Pointer]struct{}
	_       pad.DoublePad
}

type retiree struct {
	ptr  unsafe.Pointer
	free func(unsafe.Pointer)
}

// NewDomain creates a Domain for numThreads threads.
func NewDomain(numThreads int) *Domain {
	return &Domain{
		slots:    make([]slot, numThreads),
		retired:  make([]retireSet, numThreads),
		nthreads: numThreads,
	}
}

// Protect publishes p in the caller's hazard slot i and returns p.
// Callers must re-validate the source pointer after Protect (the
// standard HP protocol) — see ProtectFrom for the loop.
func (d *Domain) Protect(tid, i int, p unsafe.Pointer) unsafe.Pointer {
	d.slots[tid].p[i].Store((*byte)(p))
	return p
}

// ProtectFrom repeatedly loads *src and publishes it until the
// publication is stable (the classic protect loop).
func (d *Domain) ProtectFrom(tid, i int, src *unsafe.Pointer) unsafe.Pointer {
	for {
		p := atomic.LoadPointer(src)
		d.slots[tid].p[i].Store((*byte)(p))
		if atomic.LoadPointer(src) == p {
			return p
		}
	}
}

// Clear resets all of the caller's hazard slots.
func (d *Domain) Clear(tid int) {
	for i := range d.slots[tid].p {
		d.slots[tid].p[i].Store(nil)
	}
}

// ClearSlot resets one hazard slot.
func (d *Domain) ClearSlot(tid, i int) { d.slots[tid].p[i].Store(nil) }

// Retire schedules p for free once no thread holds a hazard pointer to
// it. free runs at most once, from the retiring thread.
func (d *Domain) Retire(tid int, p unsafe.Pointer, free func(unsafe.Pointer)) {
	rs := &d.retired[tid]
	rs.nodes = append(rs.nodes, retiree{p, free})
	if len(rs.nodes) >= scanThresholdFactor*d.nthreads*SlotsPerThread {
		d.scan(tid)
	}
}

// Scan frees every node on the caller's retire list that is not
// currently protected by any thread. Retire runs it automatically past
// the inventory threshold; callers recycling through a bounded pool
// may also invoke it on a pool miss to pull reclaimable nodes forward
// instead of allocating.
func (d *Domain) Scan(tid int) { d.scan(tid) }

// scan frees every retired node not currently protected by any thread.
func (d *Domain) scan(tid int) {
	rs := &d.retired[tid]
	if rs.scratch == nil {
		rs.scratch = make(map[unsafe.Pointer]struct{}, d.nthreads*SlotsPerThread)
	}
	hazards := rs.scratch
	clear(hazards)
	for t := range d.slots {
		for i := range d.slots[t].p {
			if p := d.slots[t].p[i].Load(); p != nil {
				hazards[unsafe.Pointer(p)] = struct{}{}
			}
		}
	}
	kept := rs.nodes[:0]
	for _, r := range rs.nodes {
		if _, held := hazards[r.ptr]; held {
			kept = append(kept, r)
			continue
		}
		r.free(r.ptr)
	}
	rs.nodes = kept
}

// Drain frees every retired node that is unprotected, across all
// threads. Only safe when no queue operation is in flight; used at
// teardown and in tests.
func (d *Domain) Drain() {
	for t := 0; t < d.nthreads; t++ {
		d.scan(t)
	}
}

// RetiredCount reports the total nodes awaiting reclamation (test
// hook for the boundedness property).
func (d *Domain) RetiredCount() int {
	n := 0
	for t := range d.retired {
		n += len(d.retired[t].nodes)
	}
	return n
}
