// Package hazard implements hazard pointers (Michael, 2004), the
// safe-memory-reclamation substrate the paper's harness uses for
// MSQueue, LCRQ and CRTurn.
//
// Go's garbage collector already guarantees referents stay alive, so
// hazard pointers are not needed for safety here. They are needed for
// *bounded memory*: a queue that recycles nodes through an explicit
// pool must not hand a node back to the pool while another thread may
// still dereference it. MSQueue in this repository uses a Domain to
// run its node pool, which keeps its footprint flat the same way the
// paper's C implementation does.
//
// Since the dynamic-registration refactor (DESIGN.md §9) a Domain no
// longer allocates per-thread state up front: thread slots live in
// fixed-size chunks hanging off an atomic directory, published on
// first use with the same CAS-publish protocol as core's record
// arena. NewDomain's argument is therefore a *capacity*, not an
// allocation — domains sized for the full 16-bit handle space cost
// one pointer per 64 potential threads until those threads exist.
package hazard

import (
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/failpoint"
	"wcqueue/internal/pad"
)

// SlotsPerThread is the number of hazard pointers each thread may hold
// simultaneously. Two suffices for Michael & Scott queues; CRTurn-style
// algorithms need three.
const SlotsPerThread = 3

// scanThresholdFactor: a thread scans its retire list when it grows
// beyond this multiple of the *published* hazard slots, bounding both
// scan frequency and retired-node inventory (the H·R bound of the HP
// paper, with H tracking the thread high-water mark instead of a
// declared census).
const scanThresholdFactor = 2

const (
	domChunkShift = 6
	domChunkSize  = 1 << domChunkShift // threads per domain chunk
)

// domChunk bundles one chunk of hazard slots with the matching retire
// sets: both are per-thread, so they grow together.
type domChunk struct {
	slots [domChunkSize]slot
	sets  [domChunkSize]retireSet
}

// Domain manages hazard slots and retire lists for dynamically
// registered threads, up to the capacity given to NewDomain.
type Domain struct {
	chunks []atomic.Pointer[domChunk]
	// npub counts published thread slots (domChunkSize per chunk,
	// wherever in the directory the chunk sits). Scans iterate the
	// whole directory — the published set may be sparse when reserved
	// tids live at high indices — and skip nil entries.
	npub atomic.Int64
	// active is the owner's hint of how many threads currently hold
	// hazard slots (SetActive). It gives the H of the H·R
	// retire-inventory bound its tight value: chunk-granular npub is
	// the fallback when no hint is maintained.
	active atomic.Int64
}

type slot struct {
	_ pad.DoublePad
	p [SlotsPerThread]atomic.Pointer[byte]
	_ pad.DoublePad
}

type retireSet struct {
	_     pad.DoublePad
	nodes []retiree
	// scratch is the hazard snapshot reused across scans. Owned by the
	// retiring thread, so reuse is race-free; keeping it here makes the
	// reclamation path allocation-free in steady state, which matters
	// for retire-heavy users (ring recycling, node pools).
	scratch map[unsafe.Pointer]struct{}
	_       pad.DoublePad
}

type retiree struct {
	ptr  unsafe.Pointer
	free func(unsafe.Pointer)
}

// NewDomain creates a Domain for up to maxThreads threads. Per-thread
// state is chunk-allocated on first use, so a generous capacity is
// cheap.
func NewDomain(maxThreads int) *Domain {
	return &Domain{
		chunks: make([]atomic.Pointer[domChunk], (maxThreads+domChunkSize-1)/domChunkSize),
	}
}

// chunkOf returns tid's chunk, publishing it first if needed.
func (d *Domain) chunkOf(tid int) *domChunk {
	ci := tid >> domChunkShift
	if c := d.chunks[ci].Load(); c != nil {
		return c
	}
	return d.growChunk(ci)
}

// growChunk publishes chunk ci with a single CAS; losers adopt the
// winner's chunk. The zero value of every field is ready for use, so
// no pre-publish initialization is needed.
func (d *Domain) growChunk(ci int) *domChunk {
	c := new(domChunk)
	if !d.chunks[ci].CompareAndSwap(nil, c) {
		return d.chunks[ci].Load()
	}
	d.npub.Add(domChunkSize)
	return c
}

func (d *Domain) slotOf(tid int) *slot {
	return &d.chunkOf(tid).slots[tid&(domChunkSize-1)]
}

func (d *Domain) setOf(tid int) *retireSet {
	return &d.chunkOf(tid).sets[tid&(domChunkSize-1)]
}

// Protect publishes p in the caller's hazard slot i and returns p.
// Callers must re-validate the source pointer after Protect (the
// standard HP protocol) — see ProtectFrom for the loop.
func (d *Domain) Protect(tid, i int, p unsafe.Pointer) unsafe.Pointer {
	d.slotOf(tid).p[i].Store((*byte)(p))
	return p
}

// ProtectFrom repeatedly loads *src and publishes it until the
// publication is stable (the classic protect loop).
func (d *Domain) ProtectFrom(tid, i int, src *unsafe.Pointer) unsafe.Pointer {
	s := d.slotOf(tid)
	for {
		p := atomic.LoadPointer(src)
		s.p[i].Store((*byte)(p))
		if atomic.LoadPointer(src) == p {
			return p
		}
	}
}

// Clear resets all of the caller's hazard slots.
func (d *Domain) Clear(tid int) {
	s := d.slotOf(tid)
	for i := range s.p {
		s.p[i].Store(nil)
	}
}

// ClearSlot resets one hazard slot.
func (d *Domain) ClearSlot(tid, i int) { d.slotOf(tid).p[i].Store(nil) }

// Retire schedules p for free once no thread holds a hazard pointer to
// it. free runs at most once, from the retiring thread.
func (d *Domain) Retire(tid int, p unsafe.Pointer, free func(unsafe.Pointer)) {
	if failpoint.Enabled {
		// Pointer unreachable but not yet in the retire set: a
		// retirer frozen here only delays reclamation, never peers.
		failpoint.Inject(failpoint.HazardRetire)
	}
	rs := d.setOf(tid)
	rs.nodes = append(rs.nodes, retiree{p, free})
	h := d.active.Load()
	if h == 0 {
		h = d.npub.Load()
	}
	if int64(len(rs.nodes)) >= scanThresholdFactor*h*SlotsPerThread {
		d.scan(tid)
	}
}

// SetActive tells the domain how many threads currently hold hazard
// slots, tightening the retire-scan threshold to the real H·R bound.
// Callers with dynamic registration (the unbounded queue) maintain it;
// without a hint the threshold falls back to the published-chunk
// capacity, which is correct but chunk-coarse.
func (d *Domain) SetActive(n int) { d.active.Store(int64(n)) }

// Scan frees every node on the caller's retire list that is not
// currently protected by any thread. Retire runs it automatically past
// the inventory threshold; callers recycling through a bounded pool
// may also invoke it on a pool miss to pull reclaimable nodes forward
// instead of allocating.
func (d *Domain) Scan(tid int) { d.scan(tid) }

// scan frees every retired node not currently protected by any thread.
// The hazard snapshot covers every published chunk: a thread that
// could hold a pointer necessarily published its chunk before its
// first Protect.
func (d *Domain) scan(tid int) {
	rs := d.setOf(tid)
	if rs.scratch == nil {
		rs.scratch = make(map[unsafe.Pointer]struct{}, int(d.npub.Load())*SlotsPerThread)
	}
	hazards := rs.scratch
	clear(hazards)
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		if c == nil {
			continue
		}
		for t := range c.slots {
			for i := range c.slots[t].p {
				if p := c.slots[t].p[i].Load(); p != nil {
					hazards[unsafe.Pointer(p)] = struct{}{}
				}
			}
		}
	}
	kept := rs.nodes[:0]
	for _, r := range rs.nodes {
		if _, held := hazards[r.ptr]; held {
			kept = append(kept, r)
			continue
		}
		r.free(r.ptr)
	}
	rs.nodes = kept
}

// Drain frees every retired node that is unprotected, across all
// threads. Only safe when no queue operation is in flight; used at
// teardown and in tests.
func (d *Domain) Drain() {
	for ci := range d.chunks {
		if d.chunks[ci].Load() == nil {
			continue
		}
		base := ci << domChunkShift
		for t := base; t < base+domChunkSize; t++ {
			d.scan(t)
		}
	}
}

// PublishedThreads reports the thread slots the domain has
// materialized so far (domChunkSize per published chunk) — the H in
// the H·R retired-inventory bound.
func (d *Domain) PublishedThreads() int { return int(d.npub.Load()) }

// RetiredCount reports the total nodes awaiting reclamation (test
// hook for the boundedness property).
func (d *Domain) RetiredCount() int {
	total := 0
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		if c == nil {
			continue
		}
		for t := range c.sets {
			total += len(c.sets[t].nodes)
		}
	}
	return total
}
