package hazard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestProtectBlocksReclaim(t *testing.T) {
	d := NewDomain(2)
	freed := false
	x := new(int)
	p := unsafe.Pointer(x)

	d.Protect(0, 0, p)
	d.Retire(1, p, func(unsafe.Pointer) { freed = true })
	d.Drain()
	if freed {
		t.Fatal("protected pointer was freed")
	}
	d.Clear(0)
	d.Drain()
	if !freed {
		t.Fatal("unprotected pointer was not freed")
	}
}

func TestRetireFreesUnprotected(t *testing.T) {
	d := NewDomain(1)
	n := 0
	for i := 0; i < 10; i++ {
		d.Retire(0, unsafe.Pointer(new(int)), func(unsafe.Pointer) { n++ })
	}
	d.Drain()
	if n != 10 {
		t.Fatalf("freed %d of 10 retired nodes", n)
	}
	if d.RetiredCount() != 0 {
		t.Fatalf("retired count %d after drain", d.RetiredCount())
	}
}

func TestScanThresholdBoundsInventory(t *testing.T) {
	d := NewDomain(4)
	// H is the published thread capacity (one chunk here): the retire
	// threshold tracks materialized state, not the declared maximum.
	bound := scanThresholdFactor * domChunkSize * SlotsPerThread
	for i := 0; i < 10*bound; i++ {
		d.Retire(0, unsafe.Pointer(new(int)), func(unsafe.Pointer) {})
	}
	if d.PublishedThreads() != domChunkSize {
		t.Fatalf("published %d threads, want one chunk (%d)", d.PublishedThreads(), domChunkSize)
	}
	if got := d.RetiredCount(); got >= bound {
		t.Fatalf("retired inventory %d not bounded below %d", got, bound)
	}
}

// TestDomainGrowsAcrossChunks exercises tids in distant chunks: the
// domain must materialize them independently and scans must observe
// hazards across every published chunk.
func TestDomainGrowsAcrossChunks(t *testing.T) {
	d := NewDomain(10 * domChunkSize)
	far := 7*domChunkSize + 3
	x := new(int)
	p := unsafe.Pointer(x)
	d.Protect(far, 0, p)
	freed := false
	d.Retire(0, p, func(unsafe.Pointer) { freed = true })
	d.Drain()
	if freed {
		t.Fatal("hazard in a far chunk was ignored by scan")
	}
	d.Clear(far)
	d.Drain()
	if !freed {
		t.Fatal("cleared far-chunk hazard still blocked reclamation")
	}
}

func TestClearSlotIsPerSlot(t *testing.T) {
	d := NewDomain(1)
	a, b := unsafe.Pointer(new(int)), unsafe.Pointer(new(int))
	d.Protect(0, 0, a)
	d.Protect(0, 1, b)
	d.ClearSlot(0, 0)
	freedA, freedB := false, false
	d.Retire(0, a, func(unsafe.Pointer) { freedA = true })
	d.Retire(0, b, func(unsafe.Pointer) { freedB = true })
	d.Drain()
	if !freedA {
		t.Fatal("cleared slot still blocked reclamation")
	}
	if freedB {
		t.Fatal("live slot did not block reclamation")
	}
}

func TestProtectFromStability(t *testing.T) {
	d := NewDomain(2)
	var src unsafe.Pointer
	x := new(int)
	atomic.StorePointer(&src, unsafe.Pointer(x))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				atomic.StorePointer(&src, unsafe.Pointer(new(int)))
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		p := d.ProtectFrom(0, 0, &src)
		// The protocol guarantees the published value equaled *src at
		// some instant after publication; it must never be nil here.
		if p == nil {
			t.Fatal("ProtectFrom returned nil for non-nil source")
		}
	}
	close(stop)
	wg.Wait()
}

// TestScanAllocationFree pins the reclamation path's steady-state
// allocation behaviour: after warm-up (scratch set and retire list at
// capacity), Retire+Scan must not allocate — ring recycling leans on
// this to keep the whole hop path allocation-free.
func TestScanAllocationFree(t *testing.T) {
	d := NewDomain(4)
	noop := func(unsafe.Pointer) {}
	objs := make([]*int, 64)
	for i := range objs {
		objs[i] = new(int)
	}
	// Warm up: size the scratch map and the retire-list capacity.
	d.Protect(1, 0, unsafe.Pointer(objs[0])) // keep the snapshot non-empty
	for i := range objs {
		d.Retire(0, unsafe.Pointer(objs[i]), noop)
	}
	d.Scan(0)

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		d.Retire(0, unsafe.Pointer(objs[i%len(objs)]), noop)
		d.Scan(0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Retire+Scan allocated %.1f objects per run; want 0", allocs)
	}
}

func TestConcurrentRetireAndScan(t *testing.T) {
	const threads = 4
	d := NewDomain(threads)
	var freed atomic.Int64
	var wg sync.WaitGroup
	per := 5000
	if testing.Short() {
		per = 500
	}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := unsafe.Pointer(new(int))
				d.Protect(tid, 0, p)
				d.ClearSlot(tid, 0)
				d.Retire(tid, p, func(unsafe.Pointer) { freed.Add(1) })
			}
		}(tid)
	}
	wg.Wait()
	d.Drain()
	if got := freed.Load(); got != int64(threads*per) {
		t.Fatalf("freed %d of %d", got, threads*per)
	}
}
