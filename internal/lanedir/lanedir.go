// Package lanedir implements the elastic lane directory behind the
// striped front-ends (DESIGN.md §13): an atomically-published set of
// lanes that a resize governor grows and shrinks online, bounded by
// [min, max] lanes, driven by per-lane contention feedback.
//
// The directory is a generic container: a lane is any comparable
// value (in practice *core.Queue[T] or *core.DirectRing) adapted
// through an Ops vtable. The package owns four protocols; the queue
// shapes on top own the per-operation choreography:
//
//   - Publish. The current View (active lanes ++ draining lanes) is
//     one immutable snapshot behind an atomic pointer. Every mutation
//     builds a successor and CASes it in under the maintenance mutex,
//     so readers pay one load and one pointer compare per operation to
//     detect a resize.
//
//   - Bind. Each producer handle is bound to one active slot; the
//     slot's bind count is what gates retirement. Bind publishes the
//     count increment BEFORE re-checking the slot's draining flag, so
//     a bind and a concurrent retire can never both win: either the
//     binder sees draining and backs off, or the retirer's later
//     bind-count read includes the increment and skips the slot.
//
//   - Drain and retire. A shrink only MARKS lanes draining — they
//     stay dequeue-visible in View.Slots() and bound producers keep
//     enqueueing to them (per-handle FIFO migrates a handle only at
//     its lane's Drained() witness, between its own ops). Once a
//     draining slot's bind count hits zero, any value still in it can
//     only belong to a producer that unregistered (a dead stream, so
//     FIFO is vacuous); the governor moves those residuals into an
//     active lane through Ops.Drain — exactly once, because the move
//     is ordinary dequeue/enqueue traffic under the maintenance mutex
//     — and unpublishes the lane.
//
//   - Reclaim. An unpublished lane may still be touched by a stealer
//     that protected it through the Domain before the unpublish, so
//     it goes through hazard retirement (the §8 machinery): recycling
//     (Ops.Recycle — a DirectRing budget-renewing Reset) runs only
//     once no hazard slot holds the lane, after which the lane waits
//     in a bounded standby pool for the next grow.
//
// The governor is piggybacked, not a goroutine: handles flush op and
// contention-event counts every few hundred operations (NoteOps /
// NoteContention), and a flush that crosses the sampling period runs
// maintenance under TryLock — never blocking an operation, and
// leaving no background thread for queue shapes that have no Close.
package lanedir

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/failpoint"
	"wcqueue/internal/hazard"
)

// Ops adapts a concrete lane type to the directory. New, Drained and
// Ptr are required; the rest may be nil.
type Ops[L comparable] struct {
	// New allocates a fresh lane for a grow that finds the standby
	// pool empty.
	New func() (L, error)
	// Drain moves residual values from a bind-free draining lane into
	// an active one, reporting whether from ended drained. It runs
	// under the maintenance mutex and MUST NOT lose values: a value it
	// cannot place in into goes back into from (whose capacity its own
	// dequeue just freed). Nil means residuals are only ever drained
	// by consumers (the lane retires once its Drained witness fires).
	Drain func(from, into L) bool
	// Drained is the lane's Tail ≤ Head witness (core.Queue.Drained /
	// core.DirectRing.Drained).
	Drained func(L) bool
	// Contention reads the lane's cumulative contention events
	// (entry-CAS failures); the governor samples deltas.
	Contention func(L) uint64
	// Recycle prepares a retired, hazard-cleared lane for standby
	// reuse (a DirectRing Reset renewing its cycle-wrap budget).
	Recycle func(L)
	// Ptr maps a lane to the identity the hazard protocol tracks.
	Ptr func(L) unsafe.Pointer
	// OnMaintain, if set, runs during every maintenance pass under the
	// mutex — the front-end's hook for housekeeping that must not race
	// a resize (the per-P implicit-handle cache eviction).
	OnMaintain func()
}

// Slot is one lane's directory entry. Slots are shared across views;
// the lane is immutable, the flags are atomic.
type Slot[L comparable] struct {
	lane     L
	binds    atomic.Int64
	draining atomic.Bool
}

// Lane returns the slot's lane.
// wcq:noalloc
func (s *Slot[L]) Lane() L { return s.lane }

// Draining reports whether the slot is retiring. A bound handle that
// observes it migrates at its lane's next Drained witness.
// wcq:noalloc
func (s *Slot[L]) Draining() bool { return s.draining.Load() }

// Binds returns the current bind count (test and telemetry hook).
func (s *Slot[L]) Binds() int { return int(s.binds.Load()) }

// View is one immutable directory snapshot. Handles cache the pointer
// and detect any resize with a single compare.
type View[L comparable] struct {
	epoch    uint64
	active   []*Slot[L]
	draining []*Slot[L]
	slots    []*Slot[L] // active ++ draining: the dequeue-scan domain
}

// Epoch returns the publish generation (monotone; test hook).
// wcq:noalloc
func (v *View[L]) Epoch() uint64 { return v.epoch }

// Active returns the slots accepting new binds — the enqueue targets.
// wcq:noalloc
func (v *View[L]) Active() []*Slot[L] { return v.active }

// Slots returns every lane a dequeue scan must cover: active lanes
// plus draining lanes still holding residuals.
func (v *View[L]) Slots() []*Slot[L] { return v.slots }

// Contains reports whether lane is in the view (active or draining).
// wcq:noalloc
func (v *View[L]) Contains(lane L) bool {
	for _, s := range v.slots {
		if s.lane == lane {
			return true
		}
	}
	return false
}

// Config sizes a directory.
type Config struct {
	Initial    int    // starting lane count
	Min, Max   int    // governor bounds (manual Resize may exceed Max)
	Auto       bool   // enable the contention-feedback governor
	StandbyCap int    // retired-lane pool size; 0 disables reuse
	MaxBinders int    // handle cap for the hazard domain / tid space
	SampleOps  uint64 // governor sampling period in flushed ops (0: default)
}

// DefaultSampleOps is the governor sampling period when Config leaves
// it zero: coarse enough that a sample amortizes to noise, fine enough
// to track phase changes within tens of thousands of ops.
const DefaultSampleOps = 4096

// Governor thresholds: grow when contention events exceed ops/2^growShift
// in a window, count a window calm when they stay under ops/2^calmShift,
// and shrink after calmWindows consecutive calm samples.
const (
	growShift   = 3
	calmShift   = 7
	calmWindows = 2
)

// Dir is the elastic lane directory.
type Dir[L comparable] struct {
	cur atomic.Pointer[View[L]]
	ops Ops[L]
	dom *hazard.Domain

	min, max  int
	auto      bool
	sampleOps uint64

	// Flushed feedback since the last governor sample. opw doubles as
	// the sample trigger: the flush that crosses sampleOps claims the
	// window with a CAS to zero and runs maintenance.
	opw    atomic.Uint64
	events atomic.Uint64
	steals atomic.Uint64

	// Cumulative telemetry, never reset (ROADMAP item 3: Resize was
	// exported but unobserved). grows/shrinks count lane-count changes
	// actually applied through resizeLocked — governor decisions and
	// manual Resize calls alike — and stealsTotal mirrors the steals
	// window counter without its per-sample Swap(0). Surfaced through
	// Telemetry for the front-end Stats layer.
	grows       atomic.Uint64
	shrinks     atomic.Uint64
	stealsTotal atomic.Uint64

	// mu serializes every directory mutation (resize, drain, retire,
	// close). No operation path ever takes it: the governor enters via
	// TryLock, so a frozen maintenance thread can never block peers.
	mu         sync.Mutex
	closed     bool
	standby    []L
	standbyCap int
	lastEvents int64 // governor baseline over the sampled counters
	calm       int

	// Binder-tid allocation. tid 0 is reserved for the governor's
	// hazard retire set so every Retire/Scan runs under mu.
	tidMu       sync.Mutex
	tidFree     []int
	tidNext     int
	tidMax      int
	tidLive     int
	tidHighMark int
}

// govTid is the hazard tid reserved for the governor's retire set.
const govTid = 0

// New builds a directory of cfg.Initial fresh lanes.
func New[L comparable](ops Ops[L], cfg Config) (*Dir[L], error) {
	if cfg.Initial < 1 {
		return nil, fmt.Errorf("lanedir: initial lane count %d out of range [1, ∞)", cfg.Initial)
	}
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Initial {
		cfg.Max = cfg.Initial
	}
	if cfg.Min > cfg.Max {
		return nil, fmt.Errorf("lanedir: lane bounds [%d, %d] inverted", cfg.Min, cfg.Max)
	}
	if cfg.MaxBinders < 1 {
		return nil, fmt.Errorf("lanedir: binder cap %d out of range [1, ∞)", cfg.MaxBinders)
	}
	if cfg.SampleOps == 0 {
		cfg.SampleOps = DefaultSampleOps
	}
	d := &Dir[L]{
		ops:        ops,
		dom:        hazard.NewDomain(cfg.MaxBinders + 1),
		min:        cfg.Min,
		max:        cfg.Max,
		auto:       cfg.Auto,
		sampleOps:  cfg.SampleOps,
		standbyCap: cfg.StandbyCap,
		tidNext:    govTid + 1,
		tidMax:     cfg.MaxBinders + 1,
	}
	active := make([]*Slot[L], cfg.Initial)
	for i := range active {
		lane, err := ops.New()
		if err != nil {
			return nil, fmt.Errorf("lanedir: allocating lane %d: %w", i, err)
		}
		active[i] = &Slot[L]{lane: lane}
	}
	d.cur.Store(&View[L]{active: active, slots: active})
	return d, nil
}

// View returns the current snapshot. One atomic load; handles cache
// the pointer and resync only when it changes.
// wcq:noalloc
func (d *Dir[L]) View() *View[L] { return d.cur.Load() }

// Lanes returns the active lane count.
func (d *Dir[L]) Lanes() int { return len(d.cur.Load().active) }

// DrainingLanes returns the count of lanes still draining toward
// retirement.
func (d *Dir[L]) DrainingLanes() int { return len(d.cur.Load().draining) }

// StandbyLanes returns the retired lanes parked for reuse (test hook).
func (d *Dir[L]) StandbyLanes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.standby)
}

// Bounds returns the governor's [min, max] lane bounds.
func (d *Dir[L]) Bounds() (min, max int) { return d.min, d.max }

// Register claims a binder tid for the hazard protocol. Every handle
// that steals through Protect needs one.
func (d *Dir[L]) Register() (int, error) {
	d.tidMu.Lock()
	defer d.tidMu.Unlock()
	if n := len(d.tidFree); n > 0 {
		tid := d.tidFree[n-1]
		d.tidFree = d.tidFree[:n-1]
		d.tidLive++
		return tid, nil
	}
	if d.tidNext >= d.tidMax {
		return 0, fmt.Errorf("lanedir: binder cap %d exhausted", d.tidMax-1)
	}
	tid := d.tidNext
	d.tidNext++
	d.tidLive++
	if d.tidLive > d.tidHighMark {
		d.tidHighMark = d.tidLive
	}
	return tid, nil
}

// Release returns a binder tid, clearing its hazard slots first so a
// recycled tid can never pin a lane it no longer touches.
func (d *Dir[L]) Release(tid int) {
	d.dom.Clear(tid)
	d.tidMu.Lock()
	d.tidFree = append(d.tidFree, tid)
	d.tidLive--
	d.tidMu.Unlock()
}

// Binders returns the live binder count.
func (d *Dir[L]) Binders() int {
	d.tidMu.Lock()
	defer d.tidMu.Unlock()
	return d.tidLive
}

// BinderHighWater returns the largest binder count ever live at once.
func (d *Dir[L]) BinderHighWater() int {
	d.tidMu.Lock()
	defer d.tidMu.Unlock()
	return d.tidHighMark
}

// Bind attaches a new producer stream to the least-bound active lane
// and returns its slot. The increment-then-recheck loop is the
// bind/retire race closure: the bind count is published (seq-cst RMW)
// BEFORE the draining flag is read, so if the flag reads clear, the
// governor's later bind-count read — it marks draining strictly before
// it ever samples binds for retirement — must include this increment
// and the slot survives; if it reads set, the binder retreats and
// picks from a fresh view.
// wcq:noalloc
func (d *Dir[L]) Bind() *Slot[L] {
	for {
		v := d.cur.Load()
		// Skip slots already marked draining: between a shrink's marks
		// and its publish CAS the current view still lists them as
		// active, and re-picking one forever would livelock against a
		// stalled publisher. At least one active slot is always
		// unmarked (a shrink keeps its survivors' flags clear), so the
		// scan cannot come up empty for that reason.
		var best *Slot[L]
		var min int64
		for _, s := range v.active {
			if s.draining.Load() {
				continue
			}
			if b := s.binds.Load(); best == nil || b < min {
				best, min = s, b
			}
		}
		if best == nil {
			continue
		}
		best.binds.Add(1)
		if !best.draining.Load() {
			return best
		}
		best.binds.Add(-1)
	}
}

// Unbind detaches a producer stream from its slot.
// wcq:noalloc
func (d *Dir[L]) Unbind(s *Slot[L]) { s.binds.Add(-1) }

// Protect publishes lane in the binder's hazard slot. The caller must
// re-load View afterwards and restart if it changed: an unchanged view
// proves the publish preceded any retirement's unpublish CAS, so the
// retirer's hazard scan sees it (the §8 argument, verbatim).
// wcq:noalloc
func (d *Dir[L]) Protect(tid int, lane L) { d.dom.Protect(tid, 0, d.ops.Ptr(lane)) }

// ClearHazard drops the binder's published lane at scan end.
// wcq:noalloc
func (d *Dir[L]) ClearHazard(tid int) { d.dom.ClearSlot(tid, 0) }

// NoteOps flushes n completed operations of handle-local counting into
// the sampling window; the flush that crosses the period claims it and
// runs a maintenance pass.
// wcq:noalloc
func (d *Dir[L]) NoteOps(n uint64) {
	c := d.opw.Add(n)
	if c < d.sampleOps {
		return
	}
	if !d.opw.CompareAndSwap(c, 0) {
		return // another flush claimed the window
	}
	d.maintain(false)
}

// NoteContention flushes handle-local contention events (lane entry-CAS
// failures surface per lane; the front-end adds full-lane rejections).
// wcq:noalloc
func (d *Dir[L]) NoteContention(n uint64) { d.events.Add(n) }

// NoteSteals flushes handle-local steal counts (dequeues served by a
// foreign lane — the over-striping signal).
// wcq:noalloc
func (d *Dir[L]) NoteSteals(n uint64) {
	d.steals.Add(n)
	d.stealsTotal.Add(n)
}

// Telemetry is the directory's cumulative observability snapshot.
type Telemetry struct {
	Lanes   int    // current active lane count
	Grows   uint64 // lane-count increases applied (governor or Resize)
	Shrinks uint64 // lane-count decreases applied (governor or Resize)
	Steals  uint64 // cross-lane steal dequeues flushed by handles
}

// Telemetry returns the cumulative counters above. Lock-free reads;
// the counters are monotone, so deltas between snapshots are
// meaningful even across concurrent resizes.
func (d *Dir[L]) Telemetry() Telemetry {
	return Telemetry{
		Lanes:   len(d.cur.Load().active),
		Grows:   d.grows.Load(),
		Shrinks: d.shrinks.Load(),
		Steals:  d.stealsTotal.Load(),
	}
}

// Maintain runs one blocking maintenance pass: drain/retire eligible
// lanes, run the front-end hook, and (if Auto) one governor decision.
// Exported for tests and for embedders that pump housekeeping
// explicitly; operations themselves only ever enter via the TryLock
// path.
func (d *Dir[L]) Maintain() { d.maintain(true) }

func (d *Dir[L]) maintain(block bool) {
	if block {
		d.mu.Lock()
	} else if !d.mu.TryLock() {
		return
	}
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.drainRetireLocked()
	if d.ops.OnMaintain != nil {
		d.ops.OnMaintain()
	}
	if d.auto {
		d.governLocked()
	}
}

// Reclaim forces a hazard scan of the governor's retire set, pulling
// reclaimable lanes into standby (test hook; Retire's own threshold
// does this in steady state).
func (d *Dir[L]) Reclaim() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dom.Scan(govTid)
}

// Resize publishes a directory with n active lanes. Growing first
// promotes draining lanes back to active (cancelling their
// retirement), then pulls from standby, then allocates; shrinking
// marks the top lanes draining. Manual resizes may exceed the
// governor's Max (the governor will pull back inside its bounds if
// Auto is on).
func (d *Dir[L]) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("lanedir: lane count %d out of range [1, ∞)", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("lanedir: directory closed")
	}
	return d.resizeLocked(n)
}

func (d *Dir[L]) resizeLocked(n int) error {
	v := d.cur.Load()
	from := len(v.active)
	if n == from {
		return nil
	}
	active := make([]*Slot[L], 0, n)
	active = append(active, v.active...)
	var draining []*Slot[L]
	if n < len(active) {
		for _, s := range active[n:] {
			s.draining.Store(true)
		}
		draining = make([]*Slot[L], 0, len(v.draining)+len(active)-n)
		draining = append(draining, v.draining...)
		draining = append(draining, active[n:]...)
		active = active[:n:n]
	} else {
		// Promote the youngest draining lanes first: their producers
		// have migrated least and their residuals are freshest.
		promote := v.draining
		for len(active) < n && len(promote) > 0 {
			s := promote[len(promote)-1]
			promote = promote[:len(promote)-1]
			s.draining.Store(false)
			active = append(active, s)
		}
		draining = append([]*Slot[L](nil), promote...)
		for len(active) < n {
			lane, ok := d.standbyTakeLocked()
			if !ok {
				fresh, err := d.ops.New()
				if err != nil {
					// Publish what we assembled so far rather than
					// dropping the promotions.
					d.publishLocked(v, active, draining)
					d.noteResizeLocked(from, len(active))
					return fmt.Errorf("lanedir: growing to %d lanes: %w", n, err)
				}
				lane = fresh
			}
			active = append(active, &Slot[L]{lane: lane})
		}
	}
	d.publishLocked(v, active, draining)
	d.noteResizeLocked(from, len(active))
	return nil
}

// noteResizeLocked records an applied lane-count change in the
// cumulative telemetry.
func (d *Dir[L]) noteResizeLocked(from, to int) {
	switch {
	case to > from:
		d.grows.Add(1)
	case to < from:
		d.shrinks.Add(1)
	}
}

func (d *Dir[L]) standbyTakeLocked() (lane L, ok bool) {
	if n := len(d.standby); n > 0 {
		lane = d.standby[n-1]
		var zero L
		d.standby[n-1] = zero
		d.standby = d.standby[:n-1]
		return lane, true
	}
	return lane, false
}

// publishLocked CASes the successor view in. The CAS always succeeds —
// mu serializes writers — but keeps the publish a single atomic
// point a failpoint can freeze on either side of.
func (d *Dir[L]) publishLocked(old *View[L], active, draining []*Slot[L]) {
	nv := &View[L]{
		epoch:    old.epoch + 1,
		active:   active,
		draining: draining,
		slots:    append(append(make([]*Slot[L], 0, len(active)+len(draining)), active...), draining...),
	}
	if failpoint.Enabled {
		// Successor built, publish CAS pending: handles must keep
		// running on the old view indefinitely.
		failpoint.Inject(failpoint.LanedirPublish)
	}
	d.cur.CompareAndSwap(old, nv)
}

// drainRetireLocked retires every draining lane whose bind count is
// zero and whose residuals could be placed. The bind-count gate is
// what makes the residual handoff exactly-once AND FIFO-safe: zero
// binds means every producer that ever enqueued to the lane has either
// migrated (only past its Drained witness, so none of its values
// remain) or unregistered (its stream is dead, so ordering is
// vacuous); no new enqueue can start (Bind's recheck refuses draining
// slots), so Ops.Drain under mu is the lane's only producer and the
// values move as ordinary queue traffic — once out, once in.
func (d *Dir[L]) drainRetireLocked() {
	v := d.cur.Load()
	if len(v.draining) == 0 {
		return
	}
	target := v.active[0].lane
	var kept, retired []*Slot[L]
	for _, s := range v.draining {
		if s.binds.Load() != 0 {
			kept = append(kept, s)
			continue
		}
		drained := d.ops.Drained(s.lane)
		if !drained && d.ops.Drain != nil {
			drained = d.ops.Drain(s.lane, target)
		}
		if !drained {
			kept = append(kept, s)
			continue
		}
		retired = append(retired, s)
	}
	if len(retired) == 0 {
		return
	}
	d.publishLocked(v, v.active, kept)
	for _, s := range retired {
		lane := s.lane
		if failpoint.Enabled {
			// Lane unpublished, hazard retire pending: stealers that
			// protected it pre-unpublish may still be dequeuing.
			failpoint.Inject(failpoint.LanedirRetire)
		}
		d.dom.Retire(govTid, d.ops.Ptr(lane), func(unsafe.Pointer) {
			// Runs under mu: every Retire/Scan on govTid's set holds it.
			d.standbyPutLocked(lane)
		})
	}
}

func (d *Dir[L]) standbyPutLocked(lane L) {
	if d.closed || len(d.standby) >= d.standbyCap {
		return // dropped; the GC owns it now
	}
	if d.ops.Recycle != nil {
		d.ops.Recycle(lane)
	}
	d.standby = append(d.standby, lane)
}

// governLocked is one resize decision from the sampled window: the
// contention delta across the active lanes plus the front-end's
// flushed events, rated against the window's op count.
func (d *Dir[L]) governLocked() {
	v := d.cur.Load()
	total := int64(d.events.Load())
	for _, s := range v.active {
		if d.ops.Contention != nil {
			total += int64(d.ops.Contention(s.lane))
		}
	}
	delta := total - d.lastEvents
	d.lastEvents = total
	if delta < 0 {
		return // lane set changed under the baseline; re-anchor only
	}
	w := len(v.active)
	window := int64(d.sampleOps)
	steals := int64(d.steals.Swap(0))
	switch {
	case delta > window>>growShift && w < d.max:
		d.calm = 0
		n := w * 2
		if n > d.max {
			n = d.max
		}
		_ = d.resizeLocked(n)
	case delta < window>>calmShift && w > d.min:
		// Calm window. High steal traffic (consumers fed mostly by
		// foreign lanes) marks over-striping and shrinks immediately;
		// plain calm waits out calmWindows samples first.
		d.calm++
		if d.calm >= calmWindows || steals > window>>2 {
			d.calm = 0
			n := w / 2
			if n < d.min {
				n = d.min
			}
			_ = d.resizeLocked(n)
		}
	default:
		d.calm = 0
	}
}

// Close stops all future maintenance and applies f to every lane still
// in the directory (active and draining). Standby lanes are dropped.
// The mutex acquisition orders Close after any in-flight drain pass,
// so a residual handoff never races lane teardown.
func (d *Dir[L]) Close(f func(L)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for _, s := range d.cur.Load().slots {
		f(s.lane)
	}
	d.standby = nil
}
