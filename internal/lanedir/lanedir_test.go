package lanedir

import (
	"errors"
	"sync"
	"testing"
	"unsafe"
)

// fakeLane is a trivially-inspectable lane: a bounded value list plus
// the counters the directory protocols are expected to drive.
type fakeLane struct {
	mu       sync.Mutex
	vals     []int
	cap      int
	recycled int
}

func (l *fakeLane) push(v int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.vals) >= l.cap {
		return false
	}
	l.vals = append(l.vals, v)
	return true
}

func (l *fakeLane) pop() (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.vals) == 0 {
		return 0, false
	}
	v := l.vals[0]
	l.vals = l.vals[1:]
	return v, true
}

func (l *fakeLane) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.vals)
}

// fakeOps builds an Ops vtable over fakeLane, counting allocations.
type fakeOps struct {
	allocs int
	newErr error
}

func (f *fakeOps) ops(laneCap int) Ops[*fakeLane] {
	return Ops[*fakeLane]{
		New: func() (*fakeLane, error) {
			if f.newErr != nil {
				return nil, f.newErr
			}
			f.allocs++
			return &fakeLane{cap: laneCap}, nil
		},
		Drain: func(from, into *fakeLane) bool {
			for {
				v, ok := from.pop()
				if !ok {
					return true
				}
				if !into.push(v) {
					if !from.push(v) {
						panic("lanedir_test: put-back lost a value")
					}
					return false
				}
			}
		},
		Drained:    func(l *fakeLane) bool { return l.len() == 0 },
		Contention: func(l *fakeLane) uint64 { return 0 },
		Recycle:    func(l *fakeLane) { l.recycled++; l.vals = nil },
		Ptr:        func(l *fakeLane) unsafe.Pointer { return unsafe.Pointer(l) },
	}
}

func newDir(t *testing.T, f *fakeOps, cfg Config) *Dir[*fakeLane] {
	t.Helper()
	if cfg.MaxBinders == 0 {
		cfg.MaxBinders = 64
	}
	d, err := New(f.ops(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewPublishesInitialView(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	if got := d.Lanes(); got != 4 {
		t.Fatalf("Lanes() = %d, want 4", got)
	}
	if f.allocs != 4 {
		t.Fatalf("allocated %d lanes, want 4", f.allocs)
	}
	v := d.View()
	if v.Epoch() != 0 || len(v.Slots()) != 4 || len(v.Active()) != 4 {
		t.Fatalf("initial view epoch=%d active=%d slots=%d", v.Epoch(), len(v.Active()), len(v.Slots()))
	}
	if min, max := d.Bounds(); min != 1 || max != 8 {
		t.Fatalf("Bounds() = [%d, %d], want [1, 8]", min, max)
	}
}

func TestBindBalancesAndRefusesDraining(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	// 8 binds over 4 lanes must land 2 per slot (least-bound pick).
	slots := make([]*Slot[*fakeLane], 8)
	for i := range slots {
		slots[i] = d.Bind()
	}
	per := map[*Slot[*fakeLane]]int{}
	for _, s := range slots {
		per[s]++
	}
	if len(per) != 4 {
		t.Fatalf("8 binds covered %d slots, want 4", len(per))
	}
	for s, n := range per {
		if n != 2 || s.Binds() != 2 {
			t.Fatalf("slot has %d binds (tracked %d), want 2", n, s.Binds())
		}
	}
	// Shrink: the draining slots must not accept new binds.
	if err := d.Resize(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s := d.Bind()
		if s.Draining() {
			t.Fatal("Bind returned a draining slot")
		}
		d.Unbind(s)
	}
	for _, s := range slots {
		d.Unbind(s)
	}
}

func TestShrinkRetiresOnlyUnboundDrainedLanes(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	// Bind a handle to every lane, then shrink to 1.
	held := map[*Slot[*fakeLane]]bool{}
	for i := 0; i < 8; i++ {
		s := d.Bind()
		if held[s] {
			d.Unbind(s)
			continue
		}
		held[s] = true
	}
	if err := d.Resize(1); err != nil {
		t.Fatal(err)
	}
	if got := d.DrainingLanes(); got != 3 {
		t.Fatalf("DrainingLanes() = %d, want 3", got)
	}
	// Bound lanes must survive maintenance.
	d.Maintain()
	if got := d.DrainingLanes(); got != 3 {
		t.Fatalf("after Maintain with binds held, DrainingLanes() = %d, want 3", got)
	}
	// Release the draining binds: the next pass retires all three.
	for s := range held {
		if s.Draining() {
			d.Unbind(s)
			delete(held, s)
		}
	}
	d.Maintain()
	d.Reclaim()
	if got := d.DrainingLanes(); got != 0 {
		t.Fatalf("after unbind+Maintain, DrainingLanes() = %d, want 0", got)
	}
	if got := d.StandbyLanes(); got != 3 {
		t.Fatalf("StandbyLanes() = %d, want 3", got)
	}
	for s := range held {
		d.Unbind(s)
	}
}

func TestResidualDrainMovesValuesExactlyOnce(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 2, Min: 1, Max: 4, StandbyCap: 4})
	v := d.View()
	target, victim := v.Active()[0].Lane(), v.Active()[1].Lane()
	// Park residuals on the victim as an already-unregistered producer
	// would leave them, then shrink it away.
	for i := 0; i < 5; i++ {
		if !victim.push(100 + i) {
			t.Fatal("seed push failed")
		}
	}
	if err := d.Resize(1); err != nil {
		t.Fatal(err)
	}
	d.Maintain()
	d.Reclaim()
	if got := d.DrainingLanes(); got != 0 {
		t.Fatalf("victim not retired: DrainingLanes() = %d", got)
	}
	if got := target.len(); got != 5 {
		t.Fatalf("target holds %d residuals, want 5 (exactly once)", got)
	}
	if got := victim.len(); got != 0 {
		t.Fatalf("victim still holds %d values", got)
	}
}

func TestResidualDrainBacksOffWhenTargetFull(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 2, Min: 1, Max: 4, StandbyCap: 4})
	v := d.View()
	target, victim := v.Active()[0].Lane(), v.Active()[1].Lane()
	for i := 0; i < 16; i++ { // fill the target completely
		target.push(i)
	}
	victim.push(777)
	if err := d.Resize(1); err != nil {
		t.Fatal(err)
	}
	d.Maintain()
	// The residual cannot be placed: the lane must stay draining with
	// the value intact (put back), not retire and lose it.
	if got := d.DrainingLanes(); got != 1 {
		t.Fatalf("DrainingLanes() = %d, want 1 (target full)", got)
	}
	if got := victim.len(); got != 1 {
		t.Fatalf("victim holds %d values, want 1 (put back)", got)
	}
	// Free the target: the next pass completes the handoff.
	target.pop()
	d.Maintain()
	d.Reclaim()
	if got := d.DrainingLanes(); got != 0 {
		t.Fatalf("after freeing target, DrainingLanes() = %d, want 0", got)
	}
	if v, ok := target.pop(); !ok {
		t.Fatal("residual vanished")
	} else {
		// 15 seeded values remain ahead of the residual.
		for ok && v != 777 {
			v, ok = target.pop()
		}
		if v != 777 {
			t.Fatal("residual 777 never arrived in target")
		}
	}
}

func TestGrowReusesStandbyThenAllocates(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	if err := d.Resize(2); err != nil {
		t.Fatal(err)
	}
	d.Maintain()
	d.Reclaim()
	if got := d.StandbyLanes(); got != 2 {
		t.Fatalf("StandbyLanes() = %d, want 2", got)
	}
	base := f.allocs
	if err := d.Resize(4); err != nil {
		t.Fatal(err)
	}
	if f.allocs != base {
		t.Fatalf("grow allocated %d fresh lanes with standby available", f.allocs-base)
	}
	if got := d.StandbyLanes(); got != 0 {
		t.Fatalf("StandbyLanes() = %d after reuse, want 0", got)
	}
	// Recycle must have run on the way into standby.
	for _, s := range d.View().Active() {
		_ = s
	}
	if err := d.Resize(6); err != nil {
		t.Fatal(err)
	}
	if f.allocs != base+2 {
		t.Fatalf("grow past standby allocated %d lanes, want 2", f.allocs-base)
	}
}

func TestGrowPromotesDrainingLanes(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	// Pin the LAST active lane (a shrink victim) so it cannot retire.
	// Least-bound binding fills lanes in order, so the fourth bind
	// lands there; the first three are released immediately.
	var s *Slot[*fakeLane]
	last := d.View().Active()[3]
	for i := 0; i < 4; i++ {
		b := d.Bind()
		if b == last {
			s = b
		} else {
			defer d.Unbind(b)
		}
	}
	if s == nil {
		t.Fatal("no bind landed on the last active lane")
	}
	if err := d.Resize(1); err != nil {
		t.Fatal(err)
	}
	d.Maintain() // retires the unbound ones; s's lane stays draining
	d.Reclaim()
	if !s.Draining() {
		t.Fatal("bound slot not draining after shrink")
	}
	base := f.allocs
	if err := d.Resize(2); err != nil {
		t.Fatal(err)
	}
	if s.Draining() {
		t.Fatal("grow did not promote the draining slot")
	}
	if f.allocs != base {
		t.Fatalf("grow allocated %d lanes despite a promotable draining lane", f.allocs-base)
	}
	d.Unbind(s)
}

func TestGrowErrorPublishesPartialAssembly(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 2, Min: 1, Max: 8, StandbyCap: 0})
	f.newErr = errors.New("no memory")
	if err := d.Resize(4); err == nil {
		t.Fatal("grow with failing allocator succeeded")
	}
	// The directory stays consistent at its pre-grow width.
	if got := d.Lanes(); got != 2 {
		t.Fatalf("Lanes() = %d after failed grow, want 2", got)
	}
}

func TestGovernorGrowsUnderContentionAndShrinksWhenCalm(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 2, Min: 1, Max: 8, Auto: true, StandbyCap: 8, SampleOps: 1024})
	// One window of heavy contention: events > window>>growShift.
	d.NoteContention(1024 >> 2)
	d.NoteOps(1024)
	if got := d.Lanes(); got != 4 {
		t.Fatalf("Lanes() = %d after contended window, want 4 (doubled)", got)
	}
	// Repeat: grows toward max.
	d.NoteContention(1024 >> 2)
	d.NoteOps(1024)
	if got := d.Lanes(); got != 8 {
		t.Fatalf("Lanes() = %d after second contended window, want 8", got)
	}
	// Calm windows: no new events. Needs calmWindows consecutive
	// samples before the first shrink.
	d.NoteOps(1024)
	if got := d.Lanes(); got != 8 {
		t.Fatalf("Lanes() = %d after one calm window, want 8 (calm debounce)", got)
	}
	d.NoteOps(1024)
	if got := d.Lanes(); got != 4 {
		t.Fatalf("Lanes() = %d after %d calm windows, want 4 (halved)", got, calmWindows)
	}
}

func TestGovernorShrinksImmediatelyOnStealDominance(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, Auto: true, StandbyCap: 8, SampleOps: 1024})
	// A calm window where most dequeues were steals: over-striped.
	d.NoteSteals(1024 >> 1)
	d.NoteOps(1024)
	if got := d.Lanes(); got != 2 {
		t.Fatalf("Lanes() = %d after steal-dominated window, want 2", got)
	}
}

func TestRegisterReleaseRecyclesTids(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 1, Min: 1, Max: 2, StandbyCap: 2, MaxBinders: 2})
	a, err := d.Register()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Register()
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == govTid || b == govTid {
		t.Fatalf("tids %d, %d must be distinct and nonzero", a, b)
	}
	if _, err := d.Register(); err == nil {
		t.Fatal("binder cap not enforced")
	}
	if got := d.Binders(); got != 2 {
		t.Fatalf("Binders() = %d, want 2", got)
	}
	d.Release(b)
	c, err := d.Register()
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatalf("released tid %d not recycled (got %d)", b, c)
	}
	if got := d.BinderHighWater(); got != 2 {
		t.Fatalf("BinderHighWater() = %d, want 2", got)
	}
	d.Release(a)
	d.Release(c)
}

func TestCloseFreezesDirectory(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 3, Min: 1, Max: 8, StandbyCap: 8})
	var closed int
	d.Close(func(l *fakeLane) { closed++ })
	if closed != 3 {
		t.Fatalf("Close visited %d lanes, want 3", closed)
	}
	if err := d.Resize(5); err == nil {
		t.Fatal("Resize succeeded on a closed directory")
	}
	// Idempotent: the second Close must not re-visit lanes.
	d.Close(func(l *fakeLane) { closed++ })
	if closed != 3 {
		t.Fatalf("second Close re-visited lanes (%d)", closed)
	}
}

// TestConcurrentBindUnbindDuringResize is the bind/retire race check
// under the race detector: binders hammering Bind/Unbind while resizes
// oscillate must never end up bound to a retired lane (every returned
// slot must be non-draining at return time, and bind counts must
// return to zero).
func TestConcurrentBindUnbindDuringResize(t *testing.T) {
	f := &fakeOps{}
	d := newDir(t, f, Config{Initial: 4, Min: 1, Max: 8, StandbyCap: 8})
	const workers = 4
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := d.Bind()
				if s.Draining() {
					// Legal transient: draining may flip after the bind
					// wins; the directory must still count us (retire is
					// gated on binds), so nothing to assert beyond safety.
					_ = s
				}
				d.Unbind(s)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		_ = d.Resize(1 + i%8)
		d.Maintain()
	}
	wg.Wait()
	d.Maintain()
	d.Reclaim()
	var binds int
	for _, s := range d.View().Slots() {
		binds += s.Binds()
	}
	if binds != 0 {
		t.Fatalf("leaked %d binds after churn", binds)
	}
}
