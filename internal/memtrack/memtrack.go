// Package memtrack provides explicit footprint accounting for the
// memory-usage experiment (Fig. 10a).
//
// The paper measures process memory under malloc/jemalloc. Go's
// garbage collector makes RSS a noisy proxy, so every queue in this
// repository instead reports the bytes of queue-owned structures that
// are currently live (rings, list nodes, segments, closed-but-not-yet
// collected CRQs, per-thread records). The growth trends that matter —
// LCRQ's fast growth from closed rings, YMC's slower growth from
// overshoot segments, wCQ/SCQ's flat static footprint — are exactly
// the signal of Fig. 10a.
package memtrack

import "sync/atomic"

// Counter accumulates live bytes. The zero value is ready to use.
type Counter struct {
	live  atomic.Int64
	total atomic.Int64
	peak  atomic.Int64
}

// Alloc records size bytes becoming live.
func (c *Counter) Alloc(size int64) {
	live := c.live.Add(size)
	c.total.Add(size)
	for {
		p := c.peak.Load()
		if live <= p || c.peak.CompareAndSwap(p, live) {
			return
		}
	}
}

// Free records size bytes ceasing to be live (retired to the allocator
// or to the GC).
func (c *Counter) Free(size int64) { c.live.Add(-size) }

// Live returns the currently live queue-owned bytes.
func (c *Counter) Live() int64 { return c.live.Load() }

// Peak returns the high-water mark of Live over the counter's
// lifetime. The boundedness claim of a recycling queue is exactly
// "Peak stops growing once the pool is warm".
func (c *Counter) Peak() int64 { return c.peak.Load() }

// Total returns the cumulative bytes ever allocated, live or not.
// LCRQ-style algorithms show the gap between Total and Live as
// reclamation pressure.
func (c *Counter) Total() int64 { return c.total.Load() }

// Footprinter is implemented by queues that account their memory.
type Footprinter interface {
	// Footprint returns the currently live queue-owned bytes.
	Footprint() int64
}
