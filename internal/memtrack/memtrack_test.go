package memtrack

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Alloc(100)
	c.Alloc(50)
	if c.Live() != 150 || c.Total() != 150 {
		t.Fatalf("after allocs: live=%d total=%d", c.Live(), c.Total())
	}
	c.Free(100)
	if c.Live() != 50 {
		t.Fatalf("after free: live=%d", c.Live())
	}
	if c.Total() != 150 {
		t.Fatalf("total must not decrease: %d", c.Total())
	}
}

func TestCounterPeak(t *testing.T) {
	var c Counter
	c.Alloc(100)
	c.Alloc(50)
	c.Free(120)
	if c.Peak() != 150 {
		t.Fatalf("peak = %d, want 150", c.Peak())
	}
	c.Alloc(30) // live 60: below the old peak
	if c.Peak() != 150 {
		t.Fatalf("peak moved below the high-water mark: %d", c.Peak())
	}
	c.Alloc(200) // live 260: new peak
	if c.Peak() != 260 {
		t.Fatalf("peak = %d, want 260", c.Peak())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Alloc(10)
				c.Free(10)
			}
		}()
	}
	wg.Wait()
	if c.Live() != 0 {
		t.Fatalf("live = %d after balanced alloc/free", c.Live())
	}
	if c.Total() != workers*per*10 {
		t.Fatalf("total = %d", c.Total())
	}
}
