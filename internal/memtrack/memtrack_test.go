package memtrack

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Alloc(100)
	c.Alloc(50)
	if c.Live() != 150 || c.Total() != 150 {
		t.Fatalf("after allocs: live=%d total=%d", c.Live(), c.Total())
	}
	c.Free(100)
	if c.Live() != 50 {
		t.Fatalf("after free: live=%d", c.Live())
	}
	if c.Total() != 150 {
		t.Fatalf("total must not decrease: %d", c.Total())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Alloc(10)
				c.Free(10)
			}
		}()
	}
	wg.Wait()
	if c.Live() != 0 {
		t.Fatalf("live = %d after balanced alloc/free", c.Live())
	}
	if c.Total() != workers*per*10 {
		t.Fatalf("total = %d", c.Total())
	}
}
