// Package pad provides cache-line padding primitives used to avoid
// false sharing between hot atomic variables.
//
// All contended words in this repository (Head, Tail, Threshold,
// per-thread records) are isolated on their own cache line, mirroring
// the alignment the paper's C implementation obtains with
// __attribute__((aligned(128))).
package pad

import "sync/atomic"

// CacheLineSize is the assumed size in bytes of one CPU cache line.
// 64 is correct for all contemporary x86-64 and most AArch64 parts.
// We pad to double that (128) to defeat adjacent-line prefetchers,
// matching the paper's C artifact.
const CacheLineSize = 64

// Pad occupies exactly one cache line and carries no data. Embed it
// between fields that must not share a line.
type Pad [CacheLineSize]byte

// DoublePad occupies two cache lines, defeating adjacent-line
// (spatial) prefetchers on Intel hardware.
type DoublePad [2 * CacheLineSize]byte

// Uint64 is a uint64 that owns its cache line(s): the value is
// surrounded by enough padding that no other variable can share a
// line with it.
type Uint64 struct {
	_ DoublePad
	v atomic.Uint64
	_ DoublePad
}

// Load atomically loads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically stores val.
func (p *Uint64) Store(val uint64) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Or atomically ORs mask into the value and returns the old value.
func (p *Uint64) Or(mask uint64) uint64 { return p.v.Or(mask) }

// CompareAndSwap executes the CAS operation.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Raw returns the underlying atomic for callers that need to pass it
// to helpers operating on *atomic.Uint64.
func (p *Uint64) Raw() *atomic.Uint64 { return &p.v }

// Int64 is an int64 that owns its cache line(s).
type Int64 struct {
	_ DoublePad
	v atomic.Int64
	_ DoublePad
}

// Load atomically loads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically stores val.
func (p *Int64) Store(val int64) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS operation.
func (p *Int64) CompareAndSwap(old, new int64) bool { return p.v.CompareAndSwap(old, new) }

// Raw returns the underlying atomic.
func (p *Int64) Raw() *atomic.Int64 { return &p.v }

// Bool is a bool that owns its cache line(s).
type Bool struct {
	_ DoublePad
	v atomic.Bool
	_ DoublePad
}

// Load atomically loads the value.
func (p *Bool) Load() bool { return p.v.Load() }

// Store atomically stores val.
func (p *Bool) Store(val bool) { p.v.Store(val) }
