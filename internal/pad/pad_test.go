package pad

import (
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s < 4*CacheLineSize {
		t.Fatalf("padded Uint64 is %d bytes; want >= %d to isolate its line", s, 4*CacheLineSize)
	}
	if s := unsafe.Sizeof(Int64{}); s < 4*CacheLineSize {
		t.Fatalf("padded Int64 is %d bytes", s)
	}
}

func TestUint64Ops(t *testing.T) {
	var v Uint64
	v.Store(10)
	if v.Load() != 10 {
		t.Fatal("store/load")
	}
	if v.Add(5) != 15 {
		t.Fatal("add")
	}
	if !v.CompareAndSwap(15, 20) || v.CompareAndSwap(15, 30) {
		t.Fatal("cas")
	}
	if old := v.Or(0x3); old != 20 || v.Load() != 23 {
		t.Fatalf("or: old=%d now=%d", old, v.Load())
	}
	if v.Raw().Load() != 23 {
		t.Fatal("raw accessor")
	}
}

func TestInt64Ops(t *testing.T) {
	var v Int64
	v.Store(-5)
	if v.Add(-1) != -6 {
		t.Fatal("add")
	}
	if !v.CompareAndSwap(-6, 7) {
		t.Fatal("cas")
	}
	if v.Raw().Load() != 7 {
		t.Fatal("raw accessor")
	}
}

func TestBoolOps(t *testing.T) {
	var b Bool
	if b.Load() {
		t.Fatal("zero value not false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("store true")
	}
}

func TestConcurrentAdd(t *testing.T) {
	var v Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Add(1)
			}
		}()
	}
	wg.Wait()
	if v.Load() != 8000 {
		t.Fatalf("lost updates: %d", v.Load())
	}
}
