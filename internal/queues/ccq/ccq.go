// Package ccq implements CCQueue (Fatourou & Kallimanis, PPoPP '12),
// the combining baseline of the paper's evaluation. Threads publish
// operation records; one thread at a time becomes the combiner,
// acquires the combining lock, and applies every pending operation to
// a sequential queue on the others' behalf. Combining trades progress
// guarantees (it is blocking) for low synchronization cost: one lock
// handoff serves many operations.
package ccq

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// opKind distinguishes pending operations.
type opKind uint32

const (
	opNone opKind = iota
	opEnqueue
	opDequeue
)

// request is a thread's published operation (padded: each record is
// spin-waited on by its owner while the combiner writes it).
type request struct {
	_       pad.DoublePad
	kind    atomic.Uint32
	arg     atomic.Uint64
	ret     atomic.Uint64
	retOK   atomic.Bool
	done    atomic.Bool
	_       pad.DoublePad
	pending atomic.Bool
	_       pad.DoublePad
}

type node struct {
	val  uint64
	next *node
}

const nodeBytes = 24

// Queue is the combining queue.
type Queue struct {
	lock pad.Uint64 // 0 free, 1 held

	// Sequential queue state, touched only by the combiner.
	head *node
	tail *node
	pool *node // freed nodes, reused by the combiner

	reqs []request
	mu   chan struct{}
	free []int
	mem  memtrack.Counter
}

// New creates a CCQueue for up to numThreads registered threads.
func New(numThreads int) *Queue {
	q := &Queue{
		reqs: make([]request, numThreads),
		mu:   make(chan struct{}, 1),
		free: make([]int, 0, numThreads),
	}
	for i := numThreads - 1; i >= 0; i-- {
		q.free = append(q.free, i)
	}
	dummy := &node{}
	q.mem.Alloc(nodeBytes)
	q.head, q.tail = dummy, dummy
	return q
}

// Register claims a thread id.
func (q *Queue) Register() (any, error) {
	q.mu <- struct{}{}
	defer func() { <-q.mu }()
	if len(q.free) == 0 {
		return nil, fmt.Errorf("ccq: all thread slots registered")
	}
	tid := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	return tid, nil
}

// Unregister releases a thread id.
func (q *Queue) Unregister(h any) {
	q.mu <- struct{}{}
	defer func() { <-q.mu }()
	q.free = append(q.free, h.(int))
}

// Name identifies the algorithm.
func (q *Queue) Name() string { return "CCQueue" }

// Footprint returns live queue-owned bytes.
func (q *Queue) Footprint() int64 { return q.mem.Live() }

// Enqueue inserts v. Always succeeds (unbounded).
func (q *Queue) Enqueue(h any, v uint64) bool {
	r := &q.reqs[h.(int)]
	r.arg.Store(v)
	r.done.Store(false)
	r.kind.Store(uint32(opEnqueue))
	r.pending.Store(true)
	q.await(r)
	return true
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(h any) (uint64, bool) {
	r := &q.reqs[h.(int)]
	r.done.Store(false)
	r.kind.Store(uint32(opDequeue))
	r.pending.Store(true)
	q.await(r)
	return r.ret.Load(), r.retOK.Load()
}

// await waits for the request to be served, becoming the combiner when
// the lock is free.
func (q *Queue) await(r *request) {
	for !r.done.Load() {
		if q.lock.CompareAndSwap(0, 1) {
			q.combine()
			q.lock.Store(0)
			if r.done.Load() {
				return
			}
			continue
		}
		runtime.Gosched()
	}
}

// combine serves every pending request. Runs under the combining lock.
func (q *Queue) combine() {
	// A few passes pick up requests published while combining.
	for pass := 0; pass < 3; pass++ {
		served := 0
		for i := range q.reqs {
			r := &q.reqs[i]
			if !r.pending.Load() || r.done.Load() {
				continue
			}
			switch opKind(r.kind.Load()) {
			case opEnqueue:
				q.seqEnqueue(r.arg.Load())
				r.retOK.Store(true)
			case opDequeue:
				v, ok := q.seqDequeue()
				r.ret.Store(v)
				r.retOK.Store(ok)
			}
			r.pending.Store(false)
			r.done.Store(true)
			served++
		}
		if served == 0 {
			return
		}
	}
}

func (q *Queue) seqEnqueue(v uint64) {
	nd := q.pool
	if nd != nil {
		q.pool = nd.next
		nd.next = nil
		nd.val = v
	} else {
		nd = &node{val: v}
		q.mem.Alloc(nodeBytes)
	}
	q.tail.next = nd
	q.tail = nd
}

func (q *Queue) seqDequeue() (uint64, bool) {
	next := q.head.next
	if next == nil {
		return 0, false
	}
	v := next.val
	old := q.head
	q.head = next
	old.next = q.pool // recycle the old dummy
	q.pool = old
	return v, true
}
