package ccq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	defer q.Unregister(h)
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 500; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue yielded a value")
	}
}

func TestNodeRecycling(t *testing.T) {
	q := New(1)
	h, _ := q.Register()
	defer q.Unregister(h)
	for i := 0; i < 100; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
	stable := q.Footprint()
	for i := 0; i < 10_000; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
	if q.Footprint() != stable {
		t.Fatalf("combiner pool leaked: %d -> %d", stable, q.Footprint())
	}
}

func TestCombinerServesPeers(t *testing.T) {
	// Two threads hammer the queue; whichever holds the combiner lock
	// must serve the other's requests (the test deadlocks within the
	// timeout if combining is broken).
	q := New(2)
	const per = 20_000
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, _ := q.Register()
			defer q.Unregister(h)
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(w*per+i))
				q.Dequeue(h)
			}
		}(w)
	}
	wg.Wait()
}

func TestRegistryExhaustion(t *testing.T) {
	q := New(1)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("over-registration accepted")
	}
	q.Unregister(h)
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
}
