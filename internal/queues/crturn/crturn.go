// Package crturn implements the CRTurn wait-free queue of Ramalhete &
// Correia (PPoPP '17 poster), a baseline in the paper's evaluation and
// the outer layer the paper proposes for unbounded wCQ (Appendix A).
//
// CRTurn is a list-based queue in which both enqueues and dequeues are
// served in "turns": a thread publishes its request in a per-thread
// slot and every operation helps complete the request whose turn it
// is, giving wait-freedom without fetch-and-add — and, as the paper's
// evaluation shows, without much scalability.
//
// Enqueue requests live in enqueuers[tid]. Dequeue requests use the
// deqself/deqhelp pair: a thread requests by making deqself[tid] equal
// deqhelp[tid]; helpers assign the dequeued node by writing it to
// deqhelp[tid]. Each list node records deqTid, the id of the dequeuer
// it was assigned to, which makes assignment idempotent across
// helpers.
//
// The original runs under hazard pointers; Go's GC substitutes for
// them here (DESIGN.md §2), with explicit footprint accounting.
package crturn

import (
	"fmt"
	"sync/atomic"

	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

const noIdx = -1

type node struct {
	val    uint64
	enqTid int32
	deqTid atomic.Int32
	next   atomic.Pointer[node]
}

const nodeBytes = 32

func newNode(val uint64, enqTid int32) *node {
	n := &node{val: val, enqTid: enqTid}
	n.deqTid.Store(noIdx)
	return n
}

// slotPtr is a padded atomic node pointer (one per thread, spun on).
type slotPtr struct {
	_ pad.DoublePad
	p atomic.Pointer[node]
	_ pad.DoublePad
}

// Queue is the CRTurn wait-free queue.
type Queue struct {
	_    pad.DoublePad
	head atomic.Pointer[node]
	_    pad.DoublePad
	tail atomic.Pointer[node]
	_    pad.DoublePad

	enqueuers []slotPtr
	deqself   []slotPtr
	deqhelp   []slotPtr
	nt        int

	mu   chan struct{}
	free []int
	mem  memtrack.Counter
}

// New creates a CRTurn queue for up to numThreads registered threads.
func New(numThreads int) *Queue {
	q := &Queue{
		enqueuers: make([]slotPtr, numThreads),
		deqself:   make([]slotPtr, numThreads),
		deqhelp:   make([]slotPtr, numThreads),
		nt:        numThreads,
		mu:        make(chan struct{}, 1),
		free:      make([]int, 0, numThreads),
	}
	for i := numThreads - 1; i >= 0; i-- {
		q.free = append(q.free, i)
	}
	sentinel := newNode(0, 0)
	q.mem.Alloc(nodeBytes)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	for i := 0; i < numThreads; i++ {
		// Distinct placeholders so deqself[i] != deqhelp[i]
		// (no request pending).
		q.deqself[i].p.Store(newNode(0, int32(i)))
		q.deqhelp[i].p.Store(newNode(0, int32(i)))
		q.mem.Alloc(2 * nodeBytes)
	}
	return q
}

// Register claims a thread id.
func (q *Queue) Register() (any, error) {
	q.mu <- struct{}{}
	defer func() { <-q.mu }()
	if len(q.free) == 0 {
		return nil, fmt.Errorf("crturn: all thread slots registered")
	}
	tid := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	return tid, nil
}

// Unregister releases a thread id.
func (q *Queue) Unregister(h any) {
	q.mu <- struct{}{}
	defer func() { <-q.mu }()
	q.free = append(q.free, h.(int))
}

// Name identifies the algorithm.
func (q *Queue) Name() string { return "CRTurn" }

// Footprint returns live queue-owned bytes.
func (q *Queue) Footprint() int64 { return q.mem.Live() }

// Enqueue appends v. Always succeeds (unbounded).
func (q *Queue) Enqueue(h any, v uint64) bool {
	tid := h.(int)
	myNode := newNode(v, int32(tid))
	q.mem.Alloc(nodeBytes)
	q.enqueuers[tid].p.Store(myNode)
	for i := 0; i < q.nt; i++ {
		if q.enqueuers[tid].p.Load() == nil {
			break // a helper completed our request
		}
		ltail := q.tail.Load()
		// Dismiss the request that installed the current tail: it has
		// been served. This must precede the search so a served node
		// cannot be linked twice.
		if q.enqueuers[ltail.enqTid].p.Load() == ltail {
			q.enqueuers[ltail.enqTid].p.CompareAndSwap(ltail, nil)
		}
		// Serve the next pending enqueue request in turn order.
		for j := 1; j <= q.nt; j++ {
			toHelp := q.enqueuers[(j+int(ltail.enqTid))%q.nt].p.Load()
			if toHelp == nil {
				continue
			}
			ltail.next.CompareAndSwap(nil, toHelp)
			break
		}
		if lnext := ltail.next.Load(); lnext != nil {
			q.tail.CompareAndSwap(ltail, lnext)
		}
	}
	q.enqueuers[tid].p.Store(nil)
	return true
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(h any) (uint64, bool) {
	tid := h.(int)
	prReq := q.deqself[tid].p.Load()
	myReq := q.deqhelp[tid].p.Load()
	q.deqself[tid].p.Store(myReq) // publish: deqself == deqhelp means requesting
	for i := 0; ; i++ {
		if q.deqhelp[tid].p.Load() != myReq {
			break // a helper assigned our node
		}
		lhead := q.head.Load()
		if lhead == q.tail.Load() {
			// Looks empty: withdraw the request, double-check.
			q.deqself[tid].p.Store(prReq)
			q.giveUp(myReq, tid)
			if q.deqhelp[tid].p.Load() != myReq {
				q.deqself[tid].p.Store(myReq)
				break
			}
			return 0, false
		}
		lnext := lhead.next.Load()
		if lhead != q.head.Load() || lnext == nil {
			continue
		}
		if q.searchNext(lhead, lnext) != noIdx {
			q.casDeqAndHead(lhead, lnext, tid)
		}
	}
	myNode := q.deqhelp[tid].p.Load()
	// Help advance head past our own node if no one else has.
	lhead := q.head.Load()
	if myNode == lhead.next.Load() {
		q.head.CompareAndSwap(lhead, myNode)
	}
	q.mem.Free(nodeBytes) // prReq is retired (reclaimed by GC)
	return myNode.val, true
}

// searchNext picks, in turn order after the thread that dequeued
// lhead, the next requesting dequeuer and assigns lnext to it via the
// node's one-shot deqTid field.
func (q *Queue) searchNext(lhead, lnext *node) int32 {
	turn := lhead.deqTid.Load()
	for idx := int(turn) + 1; idx < int(turn)+q.nt+1; idx++ {
		idDeq := ((idx % q.nt) + q.nt) % q.nt
		if q.deqself[idDeq].p.Load() != q.deqhelp[idDeq].p.Load() {
			continue // not requesting
		}
		if lnext.deqTid.Load() == noIdx {
			lnext.deqTid.CompareAndSwap(noIdx, int32(idDeq))
		}
		break
	}
	return lnext.deqTid.Load()
}

// casDeqAndHead delivers lnext to its assigned dequeuer and advances
// head. Delivery is idempotent across helpers; when the assignment is
// the caller's own, a plain store suffices and — crucially — still
// works after the caller withdrew its request (the giveUp path), which
// the CAS guard would reject.
func (q *Queue) casDeqAndHead(lhead, lnext *node, tid int) {
	idDeq := lnext.deqTid.Load()
	if idDeq == noIdx {
		return
	}
	if int(idDeq) == tid {
		q.deqhelp[idDeq].p.Store(lnext)
	} else {
		ldeqhelp := q.deqhelp[idDeq].p.Load()
		if ldeqhelp != lnext && lhead == q.head.Load() {
			// While head == lhead, lnext is still undelivered, so the
			// CAS cannot suffer ABA: deqhelp[idDeq] only ever moves to
			// lnext once lnext.deqTid is set.
			q.deqhelp[idDeq].p.CompareAndSwap(ldeqhelp, lnext)
		}
	}
	q.head.CompareAndSwap(lhead, lnext)
}

// giveUp re-checks, after a withdrawn request, whether the queue
// assigned us a node anyway (our turn arrived while withdrawing).
func (q *Queue) giveUp(myReq *node, tid int) {
	lhead := q.head.Load()
	if q.deqhelp[tid].p.Load() != myReq || lhead == q.tail.Load() {
		return
	}
	lnext := lhead.next.Load()
	if lhead != q.head.Load() || lnext == nil {
		return
	}
	if q.searchNext(lhead, lnext) == int32(tid) {
		q.casDeqAndHead(lhead, lnext, tid)
	}
}
