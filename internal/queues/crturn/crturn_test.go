package crturn

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	defer q.Unregister(h)
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 500; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue yielded a value")
	}
}

func TestEmptyThenRefill(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	defer q.Unregister(h)
	for round := 0; round < 50; round++ {
		if _, ok := q.Dequeue(h); ok {
			t.Fatalf("round %d: empty queue yielded a value", round)
		}
		q.Enqueue(h, uint64(round))
		v, ok := q.Dequeue(h)
		if !ok || v != uint64(round) {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

func TestFootprintTracksContent(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	defer q.Unregister(h)
	base := q.Footprint()
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(h, i)
	}
	grown := q.Footprint()
	if grown <= base {
		t.Fatal("enqueue did not grow footprint")
	}
	for i := uint64(0); i < 1000; i++ {
		q.Dequeue(h)
	}
	if q.Footprint() >= grown {
		t.Fatalf("dequeue did not shrink footprint: %d -> %d", grown, q.Footprint())
	}
}

func TestDequeueAssignmentIsExclusive(t *testing.T) {
	// Many concurrent dequeuers, each value delivered exactly once.
	const threads, per = 4, 5_000
	q := New(threads + 1)
	seed, _ := q.Register()
	total := threads * per
	for i := 0; i < total; i++ {
		q.Enqueue(seed, uint64(i))
	}
	q.Unregister(seed)

	var mu sync.Mutex
	seen := make(map[uint64]int, total)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := q.Register()
			defer q.Unregister(h)
			local := make([]uint64, 0, per)
			for len(local) < per {
				if v, ok := q.Dequeue(h); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			for _, v := range local {
				seen[v]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("distinct values %d, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}

func TestEnqueueHelping(t *testing.T) {
	// Concurrent enqueuers must all complete even though only list
	// order serializes them (turn-based helping).
	const threads, per = 4, 5_000
	q := New(threads + 1)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, _ := q.Register()
			defer q.Unregister(h)
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	h, _ := q.Register()
	n := 0
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
		n++
	}
	if n != threads*per {
		t.Fatalf("drained %d of %d", n, threads*per)
	}
}
