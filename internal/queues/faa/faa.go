// Package faa implements the paper's "FAA" pseudo-queue: Enqueue and
// Dequeue are single fetch-and-add instructions on Tail and Head plus
// one slot access. It is not a correct queue (values can be lost or
// reordered under races) and is benchmarked only as the theoretical
// throughput upper bound for F&A-based designs, exactly as in §6.
package faa

import (
	"sync/atomic"

	"wcqueue/internal/pad"
)

const (
	ringOrder = 16
	ringMask  = 1<<ringOrder - 1
)

// Queue is the F&A upper-bound pseudo-queue.
type Queue struct {
	tail  pad.Uint64
	head  pad.Uint64
	slots []atomic.Uint64
}

// New creates the pseudo-queue.
func New() *Queue {
	return &Queue{slots: make([]atomic.Uint64, 1<<ringOrder)}
}

// Register returns a shared no-op handle.
func (q *Queue) Register() (any, error) { return 0, nil }

// Unregister is a no-op.
func (q *Queue) Unregister(any) {}

// Name identifies the algorithm.
func (q *Queue) Name() string { return "FAA" }

// Footprint returns the static ring size.
func (q *Queue) Footprint() int64 { return int64(len(q.slots)) * 8 }

// Enqueue performs one F&A and one store. Always "succeeds".
func (q *Queue) Enqueue(_ any, v uint64) bool {
	t := q.tail.Add(1) - 1
	q.slots[t&ringMask].Store(v)
	return true
}

// Dequeue performs one F&A and one load. Emptiness is approximated by
// comparing the counters, as in the paper's harness.
func (q *Queue) Dequeue(_ any) (uint64, bool) {
	if q.head.Load() >= q.tail.Load() {
		return 0, false
	}
	h := q.head.Add(1) - 1
	return q.slots[h&ringMask].Load(), true
}
