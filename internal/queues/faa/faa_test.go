package faa

import "testing"

func TestPseudoQueueCounters(t *testing.T) {
	q := New()
	h, _ := q.Register()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("fresh pseudo-queue non-empty")
	}
	q.Enqueue(h, 42)
	v, ok := q.Dequeue(h)
	if !ok || v != 42 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("counters out of sync after balanced ops")
	}
}

func TestFootprintStatic(t *testing.T) {
	q := New()
	h, _ := q.Register()
	before := q.Footprint()
	for i := uint64(0); i < 100_000; i++ {
		q.Enqueue(h, i)
		q.Dequeue(h)
	}
	if q.Footprint() != before {
		t.Fatal("pseudo-queue allocated")
	}
	if q.Name() != "FAA" {
		t.Fatal("name")
	}
}
