// Package lcrq implements LCRQ (Morrison & Afek, PPoPP '13): CRQ ring
// buffers that use fetch-and-add on Head/Tail, linked into a Michael &
// Scott list. CRQs are livelock-prone: when an enqueuer starves it
// "closes" the ring and appends a fresh one to the list — the source
// of LCRQ's high memory consumption in the paper's Fig. 10a.
//
// Platform substitution (DESIGN.md §5): the original CRQ updates a
// {safe/idx, value} cell with CMPXCHG16B. Go has no 128-bit CAS, so a
// cell here is a packed 64-bit status word {cycle, safe, full, ready}
// plus a parallel value slot. An enqueuer first claims the cell by
// CASing full@cycle, then publishes the value and sets ready with an
// atomic OR; the matching dequeuer waits for ready before reading the
// value. The claim CAS serializes competing enqueuers of different
// cycles, and the ready bit closes the publish window (a cell is
// briefly "claimed but unpublished"; the wait is bounded by one
// scheduler quantum — a documented deviation from the fully
// non-blocking CMPXCHG16B original). The structural behaviour — F&A
// hot path, unsafe marking, ring closing, list growth — is unchanged.
package lcrq

import (
	"runtime"
	"sync/atomic"

	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// RingOrder sets the CRQ size to 2^RingOrder cells; the paper's
// default ring is 2^12.
const RingOrder = 12

const (
	ringSize = 1 << RingOrder
	ringMask = ringSize - 1

	// closedBit marks a closed ring in its tail word.
	closedBit = uint64(1) << 63

	// Cell status word: [cycle : 61][safe : 1][full : 1][ready : 1].
	readyBit = uint64(1) << 0
	fullBit  = uint64(1) << 1
	safeBit  = uint64(1) << 2
	cycShift = 3

	// starvationLimit: failed claim attempts before an enqueuer
	// closes the ring.
	starvationLimit = ringSize
)

type cell struct {
	status atomic.Uint64 // packed {cycle, safe, full}
	val    atomic.Uint64
}

const ringBytes = ringSize*16 + 256

// crq is one closed-able ring buffer.
type crq struct {
	head  pad.Uint64
	tail  pad.Uint64 // counter | closedBit
	next  atomic.Pointer[crq]
	cells []cell
}

func newCRQ() *crq {
	r := &crq{cells: make([]cell, ringSize)}
	for i := range r.cells {
		r.cells[i].status.Store(safeBit) // cycle 0, safe, empty
	}
	// Start at cycle 1 so initial cells (cycle 0) read as old.
	r.head.Store(ringSize)
	r.tail.Store(ringSize)
	return r
}

func pack(cycle uint64, safe, full bool) uint64 {
	w := cycle << cycShift
	if safe {
		w |= safeBit
	}
	if full {
		w |= fullBit
	}
	return w
}

func cycleOf(counter uint64) uint64 { return counter >> RingOrder }

// enqueue claims a cell for v; false means the ring is (now) closed.
func (r *crq) enqueue(v uint64) bool {
	fails := 0
	for {
		t := r.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		c := &r.cells[t&ringMask]
		cyc := cycleOf(t)
		s := c.status.Load()
		if s&fullBit == 0 && s>>cycShift < cyc &&
			(s&safeBit != 0 || r.head.Load() <= t) {
			// Claim first (serializes competing enqueuers), then
			// publish the value and mark it ready.
			if c.status.CompareAndSwap(s, pack(cyc, true, true)) {
				c.val.Store(v)
				c.status.Or(readyBit)
				return true
			}
		}
		// Starvation or overfull ring: close it.
		if t-r.head.Load() >= ringSize {
			r.close()
			return false
		}
		if fails++; fails >= starvationLimit {
			r.close()
			return false
		}
	}
}

func (r *crq) close() { r.tail.Or(closedBit) }

func (r *crq) closed() bool { return r.tail.Load()&closedBit != 0 }

// dequeue removes the oldest value; ok=false means empty (for this
// ring).
func (r *crq) dequeue() (uint64, bool) {
	for {
		h := r.head.Add(1) - 1
		c := &r.cells[h&ringMask]
		cyc := cycleOf(h)
		for {
			s := c.status.Load()
			scyc := s >> cycShift
			if s&fullBit != 0 && scyc == cyc {
				if s&readyBit == 0 {
					// Claimed but not yet published; the claimer is
					// one store away.
					runtime.Gosched()
					continue
				}
				// Consume: read the value, then mark the cell empty at
				// this cycle.
				v := c.val.Load()
				if !c.status.CompareAndSwap(s, pack(cyc, s&safeBit != 0, false)) {
					continue
				}
				return v, true
			}
			if scyc >= cyc {
				break // future cycle: our turn is long gone
			}
			// Invalidate the cell for our cycle so a late enqueuer
			// cannot use it.
			var n uint64
			if s&fullBit != 0 {
				// Unread old value: mark unsafe, preserving ready so
				// its in-flight dequeuer can still consume it.
				n = pack(scyc, false, true) | s&readyBit
			} else {
				n = pack(cyc, s&safeBit != 0, false)
			}
			if c.status.CompareAndSwap(s, n) {
				break
			}
		}
		// Empty detection.
		t := r.tail.Load() &^ closedBit
		if t <= h+1 {
			r.fixState(h + 1)
			return 0, false
		}
	}
}

// fixState advances tail up to head after dequeuers overran it.
func (r *crq) fixState(head uint64) {
	for {
		t := r.tail.Load()
		if t&closedBit != 0 || (t&^closedBit) >= head {
			return
		}
		if r.tail.CompareAndSwap(t, head) {
			return
		}
	}
}

// Queue is the full LCRQ: a Michael & Scott list of CRQs.
type Queue struct {
	_     pad.DoublePad
	first atomic.Pointer[crq]
	_     pad.DoublePad
	last  atomic.Pointer[crq]
	_     pad.DoublePad
	mem   memtrack.Counter
}

// New creates an LCRQ.
func New() *Queue {
	q := &Queue{}
	r := newCRQ()
	q.mem.Alloc(ringBytes)
	q.first.Store(r)
	q.last.Store(r)
	return q
}

// Register returns a shared no-op handle (LCRQ needs no per-thread
// state beyond reclamation, which Go's GC provides).
func (q *Queue) Register() (any, error) { return 0, nil }

// Unregister is a no-op.
func (q *Queue) Unregister(any) {}

// Name identifies the algorithm.
func (q *Queue) Name() string { return "LCRQ" }

// Footprint returns live queue-owned bytes: every ring still linked,
// including closed rings awaiting drain — the paper's memory-growth
// signal.
func (q *Queue) Footprint() int64 { return q.mem.Live() }

// Enqueue appends v. Always succeeds (unbounded).
func (q *Queue) Enqueue(_ any, v uint64) bool {
	for {
		r := q.last.Load()
		if n := r.next.Load(); n != nil {
			q.last.CompareAndSwap(r, n) // help advance
			continue
		}
		if r.enqueue(v) {
			return true
		}
		// Ring closed: append a fresh ring holding v.
		nr := newCRQ()
		if !nr.enqueue(v) {
			panic("lcrq: enqueue on fresh ring failed")
		}
		if r.next.CompareAndSwap(nil, nr) {
			q.mem.Alloc(ringBytes)
			q.last.CompareAndSwap(r, nr)
			return true
		}
		// Someone else appended; retry into their ring.
	}
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(_ any) (uint64, bool) {
	for {
		r := q.first.Load()
		if v, ok := r.dequeue(); ok {
			return v, true
		}
		// Ring drained. If nothing follows, the queue is empty.
		if r.next.Load() == nil {
			return 0, false
		}
		// A successor exists: the drained ring is permanently empty
		// only if it is closed or still empty on a re-check.
		if v, ok := r.dequeue(); ok {
			return v, true
		}
		next := r.next.Load()
		if q.first.CompareAndSwap(r, next) {
			q.mem.Free(ringBytes) // unlinked ring is reclaimed by GC
		}
	}
}
