package lcrq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	h, _ := q.Register()
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestCRQCellCycleAcrossWrap(t *testing.T) {
	q := New()
	h, _ := q.Register()
	// More values than one ring holds, interleaved, forces cycle reuse
	// within the first CRQ without closing it.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < ringSize/2; i++ {
			q.Enqueue(h, i)
		}
		for i := uint64(0); i < ringSize/2; i++ {
			v, ok := q.Dequeue(h)
			if !ok || v != i {
				t.Fatalf("round %d pos %d: got (%d,%v)", round, i, v, ok)
			}
		}
	}
	if q.Footprint() != ringBytes {
		t.Fatalf("uncontended wrap grew the ring list: %d", q.Footprint())
	}
}

func TestClosedRingAppendsSuccessor(t *testing.T) {
	q := New()
	h, _ := q.Register()
	q.Enqueue(h, 1)
	// Force-close the head ring (what starvation would do), then
	// enqueue: the value must land in a fresh ring and FIFO must hold.
	q.first.Load().close()
	q.Enqueue(h, 2)
	if q.Footprint() <= ringBytes {
		t.Fatal("no successor ring appended after close")
	}
	for want := uint64(1); want <= 2; want++ {
		v, ok := q.Dequeue(h)
		if !ok || v != want {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	// Draining past the closed ring unlinks it.
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue not empty")
	}
	if q.Footprint() > ringBytes {
		t.Fatalf("closed ring not unlinked: %d", q.Footprint())
	}
}

func TestTailClosedBitSurvivesFAA(t *testing.T) {
	r := newCRQ()
	r.close()
	if !r.closed() {
		t.Fatal("close did not stick")
	}
	if ok := r.enqueue(1); ok {
		t.Fatal("enqueue on closed ring succeeded")
	}
	if !r.closed() {
		t.Fatal("failed enqueue cleared the closed bit")
	}
}

func TestFixStateAdvancesTail(t *testing.T) {
	r := newCRQ()
	// Dequeues on an empty ring overrun tail; fixState must bring tail
	// up so head/tail stay consistent.
	for i := 0; i < 100; i++ {
		if _, ok := r.dequeue(); ok {
			t.Fatal("empty ring yielded a value")
		}
	}
	if r.enqueue(7) != true {
		t.Fatal("enqueue after overrun failed")
	}
	v, ok := r.dequeue()
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestConcurrentMPMCSmall(t *testing.T) {
	q := New()
	const producers, per = 4, 10_000
	var wg, cg sync.WaitGroup
	var mu sync.Mutex
	counts := make(map[uint64]int)
	done := make(chan struct{})
	for c := 0; c < 2; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			h, _ := q.Register()
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok := q.Dequeue(h); ok {
					mu.Lock()
					counts[v]++
					mu.Unlock()
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h, _ := q.Register()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(p*per+i))
			}
		}(p)
	}
	wg.Wait()
	close(done)
	cg.Wait() // join consumers before draining the remainder
	h, _ := q.Register()
	for {
		v, ok := q.Dequeue(h)
		if !ok {
			break
		}
		mu.Lock()
		counts[v]++
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != producers*per {
		t.Fatalf("distinct values %d, want %d", len(counts), producers*per)
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}
