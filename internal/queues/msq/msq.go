// Package msq implements the Michael & Scott lock-free FIFO queue
// (PODC '96), the classic list-based baseline of the paper's
// evaluation: correct and portable, but slow under contention because
// Head and Tail advance through CAS loops.
//
// Nodes are recycled through a hazard-pointer-guarded pool, mirroring
// the paper's harness (which runs MSQueue under hazard pointers), so
// the queue's footprint stays proportional to its content rather than
// to the operation count.
package msq

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/hazard"
	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

type node struct {
	val  uint64
	next atomic.Pointer[node]
}

const nodeBytes = 24

// Queue is an unbounded Michael & Scott queue for up to a fixed number
// of registered threads (the hazard domain is per-thread).
type Queue struct {
	_    pad.DoublePad
	head atomic.Pointer[node]
	_    pad.DoublePad
	tail atomic.Pointer[node]
	_    pad.DoublePad

	dom   *hazard.Domain
	pools []pool // per-thread free lists fed by hazard reclamation
	reg   registry
	mem   memtrack.Counter
}

type pool struct {
	_    pad.DoublePad
	free []*node
	_    pad.DoublePad
}

// registry hands out thread ids; shared by the baseline queues.
type registry struct {
	mu   chan struct{} // 1-buffered channel as a mutex (keeps struct copyable checks simple)
	free []int
}

func newRegistry(n int) registry {
	r := registry{mu: make(chan struct{}, 1), free: make([]int, 0, n)}
	for i := n - 1; i >= 0; i-- {
		r.free = append(r.free, i)
	}
	return r
}

func (r *registry) get() (int, error) {
	r.mu <- struct{}{}
	defer func() { <-r.mu }()
	if len(r.free) == 0 {
		return 0, fmt.Errorf("queue: all thread slots registered")
	}
	tid := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	return tid, nil
}

func (r *registry) put(tid int) {
	r.mu <- struct{}{}
	defer func() { <-r.mu }()
	r.free = append(r.free, tid)
}

// New creates a queue for up to numThreads registered threads.
func New(numThreads int) *Queue {
	q := &Queue{
		dom:   hazard.NewDomain(numThreads),
		pools: make([]pool, numThreads),
		reg:   newRegistry(numThreads),
	}
	dummy := &node{}
	q.mem.Alloc(nodeBytes)
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Register claims a thread id.
func (q *Queue) Register() (any, error) { return q.reg.get() }

// Unregister releases a thread id.
func (q *Queue) Unregister(h any) { q.reg.put(h.(int)) }

// Name identifies the algorithm.
func (q *Queue) Name() string { return "MSQueue" }

// Footprint returns live queue-owned bytes (nodes in the list plus
// pooled and retired nodes awaiting reuse).
func (q *Queue) Footprint() int64 { return q.mem.Live() }

func (q *Queue) allocNode(tid int, v uint64) *node {
	p := &q.pools[tid]
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free = p.free[:n-1]
		nd.val = v
		nd.next.Store(nil)
		return nd
	}
	q.mem.Alloc(nodeBytes)
	return &node{val: v}
}

func (q *Queue) retireNode(tid int, nd *node) {
	q.dom.Retire(tid, unsafe.Pointer(nd), func(p unsafe.Pointer) {
		// Reclaimed: return to the pool for reuse.
		q.pools[tid].free = append(q.pools[tid].free, (*node)(p))
	})
}

// protectTail publishes a stable snapshot of Tail in hazard slot i.
func (q *Queue) protectTail(tid, i int) *node {
	for {
		p := q.tail.Load()
		q.dom.Protect(tid, i, unsafe.Pointer(p))
		if q.tail.Load() == p {
			return p
		}
	}
}

// protectHead publishes a stable snapshot of Head in hazard slot i.
func (q *Queue) protectHead(tid, i int) *node {
	for {
		p := q.head.Load()
		q.dom.Protect(tid, i, unsafe.Pointer(p))
		if q.head.Load() == p {
			return p
		}
	}
}

// Enqueue appends v. Always succeeds (unbounded).
func (q *Queue) Enqueue(h any, v uint64) bool {
	tid := h.(int)
	nd := q.allocNode(tid, v)
	for {
		ltail := q.protectTail(tid, 0)
		next := ltail.next.Load()
		if ltail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(ltail, next) // help advance
			continue
		}
		if ltail.next.CompareAndSwap(nil, nd) {
			q.tail.CompareAndSwap(ltail, nd)
			q.dom.ClearSlot(tid, 0)
			return true
		}
	}
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(h any) (uint64, bool) {
	tid := h.(int)
	for {
		lhead := q.protectHead(tid, 0)
		ltail := q.tail.Load()
		next := lhead.next.Load()
		q.dom.Protect(tid, 1, unsafe.Pointer(next))
		if lhead != q.head.Load() {
			continue
		}
		if next == nil {
			q.dom.Clear(tid)
			return 0, false // empty
		}
		if lhead == ltail {
			q.tail.CompareAndSwap(ltail, next) // help advance
			continue
		}
		v := next.val
		if q.head.CompareAndSwap(lhead, next) {
			q.retireNode(tid, lhead)
			q.dom.Clear(tid)
			return v, true
		}
	}
}
