package msq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue yielded a value")
	}
}

func TestNodePoolingBoundsFootprint(t *testing.T) {
	q := New(1)
	h, _ := q.Register()
	defer q.Unregister(h)
	// Warm: cycle enough nodes that the hazard domain's scan threshold
	// triggers and the pool starts recycling.
	for i := 0; i < 1000; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
	warm := q.Footprint()
	for i := 0; i < 100_000; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
	// A pooled queue's footprint is bounded by peak occupancy plus the
	// hazard inventory, not by operation count.
	if q.Footprint() > warm*4 {
		t.Fatalf("footprint grew with op count: warm=%d now=%d", warm, q.Footprint())
	}
}

func TestRegistryExhaustion(t *testing.T) {
	q := New(1)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("over-registration accepted")
	}
	q.Unregister(h)
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSPSC(t *testing.T) {
	q := New(2)
	const n = 50_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h, _ := q.Register()
		defer q.Unregister(h)
		for i := uint64(0); i < n; i++ {
			q.Enqueue(h, i)
		}
	}()
	var got []uint64
	go func() {
		defer wg.Done()
		h, _ := q.Register()
		defer q.Unregister(h)
		for uint64(len(got)) < n {
			if v, ok := q.Dequeue(h); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("position %d: got %d", i, v)
		}
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "MSQueue" {
		t.Fatal("name")
	}
}
