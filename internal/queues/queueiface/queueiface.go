// Package queueiface defines the common interface the benchmark
// harness and cross-queue tests use to drive every queue in the
// repository uniformly.
package queueiface

import "context"

// Handle is an opaque per-thread token. Queues that need per-thread
// state (wCQ, YMC, CRTurn, CCQueue) return meaningful handles; the
// others return a shared no-op handle. It is an alias so that methods
// declared with `any` satisfy Queue directly.
type Handle = any

// Queue is the uniform MPMC queue interface. Values are uint64
// payloads, matching the paper's benchmark (which transfers pointers /
// small integers).
type Queue interface {
	// Register claims a per-thread handle. Each concurrent goroutine
	// must use its own handle.
	Register() (Handle, error)
	// Unregister releases a handle.
	Unregister(h Handle)
	// Enqueue inserts v. Bounded queues return false when full;
	// unbounded queues always return true.
	Enqueue(h Handle, v uint64) bool
	// Dequeue removes the oldest value, or returns ok=false if empty.
	Dequeue(h Handle) (v uint64, ok bool)
	// Footprint returns the live bytes of queue-owned memory
	// (memtrack.Footprinter).
	Footprint() int64
	// Name identifies the algorithm in benchmark output.
	Name() string
}

// BatchQueue is the optional batched extension: queues that can
// reserve ring positions for k operations with a single fetch-and-add
// implement it (wCQ, SCQ and the striped front-end). The benchmark
// harness type-asserts for it when a batched workload is requested.
type BatchQueue interface {
	Queue
	// EnqueueBatch inserts up to len(vs) values in order, returning
	// how many were inserted (fewer only when the queue fills).
	EnqueueBatch(h Handle, vs []uint64) int
	// DequeueBatch removes up to len(out) of the oldest values in
	// FIFO order, returning how many were dequeued.
	DequeueBatch(h Handle, out []uint64) int
}

// Resizable is the optional elastic extension (DESIGN.md §13): queues
// whose parallelism degree can be changed online implement it (the
// striped wCQ front-ends, whose lane directory grows and shrinks under
// a contention governor). The stress harness type-asserts for it to
// drive concurrent resizes, and the elastic benchmarks use it to pin
// or sweep the lane count.
type Resizable interface {
	Queue
	// Resize sets the parallelism degree (lane count) to n ≥ 1. The
	// transition is online: concurrent operations keep their ordering
	// guarantees and no value is lost or duplicated.
	Resize(n int) error
	// Lanes returns the current active lane count.
	Lanes() int
}

// BlockingQueue is the optional blocking extension (DESIGN.md §10):
// queues with parking waits and close/drain semantics implement it
// (the wCQ family). The blocking conformance suite and the wcqstress
// -block mode type-assert for it.
type BlockingQueue interface {
	Queue
	// Close closes the queue: subsequent enqueues fail and dequeuers
	// drain the remaining values before observing the closed error.
	Close()
	// EnqueueWait inserts v, blocking while the queue is full. It
	// returns nil on success, a closed error (errors.Is against
	// wcq.ErrClosed / core.ErrClosed) after Close, or ctx.Err().
	EnqueueWait(ctx context.Context, h Handle, v uint64) error
	// DequeueWait removes the oldest value, blocking while the queue
	// is empty. It returns the closed error once the queue is closed
	// and drained, or ctx.Err().
	DequeueWait(ctx context.Context, h Handle) (uint64, error)
}
