//go:build !race

// Allocation-regression tests (PR 5 satellite): the scalar and batched
// pairwise hot paths of every bounded-memory shape must be
// allocation-free in steady state, through explicit handles and the
// pooled implicit path alike. Guarded by !race because the race
// detector deliberately drops sync.Pool puts, making pooled handles
// and scratch buffers allocate on every call.
package registry

import (
	"strings"
	"testing"
)

// allocFreeNames are the registered shapes with an allocation-free
// steady-state claim: the wCQ family and SCQ. The node-based baselines
// (MSQueue, LCRQ, YMC, CRTurn, CCQueue) allocate per operation by
// design and are exactly the behavior the paper's bounded-memory
// argument is against, so they are out of scope here.
func allocFreeNames() []string {
	var names []string
	for _, n := range ConformingNames() {
		if strings.HasPrefix(n, "wCQ") || strings.HasPrefix(n, "SCQ") {
			names = append(names, n)
		}
	}
	return names
}

func TestScalarPairwiseAllocationFree(t *testing.T) {
	for _, name := range allocFreeNames() {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)
			// Warm pools (implicit handles, hazard publishes, record
			// chunks) outside the measured region.
			for i := uint64(0); i < 64; i++ {
				q.Enqueue(h, i)
				q.Dequeue(h)
			}
			avg := testing.AllocsPerRun(200, func() {
				if !q.Enqueue(h, 42) {
					t.Fatal("enqueue failed")
				}
				if _, ok := q.Dequeue(h); !ok {
					t.Fatal("dequeue failed")
				}
			})
			if avg != 0 {
				t.Fatalf("scalar pairwise allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

func TestBatchedPairwiseAllocationFree(t *testing.T) {
	for _, name := range batchNames {
		found := false
		for _, n := range allocFreeNames() {
			if n == name {
				found = true
			}
		}
		if !found {
			continue
		}
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			bq := q.(interface {
				EnqueueBatch(h any, vs []uint64) int
				DequeueBatch(h any, out []uint64) int
			})
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)
			vs := make([]uint64, 16)
			out := make([]uint64, 16)
			for i := range vs {
				vs[i] = uint64(i)
			}
			for i := 0; i < 8; i++ { // warm scratch buffers and pools
				bq.EnqueueBatch(h, vs)
				bq.DequeueBatch(h, out)
			}
			avg := testing.AllocsPerRun(200, func() {
				if bq.EnqueueBatch(h, vs) == 0 {
					t.Fatal("batch enqueue failed")
				}
				drained := 0
				for drained < len(vs) {
					m := bq.DequeueBatch(h, out[:len(vs)-drained])
					if m == 0 {
						t.Fatal("batch dequeue failed")
					}
					drained += m
				}
			})
			if avg != 0 {
				t.Fatalf("batched pairwise allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// TestImplicitHandleFreePathAllocationFree covers the handle-free call
// style explicitly: wCQ-Implicit routes through the pooled-handle
// machinery by construction, and wCQ-Direct-Eager drives the internal
// ring's handle-free entry points. (wCQ-Direct itself now registers
// real handles — its explicit path is covered above, and the public
// resident implicit path has its own assertion in the wcq package.)
func TestImplicitHandleFreePathAllocationFree(t *testing.T) {
	for _, name := range []string{"wCQ-Implicit", "wCQ-Direct-Eager"} {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			h, _ := q.Register() // inert token for these adapters
			for i := uint64(0); i < 64; i++ {
				q.Enqueue(h, i)
				q.Dequeue(h)
			}
			avg := testing.AllocsPerRun(200, func() {
				q.Enqueue(h, 7)
				q.Dequeue(h)
			})
			if avg != 0 {
				t.Fatalf("handle-free pairwise allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}
