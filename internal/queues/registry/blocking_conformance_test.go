package registry

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/core"
	"wcqueue/internal/queues/queueiface"
)

// blockingNames are the queues implementing queueiface.BlockingQueue,
// probed from the registry so a newly registered blocking queue is
// covered automatically.
var blockingNames = BlockingNames()

func buildBlocking(t *testing.T, name string, threads int) queueiface.BlockingQueue {
	t.Helper()
	q := build(t, name, threads)
	bq, ok := q.(queueiface.BlockingQueue)
	if !ok {
		t.Fatalf("%s does not implement BlockingQueue", name)
	}
	return bq
}

// TestBlockingNamesCoverWCQFamily pins the probe: every wCQ-family
// shape must expose the blocking API.
func TestBlockingNamesCoverWCQFamily(t *testing.T) {
	have := map[string]bool{}
	for _, n := range blockingNames {
		have[n] = true
	}
	for _, want := range []string{"wCQ", "wCQ-Implicit", "wCQ-Striped", "wCQ-Unbounded"} {
		if !have[want] {
			t.Fatalf("%s missing from BlockingNames() (have %v)", want, blockingNames)
		}
	}
}

// TestBlockingConformanceWakeup parks a consumer on every blocking
// queue and wakes it with a plain non-blocking enqueue from another
// handle — the wakeup obligation holds regardless of which API the
// producer uses. A lost wakeup surfaces as a context timeout.
func TestBlockingConformanceWakeup(t *testing.T) {
	for _, name := range blockingNames {
		t.Run(name, func(t *testing.T) {
			q := buildBlocking(t, name, 2)
			hc, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(hc)
			hp, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(hp)
			const rounds = 50
			got := make(chan uint64, 1)
			for i := uint64(0); i < rounds; i++ {
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					v, err := q.DequeueWait(ctx, hc)
					if err != nil {
						t.Errorf("DequeueWait: %v", err)
					}
					got <- v
				}()
				if i%2 == 0 {
					time.Sleep(500 * time.Microsecond) // consumer likely parked
				}
				if !q.Enqueue(hp, i) {
					t.Fatalf("enqueue %d failed", i)
				}
				select {
				case v := <-got:
					if v != i {
						t.Fatalf("round %d: got %d", i, v)
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("round %d: parked consumer stranded", i)
				}
			}
		})
	}
}

// TestBlockingConformanceCloseDrain is the close/drain ordering
// contract across every blocking shape: producers push through
// EnqueueWait until Close cuts them off; consumers drain through
// DequeueWait until the closed error. Every accepted value must be
// delivered exactly once, per-producer FIFO order must hold within
// each consumer stream, and each producer's delivered set must be the
// exact prefix it had accepted. Runs under -race in CI.
func TestBlockingConformanceCloseDrain(t *testing.T) {
	const producers, consumers = 3, 3
	for _, name := range blockingNames {
		t.Run(name, func(t *testing.T) {
			q := buildBlocking(t, name, producers+consumers)
			accepted := make([]uint64, producers)
			streams := make([][]uint64, consumers)
			var wg, pwg sync.WaitGroup

			for c := 0; c < consumers; c++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(c int, h queueiface.Handle) {
					defer wg.Done()
					defer q.Unregister(h)
					var local []uint64
					for {
						v, err := q.DequeueWait(context.Background(), h)
						if err != nil {
							if !errors.Is(err, core.ErrClosed) {
								t.Errorf("consumer %d: %v", c, err)
							}
							streams[c] = local
							return
						}
						local = append(local, v)
					}
				}(c, h)
			}
			for p := 0; p < producers; p++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				pwg.Add(1)
				go func(p int, h queueiface.Handle) {
					defer pwg.Done()
					defer q.Unregister(h)
					for s := uint64(0); ; s++ {
						err := q.EnqueueWait(context.Background(), h, check.Encode(p, s))
						if err != nil {
							if !errors.Is(err, core.ErrClosed) {
								t.Errorf("producer %d: %v", p, err)
							}
							return
						}
						atomic.AddUint64(&accepted[p], 1)
					}
				}(p, h)
			}

			time.Sleep(15 * time.Millisecond)
			q.Close()
			pwg.Wait()
			wg.Wait()

			// Exactly-once over exactly the accepted prefixes, with
			// per-producer order intact inside each stream.
			seen := make([]map[uint64]bool, producers)
			for p := range seen {
				seen[p] = make(map[uint64]bool)
			}
			for _, s := range streams {
				last := make([]int64, producers)
				for p := range last {
					last[p] = -1
				}
				for _, v := range s {
					p, seq := check.Decode(v)
					if p < 0 || p >= producers {
						t.Fatalf("corrupt value %#x", v)
					}
					if seen[p][seq] {
						t.Fatalf("value p%d/%d delivered twice", p, seq)
					}
					seen[p][seq] = true
					if int64(seq) <= last[p] {
						t.Fatalf("producer %d order violation: %d after %d", p, seq, last[p])
					}
					last[p] = int64(seq)
				}
			}
			for p := 0; p < producers; p++ {
				acc := atomic.LoadUint64(&accepted[p])
				if uint64(len(seen[p])) != acc {
					t.Fatalf("producer %d: accepted %d, delivered %d", p, acc, len(seen[p]))
				}
				for s := uint64(0); s < acc; s++ {
					if !seen[p][s] {
						t.Fatalf("producer %d: accepted value %d never delivered", p, s)
					}
				}
			}
		})
	}
}

// TestBlockingConformanceExpiredContext pins the no-phantom-delivery
// contract the admission layer accounts on (DESIGN.md §16): an
// EnqueueWait handed an already-cancelled or already-expired context
// must NOT publish the value — the caller was told "shed", so the
// value appearing downstream would be delivered and shed at once —
// and a DequeueWait handed one must NOT consume a value into its
// error return (which would lose it). Both polarity checks run for
// every blocking shape; the registry package runs under -race in CI.
func TestBlockingConformanceExpiredContext(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancelExp := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancelExp()
	deadCtxs := []struct {
		label string
		ctx   context.Context
		want  error
	}{
		{"cancelled", cancelled, context.Canceled},
		{"expired", expired, context.DeadlineExceeded},
	}
	for _, name := range blockingNames {
		t.Run(name, func(t *testing.T) {
			for _, dc := range deadCtxs {
				t.Run(dc.label, func(t *testing.T) {
					q := buildBlocking(t, name, 1)
					h, err := q.Register()
					if err != nil {
						t.Fatal(err)
					}
					defer q.Unregister(h)
					if err := q.EnqueueWait(dc.ctx, h, check.Encode(0, 99)); !errors.Is(err, dc.want) {
						t.Fatalf("EnqueueWait(%s ctx) = %v, want %v", dc.label, err, dc.want)
					}
					if v, ok := q.Dequeue(h); ok {
						t.Fatalf("phantom delivery: EnqueueWait(%s ctx) returned an error yet published %#x", dc.label, v)
					}
					if !q.Enqueue(h, check.Encode(0, 0)) {
						t.Fatal("setup enqueue failed")
					}
					if _, err := q.DequeueWait(dc.ctx, h); !errors.Is(err, dc.want) {
						t.Fatalf("DequeueWait(%s ctx) = %v, want %v", dc.label, err, dc.want)
					}
					v, ok := q.Dequeue(h)
					if !ok {
						t.Fatalf("value lost: DequeueWait(%s ctx) returned an error yet consumed the queued value", dc.label)
					}
					if v != check.Encode(0, 0) {
						t.Fatalf("queue corrupted: got %#x", v)
					}
				})
			}
		})
	}
}

// TestBlockingConformanceExpiredContextConcurrent is the racing
// variant: producers interleave live EnqueueWaits with pre-cancelled
// ones while consumers drain, and the exactly-once ledger must balance
// over ONLY the accepted (err == nil) set — a phantom delivery from a
// cancelled call shows up as an unaccepted value, a loss as a missing
// one.
func TestBlockingConformanceExpiredContextConcurrent(t *testing.T) {
	const producers, consumers, perProducer = 3, 2, 400
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range blockingNames {
		t.Run(name, func(t *testing.T) {
			q := buildBlocking(t, name, producers+consumers)
			accepted := make([]uint64, producers)
			streams := make([][]uint64, consumers)
			var wg, pwg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(c int, h queueiface.Handle) {
					defer wg.Done()
					defer q.Unregister(h)
					var local []uint64
					for {
						v, err := q.DequeueWait(context.Background(), h)
						if err != nil {
							streams[c] = local
							return
						}
						local = append(local, v)
					}
				}(c, h)
			}
			for p := 0; p < producers; p++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				pwg.Add(1)
				go func(p int, h queueiface.Handle) {
					defer pwg.Done()
					defer q.Unregister(h)
					for s := uint64(0); s < perProducer; s++ {
						ctx := context.Background()
						if s%3 == 2 {
							ctx = cancelled
						}
						if err := q.EnqueueWait(ctx, h, check.Encode(p, s)); err == nil {
							atomic.AddUint64(&accepted[p], 1)
						} else if ctx == cancelled && !errors.Is(err, context.Canceled) {
							t.Errorf("producer %d: cancelled EnqueueWait = %v", p, err)
						}
					}
				}(p, h)
			}
			pwg.Wait()
			q.Close()
			wg.Wait()

			seen := make([]map[uint64]bool, producers)
			for p := range seen {
				seen[p] = make(map[uint64]bool)
			}
			var delivered uint64
			for _, s := range streams {
				for _, v := range s {
					p, seq := check.Decode(v)
					if p < 0 || p >= producers {
						t.Fatalf("corrupt value %#x", v)
					}
					if seq%3 == 2 {
						t.Fatalf("phantom delivery: p%d/%d was enqueued under a cancelled ctx", p, seq)
					}
					if seen[p][seq] {
						t.Fatalf("value p%d/%d delivered twice", p, seq)
					}
					seen[p][seq] = true
					delivered++
				}
			}
			var acc uint64
			for p := 0; p < producers; p++ {
				acc += atomic.LoadUint64(&accepted[p])
			}
			if delivered != acc {
				t.Fatalf("accepted %d, delivered %d", acc, delivered)
			}
		})
	}
}

// TestBlockingConformanceEnqueueWaitAfterClose: EnqueueWait on a
// closed queue returns the closed error without blocking, on every
// shape.
func TestBlockingConformanceEnqueueWaitAfterClose(t *testing.T) {
	for _, name := range blockingNames {
		t.Run(name, func(t *testing.T) {
			q := buildBlocking(t, name, 1)
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)
			q.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := q.EnqueueWait(ctx, h, 1); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("EnqueueWait after Close = %v, want ErrClosed", err)
			}
			if _, err := q.DequeueWait(ctx, h); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("DequeueWait on closed empty queue = %v, want ErrClosed", err)
			}
		})
	}
}
