//go:build wcq_failpoints

package registry

// Close/drain robustness under an adversarial stall: an enqueuer is
// frozen inside its ActiveFlag bracket — index reserved, close-state
// re-check not yet run — while another thread calls Close. The
// close/drain contract (DESIGN.md §10) says Close must wait for the
// frozen enqueuer (its value is neither lost nor half-enqueued), and
// once everything settles every accepted value is delivered exactly
// once before any dequeuer observes the closed error. Runs against
// every shape in BlockingNames, so a newly registered blocking queue
// is covered automatically.

import (
	"context"
	"sync"
	"testing"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/queues/queueiface"
)

func TestCloseStallsBehindInFlightEnqueuer(t *testing.T) {
	for _, name := range BlockingNames() {
		t.Run(name, func(t *testing.T) { runCloseStall(t, name) })
	}
}

func runCloseStall(t *testing.T, shapeName string) {
	failpoint.Reset()
	defer failpoint.Reset()

	const producers, consumers = 2, 2
	q, err := New(shapeName, Config{
		Threads:     producers + consumers + 1,
		RingOrder:   5,
		EnqPatience: 1,
		DeqPatience: 1,
		HelpDelay:   1,
	})
	if err != nil {
		t.Fatalf("build %s: %v", shapeName, err)
	}
	bq, ok := q.(queueiface.BlockingQueue)
	if !ok {
		t.Fatalf("%s does not implement BlockingQueue", shapeName)
	}

	// The bounded shapes pass through core's active window, the
	// unbounded ones through their own; arm both, freeze one thread.
	stallSites := []failpoint.Site{failpoint.CoreEnqActiveWindow, failpoint.UnboundedEnqActiveWindow}
	for _, s := range stallSites {
		failpoint.Arm(s, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})
	}

	ctx := context.Background()
	accepted := make([]uint64, producers)
	consumed := make([][]uint64, consumers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Errorf("producer %d register: %v", id, err)
				return
			}
			defer q.Unregister(h)
			var seq uint64
			for {
				if bq.EnqueueWait(ctx, h, check.Encode(id, seq)) != nil {
					break // closed
				}
				seq++
			}
			accepted[id] = seq
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Errorf("consumer %d register: %v", id, err)
				return
			}
			defer q.Unregister(h)
			for {
				v, err := bq.DequeueWait(ctx, h)
				if err != nil {
					return // closed and drained
				}
				consumed[id] = append(consumed[id], v)
			}
		}(c)
	}

	// Wait for a producer to freeze inside the active window.
	parked := func() int {
		n := 0
		for _, s := range stallSites {
			n += failpoint.Parked(s)
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for parked() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if parked() == 0 {
		for _, s := range stallSites {
			failpoint.Release(s)
		}
		bq.Close()
		wg.Wait()
		t.Fatalf("%s: no enqueuer parked in an active window", shapeName)
	}

	// Close with the enqueuer frozen: quiescence must wait for it.
	closeDone := make(chan struct{})
	go func() {
		bq.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatalf("%s: Close completed while an enqueuer was frozen inside its active window — quiescence is broken", shapeName)
	case <-time.After(300 * time.Millisecond):
	}

	for _, s := range stallSites {
		failpoint.Release(s)
	}
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: Close did not complete after the stalled enqueuer was released", shapeName)
	}
	wg.Wait()

	// Exactly-once drain: every accepted value delivered once; the
	// frozen enqueuer's value either counted (accepted, so delivered)
	// or refused (not accepted, so absent) — never half-enqueued.
	seen := make(map[uint64]bool)
	for id := range consumed {
		for _, v := range consumed[id] {
			if seen[v] {
				p, s := check.Decode(v)
				t.Fatalf("%s: producer %d seq %d delivered twice across Close", shapeName, p, s)
			}
			seen[v] = true
		}
	}
	var total uint64
	for id := range accepted {
		total += accepted[id]
		for s := uint64(0); s < accepted[id]; s++ {
			if !seen[check.Encode(id, s)] {
				t.Fatalf("%s: producer %d seq %d accepted before Close but never delivered", shapeName, id, s)
			}
		}
	}
	if uint64(len(seen)) != total {
		t.Fatalf("%s: %d values delivered but only %d accepted — a refused enqueue leaked into the queue", shapeName, len(seen), total)
	}
}
