package registry

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
	"wcqueue/internal/queues/queueiface"
)

// conformanceNames are the real queues; FAA is excluded from semantic
// tests (it is, by design, not a correct queue).
var conformanceNames = []string{"wCQ", "SCQ", "LCRQ", "MSQueue", "YMC", "CRTurn", "CCQueue"}

func build(t *testing.T, name string, threads int) queueiface.Queue {
	t.Helper()
	q, err := New(name, Config{Threads: threads, RingOrder: 12})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConformanceSequentialFIFO(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)
			const n = 1000
			for i := uint64(0); i < n; i++ {
				if !q.Enqueue(h, i) {
					t.Fatalf("enqueue %d failed", i)
				}
			}
			for i := uint64(0); i < n; i++ {
				v, ok := q.Dequeue(h)
				if !ok || v != i {
					t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
				}
			}
			if v, ok := q.Dequeue(h); ok {
				t.Fatalf("empty queue yielded %d", v)
			}
		})
	}
}

func TestConformanceEmptyFresh(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 1)
			h, _ := q.Register()
			defer q.Unregister(h)
			for i := 0; i < 100; i++ {
				if v, ok := q.Dequeue(h); ok {
					t.Fatalf("fresh queue yielded %d", v)
				}
			}
		})
	}
}

func TestConformanceInterleaved(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 1)
			h, _ := q.Register()
			defer q.Unregister(h)
			next, out := uint64(0), uint64(0)
			for i := 0; i < 3000; i++ {
				for j := 0; j < (i%5)+1; j++ {
					if q.Enqueue(h, next) {
						next++
					}
				}
				for j := 0; j < (i%3)+1 && out < next; j++ {
					v, ok := q.Dequeue(h)
					if !ok {
						t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
					}
					if v != out {
						t.Fatalf("iter %d: got %d want %d", i, v, out)
					}
					out++
				}
			}
		})
	}
}

// runConformanceMPMC is the shared concurrent checker run.
func runConformanceMPMC(t *testing.T, q queueiface.Queue, producers, consumers int, perProducer uint64) {
	t.Helper()
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * perProducer
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			for s := uint64(0); s < perProducer; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, perProducer).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestConformanceMPMC(t *testing.T) {
	per := uint64(10000)
	if testing.Short() {
		per = 1000
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 4, 4, per)
		})
	}
}

func TestConformanceMPMCManyThreads(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skip("needs 2+ procs")
	}
	per := uint64(3000)
	if testing.Short() {
		per = 300
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2*n)
			runConformanceMPMC(t, q, n, n, per)
		})
	}
}

func TestConformanceUnbalancedProducers(t *testing.T) {
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 6, 2, per)
		})
	}
}

func TestConformanceUnbalancedConsumers(t *testing.T) {
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 2, 6, per)
		})
	}
}

func TestConformanceLLSCVariants(t *testing.T) {
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	for _, name := range []string{"wCQ", "SCQ"} {
		t.Run(name+"-LLSC", func(t *testing.T) {
			q, err := New(name, Config{Threads: 8, RingOrder: 12, EmulatedFAA: true})
			if err != nil {
				t.Fatal(err)
			}
			runConformanceMPMC(t, q, 4, 4, per)
		})
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := New("nope", Config{Threads: 1}); err == nil {
		t.Fatal("unknown queue accepted")
	}
}

func TestRegistryNamesComplete(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range PaperOrder {
		if !have[n] {
			t.Fatalf("paper legend queue %q missing from registry", n)
		}
	}
}

func TestFootprintReported(t *testing.T) {
	for _, name := range append([]string{"FAA"}, conformanceNames...) {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			if q.Footprint() <= 0 {
				t.Fatalf("%s reports footprint %d", name, q.Footprint())
			}
		})
	}
}
