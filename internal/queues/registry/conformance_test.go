package registry

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
	"wcqueue/internal/queues/queueiface"
)

// conformanceNames are the real queues, taken from the registry so a
// newly registered queue is covered automatically; FAA is excluded (it
// is, by design, not a correct queue). wCQ-Striped is included: it is
// FIFO per handle, which is exactly what every check here observes
// (sequential tests use one handle; the MPMC checker verifies
// per-producer order, and each producer is one handle). wCQ-Unbounded
// is included since PR 2 and additionally exercises ring recycling
// whenever traffic spans multiple rings.
var conformanceNames = ConformingNames()

// batchNames are the queues implementing queueiface.BatchQueue,
// probed from the registry.
var batchNames = BatchNames()

func build(t *testing.T, name string, threads int) queueiface.Queue {
	t.Helper()
	q, err := New(name, Config{Threads: threads, RingOrder: 12})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConformanceSequentialFIFO(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)
			const n = 1000
			for i := uint64(0); i < n; i++ {
				if !q.Enqueue(h, i) {
					t.Fatalf("enqueue %d failed", i)
				}
			}
			for i := uint64(0); i < n; i++ {
				v, ok := q.Dequeue(h)
				if !ok || v != i {
					t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
				}
			}
			if v, ok := q.Dequeue(h); ok {
				t.Fatalf("empty queue yielded %d", v)
			}
		})
	}
}

func TestConformanceEmptyFresh(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 1)
			h, _ := q.Register()
			defer q.Unregister(h)
			for i := 0; i < 100; i++ {
				if v, ok := q.Dequeue(h); ok {
					t.Fatalf("fresh queue yielded %d", v)
				}
			}
		})
	}
}

func TestConformanceInterleaved(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 1)
			h, _ := q.Register()
			defer q.Unregister(h)
			next, out := uint64(0), uint64(0)
			for i := 0; i < 3000; i++ {
				for j := 0; j < (i%5)+1; j++ {
					if q.Enqueue(h, next) {
						next++
					}
				}
				for j := 0; j < (i%3)+1 && out < next; j++ {
					v, ok := q.Dequeue(h)
					if !ok {
						t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
					}
					if v != out {
						t.Fatalf("iter %d: got %d want %d", i, v, out)
					}
					out++
				}
			}
		})
	}
}

// runConformanceMPMC is the shared concurrent checker run.
func runConformanceMPMC(t *testing.T, q queueiface.Queue, producers, consumers int, perProducer uint64) {
	t.Helper()
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * perProducer
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h queueiface.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h queueiface.Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			for s := uint64(0); s < perProducer; s++ {
				for !q.Enqueue(h, check.Encode(p, s)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, perProducer).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestConformanceMPMC(t *testing.T) {
	per := uint64(10000)
	if testing.Short() {
		per = 1000
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 4, 4, per)
		})
	}
}

func TestConformanceMPMCManyThreads(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skip("needs 2+ procs")
	}
	per := uint64(3000)
	if testing.Short() {
		per = 300
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2*n)
			runConformanceMPMC(t, q, n, n, per)
		})
	}
}

func TestConformanceUnbalancedProducers(t *testing.T) {
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 6, 2, per)
		})
	}
}

func TestConformanceUnbalancedConsumers(t *testing.T) {
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 8)
			runConformanceMPMC(t, q, 2, 6, per)
		})
	}
}

func TestConformanceLLSCVariants(t *testing.T) {
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	for _, name := range []string{"wCQ", "SCQ"} {
		t.Run(name+"-LLSC", func(t *testing.T) {
			q, err := New(name, Config{Threads: 8, RingOrder: 12, EmulatedFAA: true})
			if err != nil {
				t.Fatal(err)
			}
			runConformanceMPMC(t, q, 4, 4, per)
		})
	}
}

// TestBatchScalarFIFOEquivalence drives the batched and scalar paths
// against each other single-threaded: whatever mix of batch sizes is
// used, the dequeue sequence must be exactly the enqueue sequence.
func TestBatchScalarFIFOEquivalence(t *testing.T) {
	for _, name := range batchNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			bq, ok := q.(queueiface.BatchQueue)
			if !ok {
				t.Fatalf("%s does not implement BatchQueue", name)
			}
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Unregister(h)

			// Batched enqueue in ragged chunks, scalar dequeue.
			const n = 2000
			sizes := []int{1, 7, 64, 3, 128, 31}
			vals := make([]uint64, 0, n)
			for i := uint64(0); i < n; i++ {
				vals = append(vals, i)
			}
			for i, s := 0, 0; i < n; s++ {
				k := sizes[s%len(sizes)]
				if i+k > n {
					k = n - i
				}
				if got := bq.EnqueueBatch(h, vals[i:i+k]); got != k {
					t.Fatalf("EnqueueBatch(%d) = %d", k, got)
				}
				i += k
			}
			for i := uint64(0); i < n; i++ {
				v, ok := q.Dequeue(h)
				if !ok || v != i {
					t.Fatalf("scalar dequeue %d after batch enqueue: got (%d,%v)", i, v, ok)
				}
			}

			// Scalar enqueue, batched dequeue in ragged chunks.
			for i := uint64(0); i < n; i++ {
				if !q.Enqueue(h, i) {
					t.Fatalf("enqueue %d failed", i)
				}
			}
			out := make([]uint64, 256)
			next := uint64(0)
			for s := 0; next < n; s++ {
				k := sizes[s%len(sizes)]
				m := bq.DequeueBatch(h, out[:k])
				if m == 0 {
					t.Fatalf("DequeueBatch(%d) empty with %d remaining", k, n-next)
				}
				for _, v := range out[:m] {
					if v != next {
						t.Fatalf("batch dequeue: got %d want %d", v, next)
					}
					next++
				}
			}
			if m := bq.DequeueBatch(h, out); m != 0 {
				t.Fatalf("drained queue yielded %d more", m)
			}
		})
	}
}

// TestBatchConformanceMPMC runs the concurrent checker with batched
// producers and consumers: per-producer FIFO order must survive the
// batched paths' straggler fallbacks.
func TestBatchConformanceMPMC(t *testing.T) {
	per := uint64(10000)
	if testing.Short() {
		per = 1000
	}
	const producers, consumers, batch = 4, 4, 16
	for _, name := range batchNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, producers+consumers)
			bq := q.(queueiface.BatchQueue)
			var wg sync.WaitGroup
			streams := make([][]uint64, consumers)
			total := uint64(producers) * per
			var consumed sync.WaitGroup
			consumed.Add(int(total))

			for c := 0; c < consumers; c++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(c int, h queueiface.Handle) {
					defer wg.Done()
					defer q.Unregister(h)
					budget := total / uint64(consumers)
					if c == 0 {
						budget += total % uint64(consumers)
					}
					local := make([]uint64, 0, budget)
					buf := make([]uint64, batch)
					for uint64(len(local)) < budget {
						k := budget - uint64(len(local))
						if k > batch {
							k = batch
						}
						m := bq.DequeueBatch(h, buf[:k])
						if m == 0 {
							runtime.Gosched()
							continue
						}
						local = append(local, buf[:m]...)
						for i := 0; i < m; i++ {
							consumed.Done()
						}
					}
					streams[c] = local
				}(c, h)
			}
			for p := 0; p < producers; p++ {
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(p int, h queueiface.Handle) {
					defer wg.Done()
					defer q.Unregister(h)
					buf := make([]uint64, batch)
					for s := uint64(0); s < per; {
						k := per - s
						if k > batch {
							k = batch
						}
						for i := uint64(0); i < k; i++ {
							buf[i] = check.Encode(p, s+i)
						}
						sent := uint64(0)
						for sent < k {
							n := bq.EnqueueBatch(h, buf[sent:k])
							sent += uint64(n)
							if n == 0 {
								runtime.Gosched()
							}
						}
						s += k
					}
				}(p, h)
			}
			wg.Wait()
			consumed.Wait()
			if err := check.Verify(streams, producers, per).Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// handleAccountant is the optional surface wCQ-family adapters expose
// for the registration-storm flatness assertion.
type handleAccountant interface {
	HandleHighWater() int
}

// TestRegistrationStorm spawns and retires thousands of goroutine
// registrations (register → op → unregister) against every conforming
// queue. Dynamic registration must never fail below the handle cap,
// and for the wCQ family slot recycling must keep the record-arena
// high-water mark at peak concurrency — not the cumulative
// registration count. Runs under -race in CI.
func TestRegistrationStorm(t *testing.T) {
	const workers = 8
	iters := 250
	if testing.Short() {
		iters = 40
	}
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, workers)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						h, err := q.Register()
						if err != nil {
							errs <- err
							return
						}
						v := check.Encode(w, uint64(i))
						for !q.Enqueue(h, v) {
							runtime.Gosched()
						}
						for {
							if _, ok := q.Dequeue(h); ok {
								break
							}
							runtime.Gosched()
						}
						q.Unregister(h)
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("registration during storm failed: %v", err)
			}
			if ha, ok := q.(handleAccountant); ok {
				// Explicit registration: at most `workers` handles are
				// live at any instant, so LIFO slot recycling bounds
				// the high-water mark by exactly that.
				if hw := ha.HandleHighWater(); hw > workers {
					t.Fatalf("storm grew the arena high-water to %d, want <= %d (%d registrations total)",
						hw, workers, workers*iters)
				}
			}
		})
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := New("nope", Config{Threads: 1}); err == nil {
		t.Fatal("unknown queue accepted")
	}
}

func TestRegistryNamesComplete(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range PaperOrder {
		if !have[n] {
			t.Fatalf("paper legend queue %q missing from registry", n)
		}
	}
}

func TestFootprintReported(t *testing.T) {
	for _, name := range append([]string{"FAA"}, conformanceNames...) {
		t.Run(name, func(t *testing.T) {
			q := build(t, name, 2)
			if q.Footprint() <= 0 {
				t.Fatalf("%s reports footprint %d", name, q.Footprint())
			}
		})
	}
}
