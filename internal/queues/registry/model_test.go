package registry

import (
	"testing"
	"testing/quick"
)

// opSeq is a random operation sequence for model-based testing:
// each byte's low bit selects enqueue/dequeue.
type opSeq []byte

// TestModelBasedSequential drives every queue against a reference
// slice model with testing/quick-generated operation sequences. Any
// divergence in values or emptiness is a correctness bug.
func TestModelBasedSequential(t *testing.T) {
	for _, name := range conformanceNames {
		t.Run(name, func(t *testing.T) {
			f := func(ops opSeq) bool {
				q := build(t, name, 1)
				h, err := q.Register()
				if err != nil {
					t.Fatal(err)
				}
				defer q.Unregister(h)
				capacity := 1 << 30 // unbounded queues
				if c, ok := q.(capHinter); ok {
					capacity = c.capHint()
				}
				var model []uint64
				next := uint64(1)
				for _, op := range ops {
					if op&1 == 0 {
						if q.Enqueue(h, next) {
							model = append(model, next)
						} else if len(model) < capacity {
							t.Logf("enqueue rejected below capacity (model=%d)", len(model))
							return false
						}
						next++
					} else {
						v, ok := q.Dequeue(h)
						if !ok {
							if len(model) != 0 {
								t.Logf("queue empty but model holds %d", len(model))
								return false
							}
							continue
						}
						if len(model) == 0 {
							t.Logf("queue yielded %d but model empty", v)
							return false
						}
						if v != model[0] {
							t.Logf("queue yielded %d, model expects %d", v, model[0])
							return false
						}
						model = model[1:]
					}
				}
				// Drain and compare the remainder.
				for _, want := range model {
					v, ok := q.Dequeue(h)
					if !ok || v != want {
						t.Logf("drain: got (%d,%v), want (%d,true)", v, ok, want)
						return false
					}
				}
				_, ok := q.Dequeue(h)
				return !ok
			}
			cfg := &quick.Config{MaxCount: 50}
			if testing.Short() {
				cfg.MaxCount = 10
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// capHint lets the model tolerate bounded queues rejecting enqueues at
// capacity. queueiface has no capacity query; the conformance builds
// use ring order 12 (4096), far above what quick generates, so any
// rejection is a failure in practice.
type capHinter interface{ capHint() int }

// All registry queues are unbounded or have capacity 4096 in these
// builds; expose a uniform hint via an adapter-free helper.
func (a *wcqAdapter) capHint() int      { return a.q.Cap() }
func (a *scqAdapter) capHint() int      { return a.q.Cap() }
func (a *implicitAdapter) capHint() int { return a.q.Cap() }

// Striped: with a single handle every enqueue targets one lane, so the
// sequential model tests see the per-lane capacity.
func (a *stripedAdapter) capHint() int { return a.q.Cap() / a.q.Stripes() }

// The direct ring's capacity is exact sequentially (the model runs
// single-threaded), so the plain Cap is the right hint.
func (a *directAdapter) capHint() int { return int(a.r.N()) }
