// Package registry constructs every queue in the repository behind the
// uniform queueiface.Queue interface, keyed by the names used in the
// paper's figures. The benchmark harness, the conformance tests and
// cmd/wcqbench all build queues through this package.
package registry

import (
	"context"
	"fmt"
	"sort"

	"wcqueue/internal/core"
	"wcqueue/internal/queues/ccq"
	"wcqueue/internal/queues/crturn"
	"wcqueue/internal/queues/faa"
	"wcqueue/internal/queues/lcrq"
	"wcqueue/internal/queues/msq"
	"wcqueue/internal/queues/queueiface"
	"wcqueue/internal/queues/ymc"
	"wcqueue/internal/scq"
	"wcqueue/wcq"
)

// Config parameterizes queue construction.
type Config struct {
	// Threads is the maximum number of concurrently registered
	// goroutines for the baseline queues that still need a census
	// (CCQueue/CRTurn/MSQueue). The wCQ family registers dynamically
	// and ignores it (DESIGN.md §9).
	Threads int
	// RingOrder sets wCQ/SCQ capacity to 2^RingOrder (the paper's
	// memory test uses 2^16). Zero selects 16.
	RingOrder uint
	// EmulatedFAA builds the wCQ/SCQ LL/SC variants (Fig. 12).
	EmulatedFAA bool
	// Stripes sets the initial lane count of the striped builds. Zero
	// selects 4. The elastic builds then float within the directory's
	// lane bounds unless FixedLanes is set.
	Stripes int
	// FixedLanes disables the striped builds' resize governor, pinning
	// the lane count at Stripes (wcq.WithFixedLanes).
	FixedLanes bool
	// PoolSize sets the wCQ-Unbounded ring-pool capacity. Zero selects
	// the package default.
	PoolSize int
	// EnqPatience/DeqPatience/HelpDelay override the wCQ-family tuning
	// constants when positive (zero keeps the paper defaults). The
	// stall-robustness harness sets them to 1 so the slow-path and
	// helping windows trip under ordinary contention.
	EnqPatience int
	DeqPatience int
	HelpDelay   int
}

func (c Config) stripes() int {
	if c.Stripes == 0 {
		return 4
	}
	return c.Stripes
}

func (c Config) ringOrder() uint {
	if c.RingOrder == 0 {
		return 16
	}
	return c.RingOrder
}

// Names lists every registered queue in the order the paper's legends
// use.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nonSemantic marks registered queues that intentionally violate FIFO
// semantics and therefore must not run under correctness checkers
// (FAA is the paper's throughput ceiling, not a correct queue).
var nonSemantic = map[string]bool{"FAA": true}

// deferredVisibility marks registered queues whose enqueues become
// visible to OTHER handles only at a flush boundary (the wcq
// coalescing window, DESIGN.md §14). They are linearizable — the
// enqueue linearizes at the flush or elimination, per-handle FIFO
// holds throughout — but the cross-handle harnesses assume a value is
// peer-visible the moment Enqueue returns, so a producer exiting with
// a non-empty window would starve them. Their semantics are covered by
// the wcq package's deterministic tests instead; here they are
// benchmark-only.
var deferredVisibility = map[string]bool{"wCQ-Direct-Coalesce": true}

// ConformingNames lists every registered queue with full FIFO
// semantics — the set the conformance, model and stress suites drive.
// Derived from the builder table so a newly registered queue is
// covered automatically.
func ConformingNames() []string {
	var names []string
	for _, n := range Names() {
		if !nonSemantic[n] && !deferredVisibility[n] {
			names = append(names, n)
		}
	}
	return names
}

// namesImplementing probes the builder table with a tiny build per
// conforming name and keeps the names whose queues satisfy the given
// optional-interface check — so a newly registered queue picks up the
// corresponding conformance suites and benchmarks automatically.
func namesImplementing(implements func(queueiface.Queue) bool) []string {
	var names []string
	for _, n := range ConformingNames() {
		q, err := New(n, Config{Threads: 1, RingOrder: 4})
		if err != nil {
			continue
		}
		if implements(q) {
			names = append(names, n)
		}
	}
	return names
}

// BatchNames lists every conforming queue whose build implements
// queueiface.BatchQueue.
func BatchNames() []string {
	return namesImplementing(func(q queueiface.Queue) bool {
		_, ok := q.(queueiface.BatchQueue)
		return ok
	})
}

// BlockingNames lists every conforming queue whose build implements
// queueiface.BlockingQueue — the set the blocking conformance suite
// and wcqstress -block drive.
func BlockingNames() []string {
	return namesImplementing(func(q queueiface.Queue) bool {
		_, ok := q.(queueiface.BlockingQueue)
		return ok
	})
}

// PaperOrder is the legend order of the paper's figures.
var PaperOrder = []string{"FAA", "wCQ", "YMC", "CCQueue", "SCQ", "CRTurn", "MSQueue", "LCRQ"}

// New builds the named queue.
func New(name string, cfg Config) (queueiface.Queue, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown queue %q (have %v)", name, Names())
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	return b(cfg)
}

var builders = map[string]func(Config) (queueiface.Queue, error){
	"wCQ": func(c Config) (queueiface.Queue, error) {
		q, err := core.NewQueue[uint64](c.ringOrder(), core.Options{
			EmulatedFAA: c.EmulatedFAA,
			EnqPatience: c.EnqPatience,
			DeqPatience: c.DeqPatience,
			HelpDelay:   c.HelpDelay,
		})
		if err != nil {
			return nil, err
		}
		return &wcqAdapter{q: q, llsc: c.EmulatedFAA}, nil
	},
	// wCQ-Implicit drives the same wCQ through the public handle-free
	// API: every operation borrows a pooled implicit handle. Having it
	// in the builder table puts the pooled-handle machinery under the
	// full conformance, model and stress suites automatically.
	"wCQ-Implicit": func(c Config) (queueiface.Queue, error) {
		var opts []wcq.Option
		if c.EmulatedFAA {
			opts = append(opts, wcq.WithEmulatedFAA())
		}
		q, err := wcq.New[uint64](c.ringOrder(), opts...)
		if err != nil {
			return nil, err
		}
		return &implicitAdapter{q: q}, nil
	},
	"SCQ": func(c Config) (queueiface.Queue, error) {
		var opts []scq.Option
		if c.EmulatedFAA {
			opts = append(opts, scq.WithEmulatedFAA())
		}
		q, err := scq.New[uint64](c.ringOrder(), opts...)
		if err != nil {
			return nil, err
		}
		return &scqAdapter{q: q, llsc: c.EmulatedFAA}, nil
	},
	"wCQ-Striped": func(c Config) (queueiface.Queue, error) {
		q, err := wcq.NewStriped[uint64](c.ringOrder(), c.stripes(), stripedOpts(c)...)
		if err != nil {
			return nil, err
		}
		return &stripedAdapter{q: q, fixed: c.FixedLanes}, nil
	},
	// wCQ-Striped-Fixed pins the lane directory at the configured
	// stripe count (governor off) — the pre-elastic behavior, kept
	// under the full suites and as the baseline the elastic benchmark
	// gate compares against.
	"wCQ-Striped-Fixed": func(c Config) (queueiface.Queue, error) {
		c.FixedLanes = true
		q, err := wcq.NewStriped[uint64](c.ringOrder(), c.stripes(), stripedOpts(c)...)
		if err != nil {
			return nil, err
		}
		return &stripedAdapter{q: q, fixed: true}, nil
	},
	// wCQ-Direct-Striped rides the same elastic lane directory with
	// direct-value lanes (DESIGN.md §11, §13).
	"wCQ-Direct-Striped": func(c Config) (queueiface.Queue, error) {
		q, err := wcq.NewDirectStripedOf[uint64](c.ringOrder(), c.stripes(), wcq.UintCodec(directValueBits), directOpts(c)...)
		if err != nil {
			return nil, err
		}
		return &directStripedAdapter{q: q}, nil
	},
	"wCQ-Unbounded": func(c Config) (queueiface.Queue, error) {
		opts := stripedOpts(c)
		if c.PoolSize > 0 {
			opts = append(opts, wcq.WithRingPool(c.PoolSize))
		}
		q, err := wcq.NewUnbounded[uint64](c.ringOrder(), opts...)
		if err != nil {
			return nil, err
		}
		return &unboundedAdapter{q: q}, nil
	},
	// wCQ-Direct is the direct-value single ring (DESIGN.md §11): the
	// payload lives in the entry word, so a transfer costs two ring
	// operations instead of the indirect shapes' four. Register hands
	// out real core.DirectHandle tokens, so every suite and benchmark
	// drives the handle-local window/amortization diet of DESIGN.md §14
	// — the path the FAA-gap headline measures. Built on the internal
	// ring so this arm and wCQ-Direct-Eager differ by the diet ALONE:
	// through the public wcq.Direct layer the comparison would be
	// confounded by its codec dispatch, which the eager arm never pays.
	// (The public layer's own semantics are covered by the wcq package
	// tests.)
	"wCQ-Direct": func(c Config) (queueiface.Queue, error) {
		r, err := core.NewDirectRing(c.ringOrder(), directValueBits, core.Options{
			EmulatedFAA: c.EmulatedFAA,
		})
		if err != nil {
			return nil, err
		}
		return &directAdapter{r: r}, nil
	},
	// wCQ-Direct-Coalesce is the full PR 8 package: real
	// wcq.DirectHandle tokens with the opt-in coalescing window on top
	// of the handle diet. Back-to-back scalar enqueues merge into one
	// ring reservation, dequeues prefetch a window per reservation, and
	// a same-handle produce-consume pair on an observed-empty ring
	// eliminates without ring traffic — the arm that closes the FAA
	// gap. Deferred visibility keeps it out of ConformingNames (see
	// deferredVisibility above).
	"wCQ-Direct-Coalesce": func(c Config) (queueiface.Queue, error) {
		q, err := wcq.NewDirectOf[uint64](c.ringOrder(), wcq.UintCodec(directValueBits),
			append(directOpts(c), wcq.WithCoalescing(16))...)
		if err != nil {
			return nil, err
		}
		return &directCoalesceAdapter{q: q}, nil
	},
	// wCQ-Direct-Eager is the PR 8 A/B ablation arm: the same direct
	// ring driven through the handle-free eager entry points — every op
	// pays the shared-cacheline Head/Tail pre-checks and the per-op
	// threshold decrement. Benchmarked against wCQ-Direct it isolates
	// what the handle-local diet (cached windows + amortized threshold
	// writes) is worth; built on the internal ring because the public
	// implicit path now rides resident handles and would get the diet
	// too.
	"wCQ-Direct-Eager": func(c Config) (queueiface.Queue, error) {
		r, err := core.NewDirectRing(c.ringOrder(), directValueBits, core.Options{
			EmulatedFAA: c.EmulatedFAA,
		})
		if err != nil {
			return nil, err
		}
		return &directEagerAdapter{r: r}, nil
	},
	// wCQ-Direct-Unbounded links direct rings through the recycled
	// hazard-pointer ring pool (same design as wCQ-Unbounded, one
	// word-array per pooled ring instead of three arrays).
	"wCQ-Direct-Unbounded": func(c Config) (queueiface.Queue, error) {
		opts := directOpts(c)
		if c.PoolSize > 0 {
			opts = append(opts, wcq.WithRingPool(c.PoolSize))
		}
		q, err := wcq.NewDirectUnboundedOf[uint64](c.ringOrder(), wcq.UintCodec(directValueBits), opts...)
		if err != nil {
			return nil, err
		}
		return &directUnboundedAdapter{q: q}, nil
	},
	"LCRQ":    func(c Config) (queueiface.Queue, error) { return lcrq.New(), nil },
	"MSQueue": func(c Config) (queueiface.Queue, error) { return msq.New(c.Threads), nil },
	"YMC":     func(c Config) (queueiface.Queue, error) { return ymc.New(), nil },
	"CRTurn":  func(c Config) (queueiface.Queue, error) { return crturn.New(c.Threads), nil },
	"CCQueue": func(c Config) (queueiface.Queue, error) { return ccq.New(c.Threads), nil },
	"FAA":     func(c Config) (queueiface.Queue, error) { return faa.New(), nil },
}

// wcqAdapter exposes core.Queue through queueiface.
type wcqAdapter struct {
	q    *core.Queue[uint64]
	llsc bool
}

func (a *wcqAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *wcqAdapter) Unregister(h queueiface.Handle)       { a.q.Unregister(h.(*core.Handle)) }
func (a *wcqAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return a.q.Enqueue(h.(*core.Handle), v)
}
func (a *wcqAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return a.q.Dequeue(h.(*core.Handle))
}
func (a *wcqAdapter) Footprint() int64 { return a.q.Footprint() }
func (a *wcqAdapter) Name() string {
	if a.llsc {
		return "wCQ-LLSC"
	}
	return "wCQ"
}

// EnqueueBatch and DequeueBatch implement queueiface.BatchQueue.
func (a *wcqAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return a.q.EnqueueBatch(h.(*core.Handle), vs)
}

// DequeueBatch implements queueiface.BatchQueue.
func (a *wcqAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return a.q.DequeueBatch(h.(*core.Handle), out)
}

// Close, EnqueueWait and DequeueWait implement
// queueiface.BlockingQueue.
func (a *wcqAdapter) Close() { a.q.Close() }
func (a *wcqAdapter) EnqueueWait(ctx context.Context, h queueiface.Handle, v uint64) error {
	return a.q.EnqueueWait(ctx, h.(*core.Handle), v)
}
func (a *wcqAdapter) DequeueWait(ctx context.Context, h queueiface.Handle) (uint64, error) {
	return a.q.DequeueWait(ctx, h.(*core.Handle))
}

// Stats exposes the wait-free slow-path counters (experiment A3).
func (a *wcqAdapter) Stats() core.Stats { return a.q.Stats() }

// HandleHighWater exposes the arena high-water mark (registration-
// storm conformance).
func (a *wcqAdapter) HandleHighWater() int { return a.q.HandleHighWater() }

// implicitAdapter drives the public wcq.Queue exclusively through its
// handle-free methods: Register hands back an inert token and every
// operation borrows a pooled handle inside the library. FIFO still
// holds per producing goroutine — the single ring linearizes enqueues
// in program order no matter which handle carries them.
type implicitAdapter struct {
	q *wcq.Queue[uint64]
}

func (a *implicitAdapter) Register() (queueiface.Handle, error) { return 0, nil }
func (a *implicitAdapter) Unregister(queueiface.Handle)         {}
func (a *implicitAdapter) Enqueue(_ queueiface.Handle, v uint64) bool {
	return a.q.Enqueue(v)
}
func (a *implicitAdapter) Dequeue(queueiface.Handle) (uint64, bool) { return a.q.Dequeue() }
func (a *implicitAdapter) EnqueueBatch(_ queueiface.Handle, vs []uint64) int {
	return a.q.EnqueueBatch(vs)
}
func (a *implicitAdapter) DequeueBatch(_ queueiface.Handle, out []uint64) int {
	return a.q.DequeueBatch(out)
}
func (a *implicitAdapter) Footprint() int64 { return a.q.Footprint() }
func (a *implicitAdapter) Name() string     { return "wCQ-Implicit" }
func (a *implicitAdapter) Close()           { a.q.Close() }
func (a *implicitAdapter) EnqueueWait(ctx context.Context, _ queueiface.Handle, v uint64) error {
	return a.q.EnqueueWait(ctx, v)
}
func (a *implicitAdapter) DequeueWait(ctx context.Context, _ queueiface.Handle) (uint64, error) {
	return a.q.DequeueWait(ctx)
}

func stripedOpts(c Config) []wcq.Option {
	var opts []wcq.Option
	if c.EmulatedFAA {
		opts = append(opts, wcq.WithEmulatedFAA())
	}
	if c.EnqPatience > 0 || c.DeqPatience > 0 {
		opts = append(opts, wcq.WithPatience(c.EnqPatience, c.DeqPatience))
	}
	if c.HelpDelay > 0 {
		opts = append(opts, wcq.WithHelpDelay(c.HelpDelay))
	}
	if c.FixedLanes {
		opts = append(opts, wcq.WithFixedLanes())
	}
	return opts
}

// directValueBits is the payload width of the registry's direct
// builds: the check package's encoding (8 producer bits above 44
// sequence bits — check.MaxProducers caps the harnesses) fits exactly,
// and it exercises the widest supported field.
const directValueBits = 52

func directOpts(c Config) []wcq.Option { return stripedOpts(c) }

// directAdapter exposes the direct ring through queueiface with real
// per-goroutine core.DirectHandle tokens, so the driven path is the
// handle-local window/amortization diet (DESIGN.md §14). The batched
// calls go ring-direct: one reservation already amortizes the shared
// pre-checks across the whole batch, so they never needed the diet.
type directAdapter struct {
	r *core.DirectRing
}

func (a *directAdapter) Register() (queueiface.Handle, error) { return a.r.NewHandle(), nil }
func (a *directAdapter) Unregister(queueiface.Handle)         {}
func (a *directAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return h.(*core.DirectHandle).Enqueue(v)
}
func (a *directAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*core.DirectHandle).Dequeue()
}
func (a *directAdapter) EnqueueBatch(_ queueiface.Handle, vs []uint64) int {
	return a.r.EnqueueBatch(vs)
}
func (a *directAdapter) DequeueBatch(_ queueiface.Handle, out []uint64) int {
	return a.r.DequeueBatch(out)
}
func (a *directAdapter) Footprint() int64 { return a.r.Footprint() }
func (a *directAdapter) Name() string     { return "wCQ-Direct" }

// directCoalesceAdapter exposes wcq.Direct with the coalescing window
// through queueiface: real per-goroutine wcq.DirectHandle tokens, so
// the driven path is buffer/flush/prefetch/eliminate (DESIGN.md §14).
// Unregister flushes, so a drained run loses nothing.
type directCoalesceAdapter struct {
	q *wcq.Direct[uint64]
}

func (a *directCoalesceAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *directCoalesceAdapter) Unregister(h queueiface.Handle) {
	h.(*wcq.DirectHandle[uint64]).Unregister()
}
func (a *directCoalesceAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return h.(*wcq.DirectHandle[uint64]).Enqueue(v)
}
func (a *directCoalesceAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*wcq.DirectHandle[uint64]).Dequeue()
}
func (a *directCoalesceAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return h.(*wcq.DirectHandle[uint64]).EnqueueBatch(vs)
}
func (a *directCoalesceAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return h.(*wcq.DirectHandle[uint64]).DequeueBatch(out)
}
func (a *directCoalesceAdapter) Footprint() int64 { return a.q.Footprint() }
func (a *directCoalesceAdapter) Name() string     { return "wCQ-Direct-Coalesce" }

// directEagerAdapter drives the internal direct ring through its
// handle-free eager entry points — the pre-PR 8 hot path, kept as the
// diet ablation baseline. Register hands back an inert token.
type directEagerAdapter struct {
	r *core.DirectRing
}

func (a *directEagerAdapter) Register() (queueiface.Handle, error)       { return 0, nil }
func (a *directEagerAdapter) Unregister(queueiface.Handle)               {}
func (a *directEagerAdapter) Enqueue(_ queueiface.Handle, v uint64) bool { return a.r.Enqueue(v) }
func (a *directEagerAdapter) Dequeue(queueiface.Handle) (uint64, bool)   { return a.r.Dequeue() }
func (a *directEagerAdapter) EnqueueBatch(_ queueiface.Handle, vs []uint64) int {
	return a.r.EnqueueBatch(vs)
}
func (a *directEagerAdapter) DequeueBatch(_ queueiface.Handle, out []uint64) int {
	return a.r.DequeueBatch(out)
}
func (a *directEagerAdapter) Footprint() int64 { return a.r.Footprint() }
func (a *directEagerAdapter) Name() string     { return "wCQ-Direct-Eager" }

// directUnboundedAdapter exposes wcq.DirectUnbounded through
// queueiface. Enqueue never fails (the queue grows).
type directUnboundedAdapter struct {
	q *wcq.DirectUnbounded[uint64]
}

func (a *directUnboundedAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *directUnboundedAdapter) Unregister(h queueiface.Handle) {
	h.(*wcq.DirectUnboundedHandle[uint64]).Unregister()
}
func (a *directUnboundedAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	h.(*wcq.DirectUnboundedHandle[uint64]).Enqueue(v)
	return true
}
func (a *directUnboundedAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*wcq.DirectUnboundedHandle[uint64]).Dequeue()
}
func (a *directUnboundedAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return h.(*wcq.DirectUnboundedHandle[uint64]).EnqueueBatch(vs)
}
func (a *directUnboundedAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return h.(*wcq.DirectUnboundedHandle[uint64]).DequeueBatch(out)
}
func (a *directUnboundedAdapter) Footprint() int64     { return a.q.Footprint() }
func (a *directUnboundedAdapter) PeakFootprint() int64 { return a.q.PeakFootprint() }
func (a *directUnboundedAdapter) Name() string         { return "wCQ-Direct-Unbounded" }
func (a *directUnboundedAdapter) HandleHighWater() int { return a.q.HandleHighWater() }

// RingStats exposes the recycling counters for the ring-churn
// benchmark (bench.ringStatser).
func (a *directUnboundedAdapter) RingStats() (hits, misses, drops uint64) {
	return a.q.RingStats()
}

// unboundedAdapter exposes wcq.Unbounded through queueiface. Enqueue
// never fails (the queue grows), so the bool is always true.
type unboundedAdapter struct {
	q *wcq.Unbounded[uint64]
}

func (a *unboundedAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *unboundedAdapter) Unregister(h queueiface.Handle) {
	h.(*wcq.UnboundedHandle[uint64]).Unregister()
}
func (a *unboundedAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return h.(*wcq.UnboundedHandle[uint64]).Enqueue(v)
}
func (a *unboundedAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*wcq.UnboundedHandle[uint64]).Dequeue()
}
func (a *unboundedAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return h.(*wcq.UnboundedHandle[uint64]).EnqueueBatch(vs)
}
func (a *unboundedAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return h.(*wcq.UnboundedHandle[uint64]).DequeueBatch(out)
}
func (a *unboundedAdapter) Footprint() int64     { return a.q.Footprint() }
func (a *unboundedAdapter) PeakFootprint() int64 { return a.q.PeakFootprint() }
func (a *unboundedAdapter) Name() string         { return "wCQ-Unbounded" }
func (a *unboundedAdapter) HandleHighWater() int { return a.q.HandleHighWater() }
func (a *unboundedAdapter) Close()               { a.q.Close() }
func (a *unboundedAdapter) EnqueueWait(ctx context.Context, h queueiface.Handle, v uint64) error {
	return h.(*wcq.UnboundedHandle[uint64]).EnqueueWait(ctx, v)
}
func (a *unboundedAdapter) DequeueWait(ctx context.Context, h queueiface.Handle) (uint64, error) {
	return h.(*wcq.UnboundedHandle[uint64]).DequeueWait(ctx)
}

// RingStats exposes the recycling counters for the ring-churn
// benchmark (bench.ringStatser).
func (a *unboundedAdapter) RingStats() (hits, misses, drops uint64) {
	return a.q.RingStats()
}

// stripedAdapter exposes wcq.Striped through queueiface.
type stripedAdapter struct {
	q     *wcq.Striped[uint64]
	fixed bool
}

func (a *stripedAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *stripedAdapter) Unregister(h queueiface.Handle) {
	h.(*wcq.StripedHandle[uint64]).Unregister()
}
func (a *stripedAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return h.(*wcq.StripedHandle[uint64]).Enqueue(v)
}
func (a *stripedAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*wcq.StripedHandle[uint64]).Dequeue()
}
func (a *stripedAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return h.(*wcq.StripedHandle[uint64]).EnqueueBatch(vs)
}
func (a *stripedAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return h.(*wcq.StripedHandle[uint64]).DequeueBatch(out)
}
func (a *stripedAdapter) Footprint() int64 { return a.q.Footprint() }
func (a *stripedAdapter) Name() string {
	if a.fixed {
		return "wCQ-Striped-Fixed"
	}
	return "wCQ-Striped"
}
func (a *stripedAdapter) HandleHighWater() int { return a.q.HandleHighWater() }
func (a *stripedAdapter) Close()               { a.q.Close() }

// Resize and Lanes implement queueiface.Resizable.
func (a *stripedAdapter) Resize(n int) error { return a.q.Resize(n) }
func (a *stripedAdapter) Lanes() int         { return a.q.Stripes() }
func (a *stripedAdapter) EnqueueWait(ctx context.Context, h queueiface.Handle, v uint64) error {
	return h.(*wcq.StripedHandle[uint64]).EnqueueWait(ctx, v)
}
func (a *stripedAdapter) DequeueWait(ctx context.Context, h queueiface.Handle) (uint64, error) {
	return h.(*wcq.StripedHandle[uint64]).DequeueWait(ctx)
}

// directStripedAdapter exposes wcq.DirectStriped through queueiface.
type directStripedAdapter struct {
	q *wcq.DirectStriped[uint64]
}

func (a *directStripedAdapter) Register() (queueiface.Handle, error) { return a.q.Register() }
func (a *directStripedAdapter) Unregister(h queueiface.Handle) {
	h.(*wcq.DirectStripedHandle[uint64]).Unregister()
}
func (a *directStripedAdapter) Enqueue(h queueiface.Handle, v uint64) bool {
	return h.(*wcq.DirectStripedHandle[uint64]).Enqueue(v)
}
func (a *directStripedAdapter) Dequeue(h queueiface.Handle) (uint64, bool) {
	return h.(*wcq.DirectStripedHandle[uint64]).Dequeue()
}
func (a *directStripedAdapter) EnqueueBatch(h queueiface.Handle, vs []uint64) int {
	return h.(*wcq.DirectStripedHandle[uint64]).EnqueueBatch(vs)
}
func (a *directStripedAdapter) DequeueBatch(h queueiface.Handle, out []uint64) int {
	return h.(*wcq.DirectStripedHandle[uint64]).DequeueBatch(out)
}
func (a *directStripedAdapter) Footprint() int64     { return a.q.Footprint() }
func (a *directStripedAdapter) Name() string         { return "wCQ-Direct-Striped" }
func (a *directStripedAdapter) HandleHighWater() int { return a.q.HandleHighWater() }

// Resize and Lanes implement queueiface.Resizable.
func (a *directStripedAdapter) Resize(n int) error { return a.q.Resize(n) }
func (a *directStripedAdapter) Lanes() int         { return a.q.Stripes() }

// scqAdapter exposes scq.Queue through queueiface.
type scqAdapter struct {
	q    *scq.Queue[uint64]
	llsc bool
}

func (a *scqAdapter) Register() (queueiface.Handle, error)       { return 0, nil }
func (a *scqAdapter) Unregister(queueiface.Handle)               {}
func (a *scqAdapter) Enqueue(_ queueiface.Handle, v uint64) bool { return a.q.Enqueue(v) }
func (a *scqAdapter) Dequeue(queueiface.Handle) (uint64, bool)   { return a.q.Dequeue() }
func (a *scqAdapter) EnqueueBatch(_ queueiface.Handle, vs []uint64) int {
	return a.q.EnqueueBatch(vs)
}
func (a *scqAdapter) DequeueBatch(_ queueiface.Handle, out []uint64) int {
	return a.q.DequeueBatch(out)
}
func (a *scqAdapter) Footprint() int64 { return a.q.Footprint() }
func (a *scqAdapter) Name() string {
	if a.llsc {
		return "SCQ-LLSC"
	}
	return "SCQ"
}
