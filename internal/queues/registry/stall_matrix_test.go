//go:build wcq_failpoints

package registry

// The stall matrix: for every (queue shape, failpoint site) cell it
// parks ONE thread mid-operation at that site and asserts the
// wait-freedom contract adversarially (DESIGN.md §12):
//
//   1. peers still complete a bounded number of operations while the
//      thread is frozen (no window in the algorithm lets one stalled
//      thread block the others), and
//   2. after the thread is released, every value whose enqueue
//      reported success is delivered exactly once — the stalled
//      operation was helped (or resumed) to completion with no loss
//      and no duplication.
//
// The shapes are built with EnqPatience/DeqPatience/HelpDelay = 1 so
// the slow-path and helping windows trip under ordinary contention
// rather than needing a pathological schedule.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/queues/queueiface"
)

const (
	stallWorkers = 4
	stallBurst   = 32
	// stallQuota is how many completed peer calls we demand while one
	// thread is parked — far above anything a blocked peer could
	// deliver, far below a second of healthy throughput.
	stallQuota = 2000
)

// stallShapes lists each shape with the ring order the cell builds
// (small, so rings fill, finalize and hop constantly) and the sites
// its operations can reach. Sites not listed for a shape are simply
// not in that shape's code paths.
var stallShapes = []struct {
	name  string
	order uint
	sites []failpoint.Site
}{
	{"wCQ", 4, []failpoint.Site{
		failpoint.CoreEnqReserved, failpoint.CoreDeqReserved,
		failpoint.CoreEnqSlowPublished, failpoint.CoreDeqSlowPublished,
		failpoint.CoreHelpPickup, failpoint.CoreThresholdRearm,
		failpoint.CoreEnqActiveWindow,
	}},
	{"SCQ", 4, []failpoint.Site{
		failpoint.SCQEnqReserved, failpoint.SCQDeqReserved,
		failpoint.SCQThresholdRearm,
	}},
	{"wCQ-Direct", 4, []failpoint.Site{
		failpoint.DirectEnqAdmitted, failpoint.DirectEnqReserved,
		failpoint.DirectDeqReserved, failpoint.DirectBudgetDecay,
		failpoint.DirectThresholdRearm,
	}},
	{"wCQ-Unbounded", 3, []failpoint.Site{
		failpoint.CoreEnqReserved, failpoint.CoreDeqReserved,
		failpoint.CoreEnqSlowPublished, failpoint.CoreDeqSlowPublished,
		failpoint.CoreHelpPickup, failpoint.CoreThresholdRearm,
		failpoint.UnboundedEnqActiveWindow, failpoint.UnboundedProtect,
		failpoint.UnboundedHopPrepared, failpoint.UnboundedUnlinked,
		failpoint.HazardRetire,
	}},
	{"wCQ-Direct-Unbounded", 3, []failpoint.Site{
		failpoint.DirectEnqAdmitted, failpoint.DirectEnqReserved,
		failpoint.DirectDeqReserved, failpoint.DirectBudgetDecay,
		failpoint.DirectThresholdRearm, failpoint.UnboundedProtect,
		failpoint.UnboundedHopPrepared, failpoint.UnboundedUnlinked,
		failpoint.HazardRetire,
	}},
}

// rareCell marks cells whose site needs a genuine race to trip (a
// lost entry transition, a helper catching a request mid-flight, a
// budget decaying to its floor). Those cells skip instead of failing
// when the window never opens during the bounded run; every other
// cell MUST trip, which is the matrix's coverage assertion.
func rareCell(shape string, s failpoint.Site) bool {
	switch s {
	case failpoint.CoreDeqSlowPublished, failpoint.DirectBudgetDecay:
		return true
	case failpoint.CoreEnqSlowPublished, failpoint.CoreThresholdRearm,
		failpoint.CoreHelpPickup:
		// The unbounded composition hops to a fresh ring where the
		// bounded build would have entered the slow path or decayed
		// its threshold, so these windows (and the helper pickup that
		// feeds on a pending request) only open on rare races there.
		return shape != "wCQ"
	}
	return false
}

func TestStallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("stall matrix is a long test")
	}
	for _, shape := range stallShapes {
		for _, site := range shape.sites {
			t.Run(shape.name+"/"+site.String(), func(t *testing.T) {
				runStallCell(t, shape.name, shape.order, site)
			})
		}
	}
}

type stallWorkerResult struct {
	enq uint64   // successful enqueues: values 0..enq-1 were accepted
	got []uint64 // every value this worker dequeued
}

func runStallCell(t *testing.T, shapeName string, order uint, site failpoint.Site) {
	failpoint.Reset()
	defer failpoint.Reset()

	q, err := New(shapeName, Config{
		Threads:     stallWorkers + 1,
		RingOrder:   order,
		PoolSize:    2,
		EnqPatience: 1,
		DeqPatience: 1,
		HelpDelay:   1,
	})
	if err != nil {
		t.Fatalf("build %s: %v", shapeName, err)
	}

	// Freeze exactly one thread at the site; everyone after passes.
	failpoint.Arm(site, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})

	// The helper-pickup window only opens while some peer's request is
	// pending, which is normally a nanosecond-scale blip. Freeze one
	// dequeuer mid-publication so the request STAYS pending and a
	// helper must walk into the pickup — the cell then holds a stalled
	// requester AND a stalled helper at once, and the remaining
	// workers must both keep the queue live and complete the frozen
	// request exactly once.
	companion := failpoint.Site(-1)
	if site == failpoint.CoreHelpPickup {
		companion = failpoint.CoreDeqSlowPublished
		failpoint.Arm(companion, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})
	}
	releaseAll := func() {
		failpoint.Release(site)
		if companion >= 0 {
			failpoint.Release(companion)
		}
	}

	var (
		stop    atomic.Bool
		ops     atomic.Uint64
		wg      sync.WaitGroup
		results = make([]stallWorkerResult, stallWorkers)
	)
	for w := 0; w < stallWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Errorf("worker %d register: %v", id, err)
				return
			}
			defer q.Unregister(h)
			res := &results[id]
			var seq uint64
			for !stop.Load() {
				for i := 0; i < stallBurst; i++ {
					// A failed enqueue retries the same value next
					// round, so a "false that actually landed" shows
					// up as a duplicate in the final accounting.
					if q.Enqueue(h, check.Encode(id, seq)) {
						seq++
					}
					ops.Add(1)
				}
				for i := 0; i < stallBurst; i++ {
					if v, ok := q.Dequeue(h); ok {
						res.got = append(res.got, v)
					}
					ops.Add(1)
				}
			}
			res.enq = seq
		}(w)
	}

	// Wait for a thread to park at the site. Non-rare cells must trip
	// — that is the matrix's coverage guarantee.
	tripTimeout := 10 * time.Second
	rare := rareCell(shapeName, site)
	if rare {
		tripTimeout = 2 * time.Second
	}
	deadline := time.Now().Add(tripTimeout)
	for failpoint.Parked(site) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if failpoint.Parked(site) == 0 {
		stop.Store(true)
		releaseAll()
		wg.Wait()
		verifyStallAccounting(t, q, results)
		if rare {
			t.Skipf("%s: site %v needs a rare race and did not trip in %v (hits: %d)",
				shapeName, site, tripTimeout, failpoint.Hits(site))
		}
		t.Fatalf("%s: site %v never tripped (hits: %d) — matrix coverage hole",
			shapeName, site, failpoint.Hits(site))
	}

	// Wait-freedom: with one thread frozen mid-window, the peers must
	// still complete a bounded number of calls.
	base := ops.Load()
	progressDeadline := time.Now().Add(10 * time.Second)
	for ops.Load() < base+stallQuota {
		if time.Now().After(progressDeadline) {
			t.Fatalf("%s: peers made only %d/%d ops in 10s behind a thread parked at %v (trace: %s)",
				shapeName, ops.Load()-base, uint64(stallQuota), site, failpoint.Trace())
		}
		time.Sleep(time.Millisecond)
	}

	// Release the stalled thread; its in-flight operation must resolve
	// exactly once — verified by the multiset accounting below.
	stop.Store(true)
	releaseAll()
	wg.Wait()
	if failpoint.Parked(site) != 0 {
		t.Fatalf("%s: %d threads still parked at %v after release", shapeName, failpoint.Parked(site), site)
	}
	verifyStallAccounting(t, q, results)
}

// verifyStallAccounting drains the quiescent queue and checks the
// exactly-once contract: every accepted value delivered once, nothing
// delivered that was not accepted.
func verifyStallAccounting(t *testing.T, q queueiface.Queue, results []stallWorkerResult) {
	t.Helper()
	h, err := q.Register()
	if err != nil {
		t.Fatalf("drain register: %v", err)
	}
	var leftovers []uint64
	for misses := 0; misses < 8; {
		if v, ok := q.Dequeue(h); ok {
			leftovers = append(leftovers, v)
			misses = 0
		} else {
			misses++
		}
	}
	q.Unregister(h)

	seen := make(map[uint64]bool)
	addAll := func(src string, vs []uint64) {
		for _, v := range vs {
			if seen[v] {
				p, s := check.Decode(v)
				t.Fatalf("duplicate delivery of producer %d seq %d (%s) — stalled op applied twice (trace: %s)",
					p, s, src, failpoint.Trace())
			}
			seen[v] = true
		}
	}
	for i := range results {
		addAll("worker", results[i].got)
	}
	addAll("drain", leftovers)

	var total uint64
	for id := range results {
		total += results[id].enq
		for s := uint64(0); s < results[id].enq; s++ {
			if !seen[check.Encode(id, s)] {
				t.Fatalf("lost value: producer %d seq %d accepted but never delivered (trace: %s)",
					id, s, failpoint.Trace())
			}
		}
	}
	if uint64(len(seen)) != total {
		t.Fatalf("delivered %d distinct values but only %d were accepted — phantom delivery (trace: %s)",
			len(seen), total, failpoint.Trace())
	}
}
