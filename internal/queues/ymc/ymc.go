// Package ymc implements a Yang & Mellor-Crummey-style wait-free
// queue (PPoPP '16) as an evaluation baseline: the "infinite array"
// queue realized as a linked list of fixed-size segments, with
// fetch-and-add on Head and Tail and cells settled by CAS.
//
// Faithfulness notes (DESIGN.md §2.7): the original's
// enqueue/dequeue-request helping and its custom segment reclamation —
// the component the wCQ paper shows to be flawed (it blocks when
// memory is exhausted, forfeiting wait-freedom) — are simplified here.
// Dequeuers invalidate cells they pass (so stranded values are
// impossible) and segments are reclaimed by advancing a first-segment
// pointer, with Go's GC standing in for the unsound manual free. What
// the evaluation needs from YMC is preserved: an F&A hot path whose
// throughput sits between MSQueue and LCRQ, segment allocation that
// grows with dequeuer overshoot (the Fig. 10a memory trend), and poor
// empty-queue dequeue behaviour (Fig. 11a/12a).
package ymc

import (
	"sync/atomic"

	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// SegOrder sets the segment size to 2^SegOrder cells (the original
// uses 2^10).
const SegOrder = 10

const (
	segSize = 1 << SegOrder
	segMask = segSize - 1
)

// Cell states.
const (
	cellEmpty uint64 = iota
	cellFull         // value published, ready to consume
	cellTaken        // invalidated by a passing dequeuer
	cellDone         // consumed
)

type cell struct {
	status atomic.Uint64
	val    atomic.Uint64
}

type segment struct {
	id    uint64
	next  atomic.Pointer[segment]
	cells [segSize]cell
}

const segBytes = segSize*16 + 64

// Queue is the segmented F&A queue.
type Queue struct {
	tail pad.Uint64 // enqueue counter
	head pad.Uint64 // dequeue counter

	_     pad.DoublePad
	first atomic.Pointer[segment] // reclamation frontier
	_     pad.DoublePad

	mem memtrack.Counter
}

// Handle carries a thread's private segment pointers (the original's
// per-thread Ep/Dp). A thread's cell ids are monotone, so its hints
// never overshoot its next target — unlike a shared hint, which could
// be advanced past a slow dequeuer's segment by faster peers.
type Handle struct {
	tseg *segment
	hseg *segment
}

// New creates a YMC-style queue.
func New() *Queue {
	q := &Queue{}
	s := &segment{}
	q.mem.Alloc(segBytes)
	q.first.Store(s)
	return q
}

// Register returns a handle with private segment hints.
func (q *Queue) Register() (any, error) {
	s := q.first.Load()
	return &Handle{tseg: s, hseg: s}, nil
}

// Unregister is a no-op (handles are garbage collected).
func (q *Queue) Unregister(any) {}

// Name identifies the algorithm.
func (q *Queue) Name() string { return "YMC" }

// Footprint returns live queue-owned bytes (segments between the
// reclamation frontier and the newest segment).
func (q *Queue) Footprint() int64 { return q.mem.Live() }

// findCell walks (and extends) the segment list from the caller's
// private hint to the cell of global index id, and returns the updated
// hint. The hint's id never exceeds id's segment (per-thread ids are
// monotone).
func (q *Queue) findCell(seg *segment, id uint64) (*cell, *segment) {
	target := id >> SegOrder
	if seg.id > target {
		// Only reachable for a freshly registered enqueuer whose tail
		// counter lags the reclamation frontier (possible after heavy
		// empty-dequeue overshoot). Every cell that far back is
		// settled, so report "no cell": the caller retries with a
		// fresh counter.
		return nil, seg
	}
	for seg.id < target {
		next := seg.next.Load()
		if next == nil {
			ns := &segment{id: seg.id + 1}
			if seg.next.CompareAndSwap(nil, ns) {
				q.mem.Alloc(segBytes)
				next = ns
			} else {
				next = seg.next.Load()
			}
		}
		seg = next
	}
	return &seg.cells[id&segMask], seg
}

// advanceFirst moves the reclamation frontier up to segment id minSeg,
// releasing everything behind it.
func (q *Queue) advanceFirst(minSeg uint64) {
	for {
		f := q.first.Load()
		if f.id >= minSeg {
			return
		}
		next := f.next.Load()
		if next == nil {
			return
		}
		if q.first.CompareAndSwap(f, next) {
			q.mem.Free(segBytes)
		}
	}
}

// Enqueue publishes v at the next tail cell; cells invalidated by
// overshooting dequeuers are skipped.
func (q *Queue) Enqueue(h any, v uint64) bool {
	hd := h.(*Handle)
	for {
		t := q.tail.Add(1) - 1
		var c *cell
		c, hd.tseg = q.findCell(hd.tseg, t)
		if c == nil {
			continue // counter below the reclamation frontier
		}
		c.val.Store(v) // sole writer: t is drawn exactly once
		if c.status.CompareAndSwap(cellEmpty, cellFull) {
			return true
		}
		// cellTaken: a dequeuer passed this cell; try the next.
	}
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(hh any) (uint64, bool) {
	hd := hh.(*Handle)
	for {
		h := q.head.Add(1) - 1
		var c *cell
		c, hd.hseg = q.findCell(hd.hseg, h)
		for {
			s := c.status.Load()
			if s == cellFull {
				v := c.val.Load()
				c.status.Store(cellDone)
				q.maybeReclaim(h)
				return v, true
			}
			if s == cellEmpty {
				if !c.status.CompareAndSwap(cellEmpty, cellTaken) {
					continue // the enqueuer won; consume it
				}
			}
			break // cell settled as taken (by us or a peer dequeuer)
		}
		if q.tail.Load() <= h+1 {
			// Empty. Help the tail counter catch up with the head
			// overshoot (the original's help_enq advances Ei the same
			// way) so future enqueuers do not crawl through a long run
			// of invalidated cells.
			q.catchUpTail(h + 1)
			return 0, false
		}
	}
}

// catchUpTail advances the tail counter to at least target.
func (q *Queue) catchUpTail(target uint64) {
	for {
		t := q.tail.Load()
		if t >= target || q.tail.CompareAndSwap(t, target) {
			return
		}
	}
}

// maybeReclaim advances the reclamation frontier at segment
// boundaries. The head counter is the slowest consumer-side frontier:
// every cell below it is settled.
func (q *Queue) maybeReclaim(h uint64) {
	if h&segMask == segMask { // last cell of a segment consumed
		q.advanceFirst(h >> SegOrder)
	}
}
