package ymc

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	h, _ := q.Register()
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestSegmentsAllocatedOnDemand(t *testing.T) {
	q := New()
	h, _ := q.Register()
	base := q.Footprint()
	for i := uint64(0); i < 3*segSize; i++ {
		q.Enqueue(h, i)
	}
	if q.Footprint() <= base {
		t.Fatal("no segments allocated across boundaries")
	}
}

func TestSegmentsReclaimedBehindHead(t *testing.T) {
	q := New()
	h, _ := q.Register()
	for i := uint64(0); i < 4*segSize; i++ {
		q.Enqueue(h, i)
	}
	grown := q.Footprint()
	for i := uint64(0); i < 4*segSize; i++ {
		if _, ok := q.Dequeue(h); !ok {
			t.Fatalf("empty at %d", i)
		}
	}
	if q.Footprint() >= grown {
		t.Fatalf("frontier did not reclaim: grown=%d now=%d", grown, q.Footprint())
	}
}

func TestEmptyDequeueOvershootRecovers(t *testing.T) {
	q := New()
	h, _ := q.Register()
	// Burn head counters on an empty queue (the Fig. 11a weakness),
	// then verify enqueue/dequeue still works: the tail catch-up and
	// cell invalidation must cooperate.
	for i := 0; i < 2*segSize; i++ {
		if _, ok := q.Dequeue(h); ok {
			t.Fatal("empty queue yielded a value")
		}
	}
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("post-overshoot dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestFreshHandleAfterOvershoot(t *testing.T) {
	q := New()
	h1, _ := q.Register()
	for i := 0; i < 3*segSize; i++ {
		q.Dequeue(h1)
	}
	// A handle registered after heavy overshoot starts at the current
	// frontier; its enqueues must still succeed (the findCell nil
	// path).
	h2, _ := q.Register()
	q.Enqueue(h2, 42)
	v, ok := q.Dequeue(h2)
	if !ok || v != 42 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestConcurrentPairs(t *testing.T) {
	q := New()
	const workers, per = 4, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, _ := q.Register()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(w))
				if _, ok := q.Dequeue(h); !ok {
					// Possible transiently: another worker consumed
					// ours before we consumed anything.
					continue
				}
			}
		}(w)
	}
	wg.Wait()
}
