package scq

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
)

func TestRingBatchSequentialFIFO(t *testing.T) {
	r := MustRing(6) // n = 64
	in := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	r.EnqueueBatch(in[:4])
	r.EnqueueBatch(in[4:])
	out := make([]uint64, 8)
	if n := r.DequeueBatch(out); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i, v := range out {
		if v != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, v, in[i])
		}
	}
	if n := r.DequeueBatch(out); n != 0 {
		t.Fatalf("empty ring batch-dequeued %d", n)
	}
}

func TestRingBatchAcrossCycles(t *testing.T) {
	r := MustRing(3) // n = 8, so batches wrap the physical ring quickly
	buf := make([]uint64, 5)
	next, want := uint64(0), uint64(0)
	for iter := 0; iter < 500; iter++ {
		k := iter%5 + 1
		in := make([]uint64, k)
		for i := range in {
			in[i] = (next + uint64(i)) % 8 // ring of order 3 carries indices < 8
		}
		r.EnqueueBatch(in)
		got := r.DequeueBatch(buf[:k])
		if got != k {
			t.Fatalf("iter %d: dequeued %d of %d", iter, got, k)
		}
		for i := 0; i < got; i++ {
			if buf[i] != (want+uint64(i))%8 {
				t.Fatalf("iter %d: buf[%d] = %d, want %d", iter, i, buf[i], (want+uint64(i))%8)
			}
		}
		next += uint64(k)
		want += uint64(k)
	}
}

func TestRingBatchZeroAndOne(t *testing.T) {
	r := MustRing(4)
	r.EnqueueBatch(nil)
	if n := r.DequeueBatch(nil); n != 0 {
		t.Fatalf("zero-length batch dequeued %d", n)
	}
	r.EnqueueBatch([]uint64{7})
	out := make([]uint64, 1)
	if n := r.DequeueBatch(out); n != 1 || out[0] != 7 {
		t.Fatalf("single-element batch: n=%d out=%v", n, out)
	}
}

func TestRingDequeueBatchPartial(t *testing.T) {
	r := MustRing(5)
	r.EnqueueBatch([]uint64{1, 2, 3})
	out := make([]uint64, 10) // ask for more than present
	n := r.DequeueBatch(out)
	if n != 3 {
		t.Fatalf("partial batch: got %d, want 3", n)
	}
	for i, want := range []uint64{1, 2, 3} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	// The over-reservation must not wedge the ring: it keeps working.
	r.EnqueueBatch([]uint64{9, 8})
	if n := r.DequeueBatch(out[:2]); n != 2 || out[0] != 9 || out[1] != 8 {
		t.Fatalf("ring wedged after over-reservation: n=%d out=%v", n, out[:2])
	}
}

func TestQueueBatchFullSemantics(t *testing.T) {
	q := Must[uint64](3) // capacity 8
	vs := make([]uint64, 12)
	for i := range vs {
		vs[i] = uint64(i)
	}
	if n := q.EnqueueBatch(vs); n != 8 {
		t.Fatalf("over-capacity batch inserted %d, want 8", n)
	}
	if n := q.EnqueueBatch(vs); n != 0 {
		t.Fatalf("full queue accepted %d", n)
	}
	out := make([]uint64, 12)
	if n := q.DequeueBatch(out); n != 8 {
		t.Fatalf("drained %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != uint64(i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

// TestQueueBatchConcurrentMPMC mixes batched producers and consumers
// over the value queue and runs the standard MPMC checks.
func TestQueueBatchConcurrentMPMC(t *testing.T) {
	const producers, consumers, batch = 3, 3, 8
	per := uint64(6000)
	if testing.Short() {
		per = 600
	}
	q := Must[uint64](9)
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			budget := total / consumers
			if c == 0 {
				budget += total % consumers
			}
			local := make([]uint64, 0, budget)
			buf := make([]uint64, batch)
			for uint64(len(local)) < budget {
				k := budget - uint64(len(local)) // never overfetch past the budget
				if k > batch {
					k = batch
				}
				n := q.DequeueBatch(buf[:k])
				if n == 0 {
					runtime.Gosched()
					continue
				}
				local = append(local, buf[:n]...)
				for i := 0; i < n; i++ {
					consumed.Done()
				}
			}
			streams[c] = local
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([]uint64, batch)
			for s := uint64(0); s < per; {
				k := min(uint64(batch), per-s)
				for i := uint64(0); i < k; i++ {
					buf[i] = check.Encode(p, s+i)
				}
				sent := uint64(0)
				for sent < k {
					n := q.EnqueueBatch(buf[sent:k])
					sent += uint64(n)
					if n == 0 {
						runtime.Gosched()
					}
				}
				s += k
			}
		}(p)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}
