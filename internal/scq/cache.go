package scq

import (
	"wcqueue/internal/failpoint"
)

// RingCache is a single caller's cached view of one Ring — the SCQ
// sibling of core.DirectHandle (DESIGN.md §14). It keeps monotone
// under-estimates of the Head and Tail counters (only values the
// counters actually held: the caller's own F&A results plus one, or
// fresh loads) and uses them to skip the dequeue-side shared threshold
// fast-exit read while headSeen < tailSeen — an insertion this caller
// itself witnessed has not provably been consumed, so the poll is
// worth a reservation without consulting the budget. The skip is sound
// because the fast-exit is a pure optimization: deqAt's precise
// tail-caught-head detection stays authoritative, and after any
// DeqEmpty the window closes by construction (tailSeen was set before
// the empty detection read Tail <= h+1 = headSeen), restoring the
// cheap threshold poll for empty-spinning consumers.
//
// Two deliberate asymmetries against core.DirectHandle: there is no
// full-window on the enqueue side, because the Ring contract (at most
// n live indices, from the indirection construction) means Enqueue
// never observes a full ring — there is no pre-check to skip; and
// threshold decrements stay per-operation, because SCQ draws empty
// conclusions from the decayed budget alone (no precise re-verify),
// where a deferred combined Add(-k) would be unsound — see the
// deqAtFast commentary in core/ops.go.
//
// A RingCache is NOT safe for concurrent use; each goroutine takes its
// own. Cached and cache-free calls mix freely on one ring — every
// cached conclusion is conservative.
type RingCache struct {
	r        *Ring
	tailSeen uint64 // monotone under-estimate of the tail counter
	headSeen uint64 // monotone under-estimate of the head counter
}

// NewCache returns a fresh single-caller cache on r.
func (r *Ring) NewCache() *RingCache { return &RingCache{r: r} }

// Ring returns the ring this cache operates on.
func (c *RingCache) Ring() *Ring { return c.r }

// Enqueue inserts index through the cached path, recording the
// reserved tail counters as the window's tail bound. Same contract as
// Ring.Enqueue (the ≤ n live indices invariant makes it total).
// wcq:noalloc
func (c *RingCache) Enqueue(index uint64) {
	r := c.r
	for {
		t := r.faa(&r.tail)
		c.tailSeen = t + 1
		if failpoint.Enabled {
			failpoint.Inject(failpoint.SCQEnqReserved)
		}
		if r.enqAt(t, index) {
			return
		}
	}
}

// Dequeue removes an index, skipping the shared threshold read while
// the cached window proves the poll is worth a reservation. Same
// contract as Ring.Dequeue.
// wcq:noalloc
func (c *RingCache) Dequeue() (index uint64, ok bool) {
	r := c.r
	if c.headSeen >= c.tailSeen {
		// Closed window: fall back on the shared empty fast-exit.
		if !r.thresholdNonNegative() {
			return 0, false
		}
		// Budget says non-empty: one Tail read re-opens the window so a
		// draining run pays it once per window, not per op.
		if t := r.tail.Load(); t > c.tailSeen {
			c.tailSeen = t
		}
	}
	for {
		h := r.faa(&r.head)
		c.headSeen = h + 1
		if failpoint.Enabled {
			failpoint.Inject(failpoint.SCQDeqReserved)
		}
		index, st := r.deqAt(h, false)
		switch st {
		case DeqOK:
			return index, true
		case DeqEmpty:
			return 0, false
		}
	}
}
