package scq

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingCacheSequentialFIFO(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCache()
	const rounds = 200 // spans many cycles of the 16-slot ring
	next, out := uint64(0), uint64(0)
	for i := 0; i < rounds; i++ {
		for j := 0; j < (i%5)+1 && next-out < r.N(); j++ {
			c.Enqueue(next % r.N())
			next++
		}
		for j := 0; j < (i%3)+1 && out < next; j++ {
			idx, ok := c.Dequeue()
			if !ok {
				t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
			}
			if idx != out%r.N() {
				t.Fatalf("iter %d: got %d want %d", i, idx, out%r.N())
			}
			out++
		}
	}
	for out < next {
		idx, ok := c.Dequeue()
		if !ok || idx != out%r.N() {
			t.Fatalf("drain: got (%d,%v) want %d", idx, ok, out%r.N())
		}
		out++
	}
	if idx, ok := c.Dequeue(); ok {
		t.Fatalf("drained ring yielded %d", idx)
	}
}

func TestRingCacheWindowClosesAfterEmpty(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCache()
	c.Enqueue(3)
	if idx, ok := c.Dequeue(); !ok || idx != 3 {
		t.Fatalf("dequeue got (%d,%v)", idx, ok)
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("empty ring yielded an index")
	}
	if c.headSeen < c.tailSeen {
		t.Fatalf("window still open after DeqEmpty: headSeen=%d tailSeen=%d", c.headSeen, c.tailSeen)
	}
	// From here the empty polls must ride the threshold fast-exit, not
	// burn head reservations.
	head := r.Head()
	for i := 0; i < 200; i++ {
		if _, ok := c.Dequeue(); ok {
			t.Fatal("empty ring yielded an index")
		}
	}
	if got := r.Head(); got > head+3*r.N() {
		t.Fatalf("empty polls burned %d head positions (fast-exit not restored)", got-head)
	}
	// A fresh insertion is observable through the same cache.
	c.Enqueue(7)
	if idx, ok := c.Dequeue(); !ok || idx != 7 {
		t.Fatalf("dequeue after decay got (%d,%v)", idx, ok)
	}
}

func TestRingCacheMixesWithCacheFreeOps(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCache()
	c.Enqueue(1)
	r.Enqueue(2)
	if idx, ok := r.Dequeue(); !ok || idx != 1 {
		t.Fatalf("ring dequeue got (%d,%v)", idx, ok)
	}
	if idx, ok := c.Dequeue(); !ok || idx != 2 {
		t.Fatalf("cached dequeue got (%d,%v)", idx, ok)
	}
}

// TestRingCacheMPMC runs pairwise workers (each enqueues then
// dequeues through its own cache) so the ≤ n live-indices Ring
// contract holds by construction while caches race on head, tail,
// threshold and the entries.
func TestRingCacheMPMC(t *testing.T) {
	r, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	per := uint64(20000)
	if testing.Short() {
		per = 2000
	}
	var moved, failed [workers]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.NewCache()
			for s := uint64(0); s < per; s++ {
				c.Enqueue(s % r.N())
				if _, ok := c.Dequeue(); ok {
					moved[w]++
				} else {
					failed[w]++
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	var total, miss uint64
	for w := range moved {
		total += moved[w]
		miss += failed[w]
	}
	// Every enqueue completed, so the values a worker's dequeue missed
	// (claimed by a racing peer) remain in the ring; drain and balance.
	c := r.NewCache()
	for {
		if _, ok := c.Dequeue(); !ok {
			break
		}
		total++
	}
	if total != workers*per {
		t.Fatalf("moved %d of %d values (%d transient misses)", total, workers*per, miss)
	}
}
