package scq

import (
	"fmt"
)

// Queue is a bounded lock-free MPMC queue of values of type T, built
// from two Rings by indirection (Figure 2 of the paper): fq holds free
// indices, aq holds allocated ones, and values live in a flat array.
//
// A Queue of order k holds up to n = 2^k values.
type Queue[T any] struct {
	aq   *Ring
	fq   *Ring
	data []T
}

// New creates a bounded queue with capacity 2^order values.
func New[T any](order uint, opts ...Option) (*Queue[T], error) {
	aq, err := NewRing(order, opts...)
	if err != nil {
		return nil, fmt.Errorf("scq: allocating aq: %w", err)
	}
	fq, err := NewRing(order, append(opts, WithFull())...)
	if err != nil {
		return nil, fmt.Errorf("scq: allocating fq: %w", err)
	}
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, 1<<order)}, nil
}

// Must is New that panics on error.
func Must[T any](order uint, opts ...Option) *Queue[T] {
	q, err := New[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Cap returns the queue capacity n.
func (q *Queue[T]) Cap() int { return len(q.data) }

// Enqueue inserts v. It returns false if the queue is full.
func (q *Queue[T]) Enqueue(v T) bool {
	index, ok := q.fq.Dequeue()
	if !ok {
		return false // no free index: full
	}
	q.data[index] = v
	q.aq.Enqueue(index)
	return true
}

// Dequeue removes the oldest value. It returns ok=false if the queue
// is empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	index, ok := q.aq.Dequeue()
	if !ok {
		return v, false
	}
	v = q.data[index]
	var zero T
	q.data[index] = zero // release references for GC hygiene
	q.fq.Enqueue(index)
	return v, true
}

// Footprint returns the live bytes owned by the queue. Constant: SCQ
// allocates only at construction.
func (q *Queue[T]) Footprint() int64 {
	var t T
	_ = t
	return q.aq.Footprint() + q.fq.Footprint() + int64(len(q.data))*8
}
