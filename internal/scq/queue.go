package scq

import (
	"fmt"
	"sync"
)

// Queue is a bounded lock-free MPMC queue of values of type T, built
// from two Rings by indirection (Figure 2 of the paper): fq holds free
// indices, aq holds allocated ones, and values live in a flat array.
//
// A Queue of order k holds up to n = 2^k values.
type Queue[T any] struct {
	aq   *Ring
	fq   *Ring
	data []T
	// scratch pools batch index buffers; SCQ has no handles to hang
	// per-thread scratch on, so the batched paths borrow from here to
	// stay allocation-free in steady state.
	scratch sync.Pool
}

// buf borrows an index buffer with capacity ≥ k; return it with
// q.scratch.Put. The *[]uint64 box travels with the buffer so the
// steady-state cycle allocates nothing.
func (q *Queue[T]) buf(k int) *[]uint64 {
	p, _ := q.scratch.Get().(*[]uint64)
	if p == nil {
		b := make([]uint64, k)
		return &b
	}
	if cap(*p) < k {
		*p = make([]uint64, k)
	}
	return p
}

// New creates a bounded queue with capacity 2^order values.
func New[T any](order uint, opts ...Option) (*Queue[T], error) {
	aq, err := NewRing(order, opts...)
	if err != nil {
		return nil, fmt.Errorf("scq: allocating aq: %w", err)
	}
	fq, err := NewRing(order, append(opts, WithFull())...)
	if err != nil {
		return nil, fmt.Errorf("scq: allocating fq: %w", err)
	}
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, 1<<order)}, nil
}

// Must is New that panics on error.
func Must[T any](order uint, opts ...Option) *Queue[T] {
	q, err := New[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Cap returns the queue capacity n.
func (q *Queue[T]) Cap() int { return len(q.data) }

// Enqueue inserts v. It returns false if the queue is full.
func (q *Queue[T]) Enqueue(v T) bool {
	index, ok := q.fq.Dequeue()
	if !ok {
		return false // no free index: full
	}
	q.data[index] = v
	q.aq.Enqueue(index)
	return true
}

// Dequeue removes the oldest value. It returns ok=false if the queue
// is empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	index, ok := q.aq.Dequeue()
	if !ok {
		return v, false
	}
	v = q.data[index]
	var zero T
	q.data[index] = zero // release references for GC hygiene
	q.fq.Enqueue(index)
	return v, true
}

// EnqueueBatch inserts up to len(vs) values and returns how many were
// inserted (fewer than len(vs) only when the queue fills). Both
// underlying rings amortize their F&A over the whole batch: a batch of
// k values costs two ring F&As instead of 2k.
func (q *Queue[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	bp := q.buf(len(vs))
	defer q.scratch.Put(bp)
	idx := (*bp)[:len(vs)]
	n := q.fq.DequeueBatch(idx)
	if n == 0 {
		return 0 // no free indices: full
	}
	for i := 0; i < n; i++ {
		q.data[idx[i]] = vs[i]
	}
	q.aq.EnqueueBatch(idx[:n])
	return n
}

// DequeueBatch removes up to len(out) of the oldest values, in FIFO
// order, and returns how many were dequeued.
func (q *Queue[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	bp := q.buf(len(out))
	defer q.scratch.Put(bp)
	idx := (*bp)[:len(out)]
	n := q.aq.DequeueBatch(idx)
	if n == 0 {
		return 0
	}
	var zero T
	for i := 0; i < n; i++ {
		out[i] = q.data[idx[i]]
		q.data[idx[i]] = zero // release references for GC hygiene
	}
	q.fq.EnqueueBatch(idx[:n])
	return n
}

// Footprint returns the live bytes owned by the queue. Constant: SCQ
// allocates only at construction.
func (q *Queue[T]) Footprint() int64 {
	var t T
	_ = t
	return q.aq.Footprint() + q.fq.Footprint() + int64(len(q.data))*8
}
