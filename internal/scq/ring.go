// Package scq implements SCQ, the Scalable Circular Queue of
// Nikolaev (DISC '19), exactly as presented in Figure 3 of the wCQ
// paper. SCQ is both a baseline in the paper's evaluation and the
// substrate of wCQ: wCQ's fast path is SCQ's algorithm.
//
// The central type is Ring, a lock-free bounded MPMC queue of small
// integer indices in [0, n). Value-carrying queues are built from two
// rings by indirection (Figure 2): a "free queue" of unused indices
// and an "allocated queue" of filled ones, with values stored in a
// plain array referenced by index.
//
// A Ring of order k has n = 2^k usable slots but 2n physical entries;
// the capacity doubling plus the 3n−1 threshold is what makes the ring
// lock-free without livelocks (see §2 of the paper).
package scq

import (
	"fmt"
	"sync/atomic"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/bitops"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/pad"
)

// RemapFunc is a bijective permutation of ring positions, used to
// spread adjacent logical slots across cache lines.
type RemapFunc func(pos uint64, ringOrder uint) uint64

// Ring is a lock-free bounded MPMC queue of indices in [0, n).
//
// Invariant (from the indirection construction): at most n indices are
// live in the ring at any time, so Enqueue never observes a full ring
// and always succeeds. Using a Ring directly with more than n live
// entries is a caller bug.
type Ring struct {
	order     uint   // k: n = 1<<k usable entries
	ringOrder uint   // k+1: 2n physical entries
	posMask   uint64 // 2n-1
	idxBits   uint   // k+1: bit-width of the index field
	idxMask   uint64 // (1<<idxBits)-1
	safeBit   uint64 // IsSafe flag bit, just above the index field
	cycShift  uint   // idxBits+1: cycle field starts here
	bottom    uint64 // ⊥  = 2n-2: slot empty, not yet visited this cycle
	bottomC   uint64 // ⊥c = 2n-1: slot consumed (all index bits set)
	thresh3n  int64  // 3n-1
	remap     RemapFunc
	emulFAA   bool
	relaxed   bool // hot-path atomic diet enabled (DESIGN.md §11)

	threshold pad.Int64
	tail      pad.Uint64
	head      pad.Uint64

	entries []atomic.Uint64
}

// Option configures a Ring.
type Option func(*config)

type config struct {
	remap        RemapFunc
	full         bool
	emulFAA      bool
	conservative bool
}

// WithEmulatedFAA replaces hardware F&A and atomic OR with CAS loops,
// modeling LL/SC architectures (PowerPC/MIPS). Used by the Fig. 12
// experiment series.
func WithEmulatedFAA() Option { return func(c *config) { c.emulFAA = true } }

// WithRemap overrides the Cache_Remap permutation. Used by the remap
// ablation (experiment A4).
func WithRemap(f RemapFunc) Option { return func(c *config) { c.remap = f } }

// WithFull initializes the ring holding indices 0..n-1, the state the
// "free queue" of the indirection construction starts in.
func WithFull() Option { return func(c *config) { c.full = true } }

// WithConservativeAtomics disables the hot-path atomic diet (DESIGN.md
// §11), mirroring core.Options.ConservativeAtomics on the wCQ shapes:
// entry loads and the threshold re-arm guard run seq-cst, and batched
// dequeues keep the per-position threshold bookkeeping. (The empty
// fast-exit load is always a real atomic load, diet or not; see
// thresholdNonNegative.) The E5 diet ablation is the intended user.
func WithConservativeAtomics() Option { return func(c *config) { c.conservative = true } }

// maxCatchup bounds the catchup loop. In SCQ catchup is purely a
// contention optimization (§3.2 "Bounding catchup"), so bounding it is
// safe and is required for wCQ's wait-freedom.
const maxCatchup = 8

// NewRing creates a Ring of order k (n = 2^k usable entries, 2^(k+1)
// physical). Orders outside [1, 31] are rejected: the packed entry
// word must fit cycle+IsSafe+index in 64 bits with a useful cycle
// range.
func NewRing(order uint, opts ...Option) (*Ring, error) {
	if order < 1 || order > 31 {
		return nil, fmt.Errorf("scq: ring order %d out of range [1, 31]", order)
	}
	cfg := config{remap: bitops.Remap}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Ring{
		order:     order,
		ringOrder: order + 1,
		posMask:   1<<(order+1) - 1,
		idxBits:   order + 1,
		idxMask:   1<<(order+1) - 1,
		safeBit:   1 << (order + 1),
		cycShift:  order + 2,
		bottom:    1<<(order+1) - 2,
		bottomC:   1<<(order+1) - 1,
		thresh3n:  3*int64(1<<order) - 1,
		remap:     cfg.remap,
		emulFAA:   cfg.emulFAA,
		relaxed:   !cfg.conservative,
	}
	r.entries = make([]atomic.Uint64, 1<<r.ringOrder)
	if cfg.full {
		r.initFull()
	} else {
		r.initEmpty()
	}
	return r, nil
}

// MustRing is NewRing that panics on error, for tests and internal
// construction with known-good parameters.
func MustRing(order uint, opts ...Option) *Ring {
	r, err := NewRing(order, opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the usable capacity n.
func (r *Ring) N() uint64 { return 1 << r.order }

// Order returns the ring order k.
func (r *Ring) Order() uint { return r.order }

// Footprint returns the live bytes of ring-owned memory. Constant for
// the ring's lifetime: SCQ never allocates after construction.
func (r *Ring) Footprint() int64 { return int64(len(r.entries)) * 8 }

// pack builds an entry word. IsSafe occupies the bit just above the
// index field; the cycle takes the remaining high bits.
// wcq:noalloc
func (r *Ring) pack(cycle uint64, safe bool, index uint64) uint64 {
	w := cycle<<r.cycShift | index
	if safe {
		w |= r.safeBit
	}
	return w
}

// wcq:noalloc
func (r *Ring) entCycle(e uint64) uint64 { return e >> r.cycShift }
// wcq:noalloc
func (r *Ring) entIndex(e uint64) uint64 { return e & r.idxMask }
// wcq:noalloc
func (r *Ring) entSafe(e uint64) bool    { return e&r.safeBit != 0 }

// cycleOf maps a Head/Tail counter to its cycle number.
// wcq:noalloc
func (r *Ring) cycleOf(counter uint64) uint64 { return counter >> r.ringOrder }

// initEmpty resets to the canonical empty state: Tail = Head = 2n
// (cycle 1), every entry {Cycle: 0, IsSafe: 1, Index: ⊥},
// Threshold = −1.
func (r *Ring) initEmpty() {
	for i := range r.entries {
		r.entries[i].Store(r.pack(0, true, r.bottom))
	}
	twoN := uint64(1) << r.ringOrder
	r.head.Store(twoN)
	r.tail.Store(twoN)
	r.threshold.Store(-1)
}

// initFull initializes the ring holding indices 0..n-1: positions
// [0, n) of cycle 1 hold their own position as the index, Head points
// at position 0 of cycle 1 and Tail at position n of cycle 1.
func (r *Ring) initFull() {
	n := uint64(1) << r.order
	twoN := n * 2
	for p := uint64(0); p < n; p++ {
		j := r.remap(p, r.ringOrder)
		r.entries[j].Store(r.pack(1, true, p))
	}
	for p := n; p < twoN; p++ {
		j := r.remap(p, r.ringOrder)
		r.entries[j].Store(r.pack(0, true, r.bottom))
	}
	r.head.Store(twoN)
	r.tail.Store(twoN + n)
	r.threshold.Store(r.thresh3n)
}

// faa fetch-and-increments a counter, via hardware F&A or — under
// WithEmulatedFAA — the CAS loop an LL/SC machine effectively runs.
// wcq:noalloc
func (r *Ring) faa(w *pad.Uint64) uint64 {
	return r.faaAdd(w, 1)
}

// faaAdd fetch-and-adds k to a counter, reserving k consecutive
// positions with a single atomic instruction. This is the batched fast
// path's amortization point: one F&A for k operations.
// wcq:noalloc
func (r *Ring) faaAdd(w *pad.Uint64, k uint64) uint64 {
	if r.emulFAA {
		for {
			v := w.Load()
			if w.CompareAndSwap(v, v+k) {
				return v
			}
		}
	}
	return w.Add(k) - k
}

// loadEntry is the diet-gated entry load of the fast-path CAS loops
// (DESIGN.md §11): relaxed by default, because every consumer of the
// value either re-validates it with a CAS on the same word or fails
// conservatively; seq-cst under WithConservativeAtomics (the E5
// ablation's baseline build).
// wcq:noalloc
func (r *Ring) loadEntry(j uint64) uint64 {
	if r.relaxed {
		// wcq:relaxed-ok every consumer CASes the same entry word before acting (enq/deq retry loops) or fails conservatively; stale reads cost one retry, DESIGN.md §11
		return atomicx.RelaxedLoad(&r.entries[j])
	}
	return r.entries[j].Load()
}

// thresholdNonNegative stays a real atomic load even under the diet:
// the empty exit has no RMW on its path, so a relaxed load could be
// hoisted out of a caller's poll loop (see core.WCQ's twin for the
// full argument).
// wcq:noalloc
func (r *Ring) thresholdNonNegative() bool {
	return r.threshold.Load() >= 0
}

// rearmThreshold restores the dequeue budget after a successful
// enqueue. The re-arm is mandatory (skipping it can strand the value
// behind the threshold<0 fast-exit); the diet only relaxes the guard
// load — the store stays seq-cst, see core.WCQ.rearmThreshold for the
// real-time-linearizability argument, which is identical here.
// wcq:noalloc
func (r *Ring) rearmThreshold() {
	if r.relaxed {
		if atomicx.RelaxedLoadInt64(r.threshold.Raw()) == r.thresh3n {
			return
		}
	} else if r.threshold.Load() == r.thresh3n {
		return
	}
	if failpoint.Enabled {
		// Decay observed, re-arm store pending (see
		// core.WCQ.rearmThreshold).
		failpoint.Inject(failpoint.SCQThresholdRearm)
	}
	r.threshold.Store(r.thresh3n)
}

// orEntry atomically ORs mask into entry j.
// wcq:noalloc
func (r *Ring) orEntry(j uint64, mask uint64) {
	if r.emulFAA {
		for {
			e := r.entries[j].Load()
			if e&mask == mask || r.entries[j].CompareAndSwap(e, e|mask) {
				return
			}
		}
	}
	r.entries[j].Or(mask)
}

// TryEnq is one fast-path enqueue attempt (Figure 3, try_enq). It
// executes exactly one F&A on Tail. On success it returns (0, true);
// on failure it returns the tail counter that was tried, so wCQ's slow
// path can start from it.
// wcq:noalloc
func (r *Ring) TryEnq(index uint64) (tried uint64, ok bool) {
	t := r.faa(&r.tail)
	if failpoint.Enabled {
		// Reserved tail counter, entry not yet installed: the
		// stalled-enqueuer window (DISC '19 §4).
		failpoint.Inject(failpoint.SCQEnqReserved)
	}
	if r.enqAt(t, index) {
		return 0, true
	}
	return t, false
}

// enqAt is the body of try_enq at an already-reserved tail counter t:
// everything after the F&A. Leaving the entry untouched on failure is
// what makes reserved-but-abandoned tail positions safe — they are
// indistinguishable from a failed scalar attempt.
// wcq:noalloc
func (r *Ring) enqAt(t, index uint64) bool {
	j := r.remap(t&r.posMask, r.ringOrder)
	tcyc := r.cycleOf(t)
	for {
		e := r.loadEntry(j)
		idx := r.entIndex(e)
		if r.entCycle(e) < tcyc &&
			(r.entSafe(e) || r.head.Load() <= t) &&
			(idx == r.bottom || idx == r.bottomC) {
			if !r.entries[j].CompareAndSwap(e, r.pack(tcyc, true, index)) {
				continue // entry changed; re-evaluate (goto 21)
			}
			r.rearmThreshold()
			return true
		}
		return false
	}
}

// Enqueue inserts index, retrying F&A until a slot accepts it. Under
// the ≤ n live indices invariant this loop is lock-free and, in the
// absence of concurrent dequeuers racing the same slots, short.
// wcq:noalloc
func (r *Ring) Enqueue(index uint64) {
	for {
		if _, ok := r.TryEnq(index); ok {
			return
		}
	}
}

// DeqStatus is the outcome of one TryDeq attempt.
type DeqStatus int

// TryDeq outcomes.
const (
	DeqOK    DeqStatus = iota // index dequeued
	DeqEmpty                  // queue observed empty
	DeqRetry                  // lost a race; caller should retry
)

// TryDeq is one fast-path dequeue attempt (Figure 3, try_deq). It
// executes exactly one F&A on Head. tried is meaningful only for
// DeqRetry and is the head counter that was attempted.
// wcq:noalloc
func (r *Ring) TryDeq() (index uint64, status DeqStatus, tried uint64) {
	h := r.faa(&r.head)
	if failpoint.Enabled {
		failpoint.Inject(failpoint.SCQDeqReserved)
	}
	index, status = r.deqAt(h, false)
	if status == DeqRetry {
		tried = h
	}
	return index, status, tried
}

// deqAt is the body of try_deq at an already-reserved head counter h.
// Unlike the enqueue side, a reserved head position must always be
// processed: the slot has to be stamped with our cycle so a late
// producer of an older cycle cannot deposit a value no dequeuer will
// ever visit again.
//
// deferThreshold is DequeueBatch's diet mode (DESIGN.md §11): a lost
// race skips the threshold fetch-and-decrement and its <= -1 empty
// conclusion. Skipping only keeps the budget HIGHER than per-operation
// bookkeeping would — strictly conservative — while the precise
// tail-caught-head detection still recognizes a genuinely empty ring.
// wcq:noalloc
func (r *Ring) deqAt(h uint64, deferThreshold bool) (index uint64, status DeqStatus) {
	j := r.remap(h&r.posMask, r.ringOrder)
	hcyc := r.cycleOf(h)
	for {
		e := r.loadEntry(j)
		idx := r.entIndex(e)
		if r.entCycle(e) == hcyc {
			// The producer for this position/cycle arrived first:
			// consume by atomically setting all index bits (⊥c).
			r.orEntry(j, r.bottomC)
			return idx, DeqOK
		}
		var next uint64
		if idx == r.bottom || idx == r.bottomC {
			// Mark the slot with our cycle so a late producer of an
			// older cycle cannot use it.
			next = r.pack(hcyc, r.entSafe(e), r.bottom)
		} else {
			// The slot holds an old-cycle value: clear IsSafe so its
			// producer's late competitor cannot reuse the slot.
			next = r.pack(r.entCycle(e), false, idx)
		}
		if r.entCycle(e) < hcyc {
			if !r.entries[j].CompareAndSwap(e, next) {
				continue // entry changed; re-evaluate (goto 33)
			}
		}
		// Empty detection.
		t := r.tail.Load()
		if t <= h+1 {
			r.catchup(t, h+1)
			r.threshold.Add(-1)
			return 0, DeqEmpty
		}
		if deferThreshold {
			return 0, DeqRetry
		}
		if r.threshold.Add(-1) <= -1 { // F&A(&Threshold,-1) ≤ 0 on the old value
			return 0, DeqEmpty
		}
		return 0, DeqRetry
	}
}

// Dequeue removes and returns an index, or ok=false if the queue is
// empty.
// wcq:noalloc
func (r *Ring) Dequeue() (index uint64, ok bool) {
	if !r.thresholdNonNegative() {
		return 0, false
	}
	for {
		index, status, _ := r.TryDeq()
		switch status {
		case DeqOK:
			return index, true
		case DeqEmpty:
			return 0, false
		}
	}
}

// EnqueueBatch inserts all indices, reserving len(indices) consecutive
// tail positions with a single F&A. Slots lost to concurrent dequeuers
// are not retried out of order: the first straggler abandons the rest
// of the reservation (safe — untouched reserved positions are exactly
// failed scalar attempts) and the remaining indices are enqueued
// through the scalar path, preserving intra-batch FIFO order.
// wcq:noalloc
func (r *Ring) EnqueueBatch(indices []uint64) {
	k := uint64(len(indices))
	if k == 0 {
		return
	}
	if k == 1 {
		r.Enqueue(indices[0])
		return
	}
	t0 := r.faaAdd(&r.tail, k)
	for i, index := range indices {
		if !r.enqAt(t0+uint64(i), index) {
			// Straggler: the scalar path reserves fresh, later
			// positions, so everything still pending must follow it.
			for _, rest := range indices[i:] {
				r.Enqueue(rest)
			}
			return
		}
	}
}

// DequeueBatch removes up to len(out) indices, reserving the head
// positions with a single F&A, and returns how many were dequeued.
// Every reserved position is processed (see deqAt); positions lost to
// races are recovered through the scalar path after the reservation,
// which keeps out[] in FIFO order (recovered values always come from
// later head positions than the whole reservation).
// wcq:noalloc
func (r *Ring) DequeueBatch(out []uint64) int {
	k := uint64(len(out))
	if k == 0 {
		return 0
	}
	if !r.thresholdNonNegative() {
		return 0
	}
	if k == 1 {
		index, ok := r.Dequeue()
		if !ok {
			return 0
		}
		out[0] = index
		return 1
	}
	h0 := r.faaAdd(&r.head, k)
	n, retries := 0, 0
	for i := uint64(0); i < k; i++ {
		index, status := r.deqAt(h0+i, r.relaxed)
		switch status {
		case DeqOK:
			out[n] = index
			n++
		case DeqRetry:
			retries++
		}
	}
	for ; retries > 0 && n < len(out); retries-- {
		index, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = index
		n++
	}
	return n
}

// catchup advances Tail to head when dequeuers have overrun it
// (Figure 3, catchup), bounded per wCQ §3.2.
// wcq:noalloc
func (r *Ring) catchup(tail, head uint64) {
	for i := 0; i < maxCatchup; i++ {
		if r.tail.CompareAndSwap(tail, head) {
			return
		}
		head = r.head.Load()
		tail = r.tail.Load()
		if tail >= head {
			return
		}
	}
}

// Threshold returns the current threshold value (for tests and the
// unbounded queue's last-element handling).
func (r *Ring) Threshold() int64 { return r.threshold.Load() }

// ResetThreshold restores the threshold to 3n−1. The unbounded-queue
// outer layer (Appendix A, line 59) uses this when it knows a
// finalized ring still holds entries.
func (r *Ring) ResetThreshold() { r.threshold.Store(r.thresh3n) }

// Head and Tail expose the raw counters for tests and invariants.
func (r *Ring) Head() uint64 { return r.head.Load() }

// Tail returns the raw tail counter.
func (r *Ring) Tail() uint64 { return r.tail.Load() }
