package scq

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"wcqueue/internal/bitops"
	"wcqueue/internal/check"
)

func TestRingSequentialFIFO(t *testing.T) {
	r := MustRing(4) // n = 16
	for i := uint64(0); i < 16; i++ {
		r.Enqueue(i)
	}
	for i := uint64(0); i < 16; i++ {
		got, ok := r.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d: unexpectedly empty", i)
		}
		if got != i {
			t.Fatalf("Dequeue %d: got %d", i, got)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue on empty ring returned a value")
	}
}

func TestRingEmptyInitially(t *testing.T) {
	r := MustRing(3)
	if _, ok := r.Dequeue(); ok {
		t.Fatal("fresh ring is not empty")
	}
	if r.Threshold() >= 0 {
		t.Fatalf("fresh ring threshold = %d, want < 0", r.Threshold())
	}
}

func TestRingFullInit(t *testing.T) {
	r := MustRing(4, WithFull())
	seen := make(map[uint64]bool)
	for i := 0; i < 16; i++ {
		v, ok := r.Dequeue()
		if !ok {
			t.Fatalf("full-init ring empty after %d dequeues, want 16", i)
		}
		if v >= 16 {
			t.Fatalf("full-init ring yielded out-of-range index %d", v)
		}
		if seen[v] {
			t.Fatalf("full-init ring yielded duplicate index %d", v)
		}
		seen[v] = true
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("full-init ring held more than n indices")
	}
}

func TestRingWrapAroundManyCycles(t *testing.T) {
	r := MustRing(2) // n = 4: forces many cycles
	for round := uint64(0); round < 1000; round++ {
		for i := uint64(0); i < 4; i++ {
			r.Enqueue((round*4 + i) % 4) // indices must stay < n
		}
		for i := uint64(0); i < 4; i++ {
			got, ok := r.Dequeue()
			if !ok {
				t.Fatalf("round %d: empty at %d", round, i)
			}
			if got != (round*4+i)%4 {
				t.Fatalf("round %d pos %d: got %d want %d", round, i, got, (round*4+i)%4)
			}
		}
		if _, ok := r.Dequeue(); ok {
			t.Fatalf("round %d: ring not empty after draining", round)
		}
	}
}

func TestRingInterleavedEnqDeq(t *testing.T) {
	r := MustRing(3) // n = 8
	next, out := uint64(0), uint64(0)
	for i := 0; i < 500; i++ {
		for j := 0; j < (i%4)+1 && next-out < 8; j++ {
			r.Enqueue(next % 8)
			next++
		}
		for j := 0; j < (i%3)+1 && out < next; j++ {
			got, ok := r.Dequeue()
			if !ok {
				t.Fatalf("iter %d: unexpectedly empty (out=%d next=%d)", i, out, next)
			}
			if got != out%8 {
				t.Fatalf("iter %d: got %d want %d", i, got, out%8)
			}
			out++
		}
	}
}

func TestRingThresholdResetOnEnqueue(t *testing.T) {
	r := MustRing(4)
	r.Enqueue(1)
	want := 3*int64(16) - 1
	if got := r.Threshold(); got != want {
		t.Fatalf("threshold after enqueue = %d, want %d", got, want)
	}
	// Drain plus failed dequeues decrement it.
	r.Dequeue()
	r.Dequeue()
	if got := r.Threshold(); got >= want {
		t.Fatalf("threshold after empty dequeue = %d, want < %d", got, want)
	}
}

// queueLike adapts Ring to the concurrent harness below.
type queueLike interface {
	Enqueue(uint64)
	Dequeue() (uint64, bool)
}

type ringAdapter struct{ r *Ring }

func (a ringAdapter) Enqueue(v uint64)        { a.r.Enqueue(v) }
func (a ringAdapter) Dequeue() (uint64, bool) { return a.r.Dequeue() }

type queueAdapter struct{ q *Queue[uint64] }

func (a queueAdapter) Enqueue(v uint64) {
	for !a.q.Enqueue(v) {
		runtime.Gosched()
	}
}
func (a queueAdapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

// runMPMC drives producers×perProducer enqueues against the same
// number of dequeues spread over `consumers` goroutines, and verifies
// the streams.
func runMPMC(t *testing.T, q queueLike, producers, consumers int, perProducer uint64) {
	t.Helper()
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * perProducer
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]uint64, 0, total/uint64(consumers)+1)
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := uint64(0); s < perProducer; s++ {
				q.Enqueue(check.Encode(p, s))
			}
		}(p)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, perProducer).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueConcurrentMPMC(t *testing.T) {
	producers := 4
	consumers := 4
	per := uint64(20000)
	if testing.Short() {
		per = 2000
	}
	q := Must[uint64](12) // n = 4096
	runMPMC(t, queueAdapter{q}, producers, consumers, per)
}

func TestQueueConcurrentManyThreads(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skip("needs 2+ procs")
	}
	per := uint64(5000)
	if testing.Short() {
		per = 500
	}
	q := Must[uint64](10)
	runMPMC(t, queueAdapter{q}, n, n, per)
}

func TestQueueFullBehaviour(t *testing.T) {
	q := Must[uint64](3) // capacity 8
	for i := uint64(0); i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue accepted beyond capacity")
	}
	v, ok := q.Dequeue()
	if !ok || v != 0 {
		t.Fatalf("dequeue got (%d,%v), want (0,true)", v, ok)
	}
	if !q.Enqueue(8) {
		t.Fatal("enqueue rejected after a slot freed")
	}
}

func TestQueueGenericTypes(t *testing.T) {
	type payload struct {
		A string
		B int
	}
	q := Must[payload](4)
	if !q.Enqueue(payload{"x", 1}) {
		t.Fatal("enqueue failed")
	}
	got, ok := q.Dequeue()
	if !ok || got.A != "x" || got.B != 1 {
		t.Fatalf("dequeue got (%+v,%v)", got, ok)
	}
}

func TestNewRingRejectsBadOrder(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := NewRing(32); err == nil {
		t.Fatal("order 32 accepted")
	}
}

func TestRingEntryPackRoundTrip(t *testing.T) {
	r := MustRing(6)
	f := func(cycle uint64, safe bool, index uint64) bool {
		cycle &= (1 << (64 - r.cycShift)) - 1
		index &= r.idxMask
		e := r.pack(cycle, safe, index)
		return r.entCycle(e) == cycle && r.entSafe(e) == safe && r.entIndex(e) == index
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemapIsBijective(t *testing.T) {
	for _, order := range []uint{1, 3, 4, 7, 10} {
		seen := make(map[uint64]bool)
		for i := uint64(0); i < 1<<order; i++ {
			j := bitops.Remap(i, order)
			if j >= 1<<order {
				t.Fatalf("order %d: Remap(%d)=%d out of range", order, i, j)
			}
			if seen[j] {
				t.Fatalf("order %d: Remap collision at %d", order, i)
			}
			seen[j] = true
		}
	}
}

func TestRingFootprintConstant(t *testing.T) {
	r := MustRing(8)
	before := r.Footprint()
	for i := 0; i < 1000; i++ {
		r.Enqueue(uint64(i % 256))
		r.Dequeue()
	}
	if r.Footprint() != before {
		t.Fatalf("footprint changed %d -> %d", before, r.Footprint())
	}
}

func TestQueueConservativeAtomicsMPMC(t *testing.T) {
	// WithConservativeAtomics builds the seq-cst (diet-off) ring — the
	// E5 ablation baseline. Same MPMC verification as the diet build.
	per := uint64(10000)
	if testing.Short() {
		per = 1000
	}
	q := Must[uint64](10, WithConservativeAtomics())
	runMPMC(t, queueAdapter{q}, 4, 4, per)
}

func TestRingConservativeAtomicsBatch(t *testing.T) {
	q := Must[uint64](6, WithConservativeAtomics())
	vs := make([]uint64, 16)
	out := make([]uint64, 16)
	next, want := uint64(0), uint64(0)
	for round := 0; round < 50; round++ {
		for i := range vs {
			vs[i] = next
			next++
		}
		if n := q.EnqueueBatch(vs); n != len(vs) {
			t.Fatalf("round %d: EnqueueBatch = %d", round, n)
		}
		if n := q.DequeueBatch(out); n != len(out) {
			t.Fatalf("round %d: DequeueBatch = %d", round, n)
		}
		for _, v := range out {
			if v != want {
				t.Fatalf("got %d want %d", v, want)
			}
			want++
		}
	}
}
