// Blocking operations and close/drain semantics for the unbounded
// queue, mirroring core's (DESIGN.md §10). The queue can never fill,
// so only dequeuers park; EnqueueWait exists for API symmetry and
// reduces to a closed check plus the lock-free enqueue.
package unbounded

import (
	"context"
	"runtime"

	"wcqueue/internal/core"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/waitq"
)

// Close states, as in core: enqueues fail from closing on; only
// sealed (published after in-flight enqueues quiesce) lets a dequeuer
// turn an empty observation into ErrClosed.
const (
	stateOpen uint32 = iota
	stateClosing
	stateSealed
)

// waiter returns the handle's parking token, allocated on first use.
func (h *Handle) waiter() *waitq.Waiter {
	if h.w == nil {
		h.w = waitq.NewWaiter()
	}
	return h.w
}

// Close closes the queue: subsequent enqueues fail and dequeuers drain
// the remaining values before observing core.ErrClosed. Blocks until
// in-flight enqueues retire, so every value whose enqueue reported
// success is delivered. Idempotent; concurrent callers wait for the
// first to finish sealing.
func (q *Queue[T]) Close() {
	if !q.state.CompareAndSwap(stateOpen, stateClosing) {
		for q.state.Load() != stateSealed {
			runtime.Gosched()
		}
		return
	}
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreCloseClosing)
	}
	q.flags.Quiesce()
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreClosePreSeal)
	}
	q.state.Store(stateSealed)
	q.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.state.Load() != stateOpen }

// WaitStats reports the blocking layer's telemetry. Enqueuers never
// park on an unbounded queue (see EnqueueWait), so the enqueue-side
// gauge is definitionally zero and only the dequeue eventcount
// contributes.
func (q *Queue[T]) WaitStats() core.WaitStats {
	return core.WaitStats{
		DeqWaiters: q.notEmpty.Waiters(),
		Waits:      q.notEmpty.Waits(),
		Wakes:      q.notEmpty.Wakes(),
	}
}

// EnqueueWait appends v. The queue is never full, so this path is
// GUARANTEED never to park: no waitq Prepare, no Wait — it is exactly
// a context pre-check, the lock-free Enqueue, and a closed check. The
// only eventcount interaction is the wake side (Enqueue signals
// notEmpty), which with no parked dequeuer is a single atomic load —
// so an enqueuer with no one to wake never touches the eventcount's
// mutex at all (TestEnqueueWaitNeverParks pins this by wedging the
// mutex and enqueuing through it). ctx is consulted only up front —
// an already-expired context must not publish (the no-phantom-
// delivery contract the admission layer accounts on); after that it
// returns nil on success or core.ErrClosed.
func (q *Queue[T]) EnqueueWait(ctx context.Context, h *Handle, v T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if q.Enqueue(h, v) {
		return nil
	}
	return core.ErrClosed
}

// DequeueWait removes the oldest value, blocking while the queue is
// empty. Returns the value, core.ErrClosed once the queue is closed
// and drained, or ctx.Err() if the context is done first. Values
// already in the queue are always delivered before ErrClosed.
func (q *Queue[T]) DequeueWait(ctx context.Context, h *Handle) (T, error) {
	// Expired-context pre-check, as in core: return ctx.Err() before
	// consuming anything so no value is dequeued into an error return.
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}
	if v, ok := q.Dequeue(h); ok {
		return v, nil
	}
	for i := 0; waitq.Spin(i); i++ {
		if v, ok := q.Dequeue(h); ok {
			return v, nil
		}
		if q.state.Load() == stateSealed {
			break
		}
	}
	w := h.waiter()
	for {
		q.notEmpty.Prepare(w)
		if failpoint.Enabled {
			failpoint.Inject(failpoint.BlockingDeqPrepared)
		}
		if v, ok := q.Dequeue(h); ok {
			q.notEmpty.Cancel(w)
			return v, nil
		}
		if q.state.Load() == stateSealed {
			q.notEmpty.Cancel(w)
			// One attempt after observing sealed is conclusive: no
			// enqueue can land past the seal.
			if v, ok := q.Dequeue(h); ok {
				return v, nil
			}
			var zero T
			return zero, core.ErrClosed
		}
		if err := q.notEmpty.Wait(ctx, w); err != nil {
			var zero T
			return zero, err
		}
	}
}
