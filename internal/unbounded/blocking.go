// Blocking operations and close/drain semantics for the unbounded
// queue, mirroring core's (DESIGN.md §10). The queue can never fill,
// so only dequeuers park; EnqueueWait exists for API symmetry and
// reduces to a closed check plus the lock-free enqueue.
package unbounded

import (
	"context"
	"runtime"

	"wcqueue/internal/core"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/waitq"
)

// Close states, as in core: enqueues fail from closing on; only
// sealed (published after in-flight enqueues quiesce) lets a dequeuer
// turn an empty observation into ErrClosed.
const (
	stateOpen uint32 = iota
	stateClosing
	stateSealed
)

// waiter returns the handle's parking token, allocated on first use.
func (h *Handle) waiter() *waitq.Waiter {
	if h.w == nil {
		h.w = waitq.NewWaiter()
	}
	return h.w
}

// Close closes the queue: subsequent enqueues fail and dequeuers drain
// the remaining values before observing core.ErrClosed. Blocks until
// in-flight enqueues retire, so every value whose enqueue reported
// success is delivered. Idempotent; concurrent callers wait for the
// first to finish sealing.
func (q *Queue[T]) Close() {
	if !q.state.CompareAndSwap(stateOpen, stateClosing) {
		for q.state.Load() != stateSealed {
			runtime.Gosched()
		}
		return
	}
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreCloseClosing)
	}
	q.flags.Quiesce()
	if failpoint.Enabled {
		failpoint.Inject(failpoint.CoreClosePreSeal)
	}
	q.state.Store(stateSealed)
	q.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.state.Load() != stateOpen }

// EnqueueWait appends v. The queue is never full, so the only blocking
// this does is none at all: it returns nil on success or
// core.ErrClosed if the queue is closed. ctx is accepted for signature
// symmetry with the bounded shapes.
func (q *Queue[T]) EnqueueWait(ctx context.Context, h *Handle, v T) error {
	if q.Enqueue(h, v) {
		return nil
	}
	return core.ErrClosed
}

// DequeueWait removes the oldest value, blocking while the queue is
// empty. Returns the value, core.ErrClosed once the queue is closed
// and drained, or ctx.Err() if the context is done first. Values
// already in the queue are always delivered before ErrClosed.
func (q *Queue[T]) DequeueWait(ctx context.Context, h *Handle) (T, error) {
	if v, ok := q.Dequeue(h); ok {
		return v, nil
	}
	for i := 0; waitq.Spin(i); i++ {
		if v, ok := q.Dequeue(h); ok {
			return v, nil
		}
		if q.state.Load() == stateSealed {
			break
		}
	}
	w := h.waiter()
	for {
		q.notEmpty.Prepare(w)
		if failpoint.Enabled {
			failpoint.Inject(failpoint.BlockingDeqPrepared)
		}
		if v, ok := q.Dequeue(h); ok {
			q.notEmpty.Cancel(w)
			return v, nil
		}
		if q.state.Load() == stateSealed {
			q.notEmpty.Cancel(w)
			// One attempt after observing sealed is conclusive: no
			// enqueue can land past the seal.
			if v, ok := q.Dequeue(h); ok {
				return v, nil
			}
			var zero T
			return zero, core.ErrClosed
		}
		if err := q.notEmpty.Wait(ctx, w); err != nil {
			var zero T
			return zero, err
		}
	}
}
