package unbounded

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/internal/core"
)

// TestCloseFailsEnqueuesAndDrains covers the close contract end to
// end on one goroutine: enqueues fail after Close, the backlog drains
// in FIFO order, then ErrClosed.
func TestCloseFailsEnqueuesAndDrains(t *testing.T) {
	q := Must[uint64](3, 0, core.Options{}) // small rings: backlog spans several
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	const n = 50
	for i := uint64(0); i < n; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("enqueue %d failed on open queue", i)
		}
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.Enqueue(h, 999) {
		t.Fatal("enqueue succeeded after Close")
	}
	if got := q.EnqueueBatch(h, []uint64{1, 2}); got != 0 {
		t.Fatalf("EnqueueBatch after Close = %d", got)
	}
	if err := q.EnqueueWait(context.Background(), h, 999); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("EnqueueWait after Close = %v", err)
	}
	for i := uint64(0); i < n; i++ {
		v, err := q.DequeueWait(context.Background(), h)
		if err != nil || v != i {
			t.Fatalf("drain %d: (%d, %v)", i, v, err)
		}
	}
	if _, err := q.DequeueWait(context.Background(), h); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("drained dequeue = %v, want ErrClosed", err)
	}
}

// TestDequeueWaitWakesAcrossRingHop parks a consumer and wakes it with
// an enqueue that lands in a freshly appended ring (order-1 rings make
// every enqueue hop), exercising the signal on the slow enqueue path.
func TestDequeueWaitWakesAcrossRingHop(t *testing.T) {
	q := Must[uint64](1, 0, core.Options{})
	hc, _ := q.Register()
	hp, _ := q.Register()
	defer q.Unregister(hc)
	defer q.Unregister(hp)
	// Pre-fill and drain so head/tail sit mid-ring.
	for i := uint64(0); i < 3; i++ {
		q.Enqueue(hp, i)
	}
	for i := uint64(0); i < 3; i++ {
		if _, ok := q.Dequeue(hp); !ok {
			t.Fatal("prefill drain failed")
		}
	}
	got := make(chan uint64, 1)
	go func() {
		v, err := q.DequeueWait(context.Background(), hc)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if !q.Enqueue(hp, 7) {
		t.Fatal("enqueue failed")
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("got %d, want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked consumer missed the enqueue")
	}
}

// TestCloseWakesParkedConsumers parks several consumers on an empty
// queue; Close must wake all of them with ErrClosed.
func TestCloseWakesParkedConsumers(t *testing.T) {
	q := Must[uint64](4, 0, core.Options{})
	const parked = 4
	errc := make(chan error, parked)
	for i := 0; i < parked; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		go func(h *Handle) {
			defer q.Unregister(h)
			_, err := q.DequeueWait(context.Background(), h)
			errc <- err
		}(h)
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < parked; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, core.ErrClosed) {
				t.Fatalf("parked consumer woke with %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close stranded a parked consumer")
		}
	}
}

// TestDequeueWaitContextCancel unblocks a parked consumer via context
// and leaves the queue usable.
func TestDequeueWaitContextCancel(t *testing.T) {
	q := Must[uint64](4, 0, core.Options{})
	h, _ := q.Register()
	defer q.Unregister(h)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.DequeueWait(ctx, h)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock DequeueWait")
	}
	q.Enqueue(h, 5)
	if v, err := q.DequeueWait(context.Background(), h); err != nil || v != 5 {
		t.Fatalf("after cancel: (%d, %v)", v, err)
	}
}

// TestCloseDrainExactlyOnceAcrossRings runs the mid-run-close
// accounting with tiny rings so the backlog spans ring hops and
// recycling while draining. Runs under -race in CI.
func TestCloseDrainExactlyOnceAcrossRings(t *testing.T) {
	const producers, consumers = 3, 3
	q := Must[uint64](2, 0, core.Options{})
	var accepted atomic.Uint64
	var wg, pwg sync.WaitGroup
	streams := make([][]uint64, consumers)

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			var local []uint64
			for {
				v, err := q.DequeueWait(context.Background(), h)
				if err != nil {
					if !errors.Is(err, core.ErrClosed) {
						t.Errorf("consumer %d: %v", c, err)
					}
					streams[c] = local
					return
				}
				local = append(local, v)
			}
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		pwg.Add(1)
		go func(p int, h *Handle) {
			defer pwg.Done()
			defer q.Unregister(h)
			for s := uint64(0); ; s++ {
				if !q.Enqueue(h, uint64(p)<<32|s) {
					return // closed
				}
				accepted.Add(1)
			}
		}(p, h)
	}

	time.Sleep(20 * time.Millisecond)
	q.Close()
	pwg.Wait()
	wg.Wait()

	seen := make(map[uint64]bool)
	for _, s := range streams {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			seen[v] = true
		}
	}
	if uint64(len(seen)) != accepted.Load() {
		t.Fatalf("accepted %d, delivered %d", accepted.Load(), len(seen))
	}
}

// TestEnqueueWaitNeverParks pins the unbounded short-circuit guarantee
// (blocking.go): EnqueueWait never touches the park machinery. The
// proof is mechanical — the test wedges the notEmpty eventcount's
// mutex (every Prepare, Cancel, and wake blocks on it) and runs a
// burst of EnqueueWaits straight through the wedge. Any code path that
// armed a waiter, parked, or tried to wake one (there is no parked
// dequeuer, so the signal side stays a lone atomic load) would
// deadlock here and trip the watchdog timeout.
func TestEnqueueWaitNeverParks(t *testing.T) {
	q := Must[uint64](4, 0, core.Options{})
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)

	unwedge := q.notEmpty.Wedge()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 100; i++ {
			if err := q.EnqueueWait(context.Background(), h, i); err != nil {
				t.Errorf("EnqueueWait under wedge: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("EnqueueWait blocked on the wedged eventcount: the unbounded path touched the park machinery")
	}
	unwedge()

	// And the expired-ctx pre-check holds on the short-circuit path too:
	// no phantom publish past the 100 accepted values.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.EnqueueWait(cancelled, h, 999); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnqueueWait(cancelled) = %v, want context.Canceled", err)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("drain[%d] = %d,%v", i, v, ok)
		}
	}
	if v, ok := q.Dequeue(h); ok {
		t.Fatalf("phantom value %d published under a cancelled ctx", v)
	}
}
