// Unbounded composition of direct-value rings (DESIGN.md §11).
//
// DirectQueue is the Appendix A list construction with
// core.DirectRing segments instead of {aq, fq, data} triples: the tail
// ring absorbs enqueues until it fills or exhausts its cycle-wrap
// operation budget (the ring fail-stops at MaxOps — an op-count
// tantrum in the spirit of the LCRQ starvation tantrum, needed because
// the packed entry's narrow cycle field would otherwise wrap and go
// ABA under a balanced workload that never fills the ring), gets
// finalized, and a recycled or fresh ring is appended; dequeuers drain
// finalized rings, re-arm the threshold once for stragglers, and
// unlink. Retired rings ride the SAME recycling design as the
// indirect queue — a hazard-pointer domain feeding a bounded pool, so
// steady-state hops are allocation-free and Footprint stays flat —
// but each pooled item is a single ring (one 2n-entry word array)
// instead of two rings plus a data array, so the standby inventory is
// roughly a third the bytes at equal order.
//
// Per-transfer cost: one ring operation instead of the indirect
// queue's four (fq dequeue + aq enqueue + aq dequeue + fq enqueue),
// on top of the same hazard-protection overhead. Progress: lock-free
// (per-ring lock-free fast path; ring hops are the same lock-free
// outer list). Payload width is fixed at construction
// (core.MaxDirectValueBits at most); the typed codec layer lives in
// the public wcq package.
package unbounded

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/core"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/hazard"
	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// dnode is one finalizable direct ring in the outer list.
type dnode struct {
	r    *core.DirectRing
	next atomic.Pointer[dnode]
}

// DirectQueue is the unbounded MPMC queue of direct values.
type DirectQueue struct {
	_    pad.DoublePad
	head atomic.Pointer[dnode]
	_    pad.DoublePad
	tail atomic.Pointer[dnode]
	_    pad.DoublePad

	order      uint
	valBits    uint
	maxHandles int
	opts       core.Options
	ringFoot   int64

	dom      *hazard.Domain
	pool     []atomic.Pointer[dnode]
	freeRing func(unsafe.Pointer)

	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	poolDrops  atomic.Uint64

	alloc core.SlotAlloc
	mem   memtrack.Counter
}

// DirectHandle is a registered thread slot of a DirectQueue. Unlike
// the bounded direct ring — which is handle-free — the unbounded
// composition needs per-thread hazard slots, so traversals go through
// a handle.
type DirectHandle struct {
	tid int
	// hp mirrors the ring published in the tid's hazard slot 0 so an
	// unchanged ring skips the seq-cst re-publish (same caching as the
	// indirect queue's Handle). Owned by the handle's goroutine.
	hp unsafe.Pointer
}

// NewDirect creates an unbounded direct-value queue whose rings hold
// 2^order payloads of valueBits bits each. Up to poolSize drained
// rings are retained for reuse (<= 0 selects DefaultPoolSize).
func NewDirect(order, valueBits uint, poolSize int, opts core.Options) (*DirectQueue, error) {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	maxHandles := opts.MaxHandles
	if maxHandles == 0 {
		maxHandles = int(atomicx.MaxOwners)
	}
	if maxHandles < 1 || uint64(maxHandles) > atomicx.MaxOwners {
		return nil, fmt.Errorf("unbounded: MaxHandles %d out of range [1, %d]", maxHandles, atomicx.MaxOwners)
	}
	q := &DirectQueue{
		order:      order,
		valBits:    valueBits,
		maxHandles: maxHandles,
		opts:       opts,
		dom:        hazard.NewDomain(maxHandles),
		pool:       make([]atomic.Pointer[dnode], poolSize),
		alloc:      core.NewSlotAlloc(maxHandles),
	}
	q.freeRing = func(p unsafe.Pointer) { q.poolPut((*dnode)(p)) }
	first, err := q.newRing()
	if err != nil {
		return nil, err
	}
	q.head.Store(first)
	q.tail.Store(first)
	return q, nil
}

// MustDirect is NewDirect that panics on error.
func MustDirect(order, valueBits uint, poolSize int, opts core.Options) *DirectQueue {
	q, err := NewDirect(order, valueBits, poolSize, opts)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *DirectQueue) newRing() (*dnode, error) {
	r, err := core.NewDirectRing(q.order, q.valBits, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating direct ring: %w", err)
	}
	if q.ringFoot == 0 {
		q.ringFoot = r.Footprint() // constant per ring: no arena, no data array
	}
	q.mem.Alloc(q.ringFoot)
	return &dnode{r: r}, nil
}

// getRing produces the ring for a hop: pooled and reset when possible,
// newly allocated otherwise (after pulling the caller's retire list
// forward, exactly as the indirect queue does).
// wcq:noalloc
func (q *DirectQueue) getRing(tid int) (*dnode, error) {
	if n := q.poolGet(); n != nil {
		q.poolHits.Add(1)
		n.r.Reset()
		return n, nil
	}
	q.dom.Scan(tid)
	if n := q.poolGet(); n != nil {
		q.poolHits.Add(1)
		n.r.Reset()
		return n, nil
	}
	q.poolMisses.Add(1)
	// wcq:alloc-ok pool-miss ring allocation on the hop path; steady state recycles from the standby pool (RingStats tracks the miss rate)
	return q.newRing()
}

// wcq:noalloc
func (q *DirectQueue) poolGet() *dnode {
	for i := range q.pool {
		if n := q.pool[i].Load(); n != nil && q.pool[i].CompareAndSwap(n, nil) {
			return n
		}
	}
	return nil
}

// poolPut stashes a quiescent ring for reuse (dropping its stale next
// pointer), or drops it to the GC when the pool is full. Entry words
// are left as-is — they are plain bits, not references, so a pooled
// direct ring cannot keep user objects live; Reset rewrites them on
// reuse.
// wcq:noalloc
func (q *DirectQueue) poolPut(n *dnode) {
	n.next.Store(nil)
	for i := range q.pool {
		if q.pool[i].Load() == nil && q.pool[i].CompareAndSwap(nil, n) {
			return
		}
	}
	q.poolDrops.Add(1)
	q.mem.Free(q.ringFoot)
}

func (q *DirectQueue) retireRing(tid int, n *dnode) {
	q.dom.Retire(tid, unsafe.Pointer(n), q.freeRing)
}

// protect publishes a validated hazard pointer to *src in the handle's
// slot 0, skipping the seq-cst store when the slot already covers the
// ring (see Queue.protect — the protocol is identical).
// wcq:noalloc
func (q *DirectQueue) protect(h *DirectHandle, src *atomic.Pointer[dnode]) *dnode {
	for {
		n := src.Load()
		if p := unsafe.Pointer(n); h.hp != p {
			q.dom.Protect(h.tid, 0, p)
			h.hp = p
		}
		if failpoint.Enabled {
			// Same window as Queue.protect: hazard published,
			// re-validation pending.
			failpoint.Inject(failpoint.UnboundedProtect)
		}
		if src.Load() == n {
			return n
		}
	}
}

// Register claims a thread slot, valid on every ring.
func (q *DirectQueue) Register() (*DirectHandle, error) {
	tid, err := q.alloc.Acquire()
	if err != nil {
		return nil, fmt.Errorf("unbounded: %w", err)
	}
	q.dom.SetActive(q.alloc.Live())
	return &DirectHandle{tid: tid}, nil
}

// Unregister releases a thread slot, clearing its hazard slot and
// scanning its retire list so retired rings reach the pool.
func (q *DirectQueue) Unregister(h *DirectHandle) {
	q.dom.Clear(h.tid)
	h.hp = nil
	q.dom.Scan(h.tid)
	q.alloc.Release(h.tid)
	q.dom.SetActive(q.alloc.Live())
}

// Enqueue appends v. Always succeeds (capacity never runs out);
// lock-free. v must fit the queue's payload width.
// wcq:noalloc
func (q *DirectQueue) Enqueue(h *DirectHandle, v uint64) {
	for {
		lt := q.protect(h, &q.tail)
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		if lt.r.Enqueue(v) {
			return
		}
		// Full, finalized, or out of op budget (the ring's MaxOps
		// fail-stop): close the ring (idempotent) so dequeuers can
		// unlink it, and append a recycled or fresh ring carrying v.
		lt.r.Finalize()
		nr, err := q.getRing(h.tid)
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		if !nr.r.Enqueue(v) {
			panic("unbounded: enqueue on a fresh direct ring failed")
		}
		if failpoint.Enabled {
			failpoint.Inject(failpoint.UnboundedHopPrepared)
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			return
		}
		// Lost the append race; the ring was never published, so it
		// goes straight back to the pool and v retries into the
		// winner's ring.
		q.poolPut(nr)
	}
}

// EnqueueBatch appends all values in order (the queue cannot fill, so
// the count is always len(vs)); the tail reservation is amortized over
// each ring's share of the batch. Lock-free.
// wcq:noalloc
func (q *DirectQueue) EnqueueBatch(h *DirectHandle, vs []uint64) int {
	total := len(vs)
	for len(vs) > 0 {
		lt := q.protect(h, &q.tail)
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		if n := lt.r.EnqueueBatch(vs); n > 0 {
			vs = vs[n:]
			continue
		}
		lt.r.Finalize()
		nr, err := q.getRing(h.tid)
		if err != nil {
			panic(err)
		}
		n := nr.r.EnqueueBatch(vs)
		if n == 0 {
			panic("unbounded: batch enqueue on a fresh direct ring failed")
		}
		if failpoint.Enabled {
			failpoint.Inject(failpoint.UnboundedHopPrepared)
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			vs = vs[n:]
			continue
		}
		// Lost the append race; our ring was never published, so its
		// values are safe to retry into the winner's ring.
		q.poolPut(nr)
	}
	return total
}

// Dequeue removes the oldest value, or returns ok=false when the whole
// queue is observed empty. Lock-free; the unlink protocol (threshold
// re-arm, second drain, hazard-protected head CAS) is the indirect
// queue's, verbatim.
// wcq:noalloc
func (q *DirectQueue) Dequeue(h *DirectHandle) (v uint64, ok bool) {
	for {
		lh := q.protect(h, &q.head)
		if v, ok := lh.r.Dequeue(); ok {
			return v, true
		}
		if lh.next.Load() == nil {
			return 0, false // no successor: genuinely empty
		}
		// Finalized predecessor: re-arm the threshold and drain once
		// more before unlinking (Figure 13, lines 59-63).
		lh.r.ResetThreshold()
		if v, ok := lh.r.Dequeue(); ok {
			return v, true
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			if failpoint.Enabled {
				failpoint.Inject(failpoint.UnboundedUnlinked)
			}
			// wcq:alloc-ok ring-hop boundary, once per ring lifetime, not per operation; hazard-domain retirement may defer frees
			q.retireRing(h.tid, lh) // unlinked: recycle through the pool
		}
	}
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, returning how many were dequeued.
// wcq:noalloc
func (q *DirectQueue) DequeueBatch(h *DirectHandle, out []uint64) int {
	if len(out) == 0 {
		return 0
	}
	for {
		lh := q.protect(h, &q.head)
		if n := lh.r.DequeueBatch(out); n > 0 {
			return n
		}
		if lh.next.Load() == nil {
			return 0
		}
		lh.r.ResetThreshold()
		if n := lh.r.DequeueBatch(out); n > 0 {
			return n
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			if failpoint.Enabled {
				failpoint.Inject(failpoint.UnboundedUnlinked)
			}
			// wcq:alloc-ok ring-hop boundary, once per ring lifetime, not per operation; hazard-domain retirement may defer frees
			q.retireRing(h.tid, lh)
		}
	}
}

// ValueBits returns the payload width.
func (q *DirectQueue) ValueBits() uint { return q.valBits }

// MaxOps returns the per-ring operation budget. The rings enforce it
// (Enqueue fail-stops at the bound), which forces a finalize-and-hop,
// and Reset on pool reuse renews it — so the queue as a whole has no
// operation limit.
func (q *DirectQueue) MaxOps() uint64 { return q.head.Load().r.MaxOps() }

// Footprint returns live queue-owned bytes: linked rings plus standby
// inventory (pooled and retired rings).
func (q *DirectQueue) Footprint() int64 { return q.mem.Live() }

// PeakFootprint returns the lifetime high-water mark of Footprint.
func (q *DirectQueue) PeakFootprint() int64 { return q.mem.Peak() }

// PoolCap returns the ring-pool capacity.
func (q *DirectQueue) PoolCap() int { return len(q.pool) }

// RingStats reports the recycling counters (hits, allocating misses,
// drops); flat misses in steady state are the allocation-free claim.
func (q *DirectQueue) RingStats() (hits, misses, drops uint64) {
	return q.poolHits.Load(), q.poolMisses.Load(), q.poolDrops.Load()
}

// RetiredRings reports rings awaiting hazard reclamation.
func (q *DirectQueue) RetiredRings() int { return q.dom.RetiredCount() }

// LiveHandles returns the number of currently registered handles.
func (q *DirectQueue) LiveHandles() int { return q.alloc.Live() }

// HandleHighWater returns the largest number of handle slots ever live
// at once.
func (q *DirectQueue) HandleHighWater() int { return q.alloc.HighWater() }
