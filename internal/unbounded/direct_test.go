package unbounded

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
	"wcqueue/internal/core"
)

func newDirectQ(t *testing.T, order uint, poolSize int) *DirectQueue {
	t.Helper()
	q, err := NewDirect(order, 52, poolSize, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestDirectUnboundedSequentialAcrossHops(t *testing.T) {
	q := newDirectQ(t, 2, 4) // 4-slot rings: every burst hops
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained queue non-empty")
	}
}

func TestDirectUnboundedBatchAcrossHops(t *testing.T) {
	q := newDirectQ(t, 3, 4)
	h, _ := q.Register()
	defer q.Unregister(h)
	const n = 3000
	vs := make([]uint64, 64)
	next := uint64(0)
	for next < n {
		k := min(uint64(len(vs)), n-next)
		for i := uint64(0); i < k; i++ {
			vs[i] = next + i
		}
		if got := q.EnqueueBatch(h, vs[:k]); got != int(k) {
			t.Fatalf("EnqueueBatch(%d) = %d", k, got)
		}
		next += k
	}
	out := make([]uint64, 48)
	want := uint64(0)
	for want < n {
		m := q.DequeueBatch(h, out)
		if m == 0 {
			t.Fatalf("empty with %d remaining", n-want)
		}
		for _, v := range out[:m] {
			if v != want {
				t.Fatalf("got %d want %d", v, want)
			}
			want++
		}
	}
	if m := q.DequeueBatch(h, out); m != 0 {
		t.Fatalf("drained queue yielded %d more", m)
	}
}

func TestDirectUnboundedMPMCAccounting(t *testing.T) {
	q := newDirectQ(t, 4, 32)
	const producers, consumers = 3, 3
	per := uint64(20000)
	if testing.Short() {
		per = 2000
	}
	total := producers * per
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))
	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *DirectHandle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / consumers
			if c == 0 {
				budget += total % consumers
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *DirectHandle) {
			defer wg.Done()
			defer q.Unregister(h)
			for s := uint64(0); s < per; s++ {
				q.Enqueue(h, check.Encode(p, s))
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectUnboundedRecyclingBounded(t *testing.T) {
	// Steady churn on tiny rings: after warm-up, hops must be served
	// from the pool (flat misses) and the footprint must stay flat.
	q := newDirectQ(t, 2, 8)
	h, _ := q.Register()
	defer q.Unregister(h)
	churn := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for i := uint64(0); i < 32; i++ {
				q.Enqueue(h, i)
			}
			for i := uint64(0); i < 32; i++ {
				if _, ok := q.Dequeue(h); !ok {
					t.Fatal("lost a value during churn")
				}
			}
		}
	}
	churn(20) // warm the pool
	_, warmMisses, _ := q.RingStats()
	peakBefore := q.PeakFootprint()
	churn(200)
	hits, misses, _ := q.RingStats()
	if misses != warmMisses {
		t.Fatalf("steady-state churn allocated rings: misses %d -> %d (hits %d)", warmMisses, misses, hits)
	}
	if hits == 0 {
		t.Fatal("no pool hits despite churn across hops")
	}
	if peak := q.PeakFootprint(); peak != peakBefore {
		t.Fatalf("footprint grew under steady churn: peak %d -> %d", peakBefore, peak)
	}
	if q.Footprint() <= 0 {
		t.Fatalf("Footprint = %d", q.Footprint())
	}
}

func TestDirectUnboundedHandleChurn(t *testing.T) {
	q := newDirectQ(t, 3, 4)
	for i := 0; i < 200; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(h, uint64(i))
		if v, ok := q.Dequeue(h); !ok || v != uint64(i) {
			t.Fatalf("cycle %d: got (%d,%v)", i, v, ok)
		}
		q.Unregister(h)
	}
	if hw := q.HandleHighWater(); hw != 1 {
		t.Fatalf("handle churn grew high-water to %d, want 1", hw)
	}
}

func TestDirectUnboundedOpBudgetHops(t *testing.T) {
	// Order-1, 52-bit rings carry the tightest per-ring budget
	// (MaxOps = 2044). This balanced workload keeps occupancy at one
	// value, so the tail ring never fills and nothing but the op-count
	// tantrum forces a hop; without it the ring's 10-bit cycle field
	// would wrap around iteration ~4k and the entCycle comparisons
	// would go ABA. Running several budgets' worth of traffic checks
	// that exhausted rings finalize, the queue hops, and FIFO survives.
	q, err := NewDirect(1, 52, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	iters := 4 * q.MaxOps()
	for i := uint64(0); i < iters; i++ {
		q.Enqueue(h, i)
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("iter %d: got (%d,%v)", i, v, ok)
		}
	}
	hits, misses, _ := q.RingStats()
	if hits+misses < 3 {
		t.Fatalf("expected budget-driven ring hops, got pool hits=%d misses=%d", hits, misses)
	}
}
