package unbounded

import (
	"testing"
	"unsafe"

	"wcqueue/internal/core"
)

// TestRingBytesTracksElementSize is the regression test for the
// footprint formula: the data array must be accounted at the true
// element size, not a hardcoded 8 bytes per slot.
func TestRingBytesTracksElementSize(t *testing.T) {
	type elem24 struct{ a, b, c uint64 }
	if s := unsafe.Sizeof(elem24{}); s != 24 {
		t.Fatalf("test element is %d bytes, want 24", s)
	}
	const order = 4
	// Expected bytes per ring derive from core's own accounting (two
	// index rings, arena still empty) plus the data array at the true
	// element size.
	indexRings := 2 * core.Must(order, core.Options{}).Footprint()
	want := func(elemSize int64) int64 {
		return indexRings + (int64(1)<<order)*elemSize
	}
	q24 := Must[elem24](order, 0, core.Options{})
	if got := q24.Footprint(); got != want(24) {
		t.Fatalf("24-byte element footprint = %d, want %d", got, want(24))
	}
	q8 := Must[uint64](order, 0, core.Options{})
	if got := q8.Footprint(); got != want(8) {
		t.Fatalf("8-byte element footprint = %d, want %d", got, want(8))
	}
	if q24.Footprint()-q8.Footprint() != (24-8)*(1<<order) {
		t.Fatalf("element-size delta wrong: %d vs %d", q24.Footprint(), q8.Footprint())
	}
}

// TestRecycleSequential pushes enough traffic through a tiny-ring
// queue to cycle the pool many times and checks FIFO plus the pool
// counters: after the first hops, rings must come from the pool, not
// the allocator.
func TestRecycleSequential(t *testing.T) {
	q := Must[uint64](3, 8, core.Options{}) // 8-slot rings, pool of 8
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000 // ≫ ring capacity: thousands of hops
	const lag = 12   // constant depth ≈ 1.5 rings: hops happen steadily
	var out uint64
	for i := uint64(0); i < n; i++ {
		q.Enqueue(h, i)
		if i >= lag {
			v, ok := q.Dequeue(h)
			if !ok || v != out {
				t.Fatalf("dequeue: got (%d,%v) want %d", v, ok, out)
			}
			out++
		}
	}
	for ; out < n; out++ {
		v, ok := q.Dequeue(h)
		if !ok || v != out {
			t.Fatalf("drain: got (%d,%v) want %d", v, ok, out)
		}
	}
	hits, misses, _ := q.RingStats()
	if hits == 0 {
		t.Fatal("no ring was ever recycled through the pool")
	}
	if hits < 10*misses {
		t.Fatalf("pool barely used: %d hits vs %d misses", hits, misses)
	}
}

// TestRecycleStressMPMC churns rings through the recycled pool under
// full MPMC contention — order-3 rings, many hops — and runs the
// standard no-loss/no-duplication/per-producer-FIFO checks. Runs under
// -race in CI.
func TestRecycleStressMPMC(t *testing.T) {
	producers, consumers := 4, 4
	per := uint64(8_000)
	if testing.Short() {
		per = 800
	}
	q := Must[uint64](3, 32, core.Options{})
	runMPMC(t, q, producers, consumers, per)
	hits, _, _ := q.RingStats()
	if hits == 0 {
		t.Fatal("MPMC churn never recycled a ring")
	}
}

// TestRecycleStressMPMCForcedSlowPath is the same churn with patience
// 1, so recycled rings also carry slow-path helping state through
// Reset.
func TestRecycleStressMPMCForcedSlowPath(t *testing.T) {
	producers, consumers := 4, 4
	per := uint64(3_000)
	if testing.Short() {
		per = 300
	}
	opts := core.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q := Must[uint64](3, 32, opts)
	runMPMC(t, q, producers, consumers, per)
}

// TestBoundedFootprintOverHops is the boundedness property: with a
// warm pool, Footprint and the hazard-retired inventory must stay flat
// over ≥10k ring hops, and no ring may be allocated after warm-up.
func TestBoundedFootprintOverHops(t *testing.T) {
	q := Must[uint64](3, 16, core.Options{}) // 8-slot rings
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	const burst = 64 // ~8 ring hops per cycle
	cycle := func() {
		for i := uint64(0); i < burst; i++ {
			q.Enqueue(h, i)
		}
		for i := uint64(0); i < burst; i++ {
			if _, ok := q.Dequeue(h); !ok {
				t.Fatal("drain failed mid-cycle")
			}
		}
	}
	for i := 0; i < 50; i++ { // warm-up: fill the pool
		cycle()
	}
	flat := q.Footprint()
	_, warmMisses, _ := q.RingStats()
	// Hazard H·R inventory bound: H now tracks the domain's published
	// slots (one chunk for this single-handle test) instead of a
	// declared thread census.
	retireBound := 2 * q.dom.PublishedThreads() * 3
	const cycles = 1500 // ≈12k hops at ~8 hops/cycle
	for i := 0; i < cycles; i++ {
		cycle()
		if f := q.Footprint(); f > flat {
			t.Fatalf("cycle %d: footprint grew %d -> %d", i, flat, f)
		}
		if r := q.RetiredRings(); r > retireBound {
			t.Fatalf("cycle %d: retired inventory %d exceeds bound %d", i, r, retireBound)
		}
	}
	if _, misses, _ := q.RingStats(); misses != warmMisses {
		t.Fatalf("steady state allocated %d rings; want 0", misses-warmMisses)
	}
	if q.PeakFootprint() < flat {
		t.Fatalf("peak %d below live %d", q.PeakFootprint(), flat)
	}
}

// TestRecycleBatchChurn drives the batched paths across pool-recycled
// rings (order 3, batches straddling every finalization) and checks
// strict FIFO.
func TestRecycleBatchChurn(t *testing.T) {
	q := Must[uint64](3, 8, core.Options{})
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000
	buf := make([]uint64, 16)
	next, out := uint64(0), uint64(0)
	for next < n {
		k := uint64(len(buf))
		if n-next < k {
			k = n - next
		}
		for i := uint64(0); i < k; i++ {
			buf[i] = next + i
		}
		q.EnqueueBatch(h, buf[:k])
		next += k
		for out+8 < next { // keep ~1 ring of lag
			m := q.DequeueBatch(h, buf[:8])
			if m == 0 {
				t.Fatalf("empty with %d outstanding", next-out)
			}
			for i := 0; i < m; i++ {
				if buf[i] != out {
					t.Fatalf("batch dequeue: got %d want %d", buf[i], out)
				}
				out++
			}
		}
	}
	for out < n {
		v, ok := q.Dequeue(h)
		if !ok || v != out {
			t.Fatalf("drain: got (%d,%v) want %d", v, ok, out)
		}
		out++
	}
	if hits, _, _ := q.RingStats(); hits == 0 {
		t.Fatal("batched churn never recycled a ring")
	}
}

// TestStatsExposesPoolCounters covers the Stats aggregation across
// linked rings plus the pool counters while rings are mid-churn.
func TestStatsExposesPoolCounters(t *testing.T) {
	q := Must[uint64](3, 4, core.Options{})
	h, _ := q.Register()
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 400; i++ {
		if _, ok := q.Dequeue(h); !ok {
			t.Fatalf("dequeue %d failed", i)
		}
	}
	s := q.Stats() // hazard-protected traversal; must not race or loop
	if s.PoolHits == 0 && s.PoolMisses == 0 {
		t.Fatal("stats report no ring traffic despite churn")
	}
	if s.PoolHits != 0 && s.PoolMisses == 0 {
		t.Fatal("hits without a single allocating miss is impossible")
	}
	for i := uint64(400); i < 500; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i {
			t.Fatalf("drain %d: got (%d,%v)", i, v, ok)
		}
	}
}
