//go:build wcq_failpoints

package unbounded

// Hazard-pin robustness: a traverser frozen immediately after
// publishing its hazard pointer (the unbounded/protect-published
// window) pins the ring it points at. No matter how much the peers
// churn — hopping, unlinking and retiring rings around the stalled
// thread — the pinned ring must never be reclaimed or recycled under
// it, and reclamation of everything else must not stall behind it
// (DESIGN.md §8). Covers both the indirect and the direct unbounded
// compositions, which share the protect window.

import (
	"sync"
	"testing"
	"time"

	"wcqueue/internal/core"
	"wcqueue/internal/failpoint"
)

// hazardPinQueue abstracts the two unbounded variants down to what
// the pin scenario needs: per-goroutine sessions and the reclamation
// probes.
type hazardPinQueue struct {
	// session registers a handle and returns closures bound to it.
	// Panics on registration failure (sessions open on worker
	// goroutines, where t.Fatal is off-limits).
	session func() (enq func(uint64), deq func() (uint64, bool), unreg func())
	retired func() int
	drain   func() // hazard.Domain.Drain: free everything unprotected
}

func TestHazardPinPreventsRecycleIndirect(t *testing.T) {
	q, err := New[uint64](3, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runHazardPin(t, hazardPinQueue{
		session: func() (func(uint64), func() (uint64, bool), func()) {
			h, err := q.Register()
			if err != nil {
				panic(err)
			}
			return func(v uint64) { q.Enqueue(h, v) },
				func() (uint64, bool) { return q.Dequeue(h) },
				func() { q.Unregister(h) }
		},
		retired: q.RetiredRings,
		drain:   q.dom.Drain,
	})
}

func TestHazardPinPreventsRecycleDirect(t *testing.T) {
	q, err := NewDirect(3, 52, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runHazardPin(t, hazardPinQueue{
		session: func() (func(uint64), func() (uint64, bool), func()) {
			h, err := q.Register()
			if err != nil {
				panic(err)
			}
			return func(v uint64) { q.Enqueue(h, v) },
				func() (uint64, bool) { return q.Dequeue(h) },
				func() { q.Unregister(h) }
		},
		retired: q.RetiredRings,
		drain:   q.dom.Drain,
	})
}

func runHazardPin(t *testing.T, q hazardPinQueue) {
	failpoint.Reset()
	defer failpoint.Reset()

	// Prefill so the victim's dequeue has something to traverse to.
	// The session closes right away: a live handle keeps a cached
	// hazard published, and the pin assertions below must see the
	// victim's hazard as the only thing keeping a ring alive.
	enq, _, unreg := q.session()
	var next uint64
	enqueued := []uint64{}
	for i := 0; i < 4; i++ {
		enq(next)
		enqueued = append(enqueued, next)
		next++
	}
	unreg()

	// The victim runs alone, so it is the thread that parks: hazard
	// published on the then-head ring, source re-validation pending.
	failpoint.Arm(failpoint.UnboundedProtect, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})
	victimDone := make(chan struct{})
	var victimGot []uint64
	go func() {
		defer close(victimDone)
		_, deq, unreg := q.session()
		defer unreg()
		if v, ok := deq(); ok {
			victimGot = append(victimGot, v)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for failpoint.Parked(failpoint.UnboundedProtect) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if failpoint.Parked(failpoint.UnboundedProtect) == 0 {
		failpoint.Release(failpoint.UnboundedProtect)
		<-victimDone
		t.Fatal("victim never parked at unbounded/protect-published")
	}

	// Churn rings around the stalled traverser, in quiescent rounds:
	// RetiredRings reads the per-thread retire lists unsynchronized (a
	// teardown/test hook), so the peers are joined before every probe.
	// next is handed out in blocks so peer values never collide.
	const peers, burst, rounds = 2, 32, 8
	var (
		peerEnq  = make([][]uint64, peers)
		peerGot  = make([][]uint64, peers)
		peerSeq  = make([]uint64, peers)
		peerBase = make([]uint64, peers)
	)
	for p := 0; p < peers; p++ {
		peerBase[p] = uint64(1+p) << 40
		peerSeq[p] = peerBase[p]
	}
	churnRound := func() {
		var wg sync.WaitGroup
		for p := 0; p < peers; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				enq, deq, unreg := q.session()
				defer unreg()
				for r := 0; r < rounds; r++ {
					for i := 0; i < burst; i++ {
						enq(peerSeq[id])
						peerEnq[id] = append(peerEnq[id], peerSeq[id])
						peerSeq[id]++
					}
					for i := 0; i < burst; i++ {
						if v, ok := deq(); ok {
							peerGot[id] = append(peerGot[id], v)
						}
					}
				}
			}(p)
		}
		wg.Wait()
	}

	// The pinned ring is unlinked and retired once the peers drain it,
	// and from then on no scan may free it: RetiredRings() >= 1 is
	// stable until the victim lets go.
	deadline = time.Now().Add(10 * time.Second)
	for q.retired() == 0 && time.Now().Before(deadline) {
		churnRound()
	}
	if q.retired() == 0 {
		failpoint.Release(failpoint.UnboundedProtect)
		<-victimDone
		t.Fatal("ring churn never retired a ring while the traverser was pinned")
	}

	// Quiescent except for the frozen victim: a full drain must free
	// every unpinned retiree but MUST keep the pinned ring.
	q.drain()
	if got := q.retired(); got < 1 {
		t.Fatalf("pinned ring was reclaimed while a stalled traverser held its hazard (retired=%d)", got)
	}

	failpoint.Release(failpoint.UnboundedProtect)
	<-victimDone

	// Exactly-once accounting across the stall: drain what is left and
	// match the delivered multiset against everything enqueued.
	_, deq, unregDrain := q.session()
	var leftovers []uint64
	for misses := 0; misses < 8; {
		if v, ok := deq(); ok {
			leftovers = append(leftovers, v)
			misses = 0
		} else {
			misses++
		}
	}
	unregDrain()

	// Every handle is gone (handles cache a published hazard between
	// operations, so this must come after the last unregister):
	// everything must now be reclaimable.
	q.drain()
	if got := q.retired(); got != 0 {
		t.Fatalf("retire list not empty after the pinned traverser left: %d rings stranded", got)
	}

	seen := make(map[uint64]bool)
	for _, vs := range [][]uint64{victimGot, leftovers} {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			seen[v] = true
		}
	}
	for _, vs := range peerGot {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			seen[v] = true
		}
	}
	total := len(enqueued)
	for _, v := range enqueued {
		if !seen[v] {
			t.Fatalf("prefill value %#x lost", v)
		}
	}
	for id, vs := range peerEnq {
		total += len(vs)
		for _, v := range vs {
			if !seen[v] {
				t.Fatalf("peer %d value %#x lost", id, v)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct values, enqueued %d — phantom delivery", len(seen), total)
	}
}
