// Package unbounded implements the unbounded queue of the paper's
// Appendix A: wait-free bounded rings (wCQ) linked into an outer list,
// with finalized rings drained and unlinked.
//
// The outer layer here is the Michael & Scott-style list the paper
// describes for LCRQ/LSCQ ("Unbounded queues can be created by linking
// wCQs together, similarly to LCRQ or LSCQ"). A ring is finalized —
// closed for enqueues via the Tail finalize bit — either when it fills
// up or when an enqueuer starves on it; the enqueuer then appends a
// fresh ring. Dequeuers advance past a finalized ring only after
// observing it empty twice with a threshold reset in between
// (Figure 13, lines 59-63).
//
// Progress: dequeues inherit wCQ's wait-freedom per ring; enqueues are
// lock-free overall (ring hopping is unbounded only if other enqueues
// keep succeeding). The paper's fully wait-free variant replaces the
// outer list with CRTurn (Figure 13); that composition is sketched,
// not evaluated, in the paper, and DESIGN.md §5 records the same
// scoping here.
package unbounded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wcqueue/internal/core"
	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// ring is one finalizable wCQ with its value storage.
type ring[T any] struct {
	aq   *core.WCQ // finalizable index ring
	fq   *core.WCQ // free-index ring (never finalized)
	data []T
	next atomic.Pointer[ring[T]]
}

// enq inserts v, or reports the ring finalized.
func (r *ring[T]) enq(tid int, v T) bool {
	index, ok := r.fq.Dequeue(tid)
	if !ok {
		// No free index: the ring is full. Close it so dequeuers can
		// eventually unlink it.
		r.aq.Finalize()
		return false
	}
	r.data[index] = v
	if !r.aq.EnqueueClosable(tid, index) {
		r.fq.Enqueue(tid, index) // return the index; ring is abandoned
		return false
	}
	return true
}

// enqBatch inserts up to len(vs) values, amortizing the free-ring F&A
// over the batch (fq is never finalized, so its batched fast path is
// always safe). The allocated ring is closable, so its inserts go
// through scalar EnqueueClosable; a finalization mid-batch returns the
// unused indices and reports a short count.
func (r *ring[T]) enqBatch(h *Handle, vs []T) int {
	idx := h.buf(len(vs))
	n := r.fq.DequeueBatch(h.tid, idx)
	if n == 0 {
		// No free index: the ring is full. Close it so dequeuers can
		// eventually unlink it.
		r.aq.Finalize()
		return 0
	}
	for i := 0; i < n; i++ {
		r.data[idx[i]] = vs[i]
	}
	for i := 0; i < n; i++ {
		if !r.aq.EnqueueClosable(h.tid, idx[i]) {
			// Ring finalized: return the unused indices; the ring is
			// abandoned for enqueues.
			var zero T
			for j := i; j < n; j++ {
				r.data[idx[j]] = zero
			}
			r.fq.EnqueueBatch(h.tid, idx[i:n])
			return i
		}
	}
	return n
}

// deqBatch removes up to len(out) values in FIFO order.
func (r *ring[T]) deqBatch(h *Handle, out []T) int {
	idx := h.buf(len(out))
	n := r.aq.DequeueBatch(h.tid, idx)
	if n == 0 {
		return 0
	}
	var zero T
	for i := 0; i < n; i++ {
		out[i] = r.data[idx[i]]
		r.data[idx[i]] = zero
	}
	r.fq.EnqueueBatch(h.tid, idx[:n])
	return n
}

// deq removes the oldest value.
func (r *ring[T]) deq(tid int) (v T, ok bool) {
	index, ok := r.aq.Dequeue(tid)
	if !ok {
		return v, false
	}
	v = r.data[index]
	var zero T
	r.data[index] = zero
	r.fq.Enqueue(tid, index)
	return v, true
}

// Queue is the unbounded MPMC queue.
type Queue[T any] struct {
	_    pad.DoublePad
	head atomic.Pointer[ring[T]]
	_    pad.DoublePad
	tail atomic.Pointer[ring[T]]
	_    pad.DoublePad

	order    uint
	nthreads int
	opts     core.Options

	mu   sync.Mutex
	free []int
	mem  memtrack.Counter
}

// Handle is a registered thread slot, valid across all rings.
type Handle struct {
	tid int
	// scratch carries batch index buffers; owned by the handle's
	// goroutine, so reuse is race-free.
	scratch []uint64
}

// buf returns the handle's scratch buffer with capacity ≥ k.
func (h *Handle) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// New creates an unbounded queue whose rings hold 2^order values each,
// for up to numThreads registered handles.
func New[T any](order uint, numThreads int, opts core.Options) (*Queue[T], error) {
	q := &Queue[T]{
		order:    order,
		nthreads: numThreads,
		opts:     opts,
		free:     make([]int, 0, numThreads),
	}
	for i := numThreads - 1; i >= 0; i-- {
		q.free = append(q.free, i)
	}
	first, err := q.newRing()
	if err != nil {
		return nil, err
	}
	q.head.Store(first)
	q.tail.Store(first)
	return q, nil
}

// Must is New that panics on error.
func Must[T any](order uint, numThreads int, opts core.Options) *Queue[T] {
	q, err := New[T](order, numThreads, opts)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Queue[T]) newRing() (*ring[T], error) {
	aq, err := core.New(q.order, q.nthreads, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating aq: %w", err)
	}
	fq, err := core.New(q.order, q.nthreads, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating fq: %w", err)
	}
	fq.InitFull()
	r := &ring[T]{aq: aq, fq: fq, data: make([]T, 1<<q.order)}
	q.mem.Alloc(q.ringBytes())
	return r, nil
}

func (q *Queue[T]) ringBytes() int64 {
	// Two index rings of 2n 8-byte entries plus the data array and
	// per-thread records; a close estimate is enough for the memory
	// experiment.
	return 2*(int64(2)<<q.order)*8 + (int64(1)<<q.order)*8 + int64(q.nthreads)*1024
}

// Register claims a thread slot.
func (q *Queue[T]) Register() (*Handle, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.free) == 0 {
		return nil, fmt.Errorf("unbounded: all %d thread slots registered", q.nthreads)
	}
	tid := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	return &Handle{tid: tid}, nil
}

// Unregister releases a thread slot.
func (q *Queue[T]) Unregister(h *Handle) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.free = append(q.free, h.tid)
}

// Footprint returns live queue-owned bytes (all linked rings).
func (q *Queue[T]) Footprint() int64 { return q.mem.Live() }

// MaxOps returns the per-ring safe-operation bound. Unlike the bounded
// queue the limit is not cumulative: every fresh ring starts a new
// budget, so only a single ring's traffic counts against it.
func (q *Queue[T]) MaxOps() uint64 {
	r := q.head.Load()
	return min(r.aq.MaxOps(), r.fq.MaxOps())
}

// Stats aggregates the slow-path statistics of the currently linked
// rings. Counters of unlinked (drained) rings are gone, so values are
// a lower bound over the queue's lifetime — still the right signal for
// "is the wait-free machinery being exercised right now".
func (q *Queue[T]) Stats() core.Stats {
	var s core.Stats
	for r := q.head.Load(); r != nil; r = r.next.Load() {
		for _, w := range [2]*core.WCQ{r.aq, r.fq} {
			st := w.Stats()
			s.SlowEnqueues += st.SlowEnqueues
			s.SlowDequeues += st.SlowDequeues
			s.Helps += st.Helps
		}
	}
	return s
}

// Enqueue appends v. Always succeeds (unbounded); lock-free.
func (q *Queue[T]) Enqueue(h *Handle, v T) {
	for {
		lt := q.tail.Load()
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		if lt.enq(h.tid, v) {
			return
		}
		// Ring finalized: append a fresh ring carrying v.
		nr, err := q.newRing()
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		if !nr.enq(h.tid, v) {
			panic("unbounded: enqueue on a fresh ring failed")
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			return
		}
		// Lost the append race; drop our ring and retry into theirs.
		q.mem.Free(q.ringBytes())
	}
}

// EnqueueBatch appends all values in order. Like Enqueue it always
// succeeds and is lock-free; the free-ring reservation is amortized
// over the batch.
func (q *Queue[T]) EnqueueBatch(h *Handle, vs []T) {
	for len(vs) > 0 {
		lt := q.tail.Load()
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		if n := lt.enqBatch(h, vs); n > 0 {
			vs = vs[n:]
			continue
		}
		// Ring finalized: append a fresh ring carrying as much of the
		// remaining batch as fits.
		nr, err := q.newRing()
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		n := nr.enqBatch(h, vs)
		if n == 0 {
			panic("unbounded: batch enqueue on a fresh ring failed")
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			vs = vs[n:]
			continue
		}
		// Lost the append race; our ring was never published, so its
		// values are safe to retry into the winner's ring.
		q.mem.Free(q.ringBytes())
	}
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, returning how many were dequeued (0 only when the whole queue
// is observed empty).
func (q *Queue[T]) DequeueBatch(h *Handle, out []T) int {
	if len(out) == 0 {
		return 0
	}
	for {
		lh := q.head.Load()
		if n := lh.deqBatch(h, out); n > 0 {
			return n
		}
		if lh.next.Load() == nil {
			return 0 // no successor: genuinely empty
		}
		// Finalized predecessor: re-arm the threshold and drain once
		// more before unlinking (Figure 13, lines 59-63).
		lh.aq.ResetThreshold()
		if n := lh.deqBatch(h, out); n > 0 {
			return n
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			q.mem.Free(q.ringBytes()) // unlinked ring: reclaimed by GC
		}
	}
}

// Dequeue removes the oldest value, or returns ok=false when the whole
// queue is empty. Per-ring wait-free.
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) {
	for {
		lh := q.head.Load()
		if v, ok := lh.deq(h.tid); ok {
			return v, true
		}
		if lh.next.Load() == nil {
			return v, false // no successor: genuinely empty
		}
		// A successor exists, so lh is finalized (finalize always
		// precedes append). Re-arm the threshold and drain once more
		// before unlinking (Figure 13, lines 59-63): the reset gives
		// dequeuers the full 3n−1 budget to find stragglers whose F&A
		// predated the finalize.
		lh.aq.ResetThreshold()
		if v, ok := lh.deq(h.tid); ok {
			return v, true
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			q.mem.Free(q.ringBytes()) // unlinked ring: reclaimed by GC
		}
	}
}
