// Package unbounded implements the unbounded queue of the paper's
// Appendix A: wait-free bounded rings (wCQ) linked into an outer list,
// with finalized rings drained, unlinked and recycled.
//
// The outer layer here is the Michael & Scott-style list the paper
// describes for LCRQ/LSCQ ("Unbounded queues can be created by linking
// wCQs together, similarly to LCRQ or LSCQ"). A ring is finalized —
// closed for enqueues via the Tail finalize bit — either when it fills
// up or when an enqueuer starves on it; the enqueuer then appends a
// fresh ring. Dequeuers advance past a finalized ring only after
// observing it empty twice with a threshold reset in between
// (Figure 13, lines 59-63).
//
// Memory: drained rings are not left to the garbage collector. The
// dequeuer that wins the head-unlink CAS retires the ring through a
// hazard-pointer domain; once no thread can still hold a reference,
// the ring lands in a bounded per-queue pool and the next ring hop
// reuses it via core.WCQ.Reset/ResetFull instead of allocating. In
// steady state (pool warm, hop rate within pool capacity) the hot
// path is allocation-free and Footprint stays flat — the paper's
// bounded-memory headline extended to the Appendix A composition
// (DESIGN.md §8). Ring reuse reintroduces the ABA hazard on the
// head/tail/next pointers that GC reclamation used to mask, so every
// traversal publishes a hazard pointer before dereferencing a ring.
//
// Progress: dequeues inherit wCQ's wait-freedom per ring; enqueues are
// lock-free overall (ring hopping is unbounded only if other enqueues
// keep succeeding). The paper's fully wait-free variant replaces the
// outer list with CRTurn (Figure 13); that composition is sketched,
// not evaluated, in the paper, and DESIGN.md §5 records the same
// scoping here.
package unbounded

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/atomicx"
	"wcqueue/internal/core"
	"wcqueue/internal/failpoint"
	"wcqueue/internal/hazard"
	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
	"wcqueue/internal/waitq"
)

// DefaultPoolSize is the ring-pool capacity selected when the caller
// passes poolSize <= 0. Sized for moderate hop concurrency; workloads
// that hop many rings between reclamation points (small orders, deep
// bursts) should size the pool to the rings they churn per cycle.
const DefaultPoolSize = 4

// ring is one finalizable wCQ with its value storage.
type ring[T any] struct {
	aq   *core.WCQ // finalizable index ring
	fq   *core.WCQ // free-index ring (never finalized)
	data []T
	next atomic.Pointer[ring[T]]
}

// enqResult is the outcome of one per-ring enqueue attempt.
type enqResult int

const (
	enqOK       enqResult = iota
	enqRingFull           // ring finalized or full: hop to a fresh ring
	enqClosed             // queue closed: abort, nothing landed
)

// enq inserts v, reports the ring finalized, or reports the queue
// closed. The close re-check sits after the free-index reservation:
// that fetch-and-add is the seq-cst RMW that makes the caller's
// ActiveFlag visible before the state load (the Dekker handshake
// against Close — see core.ActiveFlag and DESIGN.md §10).
// wcq:noalloc
func (r *ring[T]) enq(q *Queue[T], tid int, v T) enqResult {
	index, ok := r.fq.Dequeue(tid)
	if !ok {
		// No free index: the ring is full. Close it so dequeuers can
		// eventually unlink it.
		r.aq.Finalize()
		return enqRingFull
	}
	if failpoint.Enabled {
		// Free index reserved inside the active bracket, close
		// re-check pending — the unbounded twin of
		// CoreEnqActiveWindow.
		failpoint.Inject(failpoint.UnboundedEnqActiveWindow)
	}
	if q.state.Load() != stateOpen {
		r.fq.Enqueue(tid, index) // closed: return the index, no value lands
		return enqClosed
	}
	r.data[index] = v
	if !r.aq.EnqueueClosable(tid, index) {
		r.fq.Enqueue(tid, index) // return the index; ring is abandoned
		return enqRingFull
	}
	return enqOK
}

// enqBatch inserts up to len(vs) values, amortizing the free-ring F&A
// over the batch (fq is never finalized, so its batched fast path is
// always safe). The allocated ring is closable, so its inserts go
// through scalar EnqueueClosable; a finalization mid-batch returns the
// unused indices and reports a short count. The close re-check
// follows the batch reservation, as in enq.
// wcq:noalloc
func (r *ring[T]) enqBatch(q *Queue[T], h *Handle, vs []T) (n int, res enqResult) {
	idx := h.buf(len(vs))
	n = r.fq.DequeueBatch(h.tid, idx)
	if n == 0 {
		// No free index: the ring is full. Close it so dequeuers can
		// eventually unlink it.
		r.aq.Finalize()
		return 0, enqRingFull
	}
	if q.state.Load() != stateOpen {
		r.fq.EnqueueBatch(h.tid, idx[:n]) // closed: return the indices
		return 0, enqClosed
	}
	for i := 0; i < n; i++ {
		r.data[idx[i]] = vs[i]
	}
	for i := 0; i < n; i++ {
		if !r.aq.EnqueueClosable(h.tid, idx[i]) {
			// Ring finalized: return the unused indices; the ring is
			// abandoned for enqueues.
			var zero T
			for j := i; j < n; j++ {
				r.data[idx[j]] = zero
			}
			r.fq.EnqueueBatch(h.tid, idx[i:n])
			return i, enqRingFull
		}
	}
	return n, enqOK
}

// deqBatch removes up to len(out) values in FIFO order.
// wcq:noalloc
func (r *ring[T]) deqBatch(h *Handle, out []T) int {
	idx := h.buf(len(out))
	n := r.aq.DequeueBatch(h.tid, idx)
	if n == 0 {
		return 0
	}
	var zero T
	for i := 0; i < n; i++ {
		out[i] = r.data[idx[i]]
		r.data[idx[i]] = zero
	}
	r.fq.EnqueueBatch(h.tid, idx[:n])
	return n
}

// deq removes the oldest value.
// wcq:noalloc
func (r *ring[T]) deq(tid int) (v T, ok bool) {
	index, ok := r.aq.Dequeue(tid)
	if !ok {
		return v, false
	}
	v = r.data[index]
	var zero T
	r.data[index] = zero
	r.fq.Enqueue(tid, index)
	return v, true
}

// scrub drops the ring's outbound references — user values left in
// slots whose enqueue was abandoned at finalization (or by an
// append-race loser), and the stale next pointer. Runs when the ring
// is parked in the pool, so pooled rings never keep user objects or
// successor rings live across an idle period. Only called on
// quiescent rings (unreachable from the list and past hazard
// reclamation, or never published).
func (r *ring[T]) scrub() {
	clear(r.data)
	r.next.Store(nil)
}

// reset returns a scrubbed ring's index rings to their fresh state for
// reuse. Same quiescence contract as scrub (pool-owned rings only);
// deferred to reuse time so rings dropped to the GC skip the work.
func (r *ring[T]) reset() {
	r.aq.Reset()
	r.fq.ResetFull()
}

// Queue is the unbounded MPMC queue.
type Queue[T any] struct {
	_    pad.DoublePad
	head atomic.Pointer[ring[T]]
	_    pad.DoublePad
	tail atomic.Pointer[ring[T]]
	_    pad.DoublePad

	order      uint
	maxHandles int
	opts       core.Options // includes the OnArenaGrow accounting hook
	ringFoot   int64        // base bytes per ring (arena-free), element-size aware

	// Ring recycling: retired rings pass through dom (so no thread can
	// still dereference them) into the bounded pool; ring hops reuse
	// pooled rings after reset. statsTid is the extra hazard-domain
	// slot reserved for the handle-less Stats traversal.
	dom      *hazard.Domain
	pool     []atomic.Pointer[ring[T]]
	freeRing func(unsafe.Pointer) // built once: hop path must not allocate
	statsTid int
	statsMu  sync.Mutex

	poolHits   atomic.Uint64 // ring hops served from the pool
	poolMisses atomic.Uint64 // ring hops that had to allocate
	poolDrops  atomic.Uint64 // retired rings dropped (pool full)

	// Handle slots: the shared allocator recycles released tids ahead
	// of its fresh cursor, so register/unregister churn keeps the tid
	// high-water mark — and with it every ring's record arena and the
	// hazard domain — flat.
	alloc core.SlotAlloc
	mem   memtrack.Counter

	// Blocking layer (blocking.go, DESIGN.md §10): the queue is never
	// full, so only dequeuers park. state and the tid-indexed flag
	// arena carry the close/drain protocol, mirroring core.Queue (the
	// arena holds no Handle references, keeping the implicit-handle
	// pool's finalizer-based slot reclamation intact).
	notEmpty waitq.EventCount
	state    atomic.Uint32
	flags    core.FlagArena
}

// Handle is a registered thread slot, valid across all rings.
type Handle struct {
	tid int
	// active points to the handle's slot in the queue's flag arena,
	// bracketing in-flight enqueues for Close quiescence; w is the
	// parking token for blocking dequeues (blocking.go). Both are
	// written only by the owner.
	active *core.ActiveFlag
	w      *waitq.Waiter
	// hp mirrors the ring currently published in the tid's hazard
	// slot 0. Operations leave the slot published between calls and
	// skip the (sequentially consistent, hence costly) re-publish when
	// the ring has not changed; the one stale ring a parked handle can
	// pin is bounded standby memory, same as a pool slot. Owned by the
	// handle's goroutine.
	hp unsafe.Pointer
	// scratch carries batch index buffers; owned by the handle's
	// goroutine, so reuse is race-free.
	scratch []uint64
}

// buf returns the handle's scratch buffer with capacity ≥ k.
// wcq:noalloc
func (h *Handle) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		// wcq:alloc-ok grow-once scratch: reused for every later batch at this width, so the pinned steady state never re-allocates
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// New creates an unbounded queue whose rings hold 2^order values each.
// Handles register dynamically up to opts.MaxHandles (default: the
// full 16-bit owner-id space); each ring materializes a handle's
// record lazily on first touch, so a handle follows ring hops without
// re-registering. Up to poolSize drained rings are retained for reuse
// (<= 0 selects DefaultPoolSize); rings retired beyond that are
// dropped to the garbage collector.
func New[T any](order uint, poolSize int, opts core.Options) (*Queue[T], error) {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	maxHandles := opts.MaxHandles
	if maxHandles == 0 {
		maxHandles = int(atomicx.MaxOwners)
	}
	if maxHandles < 1 || uint64(maxHandles) > atomicx.MaxOwners {
		return nil, fmt.Errorf("unbounded: MaxHandles %d out of range [1, %d]", maxHandles, atomicx.MaxOwners)
	}
	opts.MaxHandles = maxHandles
	q := &Queue[T]{
		order:      order,
		maxHandles: maxHandles,
		dom:        hazard.NewDomain(maxHandles + 1), // +1: reserved Stats slot
		pool:       make([]atomic.Pointer[ring[T]], poolSize),
		statsTid:   maxHandles,
		alloc:      core.NewSlotAlloc(maxHandles),
		flags:      core.NewFlagArena(maxHandles),
	}
	// Every record chunk a ring publishes — on any ring, at any time —
	// funnels into the shared footprint counter, keeping Footprint
	// exact while arenas grow lazily across ring hops.
	opts.OnArenaGrow = func(bytes int64) { q.mem.Alloc(bytes) }
	q.opts = opts
	q.freeRing = func(p unsafe.Pointer) { q.poolPut((*ring[T])(p)) }
	first, err := q.newRing()
	if err != nil {
		return nil, err
	}
	q.head.Store(first)
	q.tail.Store(first)
	return q, nil
}

// Must is New that panics on error.
func Must[T any](order uint, poolSize int, opts core.Options) *Queue[T] {
	q, err := New[T](order, poolSize, opts)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Queue[T]) newRing() (*ring[T], error) {
	aq, err := core.New(q.order, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating aq: %w", err)
	}
	fq, err := core.New(q.order, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating fq: %w", err)
	}
	fq.InitFull()
	r := &ring[T]{aq: aq, fq: fq, data: make([]T, 1<<q.order)}
	if q.ringFoot == 0 {
		// Every ring starts identical: the index rings' base footprint
		// from core (entries + chunk directory; the record arena is
		// empty at birth and accounted through OnArenaGrow as it
		// grows) plus the data array at the element's true size. First
		// call runs inside New, before any concurrency.
		var zero T
		q.ringFoot = aq.Footprint() + fq.Footprint() + (int64(1)<<q.order)*int64(unsafe.Sizeof(zero))
	}
	q.mem.Alloc(q.ringBytes())
	return r, nil
}

func (q *Queue[T]) ringBytes() int64 { return q.ringFoot }

// liveBytes is a ring's current total accounting: the fixed base plus
// whatever record arena it has grown. Used when a ring leaves the
// accounting universe (dropped to the GC).
func (r *ring[T]) arenaBytes() int64 { return r.aq.ArenaBytes() + r.fq.ArenaBytes() }

// getRing produces the fresh ring for a hop: pooled and reset when
// possible, newly allocated otherwise. A pool miss first runs a hazard
// scan over the caller's own retire list so rings awaiting reclamation
// are pulled forward instead of allocating.
// wcq:noalloc
func (q *Queue[T]) getRing(tid int) (*ring[T], error) {
	if r := q.poolGet(); r != nil {
		q.poolHits.Add(1)
		r.reset()
		return r, nil
	}
	q.dom.Scan(tid)
	if r := q.poolGet(); r != nil {
		q.poolHits.Add(1)
		r.reset()
		return r, nil
	}
	q.poolMisses.Add(1)
	return q.newRing()
}

// poolGet pops any pooled ring. The per-slot CAS is ABA-free: slots
// only ever swing between nil and a quiescent ring, and whichever ring
// is won is valid regardless of interleaving.
// wcq:noalloc
func (q *Queue[T]) poolGet() *ring[T] {
	for i := range q.pool {
		if r := q.pool[i].Load(); r != nil && q.pool[i].CompareAndSwap(r, nil) {
			return r
		}
	}
	return nil
}

// poolPut scrubs a quiescent ring and stashes it for reuse, or drops
// it to the GC when the pool is full (the drop is what keeps the pool
// — and hence Footprint — bounded).
// wcq:noalloc
func (q *Queue[T]) poolPut(r *ring[T]) {
	r.scrub()
	for i := range q.pool {
		if q.pool[i].Load() == nil && q.pool[i].CompareAndSwap(nil, r) {
			return
		}
	}
	q.poolDrops.Add(1)
	q.mem.Free(q.ringBytes() + r.arenaBytes())
}

// retireRing hands an unlinked ring to the hazard domain; once no
// thread holds a hazard pointer to it, it is pooled for reuse. The
// ring stays accounted in Footprint while retired or pooled — that
// inventory is precisely the bounded standby memory of the design.
func (q *Queue[T]) retireRing(tid int, r *ring[T]) {
	q.dom.Retire(tid, unsafe.Pointer(r), q.freeRing)
}

// protect publishes a validated hazard pointer to *src (head or tail)
// in the handle's slot 0. On return the ring cannot be reset or reused
// until the slot is overwritten, even if it is concurrently unlinked.
// When the slot already publishes the ring (h.hp cache), the store is
// skipped: protection has then been continuous since the previous
// publish, which is strictly stronger than re-publishing.
// wcq:noalloc
func (q *Queue[T]) protect(h *Handle, src *atomic.Pointer[ring[T]]) *ring[T] {
	for {
		r := src.Load()
		if p := unsafe.Pointer(r); h.hp != p {
			q.dom.Protect(h.tid, 0, p)
			h.hp = p
		}
		if failpoint.Enabled {
			// Hazard published, link re-validation pending: the ring
			// must never be recycled under a thread frozen here.
			failpoint.Inject(failpoint.UnboundedProtect)
		}
		if src.Load() == r {
			return r
		}
	}
}

// wcq:noalloc
func (q *Queue[T]) protectHead(h *Handle) *ring[T] { return q.protect(h, &q.head) }
// wcq:noalloc
func (q *Queue[T]) protectTail(h *Handle) *ring[T] { return q.protect(h, &q.tail) }

// protectHeadAt is the uncached protect loop for the reserved Stats
// tid (no handle).
// wcq:noalloc
func (q *Queue[T]) protectHeadAt(tid int) *ring[T] {
	for {
		r := q.head.Load()
		q.dom.Protect(tid, 0, unsafe.Pointer(r))
		if q.head.Load() == r {
			return r
		}
	}
}

// Register claims a thread slot: a recycled one when available, else
// the next fresh tid. The tid is valid on every ring, current and
// future — rings materialize its record lazily on first touch.
func (q *Queue[T]) Register() (*Handle, error) {
	tid, err := q.alloc.Acquire()
	if err != nil {
		return nil, fmt.Errorf("unbounded: %w", err)
	}
	q.dom.SetActive(q.alloc.Live() + 1) // +1: the reserved Stats tid
	return &Handle{tid: tid, active: q.flags.Get(tid)}, nil
}

// LiveHandles returns the number of currently registered handles.
func (q *Queue[T]) LiveHandles() int { return q.alloc.Live() }

// HandleHighWater returns the largest number of handle slots ever live
// at once — the bound on every ring's arena growth.
func (q *Queue[T]) HandleHighWater() int { return q.alloc.HighWater() }

// Unregister releases a thread slot, clearing its hazard slot so the
// departing handle stops pinning a ring, and scanning its retire list
// so rings it retired reach the pool instead of being stranded until
// the tid is reused (a ring still protected by another thread at this
// instant stays listed and is reclaimed when the tid re-registers and
// churns again).
func (q *Queue[T]) Unregister(h *Handle) {
	q.dom.Clear(h.tid)
	h.hp = nil
	q.dom.Scan(h.tid)
	q.alloc.Release(h.tid)
	q.dom.SetActive(q.alloc.Live() + 1)
}

// Footprint returns live queue-owned bytes: linked rings plus the
// standby inventory (pooled rings and retired rings awaiting hazard
// reclamation). Both components are bounded, so under steady traffic
// the value is flat — the paper's bounded-memory property carried over
// to the unbounded composition.
func (q *Queue[T]) Footprint() int64 { return q.mem.Live() }

// PeakFootprint returns the high-water mark of Footprint over the
// queue's lifetime.
func (q *Queue[T]) PeakFootprint() int64 { return q.mem.Peak() }

// PoolCap returns the ring-pool capacity.
func (q *Queue[T]) PoolCap() int { return len(q.pool) }

// RingStats reports the recycling counters: hops served from the pool,
// hops that allocated a fresh ring, and retired rings dropped because
// the pool was full. In steady state at sufficient pool capacity,
// misses stop growing — the allocation-free property the ring-churn
// benchmark asserts.
func (q *Queue[T]) RingStats() (hits, misses, drops uint64) {
	return q.poolHits.Load(), q.poolMisses.Load(), q.poolDrops.Load()
}

// RetiredRings reports rings handed to the hazard domain and not yet
// reclaimed into the pool (test hook for the boundedness property).
func (q *Queue[T]) RetiredRings() int { return q.dom.RetiredCount() }

// MaxOps returns the per-ring safe-operation bound. Unlike the bounded
// queue the limit is not cumulative: every fresh ring starts a new
// budget, so only a single ring's traffic counts against it. The
// unprotected dereference is safe: MaxOps is immutable per ring and
// identical across all rings of the queue.
func (q *Queue[T]) MaxOps() uint64 {
	r := q.head.Load()
	return min(r.aq.MaxOps(), r.fq.MaxOps())
}

// Stats aggregates the slow-path statistics of the currently linked
// rings plus the pool counters. Ring counters of unlinked (drained)
// rings are gone, so values are a lower bound over the queue's
// lifetime — still the right signal for "is the wait-free machinery
// being exercised right now".
//
// The traversal leapfrogs two hazard slots of a reserved stats tid so
// a ring being read cannot be reset under the reader. The protection
// of a successor can race its reclamation: in that window the reader
// may observe a recycled ring's (atomic, hence race-free) counters or
// cut the walk short — acceptable for monotone monitoring counters,
// and the reason Stats is documented as a lower bound rather than a
// linearizable snapshot.
func (q *Queue[T]) Stats() Stats {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	tid := q.statsTid
	var s Stats
	s.PoolHits, s.PoolMisses, s.PoolDrops = q.RingStats()
	slot := 0
	r := q.protectHeadAt(tid)
	for r != nil {
		next := r.next.Load()
		if next != nil {
			q.dom.Protect(tid, 1-slot, unsafe.Pointer(next))
		}
		for _, w := range [2]*core.WCQ{r.aq, r.fq} {
			st := w.Stats()
			s.SlowEnqueues += st.SlowEnqueues
			s.SlowDequeues += st.SlowDequeues
			s.Helps += st.Helps
		}
		q.dom.ClearSlot(tid, slot)
		slot = 1 - slot
		r = next
	}
	q.dom.Clear(tid)
	return s
}

// Stats extends the core slow-path counters with the ring-recycling
// counters.
type Stats struct {
	core.Stats
	PoolHits   uint64 // ring hops served from the recycled pool
	PoolMisses uint64 // ring hops that allocated a fresh ring
	PoolDrops  uint64 // retired rings dropped because the pool was full
}

// Enqueue appends v. Succeeds unless the queue is closed (the only
// time it returns false — capacity never runs out); lock-free.
//
// The tail ring is hazard-protected for the whole per-ring attempt:
// with ring reuse, an unprotected ring could be drained, unlinked,
// reset and relinked elsewhere between the tail load and the insert,
// and the insert would land in the wrong logical queue position. The
// protection also makes the next-append CAS ABA-free — a protected
// ring cannot be recycled, so tail.next can only transition nil →
// successor once.
// wcq:noalloc
func (q *Queue[T]) Enqueue(h *Handle, v T) bool {
	h.active.Enter()
	tid := h.tid
	for {
		lt := q.protectTail(h)
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		switch lt.enq(q, tid, v) {
		case enqOK:
			h.active.Exit()
			q.notEmpty.Signal()
			return true
		case enqClosed:
			h.active.Exit()
			return false
		}
		// Ring finalized: append a recycled or fresh ring carrying v.
		nr, err := q.getRing(tid)
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		switch nr.enq(q, tid, v) {
		case enqClosed:
			q.poolPut(nr) // never published: straight back to the pool
			h.active.Exit()
			return false
		case enqRingFull:
			panic("unbounded: enqueue on a fresh ring failed")
		}
		if failpoint.Enabled {
			// Fresh ring loaded with v, append CAS pending: a thread
			// frozen here holds an unpublished ring; peers append their
			// own.
			failpoint.Inject(failpoint.UnboundedHopPrepared)
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			h.active.Exit()
			q.notEmpty.Signal()
			return true
		}
		// Lost the append race; the ring was never published, so it
		// goes straight back to the pool and v retries into the
		// winner's ring.
		q.poolPut(nr)
	}
}

// EnqueueBatch appends values in order and returns how many were
// inserted: len(vs) normally, fewer when the queue closes mid-batch
// (like a short write — the counted prefix is in the queue and will
// be drained; the rest was not inserted). Lock-free; the free-ring
// reservation is amortized over the batch.
// wcq:noalloc
func (q *Queue[T]) EnqueueBatch(h *Handle, vs []T) int {
	h.active.Enter()
	total := len(vs)
	tid := h.tid
	for len(vs) > 0 {
		lt := q.protectTail(h)
		if nx := lt.next.Load(); nx != nil {
			q.tail.CompareAndSwap(lt, nx) // help advance
			continue
		}
		n, res := lt.enqBatch(q, h, vs)
		vs = vs[n:]
		if res == enqClosed {
			break
		}
		if n > 0 {
			continue
		}
		// Ring finalized: append a recycled or fresh ring carrying as
		// much of the remaining batch as fits.
		nr, err := q.getRing(tid)
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		n, res = nr.enqBatch(q, h, vs)
		if res == enqClosed {
			q.poolPut(nr) // never published: straight back to the pool
			break
		}
		if n == 0 {
			panic("unbounded: batch enqueue on a fresh ring failed")
		}
		if failpoint.Enabled {
			failpoint.Inject(failpoint.UnboundedHopPrepared)
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			vs = vs[n:]
			continue
		}
		// Lost the append race; our ring was never published, so its
		// values are safe to retry into the winner's ring.
		q.poolPut(nr)
	}
	inserted := total - len(vs)
	h.active.Exit()
	q.notEmpty.SignalN(inserted)
	return inserted
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, returning how many were dequeued (0 only when the whole queue
// is observed empty).
// wcq:noalloc
func (q *Queue[T]) DequeueBatch(h *Handle, out []T) int {
	if len(out) == 0 {
		return 0
	}
	tid := h.tid
	for {
		lh := q.protectHead(h)
		if n := lh.deqBatch(h, out); n > 0 {
			return n
		}
		if lh.next.Load() == nil {
			return 0 // no successor: genuinely empty
		}
		// Finalized predecessor: re-arm the threshold and drain once
		// more before unlinking (Figure 13, lines 59-63).
		lh.aq.ResetThreshold()
		if n := lh.deqBatch(h, out); n > 0 {
			return n
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			if failpoint.Enabled {
				failpoint.Inject(failpoint.UnboundedUnlinked)
			}
			q.retireRing(tid, lh) // unlinked: recycle through the pool
		}
	}
}

// Dequeue removes the oldest value, or returns ok=false when the whole
// queue is empty. Per-ring wait-free.
//
// ABA safety of the unlink CAS under ring reuse: the dequeuer holds a
// hazard pointer to lh across the CAS, so lh cannot be recycled and
// re-linked while the CAS is pending — head equals lh only if lh is
// still the original head ring, and lh.next (written once, before lh
// was ever unlinkable) is its genuine successor.
// wcq:noalloc
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) {
	tid := h.tid
	for {
		lh := q.protectHead(h)
		if v, ok := lh.deq(tid); ok {
			return v, true
		}
		if lh.next.Load() == nil {
			return v, false // no successor: genuinely empty
		}
		// A successor exists, so lh is finalized (finalize always
		// precedes append). Re-arm the threshold and drain once more
		// before unlinking (Figure 13, lines 59-63): the reset gives
		// dequeuers the full 3n−1 budget to find stragglers whose F&A
		// predated the finalize.
		lh.aq.ResetThreshold()
		if v, ok := lh.deq(tid); ok {
			return v, true
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			if failpoint.Enabled {
				// Unlink CAS won, retire pending: the ring is
				// unreachable but unretired while a thread is frozen
				// here.
				failpoint.Inject(failpoint.UnboundedUnlinked)
			}
			q.retireRing(tid, lh) // unlinked: recycle through the pool
		}
	}
}
