// Package unbounded implements the unbounded queue of the paper's
// Appendix A: wait-free bounded rings (wCQ) linked into an outer list,
// with finalized rings drained and unlinked.
//
// The outer layer here is the Michael & Scott-style list the paper
// describes for LCRQ/LSCQ ("Unbounded queues can be created by linking
// wCQs together, similarly to LCRQ or LSCQ"). A ring is finalized —
// closed for enqueues via the Tail finalize bit — either when it fills
// up or when an enqueuer starves on it; the enqueuer then appends a
// fresh ring. Dequeuers advance past a finalized ring only after
// observing it empty twice with a threshold reset in between
// (Figure 13, lines 59-63).
//
// Progress: dequeues inherit wCQ's wait-freedom per ring; enqueues are
// lock-free overall (ring hopping is unbounded only if other enqueues
// keep succeeding). The paper's fully wait-free variant replaces the
// outer list with CRTurn (Figure 13); that composition is sketched,
// not evaluated, in the paper, and DESIGN.md §5 records the same
// scoping here.
package unbounded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wcqueue/internal/core"
	"wcqueue/internal/memtrack"
	"wcqueue/internal/pad"
)

// ring is one finalizable wCQ with its value storage.
type ring[T any] struct {
	aq   *core.WCQ // finalizable index ring
	fq   *core.WCQ // free-index ring (never finalized)
	data []T
	next atomic.Pointer[ring[T]]
}

// enq inserts v, or reports the ring finalized.
func (r *ring[T]) enq(tid int, v T) bool {
	index, ok := r.fq.Dequeue(tid)
	if !ok {
		// No free index: the ring is full. Close it so dequeuers can
		// eventually unlink it.
		r.aq.Finalize()
		return false
	}
	r.data[index] = v
	if !r.aq.EnqueueClosable(tid, index) {
		r.fq.Enqueue(tid, index) // return the index; ring is abandoned
		return false
	}
	return true
}

// deq removes the oldest value.
func (r *ring[T]) deq(tid int) (v T, ok bool) {
	index, ok := r.aq.Dequeue(tid)
	if !ok {
		return v, false
	}
	v = r.data[index]
	var zero T
	r.data[index] = zero
	r.fq.Enqueue(tid, index)
	return v, true
}

// Queue is the unbounded MPMC queue.
type Queue[T any] struct {
	_    pad.DoublePad
	head atomic.Pointer[ring[T]]
	_    pad.DoublePad
	tail atomic.Pointer[ring[T]]
	_    pad.DoublePad

	order    uint
	nthreads int
	opts     core.Options

	mu   sync.Mutex
	free []int
	mem  memtrack.Counter
}

// Handle is a registered thread slot, valid across all rings.
type Handle struct{ tid int }

// New creates an unbounded queue whose rings hold 2^order values each,
// for up to numThreads registered handles.
func New[T any](order uint, numThreads int, opts core.Options) (*Queue[T], error) {
	q := &Queue[T]{
		order:    order,
		nthreads: numThreads,
		opts:     opts,
		free:     make([]int, 0, numThreads),
	}
	for i := numThreads - 1; i >= 0; i-- {
		q.free = append(q.free, i)
	}
	first, err := q.newRing()
	if err != nil {
		return nil, err
	}
	q.head.Store(first)
	q.tail.Store(first)
	return q, nil
}

// Must is New that panics on error.
func Must[T any](order uint, numThreads int, opts core.Options) *Queue[T] {
	q, err := New[T](order, numThreads, opts)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Queue[T]) newRing() (*ring[T], error) {
	aq, err := core.New(q.order, q.nthreads, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating aq: %w", err)
	}
	fq, err := core.New(q.order, q.nthreads, q.opts)
	if err != nil {
		return nil, fmt.Errorf("unbounded: allocating fq: %w", err)
	}
	fq.InitFull()
	r := &ring[T]{aq: aq, fq: fq, data: make([]T, 1<<q.order)}
	q.mem.Alloc(q.ringBytes())
	return r, nil
}

func (q *Queue[T]) ringBytes() int64 {
	// Two index rings of 2n 8-byte entries plus the data array and
	// per-thread records; a close estimate is enough for the memory
	// experiment.
	return 2*(int64(2)<<q.order)*8 + (int64(1)<<q.order)*8 + int64(q.nthreads)*1024
}

// Register claims a thread slot.
func (q *Queue[T]) Register() (*Handle, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.free) == 0 {
		return nil, fmt.Errorf("unbounded: all %d thread slots registered", q.nthreads)
	}
	tid := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	return &Handle{tid: tid}, nil
}

// Unregister releases a thread slot.
func (q *Queue[T]) Unregister(h *Handle) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.free = append(q.free, h.tid)
}

// Footprint returns live queue-owned bytes (all linked rings).
func (q *Queue[T]) Footprint() int64 { return q.mem.Live() }

// Enqueue appends v. Always succeeds (unbounded); lock-free.
func (q *Queue[T]) Enqueue(h *Handle, v T) {
	for {
		lt := q.tail.Load()
		if n := lt.next.Load(); n != nil {
			q.tail.CompareAndSwap(lt, n) // help advance
			continue
		}
		if lt.enq(h.tid, v) {
			return
		}
		// Ring finalized: append a fresh ring carrying v.
		nr, err := q.newRing()
		if err != nil {
			panic(err) // allocation of a fixed-size ring cannot fail
		}
		if !nr.enq(h.tid, v) {
			panic("unbounded: enqueue on a fresh ring failed")
		}
		if lt.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(lt, nr)
			return
		}
		// Lost the append race; drop our ring and retry into theirs.
		q.mem.Free(q.ringBytes())
	}
}

// Dequeue removes the oldest value, or returns ok=false when the whole
// queue is empty. Per-ring wait-free.
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) {
	for {
		lh := q.head.Load()
		if v, ok := lh.deq(h.tid); ok {
			return v, true
		}
		if lh.next.Load() == nil {
			return v, false // no successor: genuinely empty
		}
		// A successor exists, so lh is finalized (finalize always
		// precedes append). Re-arm the threshold and drain once more
		// before unlinking (Figure 13, lines 59-63): the reset gives
		// dequeuers the full 3n−1 budget to find stragglers whose F&A
		// predated the finalize.
		lh.aq.ResetThreshold()
		if v, ok := lh.deq(h.tid); ok {
			return v, true
		}
		next := lh.next.Load()
		if q.head.CompareAndSwap(lh, next) {
			q.mem.Free(q.ringBytes()) // unlinked ring: reclaimed by GC
		}
	}
}
