package unbounded

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
	"wcqueue/internal/core"
)

func TestUnboundedSequential(t *testing.T) {
	q := Must[uint64](4, 0, core.Options{}) // tiny rings force hopping
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000 // ≫ ring capacity 16: exercises finalize + append
	for i := uint64(0); i < n; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained queue yielded a value")
	}
}

func TestUnboundedGrowsBeyondOneRing(t *testing.T) {
	q := Must[uint64](3, 0, core.Options{}) // capacity 8 per ring
	h, _ := q.Register()
	before := q.Footprint()
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(h, i)
	}
	if q.Footprint() <= before {
		t.Fatalf("footprint did not grow: %d -> %d", before, q.Footprint())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestUnboundedShrinksAfterDrain(t *testing.T) {
	q := Must[uint64](3, 0, core.Options{})
	h, _ := q.Register()
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(h, i)
	}
	grown := q.Footprint()
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
	}
	if q.Footprint() >= grown {
		t.Fatalf("footprint did not shrink after drain: grown=%d now=%d", grown, q.Footprint())
	}
}

func TestUnboundedInterleaved(t *testing.T) {
	q := Must[uint64](2, 0, core.Options{}) // capacity 4: constant hopping
	h, _ := q.Register()
	next, out := uint64(0), uint64(0)
	for i := 0; i < 5000; i++ {
		for j := 0; j < (i%7)+1; j++ {
			q.Enqueue(h, next)
			next++
		}
		for j := 0; j < (i%5)+1 && out < next; j++ {
			v, ok := q.Dequeue(h)
			if !ok {
				t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
			}
			if v != out {
				t.Fatalf("iter %d: got %d want %d", i, v, out)
			}
			out++
		}
	}
}

func TestUnboundedConcurrentMPMC(t *testing.T) {
	producers, consumers := 4, 4
	per := uint64(20_000)
	if testing.Short() {
		per = 2_000
	}
	q := Must[uint64](8, 0, core.Options{}) // rings ≪ total volume
	runMPMC(t, q, producers, consumers, per)
}

func TestUnboundedConcurrentTinyRings(t *testing.T) {
	producers, consumers := 4, 4
	per := uint64(5_000)
	if testing.Short() {
		per = 500
	}
	q := Must[uint64](4, 0, core.Options{})
	runMPMC(t, q, producers, consumers, per)
}

func TestUnboundedConcurrentForcedSlowPath(t *testing.T) {
	producers, consumers := 4, 4
	per := uint64(3_000)
	if testing.Short() {
		per = 300
	}
	opts := core.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q := Must[uint64](5, 0, opts)
	runMPMC(t, q, producers, consumers, per)
}

func runMPMC(t *testing.T, q *Queue[uint64], producers, consumers int, per uint64) {
	t.Helper()
	var wg sync.WaitGroup
	streams := make([][]uint64, consumers)
	total := uint64(producers) * per
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			budget := total / uint64(consumers)
			if c == 0 {
				budget += total % uint64(consumers)
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := q.Dequeue(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle) {
			defer wg.Done()
			for s := uint64(0); s < per; s++ {
				q.Enqueue(h, check.Encode(p, s))
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedRegisterExhaustion(t *testing.T) {
	q := Must[uint64](4, 0, core.Options{MaxHandles: 1})
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("over-registration accepted")
	}
	q.Unregister(h)
	if _, err := q.Register(); err != nil {
		t.Fatalf("Register after Unregister failed: %v", err)
	}
}

// TestUnboundedHandleFollowsRingHops churns a late-registered handle
// across many ring hops: every fresh or recycled ring must materialize
// its record on first touch, with the high-water mark flat throughout.
func TestUnboundedHandleFollowsRingHops(t *testing.T) {
	q := Must[uint64](3, 4, core.Options{})
	for round := 0; round < 50; round++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(round) << 16
		for i := uint64(0); i < 40; i++ { // ~5 ring hops per round
			q.Enqueue(h, base+i)
		}
		for i := uint64(0); i < 40; i++ {
			v, ok := q.Dequeue(h)
			if !ok || v != base+i {
				t.Fatalf("round %d: got (%d,%v) want %d", round, v, ok, base+i)
			}
		}
		q.Unregister(h)
	}
	if hw := q.HandleHighWater(); hw != 1 {
		t.Fatalf("register/unregister churn grew high-water to %d", hw)
	}
}

// TestUnboundedBatchConcurrentTinyRings hammers the batched paths over
// 8-slot rings so batches constantly straddle finalization boundaries,
// then runs the standard MPMC checks.
func TestUnboundedBatchConcurrentTinyRings(t *testing.T) {
	const producers, consumers, batch = 3, 3, 8
	per := uint64(4000)
	if testing.Short() {
		per = 400
	}
	q := Must[uint64](3, 0, core.Options{})
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			budget := total / consumers
			local := make([]uint64, 0, budget)
			buf := make([]uint64, batch)
			for uint64(len(local)) < budget {
				k := budget - uint64(len(local)) // never overfetch past the budget
				if k > batch {
					k = batch
				}
				n := q.DequeueBatch(h, buf[:k])
				if n == 0 {
					runtime.Gosched()
					continue
				}
				local = append(local, buf[:n]...)
				for i := 0; i < n; i++ {
					consumed.Done()
				}
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle) {
			defer wg.Done()
			defer q.Unregister(h)
			buf := make([]uint64, batch)
			for s := uint64(0); s < per; {
				k := per - s
				if k > batch {
					k = batch
				}
				for i := uint64(0); i < k; i++ {
					buf[i] = check.Encode(p, s+i)
				}
				q.EnqueueBatch(h, buf[:k]) // never fails
				s += k
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestUnboundedStatsAndMaxOps covers the aggregate accessors while the
// queue spans several rings.
func TestUnboundedStatsAndMaxOps(t *testing.T) {
	q := Must[uint64](3, 0, core.Options{})
	if q.MaxOps() == 0 {
		t.Fatal("MaxOps() = 0")
	}
	h, _ := q.Register()
	for i := uint64(0); i < 200; i++ { // spans many 8-slot rings
		q.Enqueue(h, i)
	}
	_ = q.Stats() // walks the live ring list; must not panic
	for i := uint64(0); i < 200; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i {
			t.Fatalf("dequeue %d: (%d,%v)", i, v, ok)
		}
	}
}
