//go:build wcq_failpoints

package waitq

// Deterministic version of the Cancel/Signal token-forward race: the
// canceling thread is frozen at waitq/cancel-forward — token chosen
// for it by a signaler, absorption and re-Signal still pending. While
// it is frozen the wakeup is delayed, and the moment it resumes the
// token must land on the remaining waiter. A lost token here is the
// classic eventcount bug this window exists to guard.

import (
	"testing"
	"time"

	"wcqueue/internal/failpoint"
)

func TestCancelForwardStallDelaysButNeverLosesToken(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()

	var ec EventCount
	w1, w2 := NewWaiter(), NewWaiter()
	ec.Prepare(w1)
	ec.Prepare(w2)
	ec.Signal() // FIFO: pops w1, its token is buffered

	failpoint.Arm(failpoint.WaitqCancelForward, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})
	cancelDone := make(chan struct{})
	go func() {
		defer close(cancelDone)
		ec.Cancel(w1) // w1 already popped: takes the forward path
	}()

	deadline := time.Now().Add(10 * time.Second)
	for failpoint.Parked(failpoint.WaitqCancelForward) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if failpoint.Parked(failpoint.WaitqCancelForward) == 0 {
		failpoint.Release(failpoint.WaitqCancelForward)
		<-cancelDone
		t.Fatal("Cancel never reached the forward window")
	}

	// Frozen mid-forward: w2 must NOT have been woken yet (the token
	// is still parked with the canceler), and w1's token is intact.
	select {
	case <-w2.ch:
		t.Fatal("w2 woke while the forwarding canceler was frozen")
	case <-time.After(100 * time.Millisecond):
	}
	if got := ec.nwait.Load(); got != 1 {
		t.Fatalf("nwait = %d while frozen, want 1 (w2 armed)", got)
	}

	failpoint.Release(failpoint.WaitqCancelForward)
	select {
	case <-cancelDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Cancel did not finish after release")
	}
	select {
	case <-w2.ch: // delayed, not lost
	case <-time.After(5 * time.Second):
		t.Fatal("token lost across the frozen forward")
	}
	select {
	case <-w1.ch:
		t.Fatal("canceled waiter kept a token")
	case <-w2.ch:
		t.Fatal("second token materialized")
	default:
	}
	if ec.HasWaiters() {
		t.Fatal("waiters still armed at the end")
	}
}
