// Package waitq implements the eventcount that turns the repository's
// non-blocking queues into blocking ones (DESIGN.md §10).
//
// An eventcount is the condition-variable analogue for lock-free data
// structures: waiters announce intent to sleep (Prepare), re-check the
// data structure, and only then park (Wait); producers make their
// update visible and then wake waiters (Signal/Broadcast). The
// announce-recheck-park order is what closes the lost-wakeup race
// without adding any synchronization to the producers' fast path —
// when no waiter is armed, Signal is a single atomic load that finds
// zero and returns.
//
// Protocol, from the waiter's side:
//
//	w := waitq.NewWaiter()          // or reuse a per-handle Waiter
//	for {
//		ec.Prepare(w)               // arm: visible to all signalers
//		if condition() {            // re-check AFTER arming
//			ec.Cancel(w)            // condition won the race
//			return
//		}
//		if err := ec.Wait(ctx, w); err != nil {
//			return                  // ctx canceled; w already disarmed
//		}
//	}                               // woken: loop and re-check
//
// and from the signaler's side:
//
//	makeConditionTrue()             // e.g. the successful enqueue
//	ec.Signal()                     // after the update is visible
//
// Both sides use sequentially consistent atomics, so either the
// signaler observes the armed waiter (and wakes it) or the waiter's
// re-check observes the update (and cancels) — there is no
// interleaving in which the update lands between the re-check and the
// park yet the waiter sleeps: the wakeup token is buffered in the
// waiter's channel and consumed by the park.
//
// Waiters park on a per-Waiter buffered channel rather than a raw
// futex/semaphore (which the Go runtime does not export) — the
// buffered send is exactly the "stored wakeup" a semaphore provides,
// and the channel composes with context cancellation via select.
package waitq

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"wcqueue/internal/failpoint"
)

// EventCount is the parking site. The zero value is ready to use.
type EventCount struct {
	// nwait counts armed waiters. It is the signalers' fast-path gate:
	// Signal and Broadcast load it first and return immediately on
	// zero, so a queue with no blocked callers pays one uncontended,
	// read-shared atomic load per operation and nothing else.
	nwait atomic.Int32

	// epoch counts wake rounds (signals and broadcasts that found at
	// least one waiter) — a telemetry and test hook for observing that
	// wakeups are flowing, bumped only on the (already mutex-guarded)
	// wake path.
	epoch atomic.Uint64

	// waits and wakes are cumulative telemetry: waits counts parks
	// (callers that reached Wait and slept, including those later
	// canceled by their context) and wakes counts waiters actually
	// popped and handed a token. Both live off the fast path: waits is
	// bumped only by a caller already committed to sleeping, wakes only
	// inside the mutex-guarded wake pop.
	waits atomic.Uint64
	wakes atomic.Uint64

	// mu guards the FIFO list of armed waiters. It is only ever taken
	// by threads that are about to sleep or about to wake a sleeper —
	// never on a fast path.
	mu   sync.Mutex
	head *Waiter
	tail *Waiter
}

// Waiter is one parkable caller. A Waiter may be reused for any number
// of Prepare/Wait cycles on any EventCounts, but belongs to a single
// goroutine at a time (queue handles embed one, inheriting the
// handle's no-concurrent-sharing contract).
type Waiter struct {
	ch    chan struct{} // wakeup token, buffered 1
	next  *Waiter
	armed bool // guarded by the EventCount's mu
}

// NewWaiter allocates a Waiter.
func NewWaiter() *Waiter {
	return &Waiter{ch: make(chan struct{}, 1)}
}

// HasWaiters reports whether any caller is armed or parked — the load
// the queues' fast paths use to skip Signal entirely.
func (ec *EventCount) HasWaiters() bool { return ec.nwait.Load() != 0 }

// Epoch returns the wake-round count: how many Signal/Broadcast calls
// found at least one waiter to wake. A telemetry and test hook (no
// queue algorithm depends on it).
func (ec *EventCount) Epoch() uint64 { return ec.epoch.Load() }

// Waiters returns the number of currently armed or parked waiters —
// the instantaneous depth gauge the Stats plumbing exports. One atomic
// load; safe to poll at high frequency.
func (ec *EventCount) Waiters() int { return int(ec.nwait.Load()) }

// Waits returns the cumulative number of parks: callers that armed,
// re-checked, and actually slept in Wait. Monotonic telemetry.
func (ec *EventCount) Waits() uint64 { return ec.waits.Load() }

// Wakes returns the cumulative number of waiters woken (popped and
// handed a token by Signal/SignalN/Broadcast). Monotonic telemetry.
func (ec *EventCount) Wakes() uint64 { return ec.wakes.Load() }

// Wedge seizes the eventcount's internal mutex and returns the release
// function, blocking every Prepare, Cancel, and wake until released. A
// TEST HOOK ONLY: it exists so tests can prove a code path never
// touches the park machinery (it would deadlock here if it did). Never
// call it from production code.
func (ec *EventCount) Wedge() (unwedge func()) {
	ec.mu.Lock()
	return ec.mu.Unlock
}

// Prepare arms w: from the moment Prepare returns, any Signal or
// Broadcast will wake w (or a waiter armed before it). The caller must
// re-check its wait condition after Prepare and either Cancel (if the
// condition now holds) or Wait. Prepare on an armed waiter is a
// programming error.
func (ec *EventCount) Prepare(w *Waiter) {
	ec.mu.Lock()
	w.next = nil
	w.armed = true
	if ec.tail == nil {
		ec.head, ec.tail = w, w
	} else {
		ec.tail.next = w
		ec.tail = w
	}
	// Published before the caller's condition re-check (sequentially
	// consistent): a signaler that updates the condition after this
	// point is guaranteed to observe nwait > 0.
	ec.nwait.Add(1)
	ec.mu.Unlock()
}

// Cancel disarms w without sleeping — the caller's re-check found the
// condition satisfied (or the caller is giving up). If a concurrent
// Signal already chose w, Cancel absorbs the wakeup token and passes
// it on to the next armed waiter, so a token is never lost to a caller
// that did not need it.
func (ec *EventCount) Cancel(w *Waiter) {
	ec.mu.Lock()
	if w.armed {
		ec.unlink(w)
		ec.mu.Unlock()
		return
	}
	ec.mu.Unlock()
	// A signaler popped w between the caller's re-check and this
	// Cancel. The token is in flight (the pop-to-send window is a few
	// instructions on the signaler); consume it so w's channel is
	// clean for reuse, then forward the wakeup.
	if failpoint.Enabled {
		// Token absorbed but not yet forwarded once the receive below
		// completes: a thread frozen across this window delays — but
		// must never lose — the wakeup.
		failpoint.Inject(failpoint.WaitqCancelForward)
	}
	<-w.ch
	ec.Signal()
}

// unlink removes an armed w from the FIFO list. Caller holds mu.
func (ec *EventCount) unlink(w *Waiter) {
	var prev *Waiter
	for n := ec.head; n != nil; prev, n = n, n.next {
		if n == w {
			if prev == nil {
				ec.head = n.next
			} else {
				prev.next = n.next
			}
			if ec.tail == w {
				ec.tail = prev
			}
			break
		}
	}
	w.next = nil
	w.armed = false
	ec.nwait.Add(-1)
}

// Wait parks the calling goroutine until a Signal/Broadcast wakes it
// (returns nil) or ctx is done (returns ctx.Err()). On return w is
// disarmed and its channel drained, ready for the next Prepare. w must
// have been armed by Prepare on this EventCount.
func (ec *EventCount) Wait(ctx context.Context, w *Waiter) error {
	ec.waits.Add(1)
	done := ctx.Done()
	if done == nil {
		// A nil Done channel means this context can never be canceled
		// (context.Background and context.TODO are the stdlib cases,
		// but any Context whose Done returns nil qualifies): park on
		// the bare channel and skip the select machinery entirely.
		<-w.ch
		return nil
	}
	select {
	case <-w.ch:
		return nil
	case <-done:
		ec.Cancel(w)
		return ctx.Err()
	}
}

// Signal wakes the longest-parked waiter, if any. Callers invoke it
// after their update to the wait condition is visible. When no waiter
// is armed it is a single atomic load.
func (ec *EventCount) Signal() {
	if ec.nwait.Load() == 0 {
		return
	}
	ec.wake(1)
}

// SignalN wakes up to n longest-parked waiters — the batch-operation
// wakeup (a batch of n values can satisfy n blocked dequeuers). Like
// Signal, it is one atomic load when no waiter is armed.
func (ec *EventCount) SignalN(n int) {
	if n <= 0 || ec.nwait.Load() == 0 {
		return
	}
	ec.wake(n)
}

// Broadcast wakes every armed waiter. Used on state changes that every
// waiter must observe (Close).
func (ec *EventCount) Broadcast() {
	if ec.nwait.Load() == 0 {
		return
	}
	ec.wake(int(^uint(0) >> 1))
}

// wake pops up to n waiters FIFO and delivers their tokens. The send
// happens after the pop (outside any waiter-visible state) and cannot
// block: the channel has capacity 1 and a popped waiter has no
// outstanding token (Prepare requires a drained channel).
func (ec *EventCount) wake(n int) {
	var first, last *Waiter
	var popped uint64
	ec.mu.Lock()
	for ; n > 0 && ec.head != nil; n-- {
		w := ec.head
		ec.head = w.next
		if ec.head == nil {
			ec.tail = nil
		}
		w.next = nil
		w.armed = false
		ec.nwait.Add(-1)
		if first == nil {
			first = w
		} else {
			last.next = w
		}
		last = w
		popped++
	}
	if first != nil {
		ec.epoch.Add(1)
		ec.wakes.Add(popped)
	}
	ec.mu.Unlock()
	for w := first; w != nil; {
		next := w.next
		w.next = nil
		w.ch <- struct{}{}
		w = next
	}
}

// Spin runs one step of the adaptive pre-park backoff and reports
// whether the caller should keep spinning (true) or proceed to
// Prepare/Wait (false). i is the caller's attempt counter, starting at
// 0. The first activeSpins iterations busy-spin (cheap when the
// producer is mid-enqueue on another core), the next passiveSpins
// yield the processor, and after that the caller should park.
func Spin(i int) bool {
	const activeSpins, passiveSpins = 4, 4
	switch {
	case i < activeSpins:
		spinLoop(16 << uint(i))
		return true
	case i < activeSpins+passiveSpins:
		runtime.Gosched()
		return true
	default:
		return false
	}
}

// spinLoop burns ~n cheap iterations without entering the scheduler.
//
//go:noinline
func spinLoop(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}
