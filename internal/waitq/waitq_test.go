package waitq

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSignalWakesOne parks a goroutine through the full
// prepare/re-check/wait protocol and wakes it with Signal.
func TestSignalWakesOne(t *testing.T) {
	var ec EventCount
	var cond atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := NewWaiter()
		for {
			ec.Prepare(w)
			if cond.Load() {
				ec.Cancel(w)
				return
			}
			if err := ec.Wait(context.Background(), w); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Wait until the goroutine is armed, then publish and signal.
	for !ec.HasWaiters() {
		time.Sleep(time.Microsecond)
	}
	cond.Store(true)
	ec.Signal()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
	if ec.HasWaiters() {
		t.Fatal("waiter still armed after completion")
	}
}

// TestSignalBeforeParkIsNotLost covers the critical interleaving: the
// signal fires after Prepare but before Wait parks. The buffered token
// must make Wait return immediately instead of sleeping forever.
func TestSignalBeforeParkIsNotLost(t *testing.T) {
	var ec EventCount
	w := NewWaiter()
	ec.Prepare(w)
	ec.Signal() // lands between the arm and the park
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ec.Wait(context.Background(), w); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-park signal was lost")
	}
}

// TestCancelForwardsToken: when a Signal picks a waiter that Cancels
// instead of parking, the token must pass to the next armed waiter.
func TestCancelForwardsToken(t *testing.T) {
	var ec EventCount
	w1, w2 := NewWaiter(), NewWaiter()
	ec.Prepare(w1)
	ec.Prepare(w2)
	ec.Signal() // chooses w1 (FIFO)
	// w1 gives up without parking: the token must reach w2.
	ec.Cancel(w1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ec.Wait(context.Background(), w2); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("token was not forwarded to the second waiter")
	}
}

// TestWaitContextCancel parks on an empty eventcount and cancels the
// context; Wait must return ctx.Err() and fully disarm the waiter.
func TestWaitContextCancel(t *testing.T) {
	var ec EventCount
	w := NewWaiter()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		ec.Prepare(w)
		errc <- ec.Wait(ctx, w)
	}()
	for !ec.HasWaiters() {
		time.Sleep(time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Wait never returned")
	}
	if ec.HasWaiters() {
		t.Fatal("canceled waiter still armed")
	}
	// The waiter must be clean for reuse: re-arm and take a signal.
	ec.Prepare(w)
	ec.Signal()
	if err := ec.Wait(context.Background(), w); err != nil {
		t.Fatalf("reused waiter: %v", err)
	}
}

// TestBroadcastWakesAll parks N goroutines and releases every one with
// a single Broadcast.
func TestBroadcastWakesAll(t *testing.T) {
	var ec EventCount
	const n = 8
	var parked atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWaiter()
			ec.Prepare(w)
			parked.Add(1)
			if err := ec.Wait(context.Background(), w); err != nil {
				t.Error(err)
			}
		}()
	}
	for parked.Load() < n {
		time.Sleep(time.Microsecond)
	}
	// All armed (parked.Add happens after Prepare); one broadcast.
	ec.Broadcast()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("broadcast stranded waiters (%d armed)", ec.nwait.Load())
	}
}

// TestNoLostWakeupStress hammers the full protocol from both sides: a
// producer increments a counter and signals; consumers run the
// prepare/re-check/park loop until they have claimed their share. Any
// lost wakeup deadlocks the test (and the -race build checks the
// protocol's memory ordering).
func TestNoLostWakeupStress(t *testing.T) {
	var ec EventCount
	const consumers = 4
	const total = 20000
	var avail atomic.Int64
	var claimed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWaiter()
			for {
				// Try to claim a unit.
				for {
					n := avail.Load()
					if n == 0 {
						break
					}
					if avail.CompareAndSwap(n, n-1) {
						if claimed.Add(1) >= total {
							ec.Broadcast() // release peers at the end
						}
						break
					}
				}
				if claimed.Load() >= total {
					return
				}
				ec.Prepare(w)
				if avail.Load() > 0 || claimed.Load() >= total {
					ec.Cancel(w)
					continue
				}
				if err := ec.Wait(context.Background(), w); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		avail.Add(1)
		ec.Signal()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("lost wakeup: %d/%d claimed, %d armed", claimed.Load(), total, ec.nwait.Load())
	}
	if got := claimed.Load(); got < total {
		t.Fatalf("claimed %d, want >= %d", got, total)
	}
}

// TestEpochMovesOnWake asserts the epoch advances exactly on wake
// rounds that found a waiter.
func TestEpochMovesOnWake(t *testing.T) {
	var ec EventCount
	e0 := ec.Epoch()
	ec.Signal() // no waiters: epoch must not move
	if ec.Epoch() != e0 {
		t.Fatal("signal with no waiters moved the epoch")
	}
	w := NewWaiter()
	ec.Prepare(w)
	ec.Signal()
	if ec.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", ec.Epoch(), e0+1)
	}
	<-w.ch // drain the token
}

// TestSpinSchedule sanity-checks the backoff shape: some spinning
// iterations, then a hand-off to parking.
func TestSpinSchedule(t *testing.T) {
	n := 0
	for Spin(n) {
		n++
		if n > 1000 {
			t.Fatal("Spin never said stop")
		}
	}
	if n == 0 {
		t.Fatal("Spin never said spin")
	}
}

// TestCancelRacingSignalN races the two orders TestCancelForwardsToken
// serializes: SignalN(1) may pop w1 before or after Cancel(w1) unlinks
// it. In both interleavings exactly one token must end up at w2 —
// never zero (lost wakeup) and never two (spurious second wake).
func TestCancelRacingSignalN(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var ec EventCount
	w1, w2 := NewWaiter(), NewWaiter()
	for i := 0; i < iters; i++ {
		ec.Prepare(w1)
		ec.Prepare(w2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); ec.SignalN(1) }()
		go func() { defer wg.Done(); ec.Cancel(w1) }()
		wg.Wait()
		// Whichever side won the race, the single token reaches w2:
		// either SignalN popped w1 and Cancel forwarded, or Cancel
		// unlinked first and SignalN popped w2 directly.
		select {
		case <-w2.ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: token lost between SignalN and Cancel", i)
		}
		select {
		case <-w2.ch:
			t.Fatalf("iter %d: second token delivered to w2", i)
		case <-w1.ch:
			t.Fatalf("iter %d: canceled waiter kept a token", i)
		default:
		}
		if ec.HasWaiters() {
			t.Fatalf("iter %d: waiters still armed after the round", i)
		}
	}
}

// TestWaitWakeCounters pins the telemetry contract: Waiters tracks the
// armed count, Waits counts actual parks (not Prepare/Cancel rounds),
// and Wakes counts tokens delivered by the wake path.
func TestWaitWakeCounters(t *testing.T) {
	var ec EventCount
	w := NewWaiter()

	// Prepare+Cancel arms and disarms without parking: the gauge moves,
	// the cumulative counters do not.
	ec.Prepare(w)
	if ec.Waiters() != 1 {
		t.Fatalf("Waiters after Prepare = %d, want 1", ec.Waiters())
	}
	ec.Cancel(w)
	if ec.Waiters() != 0 || ec.Waits() != 0 || ec.Wakes() != 0 {
		t.Fatalf("after Prepare/Cancel: waiters %d waits %d wakes %d, want all 0",
			ec.Waiters(), ec.Waits(), ec.Wakes())
	}

	// A real park/signal round moves both cumulative counters by one.
	const rounds = 5
	for i := 0; i < rounds; i++ {
		parked := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			ec.Prepare(w)
			close(parked)
			done <- ec.Wait(context.Background(), w)
		}()
		<-parked
		for ec.Waiters() == 0 {
			runtime.Gosched()
		}
		ec.Signal()
		if err := <-done; err != nil {
			t.Fatalf("round %d: Wait = %v", i, err)
		}
	}
	if ec.Waiters() != 0 {
		t.Fatalf("Waiters after drain = %d, want 0", ec.Waiters())
	}
	if ec.Waits() != rounds {
		t.Fatalf("Waits = %d, want %d", ec.Waits(), rounds)
	}
	if ec.Wakes() != rounds {
		t.Fatalf("Wakes = %d, want %d", ec.Wakes(), rounds)
	}

	// A context-cancelled park counts as a wait but not a wake.
	ctx, cancel := context.WithCancel(context.Background())
	armed := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ec.Prepare(w)
		close(armed)
		done <- ec.Wait(ctx, w)
	}()
	<-armed
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled Wait = %v", err)
	}
	if ec.Waits() != rounds+1 || ec.Wakes() != rounds {
		t.Fatalf("after cancelled park: waits %d wakes %d, want %d/%d",
			ec.Waits(), ec.Wakes(), rounds+1, rounds)
	}
}

// TestWedge pins the test hook: while wedged, Prepare blocks; after
// release it proceeds.
func TestWedge(t *testing.T) {
	var ec EventCount
	unwedge := ec.Wedge()
	prepared := make(chan struct{})
	go func() {
		w := NewWaiter()
		ec.Prepare(w)
		ec.Cancel(w)
		close(prepared)
	}()
	select {
	case <-prepared:
		t.Fatal("Prepare proceeded through a wedged eventcount")
	case <-time.After(20 * time.Millisecond):
	}
	unwedge()
	select {
	case <-prepared:
	case <-time.After(10 * time.Second):
		t.Fatal("Prepare still blocked after unwedge")
	}
}
