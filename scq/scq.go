// Package scq is the public API of the lock-free SCQ queue (Nikolaev,
// DISC '19), the substrate wCQ builds on and a baseline in the paper's
// evaluation. SCQ matches wCQ's memory efficiency and slightly exceeds
// its throughput, but individual operations may starve under an
// adversarial schedule (lock-freedom, not wait-freedom).
//
// SCQ needs no per-thread state, so there are no handles:
//
//	q, _ := scq.New[*Request](16)
//	q.Enqueue(req)
//	v, ok := q.Dequeue()
package scq

import internal "wcqueue/internal/scq"

// Queue is a bounded lock-free MPMC FIFO queue of values of type T
// with statically bounded memory.
type Queue[T any] struct {
	q *internal.Queue[T]
}

// Option configures queue construction.
type Option func(*options)

type options struct{ emulFAA bool }

// WithEmulatedFAA replaces hardware fetch-and-add and atomic OR with
// CAS loops, modeling LL/SC architectures (paper §4).
func WithEmulatedFAA() Option { return func(o *options) { o.emulFAA = true } }

// New creates a queue holding up to 2^order values.
func New[T any](order uint, opts ...Option) (*Queue[T], error) {
	var o options
	for _, f := range opts {
		f(&o)
	}
	var iopts []internal.Option
	if o.emulFAA {
		iopts = append(iopts, internal.WithEmulatedFAA())
	}
	q, err := internal.New[T](order, iopts...)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{q: q}, nil
}

// Must is New that panics on error.
func Must[T any](order uint, opts ...Option) *Queue[T] {
	q, err := New[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Enqueue inserts v, returning false if the queue is full. Lock-free.
// wcq:noalloc
func (q *Queue[T]) Enqueue(v T) bool { return q.q.Enqueue(v) }

// Dequeue removes the oldest value, returning ok=false when the queue
// is empty. Lock-free.
// wcq:noalloc
func (q *Queue[T]) Dequeue() (v T, ok bool) { return q.q.Dequeue() }

// EnqueueBatch inserts up to len(vs) values in order and returns how
// many were inserted (fewer only when the queue fills). A batch of k
// reserves its ring positions with one fetch-and-add per ring instead
// of k. Lock-free.
// wcq:noalloc
func (q *Queue[T]) EnqueueBatch(vs []T) int { return q.q.EnqueueBatch(vs) }

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued. Lock-free.
// wcq:noalloc
func (q *Queue[T]) DequeueBatch(out []T) int { return q.q.DequeueBatch(out) }

// Cap returns the queue capacity (2^order).
func (q *Queue[T]) Cap() int { return q.q.Cap() }

// Footprint returns the queue's memory usage in bytes; constant.
func (q *Queue[T]) Footprint() int64 { return q.q.Footprint() }
