package scq_test

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/scq"
)

func TestQueueBasics(t *testing.T) {
	q := scq.Must[string](4)
	if q.Cap() != 16 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if !q.Enqueue("x") {
		t.Fatal("enqueue failed")
	}
	if v, ok := q.Dequeue(); !ok || v != "x" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue yielded a value")
	}
}

func TestFullSemantics(t *testing.T) {
	q := scq.Must[int](2)
	for i := 0; i < 4; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue at capacity succeeded")
	}
	q.Dequeue()
	if !q.Enqueue(4) {
		t.Fatal("enqueue after free failed")
	}
}

func TestEmulatedFAAOption(t *testing.T) {
	q := scq.Must[int](6, scq.WithEmulatedFAA())
	for i := 0; i < 200; i++ {
		q.Enqueue(i)
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("iter %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := scq.New[int](0); err == nil {
		t.Fatal("order 0 accepted")
	}
}

func TestConcurrent(t *testing.T) {
	q := scq.Must[int](10)
	n := runtime.GOMAXPROCS(0) + 2
	per := 5000
	if testing.Short() {
		per = 500
	}
	var wg sync.WaitGroup
	var sum int64
	var mu sync.Mutex
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < per; i++ {
				for !q.Enqueue(i) {
					runtime.Gosched()
				}
				for {
					if v, ok := q.Dequeue(); ok {
						local += int64(v)
						break
					}
					runtime.Gosched()
				}
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	var want int64
	for i := 0; i < per; i++ {
		want += int64(i)
	}
	want *= int64(n)
	if sum != want {
		t.Fatalf("value sum %d, want %d", sum, want)
	}
}

func TestFootprintConstant(t *testing.T) {
	q := scq.Must[int](8)
	before := q.Footprint()
	for i := 0; i < 10_000; i++ {
		q.Enqueue(i)
		q.Dequeue()
	}
	if q.Footprint() != before {
		t.Fatalf("footprint changed: %d -> %d", before, q.Footprint())
	}
}
