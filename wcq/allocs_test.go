//go:build !race

// Allocation-regression tests for the Direct front-end hot paths added
// in PR 8: the handle-window explicit path, the opt-in coalescing path,
// and the pooled/resident implicit path (which the registry's
// allocation suite no longer exercises directly — wCQ-Direct registers
// real handles there). Guarded by !race because the race detector
// deliberately drops sync.Pool puts, making pooled handles allocate on
// every call.

package wcq

import "testing"

func TestDirectHandlePathAllocationFree(t *testing.T) {
	q, err := NewDirect[uint32](6)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	for i := uint32(0); i < 64; i++ { // steady state before measuring
		h.Enqueue(i)
		h.Dequeue()
	}
	avg := testing.AllocsPerRun(200, func() {
		if !h.Enqueue(42) {
			t.Fatal("enqueue failed")
		}
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	if avg != 0 {
		t.Fatalf("handle scalar pairwise allocates %.2f objects/op, want 0", avg)
	}
}

func TestDirectCoalescingPathAllocationFree(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(8))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 64; i++ {
		h.Enqueue(i)
		h.Dequeue()
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := uint32(0); i < 8; i++ { // full window: buffer, flush, prefetch
			if !h.Enqueue(i) {
				t.Fatal("enqueue failed")
			}
		}
		for i := 0; i < 8; i++ {
			if _, ok := h.Dequeue(); !ok {
				t.Fatal("dequeue failed")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("coalescing pairwise allocates %.2f objects/op, want 0", avg)
	}
	if lost := h.Unregister(); lost != 0 {
		t.Fatalf("Unregister reported %d undelivered", lost)
	}
}

func TestDirectImplicitResidentPathAllocationFree(t *testing.T) {
	q, err := NewDirect[uint32](6)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 64; i++ { // install the resident handle
		q.Enqueue(i)
		q.Dequeue()
	}
	avg := testing.AllocsPerRun(200, func() {
		if !q.Enqueue(7) {
			t.Fatal("enqueue failed")
		}
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	if avg != 0 {
		t.Fatalf("implicit pairwise allocates %.2f objects/op, want 0", avg)
	}
}
