package wcq_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcqueue/wcq"
)

// TestQueueBlockingRoundTrip smoke-tests the bounded shape's blocking
// API through both call styles: handle-free producer, explicit-handle
// consumer, then close and drain.
func TestQueueBlockingRoundTrip(t *testing.T) {
	q := wcq.Must[int](4)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	if err := q.EnqueueWait(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if v, err := h.DequeueWait(context.Background()); err != nil || v != 1 {
		t.Fatalf("got (%d, %v), want (1, nil)", v, err)
	}
	if err := h.EnqueueWait(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.Enqueue(3) {
		t.Fatal("handle-free enqueue succeeded after Close")
	}
	if v, err := q.DequeueBlock(); err != nil || v != 2 {
		t.Fatalf("drain got (%d, %v), want (2, nil)", v, err)
	}
	if _, err := h.DequeueBlock(); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("drained DequeueBlock = %v, want ErrClosed", err)
	}
	if _, err := q.DequeueWait(context.Background()); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("drained handle-free DequeueWait = %v, want ErrClosed", err)
	}
}

// TestUnboundedBlockingRoundTrip is the same smoke test on the
// unbounded shape, whose Enqueue now reports closure.
func TestUnboundedBlockingRoundTrip(t *testing.T) {
	q := wcq.MustUnbounded[int](3)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	if !h.Enqueue(1) {
		t.Fatal("enqueue on open unbounded queue failed")
	}
	if v, err := q.DequeueWait(context.Background()); err != nil || v != 1 {
		t.Fatalf("got (%d, %v), want (1, nil)", v, err)
	}
	q.Enqueue(2)
	q.Close()
	if q.Enqueue(3) {
		t.Fatal("enqueue succeeded after Close")
	}
	if err := h.EnqueueWait(context.Background(), 3); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("EnqueueWait after Close = %v, want ErrClosed", err)
	}
	if v, err := h.DequeueBlock(); err != nil || v != 2 {
		t.Fatalf("drain got (%d, %v), want (2, nil)", v, err)
	}
	if _, err := q.DequeueBlock(); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("drained DequeueBlock = %v, want ErrClosed", err)
	}
}

// TestStripedBlockingLostWakeupRegression is the regression test for
// the striped lost-wakeup hazard: the emptiness scan in Dequeue is
// non-linearizable, so a consumer that scanned, found nothing, and
// parked could miss a value that landed in an already-scanned lane.
// DequeueWait must re-scan between arming the waiter and parking.
//
// The test hands exactly one value at a time to a parked (or parking)
// consumer, with the producer cycling through lanes — including the
// consumer's own lane, the first one its scan passes — under
// randomized timing that covers the scan/arm/park window. A lost
// wakeup surfaces as a context timeout rather than a hang.
func TestStripedBlockingLostWakeupRegression(t *testing.T) {
	const stripes = 4
	s := wcq.MustStriped[int](4, stripes)
	consumer, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Unregister()
	// Producer handles pinned one per lane, so each iteration can
	// target any lane relative to the consumer's scan order.
	producers := make([]*wcq.StripedHandle[int], stripes)
	byLane := make(map[int]*wcq.StripedHandle[int], stripes)
	for i := range producers {
		p, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		defer p.Unregister()
		producers[i] = p
		byLane[p.Lane()] = p
	}
	iters := 2000
	if testing.Short() || raceEnabled {
		iters = 300
	}
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	wg.Add(1)
	received := make([]int, 0, iters)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			v, err := consumer.DequeueWait(ctx)
			cancel()
			if err != nil {
				t.Errorf("iteration %d: lost wakeup? DequeueWait: %v", i, err)
				return
			}
			received = append(received, v)
		}
	}()
	for i := 0; i < iters; i++ {
		// Target the consumer's own lane most often: it is the first
		// lane the scan passes, i.e. the most "already-scanned" one.
		lane := consumer.Lane()
		if i%3 == 1 {
			lane = (consumer.Lane() + 1 + rng.Intn(stripes-1)) % stripes
		}
		p := byLane[lane]
		if p == nil {
			p = producers[lane%len(producers)]
		}
		// Randomize where in the consumer's scan/arm/park sequence
		// the enqueue lands.
		switch rng.Intn(3) {
		case 0: // likely parked
			time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
		case 1: // likely mid-spin or mid-arm
			time.Sleep(time.Duration(rng.Intn(5)) * time.Microsecond)
		default: // immediate
		}
		if !p.Enqueue(i) {
			t.Fatalf("iteration %d: enqueue failed", i)
		}
	}
	wg.Wait()
	if len(received) != iters {
		t.Fatalf("received %d of %d values", len(received), iters)
	}
}

// TestStripedCloseDrainAllLanes closes a striped queue with values
// spread across every lane and checks the drain delivers all of them,
// exactly once, before ErrClosed — through blocked and unblocked
// dequeuers alike.
func TestStripedCloseDrainAllLanes(t *testing.T) {
	const stripes = 4
	s := wcq.MustStriped[int](4, stripes)
	var handles []*wcq.StripedHandle[int]
	for i := 0; i < stripes; i++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Unregister()
		handles = append(handles, h)
	}
	total := 0
	for i, h := range handles {
		for j := 0; j < 5+i; j++ { // uneven per-lane backlogs
			if !h.Enqueue(i*100 + j) {
				t.Fatal("enqueue failed")
			}
			total++
		}
	}
	s.Close()
	if s.Enqueue(999) {
		t.Fatal("enqueue succeeded after Close")
	}
	if err := handles[0].EnqueueWait(context.Background(), 999); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("EnqueueWait after Close = %v", err)
	}
	seen := make(map[int]bool)
	for i := 0; i < total; i++ {
		v, err := s.DequeueWait(context.Background())
		if err != nil {
			t.Fatalf("drain %d/%d: %v", i, total, err)
		}
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if _, err := handles[0].DequeueBlock(); !errors.Is(err, wcq.ErrClosed) {
		t.Fatalf("drained queue: %v, want ErrClosed", err)
	}
}

// TestStripedCloseWakesParkedConsumers parks consumers on an empty
// striped queue; Close must wake all of them with ErrClosed even
// though every lane scan keeps reporting empty.
func TestStripedCloseWakesParkedConsumers(t *testing.T) {
	s := wcq.MustStriped[int](4, 3)
	const parked = 3
	errc := make(chan error, parked)
	for i := 0; i < parked; i++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		go func(h *wcq.StripedHandle[int]) {
			defer h.Unregister()
			_, err := h.DequeueBlock()
			errc <- err
		}(h)
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	for i := 0; i < parked; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, wcq.ErrClosed) {
				t.Fatalf("parked consumer woke with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Close stranded a parked striped consumer")
		}
	}
}

// TestStripedEnqueueWaitFullLane blocks a producer on its full lane
// and frees it with a steal-dequeue from another handle.
func TestStripedEnqueueWaitFullLane(t *testing.T) {
	s := wcq.MustStriped[int](2, 2) // 4 slots per lane
	p, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unregister()
	c, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unregister()
	for i := 0; ; i++ {
		if !p.Enqueue(i) {
			break // lane full
		}
	}
	done := make(chan error, 1)
	go func() { done <- p.EnqueueWait(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	if _, ok := c.Dequeue(); !ok {
		t.Fatal("steal-dequeue from full lane failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked striped producer missed the freed slot")
	}
}

// TestStripedEnqueueWaitTokenRelay is the regression test for the
// stranded-producer hazard: notFull is queue-wide while enqueue
// waiters have per-lane predicates, so the single wakeup token from a
// dequeue can land on a producer whose lane is still full. That
// producer must relay the token to the producer whose lane actually
// freed. The test parks the wrong-lane producer FIRST (FIFO head, so
// it receives the token) and then checks the right-lane producer
// still completes.
func TestStripedEnqueueWaitTokenRelay(t *testing.T) {
	s := wcq.MustStriped[int](1, 2) // 2 lanes × 2 slots
	p0, err := s.Register()         // lane 0
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Unregister()
	p1, err := s.Register() // lane 1
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Unregister()
	if p0.Lane() == p1.Lane() {
		t.Fatalf("handles share lane %d", p0.Lane())
	}
	// Dedicated consumer handles, one per lane (handles must not be
	// shared with the concurrently parked producers): round-robin
	// assignment gives c0 lane 0 and c1 lane 1.
	c0, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Unregister()
	c1, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Unregister()
	if c0.Lane() != p0.Lane() || c1.Lane() != p1.Lane() {
		t.Fatalf("consumer lanes (%d,%d) do not mirror producer lanes (%d,%d)",
			c0.Lane(), c1.Lane(), p0.Lane(), p1.Lane())
	}
	// Fill both lanes.
	for _, p := range []*wcq.StripedHandle[int]{p0, p1} {
		for p.Enqueue(0) {
		}
	}
	// Park the lane-1 producer first: it becomes the eventcount's FIFO
	// head and will receive the token for the lane-0 slot freed below.
	done1 := make(chan error, 1)
	go func() { done1 <- p1.EnqueueWait(context.Background(), 11) }()
	time.Sleep(10 * time.Millisecond)
	done0 := make(chan error, 1)
	go func() { done0 <- p0.EnqueueWait(context.Background(), 10) }()
	time.Sleep(10 * time.Millisecond)
	// Free one slot in lane 0 (p0's lane): c0's own-lane-first scan
	// dequeues from lane 0.
	if _, ok := c0.Dequeue(); !ok {
		t.Fatal("dequeue from full queue failed")
	}
	select {
	case err := <-done0:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("token relay failed: lane-0 producer stranded after its lane freed")
	}
	// p1 is still legitimately parked (lane 1 remains full); release it
	// with a lane-1 dequeue.
	if _, ok := c1.Dequeue(); !ok { // c1 drains its own lane 1 first
		t.Fatal("dequeue from lane 1 failed")
	}
	select {
	case err := <-done1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lane-1 producer stranded after its lane freed")
	}
}

// TestStripedMidRunCloseExactlyOnce: bursty producers, parked
// consumers, Close mid-run; every accepted value is delivered exactly
// once and every participant exits. This is the acceptance-criteria
// stress in miniature (wcqstress -block runs the full version).
func TestStripedMidRunCloseExactlyOnce(t *testing.T) {
	const producers, consumers = 3, 3
	s := wcq.MustStriped[uint64](6, 4)
	var accepted atomic.Uint64
	var wg, pwg sync.WaitGroup
	streams := make([][]uint64, consumers)

	for c := 0; c < consumers; c++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *wcq.StripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			var local []uint64
			for {
				v, err := h.DequeueWait(context.Background())
				if err != nil {
					if !errors.Is(err, wcq.ErrClosed) {
						t.Errorf("consumer %d: %v", c, err)
					}
					streams[c] = local
					return
				}
				local = append(local, v)
			}
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		pwg.Add(1)
		go func(p int, h *wcq.StripedHandle[uint64]) {
			defer pwg.Done()
			defer h.Unregister()
			rng := rand.New(rand.NewSource(int64(p)))
			for s := uint64(0); ; s++ {
				err := h.EnqueueWait(context.Background(), uint64(p)<<32|s)
				if errors.Is(err, wcq.ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				accepted.Add(1)
				if s%64 == 0 { // bursty: stall between bursts
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				}
			}
		}(p, h)
	}
	time.Sleep(25 * time.Millisecond)
	s.Close()
	pwg.Wait()
	wg.Wait()

	seen := make(map[uint64]bool)
	for _, st := range streams {
		for _, v := range st {
			if seen[v] {
				t.Fatalf("value %#x delivered twice", v)
			}
			seen[v] = true
		}
	}
	if uint64(len(seen)) != accepted.Load() {
		t.Fatalf("accepted %d, delivered %d", accepted.Load(), len(seen))
	}
}

// TestDequeueWaitContextCancelPublic covers ctx cancellation through
// the public wrappers of all three shapes.
func TestDequeueWaitContextCancelPublic(t *testing.T) {
	type waiter func(ctx context.Context) error
	q := wcq.Must[int](4)
	u := wcq.MustUnbounded[int](4)
	s := wcq.MustStriped[int](4, 2)
	cases := map[string]waiter{
		"Queue":     func(ctx context.Context) error { _, err := q.DequeueWait(ctx); return err },
		"Unbounded": func(ctx context.Context) error { _, err := u.DequeueWait(ctx); return err },
		"Striped":   func(ctx context.Context) error { _, err := s.DequeueWait(ctx); return err },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- f(ctx) }()
			time.Sleep(5 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancel did not unblock DequeueWait")
			}
		})
	}
}
