package wcq

import "testing"

// Coalescing-handle tests (PR 8 tentpole part 3, DESIGN.md §14): the
// opt-in window buffers back-to-back scalar enqueues into one ring
// reservation and prefetches dequeues the same way, preserving
// per-handle FIFO across every flush boundary.

func TestDirectCoalescingWindowPublish(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if h.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", h.Pending())
	}
	// Deferred visibility: a foreign consumer must not see the window
	// before it flushes.
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("buffered value %d visible before flush", v)
	}
	if !h.Enqueue(3) { // fills the window: one reservation publishes all 4
		t.Fatal("window-filling enqueue failed")
	}
	if h.Pending() != 0 {
		t.Fatalf("Pending = %d after window flush, want 0", h.Pending())
	}
	for i := uint32(0); i < 4; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("got (%d,%v) want %d", v, ok, i)
		}
	}
}

func TestDirectCoalescingFlushBoundaries(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(8))
	if err != nil {
		t.Fatal(err)
	}
	// A dequeue publishes the pending window first, so a handle can
	// never miss its own values.
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Enqueue(42) {
		t.Fatal("enqueue failed")
	}
	if v, ok := h.Dequeue(); !ok || v != 42 {
		t.Fatalf("own-value dequeue got (%d,%v)", v, ok)
	}
	// Flush is an explicit boundary.
	if !h.Enqueue(7) {
		t.Fatal("enqueue failed")
	}
	if !h.Flush() || h.Pending() != 0 {
		t.Fatalf("Flush left Pending = %d", h.Pending())
	}
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("flushed value got (%d,%v)", v, ok)
	}
	// Unregister is a boundary too, and reports full delivery.
	h2, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Enqueue(9) {
		t.Fatal("enqueue failed")
	}
	if lost := h2.Unregister(); lost != 0 {
		t.Fatalf("Unregister reported %d undelivered", lost)
	}
	if v, ok := q.Dequeue(); !ok || v != 9 {
		t.Fatalf("post-Unregister value got (%d,%v)", v, ok)
	}
}

func TestDirectCoalescingPrefetch(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 10; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Dequeue(); !ok || v != 0 {
		t.Fatalf("dequeue got (%d,%v)", v, ok)
	}
	if h.Buffered() != 3 {
		t.Fatalf("Buffered = %d after prefetch, want 3", h.Buffered())
	}
	for i := uint32(1); i < 8; i++ { // 1-3 from the window, 4-7 via refill
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("got (%d,%v) want %d", v, ok, i)
		}
	}
	// Unregister pushes unreturned prefetched values back (they re-enter
	// at the tail, behind 8 and 9).
	h2, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := h2.Dequeue(); !ok || v != 8 {
		t.Fatalf("h2 dequeue got (%d,%v)", v, ok)
	}
	if h2.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", h2.Buffered())
	}
	if lost := h2.Unregister(); lost != 0 {
		t.Fatalf("Unregister reported %d undelivered", lost)
	}
	if v, ok := q.Dequeue(); !ok || v != 9 {
		t.Fatalf("got (%d,%v) want the pushed-back tail to follow 9", v, ok)
	}
}

func TestDirectCoalescingPerHandleFIFO(t *testing.T) {
	q, err := NewDirect[uint32](4, WithCoalescing(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// Irregular enqueue/dequeue interleaving across many window and
	// ring-cycle boundaries: values must come back in insertion order.
	// The backlog is drained below half capacity each round so enqueues
	// never hit a legitimately full ring.
	next, out := uint32(0), uint32(0)
	for i := 0; i < 300; i++ {
		for j := 0; j < (i%4)+1; j++ {
			if !h.Enqueue(next) {
				t.Fatalf("iter %d: enqueue %d failed", i, next)
			}
			next++
		}
		for j := 0; (j < (i%3)+1 || next-out > 8) && out < next; j++ {
			v, ok := h.Dequeue()
			if !ok {
				t.Fatalf("iter %d: empty with %d outstanding", i, next-out)
			}
			if v != out {
				t.Fatalf("iter %d: got %d want %d", i, v, out)
			}
			out++
		}
	}
	for out < next {
		v, ok := h.Dequeue()
		if !ok || v != out {
			t.Fatalf("drain: got (%d,%v) want %d", v, ok, out)
		}
		out++
	}
	if v, ok := h.Dequeue(); ok {
		t.Fatalf("drained queue yielded %d", v)
	}
}

func TestDirectCoalescingBatchOrdering(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// A batch behind a partly filled window must land after it.
	if !h.Enqueue(0) || !h.Enqueue(1) {
		t.Fatal("enqueue failed")
	}
	if n := h.EnqueueBatch([]uint32{2, 3, 4}); n != 3 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]uint32, 8)
	if n := h.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i := uint32(0); i < 5; i++ {
		if out[i] != i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestDirectCoalescingElimination(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// Same-handle produce-consume on an empty ring must eliminate
	// against the pending window: values flow, head never moves.
	head := q.r.Head()
	for i := uint32(0); i < 100; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("got (%d,%v) want %d", v, ok, i)
		}
	}
	if got := q.r.Head(); got != head {
		t.Fatalf("eliminated pairs moved head %d -> %d (ring traffic)", head, got)
	}
	// Elimination preserves window order: buffer two, eliminate both.
	if !h.Enqueue(200) || !h.Enqueue(201) {
		t.Fatal("enqueue failed")
	}
	if v, ok := h.Dequeue(); !ok || v != 200 {
		t.Fatalf("got (%d,%v) want 200", v, ok)
	}
	if v, ok := h.Dequeue(); !ok || v != 201 {
		t.Fatalf("got (%d,%v) want 201", v, ok)
	}
}

func TestDirectCoalescingNoEliminationPastForeignValues(t *testing.T) {
	q, err := NewDirect[uint32](6, WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// A foreign value already in the ring is older than anything this
	// handle buffers: the dequeue must NOT serve the buffer ahead of it.
	if !q.Enqueue(111) {
		t.Fatal("foreign enqueue failed")
	}
	if !h.Enqueue(222) {
		t.Fatal("handle enqueue failed")
	}
	if v, ok := h.Dequeue(); !ok || v != 111 {
		t.Fatalf("got (%d,%v), want the older foreign 111", v, ok)
	}
	if v, ok := h.Dequeue(); !ok || v != 222 {
		t.Fatalf("got (%d,%v) want 222", v, ok)
	}
}

func TestDirectCoalescingWidthPanicAtCall(t *testing.T) {
	q, err := NewDirectOf[uint64](4, UintCodec(8), WithCoalescing(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range value did not panic at the Enqueue call")
			}
		}()
		h.Enqueue(1 << 9) // exceeds the 8-bit codec: must fail NOW, not at flush
	}()
	if h.Pending() != 0 {
		t.Fatalf("panicking enqueue left %d values pending", h.Pending())
	}
	// The handle stays usable.
	if !h.Enqueue(5) || !h.Flush() {
		t.Fatal("handle unusable after recovered panic")
	}
	if v, ok := q.Dequeue(); !ok || v != 5 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}
