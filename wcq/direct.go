// Direct-value queue shapes (DESIGN.md §11).
//
// The indirect shapes (Queue, Striped, Unbounded) move every value
// through two rings — a free-index ring and an allocated-index ring —
// because the value lives in a side array. The Direct shapes store the
// value IN the ring entry, halving the atomic-RMW count per transfer,
// for payloads that fit the entry's value field: up to
// core.MaxDirectValueBits (52) bits. Three ways to get a codec:
//
//	q, _ := wcq.NewDirect[uint32](16)          // integer kinds <= 32 bits:
//	                                           // codec derived at compile time
//	q, _ := wcq.NewDirectOf[uint64](16, wcq.UintCodec(52))
//	q, _ := wcq.NewDirectOf[*Request](16, wcq.PointerCodec[Request]())
//
// The codec contract: Encode must be injective into [0, 2^Bits) and
// Decode its inverse. Values outside the range panic at Enqueue (they
// would corrupt the entry encoding, so the failure is loud).
//
// Trade-offs versus the indirect shapes, in exchange for roughly half
// the atomics per transfer:
//
//   - lock-free, not wait-free (no bits left for the wCQ slow path's
//     Note field at useful payload widths);
//   - a tighter per-ring MaxOps operation budget (the payload squeezes
//     the cycle field; see core.NewDirectRing). The budget is
//     ENFORCED: once MaxOps enqueues have passed through a bounded
//     Direct/DirectStriped ring it permanently reports full — a loud
//     fail-stop instead of silent cycle-wrap corruption. Size order
//     and Bits so MaxOps covers the queue's lifetime traffic, or use
//     DirectUnbounded, whose ring hops renew the budget indefinitely;
//   - PointerCodec stores the pointer BITS: the queue does not keep
//     the referent alive for the garbage collector. Callers must hold
//     another reference (an arena, a registry, the working set) for as
//     long as the value is in flight — the same contract as any
//     uintptr stash;
//   - no blocking/close layer: the Direct shapes are non-blocking
//     only. Consumers that need parking waits use the indirect shapes.
package wcq

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"

	"wcqueue/internal/core"
	"wcqueue/internal/lanedir"
	"wcqueue/internal/unbounded"
)

// Codec maps values of type T to packed payloads of Bits bits and
// back. Encode must be injective into [0, 2^Bits); Decode must invert
// it. Bits is capped at core.MaxDirectValueBits (52).
type Codec[T any] struct {
	Bits   uint
	Encode func(T) uint64
	Decode func(uint64) T
}

// DirectValue is the constraint of NewDirect: integer kinds whose
// width is known at compile time to fit the direct entry's value
// field. 64-bit kinds (int, uint, int64, uint64, uintptr) do not fit
// beside a useful cycle field and take the explicit-codec constructor
// instead (UintCodec for integers known to be narrow, PointerCodec
// for pointers).
type DirectValue interface {
	~int8 | ~int16 | ~int32 | ~uint8 | ~uint16 | ~uint32
}

// directCodec derives the codec for an integer kind: mask on encode
// (bijective on the type's range, negative values map to their
// two's-complement bit pattern), truncating conversion on decode.
func directCodec[T DirectValue]() Codec[T] {
	var z T
	bits := uint(unsafe.Sizeof(z)) * 8
	mask := uint64(1)<<bits - 1
	return Codec[T]{
		Bits:   bits,
		Encode: func(v T) uint64 { return uint64(v) & mask },
		Decode: func(u uint64) T { return T(u) },
	}
}

// UintCodec is the identity codec for uint64 payloads the caller
// guarantees fit in bits (Enqueue panics on one that does not).
func UintCodec(bits uint) Codec[uint64] {
	return Codec[uint64]{
		Bits:   bits,
		Encode: func(v uint64) uint64 { return v },
		Decode: func(u uint64) uint64 { return u },
	}
}

// PointerCodec stores *T pointers directly in ring entries: 48 bits.
// Only pointers into the Go heap are supported — the gc runtime keeps
// heap arenas below 2^48 on every supported platform, so Go-heap
// addresses always fit. Pointers from outside the Go heap (mmap, cgo
// allocations) can exceed 48 bits on LA57 (5-level page table) Linux
// and will panic at Enqueue rather than corrupt the entry encoding.
// The queue holds only the BITS — keep the referent alive elsewhere
// while it is in flight, exactly as with any uintptr stash.
func PointerCodec[T any]() Codec[*T] {
	return Codec[*T]{
		Bits: 48,
		Encode: func(p *T) uint64 {
			return uint64(uintptr(unsafe.Pointer(p)))
		},
		Decode: func(u uint64) *T {
			// The round-trip through uintptr is safe only because the
			// caller keeps the referent reachable (the codec contract
			// above), so the bits cannot dangle; and because today's gc
			// runtime does not move heap objects. That is an
			// implementation detail of the gc runtime, not a language
			// guarantee — this codec must be revisited if the runtime
			// ever compacts the heap. The reconstruction goes through a
			// local so the conversion is explicit to the checker.
			up := uintptr(u)
			return (*T)(*(*unsafe.Pointer)(unsafe.Pointer(&up)))
		},
	}
}

func (c Codec[T]) validate() error {
	if c.Bits < 1 || c.Bits > core.MaxDirectValueBits {
		return fmt.Errorf("wcq: codec width %d out of range [1, %d]", c.Bits, core.MaxDirectValueBits)
	}
	if c.Encode == nil || c.Decode == nil {
		return fmt.Errorf("wcq: codec must define both Encode and Decode")
	}
	return nil
}

// scratchPool loans []uint64 buffers to the handle-free batched paths
// so the steady-state cycle allocates nothing.
type scratchPool struct{ p sync.Pool }

// wcq:noalloc
func (sp *scratchPool) get(k int) *[]uint64 {
	b, _ := sp.p.Get().(*[]uint64)
	if b == nil {
		// wcq:alloc-ok pool-miss path: sync.Pool refills the steady state, so AllocsPerRun's warm-up absorbs the first-cycle make
		s := make([]uint64, k)
		return &s
	}
	if cap(*b) < k {
		// wcq:alloc-ok grow-once on a wider batch than any pooled buffer has seen; reused through the pool thereafter
		*b = make([]uint64, k)
	}
	return b
}

// wcq:noalloc
func (sp *scratchPool) put(b *[]uint64) { sp.p.Put(b) }

// Direct is a bounded lock-free MPMC FIFO queue of direct values:
// one ring, no index indirection. Every method may be called from any
// goroutine directly; the scalar handle-free calls ride a per-P
// resident handle (as Queue[T] does, DESIGN.md §13) so even the
// implicit style gets the handle-local head/tail windows of DESIGN.md
// §14. Hot goroutines hold an explicit DirectHandle.
type Direct[T any] struct {
	r       *core.DirectRing
	codec   Codec[T]
	scratch scratchPool
	pool    handlePool[DirectHandle[T]]

	// coalesce is the WithCoalescing window explicit handles are born
	// with; pooled implicit handles always get zero (a borrowed handle
	// must never hold values across calls).
	coalesce int
}

// NewDirect creates a direct queue holding up to 2^order values of an
// integer kind; the codec is derived from the type. See NewDirectOf
// for wide or non-integer payloads.
func NewDirect[T DirectValue](order uint, opts ...Option) (*Direct[T], error) {
	return NewDirectOf[T](order, directCodec[T](), opts...)
}

// NewDirectOf creates a direct queue with an explicit codec.
func NewDirectOf[T any](order uint, codec Codec[T], opts ...Option) (*Direct[T], error) {
	if err := codec.validate(); err != nil {
		return nil, err
	}
	c := buildConfig(opts)
	r, err := core.NewDirectRing(order, codec.Bits, c.core)
	if err != nil {
		return nil, err
	}
	q := &Direct[T]{r: r, codec: codec, coalesce: c.coalesce}
	q.pool.init(q.registerPlain, func(h *DirectHandle[T]) { h.Unregister() })
	// The direct ring ops are bounded, never yield and — with the value
	// width pre-validated before the pin — cannot panic, so the implicit
	// scalar paths may run them on a per-P resident handle (pool.go),
	// which is also what keeps the handle-local windows effective for
	// the handle-free call style: the same P reuses the same window
	// state across calls.
	q.pool.resident = true
	return q, nil
}

// MustDirect is NewDirect that panics on error.
func MustDirect[T DirectValue](order uint, opts ...Option) *Direct[T] {
	q, err := NewDirect[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// DirectHandle is a registered per-goroutine token of a Direct queue.
// It carries the handle-local ring telemetry of DESIGN.md §14 — cached
// head/tail windows that skip the shared-cacheline full/empty pre-check
// loads while the cache proves the answer, and the amortized threshold
// bank — plus, when the queue was built WithCoalescing, the op-
// coalescing buffers. A DirectHandle must not be shared between
// concurrently running goroutines.
type DirectHandle[T any] struct {
	q *Direct[T]
	h *core.DirectHandle

	// Coalescing state; enq/deq stay nil without WithCoalescing, and
	// the scalar ops take the direct window path. enq[:nenq] holds
	// encoded values accepted but not yet published; deq[deqHead:deqLen]
	// holds prefetched values not yet returned. Encoding happens at the
	// Enqueue call (codec panics fire immediately, not at the flush).
	enq     []uint64
	nenq    int
	deq     []uint64
	deqHead int
	deqLen  int
	scratch []uint64
}

// registerPlain backs the implicit pool: always window-path handles,
// never coalescing buffers — a borrowed handle must not hold values
// across calls.
func (q *Direct[T]) registerPlain() (*DirectHandle[T], error) {
	return &DirectHandle[T]{q: q, h: q.r.NewHandle()}, nil
}

// Register claims an explicit per-goroutine handle — the fast path for
// hot goroutines, and the only place the WithCoalescing window takes
// effect. Registration on the direct shape cannot fail (there is no
// per-handle ring state to allocate slots for); the error keeps the
// signature uniform with the other shapes.
func (q *Direct[T]) Register() (*DirectHandle[T], error) {
	h := &DirectHandle[T]{q: q, h: q.r.NewHandle()}
	if w := q.coalesce; w > 0 {
		if c := int(q.r.N()); w > c {
			w = c // a window past capacity could never flush whole
		}
		h.enq = make([]uint64, w)
		h.deq = make([]uint64, w)
	}
	return h, nil
}

// Unregister releases the handle. A coalescing handle first publishes
// its pending enqueues and re-enqueues any prefetched values it never
// returned (one best-effort pass each — Unregister must stay lock-free,
// so it does not spin on a full or budget-exhausted ring). It returns
// how many buffered values could NOT be delivered; callers that need
// the guarantee of zero call Flush and drain the handle before
// unregistering. Always zero without coalescing. Re-enqueued prefetched
// values re-enter at the tail: per-handle FIFO of the remaining handles
// is unaffected, but those values lose their original positions — the
// documented cost of abandoning a prefetching handle mid-stream.
func (h *DirectHandle[T]) Unregister() (undelivered int) {
	h.flushEnq()
	undelivered = h.nenq
	h.nenq = 0
	if h.deqHead < h.deqLen {
		h.deqHead += h.q.r.EnqueueBatch(h.deq[h.deqHead:h.deqLen])
		undelivered += h.deqLen - h.deqHead
		h.deqHead, h.deqLen = 0, 0
	}
	return undelivered
}

// flushEnq publishes the deferred-enqueue buffer with one ring
// reservation, preserving insertion order; a partial landing (ring
// full or out of budget) compacts the residue to the front. Reports
// whether the buffer fully drained.
// wcq:noalloc
func (h *DirectHandle[T]) flushEnq() bool {
	if h.nenq == 0 {
		return true
	}
	n := h.q.r.EnqueueBatch(h.enq[:h.nenq])
	if n == h.nenq {
		h.nenq = 0
		return true
	}
	copy(h.enq, h.enq[n:h.nenq])
	h.nenq -= n
	return false
}

// Flush publishes any enqueues the coalescing window is still holding,
// reporting whether the buffer fully drained (false: ring full or out
// of budget; the residue stays buffered for the next flush point).
// Always true without coalescing.
// wcq:noalloc
func (h *DirectHandle[T]) Flush() bool { return h.flushEnq() }

// Pending returns the enqueues accepted but not yet published by the
// coalescing window (zero without coalescing).
func (h *DirectHandle[T]) Pending() int { return h.nenq }

// Buffered returns the prefetched values this handle holds but has not
// yet returned (zero without coalescing).
func (h *DirectHandle[T]) Buffered() int { return h.deqLen - h.deqHead }

// Enqueue inserts v, returning false when the queue is full or out of
// budget. With coalescing, true means "accepted for the next flush":
// the value becomes visible when the window fills (one ring reservation
// publishes the whole window) or at the next dequeue/Flush/Unregister
// boundary; false means the window is full AND the ring cannot absorb
// it.
// wcq:noalloc
func (h *DirectHandle[T]) Enqueue(v T) bool {
	u := h.q.codec.Encode(v)
	if h.enq == nil {
		return h.h.Enqueue(u)
	}
	h.q.r.CheckValue(u) // fail at the call that supplied the value, not at the flush
	if h.nenq == len(h.enq) && !h.flushEnq() {
		return false
	}
	h.enq[h.nenq] = u
	h.nenq++
	if h.nenq == len(h.enq) {
		h.flushEnq() // the coalesced publish: one reservation for the whole window
	}
	return true
}

// Dequeue removes the oldest value, or returns ok=false when the queue
// is observed empty. With coalescing it serves from the prefetched
// window first, refilling it with one ring reservation; the pending
// enqueue window is published before any empty conclusion, so a handle
// can never miss its own values (per-handle FIFO).
//
// When the pending window is non-empty and the ring is provably empty,
// the dequeue ELIMINATES against the window instead of flushing: the
// oldest buffered value is returned without any ring traffic. This is
// linearizable — at the instant core.DirectRing.ObservedEmpty
// witnessed tail <= head there was no older value anywhere, so the
// buffered enqueue and this dequeue linearize back-to-back at that
// instant (a net no-op to every peer, which may observe the queue
// empty throughout — exactly as if the pair ran atomically). This is
// what closes the FAA gap for same-handle produce-consume traffic:
// the pair costs two shared loads instead of two F&As plus two entry
// RMWs. See DESIGN.md §14.
// wcq:noalloc
func (h *DirectHandle[T]) Dequeue() (v T, ok bool) {
	if h.deqHead < h.deqLen {
		u := h.deq[h.deqHead]
		h.deqHead++
		return h.q.codec.Decode(u), true
	}
	if h.nenq > 0 {
		if h.q.r.ObservedEmpty() {
			u := h.enq[0]
			h.nenq--
			copy(h.enq[:h.nenq], h.enq[1:h.nenq+1])
			return h.q.codec.Decode(u), true
		}
		h.flushEnq()
	}
	if h.deq == nil {
		u, ok := h.h.Dequeue()
		if !ok {
			return v, false
		}
		return h.q.codec.Decode(u), true
	}
	n := h.q.r.DequeueBatch(h.deq)
	if n == 0 {
		return v, false
	}
	h.deqHead, h.deqLen = 1, n
	return h.q.codec.Decode(h.deq[0]), true
}

// wcq:noalloc
func (h *DirectHandle[T]) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		// wcq:alloc-ok grow-once scratch: reused for every later batch at this width, so the pinned steady state never re-allocates
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// EnqueueBatch inserts up to len(vs) values in order with one ring
// reservation and returns how many landed. A coalescing handle first
// publishes its pending window (order before the batch); if that flush
// cannot complete the ring is full and the batch reports zero.
// wcq:noalloc
func (h *DirectHandle[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	if h.nenq > 0 && !h.flushEnq() {
		return 0
	}
	buf := h.buf(len(vs))
	for i, v := range vs {
		buf[i] = h.q.codec.Encode(v)
	}
	return h.q.r.EnqueueBatch(buf)
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued, draining a coalescing
// handle's prefetched window first.
// wcq:noalloc
func (h *DirectHandle[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	n := 0
	for h.deqHead < h.deqLen && n < len(out) {
		out[n] = h.q.codec.Decode(h.deq[h.deqHead])
		h.deqHead++
		n++
	}
	if n == len(out) {
		return n
	}
	if h.nenq > 0 {
		h.flushEnq()
	}
	buf := h.buf(len(out) - n)
	m := h.q.r.DequeueBatch(buf)
	for i := 0; i < m; i++ {
		out[n] = h.q.codec.Decode(buf[i])
		n++
	}
	return n
}

// Enqueue inserts v, returning false when the queue is full.
// Lock-free; one ring operation (the indirect Queue pays two). Runs on
// the calling P's resident handle when one is installed (see New's
// twin in pool.go): the encode and the width check happen before the
// pin, so the pinned section is panic-free.
// wcq:noalloc
func (q *Direct[T]) Enqueue(v T) bool {
	u := q.codec.Encode(v)
	q.r.CheckValue(u)
	if canPin && q.pool.resident {
		if pid := pinProc(); pid <= q.pool.mask {
			sh := &q.pool.shards[pid]
			if h := sh.res.Load(); h != nil {
				poolRaceAcquire(unsafe.Pointer(sh))
				ok := h.h.Enqueue(u)
				poolRaceRelease(unsafe.Pointer(sh))
				unpinProc()
				return ok
			}
		}
		unpinProc()
	}
	h := q.pool.mustGet()
	ok := h.h.Enqueue(u)
	q.pool.put(h)
	return ok
}

// Dequeue removes the oldest value, or returns ok=false when empty.
// wcq:noalloc
func (q *Direct[T]) Dequeue() (v T, ok bool) {
	if canPin && q.pool.resident {
		if pid := pinProc(); pid <= q.pool.mask {
			sh := &q.pool.shards[pid]
			if h := sh.res.Load(); h != nil {
				poolRaceAcquire(unsafe.Pointer(sh))
				u, ok := h.h.Dequeue()
				poolRaceRelease(unsafe.Pointer(sh))
				unpinProc()
				if !ok {
					return v, false
				}
				// Decode runs after the unpin: a panicking user codec
				// must not fire inside the pinned section.
				return q.codec.Decode(u), true
			}
		}
		unpinProc()
	}
	h := q.pool.mustGet()
	u, ok := h.h.Dequeue()
	q.pool.put(h)
	if !ok {
		return v, false
	}
	return q.codec.Decode(u), true
}

// EnqueueBatch inserts up to len(vs) values in order with one ring
// reservation and returns how many landed (fewer only when the queue
// fills).
// wcq:noalloc
func (q *Direct[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	bp := q.scratch.get(len(vs))
	defer q.scratch.put(bp)
	buf := (*bp)[:len(vs)]
	for i, v := range vs {
		buf[i] = q.codec.Encode(v)
	}
	return q.r.EnqueueBatch(buf)
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued.
// wcq:noalloc
func (q *Direct[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	bp := q.scratch.get(len(out))
	defer q.scratch.put(bp)
	buf := (*bp)[:len(out)]
	n := q.r.DequeueBatch(buf)
	for i := 0; i < n; i++ {
		out[i] = q.codec.Decode(buf[i])
	}
	return n
}

// Cap returns the queue capacity (2^order). Under concurrent
// enqueuers occupancy can transiently exceed it by up to their count
// (the F&A admission headroom the 2n physical entries absorb).
func (q *Direct[T]) Cap() int { return int(q.r.N()) }

// ValueBits returns the codec's payload width.
func (q *Direct[T]) ValueBits() uint { return q.r.ValueBits() }

// MaxOps returns the enforced operation budget: once that many
// enqueues have passed through the ring, Enqueue permanently returns
// false (fail-stop instead of cycle-wrap corruption).
func (q *Direct[T]) MaxOps() uint64 { return q.r.MaxOps() }

// Footprint returns the queue's memory usage in bytes; constant.
func (q *Direct[T]) Footprint() int64 { return q.r.Footprint() }

// DirectStriped is the sharded front-end over W direct lanes: the
// Striped design (DESIGN.md §7, §13) with DirectRing lanes. FIFO per
// handle, lock-free, roughly half the atomics of Striped per transfer.
// The lane set rides the same elastic directory as Striped — online
// grow/shrink under the contention governor, FIFO-preserving handle
// migration at the drained witness, exactly-once residual handoff —
// with one direct-specific twist: a retired lane's ring is Reset on
// its way to the standby pool, which RENEWS its MaxOps budget, so an
// elastic DirectStriped sheds the per-lane budget exhaustion that a
// fixed lane set eventually hits. Handles exist to carry lane affinity
// and the hazard slot steals publish through (the lanes themselves are
// handle-free).
type DirectStriped[T any] struct {
	dir   *lanedir.Dir[*core.DirectRing]
	codec Codec[T]
	pool  handlePool[DirectStripedHandle[T]]

	laneCap int
	maxOps  uint64
}

// DirectStripedHandle pins a goroutine to a lane. Must not be shared
// between concurrently running goroutines.
type DirectStripedHandle[T any] struct {
	s    *DirectStriped[T]
	slot *lanedir.Slot[*core.DirectRing]
	view *lanedir.View[*core.DirectRing]
	// ch is the handle-local window/threshold state on the OWN lane
	// (DESIGN.md §14), rebound on lane migration. Steals stay on the
	// foreign lanes' handle-free entry points — a steal is already the
	// slow, occasional path, and window state for every foreign lane
	// would go stale across resizes.
	ch  *core.DirectHandle
	tid int
	rot uint
	opn uint32
	evn uint32
	// migrating marks a handle whose lane is draining; see
	// StripedHandle.resync for the FIFO-preserving migration rule,
	// which is identical here.
	migrating bool
	scratch   []uint64
}

// NewDirectStriped creates a striped direct queue of `stripes` lanes
// of 2^order values each, with the codec derived from the integer
// kind T.
func NewDirectStriped[T DirectValue](order uint, stripes int, opts ...Option) (*DirectStriped[T], error) {
	return NewDirectStripedOf[T](order, stripes, directCodec[T](), opts...)
}

// NewDirectStripedOf is NewDirectStriped with an explicit codec.
func NewDirectStripedOf[T any](order uint, stripes int, codec Codec[T], opts ...Option) (*DirectStriped[T], error) {
	if stripes < 1 {
		return nil, fmt.Errorf("wcq: stripes %d out of range [1, ∞)", stripes)
	}
	if err := codec.validate(); err != nil {
		return nil, err
	}
	c := buildConfig(opts)
	s := &DirectStriped[T]{codec: codec, laneCap: 1 << order}
	laneOpts := lanedir.Ops[*core.DirectRing]{
		New: func() (*core.DirectRing, error) {
			return core.NewDirectRing(order, codec.Bits, c.core)
		},
		Drain:      s.drainLane,
		Drained:    func(r *core.DirectRing) bool { return r.Drained() },
		Contention: func(r *core.DirectRing) uint64 { return r.ContentionEvents() },
		// Reset on the way to standby renews the ring's MaxOps budget:
		// safe exactly here because the hazard scan has proven no
		// reader holds the ring and the directory mutex excludes new
		// ones (the same quiescence window unbounded's pool uses).
		Recycle:    func(r *core.DirectRing) { r.Reset() },
		Ptr:        func(r *core.DirectRing) unsafe.Pointer { return unsafe.Pointer(r) },
		OnMaintain: s.evictStale,
	}
	dir, err := lanedir.New(laneOpts, lanedirConfig(stripes, c))
	if err != nil {
		return nil, fmt.Errorf("wcq: %w", err)
	}
	s.dir = dir
	s.maxOps = dir.View().Active()[0].Lane().MaxOps()
	s.pool.init(s.Register, func(h *DirectStripedHandle[T]) { h.Unregister() })
	return s, nil
}

// drainLane is the directory's residual handoff for direct lanes; the
// shape of Striped.drainLane plus one direct-only precondition. A
// put-back into `from` (target full mid-batch) is an ordinary enqueue
// and therefore spends `from`'s enforced MaxOps budget — on a
// budget-exhausted ring it would fail forever and strand the values in
// the buffer. So each round first checks that `from` retains enough
// budget to re-admit a full batch and otherwise leaves the lane
// draining: nothing is lost, consumers keep stealing from it, and
// either their dequeues empty it (the Drained witness retires it) or
// the next maintenance pass finds the budget freed. from has no
// producers (binds are zero and nothing enqueues into foreign lanes),
// so between the guard and the put-back the tail counter only moves by
// our own re-admissions, which the guard already covers.
func (s *DirectStriped[T]) drainLane(from, into *core.DirectRing) bool {
	var buf [32]uint64
	for {
		if from.Tail()+uint64(len(buf)) > from.MaxOps() {
			return false
		}
		n := from.DequeueBatch(buf[:])
		if n == 0 {
			return from.Drained()
		}
		m := into.EnqueueBatch(buf[:n])
		if m < n {
			rest := buf[m:n]
			for len(rest) > 0 {
				k := from.EnqueueBatch(rest)
				rest = rest[k:]
				if k == 0 {
					runtime.Gosched()
				}
			}
			return false
		}
	}
}

// evictStale sweeps parked implicit handles off draining lanes; see
// Striped.evictStale.
func (s *DirectStriped[T]) evictStale() {
	s.pool.evict(func(h *DirectStripedHandle[T]) bool {
		return h.slot.Draining()
	})
}

// Register claims a handle bound to the least-bound active lane.
func (s *DirectStriped[T]) Register() (*DirectStripedHandle[T], error) {
	tid, err := s.dir.Register()
	if err != nil {
		return nil, err
	}
	slot := s.dir.Bind()
	return &DirectStripedHandle[T]{
		s: s, slot: slot, view: s.dir.View(), tid: tid,
		ch: slot.Lane().NewHandle(),
	}, nil
}

// Unregister releases the handle's lane binding and binder tid.
func (h *DirectStripedHandle[T]) Unregister() {
	h.s.dir.Unbind(h.slot)
	h.s.dir.Release(h.tid)
}

// Lane returns the handle's lane binding as an index into the active
// directory, or -1 while its lane is draining (test and telemetry
// hook).
func (h *DirectStripedHandle[T]) Lane() int {
	for i, s := range h.s.dir.View().Active() {
		if s == h.slot {
			return i
		}
	}
	return -1
}

func (h *DirectStripedHandle[T]) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// pre is the per-operation resync gate; see StripedHandle.pre.
func (h *DirectStripedHandle[T]) pre() {
	if h.migrating || h.view != h.s.dir.View() {
		h.resync()
	}
}

// resync refreshes the handle after a directory change, migrating off
// a draining lane only at its Drained witness — the FIFO-across-resize
// rule of StripedHandle.resync, simpler here because direct lanes need
// no per-lane registration.
func (h *DirectStripedHandle[T]) resync() {
	s := h.s
	if h.slot.Draining() {
		if !h.slot.Lane().Drained() {
			h.migrating = true
			h.view = s.dir.View()
			return
		}
		ns := s.dir.Bind()
		s.dir.Unbind(h.slot)
		h.slot = ns
		h.ch.Rebind(ns.Lane())
		h.migrating = false
	}
	h.view = s.dir.View()
}

// tick is the handle-local op accounting; see StripedHandle.tick.
func (h *DirectStripedHandle[T]) tick(contended bool) {
	if contended {
		h.evn++
	}
	h.opn++
	if h.opn >= handleFlushOps {
		s := h.s
		if h.evn > 0 {
			s.dir.NoteContention(uint64(h.evn))
			h.evn = 0
		}
		n := uint64(h.opn)
		h.opn = 0
		s.dir.NoteOps(n)
	}
}

// Enqueue inserts v into the handle's lane, returning false when that
// lane is full or out of budget (per-handle FIFO comes from staying on
// one lane). No hazard publication: the handle's bind keeps its lane
// out of the retire path.
func (h *DirectStripedHandle[T]) Enqueue(v T) bool {
	h.pre()
	ok := h.ch.Enqueue(h.s.codec.Encode(v))
	h.tick(!ok)
	return ok
}

// Dequeue removes a value, preferring the handle's own lane and
// stealing from the others starting at a rotating lane (the same
// starvation-avoidance rotation as Striped). Foreign lanes are
// hazard-protected against concurrent retirement, with the directory
// re-checked after each publication; see StripedHandle.steal. As with
// Striped, the lane-by-lane emptiness scan is advisory, not
// linearizable.
func (h *DirectStripedHandle[T]) Dequeue() (v T, ok bool) {
	s := h.s
	h.pre()
	if u, ok := h.ch.Dequeue(); ok {
		h.tick(false)
		return s.codec.Decode(u), true
	}
restart:
	view := h.view
	slots := view.Slots()
	w := len(slots)
	if w > 1 {
		r := int(h.rot)
		h.rot++
		for i := 0; i < w; i++ {
			c := slots[(r+i)%w]
			if c == h.slot {
				continue
			}
			lane := c.Lane()
			s.dir.Protect(h.tid, lane)
			if s.dir.View() != view {
				s.dir.ClearHazard(h.tid)
				h.resync()
				goto restart
			}
			if u, ok := lane.Dequeue(); ok {
				s.dir.ClearHazard(h.tid)
				s.dir.NoteSteals(1)
				h.tick(false)
				return s.codec.Decode(u), true
			}
		}
		s.dir.ClearHazard(h.tid)
	}
	h.tick(false)
	return v, false
}

// EnqueueBatch inserts up to len(vs) values into the handle's lane
// with one ring reservation, returning how many landed.
func (h *DirectStripedHandle[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	h.pre()
	buf := h.buf(len(vs))
	for i, v := range vs {
		buf[i] = h.s.codec.Encode(v)
	}
	n := h.slot.Lane().EnqueueBatch(buf)
	h.tick(n < len(vs))
	return n
}

// DequeueBatch removes up to len(out) values, draining the handle's
// own lane first and stealing the remainder (rotating start,
// hazard-protected; see Dequeue).
func (h *DirectStripedHandle[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	s := h.s
	h.pre()
	buf := h.buf(len(out))
	n := 0
	for j, m := 0, h.slot.Lane().DequeueBatch(buf); j < m; j++ {
		out[n] = s.codec.Decode(buf[j])
		n++
	}
restart:
	view := h.view
	slots := view.Slots()
	w := len(slots)
	if w > 1 && n < len(out) {
		r := int(h.rot)
		h.rot++
		for i := 0; i < w && n < len(out); i++ {
			c := slots[(r+i)%w]
			if c == h.slot {
				continue
			}
			lane := c.Lane()
			s.dir.Protect(h.tid, lane)
			if s.dir.View() != view {
				s.dir.ClearHazard(h.tid)
				h.resync()
				goto restart
			}
			m := lane.DequeueBatch(buf[:len(out)-n])
			if m > 0 {
				s.dir.NoteSteals(uint64(m))
			}
			for j := 0; j < m; j++ {
				out[n] = s.codec.Decode(buf[j])
				n++
			}
		}
		s.dir.ClearHazard(h.tid)
	}
	h.tick(false)
	return n
}

// Enqueue inserts v through a pooled handle (lane affinity per call).
func (s *DirectStriped[T]) Enqueue(v T) bool {
	h := s.pool.mustGet()
	// Deferred so a panic inside the operation (the codec's Encode, an
	// out-of-range direct value) returns the borrowed handle instead
	// of leaking it. Same on every pooled path below.
	defer s.pool.put(h)
	return h.Enqueue(v)
}

// Dequeue removes a value through a pooled handle.
func (s *DirectStriped[T]) Dequeue() (v T, ok bool) {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.Dequeue()
}

// EnqueueBatch inserts up to len(vs) values through a pooled handle;
// the batch lands in one lane, in order.
func (s *DirectStriped[T]) EnqueueBatch(vs []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.EnqueueBatch(vs)
}

// DequeueBatch removes up to len(out) values through a pooled handle.
func (s *DirectStriped[T]) DequeueBatch(out []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.DequeueBatch(out)
}

// Stripes returns the current active lane count W.
func (s *DirectStriped[T]) Stripes() int { return s.dir.Lanes() }

// Stats reports the elastic lane directory's telemetry. The direct
// lanes have no wait-free slow path, so the slow-path and helping
// counters stay zero; the lane fields are cumulative and survive lane
// churn (see Stats).
func (s *DirectStriped[T]) Stats() Stats {
	tel := s.dir.Telemetry()
	return Stats{
		Lanes:       tel.Lanes,
		LaneGrows:   tel.Grows,
		LaneShrinks: tel.Shrinks,
		Steals:      tel.Steals,
	}
}

// DrainingLanes returns the lanes still draining toward retirement
// after a shrink (telemetry and test hook).
func (s *DirectStriped[T]) DrainingLanes() int { return s.dir.DrainingLanes() }

// Resize sets the active lane count to n (≥ 1); see Striped.Resize.
// Because retired direct lanes are Reset on the way to standby, a
// shrink-regrow cycle also renews their operation budgets.
func (s *DirectStriped[T]) Resize(n int) error { return s.dir.Resize(n) }

// Maintain runs one blocking directory maintenance pass; see
// Striped.Maintain.
func (s *DirectStriped[T]) Maintain() { s.dir.Maintain() }

// Cap returns the total capacity across the active lanes.
func (s *DirectStriped[T]) Cap() int { return s.dir.Lanes() * s.laneCap }

// Footprint returns the live bytes across the directory's lanes
// (active and draining); it moves with the lane count.
func (s *DirectStriped[T]) Footprint() int64 {
	var sum int64
	for _, sl := range s.dir.View().Slots() {
		sum += sl.Lane().Footprint()
	}
	return sum
}

// MaxOps returns the per-lane enforced operation budget; a lane that
// exhausts it reports full until the directory recycles it (see
// Direct.MaxOps and Resize).
func (s *DirectStriped[T]) MaxOps() uint64 { return s.maxOps }

// LiveHandles returns the number of currently registered handles.
func (s *DirectStriped[T]) LiveHandles() int { return s.dir.Binders() }

// HandleHighWater returns the largest number of handles ever live at
// once.
func (s *DirectStriped[T]) HandleHighWater() int { return s.dir.BinderHighWater() }

// DirectUnbounded is the unbounded direct-value queue: DirectRing
// segments linked per Appendix A, with drained rings recycled through
// the same hazard-pointer-protected pool design as Unbounded
// (DESIGN.md §8) — but each pooled ring is one word array instead of
// two index rings plus a data array. Lock-free; memory proportional to
// content plus the bounded standby inventory.
type DirectUnbounded[T any] struct {
	q     *unbounded.DirectQueue
	codec Codec[T]
	pool  handlePool[DirectUnboundedHandle[T]]
}

// DirectUnboundedHandle is a registered per-goroutine token carrying
// the hazard slot every ring traversal publishes through.
type DirectUnboundedHandle[T any] struct {
	q       *DirectUnbounded[T]
	h       *unbounded.DirectHandle
	scratch []uint64
}

// NewDirectUnbounded creates an unbounded direct queue whose rings
// hold 2^order values each, with the codec derived from the integer
// kind T. WithRingPool sizes the recycled-ring pool.
func NewDirectUnbounded[T DirectValue](order uint, opts ...Option) (*DirectUnbounded[T], error) {
	return NewDirectUnboundedOf[T](order, directCodec[T](), opts...)
}

// NewDirectUnboundedOf is NewDirectUnbounded with an explicit codec.
func NewDirectUnboundedOf[T any](order uint, codec Codec[T], opts ...Option) (*DirectUnbounded[T], error) {
	if err := codec.validate(); err != nil {
		return nil, err
	}
	c := buildConfig(opts)
	q, err := unbounded.NewDirect(order, codec.Bits, c.ringPool, c.core)
	if err != nil {
		return nil, err
	}
	qq := &DirectUnbounded[T]{q: q, codec: codec}
	qq.pool.init(qq.Register, func(h *DirectUnboundedHandle[T]) { h.Unregister() })
	return qq, nil
}

// Register claims an explicit per-goroutine handle.
func (q *DirectUnbounded[T]) Register() (*DirectUnboundedHandle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	return &DirectUnboundedHandle[T]{q: q, h: h}, nil
}

// Unregister releases the handle's slot.
func (h *DirectUnboundedHandle[T]) Unregister() { h.q.q.Unregister(h.h) }

func (h *DirectUnboundedHandle[T]) buf(k int) []uint64 {
	if cap(h.scratch) < k {
		h.scratch = make([]uint64, k)
	}
	return h.scratch[:k]
}

// Enqueue appends v; the queue grows as needed, so it always succeeds.
func (h *DirectUnboundedHandle[T]) Enqueue(v T) { h.q.q.Enqueue(h.h, h.q.codec.Encode(v)) }

// Dequeue removes the oldest value, or returns ok=false when the whole
// queue is observed empty.
func (h *DirectUnboundedHandle[T]) Dequeue() (v T, ok bool) {
	u, ok := h.q.q.Dequeue(h.h)
	if !ok {
		return v, false
	}
	return h.q.codec.Decode(u), true
}

// EnqueueBatch appends all values in order (always len(vs)).
func (h *DirectUnboundedHandle[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	buf := h.buf(len(vs))
	for i, v := range vs {
		buf[i] = h.q.codec.Encode(v)
	}
	return h.q.q.EnqueueBatch(h.h, buf)
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued.
func (h *DirectUnboundedHandle[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	buf := h.buf(len(out))
	n := h.q.q.DequeueBatch(h.h, buf)
	for i := 0; i < n; i++ {
		out[i] = h.q.codec.Decode(buf[i])
	}
	return n
}

// Enqueue appends v through a pooled handle.
func (q *DirectUnbounded[T]) Enqueue(v T) {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	h.Enqueue(v)
}

// Dequeue removes the oldest value through a pooled handle.
func (q *DirectUnbounded[T]) Dequeue() (v T, ok bool) {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return h.Dequeue()
}

// EnqueueBatch appends values through a pooled handle.
func (q *DirectUnbounded[T]) EnqueueBatch(vs []T) int {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return h.EnqueueBatch(vs)
}

// DequeueBatch removes values through a pooled handle.
func (q *DirectUnbounded[T]) DequeueBatch(out []T) int {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return h.DequeueBatch(out)
}

// Footprint returns live queue-owned bytes (linked rings plus the
// bounded standby inventory).
func (q *DirectUnbounded[T]) Footprint() int64 { return q.q.Footprint() }

// PeakFootprint returns the lifetime high-water mark of Footprint.
func (q *DirectUnbounded[T]) PeakFootprint() int64 { return q.q.PeakFootprint() }

// RingStats reports the ring-recycling counters (pool hits, allocating
// misses, drops).
func (q *DirectUnbounded[T]) RingStats() (hits, misses, drops uint64) { return q.q.RingStats() }

// MaxOps returns the per-ring operation budget. The rings enforce it —
// an exhausted ring fail-stops, which forces a finalize-and-hop onto a
// fresh ring — so the queue as a whole has no operation limit.
func (q *DirectUnbounded[T]) MaxOps() uint64 { return q.q.MaxOps() }

// LiveHandles returns the number of currently registered handles.
func (q *DirectUnbounded[T]) LiveHandles() int { return q.q.LiveHandles() }

// HandleHighWater returns the largest number of handles ever live at
// once.
func (q *DirectUnbounded[T]) HandleHighWater() int { return q.q.HandleHighWater() }
