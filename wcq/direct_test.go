package wcq_test

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/wcq"
)

func TestDirectIntegerKindsRoundTrip(t *testing.T) {
	t.Run("int32-negatives", func(t *testing.T) {
		q, err := wcq.NewDirect[int32](6)
		if err != nil {
			t.Fatal(err)
		}
		vals := []int32{0, -1, 1, -2147483648, 2147483647, 42, -42}
		for _, v := range vals {
			if !q.Enqueue(v) {
				t.Fatalf("enqueue %d rejected", v)
			}
		}
		for _, want := range vals {
			v, ok := q.Dequeue()
			if !ok || v != want {
				t.Fatalf("got (%d,%v), want %d", v, ok, want)
			}
		}
	})
	t.Run("uint16", func(t *testing.T) {
		q := wcq.MustDirect[uint16](4)
		for i := 0; i < 3000; i++ { // wraps the 16-capacity ring many times
			v := uint16(i * 7)
			if !q.Enqueue(v) {
				t.Fatalf("enqueue %d rejected", i)
			}
			got, ok := q.Dequeue()
			if !ok || got != v {
				t.Fatalf("got (%d,%v), want %d", got, ok, v)
			}
		}
	})
}

func TestDirectUintCodec(t *testing.T) {
	q, err := wcq.NewDirectOf[uint64](5, wcq.UintCodec(52))
	if err != nil {
		t.Fatal(err)
	}
	big := uint64(1)<<52 - 1
	if !q.Enqueue(big) {
		t.Fatal("52-bit value rejected")
	}
	if v, ok := q.Dequeue(); !ok || v != big {
		t.Fatalf("got (%#x,%v)", v, ok)
	}
	// Out-of-range values must fail loudly, not corrupt the entry.
	defer func() {
		if recover() == nil {
			t.Fatal("53-bit value did not panic")
		}
	}()
	q.Enqueue(1 << 52)
}

func TestDirectPointerCodecRoundTrip(t *testing.T) {
	type payload struct{ x, y int }
	q, err := wcq.NewDirectOf[*payload](7, wcq.PointerCodec[payload]())
	if err != nil {
		t.Fatal(err)
	}
	// Keep every referent alive in refs for the whole test: the codec
	// stores bits, not GC-visible references.
	refs := make([]*payload, 100)
	for i := range refs {
		refs[i] = &payload{x: i, y: -i}
	}
	for _, p := range refs {
		if !q.Enqueue(p) {
			t.Fatalf("enqueue %v rejected", p)
		}
	}
	runtime.GC() // bits survive a collection while refs pin the objects
	for i, want := range refs {
		p, ok := q.Dequeue()
		if !ok || p != want || p.x != i || p.y != -i {
			t.Fatalf("slot %d: got (%p,%v), want %p", i, p, ok, want)
		}
	}
}

func TestDirectCodecValidation(t *testing.T) {
	if _, err := wcq.NewDirectOf[uint64](4, wcq.UintCodec(0)); err == nil {
		t.Fatal("0-bit codec accepted")
	}
	if _, err := wcq.NewDirectOf[uint64](4, wcq.UintCodec(53)); err == nil {
		t.Fatal("53-bit codec accepted")
	}
	if _, err := wcq.NewDirectOf[uint64](4, wcq.Codec[uint64]{Bits: 8}); err == nil {
		t.Fatal("codec without Encode/Decode accepted")
	}
}

func TestDirectFullAndBatch(t *testing.T) {
	q := wcq.MustDirect[uint32](3) // capacity 8
	if q.Cap() != 8 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	vs := make([]uint32, 12)
	for i := range vs {
		vs[i] = uint32(i)
	}
	if n := q.EnqueueBatch(vs); n != 8 {
		t.Fatalf("EnqueueBatch = %d, want 8", n)
	}
	if q.Enqueue(99) {
		t.Fatal("full queue accepted a value")
	}
	out := make([]uint32, 12)
	if n := q.DequeueBatch(out); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != uint32(i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue non-empty")
	}
}

func TestDirectStripedPerHandleFIFO(t *testing.T) {
	s, err := wcq.NewDirectStriped[uint32](6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 4 || s.Cap() != 4*64 {
		t.Fatalf("Stripes=%d Cap=%d", s.Stripes(), s.Cap())
	}
	const producers = 4
	per := uint32(5000)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p uint32, h *wcq.DirectStripedHandle[uint32]) {
			defer wg.Done()
			defer h.Unregister()
			for i := uint32(0); i < per; i++ {
				for !h.Enqueue(p<<24 | i) {
					runtime.Gosched()
				}
			}
		}(uint32(p), h)
	}
	var mu sync.Mutex
	last := make([]int64, producers)
	for i := range last {
		last[i] = -1
	}
	seen := 0
	var cwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		cwg.Add(1)
		go func(h *wcq.DirectStripedHandle[uint32]) {
			defer cwg.Done()
			defer h.Unregister()
			for {
				mu.Lock()
				done := seen == int(per)*producers
				mu.Unlock()
				if done {
					return
				}
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				p, i := int(v>>24), int64(v&(1<<24-1))
				mu.Lock()
				// Per-producer order must hold globally here: each
				// producer's values live in a single FIFO lane.
				if i <= last[p] {
					t.Errorf("producer %d reordered: %d after %d", p, i, last[p])
				}
				last[p] = i
				seen++
				mu.Unlock()
			}
		}(h)
	}
	wg.Wait()
	cwg.Wait()
	if seen != int(per)*producers {
		t.Fatalf("consumed %d of %d", seen, int(per)*producers)
	}
}

func TestDirectStripedLaneRecycling(t *testing.T) {
	s := mustDirectStriped(t)
	h1, _ := s.Register()
	l1 := h1.Lane()
	h1.Unregister()
	h2, _ := s.Register()
	if h2.Lane() != l1 {
		t.Fatalf("recycled lane %d, want %d", h2.Lane(), l1)
	}
	h2.Unregister()
}

func mustDirectStriped(t *testing.T) *wcq.DirectStriped[uint32] {
	t.Helper()
	s, err := wcq.NewDirectStriped[uint32](4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDirectStripedHandleFree(t *testing.T) {
	s := mustDirectStriped(t)
	for i := uint32(0); i < 1000; i++ {
		if !s.Enqueue(i) {
			t.Fatalf("enqueue %d rejected", i)
		}
		if v, ok := s.Dequeue(); !ok || v != i {
			t.Fatalf("got (%d,%v) want %d", v, ok, i)
		}
	}
	vs := []uint32{1, 2, 3, 4, 5}
	if n := s.EnqueueBatch(vs); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]uint32, 8)
	if n := s.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
}

func TestDirectUnboundedGrowsAndRecycles(t *testing.T) {
	q, err := wcq.NewDirectUnboundedOf[uint64](3, wcq.UintCodec(52), wcq.WithRingPool(8))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	// Depth far beyond one 8-slot ring: the queue must grow.
	const depth = 500
	for i := uint64(0); i < depth; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < depth; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	// Churn to steady state; misses must stop growing.
	for r := 0; r < 30; r++ {
		for i := uint64(0); i < 64; i++ {
			h.Enqueue(i)
		}
		for i := uint64(0); i < 64; i++ {
			if _, ok := h.Dequeue(); !ok {
				t.Fatal("lost a value during churn")
			}
		}
	}
	_, warm, _ := q.RingStats()
	for r := 0; r < 100; r++ {
		for i := uint64(0); i < 64; i++ {
			h.Enqueue(i)
		}
		for i := uint64(0); i < 64; i++ {
			if _, ok := h.Dequeue(); !ok {
				t.Fatal("lost a value during churn")
			}
		}
	}
	if _, misses, _ := q.RingStats(); misses != warm {
		t.Fatalf("steady churn allocated rings: %d -> %d", warm, misses)
	}
	if q.Footprint() <= 0 || q.PeakFootprint() < q.Footprint() {
		t.Fatalf("footprint accounting: live=%d peak=%d", q.Footprint(), q.PeakFootprint())
	}
}

func TestDirectUnboundedHandleFree(t *testing.T) {
	q, err := wcq.NewDirectUnboundedOf[uint64](4, wcq.UintCodec(32))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v) want %d", v, ok, i)
		}
	}
	vs := []uint64{9, 8, 7}
	if n := q.EnqueueBatch(vs); n != 3 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]uint64, 4)
	if n := q.DequeueBatch(out); n != 3 || out[0] != 9 {
		t.Fatalf("DequeueBatch = %d, out=%v", n, out)
	}
	if q.LiveHandles() < 0 || q.HandleHighWater() < 1 {
		t.Fatalf("handle accounting: live=%d hw=%d", q.LiveHandles(), q.HandleHighWater())
	}
}
