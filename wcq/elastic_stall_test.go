//go:build wcq_failpoints

package wcq

// Resize-stall robustness (DESIGN.md §13): a thread frozen in the
// middle of a directory resize — at the publish CAS with the successor
// view built, or between a lane's unpublish and its hazard retire —
// must not block peer operations. The directory mutex is only ever
// taken by maintenance (operations enter via TryLock and give up), so
// a stalled maintainer may stall lane-count changes but never
// throughput. Each cell freezes one thread at a lanedir site while
// producers and consumers complete a fixed op quota, then releases the
// stall and checks multiset integrity. wCQ-Striped is not a
// stall-matrix shape (the matrix drives core sites), so this is the
// dedicated cell for the lanedir windows.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"wcqueue/internal/check"
	"wcqueue/internal/failpoint"
)

func TestResizeStallDoesNotBlockOperations(t *testing.T) {
	cells := []struct {
		name string
		site failpoint.Site
		// trigger drives the directory to the armed site from a
		// dedicated maintenance goroutine.
		trigger func(s *Striped[uint64])
	}{
		{
			// Freeze between building the successor view and the
			// publish CAS of a shrink.
			name: "dir-publish",
			site: failpoint.LanedirPublish,
			trigger: func(s *Striped[uint64]) {
				_ = s.Resize(2)
			},
		},
		{
			// Freeze after a retiring lane's unpublish, before its
			// hazard retire: stealers that protected the lane earlier
			// may still be dequeueing from it. The fifth lane has no
			// bound handle (the four workers occupy lanes 0–3), so it
			// is empty and bind-free — retirement is immediate.
			name: "lane-retire",
			site: failpoint.LanedirRetire,
			trigger: func(s *Striped[uint64]) {
				_ = s.Resize(4)
				s.Maintain()
			},
		},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) { runResizeStall(t, cell.site, cell.trigger) })
	}
}

func runResizeStall(t *testing.T, site failpoint.Site, trigger func(*Striped[uint64])) {
	failpoint.Reset()
	defer failpoint.Reset()

	const producers, consumers = 2, 2
	const quota = 2000
	// Five lanes, four worker handles: lanes 0–3 get one bound handle
	// each (least-bound binding), lane 4 stays bind-free — the
	// immediately-retirable victim the lane-retire cell shrinks away.
	s := MustStriped[uint64](8, 5, WithLaneBounds(1, 8))

	// Register the workers BEFORE arming so their registration cannot
	// trip the site.
	phs := make([]*StripedHandle[uint64], producers)
	chs := make([]*StripedHandle[uint64], consumers)
	for i := range phs {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		phs[i] = h
	}
	for i := range chs {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		chs[i] = h
	}

	failpoint.Arm(site, failpoint.Action{Kind: failpoint.KindPark, Trips: 1})

	maintDone := make(chan struct{})
	go func() {
		defer close(maintDone)
		trigger(s)
	}()

	// Wait for the maintainer to freeze at the site.
	deadline := time.Now().Add(10 * time.Second)
	for failpoint.Parked(site) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if failpoint.Parked(site) == 0 {
		failpoint.Release(site)
		<-maintDone
		t.Fatalf("maintenance never reached %v", site)
	}

	// With the maintainer frozen (holding the directory mutex), the
	// full op quota must complete: operations never wait on
	// maintenance.
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int, h *StripedHandle[uint64]) {
			defer wg.Done()
			for seq := uint64(0); seq < quota; seq++ {
				for !h.Enqueue(check.Encode(p, seq)) {
					runtime.Gosched()
				}
			}
		}(p, phs[p])
	}
	var consumed sync.WaitGroup
	consumed.Add(producers * quota)
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int, h *StripedHandle[uint64]) {
			defer wg.Done()
			var local []uint64
			for {
				select {
				case <-stop:
					streams[c] = local
					return
				default:
				}
				if v, ok := h.Dequeue(); ok {
					local = append(local, v)
					consumed.Done()
				} else {
					runtime.Gosched()
				}
			}
		}(c, chs[c])
	}
	quotaDone := make(chan struct{})
	go func() { consumed.Wait(); close(quotaDone) }()
	select {
	case <-quotaDone:
	case <-time.After(60 * time.Second):
		t.Fatalf("op quota stalled behind the frozen maintainer at %v (parked=%d)",
			site, failpoint.Parked(site))
	}
	close(stop)
	wg.Wait()

	// Thaw the maintainer and let retirement finish; every value must
	// have been delivered exactly once.
	failpoint.Release(site)
	<-maintDone
	for i := 0; i < 1000 && s.DrainingLanes() > 0; i++ {
		s.Maintain()
		runtime.Gosched()
	}
	if err := check.Verify(streams, producers, quota).Err(); err != nil {
		t.Fatal(err)
	}
	for _, h := range phs {
		h.Unregister()
	}
	for _, h := range chs {
		h.Unregister()
	}
}
