package wcq

// Elastic-striping behavior tests (DESIGN.md §13): per-handle FIFO
// must survive online lane resizes, residuals of unregistered
// producers must be handed off exactly once, the dequeue scan must
// rotate its steal start, and the per-P implicit cache must not pin
// draining lanes.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"wcqueue/internal/check"
)

// drainAllDraining pumps maintenance until every draining lane has
// retired, consuming through h to supply the Drained witness when
// residual handoff alone cannot (e.g. a full target lane).
func drainAllDraining[T any](t *testing.T, s *Striped[T], sink func()) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if s.DrainingLanes() == 0 {
			return
		}
		s.Maintain()
		if sink != nil {
			sink()
		}
		runtime.Gosched()
	}
	t.Fatalf("draining lanes never retired: %d left", s.DrainingLanes())
}

// TestElasticResizeBasics: manual grow and shrink move the active
// count, capacity follows, and retired lanes leave no residue.
func TestElasticResizeBasics(t *testing.T) {
	s := MustStriped[int](6, 2, WithLaneBounds(1, 8))
	if s.Stripes() != 2 {
		t.Fatalf("Stripes() = %d", s.Stripes())
	}
	if err := s.Resize(6); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 6 || s.Cap() != 6*64 {
		t.Fatalf("after grow: Stripes()=%d Cap()=%d", s.Stripes(), s.Cap())
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 1 {
		t.Fatalf("after shrink: Stripes()=%d", s.Stripes())
	}
	drainAllDraining(t, s, nil)
	if err := s.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
}

// TestElasticPerHandleFIFOAcrossResizeChurn is the tentpole ordering
// guarantee: with a resizer oscillating the lane count the whole run,
// every producer's stream must still be dequeued in order, with no
// loss and no duplication.
func TestElasticPerHandleFIFOAcrossResizeChurn(t *testing.T) {
	const producers, consumers = 4, 4
	per := uint64(6000)
	if testing.Short() {
		per = 600
	}
	s := MustStriped[uint64](8, 2, WithLaneBounds(1, 8))
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))
	stop := make(chan struct{})

	// Resizer: sweep the lane count up and down while traffic runs.
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			n = n%8 + 1
			_ = s.Resize(n)
			s.Maintain()
			runtime.Gosched()
		}
	}()

	for c := 0; c < consumers; c++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *StripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			budget := total / consumers
			if c == 0 {
				budget += total % consumers
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *StripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			for seq := uint64(0); seq < per; seq++ {
				for !h.Enqueue(check.Encode(p, seq)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	close(stop)
	resizer.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticResidualDrainExactlyOnce: values left in a lane by a
// producer that unregistered must migrate into a surviving lane during
// retirement — each exactly once.
func TestElasticResidualDrainExactlyOnce(t *testing.T) {
	s := MustStriped[int](6, 4, WithLaneBounds(1, 8))
	// Spread residuals over all four lanes through four handles, then
	// abandon the streams.
	const perLane = 10
	for i := 0; i < 4; i++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < perLane; j++ {
			if !h.Enqueue(i*100 + j) {
				t.Fatalf("seed enqueue lane %d value %d failed", i, j)
			}
		}
		h.Unregister()
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	drainAllDraining(t, s, nil)
	got := map[int]int{}
	n := 0
	for {
		v, ok := s.Dequeue()
		if !ok {
			break
		}
		got[v]++
		n++
	}
	if n != 4*perLane {
		t.Fatalf("recovered %d values after retirement, want %d", n, 4*perLane)
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("value %d recovered %d times", v, c)
		}
	}
}

// TestStripedDequeueScanRotates: the steal scan must start at a
// rotating lane, not a fixed one, so consecutive scans spread first
// service across lanes instead of always favoring the lane after the
// consumer's.
func TestStripedDequeueScanRotates(t *testing.T) {
	s := MustStriped[int](6, 4, WithFixedLanes())
	hs := make([]*StripedHandle[int], 4)
	for i := range hs {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Unregister()
		hs[i] = h
	}
	consumer := hs[0]
	firstLanes := map[int]bool{}
	for round := 0; round < 8; round++ {
		// One value per foreign lane, tagged by owner.
		for i := 1; i < 4; i++ {
			if !hs[i].Enqueue(i) {
				t.Fatalf("round %d: enqueue on lane %d failed", round, i)
			}
		}
		v, ok := consumer.Dequeue()
		if !ok {
			t.Fatalf("round %d: steal failed", round)
		}
		firstLanes[v] = true
		// Drain the rest so the next round starts clean.
		for i := 0; i < 2; i++ {
			if _, ok := consumer.Dequeue(); !ok {
				t.Fatalf("round %d: drain failed", round)
			}
		}
	}
	if len(firstLanes) < 2 {
		t.Fatalf("8 scans always stole from the same lane first (%v) — scan start is not rotating", firstLanes)
	}
}

// TestElasticImplicitEvict: a parked per-P implicit handle bound to a
// draining lane must be evicted by maintenance so the lane can retire.
func TestElasticImplicitEvict(t *testing.T) {
	s := MustStriped[int](6, 4, WithLaneBounds(1, 8))
	// Occupy lanes 0..2 with explicit handles so the implicit borrow
	// below binds the last lane — a shrink victim.
	var pins []*StripedHandle[int]
	for i := 0; i < 3; i++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		pins = append(pins, h)
	}
	if !s.Enqueue(42) { // parks an implicit handle bound to lane 3
		t.Fatal("implicit enqueue failed")
	}
	live := s.LiveHandles()
	if live != 4 {
		t.Fatalf("LiveHandles() = %d, want 4 (3 explicit + 1 parked implicit)", live)
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	for _, h := range pins {
		h.Unregister()
	}
	// Maintenance must evict the parked handle (its lane is draining),
	// hand off the residual 42, and retire all three victim lanes.
	drainAllDraining(t, s, nil)
	if v, ok := s.Dequeue(); !ok || v != 42 {
		t.Fatalf("residual after evict = (%d, %v), want (42, true)", v, ok)
	}
}

// TestDirectElasticResizeChurn: the direct front-end rides the same
// directory — multiset integrity and per-handle FIFO under resize
// churn, plus budget renewal via lane recycling.
func TestDirectElasticResizeChurn(t *testing.T) {
	const producers, consumers = 2, 2
	per := uint64(4000)
	if testing.Short() {
		per = 400
	}
	s, err := NewDirectStripedOf[uint64](8, 2, UintCodec(52), WithLaneBounds(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	total := per * producers
	streams := make([][]uint64, consumers)
	var done atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			n = n%4 + 1
			_ = s.Resize(n)
			s.Maintain()
			runtime.Gosched()
		}
	}()

	for c := 0; c < consumers; c++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *DirectStripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			var local []uint64
			for done.Load() < total {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				done.Add(1)
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *DirectStripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			for seq := uint64(0); seq < per; seq++ {
				for !h.Enqueue(check.Encode(p, seq)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	close(stop)
	resizer.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDirectElasticBudgetRenewal: a shrink-retire-regrow cycle Resets
// retired rings, renewing their cycle-wrap budgets — the elastic
// answer to the direct shapes' enforced MaxOps fail-stop.
func TestDirectElasticBudgetRenewal(t *testing.T) {
	s, err := NewDirectStripedOf[uint64](2, 2, UintCodec(52), WithLaneBounds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	// Rings of 4 with a 52-bit payload have a tiny budget; burn most
	// of one lane's budget with enqueue/dequeue pairs.
	spent := uint64(0)
	for spent < s.MaxOps()-4 {
		if !h.Enqueue(1) {
			break
		}
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("paired dequeue failed")
		}
		spent++
	}
	// Shrink away the OTHER lane and regrow: the recycled standby lane
	// comes back with a renewed budget. (The handle's own lane still
	// holds spent budget; what matters is that recycled lanes reset.)
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && s.DrainingLanes() > 0; i++ {
		s.Maintain()
		runtime.Gosched()
	}
	if s.DrainingLanes() != 0 {
		t.Fatalf("lane never retired (%d draining)", s.DrainingLanes())
	}
	if err := s.Resize(2); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 2 {
		t.Fatalf("Stripes() = %d after regrow", s.Stripes())
	}
}
