//go:build !race

package wcq_test

// raceEnabled reports that the race detector is active.
const raceEnabled = false
