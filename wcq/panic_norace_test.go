//go:build !race

package wcq

// White-box proof that a panicking pooled operation RETURNS its
// borrowed handle rather than leaking it. A leaked handle would not
// fail any behavioral test — the next call would just register a
// fresh one. But registration is observable through the directory's
// binder count: with the collector off (so neither pool eviction nor
// the leak-healing finalizer can interfere) hundreds of panicking
// calls from one goroutine must keep reusing the same registered
// handle, so LiveHandles must not grow.
//
// Excluded from race builds only because sync.Pool (the per-P cache's
// oversubscription overflow) deliberately drops a fraction of Puts
// under the race detector, which would register fresh handles for
// reasons unrelated to the leak under test.

import (
	"runtime/debug"
	"testing"
)

func TestPooledHandleReturnedOnPanic(t *testing.T) {
	q, err := NewDirectStripedOf[uint64](4, 4, trapCodec())
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Prime the pool so the baseline includes the cached handle.
	q.Enqueue(1)
	base := q.LiveHandles()

	for i := 0; i < 300; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("sentinel enqueue did not panic")
				}
			}()
			q.Enqueue(trapValue)
		}()
	}

	grew := q.LiveHandles() - base
	// Zero growth is the expected outcome; a small allowance covers a
	// stray runtime-internal pool shuffle, while a leak would register
	// a new handle on every one of the 300 panicking calls.
	if grew > 2 {
		t.Fatalf("registered %d new handles across 300 panicking calls — panics are leaking pooled handles", grew)
	}
}
