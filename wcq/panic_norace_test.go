//go:build !race

package wcq

// White-box proof that a panicking pooled operation RETURNS its
// borrowed handle rather than leaking it. DirectStriped registration
// is uncapped, so a leak would not fail any behavioral test — it
// would just register a fresh handle next call. But registration is
// observable: nextLane only advances when the pool cannot supply a
// returned handle. With the collector off (so neither pool eviction
// nor the leak-healing finalizer can interfere) hundreds of panicking
// calls from one goroutine must keep reusing the same handle.
//
// Excluded from race builds only because sync.Pool deliberately drops
// a fraction of Puts under the race detector, which would advance
// nextLane for reasons unrelated to the leak under test.

import (
	"runtime/debug"
	"testing"
)

func TestPooledHandleReturnedOnPanic(t *testing.T) {
	q, err := NewDirectStripedOf[uint64](4, 4, trapCodec())
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Prime the pool so the baseline is one registered handle.
	q.Enqueue(1)
	q.laneMu.Lock()
	base := q.nextLane
	q.laneMu.Unlock()

	for i := 0; i < 300; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("sentinel enqueue did not panic")
				}
			}()
			q.Enqueue(trapValue)
		}()
	}

	q.laneMu.Lock()
	grew := q.nextLane - base
	free := len(q.freeLanes)
	q.laneMu.Unlock()
	// Zero growth is the expected outcome; a small allowance covers a
	// stray runtime-internal pool shuffle, while a leak would register
	// a new handle on every one of the 300 panicking calls.
	if grew > 2 {
		t.Fatalf("registered %d new handles across 300 panicking calls (freeLanes=%d) — panics are leaking pooled handles", grew, free)
	}
}
