package wcq

// Panic safety (DESIGN.md §12): user code can panic inside a queue
// operation — a codec's Encode, a direct value outside the declared
// bit range — and the contract is that the panic escapes BEFORE the
// operation reserves ring state. The queue afterwards is exactly as
// if the call had never happened: no slot consumed, no half-written
// entry, no borrowed pooled handle leaked. These tests run under
// -race in the tier-1 suite.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mustPanic runs f and returns the recovered panic value, failing the
// test if f returns normally.
func mustPanic(t *testing.T, what string, f func()) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	f()
	t.Fatalf("%s: expected panic, returned normally", what)
	return nil
}

// TestDirectOutOfRangePanicsBeforeReservation proves an out-of-range
// value panics before the ring reserves a slot: after the panic the
// queue still accepts exactly Cap() values, and delivers them all.
func TestDirectOutOfRangePanicsBeforeReservation(t *testing.T) {
	q, err := NewDirectOf[uint64](3, UintCodec(8))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Enqueue(1<<8)", func() { q.Enqueue(1 << 8) })

	// A leaked reservation would surface as one slot of lost capacity.
	n := 0
	for q.Enqueue(uint64(n & 0xff)) {
		n++
		if n > q.Cap() {
			break
		}
	}
	if n != q.Cap() {
		t.Fatalf("accepted %d values after panic, want full capacity %d", n, q.Cap())
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != uint64(i&0xff) {
			t.Fatalf("dequeue %d: got (%d, %v), want (%d, true)", i, v, ok, i&0xff)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue not empty after draining everything enqueued")
	}
}

// TestDirectBatchOutOfRangePanicsBeforeReservation proves batch
// validation happens for the whole batch before any reservation: a
// bad value mid-batch means NONE of the batch lands.
func TestDirectBatchOutOfRangePanicsBeforeReservation(t *testing.T) {
	q, err := NewDirectOf[uint64](3, UintCodec(8))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Enqueue(7) {
		t.Fatal("warm-up enqueue refused")
	}
	mustPanic(t, "EnqueueBatch with out-of-range element", func() {
		q.EnqueueBatch([]uint64{1, 2, 1 << 8, 4})
	})
	v, ok := q.Dequeue()
	if !ok || v != 7 {
		t.Fatalf("got (%d, %v), want the warm-up value (7, true)", v, ok)
	}
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("partial batch landed despite the panic: got %d", v)
	}
	// Capacity intact too.
	n := 0
	for q.Enqueue(uint64(n & 0xff)) {
		n++
		if n > q.Cap() {
			break
		}
	}
	if n != q.Cap() {
		t.Fatalf("accepted %d values after batch panic, want %d", n, q.Cap())
	}
}

// trapCodec is a uint64 identity codec that panics on a sentinel,
// standing in for user Encode bugs.
const trapValue = ^uint64(0)

func trapCodec() Codec[uint64] {
	return Codec[uint64]{
		Bits: 32,
		Encode: func(v uint64) uint64 {
			if v == trapValue {
				panic("trapCodec: sentinel value")
			}
			return v
		},
		Decode: func(u uint64) uint64 { return u },
	}
}

// TestPooledPanicRecovery hammers the pooled (handle-free) fronts of
// the codec-carrying shapes with a mix of good values and panicking
// sentinels from several goroutines. Every panic must leave the queue
// fully usable — the accounting at the end proves no value was lost,
// duplicated or invented across hundreds of mid-operation panics.
func TestPooledPanicRecovery(t *testing.T) {
	type shape struct {
		name    string
		enq     func(uint64) bool
		enqB    func([]uint64) int
		deq     func() (uint64, bool)
		blocked func() bool // bounded shape may legitimately refuse
	}
	var shapes []shape

	ds, err := NewDirectStripedOf[uint64](8, 2, trapCodec())
	if err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, shape{"DirectStriped", ds.Enqueue, ds.EnqueueBatch, ds.Dequeue, func() bool { return true }})

	du, err := NewDirectUnboundedOf[uint64](4, trapCodec())
	if err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, shape{
		"DirectUnbounded",
		func(v uint64) bool { du.Enqueue(v); return true },
		du.EnqueueBatch,
		du.Dequeue,
		func() bool { return false },
	})

	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			const workers, iters = 4, 300
			var (
				wg  sync.WaitGroup
				mu  sync.Mutex
				enq = map[uint64]bool{}
				got = map[uint64]bool{}
			)
			recovering := func(f func()) (panicked bool) {
				defer func() { panicked = recover() != nil }()
				f()
				return false
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					var mine []uint64
					seq := uint64(id) << 20
					for i := 0; i < iters; i++ {
						// Panicking scalar and batch enqueues,
						// interleaved with real traffic.
						if !recovering(func() { s.enq(trapValue) }) {
							panic("sentinel enqueue did not panic")
						}
						if !recovering(func() { s.enqB([]uint64{seq, trapValue}) }) {
							panic("sentinel batch did not panic")
						}
						if s.enq(seq) {
							mine = append(mine, seq)
						}
						seq++
						if v, ok := s.deq(); ok {
							mu.Lock()
							got[v] = true
							mu.Unlock()
						}
					}
					mu.Lock()
					for _, v := range mine {
						enq[v] = true
					}
					mu.Unlock()
				}(w)
			}
			wg.Wait()

			for misses := 0; misses < 4; {
				if v, ok := s.deq(); ok {
					if got[v] {
						t.Fatalf("value %#x delivered twice", v)
					}
					got[v] = true
					misses = 0
				} else {
					misses++
				}
			}
			for v := range got {
				if !enq[v] {
					t.Fatalf("phantom value %#x: delivered but never accepted", v)
				}
			}
			for v := range enq {
				if !got[v] {
					t.Fatalf("value %#x accepted but lost", v)
				}
			}
		})
	}
}

// TestMustGetPanicIsIdentifiable pins the documented failure mode of
// the handle-free methods at a pinned handle cap: the panic value
// wraps ErrHandlesExhausted. (The defer-put conversion must not eat
// or reshape it.)
func TestMustGetPanicIsIdentifiable(t *testing.T) {
	q, err := New[int](4, WithMaxHandles(1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	v := mustPanic(t, "Enqueue at pinned cap", func() { q.Enqueue(1) })
	perr, ok := v.(error)
	if !ok {
		t.Fatalf("panic value %v (%T) is not an error", v, v)
	}
	if got := fmt.Sprintf("%v", perr); got == "" {
		t.Fatal("empty panic message")
	}
	if !errors.Is(perr, ErrHandlesExhausted) {
		t.Fatalf("panic %v does not wrap ErrHandlesExhausted", perr)
	}
}
