package wcq

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrHandlesExhausted is returned (or carried by the panic of the
// methods that cannot return an error — see mustGet) when a
// handle-free operation cannot borrow an implicit handle because the
// handle cap (WithMaxHandles) is fully claimed and stayed claimed
// through the bounded retry. Explicit Register reports the same
// condition as an ordinary error.
var ErrHandlesExhausted = errors.New("wcq: implicit handle unavailable: handle cap exhausted")

// implicitRetries bounds how long a handle-free call waits for a
// pooled handle to free up before giving up with ErrHandlesExhausted.
// Each retry yields the processor, so in-flight implicit calls — the
// usual holders of pooled handles at the cap — get to finish and
// return theirs.
const implicitRetries = 64

// handlePool backs the handle-free ("implicit") methods of every queue
// shape: a sync.Pool of registered handles, borrowed for the duration
// of one call. sync.Pool's per-P caches make the steady-state acquire
// a few nanoseconds with no shared contention, and its exclusivity
// guarantee (an item is handed to at most one goroutine at a time)
// provides exactly the reuse safety handles demand — a borrowed handle
// is never shared between concurrently running goroutines.
//
// Registration leaks are closed by a finalizer: when the GC evicts a
// pooled handle (sync.Pool sheds items across collection cycles), the
// finalizer unregisters it, returning the slot to the free list. The
// registration high-water mark therefore tracks peak concurrent use of
// the implicit API, not its call count, and register/unregister storms
// through the pool stay flat.
//
// Registration happens in get, not in sync.Pool.New: a New hook that
// panics would throw from innocent-looking calls deep inside the
// runtime's pool machinery. get instead reports cap exhaustion as an
// error after a bounded retry, and each public method decides whether
// to surface it as an error (the blocking/ctx variants) or as a
// documented panic (the methods whose signatures predate Close).
type handlePool[H any] struct {
	p          sync.Pool
	register   func() (*H, error)
	unregister func(*H)
}

// init wires the pool to a queue's register/unregister pair.
func (hp *handlePool[H]) init(register func() (*H, error), unregister func(*H)) {
	hp.register = register
	hp.unregister = unregister
}

// get borrows a pooled handle, registering a fresh one when the pool
// is empty. At the handle cap it retries a bounded number of times
// (yielding, so current borrowers can return theirs) and then reports
// ErrHandlesExhausted.
func (hp *handlePool[H]) get() (*H, error) {
	if h, ok := hp.p.Get().(*H); ok && h != nil {
		return h, nil
	}
	var lastErr error
	for i := 0; ; i++ {
		h, err := hp.register()
		if err == nil {
			runtime.SetFinalizer(h, hp.unregister)
			return h, nil
		}
		lastErr = err
		if i >= implicitRetries {
			break
		}
		if i == 7 || i == 23 {
			// A slot can be pinned by a handle the pool already
			// evicted but the GC has not yet finalized (sync.Pool
			// sheds items across collection cycles — and deliberately
			// drops Puts in race builds). Forcing a cycle lets the
			// finalizer return such slots, making the retry loop
			// self-healing rather than dependent on GC timing. Two
			// cycles, because an evicted item spends one GC in the
			// pool's victim cache before becoming unreachable; capped
			// at two so a caller looping on a genuinely pinned cap
			// does not turn every failed call into a GC storm.
			runtime.GC()
		}
		runtime.Gosched()
		if h, ok := hp.p.Get().(*H); ok && h != nil {
			return h, nil
		}
	}
	return nil, fmt.Errorf("%w (%v)", ErrHandlesExhausted, lastErr)
}

// mustGet is get for the methods that have no error return: on cap
// exhaustion it panics with the error from get, which wraps
// ErrHandlesExhausted — a documented sentinel the caller can identify
// with errors.Is after recover. Reaching it requires pinning every
// slot of a deliberately small WithMaxHandles cap with explicit
// handles, so ordinary implicit use never sees the panic.
func (hp *handlePool[H]) mustGet() *H {
	h, err := hp.get()
	if err != nil {
		panic(err)
	}
	return h
}

func (hp *handlePool[H]) put(h *H) { hp.p.Put(h) }
