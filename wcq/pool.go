package wcq

import (
	"runtime"
	"sync"
)

// handlePool backs the handle-free ("implicit") methods of every queue
// shape: a sync.Pool of registered handles, borrowed for the duration
// of one call. sync.Pool's per-P caches make the steady-state acquire
// a few nanoseconds with no shared contention, and its exclusivity
// guarantee (an item is handed to at most one goroutine at a time)
// provides exactly the reuse safety handles demand — a borrowed handle
// is never shared between concurrently running goroutines.
//
// Registration leaks are closed by a finalizer: when the GC evicts a
// pooled handle (sync.Pool sheds items across collection cycles), the
// finalizer unregisters it, returning the slot to the free list. The
// registration high-water mark therefore tracks peak concurrent use of
// the implicit API, not its call count, and register/unregister storms
// through the pool stay flat.
type handlePool[H any] struct {
	p sync.Pool
}

// init wires the pool to a queue's register/unregister pair. register
// failures surface as panics: they occur only when the handle cap
// (WithMaxHandles, default 65535) is exhausted, which the implicit API
// treats as caller error — explicit Register reports it as an error
// instead.
func (hp *handlePool[H]) init(register func() (*H, error), unregister func(*H)) {
	hp.p.New = func() any {
		h, err := register()
		if err != nil {
			panic("wcq: implicit-handle registration failed: " + err.Error())
		}
		runtime.SetFinalizer(h, unregister)
		return h
	}
}

func (hp *handlePool[H]) get() *H  { return hp.p.Get().(*H) }
func (hp *handlePool[H]) put(h *H) { hp.p.Put(h) }
