package wcq

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/pad"
)

// ErrHandlesExhausted is returned (or carried by the panic of the
// methods that cannot return an error — see mustGet) when a
// handle-free operation cannot borrow an implicit handle because the
// handle cap (WithMaxHandles) is fully claimed and stayed claimed
// through the bounded retry. Explicit Register reports the same
// condition as an ordinary error.
var ErrHandlesExhausted = errors.New("wcq: implicit handle unavailable: handle cap exhausted")

// implicitRetries bounds how long a handle-free call waits for a
// pooled handle to free up before giving up with ErrHandlesExhausted.
// Each retry yields the processor, so in-flight implicit calls — the
// usual holders of pooled handles at the cap — get to finish and
// return theirs.
const implicitRetries = 64

// handlePool backs the handle-free ("implicit") methods of every queue
// shape: registered handles parked in per-P cache slots, borrowed for
// the duration of one call (DESIGN.md §13). Each P owns one padded
// slot indexed by procid(); borrowing is a single uncontended Swap on
// the caller's own cache line, returning a single CAS. That replaces
// the earlier sync.Pool backing for two reasons: the steady-state
// acquire drops the pool's interface conversion and victim-cache
// machinery from the hot path (the ~17% implicit-vs-explicit scalar
// gap of BENCH_pr3), and — the part sync.Pool cannot provide — the
// SAME P reliably gets the SAME handle back, so an implicit caller
// keeps one stable lane affinity on the striped shapes and the
// steal/rebalance rate collapses. A sync.Pool remains underneath as
// the oversubscription overflow: when more goroutines run implicit
// calls than there are Ps (shard occupied on put), handles spill there
// and keep the old behavior.
//
// Exclusivity: Swap hands a parked handle to exactly one caller, and
// put only re-parks via nil→h CAS, so a borrowed handle is never
// shared between concurrently running goroutines — the handle
// contract.
//
// Registration leaks are closed by a finalizer: when the GC evicts an
// overflow handle (sync.Pool sheds items across collection cycles),
// the finalizer unregisters it. Shard-parked handles are strongly
// referenced and never collected; the striped front-end reclaims stale
// ones through evict (its resize governor's maintenance hook), so a
// parked handle cannot pin a draining lane forever. The registration
// high-water mark therefore tracks peak concurrent use of the implicit
// API, not its call count.
//
// Registration happens in get, not in a pool-new hook: get reports cap
// exhaustion as an error after a bounded retry, and each public method
// decides whether to surface it as an error (the blocking/ctx
// variants) or as a documented panic (the methods whose signatures
// predate Close).
type handlePool[H any] struct {
	register   func() (*H, error)
	unregister func(*H)
	shards     []poolShard[H]
	mask       int
	// resident enables the zero-atomic fast path: each shard may hold a
	// RESIDENT handle that is used in place while the caller holds the
	// processor pin, rather than being swapped out and back (pinnedGet).
	// Exclusivity comes from the pin itself — while pinned, no other
	// goroutine can run on this P, and the resident is only ever touched
	// by the goroutine pinned to its P — so the steady-state borrow is
	// two plain atomic loads instead of two locked RMWs. Only shapes
	// whose operations are bounded, non-yielding and panic-free between
	// pin and unpin may enable this (Queue[T]: the core ring ops never
	// block, never call Gosched, and allocate nothing after
	// registration). The striped shapes keep the swap-borrow: their
	// operations can run lane maintenance, which yields.
	resident bool
	overflow sync.Pool
}

// poolShard is one P's parking slot, padded so neighboring Ps never
// share its cache line. v parks an exclusively-borrowed handle
// (Swap out, CAS back); res holds the P's resident handle for the
// pinned in-place path.
type poolShard[H any] struct {
	_   pad.Pad
	v   atomic.Pointer[H]
	res atomic.Pointer[H]
	_   pad.Pad
}

// init wires the pool to a queue's register/unregister pair and sizes
// the per-P shard array from GOMAXPROCS at construction (power of two
// for mask indexing; later GOMAXPROCS growth folds onto existing
// shards, which only costs sharing, never correctness).
func (hp *handlePool[H]) init(register func() (*H, error), unregister func(*H)) {
	hp.register = register
	hp.unregister = unregister
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	hp.shards = make([]poolShard[H], n)
	hp.mask = n - 1
}

// pinnedGet claims the calling P's resident handle for ONE bounded
// operation and returns with the processor pin HELD; the caller must
// run the operation without yielding, blocking, or panicking, then
// call pinnedRelease(sh). A nil shard means no resident path is
// available (residency disabled, no resident installed yet, or the P
// id exceeds the shard array after a GOMAXPROCS raise — folding two
// Ps onto one shard would break the pin-exclusivity argument); fall
// back to get/put. The fast path costs a pin, an atomic load and an
// unpin — no locked RMW.
// wcq:noalloc
func (hp *handlePool[H]) pinnedGet() (*H, *poolShard[H]) {
	if !canPin || !hp.resident {
		return nil, nil
	}
	pid := pinProc()
	if pid > hp.mask {
		unpinProc()
		return nil, nil
	}
	sh := &hp.shards[pid]
	h := sh.res.Load()
	if h == nil {
		unpinProc()
		return nil, nil
	}
	// Happens-before from the previous operation's pinnedRelease on
	// this shard (race builds only; real ordering comes from the
	// runtime's P handoff, which every schedule crosses with barriers).
	poolRaceAcquire(unsafe.Pointer(sh))
	return h, sh
}

// pinnedRelease ends a pinnedGet section: publishes the operation's
// effects on the resident handle to the next pinned user and drops the
// processor pin. The resident stays in the shard.
// wcq:noalloc
func (hp *handlePool[H]) pinnedRelease(sh *poolShard[H]) {
	poolRaceRelease(unsafe.Pointer(sh))
	unpinProc()
}

// get borrows an implicit handle: own P's shard, then the overflow
// pool, then a fresh registration. At the handle cap it retries a
// bounded number of times (yielding, so current borrowers can return
// theirs) and then reports ErrHandlesExhausted. Resident handles are
// never borrowed: a borrow is exclusive, and a resident may be in use
// by a pinned peer.
// wcq:noalloc
func (hp *handlePool[H]) get() (*H, error) {
	if h := hp.shards[procid()&hp.mask].v.Swap(nil); h != nil {
		return h, nil
	}
	if h, ok := hp.overflow.Get().(*H); ok && h != nil {
		return h, nil
	}
	var lastErr error
	for i := 0; ; i++ {
		h, err := hp.register()
		if err == nil {
			runtime.SetFinalizer(h, hp.unregister)
			return h, nil
		}
		lastErr = err
		if i >= implicitRetries {
			break
		}
		if i == 7 || i == 23 {
			// A slot can be pinned by a handle the overflow pool
			// already evicted but the GC has not yet finalized
			// (sync.Pool sheds items across collection cycles — and
			// deliberately drops Puts in race builds). Forcing a cycle
			// lets the finalizer return such slots, making the retry
			// loop self-healing rather than dependent on GC timing.
			// Two cycles, because an evicted item spends one GC in the
			// pool's victim cache before becoming unreachable; capped
			// at two so a caller looping on a genuinely pinned cap
			// does not turn every failed call into a GC storm.
			runtime.GC()
		}
		runtime.Gosched()
		if h := hp.shards[procid()&hp.mask].v.Swap(nil); h != nil {
			return h, nil
		}
		if h, ok := hp.overflow.Get().(*H); ok && h != nil {
			return h, nil
		}
	}
	return nil, fmt.Errorf("%w (%v)", ErrHandlesExhausted, lastErr)
}

// mustGet is get for the methods that have no error return: on cap
// exhaustion it panics with the error from get, which wraps
// ErrHandlesExhausted — a documented sentinel the caller can identify
// with errors.Is after recover. Reaching it requires pinning every
// slot of a deliberately small WithMaxHandles cap with explicit
// handles, so ordinary implicit use never sees the panic.
// wcq:noalloc
func (hp *handlePool[H]) mustGet() *H {
	h, err := hp.get()
	if err != nil {
		panic(err)
	}
	return h
}

// put parks the handle in the caller's P shard; an occupied shard
// (oversubscription: another goroutine on this P parked first) spills
// to the overflow pool. With residency enabled, a P whose res slot is
// empty promotes the returned handle to resident instead — from then
// on this P's scalar ops take the pinned in-place path and the handle
// never circulates again (strongly referenced by the shard, so its
// finalizer never fires).
// wcq:noalloc
func (hp *handlePool[H]) put(h *H) {
	pid := procid()
	sh := &hp.shards[pid&hp.mask]
	if hp.resident && pid <= hp.mask && sh.res.CompareAndSwap(nil, h) {
		return
	}
	if sh.v.CompareAndSwap(nil, h) {
		return
	}
	hp.overflow.Put(h)
}

// evict sweeps the per-P shards and unregisters every parked handle
// the predicate flags as stale. Only the exclusive parking slots are
// swept: the pools that evict (the striped front-ends' governors) run
// with residency disabled, so their res slots are always nil — and a
// resident could not be unregistered synchronously anyway, since a
// pinned peer may be mid-operation on it. The Swap transfers ownership to the
// sweeper, so the unregister cannot race a borrower; the finalizer is
// disarmed first so the GC cannot unregister the same handle again.
// Fresh handles re-register on the next implicit call. The striped
// front-ends run this from the resize governor so an idle parked
// handle cannot keep a draining lane bound forever (DESIGN.md §13).
func (hp *handlePool[H]) evict(stale func(*H) bool) {
	for i := range hp.shards {
		h := hp.shards[i].v.Swap(nil)
		if h == nil {
			continue
		}
		if stale(h) {
			runtime.SetFinalizer(h, nil)
			hp.unregister(h)
			continue
		}
		if !hp.shards[i].v.CompareAndSwap(nil, h) {
			hp.overflow.Put(h)
		}
	}
}
