package wcq

import "testing"

// Benchmarks isolating the implicit-handle borrow cost against the
// explicit baseline (DESIGN.md §13, experiment D1's unit-level view).

func BenchmarkExplicitPairwise(b *testing.B) {
	q, err := New[uint64](16)
	if err != nil {
		b.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		b.Fatal(err)
	}
	defer h.Unregister()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enqueue(1)
		h.Dequeue()
	}
}

func BenchmarkImplicitPairwise(b *testing.B) {
	q, err := New[uint64](16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(1)
		q.Dequeue()
	}
}

// BenchmarkPoolGetPut measures the bare borrow/park cycle.
func BenchmarkPoolGetPut(b *testing.B) {
	q, err := New[uint64](16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := q.pool.mustGet()
		q.pool.put(h)
	}
}
