//go:build !race

package wcq

import "unsafe"

// No-op race annotations for the resident-handle fast path; see
// pool_race.go for the race-build variants and the rationale.

func poolRaceAcquire(unsafe.Pointer) {}

func poolRaceRelease(unsafe.Pointer) {}
