//go:build !race

package wcq

import "unsafe"

// No-op race annotations for the resident-handle fast path; see
// pool_race.go for the race-build variants and the rationale.

// wcq:noalloc
func poolRaceAcquire(unsafe.Pointer) {}

// wcq:noalloc
func poolRaceRelease(unsafe.Pointer) {}
