//go:build race

package wcq

import (
	"runtime"
	"unsafe"
)

// Race-detector happens-before edges for the resident-handle fast path
// (pool.go). Successive implicit operations on one P mutate the
// resident handle's state with plain accesses; the processor pin
// serializes them in reality, but the race detector cannot see
// scheduler-level exclusion, so each operation brackets itself with an
// acquire/release pair on its shard — exactly how sync.Pool annotates
// its private slot. Compiled out of non-race builds (pool_norace.go).

// wcq:noalloc
func poolRaceAcquire(p unsafe.Pointer) { runtime.RaceAcquire(p) }

// wcq:noalloc
func poolRaceRelease(p unsafe.Pointer) { runtime.RaceReleaseMerge(p) }
