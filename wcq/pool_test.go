package wcq_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"wcqueue/wcq"
)

// TestImplicitCapExhaustedPanicIsTyped pins the entire handle cap with
// an explicit handle and checks the handle-free bool methods fail with
// the documented panic: an error wrapping ErrHandlesExhausted, raised
// by the library's own retry path — not a raw panic escaping from
// inside sync.Pool.New.
func TestImplicitCapExhaustedPanicIsTyped(t *testing.T) {
	q := wcq.Must[int](4, wcq.WithMaxHandles(1))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Enqueue at exhausted cap did not panic")
			}
			err, ok := r.(error)
			if !ok {
				t.Fatalf("panic value %T is not an error: %v", r, r)
			}
			if !errors.Is(err, wcq.ErrHandlesExhausted) {
				t.Fatalf("panic error %v does not wrap ErrHandlesExhausted", err)
			}
		}()
		q.Enqueue(1)
	}()
	// The error-returning variants must report, not panic.
	if err := q.EnqueueWait(context.Background(), 1); !errors.Is(err, wcq.ErrHandlesExhausted) {
		t.Fatalf("EnqueueWait = %v, want ErrHandlesExhausted", err)
	}
	if _, err := q.DequeueWait(context.Background()); !errors.Is(err, wcq.ErrHandlesExhausted) {
		t.Fatalf("DequeueWait = %v, want ErrHandlesExhausted", err)
	}
	// Releasing the explicit handle makes the implicit API work again.
	h.Unregister()
	if !q.Enqueue(2) {
		t.Fatal("enqueue after cap freed failed")
	}
	if v, ok := q.Dequeue(); !ok || v != 2 {
		t.Fatalf("dequeue got (%d, %v)", v, ok)
	}
}

// TestImplicitCapContentionRecovers: the bounded retry inside the
// implicit path bridges short cap contention — a concurrent holder
// releasing its explicit handle lets a spinning implicit call through.
func TestImplicitCapContentionRecovers(t *testing.T) {
	q := wcq.MustStriped[int](4, 2, wcq.WithMaxHandles(3))
	// A Striped handle claims one slot on every lane; cap 3 leaves
	// room for one striped registration at a time (pool handle = 1).
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-release
		h.Unregister()
	}()
	close(release)
	// Retry until the release lands; the implicit call itself retries
	// a bounded number of times, so a few outer attempts suffice.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := q.EnqueueWait(context.Background(), 7)
		if err == nil {
			break
		}
		if !errors.Is(err, wcq.ErrHandlesExhausted) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("implicit call never recovered after cap freed")
		}
	}
	wg.Wait()
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("dequeue got (%d, %v)", v, ok)
	}
}

// TestImplicitFinalizerRacesLiveOps churns the implicit API on every
// shape while forcing GC cycles, so finalizer-driven Unregister runs
// concurrently with live queue operations and fresh registrations.
// The -race build checks the interleavings; the assertions check the
// queues stay functional throughout.
func TestImplicitFinalizerRacesLiveOps(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 80
	}
	q := wcq.Must[int](8)
	u := wcq.MustUnbounded[int](4)
	s := wcq.MustStriped[int](6, 3)
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if q.Enqueue(i) {
					q.Dequeue()
				}
				u.Enqueue(i)
				u.Dequeue()
				if s.Enqueue(i) {
					s.Dequeue()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-time.After(time.Millisecond):
				runtime.GC() // evict pooled handles → run finalizers
			case <-done:
				return
			}
		}
	}()
	wg.Wait()
	done <- struct{}{}
	<-done
	// Queues still work after arbitrary finalizer interleavings.
	if !q.Enqueue(1) {
		t.Fatal("bounded enqueue failed after finalizer churn")
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("bounded dequeue failed after finalizer churn")
	}
	runtime.GC()
	runtime.GC()
	if lh := q.LiveHandles(); lh < 0 {
		t.Fatalf("negative live handles %d", lh)
	}
}
