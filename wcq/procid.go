//go:build gc

package wcq

import (
	_ "unsafe" // for go:linkname
)

// The per-P implicit-handle cache (pool.go) shards by the id of the P
// the calling goroutine runs on. procPin/procUnpin are the runtime's
// own primitives for exactly this (sync.Pool's per-P caches sit on
// them); the pin is released immediately, so the id is a HINT — the
// goroutine may migrate before the shard access — never a correctness
// input. A stale hint only sends the access to a colder shard.

//go:linkname runtimeProcPin runtime.procPin
// wcq:noalloc
func runtimeProcPin() int

//go:linkname runtimeProcUnpin runtime.procUnpin
// wcq:noalloc
func runtimeProcUnpin()

// procid returns the current P's id as a shard hint.
// wcq:noalloc
func procid() int {
	p := runtimeProcPin()
	runtimeProcUnpin()
	return p
}

// canPin reports that the runtime supports holding the processor pin
// across an operation — the resident-handle fast path's exclusivity
// mechanism (pool.go). On the gc runtime pinProc/unpinProc bracket a
// bounded, non-yielding section during which no other goroutine can
// run on this P.
const canPin = true

// wcq:noalloc
func pinProc() int { return runtimeProcPin() }

// wcq:noalloc
func unpinProc() { runtimeProcUnpin() }
