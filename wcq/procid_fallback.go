//go:build !gc

package wcq

// Without the gc runtime's procPin the per-P cache degrades to a
// single shard; the overflow sync.Pool carries the load, which is the
// pre-elastic behavior.
func procid() int { return 0 }

// Without procPin the resident-handle fast path cannot establish
// exclusivity, so it is disabled entirely (pool.go checks canPin
// before touching the pin).
const canPin = false

func pinProc() int { return 0 }

func unpinProc() {}
