//go:build race

package wcq_test

// raceEnabled reports that the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of Put calls to expose
// races; dropped implicit handles are only unregistered when their
// finalizers run, so the handle high-water mark is not meaningful to
// assert tightly in race builds.
const raceEnabled = true
